package dbpal_test

import (
	"strings"
	"testing"

	dbpal "repro"
)

func citySchema() *dbpal.Schema {
	return &dbpal.Schema{
		Name: "cities",
		Tables: []*dbpal.Table{
			{
				Name:     "city",
				Readable: "city",
				Columns: []*dbpal.Column{
					{Name: "id", Type: dbpal.Number, PrimaryKey: true},
					{Name: "name", Type: dbpal.Text},
					{Name: "state_name", Type: dbpal.Text, Readable: "state"},
					{Name: "population", Type: dbpal.Number},
				},
			},
		},
	}
}

func cityDB(t *testing.T) *dbpal.Database {
	t.Helper()
	db := dbpal.NewDatabase(citySchema())
	rows := []struct {
		name, state string
		pop         float64
	}{
		{"boston", "massachusetts", 650000},
		{"springfield", "massachusetts", 155000},
		{"portland", "oregon", 650000},
		{"austin", "texas", 960000},
	}
	for i, r := range rows {
		if err := db.Insert("city", dbpal.Row{
			dbpal.Num(float64(i + 1)), dbpal.Str(r.name), dbpal.Str(r.state), dbpal.Num(r.pop),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestEndToEndLifecycle walks the paper's Figure-1 lifecycle through
// the public API: schema -> synthesized training data -> trained model
// -> NL question -> SQL -> executed tabular result.
func TestEndToEndLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model; skipped in -short mode")
	}
	s := citySchema()
	params := dbpal.DefaultParams()
	params.Instantiation.SizeSlotFills = 4
	pairs := dbpal.GenerateTrainingData(s, params, 1)
	if len(pairs) < 500 {
		t.Fatalf("pipeline produced only %d pairs", len(pairs))
	}

	cfg := dbpal.DefaultSketchConfig()
	cfg.Epochs = 4
	model := dbpal.NewSketch(cfg)
	model.Train(dbpal.TrainingExamples(pairs, s))

	nli := dbpal.NewInterface(cityDB(t), model)
	res, sql, err := nli.Ask("show me all cities in massachusetts")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql.String(), "'massachusetts'") {
		t.Fatalf("constant not restored in %s", sql)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("expected the 2 massachusetts cities, got %d rows:\n%s", len(res.Rows), res)
	}

	res2, _, err := nli.Ask("how many cities are there")
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Rows) != 1 || res2.Rows[0][0].Num != 4 {
		t.Fatalf("count result = %v", res2.Rows)
	}
}

func TestPublicHelpers(t *testing.T) {
	s := citySchema()
	toks := dbpal.SchemaTokens(s)
	if len(toks) == 0 {
		t.Fatal("SchemaTokens empty")
	}
	db, err := dbpal.GenerateDatabase(s, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Tables["city"].Rows) != 10 {
		t.Fatalf("generated rows = %d", len(db.Tables["city"].Rows))
	}
	if dbpal.Num(3).Num != 3 || dbpal.Str("x").Str != "x" {
		t.Fatal("value constructors broken")
	}
	p := dbpal.DefaultParams()
	if p.Instantiation.SizeSlotFills <= 0 || p.Augmentation.NumPara <= 0 {
		t.Fatalf("unexpected defaults: %+v", p)
	}
}

// TestStreamMatchesGenerate pins the facade's streaming entry point to
// the batch one: same pairs, same order, no materialized corpus.
func TestStreamMatchesGenerate(t *testing.T) {
	s := citySchema()
	params := dbpal.DefaultParams()
	params.Instantiation.SizeSlotFills = 2
	want := dbpal.GenerateTrainingData(s, params, 5)
	i := 0
	err := dbpal.StreamTrainingData(s, params, 5, func(p dbpal.Pair) error {
		if i >= len(want) || p != want[i] {
			t.Fatalf("streamed pair %d diverges from batch output", i)
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != len(want) {
		t.Fatalf("streamed %d pairs, batch produced %d", i, len(want))
	}
	if want[0].Stage == "" || want[0].Origin == "" {
		t.Fatalf("missing provenance on %+v", want[0])
	}
}

func TestBothModelsPluggable(t *testing.T) {
	var translators []dbpal.Translator
	translators = append(translators, dbpal.NewSketch(dbpal.DefaultSketchConfig()))
	translators = append(translators, dbpal.NewSeq2Seq(dbpal.DefaultSeq2SeqConfig()))
	names := map[string]bool{}
	for _, tr := range translators {
		names[tr.Name()] = true
	}
	if !names["sketch"] || !names["seq2seq"] {
		t.Fatalf("translator names = %v", names)
	}
}
