// Geo: DBPal on the multi-table geography schema (the GeoQuery-style
// domain of the paper's §5 examples), exercising joins resolved
// through the @JOIN placeholder and nested queries ("the mountain with
// the maximum height"). The database is synthetic but honors the
// foreign keys, so join answers are consistent.
//
// Run with: go run ./examples/geo
package main

import (
	"fmt"
	"log"

	dbpal "repro"
	"repro/internal/spider"
)

func main() {
	s := spider.SchemaByName("geo")
	db, err := dbpal.GenerateDatabase(s, 30, 5)
	if err != nil {
		log.Fatal(err)
	}

	params := dbpal.DefaultParams()
	params.Instantiation.SizeSlotFills = 5
	pairs := dbpal.GenerateTrainingData(s, params, 9)
	fmt.Printf("pipeline synthesized %d pairs for the %d-table geo schema\n",
		len(pairs), len(s.Tables))

	cfg := dbpal.DefaultSketchConfig()
	cfg.Epochs = 5
	model := dbpal.NewSketch(cfg)
	model.Train(dbpal.TrainingExamples(pairs, s))

	nli := dbpal.NewInterface(db, model)
	questions := []string{
		// joins (the model predicts FROM @JOIN; the post-processor
		// resolves the shortest join path):
		"what is the average height of mountains where the state name is massachusetts",
		"how many cities are there for each state name",
		// nested:
		"show the name of the mountain with the maximum height",
		"show the names of rivers whose length is above the average length",
		// plain:
		"show the population of all cities",
	}
	for _, q := range questions {
		res, sql, err := nli.Ask(q)
		if err != nil {
			fmt.Printf("\nQ: %s\n  error: %v\n", q, err)
			continue
		}
		fmt.Printf("\nQ: %s\nSQL: %s\n%s\n", q, sql, clip(res, 5))
	}
}

func clip(r *dbpal.Result, maxRows int) *dbpal.Result {
	if len(r.Rows) > maxRows {
		return &dbpal.Result{Columns: r.Columns, Rows: r.Rows[:maxRows]}
	}
	return r
}
