// Patients: the paper's motivating hospital scenario (§1). DBPal
// bootstraps an NLIDB for the medical schema of the Patients benchmark
// and answers the doctor's question — "What is the age distribution of
// patients who stayed longest in the hospital?" — along with several
// linguistic variations of the same information need, demonstrating
// the robustness the augmentation steps buy.
//
// Run with: go run ./examples/patients
package main

import (
	"fmt"
	"log"

	dbpal "repro"
	"repro/internal/patients"
)

func main() {
	s := patients.Schema()
	db, err := patients.Database()
	if err != nil {
		log.Fatal(err)
	}

	params := dbpal.DefaultParams()
	params.Instantiation.SizeSlotFills = 6
	pairs := dbpal.GenerateTrainingData(s, params, 3)
	fmt.Printf("pipeline synthesized %d pairs from the %s schema alone\n", len(pairs), s.Name)

	cfg := dbpal.DefaultSketchConfig()
	cfg.Epochs = 5
	model := dbpal.NewSketch(cfg)
	model.Train(dbpal.TrainingExamples(pairs, s))

	nli := dbpal.NewInterface(db, model)

	// Several phrasings of "the ages of the patients with the longest
	// stays", plus other hospital questions.
	questions := []string{
		"show the age of patients sorted descending by length of stay",
		"what is the average age of patients where length of stay is greater than 14",
		"show the name of the patient with the maximum length of stay",
		// linguistic variations of the same question:
		"how many patients have diagnosis influenza",
		"count the patients with influenza",
		"where the diagnosis is influenza, how many patients are there",
	}
	for _, q := range questions {
		res, sql, err := nli.Ask(q)
		if err != nil {
			fmt.Printf("\nQ: %s\n  error: %v\n", q, err)
			continue
		}
		fmt.Printf("\nQ: %s\nSQL: %s\n%s\n", q, sql, clip(res, 6))
	}
}

// clip keeps the example output short for large result tables.
func clip(r *dbpal.Result, maxRows int) *dbpal.Result {
	if len(r.Rows) > maxRows {
		return &dbpal.Result{Columns: r.Columns, Rows: r.Rows[:maxRows]}
	}
	return r
}
