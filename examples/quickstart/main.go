// Quickstart: the complete DBPal lifecycle of the paper's Figure 1 on
// a tiny city/state schema — bootstrap training data from the schema
// alone, train a pluggable model, and answer "Show me all cities in
// Massachusetts!" end to end (parameter handling, translation,
// post-processing, execution, tabular result).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	dbpal "repro"
)

func citySchema() *dbpal.Schema {
	return &dbpal.Schema{
		Name: "cities",
		Tables: []*dbpal.Table{
			{
				Name:     "city",
				Readable: "city",
				Synonyms: []string{"town"},
				Columns: []*dbpal.Column{
					{Name: "id", Type: dbpal.Number, PrimaryKey: true},
					{Name: "name", Type: dbpal.Text},
					{Name: "state_name", Type: dbpal.Text, Readable: "state"},
					{Name: "population", Type: dbpal.Number},
				},
			},
		},
	}
}

func main() {
	s := citySchema()

	// A database to query. Normally you load your own rows; here we
	// insert a handful so the example is self-contained.
	db := dbpal.NewDatabase(s)
	for i, r := range []struct {
		name, state string
		pop         float64
	}{
		{"boston", "massachusetts", 650000},
		{"springfield", "massachusetts", 155000},
		{"cambridge", "massachusetts", 118000},
		{"portland", "oregon", 650000},
		{"salem", "oregon", 175000},
		{"austin", "texas", 960000},
	} {
		if err := db.Insert("city", dbpal.Row{
			dbpal.Num(float64(i + 1)), dbpal.Str(r.name), dbpal.Str(r.state), dbpal.Num(r.pop),
		}); err != nil {
			log.Fatal(err)
		}
	}

	// Training phase: DBPal synthesizes the corpus from the schema —
	// no manually labeled NL-SQL pairs anywhere.
	params := dbpal.DefaultParams()
	params.Instantiation.SizeSlotFills = 4 // small corpus keeps the example fast
	pairs := dbpal.GenerateTrainingData(s, params, 1)
	fmt.Printf("pipeline synthesized %d training pairs, e.g.:\n", len(pairs))
	for _, p := range pairs[:3] {
		fmt.Printf("  NL:  %s\n  SQL: %s\n", p.NL, p.SQL)
	}

	cfg := dbpal.DefaultSketchConfig()
	cfg.Epochs = 4
	model := dbpal.NewSketch(cfg)
	model.Train(dbpal.TrainingExamples(pairs, s))

	// Runtime phase: ask in natural language.
	nli := dbpal.NewInterface(db, model)
	for _, question := range []string{
		"show me all cities in massachusetts",
		"how many cities are there",
		"what is the average population of cities where state is oregon",
		"show the name of the city with the maximum population",
	} {
		res, sql, err := nli.Ask(question)
		if err != nil {
			log.Fatalf("%q: %v", question, err)
		}
		fmt.Printf("\nQ: %s\nSQL: %s\n%s\n", question, sql, res)
	}
}
