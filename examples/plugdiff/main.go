// Plugdiff demonstrates the "fully pluggable" claim of the paper: the
// same synthesized training corpus feeds two entirely different model
// architectures — the attention+copy seq2seq and the sketch-guided
// (SyntaxSQLNet-style) translator — and both are evaluated on a
// held-out split of the corpus. Neither the pipeline nor the runtime
// knows which model is plugged in.
//
// Run with: go run ./examples/plugdiff
package main

import (
	"fmt"

	dbpal "repro"
	"repro/internal/patients"
	"repro/internal/sqlast"
)

func main() {
	s := patients.Schema()

	params := dbpal.DefaultParams()
	params.Instantiation.SizeSlotFills = 5
	pairs := dbpal.GenerateTrainingData(s, params, 21)
	examples := dbpal.TrainingExamples(pairs, s)

	// Held-out split: every 7th example is test, the rest train.
	var train, test []dbpal.Example
	for i, ex := range examples {
		if i%7 == 0 {
			test = append(test, ex)
		} else {
			train = append(train, ex)
		}
	}
	fmt.Printf("corpus: %d train / %d held-out pairs\n", len(train), len(test))

	sketchCfg := dbpal.DefaultSketchConfig()
	sketchCfg.Epochs = 4
	seqCfg := dbpal.DefaultSeq2SeqConfig()
	seqCfg.Epochs = 4
	seqCfg.SampleCap = 2500

	translators := []dbpal.Translator{
		dbpal.NewSketch(sketchCfg),
		dbpal.NewSeq2Seq(seqCfg),
	}
	for _, tr := range translators {
		tr.Train(train)
		correct := 0
		for _, ex := range test {
			pred := tr.Translate(ex.NL, ex.Schema)
			if equalSQL(pred, ex.SQL) {
				correct++
			}
		}
		fmt.Printf("%-8s held-out exact-match accuracy: %.3f (%d/%d)\n",
			tr.Name(), float64(correct)/float64(len(test)), correct, len(test))
	}
}

// equalSQL compares token sequences as canonicalized queries so that
// formatting differences do not count as errors.
func equalSQL(pred, gold []string) bool {
	p, err := sqlast.ParseTokens(pred)
	if err != nil {
		return false
	}
	g, err := sqlast.ParseTokens(gold)
	if err != nil {
		return false
	}
	return sqlast.EqualCanonical(p, g)
}
