// Package dbpal is a Go implementation of DBPal, the fully pluggable
// NL2SQL training pipeline of Weir et al. (SIGMOD 2020). Given only an
// annotated database schema, DBPal synthesizes large corpora of
// (natural language, SQL) training pairs by weak supervision —
// balanced template instantiation, automatic paraphrasing, word
// dropout, and lemmatization — and uses them to train any pluggable
// translation model. A runtime layer anonymizes constants in user
// questions, translates them, repairs the SQL, and executes it.
//
// The package is a facade over the internal subsystems:
//
//	schema      annotated relational schemas + join graph
//	pipeline    the streaming stage substrate (Stage, Graph, Stats)
//	core        the training pipeline (generate -> augment -> lemmatize -> dedup)
//	models      pluggable translators (seq2seq with copy; sketch-guided)
//	runtime     parameter handling, post-processing, end-to-end Ask
//	engine      in-memory SQL execution
//
// Quickstart:
//
//	s := mySchema()                                  // *dbpal.Schema
//	db, _ := dbpal.GenerateDatabase(s, 50, 1)        // or load your own rows
//	pairs := dbpal.GenerateTrainingData(s, dbpal.DefaultParams(), 1)
//	model := dbpal.NewSeq2Seq(dbpal.DefaultSeq2SeqConfig())
//	model.Train(dbpal.TrainingExamples(pairs, s))
//	nli := dbpal.NewInterface(db, model)
//	result, sql, _ := nli.Ask("show me all cities in massachusetts")
//
// The training pipeline is composed from streaming stages; callers who
// need more than GenerateTrainingData can edit the stage list (ablate,
// reorder, observe) or stream pairs in constant memory:
//
//	p := dbpal.NewPipeline(s, dbpal.DefaultParams(), 1)
//	g := p.Graph(p.GenerateStage(), p.AugmentStage(), dbpal.LemmaStage(), dbpal.DedupStage())
//	err := g.Stream(func(pair dbpal.Pair) error { return write(pair) })
//	stats := g.Stats() // per-stage pairs in/out, wall time, dedup hits
package dbpal

import (
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/models"
	"repro/internal/pipeline"
	"repro/internal/runtime"
	"repro/internal/schema"
)

// Re-exported core types. The aliases make the public API importable
// from a single package without hiding the concrete documentation on
// the internal types.
type (
	// Schema is an annotated relational database schema.
	Schema = schema.Schema
	// Table is one schema table.
	Table = schema.Table
	// Column is one typed, annotated table column.
	Column = schema.Column
	// ForeignKey is a join-graph edge.
	ForeignKey = schema.ForeignKey
	// ColumnType distinguishes Text from Number columns.
	ColumnType = schema.ColumnType
	// Domain tags a column's semantic domain for comparative phrasing.
	Domain = schema.Domain

	// Params collects every tunable knob of the data-generation
	// procedure (the paper's Table 1).
	Params = core.Params
	// Pair is one synthesized NL–SQL training pair (with provenance:
	// the stage that created it and the variant origin).
	Pair = core.Pair
	// Pipeline is a configured training-data pipeline.
	Pipeline = core.Pipeline
	// Stage is one streaming transform in a pipeline graph.
	Stage = pipeline.Stage
	// Graph is a runnable chain of stages.
	Graph = pipeline.Graph
	// StageStats is one stage's instrumentation snapshot.
	StageStats = pipeline.Stats

	// Translator is the pluggable model contract.
	Translator = models.Translator
	// Example is one model training instance.
	Example = models.Example
	// Seq2SeqConfig sizes the attention+copy seq2seq translator.
	Seq2SeqConfig = models.Seq2SeqConfig
	// SketchConfig sizes the sketch-guided translator.
	SketchConfig = models.SketchConfig

	// Database is an in-memory database bound to a schema.
	Database = engine.Database
	// Result is a query result table.
	Result = engine.Result
	// Row is one tuple.
	Row = engine.Row
	// Value is one cell value.
	Value = engine.Value

	// Interface is the end-to-end NL query interface (Figure 1 of the
	// paper): pre-processing, translation, post-processing, execution.
	Interface = runtime.Translator
)

// Column type and domain constants, re-exported.
const (
	Text   = schema.Text
	Number = schema.Number
)

// DefaultParams returns the pipeline defaults (empirically determined
// in the paper; tune per schema with hyperopt.RandomSearch).
func DefaultParams() Params { return core.DefaultParams() }

// DefaultSeq2SeqConfig returns the standard small seq2seq
// configuration.
func DefaultSeq2SeqConfig() Seq2SeqConfig { return models.DefaultSeq2SeqConfig() }

// DefaultSketchConfig returns the standard small sketch-model
// configuration.
func DefaultSketchConfig() SketchConfig { return models.DefaultSketchConfig() }

// GenerateTrainingData runs the full DBPal pipeline (generate ->
// augment -> lemmatize -> dedup) for the schema and returns the
// synthesized training pairs. Deterministic given seed, at any worker
// count.
func GenerateTrainingData(s *Schema, p Params, seed int64) []Pair {
	return core.New(s, p, seed).Run()
}

// StreamTrainingData runs the full pipeline, handing each pair to emit
// in corpus order without materializing the corpus — constant memory
// at any size. It returns the first error emit returns.
func StreamTrainingData(s *Schema, p Params, seed int64, emit func(Pair) error) error {
	return core.New(s, p, seed).Stream(emit)
}

// NewPipeline returns a configured pipeline whose stage list can be
// edited before running (see Pipeline.Graph and the stage
// constructors).
func NewPipeline(s *Schema, p Params, seed int64) *Pipeline {
	return core.New(s, p, seed)
}

// LemmaStage returns the word-form-normalization stage for custom
// stage lists.
func LemmaStage() Stage { return core.LemmaStage() }

// DedupStage returns the exact-duplicate filter stage for custom stage
// lists.
func DedupStage() Stage { return core.DedupStage() }

// TrainingExamples converts pipeline pairs into model training
// examples carrying the schema-token context.
func TrainingExamples(pairs []Pair, s *Schema) []Example {
	return models.PairExamples(pairs, s)
}

// SchemaTokens linearizes a schema into the token context consumed by
// the models (useful when calling Translator.Translate directly).
func SchemaTokens(s *Schema) []string { return models.SchemaTokens(s) }

// NewSeq2Seq returns an untrained attention+copy seq2seq translator.
func NewSeq2Seq(cfg Seq2SeqConfig) *models.Seq2Seq { return models.NewSeq2Seq(cfg) }

// NewSketch returns an untrained sketch-guided translator (the
// SyntaxSQLNet-style architecture).
func NewSketch(cfg SketchConfig) *models.Sketch { return models.NewSketch(cfg) }

// NewDatabase returns an empty database for the schema; fill it with
// Insert.
func NewDatabase(s *Schema) *Database { return engine.NewDatabase(s) }

// GenerateDatabase builds a database with synthetic but plausible
// rows (rowsPerTable per table), honoring primary and foreign keys.
func GenerateDatabase(s *Schema, rowsPerTable int, seed int64) (*Database, error) {
	return engine.GenerateData(s, rowsPerTable, seed)
}

// NewInterface wires a trained translator to a database, yielding the
// end-to-end natural-language query interface.
func NewInterface(db *Database, model Translator) *Interface {
	return runtime.NewTranslator(db, model)
}

// Num and Str build database cell values.
func Num(v float64) Value { return engine.Num(v) }

// Str builds a text cell value.
func Str(s string) Value { return engine.Str(s) }
