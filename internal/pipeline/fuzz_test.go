package pipeline_test

import (
	"strings"
	"testing"

	"repro/internal/generator"
	"repro/internal/patients"
	"repro/internal/pipeline"
)

// corpusSeed synthesizes a real slice of the patients training corpus
// and encodes it in the fuzz wire format (one pair per line,
// NL \t SQL), so the fuzzer starts from the shapes the dedup stage
// actually sees in production.
func corpusSeed(n int) string {
	params := generator.DefaultParams()
	params.SizeSlotFills = 2
	var b strings.Builder
	count := 0
	generator.New(patients.Schema(), params, 1).Stream(func(p generator.Pair) {
		if count >= n {
			return
		}
		count++
		b.WriteString(p.NL)
		b.WriteByte('\t')
		b.WriteString(p.SQL)
		b.WriteByte('\n')
	})
	return b.String()
}

// decodePairs parses the fuzz wire format back into pairs. Lines
// without a tab become NL-only pairs — the dedup key covers both
// fields, so they exercise the SQL-empty corner.
func decodePairs(input string) []pipeline.Pair {
	var pairs []pipeline.Pair
	for _, line := range strings.Split(input, "\n") {
		if line == "" {
			continue
		}
		nl, sql, _ := strings.Cut(line, "\t")
		pairs = append(pairs, pipeline.Pair{NL: nl, SQL: sql, Stage: "fuzz"})
	}
	return pairs
}

// FuzzPipelineDedup mirrors internal/sqlast's fuzz targets for the
// streaming substrate: for any input stream, the dedup stage must (1)
// keep exactly the first occurrence of every (NL, SQL) key in arrival
// order — byte-identical to a sequential reference dedup, (2) count
// its drops, and (3) produce the same output at any worker count.
// Run with `go test -fuzz=FuzzPipelineDedup ./internal/pipeline`; the
// seed corpus (including generated patients pairs) runs in every
// ordinary `go test`.
func FuzzPipelineDedup(f *testing.F) {
	f.Add("")
	f.Add("a\tSELECT 1\n")
	f.Add("a\tSELECT 1\na\tSELECT 1\nb\tSELECT 2\na\tSELECT 1\n")
	f.Add("no tab line\nno tab line\n\t\n\tleading tab\n")
	f.Add("x\ty\nx\ty2\nx2\ty\n") // same NL, different SQL: distinct keys
	f.Add(corpusSeed(40) + corpusSeed(40))

	f.Fuzz(func(t *testing.T, input string) {
		pairs := decodePairs(input)

		// Sequential reference: first occurrence wins, order preserved.
		seen := map[string]bool{}
		var ref []pipeline.Pair
		for _, p := range pairs {
			if seen[p.Key()] {
				continue
			}
			seen[p.Key()] = true
			ref = append(ref, p)
		}

		var prev []pipeline.Pair
		for _, workers := range []int{1, 4} {
			g := pipeline.New(workers, pipeline.FromSlice("src", pairs), pipeline.Dedup())
			got := g.Collect()
			if len(got) != len(ref) {
				t.Fatalf("workers=%d: dedup kept %d pairs, reference kept %d", workers, len(got), len(ref))
			}
			for i := range got {
				if got[i] != ref[i] {
					t.Fatalf("workers=%d: pair %d = %+v, reference %+v", workers, i, got[i], ref[i])
				}
			}
			stats := g.Stats()
			last := stats[len(stats)-1]
			if wantHits := int64(len(pairs) - len(ref)); last.Extra["dedup_hits"] != wantHits {
				t.Fatalf("workers=%d: dedup_hits = %d, want %d", workers, last.Extra["dedup_hits"], wantHits)
			}
			if last.In != int64(len(pairs)) || last.Out != int64(len(ref)) {
				t.Fatalf("workers=%d: stats in/out = %d/%d, want %d/%d",
					workers, last.In, last.Out, len(pairs), len(ref))
			}
			if workers > 1 {
				for i := range got {
					if got[i] != prev[i] {
						t.Fatalf("output differs between worker counts at pair %d", i)
					}
				}
			}
			prev = got
		}
	})
}
