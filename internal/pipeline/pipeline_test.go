package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// mk builds a deterministic test stream of n distinct pairs.
func mk(n int) []Pair {
	out := make([]Pair, n)
	for i := range out {
		out[i] = Pair{
			NL:         fmt.Sprintf("show row %d", i),
			SQL:        fmt.Sprintf("SELECT %d", i),
			TemplateID: fmt.Sprintf("T%d", i%7),
		}
	}
	return out
}

func collect(workers int, stages ...Stage) []Pair {
	return New(workers, stages...).Collect()
}

func equalPairs(a, b []Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestMapOrderPreservedAtAnyWorkerCount(t *testing.T) {
	in := mk(500)
	upper := func(p Pair) Pair {
		p.NL = strings.ToUpper(p.NL)
		return p
	}
	want := collect(1, FromSlice("src", in), Map("upper", upper))
	for i, p := range want {
		if p.NL != strings.ToUpper(in[i].NL) {
			t.Fatalf("pair %d = %q, want uppercase of %q", i, p.NL, in[i].NL)
		}
	}
	for _, w := range []int{2, 3, 8, 16} {
		got := collect(w, FromSlice("src", in), Map("upper", upper))
		if !equalPairs(got, want) {
			t.Fatalf("workers=%d output differs from workers=1", w)
		}
	}
}

func TestFilterDropsAndPreservesOrder(t *testing.T) {
	in := mk(200)
	keep := func(p Pair) bool { return p.TemplateID != "T3" }
	want := collect(1, FromSlice("src", in), Filter("keep", keep))
	for _, p := range want {
		if p.TemplateID == "T3" {
			t.Fatalf("filtered template survived: %+v", p)
		}
	}
	if len(want) >= len(in) {
		t.Fatal("filter dropped nothing")
	}
	for _, w := range []int{2, 8} {
		if got := collect(w, FromSlice("src", in), Filter("keep", keep)); !equalPairs(got, want) {
			t.Fatalf("workers=%d filter output differs", w)
		}
	}
}

func TestSeededMapSplitsSeedByIndex(t *testing.T) {
	in := mk(300)
	stamp := func(p Pair, seed int64) (Pair, bool) {
		p.Origin = fmt.Sprintf("%d", seed)
		return p, seed%5 != 0 // also exercise dropping
	}
	want := collect(1, FromSlice("src", in), SeededMap("stamp", 42, stamp))
	for _, w := range []int{2, 7} {
		if got := collect(w, FromSlice("src", in), SeededMap("stamp", 42, stamp)); !equalPairs(got, want) {
			t.Fatalf("workers=%d seeded map output differs", w)
		}
	}
	// A different base seed must change the derived seeds.
	other := collect(1, FromSlice("src", in), SeededMap("stamp", 43, stamp))
	if equalPairs(other, want) {
		t.Fatal("base seed had no effect")
	}
}

func TestFuncExpandsInOrder(t *testing.T) {
	in := mk(50)
	expand := func(p Pair, emit func(Pair)) {
		emit(p)
		v := p
		v.Origin = "copy"
		emit(v)
	}
	got := collect(4, FromSlice("src", in), Func("expand", expand))
	if len(got) != 2*len(in) {
		t.Fatalf("expanded to %d pairs, want %d", len(got), 2*len(in))
	}
	for i, p := range in {
		if got[2*i] != p || got[2*i+1].Origin != "copy" || got[2*i+1].NL != p.NL {
			t.Fatalf("expansion order broken at %d", i)
		}
	}
}

func TestTeeObservesWithoutAltering(t *testing.T) {
	in := mk(80)
	var seen []Pair
	got := collect(2, FromSlice("src", in), Tee("watch", func(p Pair) { seen = append(seen, p) }))
	if !equalPairs(got, in) || !equalPairs(seen, in) {
		t.Fatal("tee altered or missed part of the stream")
	}
}

func TestDedupDropsExactDuplicates(t *testing.T) {
	in := mk(10)
	dups := append(append([]Pair{}, in...), in[2], in[5], in[5])
	// Duplicate text with different provenance must still be dropped.
	alt := in[7]
	alt.Origin = "paraphrase"
	dups = append(dups, alt)
	g := New(1, FromSlice("src", dups), Dedup())
	got := g.Collect()
	if !equalPairs(got, in) {
		t.Fatalf("dedup output = %d pairs, want the %d originals in order", len(got), len(in))
	}
	st := g.Stats()
	if st[1].Extra["dedup_hits"] != 4 {
		t.Fatalf("dedup_hits = %d, want 4", st[1].Extra["dedup_hits"])
	}
}

func TestStatsCountsAndLinks(t *testing.T) {
	in := mk(30)
	g := New(2,
		FromSlice("src", in),
		Filter("keep", func(p Pair) bool { return p.TemplateID != "T0" }),
		Map("id", func(p Pair) Pair { return p }),
	)
	out := g.Collect()
	st := g.Stats()
	if len(st) != 3 || st[0].Stage != "src" || st[1].Stage != "keep" || st[2].Stage != "id" {
		t.Fatalf("stats = %+v", st)
	}
	if st[0].Out != int64(len(in)) || st[1].In != st[0].Out || st[2].In != st[1].Out || st[2].Out != int64(len(out)) {
		t.Fatalf("in/out links broken: %+v", st)
	}
	if st[1].Out >= st[1].In {
		t.Fatal("filter stats did not record drops")
	}
}

func TestStreamStopsOnEmitError(t *testing.T) {
	in := mk(1000)
	wantErr := errors.New("disk full")
	n := 0
	err := New(4, FromSlice("src", in), Map("id", func(p Pair) Pair { return p })).Stream(func(p Pair) error {
		n++
		if n == 10 {
			return wantErr
		}
		return nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
	if n != 10 {
		t.Fatalf("emit called %d times after error", n)
	}
}

func TestChainEqualsFlatGraph(t *testing.T) {
	in := mk(120)
	upper := func(p Pair) Pair { p.NL = strings.ToUpper(p.NL); return p }
	keep := func(p Pair) bool { return p.TemplateID != "T1" }
	flat := collect(3, FromSlice("src", in), Map("u", upper), Filter("k", keep))
	chained := collect(3, FromSlice("src", in), Chain("both", Map("u", upper), Filter("k", keep)))
	if !equalPairs(flat, chained) {
		t.Fatal("chain output differs from flat graph")
	}
}

func TestFanGroupsByStage(t *testing.T) {
	in := mk(40)
	tag := func(origin string) Stage {
		return Map(origin, func(p Pair) Pair { p.Origin = origin; return p })
	}
	got := collect(2, FromSlice("src", in), Fan("fan", tag("a"), tag("b")))
	if len(got) != 2*len(in) {
		t.Fatalf("fan emitted %d pairs, want %d", len(got), 2*len(in))
	}
	for i := range in {
		if got[i].Origin != "a" || got[len(in)+i].Origin != "b" {
			t.Fatalf("fan merge not grouped by stage at %d", i)
		}
		if got[i].NL != in[i].NL || got[len(in)+i].NL != in[i].NL {
			t.Fatalf("fan reordered input at %d", i)
		}
	}
}

func TestStagePanicPropagates(t *testing.T) {
	check := func(name string, f func()) {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s: stage panic was swallowed", name)
			}
			if !strings.Contains(fmt.Sprint(r), "boom") {
				t.Fatalf("%s: panic %v does not carry the cause", name, r)
			}
		}()
		f()
	}
	check("sequential", func() {
		collect(1, FromSlice("src", mk(10)), Func("bad", func(p Pair, emit func(Pair)) { panic("boom") }))
	})
	check("parallel", func() {
		collect(8, FromSlice("src", mk(100)), Map("bad", func(p Pair) Pair { panic("boom") }))
	})
	check("chained", func() {
		collect(2, FromSlice("src", mk(10)), Chain("c", Tee("t", func(Pair) {}), Func("bad", func(p Pair, emit func(Pair)) { panic("boom") })))
	})
}

// drainGoroutines waits for transient graph goroutines to exit, then
// fails with a stack dump if the count never returns to the baseline.
func drainGoroutines(t *testing.T, baseline int) {
	t.Helper()
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: %d > baseline %d\n%s", runtime.NumGoroutine(), baseline, buf[:n])
}

func TestRunReturnsStageErrorNotPanic(t *testing.T) {
	in := mk(50)
	var fired bool
	g := New(4,
		FromSlice("src", in),
		Func("explode", func(p Pair, emit func(Pair)) {
			if p.SQL == "SELECT 7" {
				fired = true
				panic("boom")
			}
			emit(p)
		}),
	)
	got, err := g.CollectContext(context.Background())
	if !fired {
		t.Fatal("fault never fired")
	}
	var se *StageError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *StageError", err)
	}
	if se.Stage != "explode" || se.Index != 7 {
		t.Fatalf("StageError = %+v", se)
	}
	if se.Last == nil || se.Last.SQL != "SELECT 6" {
		t.Fatalf("StageError.Last = %+v", se.Last)
	}
	if len(got) != 7 {
		t.Fatalf("delivered %d pairs before the fault, want 7", len(got))
	}
}

func TestRunCancelledReturnsPrefix(t *testing.T) {
	baseline := runtime.NumGoroutine()
	in := mk(5000)
	ctx, cancel := context.WithCancel(context.Background())
	var got []Pair
	err := New(4, FromSlice("src", in), Map("id", func(p Pair) Pair { return p })).Run(ctx, func(p Pair) error {
		got = append(got, p)
		if len(got) == 25 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if len(got) < 25 || len(got) >= len(in) {
		t.Fatalf("delivered %d pairs, want a partial prefix >= 25", len(got))
	}
	for i, p := range got {
		if p != in[i] {
			t.Fatalf("delivered pairs are not a prefix at %d", i)
		}
	}
	drainGoroutines(t, baseline)
}

func TestRunPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	got, err := New(2, FromSlice("src", mk(100))).CollectContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("pre-cancelled run delivered %d pairs", len(got))
	}
}

func TestFailingStageLeaksNoGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()
	// The regression shape: a panic in the LAST sub-stage of a Chain
	// used to unwind Run before the inner goroutines finished, leaving
	// them blocked on their full internal channels forever. The fault
	// sits behind a busy upstream (many more pairs than chanBuf) so a
	// leak would be deterministic, and the whole thing runs inside a
	// Graph so the sentinel/drain interplay is exercised too.
	for _, workers := range []int{1, 8} {
		g := New(workers,
			FromSlice("src", mk(4000)),
			Chain("c",
				Map("id", func(p Pair) Pair { return p }),
				Func("bad", func(p Pair, emit func(Pair)) {
					if p.SQL == "SELECT 100" {
						panic("boom")
					}
					emit(p)
				}),
			),
			Map("down", func(p Pair) Pair { return p }),
		)
		_, err := g.CollectContext(context.Background())
		var se *StageError
		if !errors.As(err, &se) {
			t.Fatalf("workers=%d: err = %v, want *StageError", workers, err)
		}
		if se.Stage != "c" {
			t.Fatalf("workers=%d: failing stage = %q", workers, se.Stage)
		}
	}
	drainGoroutines(t, baseline)
}

func TestStageErrorPrefixWorkerInvariant(t *testing.T) {
	run := func(workers int) ([]Pair, *StageError) {
		g := New(workers,
			FromSlice("src", mk(300)),
			Map("bad", func(p Pair) Pair {
				if p.SQL == "SELECT 123" {
					panic("boom")
				}
				return p
			}),
		)
		got, err := g.CollectContext(context.Background())
		var se *StageError
		if !errors.As(err, &se) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		return got, se
	}
	got1, se1 := run(1)
	got16, se16 := run(16)
	if se1.Index != 123 || se16.Index != se1.Index {
		t.Fatalf("fault index not worker-invariant: %d vs %d", se1.Index, se16.Index)
	}
	if !equalPairs(got1, got16) {
		t.Fatalf("prefix not worker-invariant: %d vs %d pairs", len(got1), len(got16))
	}
}
