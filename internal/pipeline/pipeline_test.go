package pipeline

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// mk builds a deterministic test stream of n distinct pairs.
func mk(n int) []Pair {
	out := make([]Pair, n)
	for i := range out {
		out[i] = Pair{
			NL:         fmt.Sprintf("show row %d", i),
			SQL:        fmt.Sprintf("SELECT %d", i),
			TemplateID: fmt.Sprintf("T%d", i%7),
		}
	}
	return out
}

func collect(workers int, stages ...Stage) []Pair {
	return New(workers, stages...).Collect()
}

func equalPairs(a, b []Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestMapOrderPreservedAtAnyWorkerCount(t *testing.T) {
	in := mk(500)
	upper := func(p Pair) Pair {
		p.NL = strings.ToUpper(p.NL)
		return p
	}
	want := collect(1, FromSlice("src", in), Map("upper", upper))
	for i, p := range want {
		if p.NL != strings.ToUpper(in[i].NL) {
			t.Fatalf("pair %d = %q, want uppercase of %q", i, p.NL, in[i].NL)
		}
	}
	for _, w := range []int{2, 3, 8, 16} {
		got := collect(w, FromSlice("src", in), Map("upper", upper))
		if !equalPairs(got, want) {
			t.Fatalf("workers=%d output differs from workers=1", w)
		}
	}
}

func TestFilterDropsAndPreservesOrder(t *testing.T) {
	in := mk(200)
	keep := func(p Pair) bool { return p.TemplateID != "T3" }
	want := collect(1, FromSlice("src", in), Filter("keep", keep))
	for _, p := range want {
		if p.TemplateID == "T3" {
			t.Fatalf("filtered template survived: %+v", p)
		}
	}
	if len(want) >= len(in) {
		t.Fatal("filter dropped nothing")
	}
	for _, w := range []int{2, 8} {
		if got := collect(w, FromSlice("src", in), Filter("keep", keep)); !equalPairs(got, want) {
			t.Fatalf("workers=%d filter output differs", w)
		}
	}
}

func TestSeededMapSplitsSeedByIndex(t *testing.T) {
	in := mk(300)
	stamp := func(p Pair, seed int64) (Pair, bool) {
		p.Origin = fmt.Sprintf("%d", seed)
		return p, seed%5 != 0 // also exercise dropping
	}
	want := collect(1, FromSlice("src", in), SeededMap("stamp", 42, stamp))
	for _, w := range []int{2, 7} {
		if got := collect(w, FromSlice("src", in), SeededMap("stamp", 42, stamp)); !equalPairs(got, want) {
			t.Fatalf("workers=%d seeded map output differs", w)
		}
	}
	// A different base seed must change the derived seeds.
	other := collect(1, FromSlice("src", in), SeededMap("stamp", 43, stamp))
	if equalPairs(other, want) {
		t.Fatal("base seed had no effect")
	}
}

func TestFuncExpandsInOrder(t *testing.T) {
	in := mk(50)
	expand := func(p Pair, emit func(Pair)) {
		emit(p)
		v := p
		v.Origin = "copy"
		emit(v)
	}
	got := collect(4, FromSlice("src", in), Func("expand", expand))
	if len(got) != 2*len(in) {
		t.Fatalf("expanded to %d pairs, want %d", len(got), 2*len(in))
	}
	for i, p := range in {
		if got[2*i] != p || got[2*i+1].Origin != "copy" || got[2*i+1].NL != p.NL {
			t.Fatalf("expansion order broken at %d", i)
		}
	}
}

func TestTeeObservesWithoutAltering(t *testing.T) {
	in := mk(80)
	var seen []Pair
	got := collect(2, FromSlice("src", in), Tee("watch", func(p Pair) { seen = append(seen, p) }))
	if !equalPairs(got, in) || !equalPairs(seen, in) {
		t.Fatal("tee altered or missed part of the stream")
	}
}

func TestDedupDropsExactDuplicates(t *testing.T) {
	in := mk(10)
	dups := append(append([]Pair{}, in...), in[2], in[5], in[5])
	// Duplicate text with different provenance must still be dropped.
	alt := in[7]
	alt.Origin = "paraphrase"
	dups = append(dups, alt)
	g := New(1, FromSlice("src", dups), Dedup())
	got := g.Collect()
	if !equalPairs(got, in) {
		t.Fatalf("dedup output = %d pairs, want the %d originals in order", len(got), len(in))
	}
	st := g.Stats()
	if st[1].Extra["dedup_hits"] != 4 {
		t.Fatalf("dedup_hits = %d, want 4", st[1].Extra["dedup_hits"])
	}
}

func TestStatsCountsAndLinks(t *testing.T) {
	in := mk(30)
	g := New(2,
		FromSlice("src", in),
		Filter("keep", func(p Pair) bool { return p.TemplateID != "T0" }),
		Map("id", func(p Pair) Pair { return p }),
	)
	out := g.Collect()
	st := g.Stats()
	if len(st) != 3 || st[0].Stage != "src" || st[1].Stage != "keep" || st[2].Stage != "id" {
		t.Fatalf("stats = %+v", st)
	}
	if st[0].Out != int64(len(in)) || st[1].In != st[0].Out || st[2].In != st[1].Out || st[2].Out != int64(len(out)) {
		t.Fatalf("in/out links broken: %+v", st)
	}
	if st[1].Out >= st[1].In {
		t.Fatal("filter stats did not record drops")
	}
}

func TestStreamStopsOnEmitError(t *testing.T) {
	in := mk(1000)
	wantErr := errors.New("disk full")
	n := 0
	err := New(4, FromSlice("src", in), Map("id", func(p Pair) Pair { return p })).Stream(func(p Pair) error {
		n++
		if n == 10 {
			return wantErr
		}
		return nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
	if n != 10 {
		t.Fatalf("emit called %d times after error", n)
	}
}

func TestChainEqualsFlatGraph(t *testing.T) {
	in := mk(120)
	upper := func(p Pair) Pair { p.NL = strings.ToUpper(p.NL); return p }
	keep := func(p Pair) bool { return p.TemplateID != "T1" }
	flat := collect(3, FromSlice("src", in), Map("u", upper), Filter("k", keep))
	chained := collect(3, FromSlice("src", in), Chain("both", Map("u", upper), Filter("k", keep)))
	if !equalPairs(flat, chained) {
		t.Fatal("chain output differs from flat graph")
	}
}

func TestFanGroupsByStage(t *testing.T) {
	in := mk(40)
	tag := func(origin string) Stage {
		return Map(origin, func(p Pair) Pair { p.Origin = origin; return p })
	}
	got := collect(2, FromSlice("src", in), Fan("fan", tag("a"), tag("b")))
	if len(got) != 2*len(in) {
		t.Fatalf("fan emitted %d pairs, want %d", len(got), 2*len(in))
	}
	for i := range in {
		if got[i].Origin != "a" || got[len(in)+i].Origin != "b" {
			t.Fatalf("fan merge not grouped by stage at %d", i)
		}
		if got[i].NL != in[i].NL || got[len(in)+i].NL != in[i].NL {
			t.Fatalf("fan reordered input at %d", i)
		}
	}
}

func TestStagePanicPropagates(t *testing.T) {
	check := func(name string, f func()) {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s: stage panic was swallowed", name)
			}
			if !strings.Contains(fmt.Sprint(r), "boom") {
				t.Fatalf("%s: panic %v does not carry the cause", name, r)
			}
		}()
		f()
	}
	check("sequential", func() {
		collect(1, FromSlice("src", mk(10)), Func("bad", func(p Pair, emit func(Pair)) { panic("boom") }))
	})
	check("parallel", func() {
		collect(8, FromSlice("src", mk(100)), Map("bad", func(p Pair) Pair { panic("boom") }))
	})
	check("chained", func() {
		collect(2, FromSlice("src", mk(10)), Chain("c", Tee("t", func(Pair) {}), Func("bad", func(p Pair, emit func(Pair)) { panic("boom") })))
	})
}
