// Package pipeline is the streaming stage substrate of the DBPal
// training pipeline: a Stage is a deterministic transform over a
// stream of training Pairs, and a Graph wires stages together with
// bounded channels, per-stage instrumentation, and worker-invariant
// parallelism built on internal/par.
//
// Determinism contract. Like every parallel construct in this
// repository (DESIGN.md, "Parallel substrate"), the worker count is a
// throughput knob, not a semantics knob: a Graph emits the same pairs
// in the same order at workers=1 and workers=64.
//
//   - Sequential stages (Func, Tee, Dedup, sources) run on one
//     goroutine and consume the stream in arrival order, so stateful
//     transforms — an RNG-bearing augmenter, a dedup map — keep the
//     exact trajectory of the historical sequential pipeline.
//   - Parallel stages (Map, Filter, SeededMap) fan items out to a
//     bounded pool and re-emit results in input order through a
//     sequencing window, so pure per-item work parallelizes without
//     reordering. SeededMap derives each item's seed from the stream
//     index with par.SplitSeed, never from scheduling.
//
// Stages run concurrently with each other (pipelining), so a Graph
// overlaps generation, augmentation, and lemmatization even when every
// stage is sequential internally.
package pipeline

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/generator"
	"repro/internal/par"
)

// Pair is the stream element: one NL–SQL training pair, carrying the
// provenance fields (Stage, Origin) the stages stamp and preserve.
type Pair = generator.Pair

// chanBuf is the per-edge channel buffer. Large enough to decouple
// stage bursts, small enough to keep memory constant: a Graph never
// holds more than stages*chanBuf pairs in flight (plus the sequencing
// windows of its parallel stages).
const chanBuf = 256

// Stage is one streaming transform. Run consumes the input stream
// until it is closed and emits output pairs via emit.
//
// Contract:
//   - in is nil for the first stage of a Graph, which must therefore
//     be a source (a stage that ignores in).
//   - emit must be called from one goroutine at a time; Run returns
//     only after everything has been emitted.
//   - workers bounds internal parallelism (<= 0 means all cores). A
//     stage's output must not depend on workers.
//   - A Stage instance is single-use: it may own per-run state (RNG,
//     dedup map), so build a fresh instance for every Graph run.
type Stage interface {
	Name() string
	Run(in <-chan Pair, emit func(Pair), workers int)
}

// CounterStage is implemented by stages that report extra counters
// (dedup hits, per-origin variant counts) into their Stats snapshot.
// Counters is called once, after Run returns.
type CounterStage interface {
	Stage
	Counters() map[string]int64
}

// Stats is one stage's instrumentation snapshot after a Graph run.
// Stages run concurrently, so WallNS measures each stage's
// first-input-to-last-output span; the spans of adjacent stages
// overlap. Use the per-stage benchmarks for isolated costs.
type Stats struct {
	Stage  string           `json:"stage"`
	In     int64            `json:"in"`
	Out    int64            `json:"out"`
	WallNS int64            `json:"wall_ns"`
	Extra  map[string]int64 `json:"extra,omitempty"`
}

// StageError is the typed failure a Graph run returns when a stage
// panics: the stage's name, how far it had gotten, what it panicked
// with, and the provenance of the last pair it emitted. Because every
// stage is order-preserving, the pairs delivered before the error are
// always a prefix of the canonical stream — for a deterministic fault
// (same stage, same item) the prefix is identical at any worker count.
type StageError struct {
	// Stage is the name of the stage that failed.
	Stage string
	// Index is the number of pairs the stage had emitted when it
	// failed — the stream position of the fault.
	Index int64
	// Recovered is the recovered panic value.
	Recovered any
	// Last is a copy of the last pair the stage emitted before
	// failing (nil when it failed before emitting anything); its
	// Stage/Origin fields carry the provenance trail.
	Last *Pair
}

// Error implements error.
func (e *StageError) Error() string {
	if e.Last != nil {
		return fmt.Sprintf("pipeline: stage %q panicked after emitting %d pairs (last origin %s/%s): %v",
			e.Stage, e.Index, e.Last.Stage, e.Last.Origin, e.Recovered)
	}
	return fmt.Sprintf("pipeline: stage %q panicked after emitting %d pairs: %v", e.Stage, e.Index, e.Recovered)
}

// graphCancel is the sentinel panic the graph's emit wrappers raise to
// unwind a stage once the run context is done (or the consumer's emit
// callback failed). It is how cancellation reaches arbitrarily deep
// into a running stage — a source in the middle of a recursive
// generator included — without every stage having to poll a context.
// Stage goroutines recover it and treat it as a graceful stop, never
// as a StageError.
type graphCancelSentinel struct{}

var graphCancel = graphCancelSentinel{}

// Graph is a runnable chain of stages. Build one per run (stages are
// single-use), execute it with Run, Stream, or Collect, then read
// Stats.
type Graph struct {
	workers int
	stages  []Stage
	stats   []Stats
}

// New wires stages into a graph. workers bounds the pool of every
// parallel stage (0 = all cores); it never changes the output.
func New(workers int, stages ...Stage) *Graph {
	if len(stages) == 0 {
		panic("pipeline: empty graph")
	}
	return &Graph{workers: workers, stages: stages}
}

// Run executes the graph, calling emit for every pair the final stage
// produces, in order, on the calling goroutine — constant memory for
// any corpus size.
//
// Failure contract (DESIGN.md, "Fault tolerance"):
//   - A stage panic does not crash the caller: the run unwinds every
//     stage without leaking goroutines and Run returns a *StageError
//     identifying the stage, stream position, and recovered value.
//     The pairs emitted before the error are a prefix of the canonical
//     stream; for a deterministic fault the prefix is identical at any
//     worker count.
//   - When ctx is done, in-flight stages are unwound (emit wrappers
//     stop the stream cooperatively) and Run returns ctx.Err(). Pairs
//     already delivered remain a valid prefix of the canonical stream.
//   - If emit returns an error, Run stops invoking it, aborts the
//     upstream stages the same way, and returns that first error.
//
// A nil ctx is treated as context.Background().
func (g *Graph) Run(ctx context.Context, emit func(Pair) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	g.stats = make([]Stats, len(g.stages))
	for i, st := range g.stages {
		g.stats[i].Stage = st.Name()
	}
	// An already-done context runs nothing: without this check the
	// source could race a full channel buffer ahead of the watcher.
	if err := ctx.Err(); err != nil {
		return err
	}
	var wg sync.WaitGroup
	var cancelled atomic.Bool
	var errOnce sync.Once
	var stageErr *StageError

	// The watcher translates ctx expiry into the cancelled flag the
	// emit wrappers poll; watchDone stops it when the run finishes
	// first. It is deliberately outside wg: it only exits once Run
	// returns (the deferred close), after every stage has drained.
	watchDone := make(chan struct{})
	defer close(watchDone)
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				cancelled.Store(true)
			case <-watchDone:
			}
		}()
	}

	var in <-chan Pair
	for i, st := range g.stages {
		out := make(chan Pair, chanBuf)
		wg.Add(1)
		go func(i int, st Stage, in <-chan Pair, out chan<- Pair) {
			var last *Pair
			defer wg.Done()
			// Drain a possibly unconsumed input (failed, cancelled, or
			// lazy stage) so upstream senders can finish. Runs after
			// close(out), which runs after the recover below.
			defer func() {
				if in != nil {
					for range in {
					}
				}
			}()
			defer close(out)
			defer func() {
				r := recover()
				if r == nil {
					return
				}
				if _, ok := r.(graphCancelSentinel); ok {
					return // cooperative unwind, not a fault
				}
				errOnce.Do(func() {
					stageErr = &StageError{Stage: st.Name(), Index: g.stats[i].Out, Recovered: r, Last: last}
				})
				// Make sure the rest of the graph unwinds too: a fault
				// in one stage ends the whole run.
				cancelled.Store(true)
			}()
			start := time.Now() //lint:allow determinism WallNS is instrumentation; it never feeds the stream
			st.Run(in, func(p Pair) {
				if cancelled.Load() {
					panic(graphCancel)
				}
				g.stats[i].Out++
				q := p
				last = &q
				out <- p
			}, g.workers)
			g.stats[i].WallNS = time.Since(start).Nanoseconds()
			if cs, ok := st.(CounterStage); ok {
				g.stats[i].Extra = cs.Counters()
			}
		}(i, st, in, out)
		in = out
	}

	// Everything the final stage emitted before a fault or
	// cancellation is still a valid prefix of the canonical stream, so
	// it is delivered (a SIGINT-cancelled generation run flushes what
	// it computed). Only the caller's own emit error stops delivery —
	// the contract is that emit is never invoked again after failing.
	var emitErr error
	for p := range in {
		if emitErr == nil {
			if err := emit(p); err != nil {
				emitErr = err
				// Abort upstream work instead of computing pairs no
				// one will consume.
				cancelled.Store(true)
			}
		}
	}
	// Bounded: the range over in above only ends after every stage
	// closed its output (defer close on unwind), so all stage
	// goroutines are already returning when this join runs.
	wg.Wait() //lint:allow ctxdrop stage goroutines close their outputs on unwind before this join; cancellation drains via the stage chain
	for i := 1; i < len(g.stats); i++ {
		g.stats[i].In = g.stats[i-1].Out
	}
	switch {
	case stageErr != nil:
		return stageErr
	case emitErr != nil:
		return emitErr
	case ctx.Err() != nil:
		return ctx.Err()
	}
	return nil
}

// Stream runs the graph without a cancellation context; see Run for
// the emit and failure contract.
func (g *Graph) Stream(emit func(Pair) error) error {
	return g.Run(context.Background(), emit)
}

// Collect runs the graph and returns every emitted pair. A stage
// panic is re-raised as a *StageError panic (Collect has no error
// return); callers that want the error instead use CollectContext.
func (g *Graph) Collect() []Pair {
	out, err := g.CollectContext(context.Background())
	if err != nil {
		panic(err)
	}
	return out
}

// CollectContext runs the graph under ctx and returns every emitted
// pair, plus the run error (nil, *StageError, or ctx.Err()). On error
// the returned pairs are the prefix delivered before the failure.
func (g *Graph) CollectContext(ctx context.Context) ([]Pair, error) {
	var out []Pair
	err := g.Run(ctx, func(p Pair) error {
		out = append(out, p)
		return nil
	})
	return out, err
}

// Stats returns the per-stage snapshot of the last Stream/Collect.
func (g *Graph) Stats() []Stats { return g.stats }

// ---------------------------------------------------------------------
// Sequential stage constructors.
// ---------------------------------------------------------------------

type sourceStage struct {
	name     string
	gen      func(emit func(Pair))
	counters func() map[string]int64
}

func (s *sourceStage) Name() string { return s.name }
func (s *sourceStage) Run(_ <-chan Pair, emit func(Pair), _ int) {
	s.gen(emit)
}
func (s *sourceStage) Counters() map[string]int64 {
	if s.counters == nil {
		return nil
	}
	return s.counters()
}

// Source builds a source stage (the head of a graph) from a generator
// function that emits the whole stream and returns.
func Source(name string, gen func(emit func(Pair))) Stage {
	return &sourceStage{name: name, gen: gen}
}

// SourceWithCounters is Source plus an extra-counter hook read after
// the run (e.g. cache hits of a memoized generation stage).
func SourceWithCounters(name string, gen func(emit func(Pair)), counters func() map[string]int64) Stage {
	return &sourceStage{name: name, gen: gen, counters: counters}
}

// FromSlice builds a source stage replaying a fixed slice — the shape
// used by per-stage benchmarks and cached generation.
func FromSlice(name string, pairs []Pair) Stage {
	return Source(name, func(emit func(Pair)) {
		for _, p := range pairs {
			emit(p)
		}
	})
}

type funcStage struct {
	name     string
	fn       func(Pair, func(Pair))
	counters func() map[string]int64
}

func (f *funcStage) Name() string { return f.name }
func (f *funcStage) Run(in <-chan Pair, emit func(Pair), _ int) {
	for p := range in {
		f.fn(p, emit)
	}
}
func (f *funcStage) Counters() map[string]int64 {
	if f.counters == nil {
		return nil
	}
	return f.counters()
}

// Func builds a sequential per-item expander stage: fn is called once
// per input pair in stream order and may emit any number of outputs.
// This is the shape for stateful transforms (a shared RNG, a dedup
// map) whose trajectory must match the historical sequential code.
func Func(name string, fn func(p Pair, emit func(Pair))) Stage {
	return &funcStage{name: name, fn: fn}
}

// FuncWithCounters is Func plus an extra-counter hook read after the
// run.
func FuncWithCounters(name string, fn func(p Pair, emit func(Pair)), counters func() map[string]int64) Stage {
	return &funcStage{name: name, fn: fn, counters: counters}
}

// Tee builds a pass-through stage that calls observe on every pair
// without altering the stream — progress reporting, side-channel
// writes, invariant checks.
func Tee(name string, observe func(Pair)) Stage {
	return Func(name, func(p Pair, emit func(Pair)) {
		observe(p)
		emit(p)
	})
}

// Dedup builds a stage that drops exact-duplicate pairs (same NL and
// SQL, first occurrence wins) and reports the drop count as the
// "dedup_hits" counter. Distinct pre-lemmatization surface forms can
// collapse to one post-lemmatization string, so the default pipeline
// runs this after the lemmatizer.
func Dedup() Stage {
	seen := map[string]bool{}
	var hits int64
	return FuncWithCounters("dedup",
		func(p Pair, emit func(Pair)) {
			k := p.Key()
			if seen[k] {
				hits++
				return
			}
			seen[k] = true
			emit(p)
		},
		func() map[string]int64 { return map[string]int64{"dedup_hits": hits} })
}

// ---------------------------------------------------------------------
// Parallel stage constructors (worker pools, order-preserving).
// ---------------------------------------------------------------------

type mapStage struct {
	name   string
	seeded bool
	base   int64
	fn     func(p Pair, seed int64) (Pair, bool)
}

// Map builds a parallel per-item map stage. fn must be pure (no shared
// state): items are processed on a bounded pool and re-emitted in
// input order, so the output is identical at any worker count.
func Map(name string, fn func(Pair) Pair) Stage {
	return &mapStage{name: name, fn: func(p Pair, _ int64) (Pair, bool) { return fn(p), true }}
}

// Filter builds a parallel predicate stage: pairs for which keep
// returns false are dropped, order is preserved.
func Filter(name string, keep func(Pair) bool) Stage {
	return &mapStage{name: name, fn: func(p Pair, _ int64) (Pair, bool) { return p, keep(p) }}
}

// SeededMap builds a parallel per-item transform whose randomness is
// split per stream index: item i receives par.SplitSeed(base, i), so
// its draws depend only on its position, never on scheduling or pool
// size. fn may drop an item by returning false.
func SeededMap(name string, base int64, fn func(p Pair, seed int64) (Pair, bool)) Stage {
	return &mapStage{name: name, seeded: true, base: base, fn: fn}
}

func (m *mapStage) Name() string { return m.name }

type mapResult struct {
	p      Pair
	ok     bool
	failed bool // fn panicked on this item
	cause  any  // the recovered value when failed
}

type mapJob struct {
	p    Pair
	seed int64
	done chan mapResult
}

func (m *mapStage) Run(in <-chan Pair, emit func(Pair), workers int) {
	w := par.Count(workers)
	if w <= 1 {
		i := 0
		for p := range in {
			var seed int64
			if m.seeded {
				seed = par.SplitSeed(m.base, i)
			}
			if q, ok := m.fn(p, seed); ok {
				emit(q)
			}
			i++
		}
		return
	}

	jobs := make(chan *mapJob, w)
	order := make(chan *mapJob, 2*w) // sequencing window: bounds in-flight items
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				func() {
					defer func() {
						if r := recover(); r != nil {
							j.done <- mapResult{failed: true, cause: r}
						}
					}()
					q, ok := m.fn(j.p, j.seed)
					j.done <- mapResult{p: q, ok: ok}
				}()
			}
		}()
	}
	go func() {
		i := 0
		for p := range in {
			j := &mapJob{p: p, done: make(chan mapResult, 1)}
			if m.seeded {
				j.seed = par.SplitSeed(m.base, i)
			}
			order <- j // blocks once 2w items are in flight
			jobs <- j
			i++
		}
		close(jobs)
		close(order)
	}()
	// Results are consumed in input order, and the stream fail-stops at
	// the first item whose fn panicked: earlier items were all emitted,
	// later ones are drained and discarded — so the emitted prefix is
	// the same at any worker count. A panic raised by emit itself (the
	// graph's cancellation sentinel) is captured the same way so the
	// feeder and workers always drain before Run unwinds.
	var panicked any
	for j := range order {
		r := <-j.done
		if panicked != nil {
			continue // draining after a fault
		}
		if r.failed {
			panicked = r.cause
			continue
		}
		if !r.ok {
			continue
		}
		func() {
			defer func() {
				if e := recover(); e != nil {
					panicked = e
				}
			}()
			emit(r.p)
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// ---------------------------------------------------------------------
// Combinators over stages.
// ---------------------------------------------------------------------

type chainStage struct {
	name string
	subs []Stage
}

// Chain composes stages into one stage, wiring internal buffered
// channels exactly as a Graph does. Useful for handing a multi-step
// transform to a combinator that expects a single Stage.
func Chain(name string, subs ...Stage) Stage {
	if len(subs) == 0 {
		panic("pipeline: empty chain")
	}
	return &chainStage{name: name, subs: subs}
}

func (c *chainStage) Name() string { return c.name }
func (c *chainStage) Run(in <-chan Pair, emit func(Pair), workers int) {
	cur := in
	var panicOnce sync.Once
	var panicked any
	var wg sync.WaitGroup
	for _, st := range c.subs[:len(c.subs)-1] {
		next := make(chan Pair, chanBuf)
		wg.Add(1)
		go func(st Stage, in <-chan Pair, out chan<- Pair) {
			defer wg.Done()
			defer func() {
				if in != nil {
					for range in {
					}
				}
			}()
			defer close(out)
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
				}
			}()
			st.Run(in, func(p Pair) { out <- p }, workers)
		}(st, cur, next)
		cur = next
	}
	// The last sub-stage runs inline, so its panic must be caught here:
	// letting it unwind Run directly would strand the inner goroutines
	// blocked on their full channels — the classic failing-stage leak.
	// Catch it, drain the internal edge so they finish, wait, then
	// re-raise the original value (never a formatted copy: the graph
	// needs the value itself to build a StageError or recognize its
	// cancellation sentinel).
	func() {
		defer func() {
			if r := recover(); r != nil {
				panicOnce.Do(func() { panicked = r })
			}
		}()
		c.subs[len(c.subs)-1].Run(cur, emit, workers)
	}()
	if cur != in {
		for range cur {
		}
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

type fanStage struct {
	name string
	subs []Stage
}

// Fan replicates the input stream to every sub-stage and emits their
// outputs grouped by stage, in stage order: all of the first stage's
// output (streamed through), then the second's, and so on. The
// grouping makes the merge deterministic at the cost of buffering the
// later stages' outputs, so put the largest producer first.
func Fan(name string, subs ...Stage) Stage {
	if len(subs) == 0 {
		panic("pipeline: empty fan")
	}
	return &fanStage{name: name, subs: subs}
}

func (f *fanStage) Name() string { return f.name }
func (f *fanStage) Run(in <-chan Pair, emit func(Pair), workers int) {
	n := len(f.subs)
	ins := make([]chan Pair, n)
	for i := range ins {
		ins[i] = make(chan Pair, chanBuf)
	}
	buffered := make([][]Pair, n)
	var panicOnce sync.Once
	var panicked any
	var wg sync.WaitGroup
	for i, st := range f.subs {
		wg.Add(1)
		go func(i int, st Stage) {
			defer wg.Done()
			defer func() {
				for range ins[i] {
				}
			}()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
				}
			}()
			if i == 0 {
				st.Run(ins[i], emit, workers) // only goroutine emitting until Wait
				return
			}
			st.Run(ins[i], func(p Pair) { buffered[i] = append(buffered[i], p) }, workers)
		}(i, st)
	}
	if in != nil {
		for p := range in {
			for i := range ins {
				ins[i] <- p
			}
		}
	}
	for i := range ins {
		close(ins[i])
	}
	wg.Wait()
	if panicked != nil {
		// Re-raise the original value so the graph can type it (see
		// chainStage.Run).
		panic(panicked)
	}
	for _, buf := range buffered[1:] {
		for _, p := range buf {
			emit(p)
		}
	}
}
