package lexicon

import (
	"testing"

	"repro/internal/schema"
)

func TestSlotFillsNonEmpty(t *testing.T) {
	slots := []string{
		SlotSelect, SlotCount, SlotFrom, SlotWhere, SlotEqual,
		SlotGreater, SlotLess, SlotBetween, SlotMax, SlotMin, SlotAvg,
		SlotSum, SlotGroup, SlotOrderAsc, SlotOrderDsc, SlotAnd, SlotOr,
		SlotNot, SlotDistinct, SlotExists,
	}
	for _, s := range slots {
		fills := Fills(s)
		if len(fills) < 2 {
			t.Errorf("slot %s has %d fills; every slot needs alternatives", s, len(fills))
		}
		seen := map[string]bool{}
		for _, f := range fills {
			if f == "" {
				t.Errorf("slot %s has an empty fill", s)
			}
			if seen[f] {
				t.Errorf("slot %s has duplicate fill %q", s, f)
			}
			seen[f] = true
		}
	}
	if Fills("NoSuchSlot") != nil {
		t.Error("unknown slot should return nil")
	}
}

func TestCanonicalFirstFill(t *testing.T) {
	// The generator relies on the first fill being the canonical
	// phrasing used in documentation examples.
	if SlotFills[SlotSelect][0] != "show me" {
		t.Errorf("canonical SelectPhrase = %q", SlotFills[SlotSelect][0])
	}
	if SlotFills[SlotCount][0] != "how many" {
		t.Errorf("canonical CountPhrase = %q", SlotFills[SlotCount][0])
	}
}

func TestComparativeFor(t *testing.T) {
	c, ok := ComparativeFor(schema.DomainAge)
	if !ok {
		t.Fatal("age domain must have comparatives")
	}
	if len(c.Greater) == 0 || c.Greater[0] != "older than" {
		t.Fatalf("age greater = %v", c.Greater)
	}
	if len(c.Less) == 0 || c.Less[0] != "younger than" {
		t.Fatalf("age less = %v", c.Less)
	}
	if _, ok := ComparativeFor(schema.DomainNone); ok {
		t.Fatal("DomainNone has no comparatives")
	}
	for _, d := range []schema.Domain{
		schema.DomainLength, schema.DomainHeight, schema.DomainArea,
		schema.DomainMoney, schema.DomainDuration, schema.DomainWeight,
		schema.DomainCount,
	} {
		if c, ok := ComparativeFor(d); !ok || len(c.Greater) == 0 || len(c.Less) == 0 {
			t.Errorf("domain %s missing comparatives", d)
		}
	}
}

func TestSynonyms(t *testing.T) {
	if got := Synonyms("doctor"); len(got) == 0 || got[0] != "physician" {
		t.Fatalf("doctor synonyms = %v", got)
	}
	if Synonyms("zzz-not-a-word") != nil {
		t.Fatal("unknown word should have nil synonyms")
	}
	// Synonyms must not contain the head word itself.
	for w, syns := range GeneralSynonyms {
		for _, s := range syns {
			if s == w {
				t.Errorf("word %q lists itself as a synonym", w)
			}
		}
	}
}
