// Package lexicon holds the manually crafted slot-fill dictionaries
// that the generator uses to instantiate the NL side of the seed
// templates ("what is" / "show me" for the SelectPhrase, and so on),
// plus domain-aware comparative and superlative phrase dictionaries
// used by the "other augmentations" step of the paper (e.g. replacing
// "greater than" with "older than" when the column domain is age).
package lexicon

import (
	"repro/internal/schema"
)

// Slot names used by the NL templates.
const (
	SlotSelect   = "SelectPhrase"
	SlotCount    = "CountPhrase"
	SlotFrom     = "FromPhrase"
	SlotWhere    = "WherePhrase"
	SlotEqual    = "EqualPhrase"
	SlotGreater  = "GreaterPhrase"
	SlotLess     = "LessPhrase"
	SlotBetween  = "BetweenPhrase"
	SlotMax      = "MaxPhrase"
	SlotMin      = "MinPhrase"
	SlotAvg      = "AvgPhrase"
	SlotSum      = "SumPhrase"
	SlotGroup    = "GroupPhrase"
	SlotOrderAsc = "OrderAscPhrase"
	SlotOrderDsc = "OrderDescPhrase"
	SlotAnd      = "AndPhrase"
	SlotOr       = "OrPhrase"
	SlotNot      = "NotPhrase"
	SlotDistinct = "DistinctPhrase"
	SlotExists   = "ExistsPhrase"
)

// SlotFills maps each slot to its manually crafted phrase alternatives.
// The first entry of each slot is the most "canonical" phrasing.
var SlotFills = map[string][]string{
	SlotSelect: {
		"show me", "what is", "what are", "list", "give me", "display",
		"show", "find", "tell me", "get", "return", "retrieve", "present",
		"i want to see", "can you show me", "output",
	},
	SlotCount: {
		"how many", "what is the number of", "count the", "give me the number of",
		"find the number of", "show me the count of", "what is the total number of",
	},
	SlotFrom: {
		"of all", "of", "of the", "for all", "for", "from all", "from the",
		"among all", "belonging to",
	},
	SlotWhere: {
		"with", "whose", "where", "that have", "having", "for which",
		"in which", "such that",
	},
	SlotEqual: {
		"is", "equals", "equal to", "is exactly", "being", "of", "at",
		"is equal to",
	},
	SlotGreater: {
		"greater than", "more than", "above", "over", "higher than",
		"exceeding", "at least", "bigger than",
	},
	SlotLess: {
		"less than", "smaller than", "below", "under", "lower than",
		"at most", "fewer than",
	},
	SlotBetween: {
		"between", "in the range of", "ranging from", "from",
	},
	SlotMax: {
		"maximum", "highest", "largest", "greatest", "biggest", "top",
		"most",
	},
	SlotMin: {
		"minimum", "lowest", "smallest", "least", "bottom", "fewest",
	},
	SlotAvg: {
		"average", "mean", "typical", "expected",
	},
	SlotSum: {
		"total", "sum of", "overall", "combined", "aggregate",
	},
	SlotGroup: {
		"for each", "per", "grouped by", "by each", "broken down by",
		"for every",
	},
	SlotOrderAsc: {
		"sorted by", "ordered by", "in ascending order of", "arranged by",
		"ranked by",
	},
	SlotOrderDsc: {
		"sorted descending by", "in descending order of",
		"ordered from highest to lowest by", "ranked top down by",
	},
	SlotAnd: {
		"and", "as well as", "and also", "along with",
	},
	SlotOr: {
		"or", "or else", "or alternatively",
	},
	SlotNot: {
		"not", "is not", "other than", "excluding", "except",
	},
	SlotDistinct: {
		"distinct", "different", "unique",
	},
	SlotExists: {
		"that have", "that appear in", "present in", "that exist in",
	},
}

// Fills returns the alternatives for a slot (nil for unknown slots).
func Fills(slot string) []string {
	return SlotFills[slot]
}

// Comparative describes domain-specific phrasing for a comparison
// direction.
type Comparative struct {
	Greater []string
	Less    []string
	Max     []string
	Min     []string
}

// comparatives maps column domains to domain-aware phrasings. The
// augmenter substitutes these for the generic phrases when the
// predicate's column carries the domain annotation.
var comparatives = map[schema.Domain]Comparative{
	schema.DomainAge: {
		Greater: []string{"older than", "above the age of", "aged over"},
		Less:    []string{"younger than", "below the age of", "aged under"},
		Max:     []string{"oldest"},
		Min:     []string{"youngest"},
	},
	schema.DomainLength: {
		Greater: []string{"longer than"},
		Less:    []string{"shorter than"},
		Max:     []string{"longest"},
		Min:     []string{"shortest"},
	},
	schema.DomainHeight: {
		Greater: []string{"taller than", "higher than"},
		Less:    []string{"shorter than", "lower than"},
		Max:     []string{"tallest", "highest"},
		Min:     []string{"shortest", "lowest"},
	},
	schema.DomainArea: {
		Greater: []string{"larger than", "bigger than"},
		Less:    []string{"smaller than"},
		Max:     []string{"largest", "biggest"},
		Min:     []string{"smallest"},
	},
	schema.DomainMoney: {
		Greater: []string{"more expensive than", "costlier than"},
		Less:    []string{"cheaper than"},
		Max:     []string{"most expensive", "priciest"},
		Min:     []string{"cheapest"},
	},
	schema.DomainDuration: {
		Greater: []string{"longer than"},
		Less:    []string{"shorter than"},
		Max:     []string{"longest"},
		Min:     []string{"shortest"},
	},
	schema.DomainWeight: {
		Greater: []string{"heavier than"},
		Less:    []string{"lighter than"},
		Max:     []string{"heaviest"},
		Min:     []string{"lightest"},
	},
	schema.DomainCount: {
		Greater: []string{"more numerous than"},
		Less:    []string{"fewer than"},
		Max:     []string{"most numerous"},
		Min:     []string{"fewest"},
	},
}

// ComparativeFor returns the domain-aware comparative phrasing for a
// domain, and whether one exists.
func ComparativeFor(d schema.Domain) (Comparative, bool) {
	c, ok := comparatives[d]
	return c, ok
}

// GeneralSynonyms is a small general-purpose synonym dictionary used to
// instantiate simple variations of NL words ("doctor" vs "physician").
// Schema annotations extend these per-column/table.
var GeneralSynonyms = map[string][]string{
	"doctor":     {"physician", "clinician"},
	"patient":    {"case", "inpatient"},
	"hospital":   {"clinic", "medical center"},
	"disease":    {"illness", "condition", "ailment"},
	"diagnosis":  {"finding"},
	"city":       {"town", "municipality"},
	"state":      {"province", "region"},
	"country":    {"nation"},
	"mountain":   {"peak", "summit"},
	"river":      {"stream", "waterway"},
	"lake":       {"reservoir"},
	"population": {"number of residents", "number of inhabitants"},
	"area":       {"size", "surface area"},
	"name":       {"title"},
	"age":        {"years of age"},
	"salary":     {"pay", "wage", "compensation"},
	"employee":   {"worker", "staff member"},
	"department": {"division", "unit"},
	"student":    {"pupil"},
	"teacher":    {"instructor"},
	"course":     {"class"},
	"flight":     {"trip"},
	"airline":    {"carrier"},
	"airport":    {"airfield"},
	"car":        {"vehicle", "automobile"},
	"price":      {"cost"},
	"customer":   {"client", "buyer"},
	"order":      {"purchase"},
	"product":    {"item", "good"},
	"song":       {"track", "tune"},
	"album":      {"record"},
	"team":       {"club", "squad"},
	"player":     {"athlete"},
	"stadium":    {"arena", "venue"},
	"length":     {"duration", "extent"},
	"height":     {"elevation", "altitude"},
	"gender":     {"sex"},
}

// Synonyms returns the synonym list for a word (nil when none).
func Synonyms(word string) []string {
	return GeneralSynonyms[word]
}
