// Package postag is a rule-based English part-of-speech tagger for
// the query-domain vocabulary. The paper names POS tagging as the next
// augmentation refinement (§3.2.3: "use part-of-speech tags to apply
// the word removal only for certain classes of words"); this package
// provides that capability — closed-class word lists plus suffix
// heuristics, which is plenty for the short, formulaic NL questions
// the pipeline manipulates.
package postag

import (
	"strings"
	"unicode"
)

// Tag is a coarse part-of-speech class.
type Tag int

// Coarse tag set.
const (
	Noun Tag = iota
	Verb
	Adjective
	Adverb
	Determiner
	Preposition
	Pronoun
	Conjunction
	Number
	Wh
	Placeholder
	Other
)

// String names the tag.
func (t Tag) String() string {
	switch t {
	case Noun:
		return "NOUN"
	case Verb:
		return "VERB"
	case Adjective:
		return "ADJ"
	case Adverb:
		return "ADV"
	case Determiner:
		return "DET"
	case Preposition:
		return "PREP"
	case Pronoun:
		return "PRON"
	case Conjunction:
		return "CONJ"
	case Number:
		return "NUM"
	case Wh:
		return "WH"
	case Placeholder:
		return "PH"
	default:
		return "OTHER"
	}
}

// Closed-class word lists.
var (
	determiners  = wordSet("the a an this that these those each every all any some no both either neither its their his her my our your")
	prepositions = wordSet("of in on at by for with from to into under over between among through above below within without against per across during until upon")
	pronouns     = wordSet("i you he she it we they me him them us who whom whose one ones something anything everything")
	conjunctions = wordSet("and or but nor so yet as than if while because although")
	whWords      = wordSet("what which where when why how")
	auxVerbs     = wordSet("be is are am was were been being do does did done have has had having can could will would shall should may might must")
	commonVerbs  = wordSet("show list give find tell get return retrieve display present output count compute add sort order rank arrange group stay stayed stays suffer suffers suffered diagnose diagnosed treat treated exist exists exceed exceeds exceeded contain contains lie lies want see know need report fetch enumerate identify locate equal equals equaled belong belongs belonging")
	commonAdjs   = wordSet("average mean typical maximum minimum maximal minimal highest lowest largest smallest longest shortest oldest youngest biggest greatest least most common distinct different unique total combined overall male female old young long short large small high low big cheap expensive many few more less top bottom first last single")
	commonAdvs   = wordSet("not only also just ever never always exactly alphabetically descending ascending together apiece")
	commonNouns  = wordSet("number amount count value values range kind kinds distribution breakdown database hospital record records year years day days")
)

func wordSet(s string) map[string]bool {
	out := map[string]bool{}
	for _, w := range strings.Fields(s) {
		out[w] = true
	}
	return out
}

// TagWord tags a single lower-case token.
func TagWord(w string) Tag {
	if w == "" {
		return Other
	}
	if strings.HasPrefix(w, "@") {
		return Placeholder
	}
	if unicode.IsDigit(rune(w[0])) {
		return Number
	}
	lw := strings.ToLower(w)
	switch {
	case determiners[lw]:
		return Determiner
	case prepositions[lw]:
		return Preposition
	case whWords[lw]:
		return Wh
	case pronouns[lw]:
		return Pronoun
	case conjunctions[lw]:
		return Conjunction
	case auxVerbs[lw], commonVerbs[lw]:
		return Verb
	case commonAdjs[lw]:
		return Adjective
	case commonAdvs[lw]:
		return Adverb
	case commonNouns[lw]:
		return Noun
	}
	// Suffix heuristics for open-class words.
	switch {
	case strings.HasSuffix(lw, "ly") && len(lw) > 3:
		return Adverb
	case strings.HasSuffix(lw, "ing") && len(lw) > 4,
		strings.HasSuffix(lw, "ed") && len(lw) > 3,
		strings.HasSuffix(lw, "ize") && len(lw) > 4:
		return Verb
	case strings.HasSuffix(lw, "est") && len(lw) > 4,
		strings.HasSuffix(lw, "ous") && len(lw) > 4,
		strings.HasSuffix(lw, "ful") && len(lw) > 4,
		strings.HasSuffix(lw, "ive") && len(lw) > 4,
		strings.HasSuffix(lw, "al") && len(lw) > 4:
		return Adjective
	default:
		return Noun // default open class
	}
}

// TagAll tags every token.
func TagAll(toks []string) []Tag {
	out := make([]Tag, len(toks))
	for i, t := range toks {
		out[i] = TagWord(t)
	}
	return out
}

// Droppable reports whether a word of this class can be removed
// without destroying the question's core semantics — the POS-guided
// word-removal policy of the paper's §3.2.3: function words
// (determiners, prepositions, pronouns, auxiliaries tagged as verbs
// only when auxiliary) and adverbs drop safely; content nouns,
// adjectives carrying aggregate semantics, numbers, and placeholders
// must stay.
func Droppable(w string, t Tag) bool {
	switch t {
	case Determiner, Preposition, Pronoun, Adverb:
		return true
	case Verb:
		return auxVerbs[strings.ToLower(w)] || commonVerbs[strings.ToLower(w)]
	default:
		return false
	}
}
