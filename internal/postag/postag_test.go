package postag

import (
	"testing"
	"testing/quick"
)

func TestTagWordTable(t *testing.T) {
	cases := map[string]Tag{
		"the": Determiner, "every": Determiner, "a": Determiner,
		"of": Preposition, "with": Preposition, "between": Preposition,
		"what": Wh, "how": Wh,
		"and": Conjunction, "or": Conjunction,
		"it": Pronoun, "who": Pronoun,
		"is": Verb, "show": Verb, "diagnosed": Verb, "staying": Verb,
		"average": Adjective, "oldest": Adjective, "distinct": Adjective,
		"quickly": Adverb, "not": Adverb,
		"80": Number, "12.5": Number,
		"@PATIENTS.AGE": Placeholder,
		"patient":       Noun, "diagnosis": Noun, "name": Noun,
		"number": Noun, "hospital": Noun,
	}
	for w, want := range cases {
		if got := TagWord(w); got != want {
			t.Errorf("TagWord(%q) = %v, want %v", w, got, want)
		}
	}
}

func TestTagAll(t *testing.T) {
	tags := TagAll([]string{"show", "the", "name", "of", "patients"})
	want := []Tag{Verb, Determiner, Noun, Preposition, Noun}
	for i := range want {
		if tags[i] != want[i] {
			t.Fatalf("TagAll = %v", tags)
		}
	}
}

func TestDroppablePolicy(t *testing.T) {
	droppable := []string{"the", "of", "is", "me", "show", "only"}
	for _, w := range droppable {
		if !Droppable(w, TagWord(w)) {
			t.Errorf("%q should be droppable", w)
		}
	}
	protected := []string{"patient", "age", "average", "80", "@PATIENTS.AGE", "maximum", "diagnosis"}
	for _, w := range protected {
		if Droppable(w, TagWord(w)) {
			t.Errorf("%q must not be droppable", w)
		}
	}
}

func TestTagWordTotalQuick(t *testing.T) {
	words := []string{"", "show", "the", "80", "@X", "zzzgibberish", "walking", "happily", "colorful"}
	f := func(i uint8) bool {
		tag := TagWord(words[int(i)%len(words)])
		return tag >= Noun && tag <= Other
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTagStrings(t *testing.T) {
	want := map[Tag]string{
		Noun: "NOUN", Verb: "VERB", Adjective: "ADJ", Adverb: "ADV",
		Determiner: "DET", Preposition: "PREP", Pronoun: "PRON",
		Conjunction: "CONJ", Number: "NUM", Wh: "WH", Placeholder: "PH",
		Other: "OTHER",
	}
	for tag, name := range want {
		if tag.String() != name {
			t.Errorf("Tag(%d).String() = %q, want %q", tag, tag.String(), name)
		}
	}
}

func TestSuffixHeuristics(t *testing.T) {
	cases := map[string]Tag{
		"happily":   Adverb,
		"walking":   Verb,
		"computed":  Verb,
		"wonderful": Adjective,
		"famous":    Adjective,
		"creative":  Adjective,
	}
	for w, want := range cases {
		if got := TagWord(w); got != want {
			t.Errorf("TagWord(%q) = %v, want %v", w, got, want)
		}
	}
}
