package eval

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/boot"
	"repro/internal/critic"
	"repro/internal/fault"
	"repro/internal/models"
	"repro/internal/spider"
)

// corruptedFixture boots the instant-start template model for flights
// and wraps it so half the workload's decodes carry repairable
// identifier typos — the shape the critic exists to rescue.
func corruptedFixture(t *testing.T) (*boot.Unit, models.Translator, []spider.Question) {
	t.Helper()
	u, err := boot.Build(context.Background(), boot.Spec{Schema: "flights", Model: "nn", Seed: 1, Rows: 40})
	if err != nil {
		t.Fatal(err)
	}
	var cols []string
	for _, tab := range u.Schema.Tables {
		for _, c := range tab.Columns {
			cols = append(cols, c.Name)
		}
	}
	model := fault.NewTypos(u.Model, fault.NewInjector(1, 2), cols)
	qs := spider.Workload(u.Schema, 60, 1+7919)
	return u, model, qs
}

// The acceptance bar for the critic tier: on a workload whose decodes
// contain repairable mistakes, answering through the critic yields a
// strictly higher valid-SQL rate than answering without it, and the
// gain comes from repairs, not luck.
func TestCriticStrictImprovement(t *testing.T) {
	u, model, qs := corruptedFixture(t)
	rep, err := EvalCriticCtx(context.Background(), model, u.Schema, u.DB, qs, 1, critic.Config{Seed: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Questions != len(qs) {
		t.Fatalf("Questions = %d, want %d", rep.Questions, len(qs))
	}
	if rep.On.Valid.Correct <= rep.Off.Valid.Correct {
		t.Fatalf("critic on valid %s not strictly above off %s", rep.On.Valid, rep.Off.Valid)
	}
	if rep.On.Repaired == 0 {
		t.Fatalf("no repairs recorded; improvement %s -> %s unexplained", rep.Off.Valid, rep.On.Valid)
	}
	if rep.On.Exact.Correct < rep.Off.Exact.Correct {
		t.Fatalf("critic cost exactness: on %s below off %s", rep.On.Exact, rep.Off.Exact)
	}
}

// The report is a pure function of (model, schema, database, workload,
// critic config): one worker and eight produce identical reports.
func TestCriticReportWorkerInvariant(t *testing.T) {
	u, model, qs := corruptedFixture(t)
	qs = qs[:30]
	one, err := EvalCriticCtx(context.Background(), model, u.Schema, u.DB, qs, 1, critic.Config{Seed: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	eight, err := EvalCriticCtx(context.Background(), model, u.Schema, u.DB, qs, 1, critic.Config{Seed: 1}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(one, eight) {
		t.Fatalf("report varies with worker count:\n  1: %+v\n  8: %+v", one, eight)
	}
}
