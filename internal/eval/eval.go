// Package eval implements the paper's two accuracy metrics and the
// breakdowns its tables report:
//
//   - exact-match accuracy on canonicalized SQL (the Spider metric,
//     §6.1: "a query is deemed correctly translated only if it exactly
//     matches the provided gold standard"), with per-difficulty
//     grouping for Table 2 and pattern-coverage grouping for Table 4;
//   - semantic-equivalence accuracy by execution (the Patients metric,
//     §6.2), with per-category grouping for Table 3.
package eval

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/engine"
	"repro/internal/lemma"
	"repro/internal/models"
	"repro/internal/par"
	"repro/internal/patients"
	"repro/internal/runtime"
	"repro/internal/schema"
	"repro/internal/spider"
	"repro/internal/sqlast"
	"repro/internal/tokens"
)

// Frac is a correct/total accuracy fraction.
type Frac struct {
	Correct, Total int
}

// Add accumulates one trial.
func (f *Frac) Add(ok bool) {
	f.Total++
	if ok {
		f.Correct++
	}
}

// Acc returns the accuracy in [0,1] (0 for empty).
func (f Frac) Acc() float64 {
	if f.Total == 0 {
		return 0
	}
	return float64(f.Correct) / float64(f.Total)
}

// String renders like "0.445 (89/200)".
func (f Frac) String() string {
	return fmt.Sprintf("%.3f (%d/%d)", f.Acc(), f.Correct, f.Total)
}

// SpiderResult is the outcome of evaluating one question.
type SpiderResult struct {
	Question   spider.Question
	Pred       string
	Correct    bool
	Difficulty sqlast.Difficulty
	Pattern    string
}

// SpiderReport aggregates a Spider-style evaluation.
type SpiderReport struct {
	ByDifficulty map[sqlast.Difficulty]*Frac
	Overall      Frac
	Results      []SpiderResult
}

// EvalSpider runs the translator over pre-anonymized questions and
// scores canonicalized exact match, as in the paper's Spider setup.
// Questions are translated concurrently on the default worker pool.
func EvalSpider(tr models.Translator, qs []spider.Question) *SpiderReport {
	return EvalSpiderWorkers(tr, qs, 0)
}

// EvalSpiderWorkers is EvalSpider with an explicit worker-pool bound
// (0 = runtime.NumCPU). The translator's Translate must be safe for
// concurrent calls (both repository models are: inference only reads
// the trained weights). The report is identical for every worker
// count: results are produced into per-question slots and aggregated
// in question order.
func EvalSpiderWorkers(tr models.Translator, qs []spider.Question, workers int) *SpiderReport {
	// Background is never done, so the report is always complete.
	rep, _ := EvalSpiderCtx(context.Background(), tr, qs, workers)
	return rep
}

// EvalSpiderCtx is EvalSpiderWorkers with cooperative cancellation.
// On cancellation it returns the context's error together with a
// partial report covering the completed prefix of the question list —
// par.MapCtx dispatches questions in index order, so the evaluated
// set is always a prefix and the partial report is deterministic.
func EvalSpiderCtx(ctx context.Context, tr models.Translator, qs []spider.Question, workers int) (*SpiderReport, error) {
	// Schema-token contexts are built up front so the workers share a
	// read-only map.
	schemaToks := map[string][]string{}
	for _, q := range qs {
		if _, ok := schemaToks[q.Schema]; !ok {
			schemaToks[q.Schema] = models.SchemaTokens(spider.SchemaByName(q.Schema))
		}
	}
	return evalQuestions(ctx, tr, schemaToks, qs, workers)
}

// EvalSchemaCtx scores a translator on questions over one explicit
// schema — unlike EvalSpiderCtx it does not look the schema up in the
// zoo, so it works for generated tenant schemas too. It is the
// registry's onboarding eval gate.
func EvalSchemaCtx(ctx context.Context, tr models.Translator, s *schema.Schema, qs []spider.Question, workers int) (*SpiderReport, error) {
	schemaToks := map[string][]string{s.Name: models.SchemaTokens(s)}
	return evalQuestions(ctx, tr, schemaToks, qs, workers)
}

// evalQuestions is the shared exact-match scoring loop behind
// EvalSpiderCtx and EvalSchemaCtx.
func evalQuestions(ctx context.Context, tr models.Translator, schemaToks map[string][]string, qs []spider.Question, workers int) (*SpiderReport, error) {
	rep := &SpiderReport{ByDifficulty: map[sqlast.Difficulty]*Frac{}}
	for _, d := range sqlast.Difficulties {
		rep.ByDifficulty[d] = &Frac{}
	}
	rep.Results = make([]SpiderResult, len(qs))
	done := make([]bool, len(qs))
	err := par.MapCtx(ctx, workers, len(qs), func(i int) {
		q := qs[i]
		nl := lemma.LemmatizeAll(tokens.Tokenize(q.NL))
		predToks := tr.Translate(nl, schemaToks[q.Schema])
		gold := sqlast.MustParse(q.SQL)
		correct := false
		var predStr string
		if pred, perr := sqlast.ParseTokens(predToks); perr == nil {
			predStr = pred.String()
			correct = sqlast.EqualCanonical(pred, gold)
		} else {
			predStr = strings.Join(predToks, " ")
		}
		rep.Results[i] = SpiderResult{
			Question:   q,
			Pred:       predStr,
			Correct:    correct,
			Difficulty: q.Difficulty,
			Pattern:    gold.Pattern(),
		}
		done[i] = true
	})
	rep.Results = rep.Results[:donePrefix(done)]
	for _, r := range rep.Results {
		rep.Overall.Add(r.Correct)
		rep.ByDifficulty[r.Difficulty].Add(r.Correct)
	}
	return rep, err
}

// donePrefix returns the length of the completed prefix of the done
// flags (MapCtx guarantees completion is prefix-shaped).
func donePrefix(done []bool) int {
	for i, d := range done {
		if !d {
			return i
		}
	}
	return len(done)
}

// CoverageBucket classifies a test query's pattern by which training
// corpus covered it (the paper's Table 4).
type CoverageBucket int

// Coverage buckets.
const (
	CoverBoth CoverageBucket = iota
	CoverDBPal
	CoverSpider
	CoverUnseen
)

// String names the bucket as the paper's Table 4 spells it.
func (b CoverageBucket) String() string {
	switch b {
	case CoverBoth:
		return "Both"
	case CoverDBPal:
		return "DBPal"
	case CoverSpider:
		return "Spider"
	default:
		return "Unseen"
	}
}

// CoverageBuckets lists the buckets in reporting order.
var CoverageBuckets = []CoverageBucket{CoverBoth, CoverDBPal, CoverSpider, CoverUnseen}

// Classify places a pattern into its coverage bucket given the pattern
// sets of the Spider training data and the DBPal-generated data.
func Classify(pattern string, spiderPatterns, dbpalPatterns map[string]bool) CoverageBucket {
	inS := spiderPatterns[pattern]
	inD := dbpalPatterns[pattern]
	switch {
	case inS && inD:
		return CoverBoth
	case inD:
		return CoverDBPal
	case inS:
		return CoverSpider
	default:
		return CoverUnseen
	}
}

// CoverageReport groups a SpiderReport's results by coverage bucket.
func CoverageReport(rep *SpiderReport, spiderPatterns, dbpalPatterns map[string]bool) map[CoverageBucket]*Frac {
	out := map[CoverageBucket]*Frac{}
	for _, b := range CoverageBuckets {
		out[b] = &Frac{}
	}
	for _, r := range rep.Results {
		out[Classify(r.Pattern, spiderPatterns, dbpalPatterns)].Add(r.Correct)
	}
	return out
}

// PatternsOfPairs returns the pattern set of generated training pairs.
func PatternsOfPairs(sqls []string) map[string]bool {
	out := map[string]bool{}
	for _, s := range sqls {
		q, err := sqlast.Parse(s)
		if err != nil {
			continue
		}
		out[q.Pattern()] = true
	}
	return out
}

// PatientsReport aggregates the Patients benchmark evaluation.
type PatientsReport struct {
	ByCategory map[patients.Category]*Frac
	Overall    Frac
	Failures   []PatientsFailure
}

// PatientsFailure records one miss for diagnostics.
type PatientsFailure struct {
	Case patients.Case
	Pred string
	Err  string
}

// EvalPatients runs the full runtime (Parameter Handler, lemmatizer,
// model, post-processor) on every benchmark case and scores semantic
// equivalence: the prediction is correct when it executes to the same
// result as the gold query on the benchmark database. Cases are
// evaluated concurrently on the default worker pool.
func EvalPatients(tr models.Translator, db *engine.Database, cases []patients.Case) *PatientsReport {
	return EvalPatientsGuided(tr, db, cases, 1)
}

// EvalPatientsGuided is EvalPatients with execution-guided decoding:
// the runtime tries up to execGuided ranked candidates per question.
func EvalPatientsGuided(tr models.Translator, db *engine.Database, cases []patients.Case, execGuided int) *PatientsReport {
	return EvalPatientsWorkers(tr, db, cases, execGuided, 0)
}

// patientsOutcome is one case's result slot, filled by a worker.
type patientsOutcome struct {
	correct bool
	pred    string
	err     string
}

// EvalPatientsWorkers is EvalPatientsGuided with an explicit
// worker-pool bound (0 = runtime.NumCPU). The runtime translator and
// execution engine are stateless per call, so one shared instance
// serves every worker; outcomes land in per-case slots and are
// aggregated in case order, making the report identical for every
// worker count.
func EvalPatientsWorkers(tr models.Translator, db *engine.Database, cases []patients.Case, execGuided, workers int) *PatientsReport {
	// Background is never done, so the report is always complete.
	rep, _ := EvalPatientsCtx(context.Background(), tr, db, cases, execGuided, workers)
	return rep
}

// EvalPatientsCtx is EvalPatientsWorkers with cooperative
// cancellation. On cancellation it returns the context's error
// together with a partial report covering the completed prefix of the
// case list (see EvalSpiderCtx), so an interrupted evaluation can
// still flush what it measured.
func EvalPatientsCtx(ctx context.Context, tr models.Translator, db *engine.Database, cases []patients.Case, execGuided, workers int) (*PatientsReport, error) {
	rep := &PatientsReport{ByCategory: map[patients.Category]*Frac{}}
	for _, c := range patients.Categories {
		rep.ByCategory[c] = &Frac{}
	}
	rt := runtime.NewTranslator(db, tr)
	rt.ExecutionGuided = execGuided
	outcomes := make([]patientsOutcome, len(cases))
	done := make([]bool, len(cases))
	err := par.MapCtx(ctx, workers, len(cases), func(i int) {
		cs := cases[i]
		gold := sqlast.MustParse(cs.SQL)
		goldRes, gerr := db.Execute(gold)
		if gerr != nil {
			panic(fmt.Sprintf("eval: gold query %q does not execute: %v", cs.SQL, gerr))
		}
		var out patientsOutcome
		pred, terr := rt.Translate(cs.NL)
		if terr == nil {
			out.pred = pred.String()
			predRes, execErr := db.Execute(pred)
			if execErr == nil {
				out.correct = engine.EqualResults(goldRes, predRes)
			} else {
				out.err = execErr.Error()
			}
		} else {
			out.err = terr.Error()
		}
		outcomes[i] = out
		done[i] = true
	})
	for i := 0; i < donePrefix(done); i++ {
		cs, out := cases[i], outcomes[i]
		rep.Overall.Add(out.correct)
		rep.ByCategory[cs.Category].Add(out.correct)
		if !out.correct {
			rep.Failures = append(rep.Failures, PatientsFailure{Case: cs, Pred: out.pred, Err: out.err})
		}
	}
	return rep, err
}
