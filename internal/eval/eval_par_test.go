package eval

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/models"
	"repro/internal/patients"
	"repro/internal/spider"
	"repro/internal/sqlast"
)

// halfTranslator deterministically mixes right and wrong answers so
// the report has non-trivial per-bucket structure.
type halfTranslator struct{ gold goldTranslator }

func (h halfTranslator) Name() string           { return "half" }
func (h halfTranslator) Train([]models.Example) {}
func (h halfTranslator) Translate(nl, st []string) []string {
	if len(nl)%2 == 0 {
		return []string{"NOT", "SQL"}
	}
	return h.gold.Translate(nl, st)
}

// TestEvalSpiderWorkerCountInvariance checks the evaluation fan-out
// contract: the report (overall, per-difficulty, and the ordered
// per-question results) is identical at every worker count.
func TestEvalSpiderWorkerCountInvariance(t *testing.T) {
	qs := spider.GeoWorkload(60, 5)
	g := goldTranslator{answers: map[string][]string{}}
	for _, q := range qs {
		nl := lemmaTokens(q.NL)
		g.answers[strings.Join(nl, " ")] = models.NormalizeSQLTokens(sqlast.MustParse(q.SQL).Tokens())
	}
	tr := halfTranslator{gold: g}

	base := EvalSpiderWorkers(tr, qs, 1)
	for _, workers := range []int{2, 4, 16} {
		rep := EvalSpiderWorkers(tr, qs, workers)
		if rep.Overall != base.Overall {
			t.Fatalf("workers=%d: overall %v vs %v", workers, rep.Overall, base.Overall)
		}
		if !reflect.DeepEqual(rep.Results, base.Results) {
			t.Fatalf("workers=%d: per-question results differ", workers)
		}
		for d, f := range base.ByDifficulty {
			if *rep.ByDifficulty[d] != *f {
				t.Fatalf("workers=%d: difficulty %v differs", workers, d)
			}
		}
	}
}

// TestEvalPatientsWorkerCountInvariance does the same for the
// execution-based metric, which exercises the shared runtime
// translator and engine across workers.
func TestEvalPatientsWorkerCountInvariance(t *testing.T) {
	db, err := patients.Database()
	if err != nil {
		t.Fatal(err)
	}
	cases := patients.Cases()
	if len(cases) > 40 {
		cases = cases[:40]
	}
	tr := brokenTranslator{} // exercises the failure path in every slot

	base := EvalPatientsWorkers(tr, db, cases, 1, 1)
	rep := EvalPatientsWorkers(tr, db, cases, 1, 4)
	if rep.Overall != base.Overall {
		t.Fatalf("overall differs: %v vs %v", rep.Overall, base.Overall)
	}
	if !reflect.DeepEqual(rep.Failures, base.Failures) {
		t.Fatal("failure lists differ across worker counts")
	}
}
