package eval

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/lemma"
	"repro/internal/models"
	"repro/internal/patients"
	"repro/internal/runtime"
	"repro/internal/spider"
	"repro/internal/sqlast"
	"repro/internal/tokens"
)

func TestFrac(t *testing.T) {
	var f Frac
	if f.Acc() != 0 {
		t.Fatal("empty Frac should be 0")
	}
	f.Add(true)
	f.Add(false)
	f.Add(true)
	if f.Acc() < 0.66 || f.Acc() > 0.67 {
		t.Fatalf("Acc = %v", f.Acc())
	}
	if !strings.Contains(f.String(), "2/3") {
		t.Fatalf("String = %q", f.String())
	}
}

// goldTranslator answers with the gold SQL by looking the question up.
type goldTranslator struct {
	answers map[string][]string
}

func (g goldTranslator) Name() string           { return "gold" }
func (g goldTranslator) Train([]models.Example) {}
func (g goldTranslator) Translate(nl, _ []string) []string {
	return g.answers[strings.Join(nl, " ")]
}

// brokenTranslator emits garbage.
type brokenTranslator struct{}

func (brokenTranslator) Name() string                     { return "broken" }
func (brokenTranslator) Train([]models.Example)           {}
func (brokenTranslator) Translate(_, _ []string) []string { return []string{"NOT", "SQL"} }

func TestEvalSpiderGoldGetsPerfectScore(t *testing.T) {
	qs := spider.GeoWorkload(40, 3)
	g := goldTranslator{answers: map[string][]string{}}
	for _, q := range qs {
		nl := lemmaTokens(q.NL)
		g.answers[strings.Join(nl, " ")] = models.NormalizeSQLTokens(sqlast.MustParse(q.SQL).Tokens())
	}
	rep := EvalSpider(g, qs)
	if rep.Overall.Acc() != 1.0 {
		t.Fatalf("gold translator should score 1.0, got %v", rep.Overall)
	}
	for _, d := range sqlast.Difficulties {
		fr := rep.ByDifficulty[d]
		if fr.Total > 0 && fr.Correct != fr.Total {
			t.Fatalf("difficulty %s not perfect: %v", d, fr)
		}
	}
}

func TestEvalSpiderBrokenGetsZero(t *testing.T) {
	qs := spider.GeoWorkload(20, 3)
	rep := EvalSpider(brokenTranslator{}, qs)
	if rep.Overall.Correct != 0 {
		t.Fatalf("broken translator scored %v", rep.Overall)
	}
	if len(rep.Results) != len(qs) {
		t.Fatalf("results = %d", len(rep.Results))
	}
}

func TestClassify(t *testing.T) {
	sp := map[string]bool{"A": true, "B": true}
	dp := map[string]bool{"B": true, "C": true}
	cases := map[string]CoverageBucket{
		"A": CoverSpider, "B": CoverBoth, "C": CoverDBPal, "D": CoverUnseen,
	}
	for p, want := range cases {
		if got := Classify(p, sp, dp); got != want {
			t.Errorf("Classify(%s) = %v, want %v", p, got, want)
		}
	}
}

func TestCoverageReportPartition(t *testing.T) {
	qs := spider.GeoWorkload(30, 7)
	rep := EvalSpider(brokenTranslator{}, qs)
	sp := map[string]bool{}
	dp := map[string]bool{}
	for _, r := range rep.Results[:10] {
		sp[r.Pattern] = true
	}
	cov := CoverageReport(rep, sp, dp)
	total := 0
	for _, b := range CoverageBuckets {
		total += cov[b].Total
	}
	if total != len(qs) {
		t.Fatalf("coverage buckets partition %d of %d results", total, len(qs))
	}
}

func TestPatternsOfPairs(t *testing.T) {
	ps := PatternsOfPairs([]string{
		"SELECT name FROM patients WHERE age = @PATIENTS.AGE",
		"SELECT title FROM books WHERE pages = @BOOKS.PAGES", // same pattern
		"not sql at all",
	})
	if len(ps) != 1 {
		t.Fatalf("patterns = %v", ps)
	}
}

// TestEvalPatientsEndToEndParameterHandling drives the full runtime
// for every benchmark case with a translator that always answers the
// anonymized gold query, verifying that the Parameter Handler and
// Post-processor restore constants well enough for the gold SQL to be
// reproduced on the vast majority of cases.
func TestEvalPatientsParameterRoundtrip(t *testing.T) {
	db, err := patients.Database()
	if err != nil {
		t.Fatal(err)
	}
	ph := runtime.NewParameterHandler(db)
	cases := patients.Cases()
	ok := 0
	for _, cs := range cases {
		gold := sqlast.MustParse(cs.SQL)
		goldRes, err := db.Execute(gold)
		if err != nil {
			t.Fatal(err)
		}
		anon, err := ph.Anonymize(cs.NL)
		if err != nil {
			t.Fatal(err)
		}
		anonGold := anonymizeGold(gold)
		restored, err := runtime.PostProcess(anonGold, db.Schema, anon.Bindings)
		if err != nil {
			continue
		}
		res, err := db.Execute(restored)
		if err != nil {
			continue
		}
		if engine.EqualResults(goldRes, res) {
			ok++
		}
	}
	frac := float64(ok) / float64(len(cases))
	t.Logf("parameter-handling roundtrip: %d/%d (%.3f)", ok, len(cases), frac)
	if frac < 0.80 {
		t.Fatalf("parameter handling too weak: %.3f", frac)
	}
}

// anonymizeGold replaces literal operands in WHERE clauses with
// canonical placeholders, simulating the model's anonymized output.
func anonymizeGold(q *sqlast.Query) *sqlast.Query {
	out := q.Clone()
	sqlast.WalkQueries(out, func(sub *sqlast.Query) {
		sub.Where = anonymizeExpr(sub.Where, sub)
	})
	return out
}

func anonymizeExpr(e sqlast.Expr, q *sqlast.Query) sqlast.Expr {
	switch v := e.(type) {
	case sqlast.Logic:
		return sqlast.Logic{Op: v.Op, Left: anonymizeExpr(v.Left, q), Right: anonymizeExpr(v.Right, q)}
	case sqlast.Not:
		return sqlast.Not{Inner: anonymizeExpr(v.Inner, q)}
	case sqlast.Comparison:
		if _, ok := v.Right.(sqlast.Value); ok {
			name := "PATIENTS." + strings.ToUpper(v.Left.Column)
			return sqlast.Comparison{Left: v.Left, Op: v.Op, Right: sqlast.Placeholder{Name: name}}
		}
		return v
	case sqlast.InSubquery:
		anonymizeExpr(v.Query.Where, v.Query)
		return v
	default:
		return e
	}
}

func lemmaTokens(nl string) []string {
	return lemma.LemmatizeAll(tokens.Tokenize(nl))
}

// patientsOracle plays back anonymized gold queries for a subset of
// the benchmark, exercising EvalPatients end to end.
type patientsOracle struct {
	byNL map[string][]string
}

func (patientsOracle) Name() string           { return "patients-oracle" }
func (patientsOracle) Train([]models.Example) {}
func (o patientsOracle) Translate(nl, _ []string) []string {
	return o.byNL[strings.Join(nl, " ")]
}

func TestEvalPatientsWithOracle(t *testing.T) {
	db, err := patients.Database()
	if err != nil {
		t.Fatal(err)
	}
	cases := patients.Cases()[:70] // one category's worth, for speed
	o := patientsOracle{byNL: map[string][]string{}}
	for _, cs := range cases {
		anonGold := anonymizeGold(sqlast.MustParse(cs.SQL))
		key := strings.Join(lemmaTokens(strings.Join(anonNLFor(db, cs.NL), " ")), " ")
		o.byNL[key] = models.NormalizeSQLTokens(anonGold.Tokens())
	}
	rep := EvalPatients(o, db, cases)
	if rep.Overall.Total != len(cases) {
		t.Fatalf("evaluated %d of %d", rep.Overall.Total, len(cases))
	}
	// The oracle answers with the anonymized gold; the only losses are
	// parameter-handling mismatches, so accuracy must be high.
	if rep.Overall.Acc() < 0.75 {
		t.Fatalf("oracle accuracy only %v; failures: %d", rep.Overall, len(rep.Failures))
	}
	for _, f := range rep.Failures {
		if f.Case.NL == "" {
			t.Fatal("failure with empty case")
		}
	}
}

func anonNLFor(db *engine.Database, nl string) []string {
	ph := runtime.NewParameterHandler(db)
	anon, err := ph.Anonymize(nl)
	if err != nil {
		panic(err)
	}
	return anon.Tokens
}

func TestCoverageBucketStrings(t *testing.T) {
	names := map[CoverageBucket]string{
		CoverBoth: "Both", CoverDBPal: "DBPal", CoverSpider: "Spider", CoverUnseen: "Unseen",
	}
	for b, want := range names {
		if b.String() != want {
			t.Fatalf("bucket %d name %q", b, b.String())
		}
	}
}
