package eval

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/critic"
	"repro/internal/engine"
	"repro/internal/lemma"
	"repro/internal/models"
	"repro/internal/par"
	"repro/internal/runtime"
	"repro/internal/schema"
	"repro/internal/spider"
	"repro/internal/sqlast"
	"repro/internal/tokens"
)

// CriticArm is one side of the critic-on/critic-off comparison.
type CriticArm struct {
	// Valid counts questions whose final query executed on the
	// database; Exact counts canonical matches against the
	// concrete-bound gold query.
	Valid Frac
	Exact Frac
	// Repaired counts questions the critic answered via a repaired
	// candidate; Rejected counts questions where it rejected the
	// whole beam (both zero on the off arm).
	Repaired int
	Rejected int
}

// String renders one arm as a report row.
func (a CriticArm) String() string {
	return fmt.Sprintf("valid %s  exact %s  repaired %d  rejected %d",
		a.Valid, a.Exact, a.Repaired, a.Rejected)
}

// CriticReport compares answering with and without the
// execution-guided critic over one workload. Both arms finalize the
// exact same decoded beam per question, so every difference is
// attributable to the critic alone.
type CriticReport struct {
	Questions int
	Off, On   CriticArm
}

// EvalCriticCtx scores the critic's contribution on a spider-style
// workload: each question is decoded once, then its candidate beam is
// finalized twice — once plainly, once through a critic — and each
// arm's final query is checked for validity (it executes) and
// exactness (canonically equal to the gold query under the same
// constant bindings). Placeholder constants are bound to deterministic
// database values, so the whole report is a pure function of (model,
// schema, database, questions, critic config): bit-identical at any
// worker count, with cancellation yielding a deterministic
// prefix-shaped partial report.
func EvalCriticCtx(ctx context.Context, model models.Translator, s *schema.Schema, db *engine.Database, qs []spider.Question, execGuided int, cfg critic.Config, workers int) (*CriticReport, error) {
	schemaToks := models.SchemaTokens(s)
	trOff := runtime.NewTranslator(db, model)
	trOff.ExecutionGuided = execGuided
	trOn := runtime.NewTranslator(db, model)
	trOn.ExecutionGuided = execGuided
	trOn.Critic = critic.New(db, cfg)

	type slot struct {
		offValid, offExact bool
		onValid, onExact   bool
		repaired, rejected bool
	}
	slots := make([]slot, len(qs))
	done := make([]bool, len(qs))
	err := par.MapCtx(ctx, workers, len(qs), func(i int) {
		q := qs[i]
		nl := lemma.LemmatizeAll(tokens.Tokenize(q.NL))
		gold := sqlast.MustParse(q.SQL)
		bindings := criticBindings(gold, db)
		goldConcrete, gerr := runtime.PostProcess(gold.Clone(), s, bindings)

		var sl slot
		if candidates := decodeBeam(model, nl, schemaToks, execGuided); len(candidates) > 0 {
			offQ, _ := trOff.FinalizeCandidates(candidates, bindings, nil)
			sl.offValid, sl.offExact = armScore(db, offQ, goldConcrete, gerr)

			traceOn := &runtime.Trace{}
			onQ, onErr := trOn.FinalizeCandidates(candidates, bindings, traceOn)
			sl.onValid, sl.onExact = armScore(db, onQ, goldConcrete, gerr)
			sl.repaired = traceOn.Repaired
			var rej *runtime.RejectedError
			sl.rejected = errors.As(onErr, &rej)
		}
		slots[i] = sl
		done[i] = true
	})

	rep := &CriticReport{}
	for i := 0; i < donePrefix(done); i++ {
		sl := slots[i]
		rep.Questions++
		rep.Off.Valid.Add(sl.offValid)
		rep.Off.Exact.Add(sl.offExact)
		rep.On.Valid.Add(sl.onValid)
		rep.On.Exact.Add(sl.onExact)
		if sl.repaired {
			rep.On.Repaired++
		}
		if sl.rejected {
			rep.On.Rejected++
		}
	}
	return rep, err
}

// decodeBeam mirrors the runtime's tier decoding: up to k ranked
// candidates when the model supports alternatives, one otherwise.
func decodeBeam(model models.Translator, nl, schemaToks []string, k int) [][]string {
	if k > 1 {
		if kt, ok := model.(runtime.KTranslator); ok {
			return kt.TranslateK(nl, schemaToks, k)
		}
	}
	out := model.Translate(nl, schemaToks)
	if len(out) == 0 {
		return nil
	}
	return [][]string{out}
}

// armScore checks one arm's final query: valid when it executes,
// exact when additionally canonically equal to the concrete gold.
func armScore(db *engine.Database, q, gold *sqlast.Query, goldErr error) (valid, exact bool) {
	if q == nil {
		return false, false
	}
	if _, err := db.Execute(q); err != nil {
		return false, false
	}
	return true, goldErr == nil && sqlast.EqualCanonical(q, gold)
}

// criticBindings fabricates a deterministic constant for every
// placeholder in the gold query, drawing the first distinct database
// value of the referenced column where possible.
func criticBindings(q *sqlast.Query, db *engine.Database) []runtime.Binding {
	var out []runtime.Binding
	seen := map[string]bool{}
	add := func(o sqlast.Operand) {
		ph, ok := o.(sqlast.Placeholder)
		if !ok || strings.EqualFold(ph.Name, "JOIN") || seen[ph.Name] {
			return
		}
		seen[ph.Name] = true
		val := sqlast.NumValue(1)
		if parts := strings.SplitN(ph.Name, ".", 2); len(parts) == 2 {
			if vals := db.DistinctValues(parts[0], parts[1]); len(vals) > 0 {
				if v := vals[0]; v.IsNum {
					val = sqlast.NumValue(v.Num)
				} else {
					val = sqlast.StrValue(v.Str)
				}
			}
		}
		out = append(out, runtime.Binding{Placeholder: ph.Name, Value: val})
	}
	var walkExpr func(e sqlast.Expr)
	walkExpr = func(e sqlast.Expr) {
		switch v := e.(type) {
		case sqlast.Logic:
			walkExpr(v.Left)
			walkExpr(v.Right)
		case sqlast.Not:
			walkExpr(v.Inner)
		case sqlast.Comparison:
			add(v.Right)
		case sqlast.Between:
			add(v.Lo)
			add(v.Hi)
		case sqlast.HavingCond:
			add(v.Right)
		}
	}
	sqlast.WalkQueries(q, func(sub *sqlast.Query) {
		for _, e := range sqlast.Conjuncts(sub.Where) {
			walkExpr(e)
		}
		for _, e := range sqlast.Conjuncts(sub.Having) {
			walkExpr(e)
		}
	})
	return out
}
