package analysis

import (
	"go/ast"
	"go/types"
)

// CtxDrop closes the gap ctxfirst cannot see: accepting a
// context.Context is a promise that cancellation works, so the
// received ctx must actually reach the function's blocking work.
// Three rules, all scoped to functions that declare a named ctx
// parameter:
//
//  1. drop: ctx is never used anywhere in the body even though the
//     function may block — cancellation is silently broken.
//  2. detach: a call passes a literal context.Background() or
//     context.TODO() while ctx is in scope, cutting the cancellation
//     chain (deriving fresh contexts via the context package itself
//     is exempt only when fed from ctx).
//  3. unbounded: a blocking callee that cannot accept any context —
//     an in-process wait (channel/sync) or a model call with no
//     context-taking variant — is invoked synchronously, so this
//     function's caller cannot cancel it. Bound it (par.Await, a
//     context-aware wrapper) or annotate why it is safe.
//
// Calls inside go statements, defer statements, and non-inline
// function literals are not charged to this function (they run
// elsewhere); network I/O callees are exempt from rule 3 because
// their deadlines are configured on clients/listeners, not contexts.
var CtxDrop = &Analyzer{
	Name: "ctxdrop",
	Doc:  "a received context.Context must flow into the function's blocking work",
	Run:  runCtxDrop,
}

func runCtxDrop(p *Pass) {
	g := p.Graph()
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ctxParam := contextParam(p.Pkg.Info, fd)
			if ctxParam == nil {
				continue
			}
			checkCtxDrop(p, g, fd, ctxParam)
		}
	}
}

// contextParam returns the object of fd's first named context.Context
// parameter, or nil.
func contextParam(info *types.Info, fd *ast.FuncDecl) types.Object {
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			obj := info.Defs[name]
			if obj != nil && obj.Type().String() == "context.Context" {
				return obj
			}
		}
	}
	return nil
}

func checkCtxDrop(p *Pass, g *CallGraph, fd *ast.FuncDecl, ctxParam types.Object) {
	info := p.Pkg.Info

	// Rule 1: ctx never used while the function may block.
	used := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == ctxParam {
			used = true
		}
		return !used
	})
	if !used {
		fn, _ := info.Defs[fd.Name].(*types.Func)
		if node := g.NodeOf(fn); node != nil && node.Blocking {
			p.Reportf(ctxParam.Pos(), "ctx is accepted but never used, and %s may block (%s); cancellation is broken here",
				fd.Name.Name, node.BlockReason)
		}
		return // rules 2-3 would be noise on top
	}

	// Rules 2 and 3 look at synchronous calls only.
	var visit func(ast.Node) bool
	visit = func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt, *ast.DeferStmt:
			return false // runs elsewhere / at exit
		case *ast.CallExpr:
			if lit, ok := ast.Unparen(v.Fun).(*ast.FuncLit); ok {
				for _, arg := range v.Args {
					ast.Inspect(arg, visit)
				}
				ast.Inspect(lit.Body, visit)
				return false
			}
			checkCall(p, g, fd, v)
		}
		return true
	}
	ast.Inspect(fd.Body, visit)
}

func checkCall(p *Pass, g *CallGraph, fd *ast.FuncDecl, call *ast.CallExpr) {
	info := p.Pkg.Info
	callee := CalleeOf(info, call)

	// Rule 2: literal Background()/TODO() argument detaches the
	// cancellation chain.
	calleePkg := ""
	if callee != nil && callee.Pkg() != nil {
		calleePkg = callee.Pkg().Path()
	}
	if calleePkg != "context" {
		for _, arg := range call.Args {
			if isFreshContext(info, arg) {
				p.Reportf(arg.Pos(), "passes a fresh %s to %s while ctx is in scope; the cancellation chain is cut",
					types.ExprString(arg), calleeName(call))
			}
		}
	}

	// Rule 3: synchronous call into an in-process wait or model call
	// that cannot observe any context.
	if callee == nil {
		return
	}
	if o := callee.Origin(); o != nil {
		callee = o
	}
	if enclosing, ok := info.Defs[fd.Name].(*types.Func); ok && callee == enclosing {
		return // recursion: the callee's own ctx handling is this one's
	}
	if sigAcceptsContext(callee.Type()) {
		return
	}
	kind, why, blocking := g.BlockingCall(p.Pkg, call)
	if !blocking {
		return
	}
	switch kind {
	case KindChan, KindSyncWait, KindModel:
		p.Reportf(call.Pos(), "blocking call %s cannot observe ctx (%s); bound it or use a context-aware variant",
			calleeName(call), why)
	}
}

// isFreshContext matches literal context.Background() / context.TODO()
// call expressions.
func isFreshContext(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := CalleeOf(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "context" &&
		(fn.Name() == "Background" || fn.Name() == "TODO")
}

func calleeName(call *ast.CallExpr) string {
	if name, ok := callName(call); ok {
		return name
	}
	return "callee"
}
