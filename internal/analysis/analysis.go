// Package analysis is the repository's zero-dependency static-analysis
// framework: a small Analyzer interface over go/ast + go/types, a
// module loader (load.go), a //lint:allow suppression directive, and
// deterministic diagnostic reporting. cmd/dbpal-lint drives it over
// the whole module; the shipped analyzers (determinism, maporder,
// rawgo, errdrop, seedsplit, ctxfirst) machine-check the invariants
// DESIGN.md only prose-checks: explicit seeds, sorted map iteration,
// all concurrency through internal/par / internal/pipeline, no
// silently dropped errors, SplitSeed-derived RNGs inside parallel
// callbacks, and context.Context first in exported signatures.
//
// Suppression: a comment of the form
//
//	//lint:allow <check> <reason>
//
// placed at the end of the offending line or on its own line directly
// above it silences that check there. The reason is free text; write
// one — the directive documents an intentional exception, not an
// escape hatch.
package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// Analyzer is one named check. Run inspects a single type-checked
// package and reports findings through the Pass.
type Analyzer struct {
	// Name is the check name used in output and //lint:allow
	// directives.
	Name string
	// Doc is a one-line description for -list output.
	Doc string
	// AppliesTo filters by import path; nil means every package.
	AppliesTo func(pkgPath string) bool
	// Run performs the check.
	Run func(pass *Pass)
}

// Diagnostic is one finding. Path is module-relative and
// slash-separated, so output is stable across checkouts. Analyzer
// names the analyzer that produced the finding (same as Check for
// analyzer findings; "load" for loader-level problems such as parse
// errors). Suppressible reports whether a //lint:allow directive can
// silence the finding — loader problems and stale-allow reports
// cannot be suppressed.
type Diagnostic struct {
	Check        string `json:"check"`
	Analyzer     string `json:"analyzer"`
	Path         string `json:"path"`
	Line         int    `json:"line"`
	Col          int    `json:"col"`
	Message      string `json:"message"`
	Suppressible bool   `json:"suppressible"`
}

// Pass hands one (analyzer, package) pairing its reporting context.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// Mod is the enclosing module; it carries the memoized
	// interprocedural call graph (see Pass.Graph).
	Mod *Module

	moduleDir string
	allow     *allowIndex
	sink      *[]Diagnostic
}

// Reportf records a finding at pos unless a //lint:allow directive
// covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	rel := position.Filename
	if r, err := filepath.Rel(p.moduleDir, position.Filename); err == nil {
		rel = filepath.ToSlash(r)
	}
	if p.allow.allowed(p.Analyzer.Name, position.Filename, position.Line) {
		return
	}
	*p.sink = append(*p.sink, Diagnostic{
		Check:        p.Analyzer.Name,
		Analyzer:     p.Analyzer.Name,
		Path:         rel,
		Line:         position.Line,
		Col:          position.Column,
		Message:      fmt.Sprintf(format, args...),
		Suppressible: true,
	})
}

// PkgPathOf resolves x to the import path of the package it names
// ("time" in time.Now). ok is false when x is not an identifier bound
// to an import.
func (p *Pass) PkgPathOf(x ast.Expr) (path string, ok bool) {
	id, ok := x.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := p.Pkg.Info.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	return pn.Imported().Path(), true
}

// IsPkgFunc reports whether e is a selector for the function
// pkgPath.name (e.g. "repro/internal/par", "SplitSeed").
func (p *Pass) IsPkgFunc(e ast.Expr, pkgPath, name string) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	got, ok := p.PkgPathOf(sel.X)
	return ok && got == pkgPath
}

// TypeOf returns the type of e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Pkg.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// ---------------------------------------------------------------------
// Suppression directives.
// ---------------------------------------------------------------------

// allowDirective is one (check, site) pair declared by a //lint:allow
// comment. used flips when the directive suppresses at least one
// finding, which is what -stale-allow audits.
type allowDirective struct {
	check string
	file  string // absolute filename of the directive comment
	rel   string // module-relative path for reporting
	line  int    // line of the directive comment
	col   int
	used  bool
}

// allowIndex maps a "file:line" key to the directives covering that
// line, and keeps the full directive list for staleness reporting.
type allowIndex struct {
	byLine map[string]map[string]*allowDirective
	all    []*allowDirective
}

func (a *allowIndex) allowed(check, file string, line int) bool {
	d := a.byLine[fmt.Sprintf("%s:%d", file, line)][check]
	if d == nil {
		return false
	}
	d.used = true
	return true
}

// buildAllowIndex scans a package's comments for //lint:allow
// directives. A directive covers its own line (end-of-line form) and
// the line below it (standalone form above a statement).
func buildAllowIndex(moduleDir string, pkg *Package) *allowIndex {
	idx := &allowIndex{byLine: map[string]map[string]*allowDirective{}}
	cover := func(d *allowDirective, line int) {
		key := fmt.Sprintf("%s:%d", d.file, line)
		if idx.byLine[key] == nil {
			idx.byLine[key] = map[string]*allowDirective{}
		}
		idx.byLine[key][d.check] = d
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//lint:allow ")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rel := pos.Filename
				if r, err := filepath.Rel(moduleDir, pos.Filename); err == nil {
					rel = filepath.ToSlash(r)
				}
				for _, check := range strings.Split(fields[0], ",") {
					d := &allowDirective{
						check: check,
						file:  pos.Filename,
						rel:   rel,
						line:  pos.Line,
						col:   pos.Column,
					}
					idx.all = append(idx.all, d)
					cover(d, pos.Line)
					cover(d, pos.Line+1)
				}
			}
		}
	}
	return idx
}

// ---------------------------------------------------------------------
// Running and reporting.
// ---------------------------------------------------------------------

// Run applies each analyzer to each package it covers and returns the
// findings sorted by (path, line, col, check) — a deterministic order
// regardless of package iteration or analyzer registration. Loader
// problems (parse failures) are included as unsuppressible findings.
func Run(m *Module, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunStale(m, pkgs, analyzers)
	return diags
}

// RunStale is Run plus a staleness audit: the second slice reports
// every //lint:allow directive in pkgs that suppressed no finding
// during this run, as unsuppressible "stale-allow" diagnostics. A
// directive for a check that did not run (wrong package, analyzer not
// selected) counts as stale — it is dead weight either way.
func RunStale(m *Module, pkgs []*Package, analyzers []*Analyzer) (diags, stale []Diagnostic) {
	var indices []*allowIndex
	for _, pkg := range pkgs {
		idx := buildAllowIndex(m.Dir, pkg)
		indices = append(indices, idx)
		for _, a := range analyzers {
			if a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg, Mod: m, moduleDir: m.Dir, allow: idx, sink: &diags}
			a.Run(pass)
		}
	}
	diags = append(diags, m.LoadDiags...)
	for _, idx := range indices {
		for _, d := range idx.all {
			if d.used {
				continue
			}
			stale = append(stale, Diagnostic{
				Check:    "stale-allow",
				Analyzer: "stale-allow",
				Path:     d.rel,
				Line:     d.line,
				Col:      d.col,
				Message:  fmt.Sprintf("//lint:allow %s no longer suppresses any finding; remove it", d.check),
			})
		}
	}
	SortDiagnostics(diags)
	SortDiagnostics(stale)
	return diags, stale
}

// CountSuppressions returns the number of //lint:allow (check, site)
// directives declared across pkgs — the repository's allow budget,
// surfaced in CI job summaries.
func CountSuppressions(m *Module, pkgs []*Package) int {
	n := 0
	for _, pkg := range pkgs {
		n += len(buildAllowIndex(m.Dir, pkg).all)
	}
	return n
}

// SortDiagnostics orders findings by path, line, column, check name,
// then message.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Path != b.Path {
			return a.Path < b.Path
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
}

// FormatText writes findings one per line:
// path:line:col: [check] message.
func FormatText(w io.Writer, diags []Diagnostic) error {
	for _, d := range diags {
		if _, err := fmt.Fprintf(w, "%s:%d:%d: [%s] %s\n", d.Path, d.Line, d.Col, d.Check, d.Message); err != nil {
			return err
		}
	}
	return nil
}

// JSONSchemaVersion is the version stamped into -json output; bump it
// on any incompatible change to the report shape.
const JSONSchemaVersion = 1

// jsonReport is the -json envelope.
type jsonReport struct {
	SchemaVersion int          `json:"schemaVersion"`
	Findings      []Diagnostic `json:"findings"`
}

// FormatJSON writes findings as an indented JSON object with a stable
// schemaVersion and a findings array (an empty array, not null, when
// there are none) — the -json contract.
func FormatJSON(w io.Writer, diags []Diagnostic) error {
	if diags == nil {
		diags = []Diagnostic{}
	}
	data, err := json.MarshalIndent(jsonReport{SchemaVersion: JSONSchemaVersion, Findings: diags}, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", data)
	return err
}

// Suite returns the shipped analyzers in their canonical order. The
// first six are the per-file invariant checks from the original
// suite; the last five ride the interprocedural call graph
// (callgraph.go) and the statement-flow walker (flow.go).
func Suite() []*Analyzer {
	return []*Analyzer{
		Determinism, MapOrder, RawGo, ErrDrop, SeedSplit, CtxFirst,
		LockHeld, AtomicField, GoExit, ChanClose, CtxDrop,
	}
}

// hasSegment reports whether any "/"-separated segment of path equals
// seg.
func hasSegment(path, seg string) bool {
	for _, s := range strings.Split(path, "/") {
		if s == seg {
			return true
		}
	}
	return false
}
