// Package analysis is the repository's zero-dependency static-analysis
// framework: a small Analyzer interface over go/ast + go/types, a
// module loader (load.go), a //lint:allow suppression directive, and
// deterministic diagnostic reporting. cmd/dbpal-lint drives it over
// the whole module; the shipped analyzers (determinism, maporder,
// rawgo, errdrop, seedsplit, ctxfirst) machine-check the invariants
// DESIGN.md only prose-checks: explicit seeds, sorted map iteration,
// all concurrency through internal/par / internal/pipeline, no
// silently dropped errors, SplitSeed-derived RNGs inside parallel
// callbacks, and context.Context first in exported signatures.
//
// Suppression: a comment of the form
//
//	//lint:allow <check> <reason>
//
// placed at the end of the offending line or on its own line directly
// above it silences that check there. The reason is free text; write
// one — the directive documents an intentional exception, not an
// escape hatch.
package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// Analyzer is one named check. Run inspects a single type-checked
// package and reports findings through the Pass.
type Analyzer struct {
	// Name is the check name used in output and //lint:allow
	// directives.
	Name string
	// Doc is a one-line description for -list output.
	Doc string
	// AppliesTo filters by import path; nil means every package.
	AppliesTo func(pkgPath string) bool
	// Run performs the check.
	Run func(pass *Pass)
}

// Diagnostic is one finding. Path is module-relative and
// slash-separated, so output is stable across checkouts.
type Diagnostic struct {
	Check   string `json:"check"`
	Path    string `json:"path"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// Pass hands one (analyzer, package) pairing its reporting context.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	moduleDir string
	allow     allowIndex
	sink      *[]Diagnostic
}

// Reportf records a finding at pos unless a //lint:allow directive
// covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	rel := position.Filename
	if r, err := filepath.Rel(p.moduleDir, position.Filename); err == nil {
		rel = filepath.ToSlash(r)
	}
	if p.allow.allowed(p.Analyzer.Name, position.Filename, position.Line) {
		return
	}
	*p.sink = append(*p.sink, Diagnostic{
		Check:   p.Analyzer.Name,
		Path:    rel,
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// PkgPathOf resolves x to the import path of the package it names
// ("time" in time.Now). ok is false when x is not an identifier bound
// to an import.
func (p *Pass) PkgPathOf(x ast.Expr) (path string, ok bool) {
	id, ok := x.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := p.Pkg.Info.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	return pn.Imported().Path(), true
}

// IsPkgFunc reports whether e is a selector for the function
// pkgPath.name (e.g. "repro/internal/par", "SplitSeed").
func (p *Pass) IsPkgFunc(e ast.Expr, pkgPath, name string) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	got, ok := p.PkgPathOf(sel.X)
	return ok && got == pkgPath
}

// TypeOf returns the type of e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Pkg.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// ---------------------------------------------------------------------
// Suppression directives.
// ---------------------------------------------------------------------

// allowIndex maps a "file:line" key to the set of check names a
// //lint:allow directive covers on that line.
type allowIndex map[string]map[string]bool

func (a allowIndex) allowed(check, file string, line int) bool {
	return a[fmt.Sprintf("%s:%d", file, line)][check]
}

// buildAllowIndex scans a package's comments for //lint:allow
// directives. A directive covers its own line (end-of-line form) and
// the line below it (standalone form above a statement).
func buildAllowIndex(pkg *Package) allowIndex {
	idx := allowIndex{}
	add := func(file string, line int, check string) {
		key := fmt.Sprintf("%s:%d", file, line)
		if idx[key] == nil {
			idx[key] = map[string]bool{}
		}
		idx[key][check] = true
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//lint:allow ")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, check := range strings.Split(fields[0], ",") {
					add(pos.Filename, pos.Line, check)
					add(pos.Filename, pos.Line+1, check)
				}
			}
		}
	}
	return idx
}

// ---------------------------------------------------------------------
// Running and reporting.
// ---------------------------------------------------------------------

// Run applies each analyzer to each package it covers and returns the
// findings sorted by (path, line, col, check) — a deterministic order
// regardless of package iteration or analyzer registration.
func Run(m *Module, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		idx := buildAllowIndex(pkg)
		for _, a := range analyzers {
			if a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg, moduleDir: m.Dir, allow: idx, sink: &diags}
			a.Run(pass)
		}
	}
	SortDiagnostics(diags)
	return diags
}

// SortDiagnostics orders findings by path, line, column, check name,
// then message.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Path != b.Path {
			return a.Path < b.Path
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
}

// FormatText writes findings one per line:
// path:line:col: [check] message.
func FormatText(w io.Writer, diags []Diagnostic) error {
	for _, d := range diags {
		if _, err := fmt.Fprintf(w, "%s:%d:%d: [%s] %s\n", d.Path, d.Line, d.Col, d.Check, d.Message); err != nil {
			return err
		}
	}
	return nil
}

// FormatJSON writes findings as an indented JSON array (an empty
// array, not null, when there are none) — the -json contract.
func FormatJSON(w io.Writer, diags []Diagnostic) error {
	if diags == nil {
		diags = []Diagnostic{}
	}
	data, err := json.MarshalIndent(diags, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", data)
	return err
}

// Suite returns the shipped analyzers in their canonical order.
func Suite() []*Analyzer {
	return []*Analyzer{Determinism, MapOrder, RawGo, ErrDrop, SeedSplit, CtxFirst}
}

// hasSegment reports whether any "/"-separated segment of path equals
// seg.
func hasSegment(path, seg string) bool {
	for _, s := range strings.Split(path, "/") {
		if s == seg {
			return true
		}
	}
	return false
}
