package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockHeld enforces the serving stack's "short critical sections"
// contract in the concurrency-heavy packages: a sync.Mutex/RWMutex
// must never be held across a blocking operation (channel op, select
// without default, network/model call, any callee the call graph
// marks as may-block), and a method must not call another method on
// the same receiver that re-acquires a lock it already holds
// (self-deadlock). Lock state is tracked path-sensitively with a
// must-hold lattice: a lock is "held" at a point only if every path
// reaching it acquired and did not release. defer mu.Unlock() keeps
// the lock held to the end of the function, as it does at run time.
//
// Known limitations (by design, to stay quiet): locks passed by
// pointer to helpers are not tracked across the call; blocking
// operations inside deferred calls are not charged to the lock; facts
// do not survive loop back-edges.
var LockHeld = &Analyzer{
	Name: "lockheld",
	Doc:  "no mutex held across a blocking call, and no self-re-locking method call under that mutex",
	AppliesTo: func(pkgPath string) bool {
		for _, seg := range []string{"serve", "registry", "cache", "par", "pipeline"} {
			if hasSegment(pkgPath, seg) {
				return true
			}
		}
		return false
	},
	Run: runLockHeld,
}

type lockState struct {
	held map[string]token.Pos // lock expression ("b.mu") -> acquire position
}

func (s *lockState) fork() flowState {
	cp := &lockState{held: make(map[string]token.Pos, len(s.held))}
	for k, v := range s.held {
		cp.held[k] = v
	}
	return cp
}

// join keeps only locks held on both paths (must-hold).
func (s *lockState) join(other flowState) {
	o := other.(*lockState)
	for k := range s.held {
		if _, ok := o.held[k]; !ok {
			delete(s.held, k)
		}
	}
}

func runLockHeld(p *Pass) {
	g := p.Graph()
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			recv := receiverObj(p.Pkg.Info, fd)
			lockHeldBody(p, g, fd.Body, recv)
			for _, lit := range collectFuncLits(fd.Body) {
				// A closure capturing the receiver can lock its
				// fields too; analyze each literal as its own
				// function under the same receiver.
				lockHeldBody(p, g, lit.Body, recv)
			}
		}
	}
}

func lockHeldBody(p *Pass, g *CallGraph, body *ast.BlockStmt, recv types.Object) {
	info := p.Pkg.Info

	scan := func(fs flowState, node ast.Node) {
		ls := fs.(*lockState)
		inspectLeaf(node, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.CallExpr:
				if lockExpr, acquire, ok := MutexLockCall(info, v); ok {
					key := types.ExprString(lockExpr)
					if acquire {
						ls.held[key] = v.Pos()
					} else {
						delete(ls.held, key)
					}
					return true
				}
				if len(ls.held) == 0 {
					return true
				}
				reportRelock(p, g, ls, v, recv)
				if _, why, blocking := g.BlockingCall(p.Pkg, v); blocking {
					for lock := range ls.held {
						p.Reportf(v.Pos(), "mutex %s held across blocking call: %s", lock, why)
					}
				}
			case *ast.SendStmt:
				for lock := range ls.held {
					p.Reportf(v.Pos(), "mutex %s held across channel send", lock)
				}
			case *ast.UnaryExpr:
				if v.Op == token.ARROW {
					for lock := range ls.held {
						p.Reportf(v.Pos(), "mutex %s held across channel receive", lock)
					}
				}
			case *ast.SelectStmt:
				// Reached only through an immediately-invoked literal;
				// the walker delivers top-level selects as headers.
				if !selectHasDefault(v) {
					for lock := range ls.held {
						p.Reportf(v.Pos(), "mutex %s held across select without default", lock)
					}
				}
			}
			return true
		})
	}

	leaf := func(fs flowState, s ast.Stmt) {
		ls := fs.(*lockState)
		switch v := s.(type) {
		case *ast.DeferStmt:
			// defer mu.Unlock() holds the lock to function end: keep
			// the held fact (correct for everything that follows).
			// Other deferred work runs at return and is not charged
			// to the current lock state.
			return
		case *ast.SelectStmt:
			if !selectHasDefault(v) {
				for lock := range ls.held {
					p.Reportf(v.Pos(), "mutex %s held across select without default", lock)
				}
			}
			return
		case *ast.RangeStmt:
			if t := info.TypeOf(v.X); t != nil && isChanType(t) {
				for lock := range ls.held {
					p.Reportf(v.X.Pos(), "mutex %s held across range over a channel", lock)
				}
			}
			scan(fs, v.X)
			return
		default:
			scan(fs, s)
		}
	}

	st := &lockState{held: map[string]token.Pos{}}
	walkFlow(body, st, flowFuncs{
		stmt: leaf,
		expr: func(fs flowState, e ast.Expr) { scan(fs, e) },
		// Select comm clauses are the select's own channel ops; the
		// header finding covers them, so they are not re-flagged.
		comm: func(flowState, ast.Stmt) {},
	})
}

// reportRelock flags recv.Method() calls whose callee locks a
// receiver mutex field the caller already holds.
func reportRelock(p *Pass, g *CallGraph, ls *lockState, call *ast.CallExpr, recv types.Object) {
	if recv == nil {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok || p.Pkg.Info.Uses[id] != recv {
		return
	}
	node := g.NodeOf(CalleeOf(p.Pkg.Info, call))
	if node == nil {
		return
	}
	for _, field := range node.RecvLocks {
		key := id.Name + "." + field
		if _, held := ls.held[key]; held {
			p.Reportf(call.Pos(), "call to %s re-acquires %s, which is already held (self-deadlock)",
				shortName(node.Obj), key)
		}
	}
}
