package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sync"
)

// AtomicField enforces all-or-nothing atomicity on struct fields: a
// field that is ever accessed through sync/atomic anywhere in the
// module must never be read or written plainly, and a field of an
// atomic.* type (Int64, Bool, Pointer[T], Value, ...) must only be
// used through its methods or by address — never copied by value.
// Structs containing such fields must not have value-receiver
// methods (the receiver copy tears the atomic).
//
// The "accessed atomically somewhere" fact set is module-wide: a
// plain read in package A of a field that package B updates with
// atomic.AddInt64 is exactly the cross-package race this exists to
// catch.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "fields accessed via sync/atomic must never be accessed plainly or copied by value",
	Run:  runAtomicField,
}

var (
	atomicMu    sync.Mutex
	atomicFacts = map[*Module]map[*types.Var]bool{}
	atomicExt   = map[*Package]map[*types.Var]bool{}
)

// atomicFieldSet returns the module-wide set of struct fields whose
// address is passed to a sync/atomic function, memoized per module
// (and per fixture package layered on top).
func atomicFieldSet(m *Module, extra *Package) map[*types.Var]bool {
	atomicMu.Lock()
	defer atomicMu.Unlock()
	base := atomicFacts[m]
	if base == nil {
		base = map[*types.Var]bool{}
		for _, pkg := range m.Pkgs {
			gatherAtomicFields(pkg, base)
		}
		atomicFacts[m] = base
	}
	if extra == nil || containsPkg(m.Pkgs, extra) {
		return base
	}
	if set, ok := atomicExt[extra]; ok {
		return set
	}
	set := map[*types.Var]bool{}
	for v := range base {
		set[v] = true
	}
	gatherAtomicFields(extra, set)
	atomicExt[extra] = set
	return set
}

func gatherAtomicFields(pkg *Package, set map[*types.Var]bool) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := CalleeOf(pkg.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				if sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr); ok {
					if v := fieldVarOf(pkg.Info, sel); v != nil {
						set[v] = true
					}
				}
			}
			return true
		})
	}
}

func runAtomicField(p *Pass) {
	set := atomicFieldSet(p.Mod, p.Pkg)
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		parents := parentMap(f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.FuncDecl:
				checkValueReceiver(p, set, v)
			case *ast.SelectorExpr:
				fv := fieldVarOf(info, v)
				if fv == nil {
					return true
				}
				if set[fv] && !isAtomicArg(info, parents, v) {
					p.Reportf(v.Sel.Pos(),
						"field %s is accessed with sync/atomic elsewhere in the module; this plain access races with it",
						fv.Name())
					return true
				}
				if isAtomicType(fv.Type()) && isValueUse(parents, v) {
					p.Reportf(v.Sel.Pos(),
						"atomic field %s used as a value (copies the atomic); call its methods or take its address",
						fv.Name())
				}
			}
			return true
		})
	}
}

// isAtomicArg reports that sel appears as &sel directly inside a
// sync/atomic call — the one legal plain mention of an
// atomically-accessed field.
func isAtomicArg(info *types.Info, parents map[ast.Node]ast.Node, sel *ast.SelectorExpr) bool {
	p := skipParens(parents, sel)
	un, ok := p.(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return false
	}
	call, ok := skipParens(parents, un).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := CalleeOf(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// isValueUse reports that an atomic-typed field selector is used as a
// plain value: not the base of a method selector (c.n.Load()), not
// under & (legal: pass the atomic by pointer), and not merely an
// intermediate of a longer field path.
func isValueUse(parents map[ast.Node]ast.Node, sel *ast.SelectorExpr) bool {
	switch p := skipParens(parents, sel).(type) {
	case *ast.SelectorExpr:
		// c.n.Load(): sel is the base of a further selection —
		// method call or deeper path, not a copy.
		return ast.Unparen(p.X) != ast.Expr(sel)
	case *ast.UnaryExpr:
		return p.Op != token.AND
	}
	return true
}

// checkValueReceiver flags value-receiver methods on structs that
// contain atomically-accessed or atomic-typed fields.
func checkValueReceiver(p *Pass, set map[*types.Var]bool, fd *ast.FuncDecl) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return
	}
	recvType := fd.Recv.List[0].Type
	if _, isPtr := ast.Unparen(recvType).(*ast.StarExpr); isPtr {
		return
	}
	t := p.TypeOf(recvType)
	if t == nil {
		return
	}
	strct, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i := 0; i < strct.NumFields(); i++ {
		fld := strct.Field(i)
		if set[fld] || isAtomicType(fld.Type()) {
			p.Reportf(fd.Recv.List[0].Pos(),
				"method %s has a value receiver but field %s is atomic; the receiver copy tears it",
				fd.Name.Name, fld.Name())
			return
		}
	}
}

func fieldVarOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return nil
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}

func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync/atomic"
}

// parentMap records each node's syntactic parent within a file.
func parentMap(f *ast.File) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

func skipParens(parents map[ast.Node]ast.Node, n ast.Node) ast.Node {
	p := parents[n]
	for {
		if _, ok := p.(*ast.ParenExpr); !ok {
			return p
		}
		p = parents[p]
	}
}
