package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags range-over-map loops whose iteration order escapes
// into an ordered sink — an append, a channel send, or an emit
// callback — without a sort afterwards. Go randomizes map iteration,
// so such a loop produces a different corpus every run; the pipeline
// packages must collect keys and sort before emitting
// (DESIGN.md, "Stage pipeline"). It runs only on the packages whose
// output order is part of the determinism contract: generator,
// augment, pipeline, and models.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flags map iteration whose order escapes into append/send/emit without a sort",
	AppliesTo: func(path string) bool {
		return hasSegment(path, "generator") || hasSegment(path, "augment") ||
			hasSegment(path, "pipeline") || hasSegment(path, "models")
	},
	Run: func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			// Process each function body separately so "a sort call
			// later in the same function" has a well-defined scope.
			ast.Inspect(f, func(n ast.Node) bool {
				switch fn := n.(type) {
				case *ast.FuncDecl:
					if fn.Body != nil {
						checkMapRanges(pass, fn.Body)
					}
					return false
				case *ast.FuncLit:
					// Reached only for literals outside any FuncDecl
					// (package-level var initializers).
					checkMapRanges(pass, fn.Body)
					return false
				}
				return true
			})
		}
	},
}

// checkMapRanges walks one function body (descending into nested
// function literals) and reports undisciplined map ranges.
func checkMapRanges(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		kind := escapeInBody(pass, rs.Body)
		if kind == "" {
			return true
		}
		// The collect-then-sort idiom is fine: the appends inside the
		// loop are unordered, and a sort later in the same function
		// restores determinism before anything observes the slice.
		if kind == "append" && sortCallAfter(pass, body, rs.End()) {
			return true
		}
		pass.Reportf(rs.Pos(), "map iteration order escapes into %s; iterate sorted keys instead (or sort the result before it is observed)", kind)
		return true
	})
}

// escapeInBody finds the strongest ordered escape of iteration order
// inside a range body. Sends and emit calls can never be repaired by
// a later sort, so they dominate appends.
func escapeInBody(pass *Pass, body *ast.BlockStmt) string {
	kind := ""
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.SendStmt:
			kind = "a channel send"
		case *ast.CallExpr:
			if id, ok := s.Fun.(*ast.Ident); ok {
				if _, isBuiltin := pass.Pkg.Info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "append" {
					if kind == "" {
						kind = "append"
					}
				} else if id.Name == "emit" {
					kind = "an emit callback"
				}
			}
		}
		return kind == "" || kind == "append"
	})
	return kind
}

// sortCallAfter reports whether the function body contains a call into
// package sort or slices positioned after end.
func sortCallAfter(pass *Pass, body *ast.BlockStmt, end token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < end {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if path, ok := pass.PkgPathOf(sel.X); ok && (path == "sort" || path == "slices") {
				found = true
			}
		}
		return true
	})
	return found
}
