package analysis

import (
	"go/ast"
)

// flow.go is the lightweight intraprocedural dataflow layer: a
// statement-order walker that threads an analyzer-defined abstract
// state through a function body, forking at branches, joining at
// merge points, and dropping paths that provably terminate (return,
// break, continue, goto — branch statements conservatively end their
// path's contribution to the join). Loop bodies are walked once and
// joined back into the entry state (zero-or-more iterations); facts
// carried across iterations of the same loop are out of scope, which
// the analyzers document as a known limitation.
//
// Contract for the callbacks:
//   - stmt(st, s) is called for every leaf statement in control-flow
//     order, and additionally for *ast.SelectStmt and *ast.RangeStmt
//     "headers" before their bodies are walked — the analyzer must
//     inspect only the header there (the select's blocking point, the
//     range operand), never descend into the bodies, which the walker
//     visits itself.
//   - expr(st, e) is called for conditions, switch tags/case values,
//     and range operands.
//
// Both callbacks mutate st in place.
type flowState interface {
	// fork returns an independent copy for one branch of a split.
	fork() flowState
	// join folds another branch's end state into the receiver; the
	// analyzer chooses the lattice (intersection for must-facts like
	// "lock held", union for may-facts like "channel closed").
	join(other flowState)
}

type flowFuncs struct {
	stmt func(st flowState, s ast.Stmt)
	expr func(st flowState, e ast.Expr)
	// comm, when set, receives a select clause's communication
	// statement instead of stmt. The channel operation there is part
	// of the select the walker already delivered as a header, not an
	// independent blocking point; analyzers that would double-report
	// it (lockheld) install a comm handler, analyzers that track
	// state changes through it (chanclose) leave comm nil and take
	// the statement through the ordinary leaf path.
	comm func(st flowState, s ast.Stmt)
}

// walkFlow runs fn over body starting from st and returns the end
// state plus whether every path through body terminates the function.
func walkFlow(body *ast.BlockStmt, st flowState, fn flowFuncs) (flowState, bool) {
	return flowStmts(body.List, st, fn)
}

func flowStmts(list []ast.Stmt, st flowState, fn flowFuncs) (flowState, bool) {
	for _, s := range list {
		var term bool
		st, term = flowStmt(s, st, fn)
		if term {
			return st, true
		}
	}
	return st, false
}

func flowStmt(s ast.Stmt, st flowState, fn flowFuncs) (flowState, bool) {
	switch v := s.(type) {
	case nil:
		return st, false

	case *ast.BlockStmt:
		return flowStmts(v.List, st, fn)

	case *ast.LabeledStmt:
		return flowStmt(v.Stmt, st, fn)

	case *ast.IfStmt:
		if v.Init != nil {
			st, _ = flowStmt(v.Init, st, fn)
		}
		if fn.expr != nil {
			fn.expr(st, v.Cond)
		}
		thenSt, thenTerm := flowStmts(v.Body.List, st.fork(), fn)
		elseSt, elseTerm := st, false
		if v.Else != nil {
			elseSt, elseTerm = flowStmt(v.Else, st.fork(), fn)
		}
		switch {
		case thenTerm && elseTerm:
			return thenSt, true
		case thenTerm:
			return elseSt, false
		case elseTerm:
			return thenSt, false
		default:
			thenSt.join(elseSt)
			return thenSt, false
		}

	case *ast.ForStmt:
		if v.Init != nil {
			st, _ = flowStmt(v.Init, st, fn)
		}
		if v.Cond != nil && fn.expr != nil {
			fn.expr(st, v.Cond)
		}
		bodySt, bodyTerm := flowStmts(v.Body.List, st.fork(), fn)
		if !bodyTerm {
			if v.Post != nil {
				bodySt, _ = flowStmt(v.Post, bodySt, fn)
			}
			st.join(bodySt)
		}
		return st, false

	case *ast.RangeStmt:
		if fn.stmt != nil {
			fn.stmt(st, v) // header notification (range operand)
		}
		bodySt, bodyTerm := flowStmts(v.Body.List, st.fork(), fn)
		if !bodyTerm {
			st.join(bodySt)
		}
		return st, false

	case *ast.SwitchStmt:
		if v.Init != nil {
			st, _ = flowStmt(v.Init, st, fn)
		}
		if v.Tag != nil && fn.expr != nil {
			fn.expr(st, v.Tag)
		}
		return flowCases(v.Body.List, st, fn)

	case *ast.TypeSwitchStmt:
		if v.Init != nil {
			st, _ = flowStmt(v.Init, st, fn)
		}
		if fn.stmt != nil {
			fn.stmt(st, v.Assign)
		}
		return flowCases(v.Body.List, st, fn)

	case *ast.SelectStmt:
		if fn.stmt != nil {
			fn.stmt(st, v) // header notification (the blocking point)
		}
		var outs []flowState
		for _, cl := range v.Body.List {
			cc, ok := cl.(*ast.CommClause)
			if !ok {
				continue
			}
			clSt := st.fork()
			if cc.Comm != nil {
				if fn.comm != nil {
					fn.comm(clSt, cc.Comm)
				} else {
					clSt, _ = flowStmt(cc.Comm, clSt, fn)
				}
			}
			clSt, term := flowStmts(cc.Body, clSt, fn)
			if !term {
				outs = append(outs, clSt)
			}
		}
		if len(outs) == 0 && len(v.Body.List) > 0 {
			return st, true // every clause returns
		}
		return joinAll(st, outs), false

	case *ast.ReturnStmt:
		if fn.stmt != nil {
			fn.stmt(st, v)
		}
		return st, true

	case *ast.BranchStmt:
		if fn.stmt != nil {
			fn.stmt(st, v)
		}
		return st, true // ends this path's contribution to the join

	default:
		// Leaf: ExprStmt, AssignStmt, SendStmt, IncDecStmt, DeclStmt,
		// DeferStmt, GoStmt, EmptyStmt.
		if fn.stmt != nil {
			fn.stmt(st, s)
		}
		return st, false
	}
}

// flowCases walks switch/type-switch clauses as alternative branches;
// without a default clause the entry state is one more alternative.
func flowCases(list []ast.Stmt, st flowState, fn flowFuncs) (flowState, bool) {
	var outs []flowState
	hasDefault := false
	for _, cl := range list {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		clSt := st.fork()
		if fn.expr != nil {
			for _, e := range cc.List {
				fn.expr(clSt, e)
			}
		}
		clSt, term := flowStmts(cc.Body, clSt, fn)
		if !term {
			outs = append(outs, clSt)
		}
	}
	if !hasDefault {
		outs = append(outs, st)
	}
	if len(outs) == 0 {
		return st, true
	}
	return joinAll(st, outs), false
}

func joinAll(entry flowState, outs []flowState) flowState {
	if len(outs) == 0 {
		return entry
	}
	res := outs[0]
	for _, o := range outs[1:] {
		res.join(o)
	}
	return res
}

// collectFuncLits returns every function literal in body that is not
// invoked immediately at its definition site. Immediately-invoked
// literals execute inline and are analyzed as part of the enclosing
// flow; all others run later or on another goroutine and are analyzed
// as functions of their own.
func collectFuncLits(body *ast.BlockStmt) []*ast.FuncLit {
	iife := map[*ast.FuncLit]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
				iife[lit] = true
			}
		}
		return true
	})
	var lits []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && !iife[lit] {
			lits = append(lits, lit)
		}
		return true
	})
	return lits
}

// inspectLeaf walks a leaf statement's expressions, skipping function
// literals except immediately-invoked ones (whose bodies run inline).
func inspectLeaf(s ast.Node, visit func(ast.Node) bool) {
	var walk func(ast.Node) bool
	walk = func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
				if !visit(call) {
					return false
				}
				for _, arg := range call.Args {
					ast.Inspect(arg, walk)
				}
				ast.Inspect(lit.Body, walk)
				return false
			}
		}
		return visit(n)
	}
	ast.Inspect(s, walk)
}
