// Package fixture exercises the seedsplit analyzer: RNG construction
// inside parallel callbacks must derive its seed from par.SplitSeed
// (or the split-seed parameter a SeededMap stage provides).
package fixture

import (
	"math/rand"

	"repro/internal/par"
	"repro/internal/pipeline"
)

func adHocSeed(base int64, out []float64) {
	par.Map(4, len(out), func(i int) {
		rng := rand.New(rand.NewSource(base + int64(i))) // want `must derive its seed from par\.SplitSeed`
		out[i] = rng.Float64()
	})
}

func splitSeed(base int64, out []float64) {
	par.Map(4, len(out), func(i int) {
		rng := rand.New(rand.NewSource(par.SplitSeed(base, i)))
		out[i] = rng.Float64()
	})
}

func stageSeeds(base int64) []pipeline.Stage {
	return []pipeline.Stage{
		pipeline.SeededMap("good", base, func(p pipeline.Pair, seed int64) (pipeline.Pair, bool) {
			rng := rand.New(rand.NewSource(seed))
			p.NL = p.NL + rngSuffix(rng)
			return p, true
		}),
		pipeline.SeededMap("bad", base, func(p pipeline.Pair, seed int64) (pipeline.Pair, bool) {
			rng := rand.New(rand.NewSource(base)) // want `must derive its seed from par\.SplitSeed`
			p.NL = p.NL + rngSuffix(rng)
			return p, true
		}),
		pipeline.Map("pure", func(p pipeline.Pair) pipeline.Pair {
			rand.NewSource(7) // want `must derive its seed from par\.SplitSeed`
			return p
		}),
	}
}

func allowed(base int64, out []float64) {
	par.Map(4, len(out), func(i int) {
		//lint:allow seedsplit fixture exercises the suppression path
		rng := rand.New(rand.NewSource(base))
		out[i] = rng.Float64()
	})
}

func rngSuffix(rng *rand.Rand) string {
	if rng.Float64() > 0.5 {
		return " x"
	}
	return ""
}
