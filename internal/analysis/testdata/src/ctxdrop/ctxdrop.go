// Fixture for the ctxdrop analyzer: a received context.Context must
// flow into the function's blocking work.
package ctxdrop

import (
	"context"
	"sync"
)

type model interface {
	Translate(nl string) string
	TranslateContext(ctx context.Context, nl string) string
}

func helper(ctx context.Context, n int) int { <-ctx.Done(); return n }

// Rule 1: ctx accepted but never used while the function blocks.
func dropped(ctx context.Context, ch chan int) int { // want "ctx is accepted but never used"
	return <-ch
}

// Using ctx anywhere counts; an unused ctx in a non-blocking helper
// is harmless (no finding).
func harmless(ctx context.Context, n int) int {
	return n + 1
}

// Rule 2: a literal Background/TODO argument cuts the cancellation
// chain.
func detaches(ctx context.Context) {
	helper(context.Background(), 1) // want "fresh context.Background"
	helper(ctx, 2)
}

// Deriving through the context package itself is exempt: WithTimeout
// needs a parent, and flagging the constructor would double-report
// the real problem (the detached use site).
func derives(ctx context.Context) {
	sub, cancel := context.WithCancel(context.Background())
	defer cancel()
	helper(sub, 1)
	helper(ctx, 2)
}

// Rule 3: an in-process wait that cannot accept any context is
// invisible to this function's caller.
func unboundedWait(ctx context.Context, wg *sync.WaitGroup) {
	_ = ctx
	wg.Wait() // want "cannot observe ctx"
}

// Model calls without a context variant are flagged the same way...
func unboundedModel(ctx context.Context, m model) string {
	_ = ctx
	return m.Translate("count users") // want "cannot observe ctx"
}

// ...and threading ctx through the context-aware variant passes.
func boundedModel(ctx context.Context, m model) string {
	return m.TranslateContext(ctx, "count users")
}

// An intentional unbounded join carries a written reason.
func allowedWait(ctx context.Context, wg *sync.WaitGroup) {
	_ = ctx
	wg.Wait() //lint:allow ctxdrop fixture exercises suppression plumbing
}

// Calls inside go/defer statements run elsewhere or at exit and are
// not charged to this function (known limitation by design).
func asyncWait(ctx context.Context, wg *sync.WaitGroup) {
	_ = ctx
	defer wg.Wait()
	go wg.Wait()
}
