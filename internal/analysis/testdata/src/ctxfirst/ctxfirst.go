// Package fixture exercises the ctxfirst analyzer: exported functions
// and methods accepting a context.Context must take it first.
package fixture

import "context"

// Good takes the context first.
func Good(ctx context.Context, n int) error {
	_ = n
	return ctx.Err()
}

// OnlyCtx has nothing before it to get wrong.
func OnlyCtx(ctx context.Context) error { return ctx.Err() }

// Bad buries the context behind data parameters.
func Bad(n int, ctx context.Context) error { // want `context must come first`
	_ = n
	return ctx.Err()
}

// BadGrouped hides the context inside a grouped trailing field.
func BadGrouped(a, b int, ctx context.Context) error { // want `context must come first`
	_, _ = a, b
	return ctx.Err()
}

type worker struct{}

// Run is an exported method with the context misplaced.
func (worker) Run(name string, ctx context.Context) error { // want `context must come first`
	_ = name
	return ctx.Err()
}

// Plain has no context at all.
func Plain(a, b string) string { return a + b }

// unexportedBad is private API; the convention is only machine-checked
// on the exported surface.
func unexportedBad(n int, ctx context.Context) error {
	_ = n
	return ctx.Err()
}

// Allowed documents an intentional exception.
func Allowed(n int, ctx context.Context) error { //lint:allow ctxfirst legacy signature kept for compatibility
	_ = n
	return ctx.Err()
}
