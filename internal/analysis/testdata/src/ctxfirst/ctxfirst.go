// Package fixture exercises the ctxfirst analyzer: exported functions
// and methods accepting a context.Context must take it first.
package fixture

import (
	"context"
	"net/http"
)

// Good takes the context first.
func Good(ctx context.Context, n int) error {
	_ = n
	return ctx.Err()
}

// OnlyCtx has nothing before it to get wrong.
func OnlyCtx(ctx context.Context) error { return ctx.Err() }

// Bad buries the context behind data parameters.
func Bad(n int, ctx context.Context) error { // want `context must come first`
	_ = n
	return ctx.Err()
}

// BadGrouped hides the context inside a grouped trailing field.
func BadGrouped(a, b int, ctx context.Context) error { // want `context must come first`
	_, _ = a, b
	return ctx.Err()
}

type worker struct{}

// Run is an exported method with the context misplaced.
func (worker) Run(name string, ctx context.Context) error { // want `context must come first`
	_ = name
	return ctx.Err()
}

// Plain has no context at all.
func Plain(a, b string) string { return a + b }

// unexportedBad is private API; the convention is only machine-checked
// on the exported surface.
func unexportedBad(n int, ctx context.Context) error {
	_ = n
	return ctx.Err()
}

// Allowed documents an intentional exception.
func Allowed(n int, ctx context.Context) error { //lint:allow ctxfirst legacy signature kept for compatibility
	_ = n
	return ctx.Err()
}

// ServeAsk is handler-shaped: the context travels inside *http.Request
// (r.Context()), so there is no explicit parameter to misplace.
func ServeAsk(w http.ResponseWriter, r *http.Request) {
	_ = r.Context()
	w.WriteHeader(http.StatusOK)
}

// HandleWith is a handler helper that does take an explicit context —
// first, as required, ahead of the writer/request pair.
func HandleWith(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	_, _ = w, r
	return ctx.Err()
}

// HandleBuried tucks the explicit context behind the writer/request
// pair; handler helpers get no exemption.
func HandleBuried(w http.ResponseWriter, r *http.Request, ctx context.Context) error { // want `context must come first`
	_, _ = w, r
	return ctx.Err()
}

// Middleware returns a handler; the outer signature has no context
// parameter and the closure is not exported API.
func Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		next.ServeHTTP(w, r)
	})
}

// --- Multi-tenant registry shapes: background onboarding runs for
// minutes beside live serving, so every exported entry point that can
// be cancelled mid-build must lead with its context.

type onboardSpec struct{ schema string }

type tenantRegistry struct{}

// Onboard is the clean shape: the cancellation scope comes first, the
// spec after.
func (tenantRegistry) Onboard(ctx context.Context, spec onboardSpec) error {
	_ = spec
	return ctx.Err()
}

// OnboardBuried hides the context behind the spec; callers reading the
// signature miss that the build is cancellable.
func (tenantRegistry) OnboardBuried(spec onboardSpec, ctx context.Context) error { // want `context must come first`
	_ = spec
	return ctx.Err()
}

// SwapVersion takes no context at all: the atomic slot swap is
// instantaneous and must not block, so there is nothing to cancel.
func (tenantRegistry) SwapVersion(seq int) int { return seq }
