// Package fixture exercises the determinism analyzer: wall-clock
// reads and global-RNG draws are flagged, explicitly seeded RNGs and
// //lint:allow'd timing sites are not.
package fixture

import (
	"math/rand"
	"time"
)

func clock() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

func globalDraw() int {
	return rand.Intn(10) // want `rand\.Intn draws from the global RNG`
}

func globalFloat() float64 {
	return rand.Float64() // want `rand\.Float64 draws from the global RNG`
}

func clockSeed() rand.Source {
	return rand.NewSource(time.Now().UnixNano()) // want `time\.Now reads the wall clock`
}

func seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

func timedAbove() time.Time {
	//lint:allow determinism timing-only fixture site
	return time.Now()
}

func timedInline() int64 {
	return time.Now().UnixNano() //lint:allow determinism timing-only fixture site
}
