// Package fixture exercises the determinism analyzer: wall-clock
// reads and global-RNG draws are flagged, explicitly seeded RNGs and
// //lint:allow'd timing sites are not.
package fixture

import (
	"math/rand"
	"time"
)

func clock() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

func globalDraw() int {
	return rand.Intn(10) // want `rand\.Intn draws from the global RNG`
}

func globalFloat() float64 {
	return rand.Float64() // want `rand\.Float64 draws from the global RNG`
}

func clockSeed() rand.Source {
	return rand.NewSource(time.Now().UnixNano()) // want `time\.Now reads the wall clock`
}

func seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

func timedAbove() time.Time {
	//lint:allow determinism timing-only fixture site
	return time.Now()
}

func timedInline() int64 {
	return time.Now().UnixNano() //lint:allow determinism timing-only fixture site
}

// --- Inference hot-path shapes (result cache, microbatcher): time
// must come from an injected clock/timer, jitter from an explicit
// seed, so cache eviction and batch flushing replay deterministically.

type cacheEntry struct {
	val      string
	lastSeen time.Time
}

// Wall-clock recency stamps couple eviction order to scheduling; the
// repo's cache evicts by access order instead.
func stamp(e *cacheEntry) {
	e.lastSeen = time.Now() // want `time\.Now reads the wall clock`
}

type batcher struct {
	now   func() time.Time            // injected clock
	after func(time.Duration, func()) // injected timer
}

// The injected-clock pattern is clean: no wall-clock read appears in
// library code, and tests substitute both hooks.
func (b *batcher) deadline(wait time.Duration) time.Time {
	return b.now().Add(wait)
}

func (b *batcher) arm(wait time.Duration, flush func()) {
	b.after(wait, flush)
}

// Bypassing the injected clock for the flush deadline is flagged.
func (b *batcher) wallDeadline(wait time.Duration) time.Time {
	return time.Now().Add(wait) // want `time\.Now reads the wall clock`
}

// Jittering the flush window from the global RNG is flagged.
func (b *batcher) jitter(wait time.Duration) time.Duration {
	return wait + time.Duration(rand.Int63n(int64(wait))) // want `rand\.Int63n draws from the global RNG`
}

// --- Multi-tenant registry shapes (versioned model slots, background
// onboarding): slot swaps and version bookkeeping must be driven by
// counters and seeds threaded from the spec, never the wall clock or
// the global RNG, so a killed onboarding resumes bit-identically and
// chaos runs replay.

type slotVersion struct {
	seq         int
	installedAt time.Time
}

type tenantSlot struct {
	nextSeq int
}

// Counter-derived sequence numbers are the clean shape: the version
// ordering is a pure function of install order.
func (t *tenantSlot) nextVersion() *slotVersion {
	t.nextSeq++
	return &slotVersion{seq: t.nextSeq}
}

// Stamping the swap with the wall clock couples version identity to
// scheduling; replays produce different versions.
func (t *tenantSlot) nextVersionStamped() *slotVersion {
	t.nextSeq++
	return &slotVersion{
		seq:         t.nextSeq,
		installedAt: time.Now(), // want `time\.Now reads the wall clock`
	}
}

// Drawing a version tag from the global RNG makes two onboardings of
// the same spec produce different registries.
func versionTag() int {
	return rand.Int() // want `rand\.Int draws from the global RNG`
}

// The onboarding eval workload must derive from the spec seed, not a
// fresh clock seed, or the eval gate scores a different workload on
// every resume.
func evalWorkloadSeed(specSeed int64) rand.Source {
	return rand.NewSource(specSeed + 1789)
}

func evalWorkloadSeedClocked() rand.Source {
	return rand.NewSource(time.Now().UnixNano()) // want `time\.Now reads the wall clock`
}
