// Fixture for the chanclose analyzer: sender-side closes only, no
// reachable double-close, no send after close.
package chanclose

// Only the sender may close: a scope that receives from a channel it
// neither makes nor sends on must not close it.
func receiverCloses(ch chan int) {
	v := <-ch
	_ = v
	close(ch) // want "on the receiving side"
}

// The maker/sender closing is the contract.
func senderCloses() {
	ch := make(chan int, 1)
	ch <- 1
	close(ch)
}

// A straight-line double close panics.
func doubleClose() {
	ch := make(chan int)
	close(ch)
	close(ch) // want "double close"
}

// May-closed join: closed on one branch is closed enough to flag the
// send that follows on the merged path.
func sendAfterMaybeClose(stop bool) {
	ch := make(chan int, 1)
	if stop {
		close(ch)
	}
	ch <- 1 // want "send on ch reachable after close"
}

// A path that terminates after closing contributes nothing to the
// merge: the send below is safe.
func closeAndReturn(stop bool) {
	ch := make(chan int, 1)
	if stop {
		close(ch)
		return
	}
	ch <- 1
}

// Two deferred closes of the same channel double-close at return.
func doubleDefer() {
	ch := make(chan int)
	defer close(ch)
	defer close(ch) // want "duplicate deferred close"
}

// A plain close with a deferred close pending double-closes at
// return.
func closeUnderDefer() {
	ch := make(chan int)
	defer close(ch)
	close(ch) // want "deferred close pending"
}

// Known limitation: facts do not survive loop back-edges, so a close
// repeated across iterations is not caught.
func closeInLoop() {
	ch := make(chan int)
	for i := 0; i < 2; i++ {
		close(ch) // not caught: loop-carried double close
	}
}

// Each literal is its own ownership scope: the feeder goroutine makes
// no claim on channels it only sends to and closes (sender-side).
func feeder() chan int {
	ch := make(chan int)
	go func() {
		ch <- 1
		close(ch)
	}()
	return ch
}
