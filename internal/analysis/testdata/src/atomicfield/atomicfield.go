// Fixture for the atomicfield analyzer: all-or-nothing atomicity on
// struct fields.
package atomicfield

import "sync/atomic"

type counters struct {
	hits  int64 // accessed via sync/atomic below: plain access races
	misc  int64 // never touched atomically: plain access is fine
	flag  atomic.Bool
	slot  atomic.Pointer[int]
	plain int
}

func bump(c *counters) {
	atomic.AddInt64(&c.hits, 1) // establishes the module-wide fact
	c.flag.Store(true)
	c.slot.Store(new(int))
}

func reads(c *counters) int64 {
	a := c.hits // want "field hits is accessed with sync/atomic elsewhere"
	c.hits = 0  // want "field hits is accessed with sync/atomic elsewhere"
	b := atomic.LoadInt64(&c.hits)
	d := c.misc // never atomic anywhere: fine
	c.plain++
	return a + b + d
}

// Atomic-typed fields must not be copied by value.
func copies(c *counters) {
	f := c.flag // want "atomic field flag used as a value"
	_ = f
	use(c.slot)         // want "atomic field slot used as a value"
	ok := c.flag.Load() // method call on the field: fine
	_ = ok
	p := &c.slot // address-of: fine
	_ = p
}

func use(v atomic.Pointer[int]) { _ = v }

// Value receivers on structs with atomic fields copy the atomics.
type gauge struct {
	n atomic.Int64
}

func (g gauge) Read() int64 { // want "value receiver but field n is atomic"
	return 0
}

func (g *gauge) Add() { g.n.Add(1) } // pointer receiver: fine

// Negative: a struct without atomic fields may use value receivers.
type plainBox struct{ v int }

func (b plainBox) Get() int { return b.v }
