// Package fixture exercises the rawgo analyzer: go statements are
// flagged outside the concurrency substrate, and //lint:allow
// suppresses intentional ones.
package fixture

import "sync"

func spawn() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want `go statement outside the concurrency substrate`
		defer wg.Done()
	}()
	wg.Wait()
}

func allowed() {
	done := make(chan struct{})
	//lint:allow rawgo fixture exercises the suppression path
	go close(done)
	<-done
}
