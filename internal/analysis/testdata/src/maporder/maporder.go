// Package fixture exercises the maporder analyzer: map iteration
// whose order escapes into an append, channel send, or emit callback
// is flagged unless a sort follows (or the loop is order-insensitive).
package fixture

import "sort"

func escapesAppend(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration order escapes into append`
		out = append(out, k)
	}
	return out
}

func escapesSend(m map[string]int, sink chan string) {
	for k := range m { // want `map iteration order escapes into a channel send`
		sink <- k
	}
}

func escapesEmit(m map[string]int, emit func(string)) {
	for k := range m { // want `map iteration order escapes into an emit callback`
		emit(k)
	}
}

func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func orderInsensitive(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func sliceRange(xs []string, emit func(string)) {
	for _, x := range xs {
		emit(x)
	}
}

func allowed(m map[string]int, emit func(string)) {
	//lint:allow maporder fixture exercises the suppression path
	for k := range m {
		emit(k)
	}
}
