// Package fixture exercises the errdrop analyzer: statement-position
// calls that discard an error result are flagged; explicit blank
// assignments, handled errors, and never-fails idioms are not.
package fixture

import (
	"bytes"
	"fmt"
	"os"
	"strings"
)

func drop(f *os.File) {
	f.Close() // want `error result of f\.Close is discarded`
}

func deferred(f *os.File) {
	defer f.Close() // want `error result of f\.Close is discarded`
}

func explicit(f *os.File) {
	_ = f.Close()
}

func handled(f *os.File) error {
	return f.Close()
}

func allowed(f *os.File) {
	defer f.Close() //lint:allow errdrop fixture exercises the suppression path
}

func neverFails(sb *strings.Builder, buf *bytes.Buffer) string {
	fmt.Println("stdout is excluded")
	fmt.Fprintf(os.Stderr, "stderr is excluded\n")
	sb.WriteString("builder writes never fail")
	buf.WriteByte('x')
	fmt.Fprintf(sb, "fprintf to a builder never fails")
	return sb.String()
}
