// Fixture for the lockheld analyzer: mutexes held across blocking
// operations and self-re-locking method calls. Loaded under the fake
// path repro/fixtures/lockheld/serve so the analyzer's package
// selection covers it.
package serve

import (
	"context"
	"sync"
	"time"
)

type guarded struct {
	mu    sync.Mutex
	state int
	ch    chan int
}

func slow(ctx context.Context) { <-ctx.Done() } // blocks: channel receive

func napping() { time.Sleep(time.Millisecond) } // blocking via time.Sleep

// Blocking intrinsics and calls under a held lock are flagged.
func (g *guarded) bad(ctx context.Context) {
	g.mu.Lock()
	<-g.ch    // want "mutex g.mu held across channel receive"
	g.ch <- 1 // want "mutex g.mu held across channel send"
	slow(ctx) // want "mutex g.mu held across blocking call"
	napping() // want "mutex g.mu held across blocking call"
	g.mu.Unlock()
}

// defer Unlock keeps the lock held to function end.
func (g *guarded) badDefer(ctx context.Context) {
	g.mu.Lock()
	defer g.mu.Unlock()
	slow(ctx) // want "mutex g.mu held across blocking call"
}

// Selects without default block; with default they do not.
func (g *guarded) selects(done chan struct{}) {
	g.mu.Lock()
	select { // want "mutex g.mu held across select without default"
	case <-done:
	}
	select {
	case <-done:
	default:
	}
	g.mu.Unlock()
}

// Releasing before the blocking work is the contract; not flagged.
func (g *guarded) good(ctx context.Context) {
	g.mu.Lock()
	g.state++
	g.mu.Unlock()
	slow(ctx)
}

// relock locks the receiver's mutex; calling it with g.mu already
// held is a self-deadlock.
func (g *guarded) relock() {
	g.mu.Lock()
	g.state++
	g.mu.Unlock()
}

func (g *guarded) deadlocks() {
	g.mu.Lock()
	g.relock() // want "re-acquires g.mu"
	g.mu.Unlock()
}

// Must-hold join: the lock is released on one path, so it is not
// provably held afterwards — no finding (path-insensitivity would
// over-report here).
func (g *guarded) mayUnlock(ctx context.Context, early bool) {
	g.mu.Lock()
	if early {
		g.mu.Unlock()
	}
	slow(ctx)
	if !early {
		g.mu.Unlock()
	}
}

// Known limitation: blocking work inside a deferred closure runs at
// return while the deferred Unlock may still be pending; the analyzer
// does not charge deferred calls to the lock state.
func (g *guarded) deferredBlocking(ctx context.Context) {
	g.mu.Lock()
	defer g.mu.Unlock()
	defer slow(ctx) // no finding: deferred calls are out of scope
	g.state++
}

// Suppressed: an allow directive silences an intentional exception.
func (g *guarded) allowed(ctx context.Context) {
	g.mu.Lock()
	slow(ctx) //lint:allow lockheld fixture exercises suppression plumbing
	g.mu.Unlock()
}
