// Fixture for the goexit analyzer: every go statement needs a
// provable exit path. Loaded under the fake path
// repro/fixtures/goexit/pipeline so the analyzer's package selection
// covers it.
package pipeline

import "context"

// An infinite loop with no way out leaks the goroutine.
func spinner() {
	go func() { // want "infinite loop .* no return or break"
		for {
		}
	}()
}

// The classic bug: break inside a select breaks the select, not the
// loop — the goroutine never exits.
func selectBreak(ctx context.Context, ch chan int) {
	go func() { // want "infinite loop .* no return or break"
		for {
			select {
			case <-ctx.Done():
				break
			case <-ch:
			}
		}
	}()
}

// Returning out of the select is the correct idiom.
func selectReturn(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-ch:
			}
		}
	}()
}

// A labeled break targeting the loop also exits.
func labeledBreak(ctx context.Context, ch chan int) {
	go func() {
	loop:
		for {
			select {
			case <-ctx.Done():
				break loop
			case <-ch:
			}
		}
	}()
}

// Ranging over a channel the spawner makes but never closes can
// never finish.
func rangeNoClose() {
	ch := make(chan int)
	go func() { // want "ranges over ch, which the spawner makes but never closes"
		for range ch {
		}
	}()
	ch <- 1
}

// The spawner closing the channel (even from another goroutine it
// launches, like a feeder) is the exit path.
func rangeWithClose() {
	ch := make(chan int)
	go func() {
		for range ch {
		}
	}()
	go func() {
		ch <- 1
		close(ch)
	}()
}

// Known limitation: a channel received as a parameter is assumed to
// be closed by its owner.
func rangeParam(ch chan int) {
	go func() {
		for range ch {
		}
	}()
}

// Known limitation: conditional loops are assumed to terminate.
func condLoop(n int) {
	go func() {
		for n > 0 {
			n--
		}
	}()
}

// A dynamic target cannot be proved to exit.
func dynamic(fn func()) {
	go fn() // want "cannot be resolved statically"
}

// A named function with a proper exit path passes when launched.
func worker(ch chan int) {
	for range ch {
	}
}

func launchNamed() {
	ch := make(chan int)
	go worker(ch)
	close(ch)
}
