package analysis

import "testing"

func TestProbeSwitchBreak(t *testing.T) {
	m := loadRepo(t)
	pkg, err := m.LoadDir("testdata/src/probe", "repro/internal/serve/probe")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(m, []*Package{pkg}, []*Analyzer{LockHeld})
	for _, d := range diags {
		t.Logf("%s:%d: %s", d.Path, d.Line, d.Message)
	}
}
