package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/scanner"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Module is a parsed and type-checked view of one Go module, built
// with nothing but the standard library: every package directory is
// parsed with go/parser and checked with go/types, stdlib imports are
// resolved through the source importer, and module-internal imports
// are resolved against the packages loaded here.
type Module struct {
	// Path is the module path from go.mod (e.g. "repro").
	Path string
	// Dir is the absolute module root directory.
	Dir string
	// Fset positions every file in the module (and the stdlib sources
	// the importer touched).
	Fset *token.FileSet
	// Pkgs holds every non-test package of the module, sorted by
	// import path. Command (package main) directories are included.
	Pkgs []*Package
	// LoadDiags reports loader-level problems that did not abort the
	// load — today, files that failed to parse and were skipped. Run
	// folds them into the findings as unsuppressible diagnostics so a
	// broken file can never silently shrink the analyzed surface.
	LoadDiags []Diagnostic

	ldr *loader
}

// Package is one type-checked package of a Module.
type Package struct {
	// Path is the import path ("repro/internal/par"); for package main
	// directories it is the would-be import path of the directory.
	Path string
	// Name is the package name ("par", "main").
	Name string
	// Dir is the absolute directory; RelDir is slash-separated and
	// relative to the module root ("." for the root package).
	Dir    string
	RelDir string
	// ModulePath is the owning module's path, so analyzers can name
	// sibling packages without hard-coding the module name.
	ModulePath string

	Fset  *token.FileSet
	Files []*ast.File
	// Filenames[i] is the absolute path of Files[i].
	Filenames []string

	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-checking problems without aborting the
	// load; analyzers run on the best-effort information.
	TypeErrors []error
}

type loader struct {
	fset      *token.FileSet
	dir       string
	modPath   string
	std       types.Importer
	info      *types.Info
	pkgs      map[string]*pkgState
	loadDiags []Diagnostic
}

type pkgState struct {
	pkg      *Package
	checking bool
	checked  bool
}

// LoadModule locates the module containing dir (walking up to the
// nearest go.mod), parses every non-test .go file outside testdata/
// vendor/ hidden directories, and type-checks all packages in
// dependency order.
func LoadModule(dir string) (*Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}

	l := &loader{
		fset:    token.NewFileSet(),
		dir:     root,
		modPath: modPath,
		info:    newInfo(),
		pkgs:    map[string]*pkgState{},
	}
	l.std = importer.ForCompiler(l.fset, "source", nil)

	dirs, err := goDirs(root)
	if err != nil {
		return nil, err
	}
	m := &Module{Path: modPath, Dir: root, Fset: l.fset, ldr: l}
	for _, d := range dirs {
		pkgs, err := l.parseDir(d)
		if err != nil {
			return nil, err
		}
		m.Pkgs = append(m.Pkgs, pkgs...)
	}
	for _, p := range m.Pkgs {
		if err := l.check(p); err != nil {
			return nil, err
		}
	}
	sort.Slice(m.Pkgs, func(i, j int) bool { return m.Pkgs[i].Path < m.Pkgs[j].Path })
	m.LoadDiags = l.loadDiags
	return m, nil
}

// LoadDir parses and type-checks one extra directory (a test fixture)
// as if it were a module package with the given import path. Module
// and stdlib imports resolve exactly as they do for real packages.
func (m *Module) LoadDir(dir, importPath string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	pkgs, err := m.ldr.parseDirAs(abs, importPath)
	m.LoadDiags = m.ldr.loadDiags
	if err != nil {
		return nil, err
	}
	if len(pkgs) != 1 {
		return nil, fmt.Errorf("analysis: fixture %s holds %d packages, want 1", dir, len(pkgs))
	}
	if err := m.ldr.check(pkgs[0]); err != nil {
		return nil, err
	}
	return pkgs[0], nil
}

func findModule(dir string) (root, modPath string, err error) {
	for d := dir; ; d = filepath.Dir(d) {
		data, rerr := os.ReadFile(filepath.Join(d, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("analysis: no go.mod found at or above %s", dir)
		}
	}
}

// goDirs returns every directory under root that may hold a package,
// skipping testdata, vendor, and hidden/underscore directories — the
// same set `go build ./...` considers.
func goDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	return dirs, err
}

func (l *loader) parseDir(dir string) ([]*Package, error) {
	rel, err := filepath.Rel(l.dir, dir)
	if err != nil {
		return nil, err
	}
	rel = filepath.ToSlash(rel)
	importPath := l.modPath
	if rel != "." {
		importPath = l.modPath + "/" + rel
	}
	return l.parseDirAs(dir, importPath)
}

// parseDirAs parses the non-test .go files of dir into one Package per
// package clause (a healthy directory has exactly one).
func (l *loader) parseDirAs(dir, importPath string) ([]*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	byName := map[string]*Package{}
	var order []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		full := filepath.Join(dir, name)
		file, err := parser.ParseFile(l.fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			// A broken file must not abort the whole load (one bad
			// edit would blind every analyzer) and must not vanish
			// silently either: record an unsuppressible finding and
			// analyze the rest of the package without it.
			l.parseFailure(full, err)
			continue
		}
		if excludedByBuildTags(file) {
			continue
		}
		pkgName := file.Name.Name
		p := byName[pkgName]
		if p == nil {
			rel, err := filepath.Rel(l.dir, dir)
			if err != nil {
				return nil, err
			}
			p = &Package{
				Path:       importPath,
				Name:       pkgName,
				Dir:        dir,
				RelDir:     filepath.ToSlash(rel),
				ModulePath: l.modPath,
				Fset:       l.fset,
				Info:       l.info,
			}
			byName[pkgName] = p
			order = append(order, pkgName)
		}
		p.Files = append(p.Files, file)
		p.Filenames = append(p.Filenames, full)
	}
	var pkgs []*Package
	for _, name := range order {
		p := byName[name]
		st := &pkgState{pkg: p}
		// Register the importable package under its path; a main
		// package never wins over a library in the same directory.
		if old, ok := l.pkgs[p.Path]; !ok || old.pkg.Name == "main" {
			l.pkgs[p.Path] = st
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// parseFailure records a skipped-file diagnostic for a file
// go/parser rejected, anchored at the first syntax error.
func (l *loader) parseFailure(full string, err error) {
	line, col := 1, 1
	msg := err.Error()
	var el scanner.ErrorList
	if ok := errorsAs(err, &el); ok && len(el) > 0 {
		line, col = el[0].Pos.Line, el[0].Pos.Column
		msg = el[0].Msg
	}
	rel := full
	if r, rerr := filepath.Rel(l.dir, full); rerr == nil {
		rel = filepath.ToSlash(r)
	}
	l.loadDiags = append(l.loadDiags, Diagnostic{
		Check:    "parse",
		Analyzer: "load",
		Path:     rel,
		Line:     line,
		Col:      col,
		Message:  "file failed to parse and was skipped: " + msg,
	})
}

func errorsAs(err error, target *scanner.ErrorList) bool {
	el, ok := err.(scanner.ErrorList)
	if ok {
		*target = el
	}
	return ok
}

// excludedByBuildTags reports whether a //go:build (or legacy
// // +build) constraint before the package clause evaluates false for
// this platform — the same files `go build` would skip. Known tags are
// GOOS, GOARCH, "gc", and go1.x release tags; anything else (custom
// tags like "integration") counts as unset.
func excludedByBuildTags(file *ast.File) bool {
	for _, cg := range file.Comments {
		if cg.Pos() >= file.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) && !constraint.IsPlusBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue
			}
			if !expr.Eval(buildTagSet) {
				return true
			}
		}
	}
	return false
}

func buildTagSet(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, "gc":
		return true
	}
	return strings.HasPrefix(tag, "go1.")
}

// check type-checks p, checking its module-internal dependencies
// first.
func (l *loader) check(p *Package) error {
	st := l.pkgs[p.Path]
	if st == nil || st.pkg != p {
		st = &pkgState{pkg: p}
	}
	return l.checkState(st)
}

func (l *loader) checkState(st *pkgState) error {
	if st.checked || st.checking {
		return nil // a cycle surfaces as a type error, not a crash
	}
	st.checking = true
	defer func() { st.checking = false }()

	p := st.pkg
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if dep, ok := l.pkgs[path]; ok && dep != st {
				if err := l.checkState(dep); err != nil {
					return err
				}
			}
		}
	}

	conf := types.Config{
		Importer: (*modImporter)(l),
		Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	p.Types, _ = conf.Check(p.Path, l.fset, p.Files, l.info)
	st.checked = true
	return nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// modImporter resolves module-internal imports from the loaded
// packages and everything else through the stdlib source importer.
type modImporter loader

func (m *modImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, "", 0)
}

func (m *modImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	l := (*loader)(m)
	if st, ok := l.pkgs[path]; ok {
		if err := l.checkState(st); err != nil {
			return nil, err
		}
		if st.pkg.Types == nil {
			return nil, fmt.Errorf("analysis: package %s failed to type-check", path)
		}
		return st.pkg.Types, nil
	}
	if from, ok := l.std.(types.ImporterFrom); ok {
		return from.ImportFrom(path, dir, mode)
	}
	return l.std.Import(path)
}
