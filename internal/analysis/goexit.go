package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoExit demands a provable exit path for every goroutine launched in
// the concurrency packages — the zero-goroutine-leak invariant the
// chaos suites can only sample. A spawned body passes when:
//
//   - it contains no loops (straight-line goroutines finish), and
//   - every infinite `for` loop in it lexically contains a return, a
//     goto, or a break that targets that loop (a `break` inside a
//     nested select/switch does NOT count — the classic leak), and
//   - every `for range ch` over a channel the *spawner* makes is
//     matched by a close(ch) somewhere in the spawner (including its
//     other literals, e.g. a feeder goroutine that closes on exit).
//
// Known limitations: loops hidden behind function calls are not
// followed; channels received as parameters or fields are assumed to
// be closed by their owner; conditional loops (`for cond {}`) are
// assumed to terminate.
var GoExit = &Analyzer{
	Name: "goexit",
	Doc:  "every go statement must have a provable exit path (return/break out of loops, ranged channels closed by the spawner)",
	AppliesTo: func(pkgPath string) bool {
		for _, seg := range []string{"par", "pipeline", "serve", "registry"} {
			if hasSegment(pkgPath, seg) {
				return true
			}
		}
		return false
	},
	Run: runGoExit,
}

func runGoExit(p *Pass) {
	g := p.Graph()
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				checkGoStmt(p, g, fd, gs)
				return true
			})
		}
	}
}

func checkGoStmt(p *Pass, g *CallGraph, spawner *ast.FuncDecl, gs *ast.GoStmt) {
	var body *ast.BlockStmt
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		body = fun.Body
	default:
		if node := g.NodeOf(CalleeOf(p.Pkg.Info, gs.Call)); node != nil {
			body = node.Decl.Body
		}
	}
	if body == nil {
		p.Reportf(gs.Pos(), "goroutine target cannot be resolved statically; no provable exit path")
		return
	}
	for _, loop := range topLevelLoops(body) {
		switch v := loop.stmt.(type) {
		case *ast.ForStmt:
			if v.Cond == nil && !loopExits(v, loop.label) {
				p.Reportf(gs.Pos(), "goroutine runs an infinite loop (line %d) with no return or break out of it",
					p.Pkg.Fset.Position(v.Pos()).Line)
			}
		case *ast.RangeStmt:
			checkRangedChannel(p, spawner, gs, v)
		}
	}
}

// labeledLoop pairs a loop with its label (if any).
type labeledLoop struct {
	stmt  ast.Stmt
	label string
}

// topLevelLoops collects every for/range statement in body, skipping
// nested function literals (they run elsewhere; their own go
// statements are checked where they are launched).
func topLevelLoops(body *ast.BlockStmt) []labeledLoop {
	var loops []labeledLoop
	labels := map[ast.Stmt]string{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.LabeledStmt:
			labels[v.Stmt] = v.Label.Name
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, labeledLoop{stmt: n.(ast.Stmt), label: labels[n.(ast.Stmt)]})
		}
		return true
	})
	return loops
}

// loopExits reports whether an infinite for loop lexically contains a
// way out: a return, a goto (assumed to leave), or a break targeting
// this loop. Breakable-statement nesting is tracked so an unlabeled
// break inside a select/switch/inner loop is correctly NOT counted.
func loopExits(loop *ast.ForStmt, label string) bool {
	exits := false
	depth := 0 // breakable statements between a break and our loop
	var stack []bool
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if n == nil {
			if len(stack) > 0 {
				if stack[len(stack)-1] {
					depth--
				}
				stack = stack[:len(stack)-1]
			}
			return true
		}
		if exits {
			return false
		}
		breakable := false
		switch v := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			exits = true
			return false
		case *ast.BranchStmt:
			switch {
			case v.Tok == token.GOTO:
				exits = true
			case v.Tok == token.BREAK && v.Label == nil && depth == 0:
				exits = true
			case v.Tok == token.BREAK && v.Label != nil && label != "" && v.Label.Name == label:
				exits = true
			}
			return false
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			breakable = true
			depth++
		}
		stack = append(stack, breakable)
		return true
	})
	return exits
}

// checkRangedChannel flags `for range ch` in a goroutine when ch is a
// channel the spawning function makes but never closes — the ranging
// goroutine can then never finish.
func checkRangedChannel(p *Pass, spawner *ast.FuncDecl, gs *ast.GoStmt, rng *ast.RangeStmt) {
	info := p.Pkg.Info
	if t := info.TypeOf(rng.X); t == nil || !isChanType(t) {
		return
	}
	id, ok := ast.Unparen(rng.X).(*ast.Ident)
	if !ok {
		return // field/indexed channels: owner closes, out of scope
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || !madeInFunc(info, spawner, v) {
		return // parameters, fields, captures from farther out
	}
	if !closesVar(info, spawner.Body, v) {
		p.Reportf(gs.Pos(), "goroutine ranges over %s, which the spawner makes but never closes", id.Name)
	}
}

// madeInFunc reports that v is bound to a make(chan ...) result
// within fd's body.
func madeInFunc(info *types.Info, fd *ast.FuncDecl, v *types.Var) bool {
	made := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if made {
			return false
		}
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range assign.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || (info.Defs[id] != v && info.Uses[id] != v) {
				continue
			}
			if i < len(assign.Rhs) {
				if call, ok := ast.Unparen(assign.Rhs[i]).(*ast.CallExpr); ok {
					if fn, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && fn.Name == "make" {
						made = true
					}
				}
			}
		}
		return true
	})
	return made
}

// closesVar reports a close(v) call anywhere in body, including
// inside nested literals (a feeder goroutine closing on exit counts).
func closesVar(info *types.Info, body *ast.BlockStmt, v *types.Var) bool {
	closed := false
	ast.Inspect(body, func(n ast.Node) bool {
		if closed {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || fn.Name != "close" || len(call.Args) != 1 {
			return true
		}
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && info.Uses[id] == v {
			closed = true
		}
		return true
	})
	return closed
}
