package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module for loader tests.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		full := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestParseErrorSurfacesAsFinding is the regression test for the
// loader bugfix: a file that fails to parse must not abort the load
// (or vanish silently) — it becomes an unsuppressible finding and the
// rest of the package is still analyzed.
func TestParseErrorSurfacesAsFinding(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":  "module broken\n\ngo 1.22\n",
		"good.go": "package broken\n\nfunc Fine() int { return 1 }\n",
		"bad.go":  "package broken\n\nfunc Oops( {\n",
	})
	m, err := LoadModule(dir)
	if err != nil {
		t.Fatalf("LoadModule must survive a parse error, got: %v", err)
	}
	if len(m.LoadDiags) != 1 {
		t.Fatalf("LoadDiags = %v, want exactly one parse finding", m.LoadDiags)
	}
	d := m.LoadDiags[0]
	if d.Check != "parse" || d.Analyzer != "load" || d.Suppressible {
		t.Errorf("parse finding misclassified: %+v", d)
	}
	if d.Path != "bad.go" || d.Line == 0 {
		t.Errorf("parse finding not anchored at the broken file: %+v", d)
	}
	if !strings.Contains(d.Message, "skipped") {
		t.Errorf("message should say the file was skipped: %q", d.Message)
	}

	if len(m.Pkgs) != 1 {
		t.Fatalf("module has %d packages, want 1", len(m.Pkgs))
	}
	for _, name := range m.Pkgs[0].Filenames {
		if filepath.Base(name) == "bad.go" {
			t.Errorf("broken file must be skipped, found %s in package", name)
		}
	}

	// Run folds the loader problem into the findings, so dbpal-lint
	// and TestModuleClean both fail on a broken file.
	diags := Run(m, m.Pkgs, Suite())
	found := false
	for _, d := range diags {
		if d.Check == "parse" && d.Path == "bad.go" {
			found = true
		}
	}
	if !found {
		t.Errorf("Run must include the parse finding, got %v", diags)
	}
}

// TestLoaderFileSelection pins which files enter the module set:
// _test.go files never, build-tag-excluded files never, always-true
// build tags yes, and testdata-only packages never.
func TestLoaderFileSelection(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":            "module edge\n\ngo 1.22\n",
		"a.go":              "package edge\n\nfunc A() int { return 1 }\n",
		"a_test.go":         "package edge\n\nfunc helperOnlyInTests() {}\n",
		"skip.go":           "//go:build neverbuild\n\npackage edge\n\nfunc gone() { go func() {}() }\n",
		"keep.go":           "//go:build go1.1\n\npackage edge\n\nfunc B() int { return 2 }\n",
		"testdata/sub/t.go": "package tsub\n\nfunc T() { go func() {}() }\n",
	})
	m, err := LoadModule(dir)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if len(m.LoadDiags) != 0 {
		t.Fatalf("unexpected load diagnostics: %v", m.LoadDiags)
	}
	if len(m.Pkgs) != 1 {
		t.Fatalf("module set has %d packages, want 1 (testdata must be excluded): %+v", len(m.Pkgs), m.Pkgs)
	}
	var bases []string
	for _, name := range m.Pkgs[0].Filenames {
		bases = append(bases, filepath.Base(name))
	}
	got := strings.Join(bases, ",")
	if got != "a.go,keep.go" {
		t.Errorf("loaded files = %s, want a.go,keep.go (_test.go and neverbuild excluded)", got)
	}

	// The excluded files must also be invisible to analyzers: skip.go
	// holds a raw go statement that would otherwise be a rawgo
	// finding, and so does the testdata package.
	diags := Run(m, m.Pkgs, Suite())
	if len(diags) != 0 {
		t.Errorf("excluded files leaked findings: %v", diags)
	}
}

// TestStaleAllowDetection: a directive that suppresses a finding is
// live; one that suppresses nothing is reported stale.
func TestStaleAllowDetection(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module stale\n\ngo 1.22\n",
		"x.go": `package x

func launch() {
	go run() //lint:allow rawgo exercised by the stale-allow test
}

func run() {}

//lint:allow errdrop this directive suppresses nothing
func idle() {}
`,
	})
	m, err := LoadModule(dir)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	diags, stale := RunStale(m, m.Pkgs, Suite())
	if len(diags) != 0 {
		t.Errorf("live allow failed to suppress: %v", diags)
	}
	if len(stale) != 1 {
		t.Fatalf("stale = %v, want exactly the errdrop directive", stale)
	}
	s := stale[0]
	if s.Check != "stale-allow" || s.Suppressible {
		t.Errorf("stale finding misclassified: %+v", s)
	}
	if s.Path != "x.go" || !strings.Contains(s.Message, "errdrop") {
		t.Errorf("stale finding should name the dead errdrop directive: %+v", s)
	}
	if n := CountSuppressions(m, m.Pkgs); n != 2 {
		t.Errorf("CountSuppressions = %d, want 2", n)
	}
}
