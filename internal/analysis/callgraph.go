package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// This file is the interprocedural layer beneath the concurrency
// analyzers: a module-wide static call graph with a "may block" fact
// that propagates from intrinsic blocking sites (channel operations,
// sync waits, network packages, model Translate*/Ask*/Train* calls,
// context-accepting signatures) through every static call edge. The
// graph is built once per Module and memoized; fixture packages are
// grafted on top of the base graph per package, so fixtures see the
// real module's facts (a fixture calling par.Map inherits par.Map's
// blocking fact) without rebuilding the world.

// BlockKind classifies the root cause of a function's blocking fact.
// Transitive facts inherit the kind of their witness callee, so a
// caller of Registry.Wait is KindSyncWait all the way up.
type BlockKind int

// Blocking root causes.
const (
	// KindNone: the function has no blocking fact.
	KindNone BlockKind = iota
	// KindChan: a channel send/receive/range or a select without a
	// default case.
	KindChan
	// KindSyncWait: sync.WaitGroup.Wait or sync.Cond.Wait.
	KindSyncWait
	// KindNet: a call into net, net/http, net/rpc, os/exec, or
	// database/sql.
	KindNet
	// KindModel: a Translate*/Ask*/Train* call — the pluggable-model
	// surface, unbounded unless wrapped in par.Await.
	KindModel
	// KindCtx: the callee accepts a context.Context, which by this
	// repository's convention marks a cancellable (and therefore
	// possibly long-running) operation.
	KindCtx
)

// String names the kind for diagnostics.
func (k BlockKind) String() string {
	switch k {
	case KindChan:
		return "channel operation"
	case KindSyncWait:
		return "sync wait"
	case KindNet:
		return "network/process I/O"
	case KindModel:
		return "model call"
	case KindCtx:
		return "context-accepting call"
	}
	return "none"
}

// FuncNode is one function or method in the call graph.
type FuncNode struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package

	// Calls are the statically resolved callees (deduplicated,
	// deterministic order). go statements are excluded: launching a
	// goroutine does not block the launcher.
	Calls []*types.Func

	// Blocking reports that calling this function may block the
	// caller; BlockKind and BlockReason describe the first witness.
	Blocking    bool
	BlockKind   BlockKind
	BlockReason string
	BlockPos    token.Pos

	// RecvLocks lists the receiver mutex fields this method locks
	// directly (r.mu.Lock() with receiver r) — the re-entry fact the
	// lockheld analyzer consults.
	RecvLocks []string
}

// CallGraph is the module-wide graph plus the classification helpers
// the analyzers share.
type CallGraph struct {
	mod   *Module
	nodes map[*types.Func]*FuncNode
}

var (
	graphMu  sync.Mutex
	graphs   = map[*Module]*CallGraph{}
	extended = map[*Package]*CallGraph{}
)

// Graph returns the call graph over the module's packages. When extra
// is a fixture package outside the module set, the returned graph
// additionally covers it (memoized per fixture).
func (m *Module) Graph(extra *Package) *CallGraph {
	graphMu.Lock()
	defer graphMu.Unlock()
	base := graphs[m]
	if base == nil {
		base = buildGraph(m, m.Pkgs)
		graphs[m] = base
	}
	if extra == nil || base.nodes != nil && containsPkg(m.Pkgs, extra) {
		return base
	}
	if g, ok := extended[extra]; ok {
		return g
	}
	g := buildGraph(m, append(append([]*Package{}, m.Pkgs...), extra))
	extended[extra] = g
	return g
}

func containsPkg(pkgs []*Package, p *Package) bool {
	for _, q := range pkgs {
		if q == p {
			return true
		}
	}
	return false
}

// Graph returns the interprocedural call graph covering the module
// and this pass's package.
func (p *Pass) Graph() *CallGraph {
	return p.Mod.Graph(p.Pkg)
}

// NodeOf returns the graph node for fn (generic instances are
// canonicalized to their origin), or nil for functions without a body
// in the module (stdlib, interface methods).
func (g *CallGraph) NodeOf(fn *types.Func) *FuncNode {
	if fn == nil {
		return nil
	}
	if o := fn.Origin(); o != nil {
		fn = o
	}
	return g.nodes[fn]
}

// buildGraph collects one FuncNode per declared function, records
// static call edges and intrinsic blocking sites, then propagates the
// blocking fact to callers until fixpoint.
func buildGraph(m *Module, pkgs []*Package) *CallGraph {
	g := &CallGraph{mod: m, nodes: map[*types.Func]*FuncNode{}}
	var order []*FuncNode
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &FuncNode{Obj: obj, Decl: fd, Pkg: pkg}
				g.nodes[obj] = n
				order = append(order, n)
			}
		}
	}
	for _, n := range order {
		g.summarize(n)
	}
	g.propagate(order)
	return g
}

// summarize records n's static callees, intrinsic blocking sites, and
// receiver-lock set. Nested function literals are skipped (their
// bodies run on other goroutines or at other times), except literals
// that are invoked immediately, whose bodies execute inline.
func (g *CallGraph) summarize(n *FuncNode) {
	info := n.Pkg.Info
	recv := receiverObj(info, n.Decl)
	seen := map[*types.Func]bool{}

	var visit func(node ast.Node) bool
	visit = func(node ast.Node) bool {
		switch v := node.(type) {
		case *ast.FuncLit:
			return false // not this function's control flow
		case *ast.GoStmt:
			// The launch is asynchronous; only the argument
			// expressions run here.
			for _, arg := range v.Call.Args {
				ast.Inspect(arg, visit)
			}
			return false
		case *ast.CallExpr:
			if lit, ok := ast.Unparen(v.Fun).(*ast.FuncLit); ok {
				// Immediately-invoked literal: its body is inline.
				for _, arg := range v.Args {
					ast.Inspect(arg, visit)
				}
				ast.Inspect(lit.Body, visit)
				return false
			}
			if fn := CalleeOf(info, v); fn != nil {
				if o := fn.Origin(); o != nil {
					fn = o
				}
				if !seen[fn] {
					seen[fn] = true
					n.Calls = append(n.Calls, fn)
				}
				if field, ok := recvLockCall(info, v, recv); ok {
					n.RecvLocks = append(n.RecvLocks, field)
				}
			}
			if kind, why, ok := g.classifyCall(n.Pkg, v); ok && !n.Blocking {
				n.setBlocking(kind, why, v.Pos())
			}
			return true
		case *ast.SendStmt:
			if !n.Blocking {
				n.setBlocking(KindChan, "channel send", v.Pos())
			}
		case *ast.UnaryExpr:
			if v.Op == token.ARROW && !n.Blocking {
				n.setBlocking(KindChan, "channel receive", v.Pos())
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(v.X); t != nil && isChanType(t) && !n.Blocking {
				n.setBlocking(KindChan, "range over a channel", v.X.Pos())
			}
		case *ast.SelectStmt:
			if !selectHasDefault(v) && !n.Blocking {
				n.setBlocking(KindChan, "select without a default case", v.Pos())
			}
		}
		return true
	}
	ast.Inspect(n.Decl.Body, visit)
	sort.Slice(n.Calls, func(i, j int) bool { return n.Calls[i].FullName() < n.Calls[j].FullName() })
	sort.Strings(n.RecvLocks)
}

func (n *FuncNode) setBlocking(kind BlockKind, why string, pos token.Pos) {
	n.Blocking = true
	n.BlockKind = kind
	n.BlockReason = why
	n.BlockPos = pos
}

// propagate pushes the blocking fact caller-ward until fixpoint.
func (g *CallGraph) propagate(order []*FuncNode) {
	callers := map[*types.Func][]*FuncNode{}
	for _, n := range order {
		for _, callee := range n.Calls {
			callers[callee] = append(callers[callee], n)
		}
	}
	var work []*FuncNode
	for _, n := range order {
		if n.Blocking {
			work = append(work, n)
		}
	}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		for _, caller := range callers[n.Obj] {
			if caller.Blocking {
				continue
			}
			caller.setBlocking(n.BlockKind,
				fmt.Sprintf("calls %s, which may block (%s)", shortName(n.Obj), n.BlockReason),
				n.BlockPos)
			work = append(work, caller)
		}
	}
}

// BlockingCall classifies one call expression: whether it may block,
// with the kind and a human-readable reason. It consults, in order:
// the module graph (transitive facts), the stdlib blocking set, the
// model-call naming convention, and the context-accepting rule.
func (g *CallGraph) BlockingCall(pkg *Package, call *ast.CallExpr) (BlockKind, string, bool) {
	return g.classifyCall(pkg, call)
}

func (g *CallGraph) classifyCall(pkg *Package, call *ast.CallExpr) (BlockKind, string, bool) {
	info := pkg.Info
	fn := CalleeOf(info, call)
	if fn != nil {
		if o := fn.Origin(); o != nil {
			fn = o
		}
		if node := g.nodes[fn]; node != nil {
			if node.Blocking {
				return node.BlockKind, fmt.Sprintf("%s may block (%s)", shortName(fn), node.BlockReason), true
			}
			// A module function with a clean summary is trusted over
			// the name/signature heuristics below.
			return KindNone, "", false
		}
		pkgPath := ""
		if fn.Pkg() != nil {
			pkgPath = fn.Pkg().Path()
		}
		switch {
		case pkgPath == "time" && fn.Name() == "Sleep":
			return KindSyncWait, "time.Sleep", true
		case pkgPath == "sync" && fn.Name() == "Wait" && isSyncWaitRecv(fn):
			return KindSyncWait, "sync." + recvTypeName(fn) + ".Wait", true
		case isNetPkg(pkgPath):
			return KindNet, pkgPath + "." + fn.Name() + " performs I/O", true
		case pkgPath == "context" || pkgPath == "os/signal":
			// Constructors and accessors that take or return contexts
			// never block; without this exemption the
			// context-accepting rule below would flag them all.
			return KindNone, "", false
		}
		if isModelCallName(fn.Name()) {
			return KindModel, shortName(fn) + " is a model call", true
		}
		if sigAcceptsContext(fn.Type()) {
			return KindCtx, shortName(fn) + " accepts a context (cancellable, so possibly slow)", true
		}
		return KindNone, "", false
	}
	// Dynamic call (func value, func-typed field): only the name and
	// signature are available.
	if name, ok := callName(call); ok && isModelCallName(name) {
		return KindModel, name + " is a model call", true
	}
	if t := info.TypeOf(call.Fun); t != nil {
		if pkgName(info, call) == "context" || pkgName(info, call) == "signal" {
			return KindNone, "", false
		}
		if sigAcceptsContext(t) {
			return KindCtx, "callee accepts a context (cancellable, so possibly slow)", true
		}
	}
	return KindNone, "", false
}

// AcceptsContext reports whether the call's callee signature includes
// a context.Context parameter.
func AcceptsContext(info *types.Info, call *ast.CallExpr) bool {
	return sigAcceptsContext(info.TypeOf(call.Fun))
}

// ---------------------------------------------------------------------
// Resolution helpers (shared with the analyzers).
// ---------------------------------------------------------------------

// CalleeOf statically resolves a call's target function or method;
// nil for dynamic calls, conversions, and builtins.
func CalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.IndexExpr: // explicit generic instantiation f[T](...)
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			if fn, ok := info.Uses[id].(*types.Func); ok {
				return fn
			}
		}
	}
	return nil
}

// callName extracts the syntactic callee name ("Translate" in
// x.Translate(...)), for heuristics over dynamic calls.
func callName(call *ast.CallExpr) (string, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name, true
	case *ast.SelectorExpr:
		return fun.Sel.Name, true
	}
	return "", false
}

func pkgName(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Name()
	}
	return ""
}

// isModelCallName matches the pluggable-model call surface:
// Translate, TranslateContext, TranslateBatch, Ask, AskContext,
// Train, TrainContext, ... — a name-based convention because the
// model behind the interface is exactly what the module cannot see.
func isModelCallName(name string) bool {
	for _, prefix := range []string{"Translate", "Ask", "Train"} {
		if name == prefix {
			return true
		}
		if rest, ok := strings.CutPrefix(name, prefix); ok && len(rest) > 0 && rest[0] >= 'A' && rest[0] <= 'Z' {
			return true
		}
	}
	return false
}

func isNetPkg(path string) bool {
	for _, p := range []string{"net", "net/http", "net/rpc", "os/exec", "database/sql"} {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func sigAcceptsContext(t types.Type) bool {
	sig, ok := t.(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i).Type().String() == "context.Context" {
			return true
		}
	}
	return false
}

func isSyncWaitRecv(fn *types.Func) bool {
	name := recvTypeName(fn)
	return name == "WaitGroup" || name == "Cond"
}

// recvTypeName returns the bare receiver type name of a method
// ("WaitGroup" for (*sync.WaitGroup).Wait), or "".
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// shortName renders pkg.Func or pkg.Type.Method for diagnostics.
func shortName(fn *types.Func) string {
	recv := recvTypeName(fn)
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Name() + "."
	}
	if recv != "" {
		return pkg + recv + "." + fn.Name()
	}
	return pkg + fn.Name()
}

func isChanType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// receiverObj returns the receiver variable of a method declaration,
// or nil.
func receiverObj(info *types.Info, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return info.Defs[fd.Recv.List[0].Names[0]]
}

// recvLockCall reports that call is recv.<field>.Lock() /
// RLock() on the method's own receiver, returning the field name.
func recvLockCall(info *types.Info, call *ast.CallExpr, recv types.Object) (string, bool) {
	if recv == nil {
		return "", false
	}
	fn := CalleeOf(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false
	}
	if fn.Name() != "Lock" && fn.Name() != "RLock" {
		return "", false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	field, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	base, ok := ast.Unparen(field.X).(*ast.Ident)
	if !ok || info.Uses[base] != recv {
		return "", false
	}
	return field.Sel.Name, true
}

// MutexLockCall classifies a call as a sync mutex Lock/RLock or
// Unlock/RUnlock, returning the lock expression ("b.mu") and whether
// it acquires (true) or releases (false).
func MutexLockCall(info *types.Info, call *ast.CallExpr) (lockExpr ast.Expr, acquire, ok bool) {
	fn := CalleeOf(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, false, false
	}
	var acq bool
	switch fn.Name() {
	case "Lock", "RLock":
		acq = true
	case "Unlock", "RUnlock":
		acq = false
	default:
		return nil, false, false
	}
	if name := recvTypeName(fn); name != "Mutex" && name != "RWMutex" {
		return nil, false, false
	}
	sel, ok2 := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok2 {
		return nil, false, false
	}
	return sel.X, acq, true
}
