package analysis

import (
	"strings"
	"testing"

	"go/types"
)

// nodeFor walks the module graph for the function named pkgPath.name
// (name is "Recv.Method" for methods, matching shortName).
func nodeFor(t *testing.T, m *Module, pkgPath, name string) *FuncNode {
	t.Helper()
	g := m.Graph(nil)
	// shortName prefixes the package name ("registry.Registry.Wait").
	want := pkgPath[strings.LastIndex(pkgPath, "/")+1:] + "." + name
	var hit *FuncNode
	for fn, n := range g.nodes {
		if n.Pkg == nil || n.Pkg.Path != pkgPath {
			continue
		}
		if shortName(fn) == want {
			if hit != nil {
				t.Fatalf("two graph nodes named %s in %s", name, pkgPath)
			}
			hit = n
		}
	}
	if hit == nil {
		t.Fatalf("no graph node %s in %s", name, pkgPath)
	}
	return hit
}

// TestBlockingFacts grounds the interprocedural engine against the
// real module: functions that demonstrably park a goroutine carry the
// blocking fact (with the right kind where the source is direct), and
// lock-protected fast paths do not.
func TestBlockingFacts(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module graph build is not a -short test")
	}
	m := loadRepo(t)

	cases := []struct {
		pkg, fn  string
		blocking bool
		kind     BlockKind // KindNone means "do not check the kind"
	}{
		// Direct intrinsic sources.
		{"repro/internal/registry", "Registry.Wait", true, KindSyncWait},
		{"repro/internal/par", "MapCtx", true, KindChan},
		// Transitive: decode reaches the model Translate path.
		{"repro/internal/serve", "Batcher.decode", true, KindModel},
		// Transitive through a module-internal helper chain.
		{"repro/internal/serve", "Server.Shutdown", true, KindNone},
		// Precision: mutex-guarded fast paths are NOT blocking, even
		// though they lock; classifying Lock as blocking would poison
		// half the serving stack.
		{"repro/internal/serve", "Breaker.Allow", false, KindNone},
	}
	for _, c := range cases {
		n := nodeFor(t, m, c.pkg, c.fn)
		if n.Blocking != c.blocking {
			t.Errorf("%s.%s: Blocking=%v (reason %q), want %v", c.pkg, c.fn, n.Blocking, n.BlockReason, c.blocking)
			continue
		}
		if c.blocking && c.kind != KindNone && n.BlockKind != c.kind {
			t.Errorf("%s.%s: BlockKind=%v (reason %q), want %v", c.pkg, c.fn, n.BlockKind, n.BlockReason, c.kind)
		}
		if c.blocking && n.BlockReason == "" {
			t.Errorf("%s.%s: blocking node carries no witness reason", c.pkg, c.fn)
		}
	}

	// A transitive witness names the callee chain it was inherited
	// from, so a finding's "why" is actionable.
	sd := nodeFor(t, m, "repro/internal/serve", "Server.Shutdown")
	if !strings.Contains(sd.BlockReason, "may block") {
		t.Errorf("Server.Shutdown witness should explain the inherited fact, got %q", sd.BlockReason)
	}
}

// TestRecvLocks pins the receiver-lock summaries that lockheld's
// self-deadlock rule consumes.
func TestRecvLocks(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module graph build is not a -short test")
	}
	m := loadRepo(t)
	n := nodeFor(t, m, "repro/internal/serve", "Breaker.Allow")
	found := false
	for _, l := range n.RecvLocks {
		if strings.HasSuffix(l, ".mu") || l == "mu" {
			found = true
		}
	}
	if !found {
		t.Errorf("Breaker.Allow should summarize its receiver mutex acquisition, got %v", n.RecvLocks)
	}
}

// Origin canonicalization: instantiated generic functions share one
// graph node with their generic origin.
func TestGraphNodeCanonicalization(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module graph build is not a -short test")
	}
	m := loadRepo(t)
	g := m.Graph(nil)
	for fn := range g.nodes {
		if fn.Origin() != fn {
			t.Errorf("graph keyed by instantiation, not origin: %v", fn)
		}
		var _ *types.Func = fn
	}
}
