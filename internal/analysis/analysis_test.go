package analysis

import (
	"bytes"
	"fmt"
	"go/parser"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// The module is loaded once and shared by every fixture test: the
// fixtures import real module packages (repro/internal/par, ...), so
// they type-check against the same loader state dbpal-lint uses.
var (
	loadOnce sync.Once
	loadedM  *Module
	loadErr  error
)

func loadRepo(t *testing.T) *Module {
	t.Helper()
	loadOnce.Do(func() {
		loadedM, loadErr = LoadModule(".")
	})
	if loadErr != nil {
		t.Fatalf("LoadModule: %v", loadErr)
	}
	return loadedM
}

// want is one expectation parsed from a fixture's `// want `...“
// comment: a diagnostic whose message matches the regexp must be
// reported on the comment's line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

func parseWants(t *testing.T, dir string) []*want {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, nil, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse fixture %s: %v", dir, err)
	}
	var wants []*want
	for _, pkg := range pkgs {
		for filename, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "// want ")
					if !ok {
						continue
					}
					pat, err := strconv.Unquote(strings.TrimSpace(rest))
					if err != nil {
						t.Fatalf("%s: bad want comment %q: %v", filename, c.Text, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", filename, pat, err)
					}
					wants = append(wants, &want{
						file: filepath.Base(filename),
						line: fset.Position(c.Pos()).Line,
						re:   re,
					})
				}
			}
		}
	}
	return wants
}

// runFixture type-checks testdata/src/<name> under the given fake
// import path, runs exactly one analyzer over it, and asserts the
// diagnostic set matches the fixture's want comments — no missing, no
// extra, suppressed sites silent.
func runFixture(t *testing.T, a *Analyzer, name, importPath string) {
	t.Helper()
	m := loadRepo(t)
	dir := filepath.Join("testdata", "src", name)
	pkg, err := m.LoadDir(dir, importPath)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture %s has type error: %v", name, terr)
	}
	if a.AppliesTo != nil && !a.AppliesTo(importPath) {
		t.Fatalf("analyzer %s does not apply to fixture path %s", a.Name, importPath)
	}

	diags := Run(m, []*Package{pkg}, []*Analyzer{a})
	wants := parseWants(t, dir)

	for _, d := range diags {
		base := filepath.Base(d.Path)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == base && w.line == d.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic %s:%d: [%s] %s", d.Path, d.Line, d.Check, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("missing diagnostic at %s:%d matching %q", w.file, w.line, w.re)
		}
	}
}

func TestDeterminismFixture(t *testing.T) {
	runFixture(t, Determinism, "determinism", "repro/fixtures/determinism")
}

func TestMapOrderFixture(t *testing.T) {
	// The fake path carries a "generator" segment so the analyzer's
	// package configuration selects it.
	runFixture(t, MapOrder, "maporder", "repro/fixtures/generator")
}

func TestRawGoFixture(t *testing.T) {
	runFixture(t, RawGo, "rawgo", "repro/fixtures/rawgo")
}

func TestErrDropFixture(t *testing.T) {
	runFixture(t, ErrDrop, "errdrop", "repro/fixtures/errdrop")
}

func TestSeedSplitFixture(t *testing.T) {
	runFixture(t, SeedSplit, "seedsplit", "repro/fixtures/seedsplit")
}

func TestCtxFirstFixture(t *testing.T) {
	runFixture(t, CtxFirst, "ctxfirst", "repro/fixtures/ctxfirst")
}

func TestLockHeldFixture(t *testing.T) {
	// The fake path carries a "serve" segment so the analyzer's
	// package configuration selects it.
	runFixture(t, LockHeld, "lockheld", "repro/fixtures/lockheld/serve")
}

func TestAtomicFieldFixture(t *testing.T) {
	runFixture(t, AtomicField, "atomicfield", "repro/fixtures/atomicfield")
}

func TestGoExitFixture(t *testing.T) {
	// The fake path carries a "pipeline" segment so the analyzer's
	// package configuration selects it.
	runFixture(t, GoExit, "goexit", "repro/fixtures/goexit/pipeline")
}

func TestChanCloseFixture(t *testing.T) {
	runFixture(t, ChanClose, "chanclose", "repro/fixtures/chanclose")
}

func TestCtxDropFixture(t *testing.T) {
	runFixture(t, CtxDrop, "ctxdrop", "repro/fixtures/ctxdrop")
}

// TestAnalyzerConfiguration pins the package-specific configuration:
// which packages each analyzer covers and which it exempts.
func TestAnalyzerConfiguration(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		path     string
		applies  bool
	}{
		{MapOrder, "repro/internal/generator", true},
		{MapOrder, "repro/internal/augment", true},
		{MapOrder, "repro/internal/pipeline", true},
		{MapOrder, "repro/internal/models", true},
		{MapOrder, "repro/internal/engine", false},
		{RawGo, "repro/internal/par", false},
		{RawGo, "repro/internal/pipeline", false},
		{RawGo, "repro/internal/core", true},
		{RawGo, "repro/cmd/dbpal-bench", true},
		{LockHeld, "repro/internal/serve", true},
		{LockHeld, "repro/internal/registry", true},
		{LockHeld, "repro/internal/cache", true},
		{LockHeld, "repro/internal/par", true},
		{LockHeld, "repro/internal/pipeline", true},
		{LockHeld, "repro/internal/engine", false},
		{GoExit, "repro/internal/par", true},
		{GoExit, "repro/internal/pipeline", true},
		{GoExit, "repro/internal/serve", true},
		{GoExit, "repro/internal/registry", true},
		{GoExit, "repro/internal/cache", false},
		{GoExit, "repro/internal/models", false},
	}
	for _, c := range cases {
		if got := c.analyzer.AppliesTo(c.path); got != c.applies {
			t.Errorf("%s.AppliesTo(%q) = %v, want %v", c.analyzer.Name, c.path, got, c.applies)
		}
	}
	for _, a := range []*Analyzer{Determinism, ErrDrop, SeedSplit, CtxFirst, AtomicField, ChanClose, CtxDrop} {
		if a.AppliesTo != nil {
			t.Errorf("%s should apply to every package", a.Name)
		}
	}
	if len(Suite()) != 11 {
		t.Errorf("Suite() has %d analyzers, want 11", len(Suite()))
	}
}

// TestJSONOutputShape pins the -json contract byte-for-byte:
// schemaVersion envelope, per-finding analyzer + suppressible fields.
func TestJSONOutputShape(t *testing.T) {
	diags := []Diagnostic{
		{Check: "determinism", Analyzer: "determinism", Path: "cmd/x/main.go", Line: 3, Col: 7, Message: "time.Now reads the wall clock", Suppressible: true},
		{Check: "parse", Analyzer: "load", Path: "internal/y/y.go", Line: 10, Col: 2, Message: "file failed to parse and was skipped: expected ';'"},
	}
	var buf bytes.Buffer
	if err := FormatJSON(&buf, diags); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	wantJSON := `{
  "schemaVersion": 1,
  "findings": [
    {
      "check": "determinism",
      "analyzer": "determinism",
      "path": "cmd/x/main.go",
      "line": 3,
      "col": 7,
      "message": "time.Now reads the wall clock",
      "suppressible": true
    },
    {
      "check": "parse",
      "analyzer": "load",
      "path": "internal/y/y.go",
      "line": 10,
      "col": 2,
      "message": "file failed to parse and was skipped: expected ';'",
      "suppressible": false
    }
  ]
}
`
	if got != wantJSON {
		t.Errorf("JSON output mismatch:\ngot:\n%s\nwant:\n%s", got, wantJSON)
	}

	buf.Reset()
	if err := FormatJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	wantEmpty := "{\n  \"schemaVersion\": 1,\n  \"findings\": []\n}\n"
	if buf.String() != wantEmpty {
		t.Errorf("empty findings must encode as %q, got %q", wantEmpty, buf.String())
	}
}

// TestJSONByteStable asserts -json output is byte-identical across
// runs regardless of the order findings were produced in.
func TestJSONByteStable(t *testing.T) {
	scrambled := [][]Diagnostic{
		{
			{Check: "b", Analyzer: "b", Path: "b.go", Line: 2, Col: 1, Message: "m1", Suppressible: true},
			{Check: "a", Analyzer: "a", Path: "a.go", Line: 9, Col: 1, Message: "m2", Suppressible: true},
			{Check: "a", Analyzer: "a", Path: "a.go", Line: 2, Col: 5, Message: "m3", Suppressible: true},
		},
		{
			{Check: "a", Analyzer: "a", Path: "a.go", Line: 2, Col: 5, Message: "m3", Suppressible: true},
			{Check: "b", Analyzer: "b", Path: "b.go", Line: 2, Col: 1, Message: "m1", Suppressible: true},
			{Check: "a", Analyzer: "a", Path: "a.go", Line: 9, Col: 1, Message: "m2", Suppressible: true},
		},
	}
	var outs []string
	for _, diags := range scrambled {
		SortDiagnostics(diags)
		var buf bytes.Buffer
		if err := FormatJSON(&buf, diags); err != nil {
			t.Fatal(err)
		}
		outs = append(outs, buf.String())
	}
	if outs[0] != outs[1] {
		t.Errorf("JSON output depends on production order:\nfirst:\n%s\nsecond:\n%s", outs[0], outs[1])
	}
}

func TestTextOutputShape(t *testing.T) {
	var buf bytes.Buffer
	err := FormatText(&buf, []Diagnostic{
		{Check: "rawgo", Path: "internal/z/z.go", Line: 4, Col: 2, Message: "go statement outside the concurrency substrate"},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantLine := "internal/z/z.go:4:2: [rawgo] go statement outside the concurrency substrate\n"
	if buf.String() != wantLine {
		t.Errorf("text output = %q, want %q", buf.String(), wantLine)
	}
}

func TestSortDiagnostics(t *testing.T) {
	diags := []Diagnostic{
		{Check: "b", Path: "b.go", Line: 2, Col: 1},
		{Check: "a", Path: "a.go", Line: 9, Col: 1},
		{Check: "b", Path: "a.go", Line: 9, Col: 1},
		{Check: "a", Path: "a.go", Line: 2, Col: 5},
		{Check: "a", Path: "a.go", Line: 2, Col: 1},
	}
	SortDiagnostics(diags)
	var got []string
	for _, d := range diags {
		got = append(got, fmt.Sprintf("%s:%d:%d:%s", d.Path, d.Line, d.Col, d.Check))
	}
	wantOrder := []string{"a.go:2:1:a", "a.go:2:5:a", "a.go:9:1:a", "a.go:9:1:b", "b.go:2:1:b"}
	for i := range wantOrder {
		if got[i] != wantOrder[i] {
			t.Fatalf("sort order[%d] = %s, want %s (full: %v)", i, got[i], wantOrder[i], got)
		}
	}
}

// TestModuleClean is the acceptance gate the CI lint step enforces:
// the shipped tree has zero findings. Reverting one of the violation
// fixes (or introducing a new violation) fails this test and the CI
// step alike.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module lint is not a -short test")
	}
	m := loadRepo(t)
	diags, stale := RunStale(m, m.Pkgs, Suite())
	for _, d := range diags {
		t.Errorf("%s:%d:%d: [%s] %s", d.Path, d.Line, d.Col, d.Check, d.Message)
	}
	// Every //lint:allow in the tree must be earning its keep: a
	// directive that suppresses nothing is reported here and by
	// `dbpal-lint -stale-allow` alike.
	for _, d := range stale {
		t.Errorf("stale allow at %s:%d: %s", d.Path, d.Line, d.Message)
	}
}
