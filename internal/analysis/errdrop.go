package analysis

import (
	"go/ast"
	"go/types"
)

// ErrDrop flags call statements (including deferred calls) that
// silently discard an error result — the classic lost Flush/Close on
// a CLI output path. Assigning to the blank identifier stays legal:
// `_ = f.Close()` is a visible, reviewable decision, a bare statement
// is not.
//
// Excluded as never-fails by contract: fmt.Print/Printf/Println,
// fmt.Fprint* to os.Stdout/os.Stderr, and the Write* methods of
// strings.Builder and bytes.Buffer.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "flags discarded error results in statement position",
	Run: func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch s := n.(type) {
				case *ast.ExprStmt:
					if call, ok := s.X.(*ast.CallExpr); ok {
						checkDroppedError(pass, call)
					}
				case *ast.DeferStmt:
					checkDroppedError(pass, s.Call)
				}
				return true
			})
		}
	},
}

func checkDroppedError(pass *Pass, call *ast.CallExpr) {
	if errdropExcluded(pass, call) {
		return
	}
	t := pass.TypeOf(call)
	if t == nil {
		return
	}
	drops := false
	switch rt := t.(type) {
	case *types.Tuple:
		for i := 0; i < rt.Len(); i++ {
			if isErrorType(rt.At(i).Type()) {
				drops = true
			}
		}
	default:
		drops = isErrorType(rt)
	}
	if drops {
		pass.Reportf(call.Pos(), "error result of %s is discarded; handle it or assign it to _ explicitly", calleeString(call))
	}
}

var errType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errType)
}

// errdropExcluded recognizes the never-fails idioms the check leaves
// alone.
func errdropExcluded(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// fmt.Print family; fmt.Fprint* only when writing to the
	// process's own stdio or to an in-memory buffer.
	if path, ok := pass.PkgPathOf(sel.X); ok && path == "fmt" {
		switch sel.Sel.Name {
		case "Print", "Printf", "Println":
			return true
		case "Fprint", "Fprintf", "Fprintln":
			if len(call.Args) > 0 {
				if w, ok := call.Args[0].(*ast.SelectorExpr); ok {
					if path, ok := pass.PkgPathOf(w.X); ok && path == "os" &&
						(w.Sel.Name == "Stdout" || w.Sel.Name == "Stderr") {
						return true
					}
				}
				if isBufferType(pass.TypeOf(call.Args[0])) {
					return true
				}
			}
		}
		return false
	}
	// Methods of strings.Builder and bytes.Buffer document that the
	// error is always nil.
	return isBufferType(pass.TypeOf(sel.X))
}

// isBufferType recognizes strings.Builder and bytes.Buffer (and
// pointers to them), whose writes never fail by contract.
func isBufferType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.String() {
	case "*strings.Builder", "strings.Builder", "*bytes.Buffer", "bytes.Buffer":
		return true
	}
	return false
}

// calleeString renders the called expression for the message
// ("f.Close", "w.Flush", "enc.Encode").
func calleeString(call *ast.CallExpr) string {
	return types.ExprString(call.Fun)
}
