package analysis

import (
	"go/ast"
	"go/types"
)

// SeedSplit enforces the RNG-splitting discipline inside parallel
// callbacks. A function literal handed to par.Map or to a parallel
// pipeline stage runs concurrently per item; any rand.NewSource it
// performs must derive its seed from par.SplitSeed(base, i) (or, for
// pipeline.SeededMap, from the stage-provided split-seed parameter).
// Ad-hoc arithmetic like seed+i produces correlated child streams and,
// worse, invites accidentally sharing one *rand.Rand across workers.
var SeedSplit = &Analyzer{
	Name: "seedsplit",
	Doc:  "flags rand.NewSource inside parallel callbacks not derived from par.SplitSeed",
	Run: func(pass *Pass) {
		parPath := pass.Pkg.ModulePath + "/internal/par"
		pipePath := pass.Pkg.ModulePath + "/internal/pipeline"
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				var fnArg ast.Expr
				var host string
				switch {
				case pass.IsPkgFunc(call.Fun, parPath, "Map") && len(call.Args) == 3:
					fnArg, host = call.Args[2], "par.Map"
				case pass.IsPkgFunc(call.Fun, pipePath, "SeededMap") && len(call.Args) == 3:
					fnArg, host = call.Args[2], "pipeline.SeededMap"
				case pass.IsPkgFunc(call.Fun, pipePath, "Map") && len(call.Args) == 2:
					fnArg, host = call.Args[1], "pipeline.Map"
				case pass.IsPkgFunc(call.Fun, pipePath, "Filter") && len(call.Args) == 2:
					fnArg, host = call.Args[1], "pipeline.Filter"
				default:
					return true
				}
				lit, ok := fnArg.(*ast.FuncLit)
				if !ok {
					return true
				}
				checkSeedDiscipline(pass, lit, host, parPath)
				return true
			})
		}
	},
}

// checkSeedDiscipline inspects one parallel callback body for
// rand.NewSource calls with undisciplined seeds.
func checkSeedDiscipline(pass *Pass, lit *ast.FuncLit, host, parPath string) {
	// The int64 parameters of the callback are sanctioned seed
	// sources: pipeline.SeededMap hands the callback a split seed as
	// its int64 argument.
	seedParams := map[types.Object]bool{}
	if lit.Type.Params != nil {
		for _, field := range lit.Type.Params.List {
			for _, name := range field.Names {
				obj := pass.Pkg.Info.Defs[name]
				if obj == nil {
					continue
				}
				if b, ok := obj.Type().(*types.Basic); ok && b.Kind() == types.Int64 {
					seedParams[obj] = true
				}
			}
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		isSource := pass.IsPkgFunc(call.Fun, "math/rand", "NewSource")
		if !isSource || len(call.Args) != 1 {
			return true
		}
		seed := call.Args[0]
		if exprContainsPkgFunc(pass, seed, parPath, "SplitSeed") || exprUsesObject(pass, seed, seedParams) {
			return true
		}
		pass.Reportf(call.Pos(), "rand.NewSource inside a %s callback must derive its seed from par.SplitSeed (or the stage's split-seed parameter)", host)
		return true
	})
}

// exprContainsPkgFunc reports whether e mentions pkgPath.name
// anywhere.
func exprContainsPkgFunc(pass *Pass, e ast.Expr, pkgPath, name string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if expr, ok := n.(ast.Expr); ok && pass.IsPkgFunc(expr, pkgPath, name) {
			found = true
		}
		return true
	})
	return found
}

// exprUsesObject reports whether e references any of the given
// objects.
func exprUsesObject(pass *Pass, e ast.Expr, objs map[types.Object]bool) bool {
	if len(objs) == 0 {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && objs[pass.Pkg.Info.Uses[id]] {
			found = true
		}
		return true
	})
	return found
}
