package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ChanClose enforces channel-ownership discipline module-wide: only
// the sending side closes a channel, no double-close is reachable,
// and no send happens after a reachable close. Each function body —
// and each non-immediately-invoked literal, which runs as its own
// goroutine or callback — is one ownership scope:
//
//   - close(ch) in a scope that receives from ch but neither makes
//     nor sends on it is a receiver-side close (the sender will panic
//     on its next send);
//   - a second close (or a close after defer close, or a second defer
//     close) of the same channel on one path double-closes;
//   - a send after a close on the same path panics.
//
// The closed-set is path-sensitive with a may-closed (union) join, so
// `if done { close(ch) }; ch <- v` is flagged. Known limitations:
// facts do not cross function boundaries or loop back-edges, and
// channels are identified by expression spelling, so aliases escape.
var ChanClose = &Analyzer{
	Name: "chanclose",
	Doc:  "sender-side closes only; no reachable double-close or send-after-close",
	Run:  runChanClose,
}

type chanState struct {
	closed   map[string]token.Pos // closed on this path
	deferred map[string]token.Pos // close scheduled for function exit
}

func (s *chanState) fork() flowState {
	cp := &chanState{
		closed:   make(map[string]token.Pos, len(s.closed)),
		deferred: make(map[string]token.Pos, len(s.deferred)),
	}
	for k, v := range s.closed {
		cp.closed[k] = v
	}
	for k, v := range s.deferred {
		cp.deferred[k] = v
	}
	return cp
}

// join keeps a channel closed if ANY joining path closed it
// (may-closed).
func (s *chanState) join(other flowState) {
	o := other.(*chanState)
	for k, v := range o.closed {
		if _, ok := s.closed[k]; !ok {
			s.closed[k] = v
		}
	}
	for k, v := range o.deferred {
		if _, ok := s.deferred[k]; !ok {
			s.deferred[k] = v
		}
	}
}

func runChanClose(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			chanCloseScope(p, fd.Body)
			for _, lit := range collectFuncLits(fd.Body) {
				chanCloseScope(p, lit.Body)
			}
		}
	}
}

// chanCloseScope runs both the ownership census and the path
// analysis over one function scope.
func chanCloseScope(p *Pass, body *ast.BlockStmt) {
	info := p.Pkg.Info
	census := chanCensus(info, body)

	for _, cl := range census.closes {
		key := types.ExprString(cl.Args[0])
		if census.recvs[key] && !census.sends[key] && !census.makes[key] {
			p.Reportf(cl.Pos(),
				"close(%s) on the receiving side; only the sender may close (the sender will panic on its next send)",
				key)
		}
	}

	leaf := func(fs flowState, s ast.Stmt) {
		cs := fs.(*chanState)
		switch v := s.(type) {
		case *ast.SelectStmt, *ast.RangeStmt:
			return // headers; comm statements arrive as clause leaves
		case *ast.DeferStmt:
			if ch, ok := closeArg(v.Call); ok {
				key := types.ExprString(ch)
				if pos, dup := cs.deferred[key]; dup {
					p.Reportf(v.Pos(), "duplicate deferred close(%s); also deferred at line %d (double close at return)",
						key, p.Pkg.Fset.Position(pos).Line)
				} else if pos, done := cs.closed[key]; done {
					p.Reportf(v.Pos(), "deferred close(%s) after close at line %d (double close at return)",
						key, p.Pkg.Fset.Position(pos).Line)
				} else {
					cs.deferred[key] = v.Pos()
				}
			}
			return
		default:
			inspectLeaf(s, func(n ast.Node) bool {
				switch v := n.(type) {
				case *ast.CallExpr:
					if ch, ok := closeArg(v); ok {
						key := types.ExprString(ch)
						switch {
						case hasKey(cs.closed, key):
							p.Reportf(v.Pos(), "close(%s) reachable after close at line %d (double close)",
								key, p.Pkg.Fset.Position(cs.closed[key]).Line)
						case hasKey(cs.deferred, key):
							p.Reportf(v.Pos(), "close(%s) with a deferred close pending from line %d (double close at return)",
								key, p.Pkg.Fset.Position(cs.deferred[key]).Line)
						default:
							cs.closed[key] = v.Pos()
						}
					}
				case *ast.SendStmt:
					key := types.ExprString(v.Chan)
					if hasKey(cs.closed, key) {
						p.Reportf(v.Pos(), "send on %s reachable after close at line %d (panics)",
							key, p.Pkg.Fset.Position(cs.closed[key]).Line)
					}
				}
				return true
			})
		}
	}

	st := &chanState{closed: map[string]token.Pos{}, deferred: map[string]token.Pos{}}
	walkFlow(body, st, flowFuncs{stmt: leaf})
}

func hasKey(m map[string]token.Pos, k string) bool {
	_, ok := m[k]
	return ok
}

// closeArg matches the builtin close(ch) call.
func closeArg(call *ast.CallExpr) (ast.Expr, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "close" || len(call.Args) != 1 {
		return nil, false
	}
	return call.Args[0], true
}

type censusInfo struct {
	closes []*ast.CallExpr
	sends  map[string]bool
	recvs  map[string]bool
	makes  map[string]bool
}

// chanCensus records, per scope, which channel expressions are
// closed, sent on, received from, and locally made. A make(chan) not
// directly bound to an identifier (e.g. inside a composite literal)
// conservatively marks every channel in the scope as possibly owned,
// keeping the receiver-side rule quiet where ownership is real but
// syntactically invisible.
func chanCensus(info *types.Info, body *ast.BlockStmt) censusInfo {
	c := censusInfo{sends: map[string]bool{}, recvs: map[string]bool{}, makes: map[string]bool{}}
	anonMake := false
	bound := map[*ast.CallExpr]bool{}
	recordMake := func(lhs, rhs ast.Expr) {
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isMakeChan(info, rhs) {
			c.makes[types.ExprString(lhs)] = true
			bound[call] = true
		}
	}
	var walk func(ast.Node) bool
	walk = func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			return false // separate scope
		case *ast.SendStmt:
			c.sends[types.ExprString(v.Chan)] = true
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				c.recvs[types.ExprString(v.X)] = true
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(v.X); t != nil && isChanType(t) {
				c.recvs[types.ExprString(v.X)] = true
			}
		case *ast.AssignStmt:
			for i, lhs := range v.Lhs {
				if i < len(v.Rhs) {
					recordMake(lhs, v.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i, name := range v.Names {
				if i < len(v.Values) {
					recordMake(name, v.Values[i])
				}
			}
		case *ast.CallExpr:
			if _, ok := closeArg(v); ok {
				c.closes = append(c.closes, v)
			} else if isMakeChan(info, v) && !bound[v] {
				// make(chan) used as a value (composite literal
				// field, call argument): owner invisible here.
				anonMake = true
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	if anonMake {
		// Ownership is real but untracked; silence the receiver-side
		// rule for this scope rather than guess.
		for k := range c.recvs {
			c.makes[k] = true
		}
	}
	return c
}

func isMakeChan(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" || len(call.Args) == 0 {
		return false
	}
	t := info.TypeOf(call)
	return t != nil && isChanType(t)
}
