package analysis

import (
	"go/ast"
	"strings"
)

// RawGo flags `go` statements everywhere except the two packages that
// are the sanctioned concurrency substrate: internal/par (the bounded
// worker pool) and internal/pipeline (the streaming stage graph). All
// other code must express parallelism through par.Map or a pipeline
// stage, which is what makes worker-count invariance checkable in one
// place instead of everywhere.
var RawGo = &Analyzer{
	Name: "rawgo",
	Doc:  "flags go statements outside internal/par and internal/pipeline",
	AppliesTo: func(path string) bool {
		return !strings.HasSuffix(path, "internal/par") && !strings.HasSuffix(path, "internal/pipeline")
	},
	Run: func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					pass.Reportf(g.Pos(), "go statement outside the concurrency substrate; route parallelism through par.Map or a pipeline stage")
				}
				return true
			})
		}
	},
}
