package analysis

import (
	"go/ast"
)

// globalRandFuncs are the top-level math/rand (and math/rand/v2)
// functions that draw from the process-global RNG. Using them makes a
// result depend on everything else that touched the global stream —
// the exact coupling the pipeline's explicit-seed discipline forbids.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "IntN": true, "N": true,
	"Uint32": true, "Uint64": true, "Uint": true, "UintN": true,
	"Uint32N": true, "Uint64N": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true,
	"Read": true, "Seed": true,
}

// Determinism flags wall-clock reads and global-RNG draws. Every
// random choice in the pipeline must flow from an explicit seed
// (DESIGN.md, "Parallel substrate"), and time.Now in library code
// makes output depend on the machine's clock. Timing-only sites
// (benchmarks, progress reporting) are the intended use of
// //lint:allow determinism.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "flags time.Now and global math/rand draws; seeds and clocks must flow in explicitly",
	Run: func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				path, ok := pass.PkgPathOf(sel.X)
				if !ok {
					return true
				}
				switch {
				case path == "time" && sel.Sel.Name == "Now":
					pass.Reportf(sel.Pos(), "time.Now reads the wall clock; results must not depend on it (annotate timing-only code with //lint:allow determinism)")
				case (path == "math/rand" || path == "math/rand/v2") && globalRandFuncs[sel.Sel.Name]:
					pass.Reportf(sel.Pos(), "rand.%s draws from the global RNG; use rand.New(rand.NewSource(seed)) with an explicit seed", sel.Sel.Name)
				}
				return true
			})
		}
	},
}
