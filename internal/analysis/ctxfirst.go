package analysis

import (
	"go/ast"
)

// CtxFirst enforces the context-placement convention on the exported
// API surface: an exported function or method that accepts a
// context.Context must accept it as its first parameter. A context
// buried later in the signature reads as optional state instead of
// the call's cancellation scope, and it breaks the call-site symmetry
// (f(ctx, ...)) the rest of the fault-tolerance layer relies on when
// threading cancellation through.
var CtxFirst = &Analyzer{
	Name: "ctxfirst",
	Doc:  "flags exported functions taking context.Context anywhere but first",
	Run: func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !fd.Name.IsExported() || fd.Type.Params == nil {
					continue
				}
				// Walk the flattened parameter list; grouped names
				// (a, b T) count once per name.
				idx := 0
				for _, field := range fd.Type.Params.List {
					n := len(field.Names)
					if n == 0 {
						n = 1 // unnamed parameter
					}
					if t := pass.TypeOf(field.Type); t != nil && t.String() == "context.Context" && idx != 0 {
						pass.Reportf(field.Pos(), "exported %s takes context.Context as parameter %d; the context must come first", fd.Name.Name, idx+1)
					}
					idx += n
				}
			}
		}
	},
}
