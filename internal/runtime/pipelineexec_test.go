package runtime_test

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/runtime"
	"repro/internal/schema"
	"repro/internal/sqlast"
)

func integrationSchema() *schema.Schema {
	return &schema.Schema{
		Name: "hospital",
		Tables: []*schema.Table{
			{Name: "patients", Readable: "patient", Columns: []*schema.Column{
				{Name: "id", Type: schema.Number, PrimaryKey: true},
				{Name: "name", Type: schema.Text},
				{Name: "age", Type: schema.Number, Domain: schema.DomainAge},
				{Name: "diagnosis", Type: schema.Text},
			}},
			{Name: "visits", Readable: "visit", Columns: []*schema.Column{
				{Name: "id", Type: schema.Number, PrimaryKey: true},
				{Name: "patient_id", Type: schema.Number},
				{Name: "cost", Type: schema.Number, Domain: schema.DomainMoney},
			}},
		},
		ForeignKeys: []schema.ForeignKey{
			{FromTable: "visits", FromColumn: "patient_id", ToTable: "patients", ToColumn: "id"},
		},
	}
}

// TestEveryGeneratedQueryExecutes is the pipeline/engine integration
// property: every SQL query the pipeline can synthesize — after
// resolving @JOIN and substituting constants for its placeholders, the
// same steps the runtime post-processor performs — must execute
// successfully on a database instance of the schema. This validates
// the whole seed-template library against the execution engine.
func TestEveryGeneratedQueryExecutes(t *testing.T) {
	s := integrationSchema()
	db, err := engine.GenerateData(s, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	pairs := core.New(s, core.DefaultParams(), 13).Run()
	rng := rand.New(rand.NewSource(99))

	// Distinct SQL only (augmentation repeats the SQL side).
	seen := map[string]bool{}
	checked := 0
	for _, pr := range pairs {
		if seen[pr.SQL] {
			continue
		}
		seen[pr.SQL] = true
		q := sqlast.MustParse(pr.SQL)

		bindings := bindingsFor(q, db, rng)
		resolved, err := runtime.PostProcess(q, s, bindings)
		if err != nil {
			t.Fatalf("post-processing %q failed: %v", pr.SQL, err)
		}
		if _, err := db.Execute(resolved); err != nil {
			t.Fatalf("generated query does not execute:\n  template %s\n  sql %q\n  resolved %q\n  err %v",
				pr.TemplateID, pr.SQL, resolved, err)
		}
		checked++
	}
	if checked < 100 {
		t.Fatalf("only %d distinct queries checked", checked)
	}
	t.Logf("executed %d distinct generated queries", checked)
}

// bindingsFor fabricates a constant for every placeholder occurrence,
// drawing real values from the database where possible.
func bindingsFor(q *sqlast.Query, db *engine.Database, rng *rand.Rand) []runtime.Binding {
	var out []runtime.Binding
	sqlast.WalkQueries(q, func(sub *sqlast.Query) {
		for _, e := range sqlast.Conjuncts(sub.Where) {
			collectPlaceholderBindings(e, db, rng, &out)
		}
		for _, e := range sqlast.Conjuncts(sub.Having) {
			collectPlaceholderBindings(e, db, rng, &out)
		}
	})
	return out
}

func collectPlaceholderBindings(e sqlast.Expr, db *engine.Database, rng *rand.Rand, out *[]runtime.Binding) {
	addOperand := func(o sqlast.Operand) {
		ph, ok := o.(sqlast.Placeholder)
		if !ok || strings.EqualFold(ph.Name, "JOIN") {
			return
		}
		parts := strings.SplitN(ph.Name, ".", 2)
		val := sqlast.NumValue(float64(rng.Intn(50)))
		if len(parts) == 2 {
			if vals := db.DistinctValues(parts[0], parts[1]); len(vals) > 0 {
				v := vals[rng.Intn(len(vals))]
				if v.IsNum {
					val = sqlast.NumValue(v.Num)
				} else {
					val = sqlast.StrValue(v.Str)
				}
			}
		}
		*out = append(*out, runtime.Binding{Placeholder: ph.Name, Value: val})
	}
	switch v := e.(type) {
	case sqlast.Logic:
		collectPlaceholderBindings(v.Left, db, rng, out)
		collectPlaceholderBindings(v.Right, db, rng, out)
	case sqlast.Not:
		collectPlaceholderBindings(v.Inner, db, rng, out)
	case sqlast.Comparison:
		addOperand(v.Right)
	case sqlast.Between:
		addOperand(v.Lo)
		addOperand(v.Hi)
	case sqlast.HavingCond:
		addOperand(v.Right)
	case sqlast.InSubquery:
		for _, e2 := range sqlast.Conjuncts(v.Query.Where) {
			collectPlaceholderBindings(e2, db, rng, out)
		}
	case sqlast.Exists:
		for _, e2 := range sqlast.Conjuncts(v.Query.Where) {
			collectPlaceholderBindings(e2, db, rng, out)
		}
	}
}
