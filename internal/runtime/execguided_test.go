package runtime

import (
	"strings"
	"testing"

	"repro/internal/models"
)

// flakyModel returns a broken top candidate and a correct second one —
// the situation execution-guided decoding exists for.
type flakyModel struct{}

func (flakyModel) Name() string           { return "flaky" }
func (flakyModel) Train([]models.Example) {}
func (flakyModel) Translate(nl, st []string) []string {
	return strings.Fields("SELECT nonexistent FROM patients")
}
func (flakyModel) TranslateK(nl, st []string, k int) [][]string {
	return [][]string{
		strings.Fields("SELECT nonexistent FROM patients"),                    // post-process passes, execution fails
		strings.Fields("SELECT COUNT ( * FROM"),                               // unparsable
		strings.Fields("SELECT name FROM patients WHERE age = @PATIENTS.AGE"), // good
	}
}

func TestExecutionGuidedRecovers(t *testing.T) {
	db := benchDB(t)
	tr := NewTranslator(db, flakyModel{})

	// Plain mode: the single candidate fails at execution time (the
	// translation itself succeeds because "nonexistent" cannot be
	// attributed to any table).
	if _, _, err := tr.Ask("show patients with age 80"); err == nil {
		t.Fatal("plain mode should fail on the broken top candidate")
	}

	// Execution-guided mode: the third candidate wins.
	tr.ExecutionGuided = 3
	res, q, err := tr.Ask("show patients with age 80")
	if err != nil {
		t.Fatalf("execution-guided mode failed: %v", err)
	}
	if !strings.Contains(q.String(), "age = 80") {
		t.Fatalf("unexpected recovered query: %s", q)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("expected 3 rows, got %d", len(res.Rows))
	}
}

// allBadModel has no viable candidate at all.
type allBadModel struct{}

func (allBadModel) Name() string           { return "allbad" }
func (allBadModel) Train([]models.Example) {}
func (allBadModel) Translate(nl, st []string) []string {
	return strings.Fields("garbage output (")
}
func (allBadModel) TranslateK(nl, st []string, k int) [][]string {
	return [][]string{
		strings.Fields("garbage output ("),
		strings.Fields("more garbage )"),
	}
}

func TestExecutionGuidedSurfacesFirstError(t *testing.T) {
	db := benchDB(t)
	tr := NewTranslator(db, allBadModel{})
	tr.ExecutionGuided = 2
	_, _, err := tr.Ask("show patients with age 80")
	if err == nil {
		t.Fatal("all-bad candidates must yield an error")
	}
	if !strings.Contains(err.Error(), "unparsable") {
		t.Fatalf("expected the first failure to surface, got %v", err)
	}
}

func TestExecutionGuidedIgnoredWithoutKTranslator(t *testing.T) {
	db := benchDB(t)
	tr := NewTranslator(db, oracleModel{})
	tr.ExecutionGuided = 5 // oracleModel has no TranslateK; plain path used
	_, q, err := tr.Ask("show the names of all patients with age 80")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q.String(), "80") {
		t.Fatalf("query = %s", q)
	}
}
