package runtime

import (
	"context"
	"strings"
	"testing"

	"repro/internal/models"
)

// nilModel produces no output at all — the shape of an untrained or
// broken model.
type nilModel struct{}

func (nilModel) Name() string                       { return "nil" }
func (nilModel) Train([]models.Example)             {}
func (nilModel) Translate(nl, st []string) []string { return nil }

// gibberishModel emits tokens no candidate of which parses as SQL.
type gibberishModel struct{}

func (gibberishModel) Name() string           { return "gibberish" }
func (gibberishModel) Train([]models.Example) {}
func (gibberishModel) Translate(nl, st []string) []string {
	return strings.Fields("WHERE WHERE ( SELECT")
}

// panicModel panics on every translate call.
type panicModel struct{}

func (panicModel) Name() string           { return "panic" }
func (panicModel) Train([]models.Example) {}
func (panicModel) Translate(nl, st []string) []string {
	panic("panicModel always panics")
}

func TestAskEmptyQuestionErrors(t *testing.T) {
	tr := NewTranslator(benchDB(t), oracleModel{})
	for _, q := range []string{"", "   ", "\t\n"} {
		_, _, err := tr.Ask(q)
		if err == nil {
			t.Fatalf("Ask(%q) must error", q)
		}
		if !strings.Contains(err.Error(), "empty question") {
			t.Fatalf("Ask(%q) error = %v, want empty-question error", q, err)
		}
	}
}

func TestAskNoOutputErrors(t *testing.T) {
	tr := NewTranslator(benchDB(t), nilModel{})
	_, _, err := tr.Ask("show patients with age 80")
	if err == nil {
		t.Fatal("nil model output must error, not panic")
	}
	if !strings.Contains(err.Error(), "produced no output") {
		t.Fatalf("error = %v, want produced-no-output", err)
	}
}

func TestAskUnparsableCandidatesError(t *testing.T) {
	tr := NewTranslator(benchDB(t), gibberishModel{})
	_, _, err := tr.Ask("show patients with age 80")
	if err == nil {
		t.Fatal("unparsable candidates must error, not panic")
	}
}

func TestAskPanickingModelIsContained(t *testing.T) {
	tr := NewTranslator(benchDB(t), panicModel{})
	_, _, err := tr.Ask("show patients with age 80")
	if err == nil {
		t.Fatal("model panic must surface as an error")
	}
	if !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("error = %v, want contained panic", err)
	}
}

func TestAskMalformedQuestionNeverPanics(t *testing.T) {
	tr := NewTranslator(benchDB(t), oracleModel{})
	for _, q := range []string{
		"@@@ ??? !!!",
		"'; DROP TABLE patients; --",
		strings.Repeat("age ", 200),
		"\x00\x01\x02",
	} {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Ask(%q) panicked: %v", q, r)
				}
			}()
			// The answer may be wrong or an error; it must not panic.
			_, _, _ = tr.Ask(q)
		}()
	}
}

func TestFallbackChainOrderAndTrace(t *testing.T) {
	tr := NewTranslator(benchDB(t), gibberishModel{})
	tr.Fallbacks = []models.Translator{nilModel{}, oracleModel{}}
	q, trace, err := tr.TranslateTrace("show the names of all patients with age 80")
	if err != nil {
		t.Fatalf("fallback chain should recover: %v", err)
	}
	if trace.Tier != "oracle" {
		t.Fatalf("trace.Tier = %q, want the succeeding tier", trace.Tier)
	}
	if len(trace.TierErrors) != 2 {
		t.Fatalf("trace.TierErrors = %v, want one entry per failed tier", trace.TierErrors)
	}
	if !strings.Contains(trace.TierErrors[0], "gibberish") ||
		!strings.Contains(trace.TierErrors[1], "nil") {
		t.Fatalf("tier errors out of order: %v", trace.TierErrors)
	}
	if !strings.Contains(q.String(), "age = 80") {
		t.Fatalf("unexpected query: %s", q)
	}
}

func TestTranslateContextCancelled(t *testing.T) {
	tr := NewTranslator(benchDB(t), oracleModel{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := tr.TranslateContext(ctx, "show patients with age 80")
	if err == nil {
		t.Fatal("cancelled context must error")
	}
}
