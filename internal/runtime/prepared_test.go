package runtime

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/models"
)

// TestPreprocessCanonicalizesConstants: the cache-key property — two
// questions differing only in constants preprocess to the same
// lemmatized token sequence, with the per-request constant carried in
// the bindings.
func TestPreprocessCanonicalizesConstants(t *testing.T) {
	tr := NewTranslator(benchDB(t), oracleModel{})
	anon80, nl80, err := tr.Preprocess("show the names of all patients with age 80")
	if err != nil {
		t.Fatal(err)
	}
	anon45, nl74, err := tr.Preprocess("show the names of all patients with age 45")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(nl80, nl74) {
		t.Fatalf("constant variations must share a key:\n  %v\n  %v", nl80, nl74)
	}
	if len(anon80.Bindings) != 1 || len(anon45.Bindings) != 1 {
		t.Fatalf("bindings = %v / %v, want one each", anon80.Bindings, anon45.Bindings)
	}
	if anon80.Bindings[0].Value.String() == anon45.Bindings[0].Value.String() {
		t.Fatal("bindings must carry the differing constants")
	}
	if _, _, err := tr.Preprocess(""); err == nil {
		t.Fatal("Preprocess must reject malformed questions")
	}
	if len(tr.SchemaTokens()) == 0 {
		t.Fatal("SchemaTokens must expose the model's schema serialization")
	}
}

// TestTranslatePreparedMatchesTranslateTrace: the split pipeline is
// the whole pipeline — Preprocess + TranslatePrepared produces the
// same query, trace fields, and DecodeResult tier as the one-shot
// entry point.
func TestTranslatePreparedMatchesTranslateTrace(t *testing.T) {
	question := "show the names of all patients with age 80"
	tr := NewTranslator(benchDB(t), oracleModel{})

	wantQ, wantTrace, err := tr.TranslateTrace(question)
	if err != nil {
		t.Fatal(err)
	}
	anon, nl, err := tr.Preprocess(question)
	if err != nil {
		t.Fatal(err)
	}
	trace := &Trace{Question: question}
	gotQ, dec, err := tr.TranslatePrepared(context.Background(), nl, anon.Bindings, nil, trace)
	if err != nil {
		t.Fatal(err)
	}
	if gotQ.String() != wantQ.String() {
		t.Fatalf("split pipeline query %q != one-shot %q", gotQ, wantQ)
	}
	if dec == nil || dec.Tier != wantTrace.Tier || dec.Tier != "oracle" {
		t.Fatalf("DecodeResult = %+v, want tier oracle", dec)
	}
	if len(dec.Candidates) == 0 || !reflect.DeepEqual(dec.Candidates[0], trace.ModelOut) {
		t.Fatalf("DecodeResult.Candidates = %v, trace.ModelOut = %v", dec.Candidates, trace.ModelOut)
	}
	if trace.Final == nil || trace.Tier != "oracle" {
		t.Fatalf("trace not populated: %+v", trace)
	}
}

// TestTranslatePreparedReplay: a DecodeResult decoded for one
// request's constants finalizes under another request's bindings —
// the cache's core replay property — without consulting the model or
// the tier hook.
func TestTranslatePreparedReplay(t *testing.T) {
	tr := NewTranslator(benchDB(t), oracleModel{})
	anon80, nl, err := tr.Preprocess("show the names of all patients with age 80")
	if err != nil {
		t.Fatal(err)
	}
	_, dec, err := tr.TranslatePrepared(context.Background(), nl, anon80.Bindings, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Replay for the age-45 request: same decode, different constant.
	anon45, _, err := tr.Preprocess("show the names of all patients with age 45")
	if err != nil {
		t.Fatal(err)
	}
	tr.Model = panicModel{} // the model must not be consulted on replay
	hook := &vetoHook{}
	tr.Hook = hook
	trace := &Trace{}
	q, dec2, err := tr.TranslatePrepared(context.Background(), nl, anon45.Bindings, dec, trace)
	if err != nil {
		t.Fatalf("replay failed: %v", err)
	}
	if !strings.Contains(q.String(), "45") {
		t.Fatalf("replayed query must carry the new constant: %s", q)
	}
	if dec2 != dec {
		t.Fatalf("replay must return the shared DecodeResult")
	}
	if trace.Tier != "oracle" {
		t.Fatalf("trace.Tier = %q, want the cached tier", trace.Tier)
	}
	if hook.allowed != 0 || hook.recorded != 0 {
		t.Fatalf("hook consulted on replay: %+v", hook)
	}
}

// vetoHook counts consultations (replay must make none).
type vetoHook struct{ allowed, recorded int }

func (h *vetoHook) Allow(string) error   { h.allowed++; return nil }
func (h *vetoHook) Record(string, error) { h.recorded++ }

// TestTranslatePreparedStaleCandidates: candidates that no longer
// finalize fail fast with ErrStaleCandidates instead of walking the
// fallback chain, so the caller can re-decode at full strength.
func TestTranslatePreparedStaleCandidates(t *testing.T) {
	tr := NewTranslator(benchDB(t), oracleModel{})
	tr.Fallbacks = []models.Translator{oracleModel{}}
	stale := &DecodeResult{Tier: "oracle", Candidates: [][]string{strings.Fields("WHERE WHERE ( SELECT")}}
	anon, nl, err := tr.Preprocess("show the names of all patients with age 80")
	if err != nil {
		t.Fatal(err)
	}
	trace := &Trace{}
	_, _, err = tr.TranslatePrepared(context.Background(), nl, anon.Bindings, stale, trace)
	if !errors.Is(err, ErrStaleCandidates) {
		t.Fatalf("err = %v, want ErrStaleCandidates", err)
	}
	if trace.Tier != "" || len(trace.TierErrors) != 0 {
		t.Fatalf("stale replay must not walk the chain: %+v", trace)
	}
	// Fresh decode recovers.
	q, _, err := tr.TranslatePrepared(context.Background(), nl, anon.Bindings, nil, nil)
	if err != nil || q == nil {
		t.Fatalf("fresh decode after stale = (%v, %v)", q, err)
	}
}

// TestFinalizeCandidatesContract: exported finalization recovers
// panics, rejects empty input, and requires execution only in
// multi-candidate (execution-guided) mode.
func TestFinalizeCandidatesContract(t *testing.T) {
	tr := NewTranslator(benchDB(t), oracleModel{})
	anon := mustAnon(t, tr.PH, "show the names of all patients with age 80")

	if _, err := tr.FinalizeCandidates(nil, anon.Bindings, nil); err == nil {
		t.Fatal("empty candidates must error")
	}
	good := strings.Fields("SELECT name FROM patients WHERE age = @PATIENTS.AGE")
	q, err := tr.FinalizeCandidates([][]string{good}, anon.Bindings, nil)
	if err != nil || !strings.Contains(q.String(), "80") {
		t.Fatalf("FinalizeCandidates = (%v, %v)", q, err)
	}
	// Ranked mode: the unparsable first candidate is skipped and the
	// second must execute.
	bad := strings.Fields("WHERE WHERE ( SELECT")
	q, err = tr.FinalizeCandidates([][]string{bad, good}, anon.Bindings, nil)
	if err != nil || q == nil {
		t.Fatalf("ranked finalize = (%v, %v)", q, err)
	}
	// A nil-query panic path inside PostProcess must be contained.
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("FinalizeCandidates leaked a panic: %v", r)
		}
	}()
	_, _ = tr.FinalizeCandidates([][]string{nil, good}, anon.Bindings, nil)
}
