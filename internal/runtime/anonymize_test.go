package runtime

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/models"
)

// TestAnonymizeAdversarialInputs drives the Parameter Handler with the
// input shapes a public endpoint sees: multi-byte unicode, embedded
// quotes, control bytes, invalid UTF-8, and pathological lengths.
// Malformed input must come back as a typed *ValidationError; valid
// input must anonymize without panicking, whatever it looks like.
func TestAnonymizeAdversarialInputs(t *testing.T) {
	ph := NewParameterHandler(benchDB(t))
	cases := []struct {
		name     string
		question string
		invalid  bool   // want a *ValidationError
		reason   string // substring of the validation reason
	}{
		{name: "empty", question: "", invalid: true, reason: "empty"},
		{name: "whitespace only", question: " \t\n ", invalid: true, reason: "empty"},
		{name: "invalid utf8", question: "show patients \xff\xfe aged 80", invalid: true, reason: "UTF-8"},
		{name: "nul byte", question: "show\x00patients", invalid: true, reason: "control"},
		{name: "escape byte", question: "patients \x1b[31m aged 80", invalid: true, reason: "control"},
		{name: "over token cap", question: strings.Repeat("age ", DefaultMaxQuestionTokens+1), invalid: true, reason: "limit"},
		{name: "multi-byte unicode", question: "пациенты mit Grippe 患者 show patients"},
		{name: "combining marks", question: "show pat́ients with äge 80"},
		{name: "emoji", question: "show patients 🏥 with age 80"},
		{name: "embedded single quotes", question: "show patients named 'alice johnson'"},
		{name: "embedded double quotes", question: `show patients with diagnosis "influenza"`},
		{name: "sql injection shape", question: "'; DROP TABLE patients; --"},
		{name: "placeholder soup", question: "@@@ @PATIENTS.AGE @ @. @X.Y.Z"},
		{name: "at cap", question: strings.TrimSpace(strings.Repeat("age ", DefaultMaxQuestionTokens))},
		{name: "long words", question: strings.Repeat("a", 10000) + " " + strings.Repeat("ü", 10000)},
		{name: "newlines and tabs", question: "show\tthe names\nof all patients"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			anon, err := ph.Anonymize(tc.question)
			if tc.invalid {
				var verr *ValidationError
				if !errors.As(err, &verr) {
					t.Fatalf("err = %v, want *ValidationError", err)
				}
				if !strings.Contains(verr.Reason, tc.reason) {
					t.Fatalf("reason = %q, want substring %q", verr.Reason, tc.reason)
				}
				return
			}
			if err != nil {
				t.Fatalf("valid input rejected: %v", err)
			}
			if len(anon.Tokens) == 0 {
				t.Fatal("valid input produced no tokens")
			}
		})
	}
}

// TestAnonymizeQuotedConstantStillBinds checks that surrounding quotes
// do not defeat constant matching — the tokenizer strips them and the
// value index still sees the span.
func TestAnonymizeQuotedConstantStillBinds(t *testing.T) {
	ph := NewParameterHandler(benchDB(t))
	anon := mustAnon(t, ph, "how many patients have diagnosis 'influenza'")
	if len(anon.Bindings) != 1 || anon.Bindings[0].Value.Str != "influenza" {
		t.Fatalf("quoted constant not bound: %+v", anon.Bindings)
	}
}

// TestAnonymizeMaxTokensConfigurable checks the per-handler override.
func TestAnonymizeMaxTokensConfigurable(t *testing.T) {
	ph := NewParameterHandler(benchDB(t))
	ph.MaxTokens = 4
	if _, err := ph.Anonymize("show the names of all patients"); err == nil {
		t.Fatal("question over the configured cap must be rejected")
	}
	if _, err := ph.Anonymize("count all patients"); err != nil {
		t.Fatalf("question under the cap rejected: %v", err)
	}
}

// TestTranslateValidationErrorIsTyped checks that malformed questions
// surface the typed error through the whole Translate path, so the
// serving layer can map them to 400s and never retry them.
func TestTranslateValidationErrorIsTyped(t *testing.T) {
	tr := NewTranslator(benchDB(t), oracleModel{})
	for _, q := range []string{"", "   ", "bad \xff utf8", "nul\x00byte"} {
		_, _, err := tr.TranslateTrace(q)
		var verr *ValidationError
		if !errors.As(err, &verr) {
			t.Fatalf("TranslateTrace(%q) err = %v, want *ValidationError", q, err)
		}
	}
}

// recordingHook is a TierHook that vetoes configured tiers and records
// every Allow/Record call.
type recordingHook struct {
	veto    map[string]bool
	allows  []string
	records []string
}

func (h *recordingHook) Allow(tier string) error {
	h.allows = append(h.allows, tier)
	if h.veto[tier] {
		return fmt.Errorf("circuit open")
	}
	return nil
}

func (h *recordingHook) Record(tier string, err error) {
	h.records = append(h.records, fmt.Sprintf("%s:%v", tier, err == nil))
}

// TestTierHookGatesAndObserves: a vetoed primary is skipped without
// running (its deadline is never paid), the fallback answers, and the
// hook sees exactly the tiers that ran.
func TestTierHookGatesAndObserves(t *testing.T) {
	db := benchDB(t)
	tr := NewTranslator(db, panicModel{})
	tr.Fallbacks = []models.Translator{oracleModel{}}
	hook := &recordingHook{veto: map[string]bool{"panic": true}}
	tr.Hook = hook

	q, trace, err := tr.TranslateTrace("show the names of all patients with age 80")
	if err != nil {
		t.Fatalf("vetoed primary must fall through: %v", err)
	}
	if trace.Tier != "oracle" {
		t.Fatalf("Trace.Tier = %q, want oracle", trace.Tier)
	}
	if len(trace.TierErrors) != 1 || !strings.Contains(trace.TierErrors[0], "skipped: circuit open") {
		t.Fatalf("TierErrors = %v, want skip record", trace.TierErrors)
	}
	if got := strings.Join(hook.allows, ","); got != "panic,oracle" {
		t.Fatalf("Allow calls = %q", got)
	}
	// Only the tier that ran is recorded — the vetoed tier never was.
	if got := strings.Join(hook.records, ","); got != "oracle:true" {
		t.Fatalf("Record calls = %q", got)
	}
	if q == nil {
		t.Fatal("no query from fallback")
	}
}

// TestTierHookAllVetoedErrors: when the hook vetoes every tier, the
// question fails with the first skip error instead of succeeding
// silently.
func TestTierHookAllVetoedErrors(t *testing.T) {
	tr := NewTranslator(benchDB(t), oracleModel{})
	tr.Hook = &recordingHook{veto: map[string]bool{"oracle": true}}
	_, trace, err := tr.TranslateTrace("show the names of all patients")
	if err == nil || !strings.Contains(err.Error(), "skipped") {
		t.Fatalf("err = %v, want skip error", err)
	}
	if len(trace.TierErrors) != 1 {
		t.Fatalf("TierErrors = %v", trace.TierErrors)
	}
}

// TestTierHookRecordsFailures: a failing tier that ran is recorded as
// a failure, feeding the breaker's failure-rate window.
func TestTierHookRecordsFailures(t *testing.T) {
	tr := NewTranslator(benchDB(t), nilModel{})
	tr.Fallbacks = []models.Translator{oracleModel{}}
	hook := &recordingHook{}
	tr.Hook = hook
	if _, _, err := tr.TranslateTrace("show the names of all patients with age 80"); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(hook.records, ","); got != "nil:false,oracle:true" {
		t.Fatalf("Record calls = %q", got)
	}
}
