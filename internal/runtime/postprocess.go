package runtime

import (
	"fmt"
	"strings"

	"repro/internal/schema"
	"repro/internal/sqlast"
)

// PostProcess applies the paper's post-processing phase (§4.2, §5.1)
// to a model-produced query:
//
//  1. placeholders are replaced by the constants recorded during
//     anonymization (in order of appearance; LIKE operands gain %
//     wildcards);
//  2. the @JOIN placeholder is resolved: the tables referenced by the
//     query's qualified columns are connected along the shortest join
//     path and the join predicates are added to WHERE;
//  3. FROM repair: tables required by referenced columns but missing
//     from FROM are added (again via shortest join paths), and a FROM
//     table that matches none of the used columns is replaced.
func PostProcess(q *sqlast.Query, s *schema.Schema, bindings []Binding) (*sqlast.Query, error) {
	out := q.Clone()
	r := &restorer{bindings: bindings}
	if err := r.restoreQuery(out); err != nil {
		return nil, err
	}
	if err := repairFrom(out, s); err != nil {
		return nil, err
	}
	return out, nil
}

// restorer replaces placeholders with recorded constants. Bindings for
// a placeholder name are consumed in order; if a name was never
// recorded (the model hallucinated a different column), the restorer
// falls back to any unconsumed binding, preferring one whose column
// name part matches.
type restorer struct {
	bindings []Binding
	used     []bool
}

func (r *restorer) take(name string) (sqlast.Value, bool) {
	if r.used == nil {
		r.used = make([]bool, len(r.bindings))
	}
	name = strings.ToUpper(name)
	// Exact placeholder name.
	for i, b := range r.bindings {
		if !r.used[i] && strings.ToUpper(b.Placeholder) == name {
			r.used[i] = true
			return b.Value, true
		}
	}
	// Same column part (e.g. model wrote @DOCTORS.NAME for
	// @PATIENTS.NAME).
	col := name
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		col = name[i+1:]
	}
	for i, b := range r.bindings {
		if r.used[i] {
			continue
		}
		bcol := strings.ToUpper(b.Placeholder)
		if j := strings.LastIndexByte(bcol, '.'); j >= 0 {
			bcol = bcol[j+1:]
		}
		if bcol == col {
			r.used[i] = true
			return r.bindings[i].Value, true
		}
	}
	// Any unconsumed binding.
	for i := range r.bindings {
		if !r.used[i] {
			r.used[i] = true
			return r.bindings[i].Value, true
		}
	}
	return sqlast.Value{}, false
}

func (r *restorer) restoreQuery(q *sqlast.Query) error {
	var err error
	q.Where, err = r.restoreExpr(q.Where)
	if err != nil {
		return err
	}
	q.Having, err = r.restoreExpr(q.Having)
	return err
}

func (r *restorer) restoreExpr(e sqlast.Expr) (sqlast.Expr, error) {
	switch v := e.(type) {
	case nil:
		return nil, nil
	case sqlast.Logic:
		l, err := r.restoreExpr(v.Left)
		if err != nil {
			return nil, err
		}
		rr, err := r.restoreExpr(v.Right)
		if err != nil {
			return nil, err
		}
		return sqlast.Logic{Op: v.Op, Left: l, Right: rr}, nil
	case sqlast.Not:
		in, err := r.restoreExpr(v.Inner)
		if err != nil {
			return nil, err
		}
		return sqlast.Not{Inner: in}, nil
	case sqlast.Comparison:
		op, err := r.restoreOperand(v.Right, v.Op == sqlast.OpLike)
		if err != nil {
			return nil, err
		}
		return sqlast.Comparison{Left: v.Left, Op: v.Op, Right: op}, nil
	case sqlast.Between:
		lo, err := r.restoreOperand(v.Lo, false)
		if err != nil {
			return nil, err
		}
		hi, err := r.restoreOperand(v.Hi, false)
		if err != nil {
			return nil, err
		}
		return sqlast.Between{Col: v.Col, Lo: lo, Hi: hi}, nil
	case sqlast.InSubquery:
		if err := r.restoreQuery(v.Query); err != nil {
			return nil, err
		}
		return v, nil
	case sqlast.Exists:
		if err := r.restoreQuery(v.Query); err != nil {
			return nil, err
		}
		return v, nil
	case sqlast.HavingCond:
		op, err := r.restoreOperand(v.Right, false)
		if err != nil {
			return nil, err
		}
		return sqlast.HavingCond{Item: v.Item, Op: v.Op, Right: op}, nil
	default:
		return e, nil
	}
}

func (r *restorer) restoreOperand(o sqlast.Operand, like bool) (sqlast.Operand, error) {
	switch v := o.(type) {
	case sqlast.Placeholder:
		if strings.EqualFold(v.Name, "JOIN") {
			return o, nil
		}
		val, ok := r.take(v.Name)
		if !ok {
			return nil, fmt.Errorf("runtime: no constant recorded for placeholder @%s", v.Name)
		}
		if like && !val.IsNum {
			return sqlast.StrValue("%" + val.Str + "%"), nil
		}
		return val, nil
	case sqlast.ScalarSubquery:
		if err := r.restoreQuery(v.Query); err != nil {
			return nil, err
		}
		return v, nil
	default:
		return o, nil
	}
}

// repairFrom resolves @JOIN and fixes table/column mismatches on the
// outer query and every subquery.
func repairFrom(q *sqlast.Query, s *schema.Schema) error {
	var firstErr error
	sqlast.WalkQueries(q, func(sub *sqlast.Query) {
		if err := repairOne(sub, s); err != nil && firstErr == nil {
			firstErr = err
		}
	})
	return firstErr
}

func repairOne(q *sqlast.Query, s *schema.Schema) error {
	needed := neededTables(q, s)
	if q.From.JoinPlaceholder {
		if len(needed) == 0 {
			return fmt.Errorf("runtime: @JOIN with no resolvable column references in %q", q)
		}
		return connectTables(q, s, needed)
	}
	// Drop FROM tables that are unknown to the schema (model noise).
	var tables []string
	for _, t := range q.From.Tables {
		if s.Table(t) != nil {
			tables = append(tables, t)
		}
	}
	q.From.Tables = tables
	// If no valid FROM table remains, adopt the needed set.
	if len(q.From.Tables) == 0 {
		if len(needed) == 0 {
			return fmt.Errorf("runtime: cannot infer FROM tables for %q", q)
		}
		return connectTables(q, s, needed)
	}
	// Add tables required by columns but missing from FROM.
	missing := false
	for _, n := range needed {
		if !containsFold(q.From.Tables, n) {
			missing = true
			break
		}
	}
	if !missing {
		return nil
	}
	all := append(append([]string{}, q.From.Tables...), needed...)
	return connectTables(q, s, dedupFold(all))
}

// neededTables collects the tables implied by the query's column
// references: qualified names directly, unqualified ones through
// unique containment (columns appearing in several tables don't force
// a table).
func neededTables(q *sqlast.Query, s *schema.Schema) []string {
	var out []string
	add := func(t string) {
		if t != "" && s.Table(t) != nil && !containsFold(out, t) {
			out = append(out, s.Table(t).Name)
		}
	}
	for _, c := range collectOuterColumns(q) {
		if c.Table != "" {
			add(c.Table)
			continue
		}
		owners := s.TablesWithColumn(c.Column)
		if len(owners) == 1 {
			add(owners[0])
		}
	}
	return out
}

// collectOuterColumns gathers columns of the outer query only
// (subqueries repair their own FROM).
func collectOuterColumns(q *sqlast.Query) []sqlast.ColumnRef {
	shallow := q.Clone()
	shallow.Where = stripSubqueries(shallow.Where)
	shallow.Having = stripSubqueries(shallow.Having)
	return shallow.Columns()
}

func stripSubqueries(e sqlast.Expr) sqlast.Expr {
	switch v := e.(type) {
	case sqlast.Logic:
		return sqlast.Logic{Op: v.Op, Left: stripSubqueries(v.Left), Right: stripSubqueries(v.Right)}
	case sqlast.Not:
		return sqlast.Not{Inner: stripSubqueries(v.Inner)}
	case sqlast.InSubquery:
		// Keep the outer column, drop the subquery.
		return sqlast.Comparison{Left: v.Col, Op: sqlast.OpEq, Right: sqlast.NumValue(0)}
	case sqlast.Exists:
		return sqlast.Comparison{Left: sqlast.ColumnRef{}, Op: sqlast.OpEq, Right: sqlast.NumValue(0)}
	case sqlast.Comparison:
		if _, ok := v.Right.(sqlast.ScalarSubquery); ok {
			return sqlast.Comparison{Left: v.Left, Op: v.Op, Right: sqlast.NumValue(0)}
		}
		return v
	default:
		return e
	}
}

// connectTables sets FROM to the needed tables plus any intermediate
// tables on the shortest join paths, and appends the join predicates
// to WHERE.
func connectTables(q *sqlast.Query, s *schema.Schema, needed []string) error {
	edges := s.JoinPathAll(needed)
	if edges == nil {
		return fmt.Errorf("runtime: tables %v are not connected in schema %s", needed, s.Name)
	}
	tables := append([]string{}, needed...)
	var conds []sqlast.Expr
	for _, e := range edges {
		if !containsFold(tables, e.LeftTable) {
			tables = append(tables, e.LeftTable)
		}
		if !containsFold(tables, e.RightTable) {
			tables = append(tables, e.RightTable)
		}
		conds = append(conds, sqlast.Comparison{
			Left:  sqlast.ColumnRef{Table: e.LeftTable, Column: e.LeftColumn},
			Op:    sqlast.OpEq,
			Right: sqlast.ColOperand{Col: sqlast.ColumnRef{Table: e.RightTable, Column: e.RightColumn}},
		})
	}
	q.From = sqlast.From{Tables: tables}
	if len(conds) > 0 {
		q.Where = sqlast.AndAll(append(conds, exprOrNil(q.Where)...))
	}
	// Qualify ambiguous unqualified columns now that FROM may span
	// multiple tables.
	if len(tables) > 1 {
		qualifyColumns(q, s, tables)
	}
	return nil
}

func exprOrNil(e sqlast.Expr) []sqlast.Expr {
	if e == nil {
		return nil
	}
	return []sqlast.Expr{e}
}

// qualifyColumns rewrites unqualified column references to their
// unique owning table among the FROM tables, avoiding ambiguity errors
// in the engine.
func qualifyColumns(q *sqlast.Query, s *schema.Schema, tables []string) {
	// The first FROM owner wins on ambiguity: scan in FROM order and
	// stop at the first match (deterministic, usually the head table).
	owner := func(c sqlast.ColumnRef) sqlast.ColumnRef {
		if c.Table != "" || c.Column == "" || c.Column == "*" {
			return c
		}
		for _, t := range tables {
			if s.Column(t, c.Column) != nil {
				return sqlast.ColumnRef{Table: s.Table(t).Name, Column: c.Column}
			}
		}
		return c
	}
	for i := range q.Select {
		if !q.Select[i].Star {
			q.Select[i].Col = owner(q.Select[i].Col)
		}
	}
	q.Where = mapExprCols(q.Where, owner)
	for i := range q.GroupBy {
		q.GroupBy[i] = owner(q.GroupBy[i])
	}
	q.Having = mapExprCols(q.Having, owner)
	for i := range q.OrderBy {
		if !q.OrderBy[i].Item.Star {
			q.OrderBy[i].Item.Col = owner(q.OrderBy[i].Item.Col)
		}
	}
}

func mapExprCols(e sqlast.Expr, f func(sqlast.ColumnRef) sqlast.ColumnRef) sqlast.Expr {
	switch v := e.(type) {
	case nil:
		return nil
	case sqlast.Logic:
		return sqlast.Logic{Op: v.Op, Left: mapExprCols(v.Left, f), Right: mapExprCols(v.Right, f)}
	case sqlast.Not:
		return sqlast.Not{Inner: mapExprCols(v.Inner, f)}
	case sqlast.Comparison:
		right := v.Right
		if c, ok := right.(sqlast.ColOperand); ok {
			right = sqlast.ColOperand{Col: f(c.Col)}
		}
		return sqlast.Comparison{Left: f(v.Left), Op: v.Op, Right: right}
	case sqlast.Between:
		return sqlast.Between{Col: f(v.Col), Lo: v.Lo, Hi: v.Hi}
	case sqlast.InSubquery:
		return sqlast.InSubquery{Col: f(v.Col), Query: v.Query, Negated: v.Negated}
	case sqlast.HavingCond:
		item := v.Item
		if !item.Star {
			item.Col = f(item.Col)
		}
		return sqlast.HavingCond{Item: item, Op: v.Op, Right: v.Right}
	default:
		return e
	}
}

func containsFold(list []string, x string) bool {
	for _, v := range list {
		if strings.EqualFold(v, x) {
			return true
		}
	}
	return false
}

func dedupFold(list []string) []string {
	var out []string
	for _, v := range list {
		if !containsFold(out, v) {
			out = append(out, v)
		}
	}
	return out
}
