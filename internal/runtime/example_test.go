package runtime_test

import (
	"fmt"

	"repro/internal/runtime"
)

func ExampleJaccard() {
	fmt.Printf("%.2f\n", runtime.Jaccard("new york city", "new york city"))
	fmt.Println(runtime.Jaccard("nyc", "boston") < runtime.Jaccard("new york", "new york city"))
	// Output:
	// 1.00
	// true
}
