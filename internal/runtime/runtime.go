// Package runtime implements DBPal's runtime phase (paper §4): the
// Parameter Handler that anonymizes constants in the user's NL query
// using a per-column value index with Jaccard string similarity, the
// lemmatization pre-processing shared with the training pipeline, and
// the Post-processor that restores constants, repairs FROM clauses,
// and resolves the @JOIN placeholder along the shortest join path.
package runtime

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
	"unicode"
	"unicode/utf8"

	"repro/internal/critic"
	"repro/internal/engine"
	"repro/internal/lemma"
	"repro/internal/models"
	"repro/internal/par"
	"repro/internal/schema"
	"repro/internal/sqlast"
	"repro/internal/tokens"
)

// ValidationError is the typed rejection for malformed questions:
// empty input, invalid UTF-8, embedded control bytes, or a question
// past the token cap. It is the one failure class the serving layer
// must never retry — resubmitting the same malformed input cannot
// succeed — so callers distinguish it with errors.As.
type ValidationError struct {
	Reason string
}

// Error implements error.
func (e *ValidationError) Error() string { return "runtime: invalid question: " + e.Reason }

// DefaultMaxQuestionTokens caps question length when
// ParameterHandler.MaxTokens is zero. Anonymization is quadratic-ish
// in span scanning, so an unbounded question is a denial-of-service
// vector; 2048 tokens is far beyond any real NL question.
const DefaultMaxQuestionTokens = 2048

// Binding records one anonymized constant: the placeholder name it was
// mapped to and the database-side value substituted at post-processing.
type Binding struct {
	Placeholder string // e.g. PATIENTS.AGE (no leading '@')
	Value       sqlast.Value
}

// Anonymized is the output of the Parameter Handler.
type Anonymized struct {
	Tokens   []string  // NL tokens with constants replaced
	Bindings []Binding // in order of appearance
}

// ParameterHandler replaces constants in NL queries with placeholders
// using an index from values to columns built over the database
// contents.
type ParameterHandler struct {
	Schema *schema.Schema
	// textIndex maps a lower-cased distinct text value to the columns
	// holding it.
	textValues []indexedValue
	// gramIndex is the inverted index from a packed character bigram to
	// the textValues entries containing it; bestTextMatch scores only
	// candidates sharing at least one bigram with the phrase.
	gramIndex map[uint64][]int32
	// numColumns maps a numeric value to columns holding it.
	numValues map[float64][]sqlast.ColumnRef
	// schemaWords are surface forms of schema elements; spans made of
	// these are never treated as constants.
	schemaWords map[string]bool
	// MinSimilarity is the Jaccard threshold below which a string span
	// is not considered a database constant.
	MinSimilarity float64
	// MaxTokens rejects questions longer than this many tokens with a
	// ValidationError (0 = DefaultMaxQuestionTokens).
	MaxTokens int
}

type indexedValue struct {
	value  string
	ngrams int // distinct character bigrams, for Jaccard scoring
	cols   []sqlast.ColumnRef
}

// NewParameterHandler builds the value index from the database.
func NewParameterHandler(db *engine.Database) *ParameterHandler {
	ph := &ParameterHandler{
		Schema:        db.Schema,
		numValues:     map[float64][]sqlast.ColumnRef{},
		schemaWords:   map[string]bool{},
		MinSimilarity: 0.55,
	}
	textSeen := map[string]int{}
	for _, t := range db.Schema.Tables {
		for _, c := range t.Columns {
			// Key columns are excluded from the value index: users do
			// not reference surrogate ids, and indexing them would make
			// every small integer in a question look like a constant.
			if c.PrimaryKey || strings.EqualFold(c.Name, "id") || strings.HasSuffix(strings.ToLower(c.Name), "_id") {
				continue
			}
			ref := sqlast.ColumnRef{Table: t.Name, Column: c.Name}
			for _, v := range db.DistinctValues(t.Name, c.Name) {
				if v.IsNum {
					ph.numValues[v.Num] = append(ph.numValues[v.Num], ref)
					continue
				}
				key := strings.ToLower(v.Str)
				if i, ok := textSeen[key]; ok {
					ph.textValues[i].cols = append(ph.textValues[i].cols, ref)
					continue
				}
				textSeen[key] = len(ph.textValues)
				ph.textValues = append(ph.textValues, indexedValue{
					value: key,
					cols:  []sqlast.ColumnRef{ref},
				})
			}
		}
		for _, w := range t.SurfaceForms() {
			for _, tok := range tokens.Tokenize(w) {
				ph.schemaWords[lemma.Lemmatize(tok)] = true
			}
		}
		for _, c := range t.Columns {
			for _, w := range c.SurfaceForms() {
				for _, tok := range tokens.Tokenize(w) {
					ph.schemaWords[lemma.Lemmatize(tok)] = true
				}
			}
		}
	}
	ph.gramIndex = map[uint64][]int32{}
	for id := range ph.textValues {
		iv := &ph.textValues[id]
		keys := bigramKeys(iv.value)
		iv.ngrams = len(keys)
		for _, g := range keys {
			ph.gramIndex[g] = append(ph.gramIndex[g], int32(id))
		}
	}
	return ph
}

// Anonymize replaces constants in the NL question with placeholder
// tokens: numbers that match indexed column values become @TABLE.COL,
// and text spans (up to 4 tokens) that are Jaccard-similar to an
// indexed value become @TABLE.COL bound to the most similar database
// value (the paper's "replace constants with their most similar value
// used in the database"). Unmatched numbers stay literal.
//
// Malformed input — empty, not valid UTF-8, embedded control bytes,
// or longer than MaxTokens — is rejected with a *ValidationError; no
// input, however adversarial, may panic.
func (ph *ParameterHandler) Anonymize(question string) (*Anonymized, error) {
	if err := ph.validate(question); err != nil {
		return nil, err
	}
	toks := tokens.Tokenize(question)
	if max := ph.maxTokens(); len(toks) > max {
		return nil, &ValidationError{Reason: fmt.Sprintf("question has %d tokens; the limit is %d", len(toks), max)}
	}
	// Per-token facts used by the span scan below, computed once
	// instead of once per candidate span (this runs on every request;
	// see DESIGN.md, "Inference hot path").
	schemaTok := make([]bool, len(toks))
	numOrPh := make([]bool, len(toks))
	for k, t := range toks {
		schemaTok[k] = ph.schemaWords[lemma.Lemmatize(t)]
		if tokens.IsPlaceholder(t) {
			numOrPh[k] = true
		} else if _, err := strconv.ParseFloat(t, 64); err == nil {
			numOrPh[k] = true
		}
	}
	// spanEligible: a span is a constant candidate unless it contains a
	// number/placeholder or consists entirely of schema surface words.
	spanEligible := func(i, n int) bool {
		all := true
		for k := i; k < i+n; k++ {
			if numOrPh[k] {
				return false
			}
			all = all && schemaTok[k]
		}
		return !all
	}

	out := &Anonymized{}
	i := 0
	for i < len(toks) {
		tok := toks[i]
		// Pre-anonymized input: pass placeholders through.
		if tokens.IsPlaceholder(tok) {
			out.Tokens = append(out.Tokens, tok)
			i++
			continue
		}
		// Numbers: bind to a column holding the exact value — except
		// in top-k contexts ("top 3", "first 5"), where the number is
		// a result count, not a data constant.
		if n, err := strconv.ParseFloat(tok, 64); err == nil {
			topK := i > 0 && isTopKWord(toks[i-1])
			if cols, ok := ph.numValues[n]; ok && len(cols) > 0 && !topK {
				ref := cols[0]
				name := placeholderName(ref)
				out.Tokens = append(out.Tokens, "@"+name)
				out.Bindings = append(out.Bindings, Binding{Placeholder: name, Value: sqlast.NumValue(n)})
				i++
				continue
			}
			out.Tokens = append(out.Tokens, tok)
			i++
			continue
		}
		// Text spans, longest first.
		matched := false
		for n := 4; n >= 1 && !matched; n-- {
			if i+n > len(toks) {
				continue
			}
			if !spanEligible(i, n) {
				continue
			}
			phrase := strings.Join(toks[i:i+n], " ")
			ref, dbValue, sim := ph.bestTextMatch(phrase)
			if sim < ph.MinSimilarity {
				continue
			}
			name := placeholderName(ref)
			out.Tokens = append(out.Tokens, "@"+name)
			out.Bindings = append(out.Bindings, Binding{Placeholder: name, Value: sqlast.StrValue(dbValue)})
			i += n
			matched = true
		}
		if !matched {
			out.Tokens = append(out.Tokens, tok)
			i++
		}
	}
	return out, nil
}

// maxTokens resolves the question-length cap.
func (ph *ParameterHandler) maxTokens() int {
	if ph.MaxTokens > 0 {
		return ph.MaxTokens
	}
	return DefaultMaxQuestionTokens
}

// validate rejects raw question strings no tokenization should see:
// emptiness, byte sequences that are not UTF-8, and control bytes
// (NUL and friends) that only appear in injection attempts — never in
// typed questions. Tabs and newlines count as ordinary whitespace.
func (ph *ParameterHandler) validate(question string) error {
	if !utf8.ValidString(question) {
		return &ValidationError{Reason: "question is not valid UTF-8"}
	}
	if strings.TrimSpace(question) == "" {
		return &ValidationError{Reason: "empty question"}
	}
	for _, r := range question {
		if unicode.IsControl(r) && r != '\t' && r != '\n' && r != '\r' {
			return &ValidationError{Reason: fmt.Sprintf("question contains control character %q", r)}
		}
	}
	return nil
}

// isTopKWord reports whether a token introduces a result-count number.
func isTopKWord(tok string) bool {
	switch lemma.Lemmatize(strings.ToLower(tok)) {
	case "top", "first", "last", "bottom", "limit":
		return true
	}
	return false
}

// bestTextMatch finds the indexed text value most similar to the
// phrase (character-bigram Jaccard). It walks the inverted bigram
// index, so only candidates sharing at least one bigram with the
// phrase are scored — a candidate sharing none has similarity 0 and
// could never win anyway. Candidate order (and therefore tie-breaking
// on equal similarity) matches a linear scan of textValues.
func (ph *ParameterHandler) bestTextMatch(phrase string) (sqlast.ColumnRef, string, float64) {
	var bestRef sqlast.ColumnRef
	bestVal := ""
	bestSim := 0.0
	pb := bigramKeys(strings.ToLower(phrase))
	counts := make([]int32, len(ph.textValues))
	for _, g := range pb {
		for _, id := range ph.gramIndex[g] {
			counts[id]++
		}
	}
	for id, inter := range counts {
		if inter == 0 {
			continue
		}
		iv := &ph.textValues[id]
		sim := 1.0
		if union := len(pb) + iv.ngrams - int(inter); union != int(inter) {
			sim = float64(inter) / float64(union)
		}
		if sim > bestSim {
			bestSim = sim
			bestVal = iv.value
			bestRef = iv.cols[0]
		}
	}
	return bestRef, bestVal, bestSim
}

// Jaccard computes the Jaccard index of the character-bigram sets of a
// and b (1.0 for identical strings).
func Jaccard(a, b string) float64 {
	if a == b {
		return 1
	}
	return jaccardSorted(bigrams(a), bigrams(b))
}

// jaccardSorted computes the Jaccard index of two sorted distinct
// bigram slices by merge intersection.
func jaccardSorted(sa, sb []string) float64 {
	if len(sa) == 0 || len(sb) == 0 {
		return 0
	}
	inter, i, j := 0, 0, 0
	for i < len(sa) && j < len(sb) {
		switch {
		case sa[i] == sb[j]:
			inter++
			i++
			j++
		case sa[i] < sb[j]:
			i++
		default:
			j++
		}
	}
	union := len(sa) + len(sb) - inter
	if inter == len(sa) && inter == len(sb) {
		return 1
	}
	return float64(inter) / float64(union)
}

// bigramKeys returns the distinct character bigrams of s packed into
// uint64 keys (hi rune << 32 | lo rune; a single-rune string yields
// the bare rune, which cannot collide with a pair key because pair
// keys always carry a non-zero high half).
func bigramKeys(s string) []uint64 {
	r := []rune(s)
	if len(r) == 1 {
		return []uint64{uint64(uint32(r[0]))}
	}
	out := make([]uint64, 0, len(r))
	for i := 0; i+1 < len(r); i++ {
		out = append(out, uint64(uint32(r[i]))<<32|uint64(uint32(r[i+1])))
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	w := 0
	for i, g := range out {
		if i == 0 || g != out[w-1] {
			out[w] = g
			w++
		}
	}
	return out[:w]
}

// bigrams returns the sorted distinct character bigrams of s (the
// whole string when it is a single rune).
func bigrams(s string) []string {
	r := []rune(s)
	if len(r) == 1 {
		return []string{s}
	}
	out := make([]string, 0, len(r))
	for i := 0; i+1 < len(r); i++ {
		out = append(out, string(r[i:i+2]))
	}
	sort.Strings(out)
	w := 0
	for i, g := range out {
		if i == 0 || g != out[w-1] {
			out[w] = g
			w++
		}
	}
	return out[:w]
}

// placeholderName renders TABLE.COL (upper case, no '@').
func placeholderName(ref sqlast.ColumnRef) string {
	return strings.ToUpper(ref.Table) + "." + strings.ToUpper(ref.Column)
}

// KTranslator is the optional contract for models that can propose
// ranked alternative translations; the runtime's execution-guided mode
// uses it to recover when the top candidate fails post-processing or
// execution. Both bundled models implement it (beam search for the
// seq2seq, top-k sketches for the sketch model).
type KTranslator interface {
	TranslateK(nl, schemaToks []string, k int) [][]string
}

// Translator is the end-to-end runtime of Figure 1: pre-processing
// (Parameter Handler + Lemmatizer), neural translation, and
// post-processing (constant restoration + SQL repair), backed by the
// execution engine for result delivery.
type Translator struct {
	DB     *engine.Database
	Model  models.Translator
	PH     *ParameterHandler
	schema []string
	// ExecutionGuided, when > 1 and the model implements KTranslator,
	// makes Translate consider up to that many ranked candidates and
	// return the first that survives post-processing and executes.
	ExecutionGuided int
	// Deadline bounds each tier's model inference per question
	// (0 = unbounded). A tier still running at expiry is abandoned —
	// it costs at most one leaked goroutine, never a hung question —
	// and the chain falls through to the next tier.
	Deadline time.Duration
	// Fallbacks is the graceful-degradation chain: translators tried
	// in order after the primary Model fails a question (panic,
	// deadline, no output, nothing parsable/executable). The usual
	// chain is neural primary → sketch → models.NearestNeighbor. The
	// tier that answered is recorded in Trace.Tier.
	Fallbacks []models.Translator
	// Hook, when non-nil, observes and gates the degradation chain —
	// the serving layer's circuit breakers plug in here. Allow is
	// consulted before a tier runs (a non-nil error skips the tier
	// without paying its Deadline); Record is told the outcome of
	// every tier that did run.
	Hook TierHook
	// Critic, when non-nil, is the execution-guided
	// validation-and-repair layer: every finalized candidate passes
	// through it before it can become the answer — including cache
	// replays, whose re-bound constants are validated too. The beam is
	// reranked validity-first: a valid candidate beats a repaired one
	// at any rank, and both beat everything else; when the critic
	// rejects every candidate, finalization fails with a typed
	// *RejectedError.
	Critic *critic.Critic
	// CriticHook, when non-nil alongside Critic, gates and observes
	// critic reviews — the serving layer's per-tenant critic breaker
	// plugs in here. Allow returning a non-nil error skips validation
	// for the finalization (degrading to unvalidated answering, the
	// pre-critic behaviour). Record is called once per candidate
	// reviewed; its error is non-nil only for sandbox infrastructure
	// failures (engine panic or dry-run deadline), never for a merely
	// invalid candidate — a storm of bad SQL must not open the
	// breaker.
	CriticHook CriticHook
}

// CriticHook gates and observes critic reviews per finalization. Both
// methods may be called from concurrent questions and must be safe
// for concurrent use.
type CriticHook interface {
	// Allow is consulted once per finalization; a non-nil error skips
	// validation, recording the reason in Trace.CriticVerdicts.
	Allow() error
	// Record reports each candidate review; err is non-nil only when
	// the sandbox itself failed (engine panic or timeout).
	Record(err error)
}

// TierHook gates and observes the degradation chain per tier. Both
// methods may be called from concurrent questions and must be safe
// for concurrent use.
type TierHook interface {
	// Allow is consulted before the named tier runs; returning a
	// non-nil error skips the tier, recording the reason in
	// Trace.TierErrors.
	Allow(tier string) error
	// Record reports the outcome of a tier that ran (err == nil means
	// the tier answered).
	Record(tier string, err error)
}

// NewTranslator wires a trained model to a database.
func NewTranslator(db *engine.Database, model models.Translator) *Translator {
	return &Translator{
		DB:     db,
		Model:  model,
		PH:     NewParameterHandler(db),
		schema: models.SchemaTokens(db.Schema),
	}
}

// Trace records every stage of one translation (the lifecycle of the
// paper's Figure 1), for demos and debugging.
type Trace struct {
	Question   string
	Anonymized []string  // after the Parameter Handler
	Bindings   []Binding // constants it extracted
	Lemmatized []string  // after the Lemmatizer
	ModelOut   []string  // raw Neural Translator output tokens
	Final      *sqlast.Query
	// Tier is the Name() of the translator that produced Final —
	// the primary model on the happy path, a fallback tier when the
	// degradation chain had to step in. Empty when no tier answered.
	Tier string
	// TierErrors records why each earlier tier failed, in chain order
	// ("name: reason").
	TierErrors []string
	// Cache is the serving layer's result-cache outcome for this
	// question ("hit", "miss", "coalesced"); empty when no cache is in
	// front of the translator.
	Cache string
	// CriticVerdicts records the critic's ruling per candidate in beam
	// order ("valid", "repaired(identifier)", "invalid: ...",
	// "skipped: ..."); empty when no critic is configured.
	CriticVerdicts []string
	// Repaired marks that the answering query needed critic repair.
	Repaired bool
	// CriticNS is the total dry-run sandbox time the critic spent on
	// this request, in nanoseconds.
	CriticNS int64
}

// String renders the trace as an indented lifecycle report.
func (t *Trace) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "question:   %s\n", t.Question)
	fmt.Fprintf(&b, "anonymized: %s\n", strings.Join(t.Anonymized, " "))
	for _, bd := range t.Bindings {
		fmt.Fprintf(&b, "  constant: @%s = %s\n", bd.Placeholder, bd.Value)
	}
	fmt.Fprintf(&b, "lemmatized: %s\n", strings.Join(t.Lemmatized, " "))
	fmt.Fprintf(&b, "model out:  %s\n", strings.Join(t.ModelOut, " "))
	for _, te := range t.TierErrors {
		fmt.Fprintf(&b, "  tier err: %s\n", te)
	}
	if t.Cache != "" {
		fmt.Fprintf(&b, "cache:      %s\n", t.Cache)
	}
	for _, cv := range t.CriticVerdicts {
		fmt.Fprintf(&b, "  critic:   %s\n", cv)
	}
	if t.Repaired {
		fmt.Fprintf(&b, "repaired:   true\n")
	}
	if t.Tier != "" {
		fmt.Fprintf(&b, "tier:       %s\n", t.Tier)
	}
	if t.Final != nil {
		fmt.Fprintf(&b, "final SQL:  %s", t.Final)
	}
	return b.String()
}

// Translate maps an NL question to an executable SQL query.
func (tr *Translator) Translate(question string) (*sqlast.Query, error) {
	q, _, err := tr.TranslateTrace(question)
	return q, err
}

// TranslateContext is Translate with cooperative cancellation: the
// tier chain stops (returning ctx's error) once the context is done.
func (tr *Translator) TranslateContext(ctx context.Context, question string) (*sqlast.Query, error) {
	q, _, err := tr.TranslateTraceContext(ctx, question)
	return q, err
}

// TranslateTrace translates and returns the full lifecycle trace; the
// trace is non-nil even on error, holding the stages that completed.
func (tr *Translator) TranslateTrace(question string) (*sqlast.Query, *Trace, error) {
	return tr.TranslateTraceContext(context.Background(), question)
}

// TranslateTraceContext runs the pre-processing stages once, then
// walks the degradation chain (primary model, then each Fallback)
// until a tier yields SQL that parses, post-processes, and — in
// execution-guided mode — executes. A tier that panics, exceeds the
// Deadline, or produces nothing usable is recorded in
// Trace.TierErrors and the next tier is tried; it can never take the
// process down. The returned error is the primary tier's failure
// (the most informative one) when every tier fails.
//
// It is Preprocess followed by TranslatePrepared; serving layers that
// cache or batch decodes call those two halves directly.
func (tr *Translator) TranslateTraceContext(ctx context.Context, question string) (*sqlast.Query, *Trace, error) {
	trace := &Trace{Question: question}
	anon, nl, err := tr.Preprocess(question)
	if err != nil {
		return nil, trace, err
	}
	trace.Anonymized = anon.Tokens
	trace.Bindings = anon.Bindings
	trace.Lemmatized = nl
	q, _, err := tr.TranslatePrepared(ctx, nl, anon.Bindings, nil, trace)
	return q, trace, err
}

// Preprocess runs the deterministic pre-model stages alone: the
// Parameter Handler (constant anonymization) and the Lemmatizer. The
// returned lemmatized tokens are exactly what the model decodes —
// and, joined, they are the serving layer's cache key: every constant
// variation of a question shape canonicalizes to the same nl, so one
// cached decode answers them all (the bindings in Anonymized carry
// the per-request constants for post-processing).
func (tr *Translator) Preprocess(question string) (*Anonymized, []string, error) {
	anon, err := tr.PH.Anonymize(question)
	if err != nil {
		return nil, nil, err
	}
	return anon, lemma.LemmatizeAll(anon.Tokens), nil
}

// SchemaTokens returns the schema serialization fed to the model
// alongside each question.
func (tr *Translator) SchemaTokens() []string { return tr.schema }

// CacheKey derives the result-cache key for a preprocessed question:
// the owning schema's name joined to the lemmatized anonymized tokens
// under an unprintable separator. The tokens alone are not a safe key
// once a process hosts many tenants — two schemas can anonymize
// lexically identical questions to the same token sequence, and a
// shared key would cross-serve one tenant's decoded candidates to the
// other — so the schema name makes keys disjoint per tenant.
func (tr *Translator) CacheKey(nl []string) string {
	return tr.DB.Schema.Name + "\x1f" + strings.Join(nl, " ")
}

// DecodeResult is the binding-independent product of one translation:
// the ranked candidate token sequences a tier decoded for a prepared
// (anonymized + lemmatized) question, and the tier that produced
// them. Because constants were anonymized away before decoding, a
// DecodeResult is shared safely across every request whose question
// canonicalizes to the same nl — that is what the serving layer's
// result cache stores. Candidates must be treated as immutable.
type DecodeResult struct {
	Tier       string
	Candidates [][]string
}

// ErrStaleCandidates reports that a cached DecodeResult passed to
// TranslatePrepared failed finalization under this request's
// bindings. The caller should fall back to a fresh decode
// (TranslatePrepared with a nil primary); the stale entry must not be
// shared further.
var ErrStaleCandidates = errors.New("runtime: prepared candidates failed finalization")

// TranslatePrepared is the post-preprocessing half of a translation:
// given the lemmatized anonymized question and its constant bindings,
// it walks the degradation chain and finalizes the first tier that
// yields usable SQL, returning the winning tier's DecodeResult
// alongside the query so callers can cache it.
//
// When primary is non-nil it is a cached DecodeResult for this nl:
// the model is not consulted at all — the candidates are replayed
// through finalization with this request's bindings (the cheap,
// binding-dependent tail of the pipeline). If they no longer finalize
// the call fails fast with ErrStaleCandidates instead of walking the
// fallback chain, so the caller can re-decode at full strength rather
// than silently degrade. The Hook is not consulted on the replay
// path: breakers meter model decodes, and a replay performs none.
//
// trace may be nil when no lifecycle report is wanted.
func (tr *Translator) TranslatePrepared(ctx context.Context, nl []string, bindings []Binding, primary *DecodeResult, trace *Trace) (*sqlast.Query, *DecodeResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if trace == nil {
		trace = &Trace{}
	}
	if primary != nil {
		q, err := tr.FinalizeCandidatesContext(ctx, primary.Candidates, bindings, trace)
		if err != nil {
			return nil, nil, fmt.Errorf("%w: %v", ErrStaleCandidates, err)
		}
		if trace.ModelOut == nil && len(primary.Candidates) > 0 {
			trace.ModelOut = primary.Candidates[0]
		}
		trace.Tier = primary.Tier
		return q, primary, nil
	}

	var firstErr error
	for _, model := range tr.chain() {
		if err := ctx.Err(); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return nil, nil, firstErr
		}
		name := model.Name()
		if tr.Hook != nil {
			if herr := tr.Hook.Allow(name); herr != nil {
				trace.TierErrors = append(trace.TierErrors, name+": skipped: "+herr.Error())
				if firstErr == nil {
					firstErr = fmt.Errorf("runtime: tier %q skipped: %w", name, herr)
				}
				continue
			}
		}
		q, candidates, err := tr.tryTier(ctx, model, nl, bindings, trace)
		if tr.Hook != nil {
			tr.Hook.Record(name, err)
		}
		if err == nil {
			trace.Tier = name
			return q, &DecodeResult{Tier: name, Candidates: candidates}, nil
		}
		trace.TierErrors = append(trace.TierErrors, name+": "+err.Error())
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr == nil {
		firstErr = fmt.Errorf("runtime: no translator tiers configured")
	}
	return nil, nil, firstErr
}

// chain returns the ordered translator tiers: the primary model, then
// the fallbacks (nil entries skipped defensively).
func (tr *Translator) chain() []models.Translator {
	out := make([]models.Translator, 0, 1+len(tr.Fallbacks))
	if tr.Model != nil {
		out = append(out, tr.Model)
	}
	for _, f := range tr.Fallbacks {
		if f != nil {
			out = append(out, f)
		}
	}
	return out
}

// tryTier runs one translator tier end to end: decode, then
// finalize. A panic anywhere in the tier (a misbehaving plug-in
// model, a pathological candidate) is recovered into an error, and
// model inference is bounded by both tr.Deadline and ctx's own
// deadline — the pluggability contract only holds in production if
// the runtime survives a misbehaving Translator, and a serving layer
// must be able to bound a whole request with one context. The decoded
// candidates are returned even when finalization fails, so the caller
// controls what is worth caching.
func (tr *Translator) tryTier(ctx context.Context, model models.Translator, nl []string, bindings []Binding, trace *Trace) (q *sqlast.Query, candidates [][]string, err error) {
	defer func() {
		if r := recover(); r != nil {
			q, err = nil, fmt.Errorf("runtime: tier %q panicked: %v", model.Name(), r)
		}
	}()
	tctx := ctx
	if tr.Deadline > 0 {
		var cancel context.CancelFunc
		tctx, cancel = context.WithTimeout(ctx, tr.Deadline)
		defer cancel()
	}
	if tctx.Done() == nil {
		// No deadline from either side: run inline, zero overhead.
		candidates = tr.tierCandidates(tctx, model, nl)
	} else if derr := par.Await(tctx, func() { candidates = tr.tierCandidates(tctx, model, nl) }); derr != nil {
		return nil, nil, fmt.Errorf("runtime: tier %q exceeded its deadline: %w", model.Name(), derr)
	}
	if len(candidates) == 0 {
		return nil, nil, fmt.Errorf("runtime: model %q produced no output", model.Name())
	}
	if trace.ModelOut == nil {
		trace.ModelOut = candidates[0]
	}
	q, err = tr.FinalizeCandidatesContext(tctx, candidates, bindings, trace)
	return q, candidates, err
}

// RejectedError reports that the critic reviewed every candidate in
// the beam and none came out usable — no candidate was valid as
// decoded and none became valid under repair. Verdicts holds the
// per-candidate rulings in beam order; the serving layer maps this to
// its typed tier-exhaustion response.
type RejectedError struct {
	Verdicts []string
}

// Error implements error.
func (e *RejectedError) Error() string {
	return "runtime: critic rejected every candidate [" + strings.Join(e.Verdicts, "; ") + "]"
}

// FinalizeCandidates is the binding-dependent tail of a translation:
// it walks the ranked candidate token sequences and returns the first
// that parses, post-processes against this request's bindings, and —
// when more than one candidate is offered (execution-guided mode) —
// executes. When a Critic is configured (and its hook, if any,
// allows) every candidate is instead reviewed by the critic and the
// beam is reranked validity-first: the first valid candidate wins
// immediately, otherwise the first repaired-valid one, otherwise the
// first candidate the sandbox itself failed on (answered unvalidated),
// otherwise the finalization fails with *RejectedError. It is safe to call with
// candidates decoded for a different request's constants (the result
// cache's replay path); a panic from a pathological candidate is
// recovered into an error. trace, when non-nil, receives the winning
// query in Final and the critic verdicts.
func (tr *Translator) FinalizeCandidates(candidates [][]string, bindings []Binding, trace *Trace) (*sqlast.Query, error) {
	return tr.FinalizeCandidatesContext(context.Background(), candidates, bindings, trace)
}

// FinalizeCandidatesContext is FinalizeCandidates with the caller's
// context threaded into the critic's sandboxed dry-runs, so a request
// deadline bounds validation work too.
func (tr *Translator) FinalizeCandidatesContext(ctx context.Context, candidates [][]string, bindings []Binding, trace *Trace) (q *sqlast.Query, err error) {
	defer func() {
		if r := recover(); r != nil {
			q, err = nil, fmt.Errorf("runtime: finalize panicked: %v", r)
		}
	}()
	if trace == nil {
		trace = &Trace{}
	}
	if len(candidates) == 0 {
		return nil, fmt.Errorf("runtime: no candidates to finalize")
	}
	crit := tr.Critic
	if crit != nil && tr.CriticHook != nil {
		if herr := tr.CriticHook.Allow(); herr != nil {
			trace.CriticVerdicts = append(trace.CriticVerdicts, "skipped: "+herr.Error())
			crit = nil
		}
	}
	if crit != nil {
		return tr.finalizeCritic(ctx, crit, candidates, bindings, trace)
	}
	var firstErr error
	for _, sqlToks := range candidates {
		pq, perr := tr.parseFinalize(sqlToks, bindings, &firstErr)
		if perr != nil {
			continue
		}
		// In execution-guided mode a candidate must also execute.
		if len(candidates) > 1 {
			if _, eerr := tr.DB.Execute(pq); eerr != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("runtime: candidate does not execute: %w", eerr)
				}
				continue
			}
		}
		trace.Final = pq
		return pq, nil
	}
	return nil, firstErr
}

// parseFinalize parses and post-processes one candidate, folding its
// failure into firstErr. The returned error only signals "skip this
// candidate".
func (tr *Translator) parseFinalize(sqlToks []string, bindings []Binding, firstErr *error) (*sqlast.Query, error) {
	pq, perr := sqlast.ParseTokens(sqlToks)
	if perr != nil {
		if *firstErr == nil {
			*firstErr = fmt.Errorf("runtime: model output unparsable (%q): %w", strings.Join(sqlToks, " "), perr)
		}
		return nil, perr
	}
	pq, perr = PostProcess(pq, tr.DB.Schema, bindings)
	if perr != nil {
		if *firstErr == nil {
			*firstErr = perr
		}
		return nil, perr
	}
	return pq, nil
}

// finalizeCritic is the critic-guarded finalization: every candidate
// is reviewed (static checks, repair, sandboxed dry-run) and the beam
// reranked validity-first. A valid candidate short-circuits the walk;
// a repaired one is remembered as the fallback winner so a
// repaired-valid candidate beats an invalid top-1 but never a valid
// lower-ranked one. A candidate whose sandbox run itself failed
// (engine panic or deadline — not a verdict on the candidate) is kept
// as a last-resort unvalidated answer below both, so an engine
// meltdown degrades service instead of rejecting requests.
func (tr *Translator) finalizeCritic(ctx context.Context, crit *critic.Critic, candidates [][]string, bindings []Binding, trace *Trace) (*sqlast.Query, error) {
	var repairedQ, degradedQ *sqlast.Query
	var firstErr error
	verdicts := make([]string, 0, len(candidates))
	for _, sqlToks := range candidates {
		pq, perr := tr.parseFinalize(sqlToks, bindings, &firstErr)
		if perr != nil {
			verdicts = append(verdicts, "unusable: "+perr.Error())
			continue
		}
		out, outcome := crit.Review(ctx, pq)
		if tr.CriticHook != nil {
			var infra error
			if outcome.Err != nil && outcome.Err.Infra() {
				infra = outcome.Err
			}
			tr.CriticHook.Record(infra)
		}
		trace.CriticNS += outcome.DryRunNS
		verdicts = append(verdicts, outcome.String())
		switch outcome.Verdict {
		case critic.VerdictValid:
			trace.CriticVerdicts = append(trace.CriticVerdicts, verdicts...)
			trace.Final = out
			return out, nil
		case critic.VerdictRepaired:
			if repairedQ == nil {
				repairedQ = out
			}
		case critic.VerdictError:
			// The sandbox failed, not the candidate: it already passed
			// the static checks, and the hook Record above is what
			// trips the breaker. Answer with it unvalidated rather
			// than failing the request for the engine's meltdown.
			if degradedQ == nil {
				degradedQ = pq
			}
		}
	}
	trace.CriticVerdicts = append(trace.CriticVerdicts, verdicts...)
	if repairedQ != nil {
		trace.Final = repairedQ
		trace.Repaired = true
		return repairedQ, nil
	}
	if degradedQ != nil {
		trace.Final = degradedQ
		return degradedQ, nil
	}
	return nil, &RejectedError{Verdicts: verdicts}
}

// tierCandidates returns the ranked outputs of one tier: one (plain
// mode) or up to ExecutionGuided many when the tier supports
// alternatives. Models offering ContextTranslator decode under the
// tier's deadline context (the serving layer's batching adapter uses
// this to exit a pending microbatch on cancellation).
func (tr *Translator) tierCandidates(ctx context.Context, model models.Translator, nl []string) [][]string {
	if tr.ExecutionGuided > 1 {
		if kt, ok := model.(KTranslator); ok {
			return kt.TranslateK(nl, tr.schema, tr.ExecutionGuided) //lint:allow ctxdrop KTranslator has no context variant; tryTier bounds this whole call with par.Await under the tier deadline
		}
	}
	var out []string
	if ct, ok := model.(models.ContextTranslator); ok {
		out = ct.TranslateContext(ctx, nl, tr.schema)
	} else {
		out = model.Translate(nl, tr.schema) //lint:allow ctxdrop plain Translator has no context variant; tryTier bounds this whole call with par.Await under the tier deadline
	}
	if len(out) == 0 {
		return nil
	}
	return [][]string{out}
}

// Ask translates and executes, returning the tabular result.
func (tr *Translator) Ask(question string) (*engine.Result, *sqlast.Query, error) {
	return tr.AskContext(context.Background(), question)
}

// AskContext is Ask with cooperative cancellation.
func (tr *Translator) AskContext(ctx context.Context, question string) (*engine.Result, *sqlast.Query, error) {
	q, err := tr.TranslateContext(ctx, question)
	if err != nil {
		return nil, nil, err
	}
	res, err := tr.DB.Execute(q)
	if err != nil {
		return nil, q, fmt.Errorf("runtime: executing %q: %w", q, err)
	}
	return res, q, nil
}
