package runtime

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/critic"
	"repro/internal/sqlast"
)

// criticTranslator builds a translator whose finalization runs through
// a critic over the patients database.
func criticTranslator(t *testing.T, cfg critic.Config) *Translator {
	t.Helper()
	db := benchDB(t)
	tr := NewTranslator(db, oracleModel{})
	tr.Critic = critic.New(db, cfg)
	return tr
}

// criticRecHook captures every critic-breaker consultation.
type criticRecHook struct {
	allowErr error
	allowed  int
	recorded []error
}

func (h *criticRecHook) Allow() error { h.allowed++; return h.allowErr }
func (h *criticRecHook) Record(err error) {
	h.recorded = append(h.recorded, err)
}

// A valid later candidate beats an invalid top-1: the critic reranks
// the beam validity-first instead of answering with the first parse.
func TestFinalizeCriticRerank(t *testing.T) {
	tr := criticTranslator(t, critic.Config{Seed: 1})
	anon := mustAnon(t, tr.PH, "show the names of all patients with age 80")

	bad := strings.Fields("SELECT xqzw FROM patients")
	good := strings.Fields("SELECT name FROM patients WHERE age = @PATIENTS.AGE")
	trace := &Trace{}
	q, err := tr.FinalizeCandidates([][]string{bad, good}, anon.Bindings, trace)
	if err != nil || q == nil || !strings.Contains(q.String(), "name") {
		t.Fatalf("FinalizeCandidates = (%v, %v)", q, err)
	}
	if len(trace.CriticVerdicts) != 2 || !strings.HasPrefix(trace.CriticVerdicts[0], "invalid") || trace.CriticVerdicts[1] != "valid" {
		t.Fatalf("CriticVerdicts = %v, want [invalid..., valid]", trace.CriticVerdicts)
	}
	if trace.Repaired {
		t.Fatal("no repair happened; trace.Repaired must stay false")
	}
}

// A repairable-only beam answers via the repaired query and says so in
// the trace.
func TestFinalizeCriticRepairedFallback(t *testing.T) {
	tr := criticTranslator(t, critic.Config{Seed: 1})
	anon := mustAnon(t, tr.PH, "show the names of all patients with age 80")

	typo := strings.Fields("SELECT nme FROM patients WHERE age = @PATIENTS.AGE")
	trace := &Trace{}
	q, err := tr.FinalizeCandidates([][]string{typo}, anon.Bindings, trace)
	if err != nil || q == nil {
		t.Fatalf("FinalizeCandidates = (%v, %v)", q, err)
	}
	if !strings.Contains(q.String(), "name") {
		t.Fatalf("repair did not fix the identifier: %s", q)
	}
	if !trace.Repaired {
		t.Fatalf("trace.Repaired = false, verdicts %v", trace.CriticVerdicts)
	}
}

// Any valid candidate beats any repaired one, regardless of beam order.
func TestFinalizeCriticValidBeatsRepaired(t *testing.T) {
	tr := criticTranslator(t, critic.Config{Seed: 1})
	anon := mustAnon(t, tr.PH, "show the names of all patients with age 80")

	typo := strings.Fields("SELECT nme FROM patients")
	good := strings.Fields("SELECT diagnosis FROM patients WHERE age = @PATIENTS.AGE")
	trace := &Trace{}
	q, err := tr.FinalizeCandidates([][]string{typo, good}, anon.Bindings, trace)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q.String(), "diagnosis") {
		t.Fatalf("valid candidate must beat earlier repaired one, got %s", q)
	}
	if trace.Repaired {
		t.Fatal("answered with the valid candidate; trace.Repaired must stay false")
	}
}

// A beam with nothing usable fails with the typed RejectedError
// carrying every verdict.
func TestFinalizeCriticRejectedError(t *testing.T) {
	tr := criticTranslator(t, critic.Config{Seed: 1})
	anon := mustAnon(t, tr.PH, "show the names of all patients with age 80")

	junk := strings.Fields("SELECT xqzw FROM patients")
	garbled := strings.Fields("WHERE WHERE ( SELECT")
	_, err := tr.FinalizeCandidates([][]string{junk, garbled}, anon.Bindings, &Trace{})
	var rej *RejectedError
	if !errors.As(err, &rej) {
		t.Fatalf("err = %v, want *RejectedError", err)
	}
	if len(rej.Verdicts) != 2 {
		t.Fatalf("Verdicts = %v, want one per candidate", rej.Verdicts)
	}
	if !strings.Contains(err.Error(), "invalid") {
		t.Fatalf("error must summarize verdicts: %v", err)
	}
}

// When the hook denies (breaker open), the critic is skipped entirely
// and finalization degrades to the unvalidated path — answers keep
// flowing through an engine meltdown.
func TestFinalizeCriticHookDegrades(t *testing.T) {
	tr := criticTranslator(t, critic.Config{Seed: 1})
	hook := &criticRecHook{allowErr: errors.New("critic breaker open")}
	tr.CriticHook = hook
	anon := mustAnon(t, tr.PH, "show the names of all patients with age 80")

	good := strings.Fields("SELECT name FROM patients WHERE age = @PATIENTS.AGE")
	trace := &Trace{}
	q, err := tr.FinalizeCandidates([][]string{good}, anon.Bindings, trace)
	if err != nil || q == nil {
		t.Fatalf("degraded finalize = (%v, %v)", q, err)
	}
	if hook.allowed != 1 || len(hook.recorded) != 0 {
		t.Fatalf("hook = %+v, want one Allow and no Record", hook)
	}
	if len(trace.CriticVerdicts) != 1 || !strings.HasPrefix(trace.CriticVerdicts[0], "skipped:") {
		t.Fatalf("CriticVerdicts = %v, want the skip note", trace.CriticVerdicts)
	}
}

// The hook's Record sees a non-nil error exactly when the sandbox
// itself failed — candidate rejections must not feed the breaker —
// and a sandbox failure degrades the candidate to an unvalidated
// answer instead of rejecting the request.
func TestFinalizeCriticHookRecordsInfraOnly(t *testing.T) {
	db := benchDB(t)
	tr := NewTranslator(db, oracleModel{})
	tr.Critic = critic.New(db, critic.Config{
		Seed: 1,
		Exec: func(q *sqlast.Query, budget int) error { panic("injected engine panic") },
	})
	hook := &criticRecHook{}
	tr.CriticHook = hook
	anon := mustAnon(t, tr.PH, "show the names of all patients with age 80")

	junk := strings.Fields("SELECT xqzw FROM patients")                            // rejected statically: Record(nil)
	sound := strings.Fields("SELECT name FROM patients WHERE age = @PATIENTS.AGE") // hits the panicking engine: Record(infra)
	trace := &Trace{}
	q, err := tr.FinalizeCandidates([][]string{junk, sound}, anon.Bindings, trace)
	if err != nil || q == nil || !strings.Contains(q.String(), "name") {
		t.Fatalf("sandbox failure must degrade, not reject: (%v, %v)", q, err)
	}
	if len(hook.recorded) != 2 || hook.recorded[0] != nil || hook.recorded[1] == nil {
		t.Fatalf("recorded = %v, want [nil, infra]", hook.recorded)
	}
	if len(trace.CriticVerdicts) != 2 || !strings.HasPrefix(trace.CriticVerdicts[1], "sandbox_error") {
		t.Fatalf("CriticVerdicts = %v, want the sandbox failure on record", trace.CriticVerdicts)
	}
}

// A beam whose only statically-sound candidate dies in the sandbox
// still answers — but a genuinely valid candidate anywhere in the
// beam beats the degraded one.
func TestFinalizeCriticValidBeatsDegraded(t *testing.T) {
	db := benchDB(t)
	tr := NewTranslator(db, oracleModel{})
	tr.Critic = critic.New(db, critic.Config{
		Seed: 1,
		Exec: func(q *sqlast.Query, budget int) error {
			if strings.Contains(q.String(), "diagnosis") {
				panic("injected engine panic")
			}
			_, err := db.ExecuteBudget(q, budget)
			return err
		},
	})
	anon := mustAnon(t, tr.PH, "show the names of all patients with age 80")

	doomed := strings.Fields("SELECT diagnosis FROM patients")
	good := strings.Fields("SELECT name FROM patients WHERE age = @PATIENTS.AGE")
	q, err := tr.FinalizeCandidates([][]string{doomed, good}, anon.Bindings, &Trace{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q.String(), "name") {
		t.Fatalf("valid candidate must beat the sandbox-degraded one, got %s", q)
	}
}
