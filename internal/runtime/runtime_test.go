package runtime

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/models"
	"repro/internal/patients"
	"repro/internal/schema"
	"repro/internal/sqlast"
)

func benchDB(t *testing.T) *engine.Database {
	t.Helper()
	db, err := patients.Database()
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// mustAnon anonymizes a question the test knows to be well-formed.
func mustAnon(t *testing.T, ph *ParameterHandler, question string) *Anonymized {
	t.Helper()
	anon, err := ph.Anonymize(question)
	if err != nil {
		t.Fatalf("Anonymize(%q) = %v", question, err)
	}
	return anon
}

func TestAnonymizeNumber(t *testing.T) {
	ph := NewParameterHandler(benchDB(t))
	anon := mustAnon(t, ph, "show the names of all patients with age 80")
	joined := strings.Join(anon.Tokens, " ")
	if !strings.Contains(joined, "@PATIENTS.AGE") {
		t.Fatalf("age constant not anonymized: %q", joined)
	}
	if len(anon.Bindings) != 1 || anon.Bindings[0].Placeholder != "PATIENTS.AGE" {
		t.Fatalf("bindings = %+v", anon.Bindings)
	}
	if !anon.Bindings[0].Value.IsNum || anon.Bindings[0].Value.Num != 80 {
		t.Fatalf("bound value = %+v", anon.Bindings[0].Value)
	}
}

func TestAnonymizeUnknownNumberStaysLiteral(t *testing.T) {
	ph := NewParameterHandler(benchDB(t))
	anon := mustAnon(t, ph, "show the top 3 patients")
	joined := strings.Join(anon.Tokens, " ")
	if !strings.Contains(joined, "3") {
		t.Fatalf("literal 3 should survive: %q", joined)
	}
	if len(anon.Bindings) != 0 {
		t.Fatalf("no bindings expected, got %+v", anon.Bindings)
	}
}

func TestAnonymizeString(t *testing.T) {
	ph := NewParameterHandler(benchDB(t))
	anon := mustAnon(t, ph, "how many patients have diagnosis influenza")
	joined := strings.Join(anon.Tokens, " ")
	if !strings.Contains(joined, "@PATIENTS.DIAGNOSIS") {
		t.Fatalf("diagnosis constant not anonymized: %q", joined)
	}
	if anon.Bindings[0].Value.Str != "influenza" {
		t.Fatalf("bound value = %+v", anon.Bindings[0].Value)
	}
}

func TestAnonymizeFuzzyString(t *testing.T) {
	// The paper's "New York City" vs "NYC" case: a misspelled constant
	// maps to the most similar database value.
	ph := NewParameterHandler(benchDB(t))
	anon := mustAnon(t, ph, "how many patients have diagnosis influenzas")
	if len(anon.Bindings) != 1 || anon.Bindings[0].Value.Str != "influenza" {
		t.Fatalf("fuzzy match failed: %+v", anon.Bindings)
	}
}

func TestAnonymizeMultiTokenValue(t *testing.T) {
	ph := NewParameterHandler(benchDB(t))
	anon := mustAnon(t, ph, "show the age of the patient whose name is alice johnson")
	joined := strings.Join(anon.Tokens, " ")
	if !strings.Contains(joined, "@PATIENTS.NAME") {
		t.Fatalf("two-token name not anonymized: %q", joined)
	}
	if anon.Bindings[0].Value.Str != "alice johnson" {
		t.Fatalf("bound value = %+v", anon.Bindings[0].Value)
	}
}

func TestAnonymizeSkipsSchemaWords(t *testing.T) {
	ph := NewParameterHandler(benchDB(t))
	anon := mustAnon(t, ph, "show the age and gender of all patients")
	for _, b := range anon.Bindings {
		t.Fatalf("schema words must not bind constants: %+v", b)
	}
}

func TestAnonymizePreAnonymizedPassThrough(t *testing.T) {
	ph := NewParameterHandler(benchDB(t))
	anon := mustAnon(t, ph, "show patients with age @PATIENTS.AGE")
	joined := strings.Join(anon.Tokens, " ")
	if strings.Count(joined, "@PATIENTS.AGE") != 1 {
		t.Fatalf("placeholder pass-through broken: %q", joined)
	}
}

func TestJaccard(t *testing.T) {
	if Jaccard("abc", "abc") != 1 {
		t.Fatal("identical strings = 1")
	}
	if Jaccard("abc", "xyz") != 0 {
		t.Fatal("disjoint strings = 0")
	}
	sim := Jaccard("influenza", "influenzas")
	if sim <= 0.5 || sim >= 1 {
		t.Fatalf("near-match similarity = %v", sim)
	}
	if Jaccard("male", "male") <= Jaccard("male", "female") {
		t.Fatal("exact match must beat partial match")
	}
}

func TestPostProcessRestoresConstants(t *testing.T) {
	db := benchDB(t)
	q := sqlast.MustParse("SELECT name FROM patients WHERE age = @PATIENTS.AGE")
	out, err := PostProcess(q, db.Schema, []Binding{{Placeholder: "PATIENTS.AGE", Value: sqlast.NumValue(80)}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "age = 80") {
		t.Fatalf("constant not restored: %s", out)
	}
}

func TestPostProcessOrderedBindings(t *testing.T) {
	db := benchDB(t)
	q := sqlast.MustParse("SELECT name FROM patients WHERE age BETWEEN @PATIENTS.AGE AND @PATIENTS.AGE")
	out, err := PostProcess(q, db.Schema, []Binding{
		{Placeholder: "PATIENTS.AGE", Value: sqlast.NumValue(29)},
		{Placeholder: "PATIENTS.AGE", Value: sqlast.NumValue(45)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "BETWEEN 29 AND 45") {
		t.Fatalf("ordered restoration broken: %s", out)
	}
}

func TestPostProcessFallbackBinding(t *testing.T) {
	// The model hallucinated a different table for the placeholder;
	// the column-part fallback still restores the right constant.
	db := benchDB(t)
	q := sqlast.MustParse("SELECT name FROM patients WHERE age = @DOCTORS.AGE")
	out, err := PostProcess(q, db.Schema, []Binding{{Placeholder: "PATIENTS.AGE", Value: sqlast.NumValue(80)}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "age = 80") {
		t.Fatalf("fallback restoration broken: %s", out)
	}
}

func TestPostProcessMissingBinding(t *testing.T) {
	db := benchDB(t)
	q := sqlast.MustParse("SELECT name FROM patients WHERE age = @PATIENTS.AGE")
	if _, err := PostProcess(q, db.Schema, nil); err == nil {
		t.Fatal("missing binding should be an error")
	}
}

func TestPostProcessLikeWildcards(t *testing.T) {
	db := benchDB(t)
	q := sqlast.MustParse("SELECT name FROM patients WHERE name LIKE @PATIENTS.NAME")
	out, err := PostProcess(q, db.Schema, []Binding{{Placeholder: "PATIENTS.NAME", Value: sqlast.StrValue("john")}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "'%john%'") {
		t.Fatalf("LIKE wildcards missing: %s", out)
	}
}

// geoSchema tests @JOIN resolution over a multi-table schema.
func geoDB(t *testing.T) *engine.Database {
	t.Helper()
	s := spiderGeo()
	db, err := engine.GenerateData(s, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPostProcessResolvesJoin(t *testing.T) {
	db := geoDB(t)
	q := sqlast.MustParse("SELECT AVG(mountains.height) FROM @JOIN WHERE states.name = @STATES.NAME")
	out, err := PostProcess(q, db.Schema, []Binding{{Placeholder: "STATES.NAME", Value: sqlast.StrValue("vermont")}})
	if err != nil {
		t.Fatal(err)
	}
	if out.From.JoinPlaceholder {
		t.Fatal("@JOIN not resolved")
	}
	s := out.String()
	if !strings.Contains(s, "mountains") || !strings.Contains(s, "states") {
		t.Fatalf("join tables missing: %s", s)
	}
	if !strings.Contains(s, "mountains.state_id = states.id") {
		t.Fatalf("join predicate missing: %s", s)
	}
	if _, err := db.Execute(out); err != nil {
		t.Fatalf("resolved join does not execute: %v", err)
	}
}

func TestPostProcessRepairsFrom(t *testing.T) {
	db := geoDB(t)
	// The model picked the wrong table for a qualified column: the
	// post-processor must add the missing table and the join path.
	q := sqlast.MustParse("SELECT mountains.height FROM states WHERE states.name = 'vermont'")
	out, err := PostProcess(q, db.Schema, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.From.Tables) < 2 {
		t.Fatalf("FROM not repaired: %s", out)
	}
	if _, err := db.Execute(out); err != nil {
		t.Fatalf("repaired query does not execute: %v", err)
	}
}

func TestPostProcessDropsUnknownTables(t *testing.T) {
	db := geoDB(t)
	q := sqlast.MustParse("SELECT name FROM hallucinated")
	if _, err := PostProcess(q, db.Schema, nil); err == nil {
		t.Fatal("query over only unknown tables with no inferable column owner should fail")
	}
	q2 := sqlast.MustParse("SELECT height FROM hallucinated")
	out, err := PostProcess(q2, db.Schema, nil)
	if err != nil {
		t.Fatal(err)
	}
	// height uniquely belongs to mountains: FROM is replaced.
	if len(out.From.Tables) != 1 || !strings.EqualFold(out.From.Tables[0], "mountains") {
		t.Fatalf("unknown FROM not replaced: %s", out)
	}
}

func TestEndToEndAsk(t *testing.T) {
	db := benchDB(t)
	tr := NewTranslator(db, oracleModel{db: db})
	res, q, err := tr.Ask("show the names of all patients with age 80")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q.String(), "80") {
		t.Fatalf("constant missing from final SQL: %s", q)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("expected 3 patients aged 80, got %d", len(res.Rows))
	}
}

// oracleModel is a fixed fake translator used to test the runtime
// plumbing in isolation from model quality.
type oracleModel struct {
	db *engine.Database
}

func (oracleModel) Name() string           { return "oracle" }
func (oracleModel) Train([]models.Example) {}

func (oracleModel) Translate(nl, schemaToks []string) []string {
	return strings.Fields("SELECT name FROM patients WHERE age = @PATIENTS.AGE")
}

// spiderGeo is a local copy of the geo schema shape used by the join
// post-processing tests.
func spiderGeo() *schema.Schema {
	return &schema.Schema{
		Name: "geo",
		Tables: []*schema.Table{
			{Name: "states", Readable: "state", Columns: []*schema.Column{
				{Name: "id", Type: schema.Number, PrimaryKey: true},
				{Name: "name", Type: schema.Text},
				{Name: "area", Type: schema.Number, Domain: schema.DomainArea},
			}},
			{Name: "mountains", Readable: "mountain", Columns: []*schema.Column{
				{Name: "id", Type: schema.Number, PrimaryKey: true},
				{Name: "name", Type: schema.Text},
				{Name: "height", Type: schema.Number, Domain: schema.DomainHeight},
				{Name: "state_id", Type: schema.Number},
			}},
		},
		ForeignKeys: []schema.ForeignKey{
			{FromTable: "mountains", FromColumn: "state_id", ToTable: "states", ToColumn: "id"},
		},
	}
}

func TestTraceRendering(t *testing.T) {
	db := benchDB(t)
	tr := NewTranslator(db, oracleModel{})
	_, trace, err := tr.TranslateTrace("show the names of all patients with age 80")
	if err != nil {
		t.Fatal(err)
	}
	out := trace.String()
	for _, want := range []string{"question:", "anonymized:", "@PATIENTS.AGE", "lemmatized:", "model out:", "final SQL:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %q:\n%s", want, out)
		}
	}
}

func TestJaccardEdgeCases(t *testing.T) {
	if Jaccard("", "") != 1 {
		t.Fatal("empty strings are identical")
	}
	if Jaccard("a", "") != 0 {
		t.Fatal("empty vs non-empty = 0")
	}
	if Jaccard("a", "a") != 1 {
		t.Fatal("single identical runes = 1")
	}
	if Jaccard("a", "b") != 0 {
		t.Fatal("distinct single runes = 0")
	}
}

func TestAnonymizeTopKWords(t *testing.T) {
	ph := NewParameterHandler(benchDB(t))
	// "3" exists in length_of_stay, but after "top" it stays literal.
	anon := mustAnon(t, ph, "show the top 3 patients by age")
	if len(anon.Bindings) != 0 {
		t.Fatalf("top-k number bound as constant: %+v", anon.Bindings)
	}
	// Without the top-k cue it binds.
	anon2 := mustAnon(t, ph, "show patients with length of stay 3")
	if len(anon2.Bindings) != 1 {
		t.Fatalf("plain constant not bound: %+v", anon2.Bindings)
	}
}
