package runtime

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/schema"
	"repro/internal/spider"
)

// TestCacheKeyQualifiedBySchema is the cross-tenant cache-poisoning
// regression test at the runtime layer: the cache key for the very
// same lemmatized question must differ across schemas (a multi-tenant
// server keying a shared cache on NL alone would serve tenant A's SQL
// to tenant B), must be stable for one schema, and must vary with the
// question.
func TestCacheKeyQualifiedBySchema(t *testing.T) {
	mk := func(s *schema.Schema) *Translator {
		db, err := engine.GenerateData(s, 4, 1)
		if err != nil {
			t.Fatal(err)
		}
		return NewTranslator(db, oracleModel{})
	}
	trA := mk(spider.GenerateSchema(1))
	trB := mk(spider.GenerateSchema(2))

	nl := strings.Fields("show the name of all entries")
	if trA.CacheKey(nl) == trB.CacheKey(nl) {
		t.Fatalf("identical keys across schemas: %q", trA.CacheKey(nl))
	}
	if trA.CacheKey(nl) != trA.CacheKey(nl) {
		t.Fatal("key not deterministic for one schema")
	}
	if trA.CacheKey(nl) == trA.CacheKey(strings.Fields("count all entries")) {
		t.Fatal("distinct questions share a key")
	}
	if !strings.HasPrefix(trA.CacheKey(nl), trA.DB.Schema.Name) {
		t.Fatalf("key %q does not carry the schema name", trA.CacheKey(nl))
	}
	// The separator keeps the (schema, question) encoding injective:
	// no crafted question token can collide with another schema's
	// namespace.
	if trA.CacheKey(nl) == trA.DB.Schema.Name+" "+strings.Join(nl, " ") {
		t.Fatal("key must not be a plain space join — that is forgeable by question tokens")
	}
}
