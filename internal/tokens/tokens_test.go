package tokens

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestTokenizeBasics(t *testing.T) {
	cases := map[string][]string{
		"Show me all patients!":         {"show", "me", "all", "patients"},
		"age is 80":                     {"age", "is", "80"},
		"cost of 12.5 dollars":          {"cost", "of", "12.5", "dollars"},
		"what's the name":               {"what's", "the", "name"},
		"  spaced   out  ":              {"spaced", "out"},
		"":                              nil,
		"length_of_stay > 3":            {"length_of_stay", "3"},
		"patients, doctors; and visits": {"patients", "doctors", "and", "visits"},
	}
	for in, want := range cases {
		got := Tokenize(in)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("Tokenize(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestTokenizePlaceholders(t *testing.T) {
	got := Tokenize("with age @patients.age today")
	want := []string{"with", "age", "@PATIENTS.AGE", "today"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
	// Sentence-final period after a placeholder is punctuation.
	got2 := Tokenize("show @JOIN.")
	if len(got2) != 2 || got2[1] != "@JOIN" {
		t.Fatalf("got %v", got2)
	}
	if !IsPlaceholder("@X") || IsPlaceholder("x") {
		t.Fatal("IsPlaceholder broken")
	}
}

func TestVocabSpecials(t *testing.T) {
	v := NewVocab()
	if v.ID(PadToken) != PadID || v.ID(BosToken) != BosID || v.ID(EosToken) != EosID ||
		v.ID(UnkToken) != UnkID || v.ID(SepToken) != SepID {
		t.Fatal("special token ids shifted")
	}
	if v.Size() != 5 {
		t.Fatalf("empty vocab size = %d", v.Size())
	}
}

func TestVocabAddLookup(t *testing.T) {
	v := NewVocab()
	id := v.Add("hello")
	if v.Add("hello") != id {
		t.Fatal("Add should be idempotent")
	}
	if v.ID("hello") != id || v.Word(id) != "hello" {
		t.Fatal("lookup broken")
	}
	if v.ID("missing") != UnkID {
		t.Fatal("unknown word should map to UNK")
	}
	if v.Word(99999) != UnkToken {
		t.Fatal("out-of-range id should be UNK token")
	}
	if !v.Has("hello") || v.Has("missing") {
		t.Fatal("Has broken")
	}
}

func TestEncodeDecode(t *testing.T) {
	v := NewVocab()
	for _, w := range []string{"show", "me", "patients"} {
		v.Add(w)
	}
	toks := []string{"show", "me", "unknownword", "patients"}
	ids := v.Encode(toks)
	back := v.Decode(ids)
	want := []string{"show", "me", UnkToken, "patients"}
	if !reflect.DeepEqual(back, want) {
		t.Fatalf("roundtrip = %v", back)
	}
}

func TestBuildVocab(t *testing.T) {
	seqs := [][]string{
		{"a", "b", "a"},
		{"a", "c"},
	}
	v := BuildVocab(seqs, 1)
	// a (3), b (1), c (1) — a first, then b/c alphabetical.
	if v.Word(5) != "a" || v.Word(6) != "b" || v.Word(7) != "c" {
		t.Fatalf("order = %v", v.Words())
	}
	v2 := BuildVocab(seqs, 2)
	if v2.Has("b") || !v2.Has("a") {
		t.Fatal("minCount filter broken")
	}
}

// Property: known words roundtrip through Encode/Decode.
func TestEncodeDecodeQuick(t *testing.T) {
	v := NewVocab()
	words := []string{"alpha", "beta", "gamma", "delta"}
	for _, w := range words {
		v.Add(w)
	}
	f := func(idx []uint8) bool {
		var toks []string
		for _, i := range idx {
			toks = append(toks, words[int(i)%len(words)])
		}
		return reflect.DeepEqual(v.Decode(v.Encode(toks)), toks) || len(toks) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: tokenization is idempotent on its own output.
func TestTokenizeIdempotentQuick(t *testing.T) {
	inputs := []string{
		"Show me all patients aged 80!",
		"what is the AVG cost of @VISITS.COST?",
		"name, diagnosis & length_of_stay",
	}
	f := func(i uint8) bool {
		toks := Tokenize(inputs[int(i)%len(inputs)])
		again := Tokenize(Detokenize(toks))
		return reflect.DeepEqual(toks, again)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
