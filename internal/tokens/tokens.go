// Package tokens provides the shared natural-language tokenizer and
// vocabulary machinery used by the training pipeline and the neural
// translators, plus the placeholder-token conventions (@TABLE.COL for
// anonymized constants, @JOIN for the join placeholder).
package tokens

import (
	"sort"
	"strings"
	"unicode"
)

// Special vocabulary tokens. Their ids are fixed by NewVocab.
const (
	PadToken = "<pad>"
	BosToken = "<bos>"
	EosToken = "<eos>"
	UnkToken = "<unk>"
	SepToken = "<sep>" // separates NL from schema tokens in model input
)

// Fixed ids of the special tokens.
const (
	PadID = 0
	BosID = 1
	EosID = 2
	UnkID = 3
	SepID = 4
)

// IsPlaceholder reports whether the token is an anonymized-constant or
// join placeholder (leading '@').
func IsPlaceholder(tok string) bool {
	return strings.HasPrefix(tok, "@")
}

// Tokenize splits natural-language text into lower-case word tokens.
// Placeholders (@TABLE.COL) survive as single tokens with their case
// preserved (placeholder names are canonically upper-case); other
// punctuation separates tokens and is dropped, except that numbers stay
// intact (including decimals).
func Tokenize(text string) []string {
	var out []string
	runes := []rune(text)
	n := len(runes)
	i := 0
	for i < n {
		r := runes[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case r == '@':
			start := i
			i++
			for i < n && (runes[i] == '.' || runes[i] == '_' || unicode.IsLetter(runes[i]) || unicode.IsDigit(runes[i])) {
				i++
			}
			tok := string(runes[start:i])
			// Trim a trailing '.' that is sentence punctuation, not a
			// qualifier separator.
			tok = strings.TrimRight(tok, ".")
			if tok != "@" {
				out = append(out, strings.ToUpper(tok[1:]))
				out[len(out)-1] = "@" + out[len(out)-1]
			}
		case unicode.IsLetter(r):
			start := i
			for i < n && (runes[i] == '_' || runes[i] == '\'' || unicode.IsLetter(runes[i]) || unicode.IsDigit(runes[i])) {
				i++
			}
			w := strings.Trim(string(runes[start:i]), "'")
			if w != "" {
				out = append(out, strings.ToLower(w))
			}
		case unicode.IsDigit(r):
			start := i
			for i < n && (unicode.IsDigit(runes[i]) || (runes[i] == '.' && i+1 < n && unicode.IsDigit(runes[i+1]))) {
				i++
			}
			out = append(out, string(runes[start:i]))
		default:
			i++ // punctuation
		}
	}
	return out
}

// Detokenize joins tokens back into a display string.
func Detokenize(toks []string) string {
	return strings.Join(toks, " ")
}

// Vocab is a bidirectional token-id mapping with the five special
// tokens preinstalled at fixed ids.
type Vocab struct {
	ids   map[string]int
	words []string
}

// NewVocab returns a vocabulary containing only the special tokens.
func NewVocab() *Vocab {
	v := &Vocab{ids: map[string]int{}}
	for _, t := range []string{PadToken, BosToken, EosToken, UnkToken, SepToken} {
		v.Add(t)
	}
	return v
}

// Add inserts the token if absent and returns its id.
func (v *Vocab) Add(tok string) int {
	if id, ok := v.ids[tok]; ok {
		return id
	}
	id := len(v.words)
	v.ids[tok] = id
	v.words = append(v.words, tok)
	return id
}

// ID returns the token's id, or UnkID for unknown tokens.
func (v *Vocab) ID(tok string) int {
	if id, ok := v.ids[tok]; ok {
		return id
	}
	return UnkID
}

// Has reports whether the token is in the vocabulary.
func (v *Vocab) Has(tok string) bool {
	_, ok := v.ids[tok]
	return ok
}

// Word returns the token for an id (UnkToken for out-of-range ids).
func (v *Vocab) Word(id int) string {
	if id < 0 || id >= len(v.words) {
		return UnkToken
	}
	return v.words[id]
}

// Size is the number of tokens, including specials.
func (v *Vocab) Size() int { return len(v.words) }

// Encode maps tokens to ids (unknowns become UnkID).
func (v *Vocab) Encode(toks []string) []int {
	out := make([]int, len(toks))
	for i, t := range toks {
		out[i] = v.ID(t)
	}
	return out
}

// Decode maps ids back to tokens.
func (v *Vocab) Decode(ids []int) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = v.Word(id)
	}
	return out
}

// Words returns a copy of the vocabulary in id order.
func (v *Vocab) Words() []string {
	return append([]string(nil), v.words...)
}

// BuildVocab constructs a vocabulary from token sequences, keeping
// tokens with at least minCount occurrences. Token insertion order is
// deterministic (by descending count, then lexicographic).
func BuildVocab(seqs [][]string, minCount int) *Vocab {
	counts := map[string]int{}
	for _, seq := range seqs {
		for _, t := range seq {
			counts[t]++
		}
	}
	type wc struct {
		w string
		c int
	}
	var list []wc
	for w, c := range counts {
		if c >= minCount {
			list = append(list, wc{w, c})
		}
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].c != list[j].c {
			return list[i].c > list[j].c
		}
		return list[i].w < list[j].w
	})
	v := NewVocab()
	for _, e := range list {
		v.Add(e.w)
	}
	return v
}
