package core

import (
	"strings"
	"testing"

	"repro/internal/schema"
	"repro/internal/sqlast"
	"repro/internal/templates"
)

func miniSchema() *schema.Schema {
	return &schema.Schema{
		Name: "hospital",
		Tables: []*schema.Table{
			{Name: "patients", Readable: "patient", Columns: []*schema.Column{
				{Name: "id", Type: schema.Number, PrimaryKey: true},
				{Name: "name", Type: schema.Text},
				{Name: "age", Type: schema.Number, Domain: schema.DomainAge},
				{Name: "diagnosis", Type: schema.Text},
			}},
			{Name: "visits", Readable: "visit", Columns: []*schema.Column{
				{Name: "id", Type: schema.Number, PrimaryKey: true},
				{Name: "patient_id", Type: schema.Number},
				{Name: "cost", Type: schema.Number, Domain: schema.DomainMoney},
			}},
		},
		ForeignKeys: []schema.ForeignKey{
			{FromTable: "visits", FromColumn: "patient_id", ToTable: "patients", ToColumn: "id"},
		},
	}
}

func TestPipelineProducesValidatedPairs(t *testing.T) {
	p := New(miniSchema(), DefaultParams(), 7)
	pairs := p.Run()
	if len(pairs) < 1000 {
		t.Fatalf("pipeline produced only %d pairs", len(pairs))
	}
	for _, pr := range pairs {
		if _, err := sqlast.Parse(pr.SQL); err != nil {
			t.Fatalf("bad SQL %q: %v", pr.SQL, err)
		}
	}
}

func TestPipelineLemmatizes(t *testing.T) {
	p := New(miniSchema(), DefaultParams(), 7)
	pairs := p.Run()
	// Lemmatized corpora normalize plurals: "patients" -> "patient".
	for _, pr := range pairs {
		for _, tok := range strings.Fields(pr.NL) {
			if tok == "patients" || tok == "visits" {
				t.Fatalf("unlemmatized token %q in %q", tok, pr.NL)
			}
		}
	}
	// Dropping the lemma stage from the composition keeps surface forms.
	raw := p.Graph(p.GenerateStage(), p.AugmentStage(), DedupStage()).Collect()
	found := false
	for _, pr := range raw {
		if strings.Contains(" "+pr.NL+" ", " patients ") {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("dropping the lemma stage should keep surface forms")
	}
}

func TestPipelineAugments(t *testing.T) {
	on := DefaultParams()
	off := DefaultParams()
	off.Augmentation.SizePara = 0
	off.Augmentation.NumPara = 0
	off.Augmentation.NumMissing = 0
	off.Augmentation.RandDropP = 0
	nOn := len(New(miniSchema(), on, 7).Run())
	nOff := len(New(miniSchema(), off, 7).Run())
	if nOn <= nOff {
		t.Fatalf("augmentation should grow the corpus: on=%d off=%d", nOn, nOff)
	}
}

func TestPipelineDeterminism(t *testing.T) {
	a := New(miniSchema(), DefaultParams(), 3).Run()
	b := New(miniSchema(), DefaultParams(), 3).Run()
	if len(a) != len(b) {
		t.Fatalf("sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pair %d differs", i)
		}
	}
}

func TestLemmatizeNL(t *testing.T) {
	got := LemmatizeNL("Show me the names of all patients with age @PATIENTS.AGE!")
	want := "show me the name of all patient with age @PATIENTS.AGE"
	if got != want {
		t.Fatalf("LemmatizeNL = %q, want %q", got, want)
	}
}

func TestTemplateFraction(t *testing.T) {
	all := TemplateFraction(1.0, 1)
	if len(all) != templates.Count() {
		t.Fatalf("fraction 1.0 = %d templates", len(all))
	}
	half := TemplateFraction(0.5, 1)
	if len(half) != (templates.Count()+1)/2 {
		t.Fatalf("fraction 0.5 = %d templates", len(half))
	}
	none := TemplateFraction(0, 1)
	if len(none) != 0 {
		t.Fatalf("fraction 0 = %d templates", len(none))
	}
	// Deterministic per seed, different across seeds.
	again := TemplateFraction(0.5, 1)
	for i := range half {
		if half[i].ID != again[i].ID {
			t.Fatal("fraction selection not deterministic")
		}
	}
	other := TemplateFraction(0.5, 2)
	diff := false
	for i := range half {
		if half[i].ID != other[i].ID {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds should select different subsets")
	}
}

func TestPipelineWithTemplateSubset(t *testing.T) {
	p := New(miniSchema(), DefaultParams(), 7)
	p.Templates = TemplateFraction(0.1, 9)
	subset := p.Run()
	fullP := New(miniSchema(), DefaultParams(), 7)
	full := fullP.Run()
	if len(subset) >= len(full) {
		t.Fatalf("10%% of templates should yield fewer pairs: %d vs %d", len(subset), len(full))
	}
	allowed := map[string]bool{}
	for _, tpl := range p.Templates {
		allowed[tpl.ID] = true
	}
	for _, pr := range subset {
		if !allowed[pr.TemplateID] {
			t.Fatalf("pair from excluded template %s", pr.TemplateID)
		}
	}
}
