// Package core implements the DBPal training pipeline — the paper's
// primary contribution. Given only a database schema (plus the
// reusable seed templates and slot-fill lexicons), it synthesizes a
// training corpus of NL–SQL pairs from composable streaming stages
// (internal/pipeline):
//
//  1. generate   balanced template instantiation (internal/generator),
//  2. augment    automatic paraphrasing, word dropout, and
//     domain-aware comparatives (internal/augment),
//  3. lemmatize  normalization of word forms (internal/lemma),
//  4. dedup      drop exact (NL, SQL) duplicates that survive
//     lemmatization (distinct surface forms can collapse).
//
// The pipeline is deterministic given its seed and worker-invariant:
// stages stream pairs through bounded channels, so corpora of any size
// generate in constant memory, and the default composition reproduces
// the historical monolithic generate→augment→lemmatize pass
// byte-for-byte (see the golden equivalence test). It is fully
// pluggable in the paper's sense twice over: the produced pairs feed
// any Translator implementation (internal/models), and the stage list
// itself can be edited — ablated, reordered, extended, observed — by
// any caller without touching this package.
package core

import (
	"math/rand"
	"strings"

	"repro/internal/augment"
	"repro/internal/generator"
	"repro/internal/lemma"
	"repro/internal/pipeline"
	"repro/internal/schema"
	"repro/internal/templates"
	"repro/internal/tokens"
)

// Pair is one training example as emitted by the pipeline.
type Pair = generator.Pair

// Params collects every tunable knob of the data-generation procedure
// (the paper's Table 1): instantiation parameters and augmentation
// parameters. These are the hyperparameters the optimization procedure
// (internal/hyperopt) searches over. Structural choices that are not
// Table-1 knobs — lemmatization on/off, dedup on/off — are expressed
// as stage-list edits instead (see Stages).
type Params struct {
	Instantiation generator.Params
	Augmentation  augment.Params
}

// DefaultParams returns the shipped defaults, empirically determined
// to perform well across schemas (paper §3.2.1).
func DefaultParams() Params {
	return Params{
		Instantiation: generator.DefaultParams(),
		Augmentation:  augment.DefaultParams(),
	}
}

// Pipeline is a configured DBPal training-data pipeline for one
// schema. It composes single-use stages over the streaming substrate;
// every Run/Stream builds fresh stages, so one Pipeline value can be
// run repeatedly and always reproduces the same corpus.
type Pipeline struct {
	Schema *schema.Schema
	Params Params
	Seed   int64
	// Templates restricts the seed library when non-nil (used by the
	// Figure-3 seed-template-fraction experiment).
	Templates []templates.Template
	// Workers bounds the pool of parallel stages (0 = all cores). The
	// corpus is bit-identical at any value.
	Workers int
	// Cache, when non-nil, memoizes the generate stage's output keyed
	// by (schema, instantiation params, template set, seed) — the
	// hyperopt regime, where many trials share instantiation settings
	// and differ only downstream.
	Cache *GenCache

	stats []pipeline.Stats
}

// New returns a pipeline with the given parameters.
func New(s *schema.Schema, p Params, seed int64) *Pipeline {
	return &Pipeline{Schema: s, Params: p, Seed: seed}
}

// GenerateStage returns the balanced template-instantiation source
// stage (memoized through Cache when one is configured).
func (p *Pipeline) GenerateStage() pipeline.Stage {
	if p.Cache != nil {
		return p.Cache.stage(p)
	}
	return pipeline.Source(generator.StageGenerate, func(emit func(Pair)) {
		p.newGenerator().Stream(emit)
	})
}

func (p *Pipeline) newGenerator() *generator.Generator {
	if p.Templates != nil {
		return generator.NewWithTemplates(p.Schema, p.Params.Instantiation, p.Seed, p.Templates)
	}
	return generator.New(p.Schema, p.Params.Instantiation, p.Seed)
}

// AugmentStage returns the paraphrase/dropout/comparative expansion
// stage. It is sequential and stateful (one RNG stream in arrival
// order), preserving the historical augmenter trajectory exactly.
func (p *Pipeline) AugmentStage() pipeline.Stage {
	a := augment.New(p.Schema, p.Params.Augmentation, p.Seed+1)
	return pipeline.FuncWithCounters(augment.StageAugment, a.Step, a.Counters)
}

// LemmaStage returns the word-form normalization stage — a pure
// per-pair map, parallelized across the worker pool with
// order-preserving emission.
func LemmaStage() pipeline.Stage {
	return pipeline.Map("lemmatize", func(q Pair) Pair {
		q.NL = LemmatizeNL(q.NL)
		return q
	})
}

// DedupStage returns the exact-duplicate filter (first occurrence
// wins, drops counted as "dedup_hits"). The augmenter dedups its own
// output, but lemmatization can collapse distinct surface forms into
// identical (NL, SQL) pairs afterwards; this stage keeps the final
// corpus duplicate-free.
func DedupStage() pipeline.Stage { return pipeline.Dedup() }

// Stages returns the default composition: generate → augment →
// lemmatize → dedup. The slice is freshly built (stages are
// single-use) and free to edit before handing it to Graph — drop the
// augment stage for a no-augmentation ablation, drop lemmatize to keep
// surface forms, insert a Tee to observe the stream.
func (p *Pipeline) Stages() []pipeline.Stage {
	return []pipeline.Stage{p.GenerateStage(), p.AugmentStage(), LemmaStage(), DedupStage()}
}

// Graph wires a stage list (the default composition when none is
// given) into a runnable graph bound to the pipeline's worker budget.
func (p *Pipeline) Graph(stages ...pipeline.Stage) *pipeline.Graph {
	if len(stages) == 0 {
		stages = p.Stages()
	}
	return pipeline.New(p.Workers, stages...)
}

// Run executes the default composition and returns the training
// pairs. Stats holds the per-stage snapshot afterwards.
func (p *Pipeline) Run() []Pair {
	g := p.Graph()
	out := g.Collect()
	p.stats = g.Stats()
	return out
}

// Stream executes the default composition, handing each pair to emit
// in corpus order without materializing the corpus — constant memory
// at any size. It returns the first error emit returns (after
// draining the stream).
func (p *Pipeline) Stream(emit func(Pair) error) error {
	g := p.Graph()
	err := g.Stream(emit)
	p.stats = g.Stats()
	return err
}

// Stats returns the per-stage instrumentation snapshot (pairs in/out,
// wall time, dedup hits, per-origin variant counts) of the last Run or
// Stream. Nil before the first run. For a custom stage list built via
// Graph, read the graph's own Stats instead.
func (p *Pipeline) Stats() []pipeline.Stats { return p.stats }

// LemmatizeNL tokenizes and lemmatizes an NL string the same way for
// training data and runtime input (paper §2.2.3 / §4.1).
func LemmatizeNL(nl string) string {
	toks := tokens.Tokenize(nl)
	toks = lemma.LemmatizeAll(toks)
	return strings.Join(toks, " ")
}

// TemplateFraction returns a deterministic random subset containing
// the given fraction of the seed templates (selected before
// instantiation, as in the paper's Figure-3 experiment).
func TemplateFraction(fraction float64, seed int64) []templates.Template {
	all := templates.All()
	if fraction >= 1 {
		return all
	}
	n := int(fraction*float64(len(all)) + 0.5)
	if n <= 0 {
		return []templates.Template{}
	}
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(len(all))[:n]
	out := make([]templates.Template, 0, n)
	for _, i := range idx {
		out = append(out, all[i])
	}
	return out
}
