// Package core implements the DBPal training pipeline — the paper's
// primary contribution. Given only a database schema (plus the
// reusable seed templates and slot-fill lexicons), it synthesizes a
// training corpus of NL–SQL pairs in three steps:
//
//  1. Generator: balanced template instantiation (internal/generator),
//  2. Augmentation: automatic paraphrasing, word dropout, and
//     domain-aware comparatives (internal/augment),
//  3. Lemmatizer: normalization of word forms (internal/lemma).
//
// The pipeline is deterministic given its seed, and fully pluggable:
// the produced pairs feed any Translator implementation (see
// internal/models).
package core

import (
	"math/rand"
	"strings"

	"repro/internal/augment"
	"repro/internal/generator"
	"repro/internal/lemma"
	"repro/internal/schema"
	"repro/internal/templates"
	"repro/internal/tokens"
)

// Pair is one training example as emitted by the pipeline.
type Pair = generator.Pair

// Params collects every tunable knob of the data-generation procedure
// (the paper's Table 1): instantiation parameters and augmentation
// parameters. These are the hyperparameters the optimization procedure
// (internal/hyperopt) searches over.
type Params struct {
	Instantiation generator.Params
	Augmentation  augment.Params
	// Lemmatize controls the final normalization step (on by default;
	// exposed for the ablation benchmark).
	Lemmatize bool
}

// DefaultParams returns the shipped defaults, empirically determined
// to perform well across schemas (paper §3.2.1).
func DefaultParams() Params {
	return Params{
		Instantiation: generator.DefaultParams(),
		Augmentation:  augment.DefaultParams(),
		Lemmatize:     true,
	}
}

// Pipeline is a configured DBPal training-data pipeline for one
// schema.
type Pipeline struct {
	Schema *schema.Schema
	Params Params
	Seed   int64
	// Templates restricts the seed library when non-nil (used by the
	// Figure-3 seed-template-fraction experiment).
	Templates []templates.Template
}

// New returns a pipeline with the given parameters.
func New(s *schema.Schema, p Params, seed int64) *Pipeline {
	return &Pipeline{Schema: s, Params: p, Seed: seed}
}

// Run executes generate -> augment -> lemmatize and returns the
// training pairs.
func (p *Pipeline) Run() []Pair {
	var g *generator.Generator
	if p.Templates != nil {
		g = generator.NewWithTemplates(p.Schema, p.Params.Instantiation, p.Seed, p.Templates)
	} else {
		g = generator.New(p.Schema, p.Params.Instantiation, p.Seed)
	}
	pairs := g.Generate()
	a := augment.New(p.Schema, p.Params.Augmentation, p.Seed+1)
	pairs = a.Augment(pairs)
	if p.Params.Lemmatize {
		for i := range pairs {
			pairs[i].NL = LemmatizeNL(pairs[i].NL)
		}
	}
	return pairs
}

// LemmatizeNL tokenizes and lemmatizes an NL string the same way for
// training data and runtime input (paper §2.2.3 / §4.1).
func LemmatizeNL(nl string) string {
	toks := tokens.Tokenize(nl)
	toks = lemma.LemmatizeAll(toks)
	return strings.Join(toks, " ")
}

// TemplateFraction returns a deterministic random subset containing
// the given fraction of the seed templates (selected before
// instantiation, as in the paper's Figure-3 experiment).
func TemplateFraction(fraction float64, seed int64) []templates.Template {
	all := templates.All()
	if fraction >= 1 {
		return all
	}
	n := int(fraction*float64(len(all)) + 0.5)
	if n <= 0 {
		return []templates.Template{}
	}
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(len(all))[:n]
	out := make([]templates.Template, 0, n)
	for _, i := range idx {
		out = append(out, all[i])
	}
	return out
}
