package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/augment"
	"repro/internal/generator"
	"repro/internal/schema"
)

// monolithRun is the pre-stage-refactor pipeline, frozen verbatim: the
// generator's batch output, fed through one batch augmenter, then
// lemmatized in place. The golden tests below pin the stage graph to
// this trajectory.
func monolithRun(s *schema.Schema, p Params, seed int64) []Pair {
	gen := generator.New(s, p.Instantiation, seed)
	pairs := gen.Generate()
	aug := augment.New(s, p.Augmentation, seed+1)
	pairs = aug.Augment(pairs)
	for i := range pairs {
		pairs[i].NL = LemmatizeNL(pairs[i].NL)
	}
	return pairs
}

// stableDedup drops exact (NL, SQL) duplicates, first occurrence wins
// — the corpus the monolith *should* have produced (lemmatization can
// collapse distinct surface forms into identical pairs).
func stableDedup(pairs []Pair) []Pair {
	seen := map[string]bool{}
	out := make([]Pair, 0, len(pairs))
	for _, p := range pairs {
		if seen[p.Key()] {
			continue
		}
		seen[p.Key()] = true
		out = append(out, p)
	}
	return out
}

// tsv renders the text content of a corpus (not the provenance fields,
// which the monolith-era output did not carry).
func tsv(pairs []Pair) string {
	var b strings.Builder
	for _, p := range pairs {
		fmt.Fprintf(&b, "%s\t%s\t%s\t%s\n", p.NL, p.SQL, p.TemplateID, p.Class)
	}
	return b.String()
}

// TestStageEquivalenceGolden is the refactor's acceptance gate: the
// stage graph generate → augment → lemmatize reproduces the frozen
// monolithic pipeline byte-for-byte at any worker count, and the
// default composition (which appends the dedup stage — the one
// deliberate behavior fix of the refactor) equals a stable
// first-occurrence dedup of the monolith's output.
func TestStageEquivalenceGolden(t *testing.T) {
	s := miniSchema()
	for _, seed := range []int64{3, 11} {
		want := monolithRun(s, DefaultParams(), seed)
		wantTSV := tsv(want)
		wantDeduped := tsv(stableDedup(want))
		for _, workers := range []int{1, 3} {
			p := New(s, DefaultParams(), seed)
			p.Workers = workers
			chain := p.Graph(p.GenerateStage(), p.AugmentStage(), LemmaStage()).Collect()
			if got := tsv(chain); got != wantTSV {
				t.Fatalf("seed=%d workers=%d: stage chain diverges from the monolith (%d vs %d pairs)",
					seed, workers, len(chain), len(want))
			}
			run := p.Run()
			if got := tsv(run); got != wantDeduped {
				t.Fatalf("seed=%d workers=%d: default Run diverges from deduped monolith (%d vs %d pairs)",
					seed, workers, len(run), len(stableDedup(want)))
			}
		}
	}
}

// TestPipelineWorkerInvariance asserts full structural equality
// (provenance included) across worker counts.
func TestPipelineWorkerInvariance(t *testing.T) {
	s := miniSchema()
	base := New(s, DefaultParams(), 7)
	base.Workers = 1
	want := base.Run()
	for _, workers := range []int{2, 5, 8} {
		p := New(s, DefaultParams(), 7)
		p.Workers = workers
		got := p.Run()
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d pairs, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: pair %d differs: %+v vs %+v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestDedupStageRegression pins the dedup fix: the default corpus
// contains no exact (NL, SQL) duplicates, and the drop count surfaces
// in the stage's Stats snapshot and accounts exactly for the size
// difference against the dedup-free chain.
func TestDedupStageRegression(t *testing.T) {
	s := miniSchema()
	p := New(s, DefaultParams(), 3)
	run := p.Run()
	seen := map[string]bool{}
	for _, pr := range run {
		if seen[pr.Key()] {
			t.Fatalf("duplicate pair survived dedup: %q / %q", pr.NL, pr.SQL)
		}
		seen[pr.Key()] = true
	}
	stats := p.Stats()
	last := stats[len(stats)-1]
	if last.Stage != "dedup" {
		t.Fatalf("last stage = %q, want dedup", last.Stage)
	}
	hits, ok := last.Extra["dedup_hits"]
	if !ok {
		t.Fatal("dedup stage reported no dedup_hits counter")
	}
	p2 := New(s, DefaultParams(), 3)
	chain := p2.Graph(p2.GenerateStage(), p2.AugmentStage(), LemmaStage()).Collect()
	if int64(len(chain))-int64(len(run)) != hits {
		t.Fatalf("dedup_hits = %d but chain-run size delta = %d", hits, len(chain)-len(run))
	}
}

// TestPipelineProvenance asserts every pair carries its originating
// stage and variant origin.
func TestPipelineProvenance(t *testing.T) {
	pairs := New(miniSchema(), DefaultParams(), 5).Run()
	counts := map[string]int{}
	for _, p := range pairs {
		switch {
		case p.Stage == generator.StageGenerate && p.Origin == generator.OriginTemplate:
		case p.Stage == augment.StageAugment && (p.Origin == augment.OriginParaphrase ||
			p.Origin == augment.OriginDropout || p.Origin == augment.OriginComparative):
		default:
			t.Fatalf("pair with invalid provenance %q/%q: %q", p.Stage, p.Origin, p.NL)
		}
		counts[p.Origin]++
	}
	for _, origin := range []string{generator.OriginTemplate, augment.OriginParaphrase, augment.OriginDropout} {
		if counts[origin] == 0 {
			t.Fatalf("no pairs with origin %q (distribution: %v)", origin, counts)
		}
	}
}

// TestGenCacheReplay asserts memoized generation is byte-identical to
// live generation and that hit/miss accounting works, including across
// pipelines that differ only in augmentation parameters (the hyperopt
// reuse case).
func TestGenCacheReplay(t *testing.T) {
	s := miniSchema()
	cache := NewGenCache(0)

	fresh := New(s, DefaultParams(), 9)
	want := fresh.Run()

	cold := New(s, DefaultParams(), 9)
	cold.Cache = cache
	got := cold.Run()

	altered := DefaultParams()
	altered.Augmentation.RandDropP = 0 // different downstream, same generation key
	warm := New(s, altered, 9)
	warm.Cache = cache
	warm.Run()

	warmSame := New(s, DefaultParams(), 9)
	warmSame.Cache = cache
	replayed := warmSame.Run()

	if len(got) != len(want) {
		t.Fatalf("cached cold run: %d pairs, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("cached cold run diverges at pair %d", i)
		}
	}
	for i := range replayed {
		if replayed[i] != want[i] {
			t.Fatalf("cache replay diverges at pair %d", i)
		}
	}
	hits, misses, entries := cache.CacheStats()
	if misses != 1 || hits != 2 || entries != 1 {
		t.Fatalf("cache stats = %d hits, %d misses, %d entries; want 2/1/1", hits, misses, entries)
	}
	stats := warmSame.Stats()
	if stats[0].Extra["cache_hit"] != 1 {
		t.Fatalf("generate stage did not report cache_hit: %+v", stats[0])
	}
}
