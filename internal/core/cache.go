package core

import (
	"strings"
	"sync"

	"repro/internal/generator"
	"repro/internal/pipeline"
)

// GenCache memoizes the generate stage's output across pipeline runs,
// keyed by everything that determines it: schema name, instantiation
// parameters, template subset, and seed. The augmentation parameters
// are deliberately not part of the key — that is the point: a
// hyperopt trial that varies only augmentation knobs (grid-search
// axes 6–9, the ablation variants, surrogate refinements) replays the
// cached instantiation instead of re-running the generator.
//
// Replay is byte-identical to live generation (the generator is
// deterministic given the key), so caching never changes a corpus.
// A GenCache is safe for concurrent use by parallel trials; memory is
// bounded by Limit entries (first-come, no eviction — recurring keys
// are the early ones in every search pattern this repo runs).
type GenCache struct {
	mu      sync.Mutex
	limit   int
	entries map[genKey][]Pair
	hits    int64
	misses  int64
}

type genKey struct {
	schema string
	params generator.Params
	seed   int64
	tpls   string // template-subset fingerprint; "" = full library
}

// DefaultGenCacheLimit bounds a cache built with NewGenCache(0).
const DefaultGenCacheLimit = 32

// NewGenCache returns a cache holding at most limit generation
// outputs (limit <= 0 selects DefaultGenCacheLimit).
func NewGenCache(limit int) *GenCache {
	if limit <= 0 {
		limit = DefaultGenCacheLimit
	}
	return &GenCache{limit: limit, entries: map[genKey][]Pair{}}
}

// CacheStats reports hits, misses, and resident entries so far.
func (c *GenCache) CacheStats() (hits, misses int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.entries)
}

func (c *GenCache) key(p *Pipeline) genKey {
	k := genKey{schema: p.Schema.Name, params: p.Params.Instantiation, seed: p.Seed}
	if p.Templates != nil {
		ids := make([]string, len(p.Templates))
		for i, t := range p.Templates {
			ids[i] = t.ID
		}
		k.tpls = "#" + strings.Join(ids, ",")
	}
	return k
}

// stage returns a generate source stage that replays the cached
// output when the key is resident and otherwise generates live while
// recording. The stage reports a "cache_hit" counter (0 or 1) in its
// Stats snapshot.
func (c *GenCache) stage(p *Pipeline) pipeline.Stage {
	key := c.key(p)
	var hit int64
	return pipeline.SourceWithCounters(generator.StageGenerate,
		func(emit func(Pair)) {
			c.mu.Lock()
			cached, ok := c.entries[key]
			if ok {
				c.hits++
			} else {
				c.misses++
			}
			c.mu.Unlock()
			if ok {
				hit = 1
				for _, q := range cached {
					emit(q)
				}
				return
			}
			var rec []Pair
			p.newGenerator().Stream(func(q Pair) {
				rec = append(rec, q)
				emit(q)
			})
			c.mu.Lock()
			if _, dup := c.entries[key]; !dup && len(c.entries) < c.limit {
				c.entries[key] = rec
			}
			c.mu.Unlock()
		},
		func() map[string]int64 { return map[string]int64{"cache_hit": hit} })
}
