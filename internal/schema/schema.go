// Package schema models relational database schemas for the DBPal
// pipeline: tables, typed columns, primary and foreign keys, and the
// human-readable annotations (readable names and synonyms) that the
// training-data generator uses to verbalize schema elements.
//
// The package also exposes the join graph induced by foreign keys and a
// shortest-join-path search, which the runtime post-processor uses to
// resolve the @JOIN placeholder and to repair FROM clauses.
package schema

import (
	"fmt"
	"sort"
	"strings"
)

// ColumnType is the logical type of a column. The engine and the
// generator only need to distinguish text from numbers.
type ColumnType int

const (
	// Text columns hold strings (names, categories, diagnoses...).
	Text ColumnType = iota
	// Number columns hold numeric values (ages, populations...).
	Number
)

// String returns the SQL-ish spelling of the type.
func (t ColumnType) String() string {
	switch t {
	case Text:
		return "TEXT"
	case Number:
		return "NUMBER"
	default:
		return fmt.Sprintf("ColumnType(%d)", int(t))
	}
}

// Domain describes the semantic domain of a column. The augmenter uses
// it to choose domain-specific comparative phrases (e.g. "older than"
// for an age column instead of the generic "greater than").
type Domain string

// Common column domains understood by the comparative/superlative
// dictionaries in internal/lexicon.
const (
	DomainNone     Domain = ""
	DomainAge      Domain = "age"
	DomainLength   Domain = "length"
	DomainHeight   Domain = "height"
	DomainArea     Domain = "area"
	DomainCount    Domain = "count"
	DomainMoney    Domain = "money"
	DomainDuration Domain = "duration"
	DomainWeight   Domain = "weight"
)

// Column is a typed, annotated schema column.
type Column struct {
	// Name is the physical column name as it appears in SQL.
	Name string
	// Type is the logical column type.
	Type ColumnType
	// Readable is the human-readable name used in generated NL. If
	// empty, Name with underscores replaced by spaces is used.
	Readable string
	// Synonyms are additional NL surface forms for the column
	// ("illness" for disease). They seed the slot-fill lexicons.
	Synonyms []string
	// Domain tags the semantic domain for comparative phrasing.
	Domain Domain
	// PrimaryKey marks the column as (part of) the table's key.
	PrimaryKey bool
}

// ReadableName returns the annotated readable name, falling back to the
// physical name with underscores replaced by spaces.
func (c *Column) ReadableName() string {
	if c.Readable != "" {
		return c.Readable
	}
	return strings.ReplaceAll(c.Name, "_", " ")
}

// SurfaceForms returns every NL form for the column: readable name
// first, then synonyms.
func (c *Column) SurfaceForms() []string {
	forms := []string{c.ReadableName()}
	forms = append(forms, c.Synonyms...)
	return forms
}

// Table is a named collection of columns.
type Table struct {
	// Name is the physical table name.
	Name string
	// Readable is the human-readable (typically singular) noun for a
	// row of the table, e.g. "patient" for table "patients".
	Readable string
	// Synonyms are additional NL nouns for the table.
	Synonyms []string
	// Columns in declaration order.
	Columns []*Column
}

// ReadableName returns the annotated readable name for the table.
func (t *Table) ReadableName() string {
	if t.Readable != "" {
		return t.Readable
	}
	return strings.ReplaceAll(t.Name, "_", " ")
}

// SurfaceForms returns every NL form for the table.
func (t *Table) SurfaceForms() []string {
	forms := []string{t.ReadableName()}
	forms = append(forms, t.Synonyms...)
	return forms
}

// Column returns the column with the given physical name, or nil.
func (t *Table) Column(name string) *Column {
	for _, c := range t.Columns {
		if strings.EqualFold(c.Name, name) {
			return c
		}
	}
	return nil
}

// NumberColumns returns the numeric columns of the table.
func (t *Table) NumberColumns() []*Column {
	var out []*Column
	for _, c := range t.Columns {
		if c.Type == Number {
			out = append(out, c)
		}
	}
	return out
}

// TextColumns returns the text columns of the table.
func (t *Table) TextColumns() []*Column {
	var out []*Column
	for _, c := range t.Columns {
		if c.Type == Text {
			out = append(out, c)
		}
	}
	return out
}

// ForeignKey links a column of one table to a column of another,
// defining an edge in the join graph.
type ForeignKey struct {
	FromTable  string
	FromColumn string
	ToTable    string
	ToColumn   string
}

// Schema is a complete annotated database schema.
type Schema struct {
	// Name identifies the schema (and, loosely, its domain).
	Name string
	// Tables in declaration order.
	Tables []*Table
	// ForeignKeys define the join graph.
	ForeignKeys []ForeignKey
}

// Table returns the table with the given physical name, or nil.
func (s *Schema) Table(name string) *Table {
	for _, t := range s.Tables {
		if strings.EqualFold(t.Name, name) {
			return t
		}
	}
	return nil
}

// Column resolves "table.column". It returns nil if either part is
// unknown.
func (s *Schema) Column(table, column string) *Column {
	t := s.Table(table)
	if t == nil {
		return nil
	}
	return t.Column(column)
}

// TablesWithColumn returns the names of all tables containing a column
// with the given name, in schema declaration order.
func (s *Schema) TablesWithColumn(column string) []string {
	var out []string
	for _, t := range s.Tables {
		if t.Column(column) != nil {
			out = append(out, t.Name)
		}
	}
	return out
}

// Validate checks internal consistency: unique table names, unique
// column names per table, and foreign keys that reference existing
// columns. It returns the first problem found.
func (s *Schema) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("schema has no name")
	}
	if len(s.Tables) == 0 {
		return fmt.Errorf("schema %q has no tables", s.Name)
	}
	seenTables := map[string]bool{}
	for _, t := range s.Tables {
		lower := strings.ToLower(t.Name)
		if t.Name == "" {
			return fmt.Errorf("schema %q: table with empty name", s.Name)
		}
		if seenTables[lower] {
			return fmt.Errorf("schema %q: duplicate table %q", s.Name, t.Name)
		}
		seenTables[lower] = true
		if len(t.Columns) == 0 {
			return fmt.Errorf("schema %q: table %q has no columns", s.Name, t.Name)
		}
		seenCols := map[string]bool{}
		for _, c := range t.Columns {
			lc := strings.ToLower(c.Name)
			if c.Name == "" {
				return fmt.Errorf("schema %q: table %q has a column with empty name", s.Name, t.Name)
			}
			if seenCols[lc] {
				return fmt.Errorf("schema %q: table %q: duplicate column %q", s.Name, t.Name, c.Name)
			}
			seenCols[lc] = true
		}
	}
	for _, fk := range s.ForeignKeys {
		if s.Column(fk.FromTable, fk.FromColumn) == nil {
			return fmt.Errorf("schema %q: foreign key references unknown column %s.%s",
				s.Name, fk.FromTable, fk.FromColumn)
		}
		if s.Column(fk.ToTable, fk.ToColumn) == nil {
			return fmt.Errorf("schema %q: foreign key references unknown column %s.%s",
				s.Name, fk.ToTable, fk.ToColumn)
		}
	}
	return nil
}

// JoinEdge is one hop in a join path: join left.LeftColumn with
// right.RightColumn.
type JoinEdge struct {
	LeftTable   string
	LeftColumn  string
	RightTable  string
	RightColumn string
}

// String renders the edge as a SQL join condition.
func (e JoinEdge) String() string {
	return fmt.Sprintf("%s.%s = %s.%s", e.LeftTable, e.LeftColumn, e.RightTable, e.RightColumn)
}

// neighbors builds the adjacency list of the join graph. Edges are
// bidirectional: a foreign key joins both ways.
func (s *Schema) neighbors() map[string][]JoinEdge {
	adj := map[string][]JoinEdge{}
	for _, fk := range s.ForeignKeys {
		adj[strings.ToLower(fk.FromTable)] = append(adj[strings.ToLower(fk.FromTable)], JoinEdge{
			LeftTable: fk.FromTable, LeftColumn: fk.FromColumn,
			RightTable: fk.ToTable, RightColumn: fk.ToColumn,
		})
		adj[strings.ToLower(fk.ToTable)] = append(adj[strings.ToLower(fk.ToTable)], JoinEdge{
			LeftTable: fk.ToTable, LeftColumn: fk.ToColumn,
			RightTable: fk.FromTable, RightColumn: fk.FromColumn,
		})
	}
	return adj
}

// JoinPath returns the shortest sequence of join edges connecting from
// and to through the foreign-key graph (BFS; deterministic tie-break by
// declaration order). It returns nil if the tables are not connected,
// and an empty slice if from == to.
func (s *Schema) JoinPath(from, to string) []JoinEdge {
	from = strings.ToLower(from)
	to = strings.ToLower(to)
	if from == to {
		return []JoinEdge{}
	}
	adj := s.neighbors()
	type state struct {
		table string
		path  []JoinEdge
	}
	visited := map[string]bool{from: true}
	queue := []state{{table: from}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range adj[cur.table] {
			next := strings.ToLower(e.RightTable)
			if visited[next] {
				continue
			}
			visited[next] = true
			path := make([]JoinEdge, len(cur.path), len(cur.path)+1)
			copy(path, cur.path)
			path = append(path, e)
			if next == to {
				return path
			}
			queue = append(queue, state{table: next, path: path})
		}
	}
	return nil
}

// JoinPathAll returns a minimal set of join edges connecting all the
// given tables (a Steiner-tree approximation: connect each table to the
// growing component via its shortest path). It returns nil if any table
// cannot be connected. Tables already connected contribute no edges.
func (s *Schema) JoinPathAll(tables []string) []JoinEdge {
	if len(tables) <= 1 {
		return []JoinEdge{}
	}
	connected := map[string]bool{strings.ToLower(tables[0]): true}
	var edges []JoinEdge
	remaining := tables[1:]
	for _, want := range remaining {
		lw := strings.ToLower(want)
		if connected[lw] {
			continue
		}
		// Shortest path from any connected table to want.
		var best []JoinEdge
		var connectedList []string
		for t := range connected {
			connectedList = append(connectedList, t)
		}
		sort.Strings(connectedList) // deterministic
		for _, from := range connectedList {
			p := s.JoinPath(from, want)
			if p == nil {
				continue
			}
			if best == nil || len(p) < len(best) {
				best = p
			}
		}
		if best == nil {
			return nil
		}
		for _, e := range best {
			edges = append(edges, e)
			connected[strings.ToLower(e.LeftTable)] = true
			connected[strings.ToLower(e.RightTable)] = true
		}
	}
	return edges
}

// Connected reports whether every table in the schema is reachable from
// every other through the foreign-key graph.
func (s *Schema) Connected() bool {
	if len(s.Tables) <= 1 {
		return true
	}
	first := s.Tables[0].Name
	for _, t := range s.Tables[1:] {
		if s.JoinPath(first, t.Name) == nil {
			return false
		}
	}
	return true
}

// String renders the schema as readable DDL-ish text (for logs and
// docs, not for parsing).
func (s *Schema) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "SCHEMA %s\n", s.Name)
	for _, t := range s.Tables {
		fmt.Fprintf(&b, "  TABLE %s (", t.Name)
		for i, c := range t.Columns {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s %s", c.Name, c.Type)
			if c.PrimaryKey {
				b.WriteString(" PK")
			}
		}
		b.WriteString(")\n")
	}
	for _, fk := range s.ForeignKeys {
		fmt.Fprintf(&b, "  FK %s.%s -> %s.%s\n", fk.FromTable, fk.FromColumn, fk.ToTable, fk.ToColumn)
	}
	return b.String()
}
