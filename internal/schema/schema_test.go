package schema

import (
	"strings"
	"testing"
	"testing/quick"
)

func hospital() *Schema {
	return &Schema{
		Name: "hospital",
		Tables: []*Table{
			{Name: "patients", Readable: "patient", Columns: []*Column{
				{Name: "id", Type: Number, PrimaryKey: true},
				{Name: "name", Type: Text},
				{Name: "age", Type: Number, Domain: DomainAge},
			}},
			{Name: "doctors", Readable: "doctor", Columns: []*Column{
				{Name: "id", Type: Number, PrimaryKey: true},
				{Name: "name", Type: Text},
			}},
			{Name: "visits", Readable: "visit", Columns: []*Column{
				{Name: "id", Type: Number, PrimaryKey: true},
				{Name: "patient_id", Type: Number},
				{Name: "doctor_id", Type: Number},
			}},
		},
		ForeignKeys: []ForeignKey{
			{FromTable: "visits", FromColumn: "patient_id", ToTable: "patients", ToColumn: "id"},
			{FromTable: "visits", FromColumn: "doctor_id", ToTable: "doctors", ToColumn: "id"},
		},
	}
}

func TestValidateOK(t *testing.T) {
	if err := hospital().Validate(); err != nil {
		t.Fatalf("valid schema rejected: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Schema)
		want string
	}{
		{"no name", func(s *Schema) { s.Name = "" }, "no name"},
		{"no tables", func(s *Schema) { s.Tables = nil }, "no tables"},
		{"dup table", func(s *Schema) { s.Tables = append(s.Tables, s.Tables[0]) }, "duplicate table"},
		{"empty table name", func(s *Schema) { s.Tables[0].Name = "" }, "empty name"},
		{"no columns", func(s *Schema) { s.Tables[0].Columns = nil }, "no columns"},
		{"dup column", func(s *Schema) {
			s.Tables[0].Columns = append(s.Tables[0].Columns, s.Tables[0].Columns[0])
		}, "duplicate column"},
		{"bad fk from", func(s *Schema) { s.ForeignKeys[0].FromColumn = "nope" }, "unknown column"},
		{"bad fk to", func(s *Schema) { s.ForeignKeys[0].ToTable = "nope" }, "unknown column"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := hospital()
			tc.mut(s)
			err := s.Validate()
			if err == nil {
				t.Fatal("expected validation error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestLookups(t *testing.T) {
	s := hospital()
	if s.Table("PATIENTS") == nil {
		t.Fatal("table lookup should be case-insensitive")
	}
	if s.Table("nope") != nil {
		t.Fatal("unknown table should be nil")
	}
	if s.Column("patients", "AGE") == nil {
		t.Fatal("column lookup should be case-insensitive")
	}
	if s.Column("patients", "salary") != nil {
		t.Fatal("unknown column should be nil")
	}
	owners := s.TablesWithColumn("name")
	if len(owners) != 2 || owners[0] != "patients" || owners[1] != "doctors" {
		t.Fatalf("TablesWithColumn(name) = %v", owners)
	}
	if got := s.TablesWithColumn("patient_id"); len(got) != 1 || got[0] != "visits" {
		t.Fatalf("TablesWithColumn(patient_id) = %v", got)
	}
}

func TestSurfaceForms(t *testing.T) {
	c := &Column{Name: "length_of_stay", Synonyms: []string{"stay"}}
	if got := c.ReadableName(); got != "length of stay" {
		t.Fatalf("ReadableName = %q", got)
	}
	forms := c.SurfaceForms()
	if len(forms) != 2 || forms[0] != "length of stay" || forms[1] != "stay" {
		t.Fatalf("SurfaceForms = %v", forms)
	}
	c.Readable = "duration"
	if got := c.ReadableName(); got != "duration" {
		t.Fatalf("annotated ReadableName = %q", got)
	}
}

func TestJoinPathDirect(t *testing.T) {
	s := hospital()
	p := s.JoinPath("visits", "patients")
	if len(p) != 1 {
		t.Fatalf("JoinPath(visits, patients) = %v", p)
	}
	e := p[0]
	if e.LeftTable != "visits" || e.LeftColumn != "patient_id" || e.RightTable != "patients" || e.RightColumn != "id" {
		t.Fatalf("edge = %+v", e)
	}
}

func TestJoinPathTwoHops(t *testing.T) {
	s := hospital()
	p := s.JoinPath("patients", "doctors")
	if len(p) != 2 {
		t.Fatalf("expected 2-hop path, got %v", p)
	}
	if !strings.EqualFold(p[0].RightTable, "visits") {
		t.Fatalf("path should go through visits: %v", p)
	}
}

func TestJoinPathSameTable(t *testing.T) {
	s := hospital()
	p := s.JoinPath("patients", "patients")
	if p == nil || len(p) != 0 {
		t.Fatalf("self path should be empty non-nil, got %v", p)
	}
}

func TestJoinPathDisconnected(t *testing.T) {
	s := hospital()
	s.Tables = append(s.Tables, &Table{Name: "island", Columns: []*Column{{Name: "id", Type: Number}}})
	if p := s.JoinPath("patients", "island"); p != nil {
		t.Fatalf("disconnected tables should yield nil, got %v", p)
	}
	if s.Connected() {
		t.Fatal("schema with island table should not be connected")
	}
}

func TestJoinPathAll(t *testing.T) {
	s := hospital()
	edges := s.JoinPathAll([]string{"patients", "doctors"})
	if len(edges) != 2 {
		t.Fatalf("steiner join of patients+doctors should need 2 edges, got %v", edges)
	}
	if edges2 := s.JoinPathAll([]string{"patients"}); len(edges2) != 0 {
		t.Fatalf("single table needs no edges, got %v", edges2)
	}
	if edges3 := s.JoinPathAll([]string{"patients", "visits", "doctors"}); len(edges3) != 2 {
		t.Fatalf("all three tables connect with 2 edges, got %v", edges3)
	}
}

func TestConnected(t *testing.T) {
	if !hospital().Connected() {
		t.Fatal("hospital schema should be connected")
	}
}

// Property: join paths are symmetric in length.
func TestJoinPathSymmetryQuick(t *testing.T) {
	s := hospital()
	names := []string{"patients", "doctors", "visits"}
	f := func(a, b uint8) bool {
		from := names[int(a)%len(names)]
		to := names[int(b)%len(names)]
		p1 := s.JoinPath(from, to)
		p2 := s.JoinPath(to, from)
		return len(p1) == len(p2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSchemaString(t *testing.T) {
	out := hospital().String()
	for _, want := range []string{"SCHEMA hospital", "TABLE patients", "age NUMBER", "FK visits.patient_id -> patients.id"} {
		if !strings.Contains(out, want) {
			t.Fatalf("String() missing %q:\n%s", want, out)
		}
	}
}
