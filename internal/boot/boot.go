// Package boot builds the self-contained serving unit for one schema:
// resolve the schema and its database, synthesize the training corpus
// through the streaming stage graph, construct (or load) the pluggable
// model, train it — optionally with checkpoint/resume — and wire the
// runtime translator with its degradation chain. It is the single
// construction path shared by cmd/dbpal, cmd/dbpal-serve,
// cmd/dbpal-eval, and internal/registry's background onboarding, which
// runs the same steps piecewise so it can report per-stage status.
package boot

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/critic"
	"repro/internal/engine"
	"repro/internal/models"
	"repro/internal/patients"
	"repro/internal/runtime"
	"repro/internal/schema"
	"repro/internal/spider"
)

// SynthPrefix selects a generated cross-domain schema: "synth:<seed>"
// resolves to spider.GenerateSchema(seed).
const SynthPrefix = "synth:"

// Spec describes everything needed to build one tenant: the schema,
// the model architecture and its training inputs, and the runtime
// wiring. The zero value is not useful; Schema is required, the rest
// default via withDefaults.
type Spec struct {
	// Schema names the tenant: "patients", a spider-zoo schema, or
	// "synth:<seed>" for a generated one.
	Schema string
	// Model is the translator architecture: "sketch" (default),
	// "seq2seq", or "nn".
	Model string
	// LoadPath, when set, loads model weights saved by dbpal-train
	// instead of training.
	LoadPath string
	// Seed drives data generation, training, and database synthesis.
	Seed int64
	// Rows is the synthetic rows per table for non-patients schemas.
	Rows int
	// ExecGuided tries up to N ranked candidates, keeping the first
	// that executes.
	ExecGuided int
	// Deadline is the per-question inference deadline per tier.
	Deadline time.Duration
	// Fallback adds a template nearest-neighbor degradation tier.
	Fallback bool
	// Critic enables the execution-guided validation-and-repair layer:
	// every candidate is schema-checked, dry-run in a sandbox against
	// the tenant's engine, and deterministically repaired before it can
	// become an answer.
	Critic bool
	// CriticRowBudget caps environment rows per critic dry-run
	// (0 = critic default).
	CriticRowBudget int
	// CriticTimeout bounds one critic dry-run (0 = critic default).
	CriticTimeout time.Duration
	// Params overrides the pipeline generation knobs (nil = defaults).
	Params *core.Params
	// Sketch / Seq2Seq override the model configuration (nil =
	// defaults with Seed applied).
	Sketch  *models.SketchConfig
	Seq2Seq *models.Seq2SeqConfig
	// Factory, when non-nil, supplies the primary model instead of
	// Model/Sketch/Seq2Seq — the pluggability seam (and the test seam
	// for forcing a bad model through the registry's eval gate).
	Factory func(seed int64) models.Translator
	// Train configures checkpoint/resume for trainable models.
	Train models.TrainOptions
	// PipelineWorkers bounds the generation stage pool (0 = NumCPU).
	PipelineWorkers int
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

func (sp Spec) WithDefaults() Spec {
	if sp.Model == "" {
		sp.Model = "sketch"
	}
	if sp.Seed == 0 {
		sp.Seed = 1
	}
	if sp.Rows == 0 {
		sp.Rows = 40
	}
	return sp
}

func (sp Spec) logf(format string, args ...any) {
	if sp.Logf != nil {
		sp.Logf(format, args...)
	}
}

// ParamsOrDefault returns the pipeline knobs the spec resolves to.
func (sp Spec) ParamsOrDefault() core.Params {
	if sp.Params != nil {
		return *sp.Params
	}
	return core.DefaultParams()
}

// Unit is one fully assembled tenant: schema, database, trained model,
// and the wired runtime translator.
type Unit struct {
	Spec       Spec
	Schema     *schema.Schema
	DB         *engine.Database
	Model      models.Translator
	Translator *runtime.Translator
	// Pairs is the synthesized corpus size (0 when weights were loaded
	// and no fallback tier needed the corpus).
	Pairs int
}

// TenantName resolves the tenant name a spec will register under
// without building anything (synth:<seed> schemas are named by the
// generator, everything else by the schema name itself).
func TenantName(schemaName string) string {
	if seed, ok := synthSeed(schemaName); ok {
		return fmt.Sprintf("synth%d", seed)
	}
	return schemaName
}

func synthSeed(name string) (int64, bool) {
	if !strings.HasPrefix(name, SynthPrefix) {
		return 0, false
	}
	seed, err := strconv.ParseInt(strings.TrimPrefix(name, SynthPrefix), 10, 64)
	if err != nil {
		return 0, false
	}
	return seed, true
}

// ResolveSchema maps a schema name to the schema and a populated
// database: "patients" loads the paper's benchmark database, zoo names
// get synthetic rows, and "synth:<seed>" generates a cross-domain
// schema first.
func ResolveSchema(name string, rows int, seed int64) (*schema.Schema, *engine.Database, error) {
	if name == "patients" {
		db, err := patients.Database()
		if err != nil {
			return nil, nil, err
		}
		return patients.Schema(), db, nil
	}
	s := spider.SchemaByName(name)
	if s == nil {
		if synth, ok := synthSeed(name); ok {
			s = spider.GenerateSchema(synth)
		} else if strings.HasPrefix(name, SynthPrefix) {
			return nil, nil, fmt.Errorf("bad synthetic schema %q: want %s<seed>", name, SynthPrefix)
		}
	}
	if s == nil {
		var names []string
		for _, z := range spider.AllSchemas() {
			names = append(names, z.Name)
		}
		return nil, nil, fmt.Errorf("unknown schema %q; available: patients, %s, or %s<seed>",
			name, strings.Join(names, ", "), SynthPrefix)
	}
	db, err := engine.GenerateData(s, rows, seed)
	if err != nil {
		return nil, nil, err
	}
	return s, db, nil
}

// Pairs runs the full generate→augment→lemmatize→dedup stage graph
// for the schema with cooperative cancellation, returning the corpus.
func Pairs(ctx context.Context, s *schema.Schema, p core.Params, seed int64, workers int) ([]core.Pair, error) {
	pl := core.New(s, p, seed)
	pl.Workers = workers
	g := pl.Graph()
	var out []core.Pair
	if err := g.Run(ctx, func(q core.Pair) error { out = append(out, q); return nil }); err != nil {
		return nil, err
	}
	return out, nil
}

// NeedsCorpus reports whether building the spec requires synthesizing
// the training corpus (fresh models always, loaded weights only when a
// fallback tier trains on it, nn always since its "weights" are the
// corpus).
func (sp Spec) NeedsCorpus() bool {
	sp = sp.WithDefaults()
	return sp.LoadPath == "" || sp.Fallback || sp.Model == "nn"
}

// ModelFor constructs the spec's untrained primary model (or loads it
// from LoadPath).
func ModelFor(sp Spec) (models.Translator, error) {
	sp = sp.WithDefaults()
	if sp.Factory != nil {
		return sp.Factory(sp.Seed), nil
	}
	if sp.LoadPath != "" && sp.Model != "nn" {
		return LoadModel(sp.Model, sp.LoadPath)
	}
	switch sp.Model {
	case "nn":
		return models.NewNearestNeighbor(), nil
	case "seq2seq":
		cfg := models.DefaultSeq2SeqConfig()
		if sp.Seq2Seq != nil {
			cfg = *sp.Seq2Seq
		} else {
			cfg.Seed = sp.Seed
		}
		return models.NewSeq2Seq(cfg), nil
	case "sketch":
		cfg := models.DefaultSketchConfig()
		if sp.Sketch != nil {
			cfg = *sp.Sketch
		} else {
			cfg.Seed = sp.Seed
		}
		return models.NewSketch(cfg), nil
	default:
		return nil, fmt.Errorf("unknown model kind %q (want sketch, seq2seq, or nn)", sp.Model)
	}
}

// LoadModel reads model weights saved by dbpal-train.
func LoadModel(kind, path string) (models.Translator, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var m models.Translator
	if kind == "seq2seq" {
		m, err = models.LoadSeq2Seq(f)
	} else {
		m, err = models.LoadSketch(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	return m, nil
}

// ContextTrainer is implemented by models supporting cancellable,
// checkpointable training.
type ContextTrainer interface {
	TrainContext(ctx context.Context, examples []models.Example, opts TrainOptions) error
}

// TrainOptions aliases the models package's options so registry/cmd
// callers configure checkpointing through boot alone.
type TrainOptions = models.TrainOptions

// Train fits the model: through TrainContext (checkpoint/resume,
// cancellation) when the model supports it, plain Train otherwise.
func Train(ctx context.Context, m models.Translator, exs []models.Example, opts TrainOptions) error {
	if ct, ok := m.(ContextTrainer); ok {
		return ct.TrainContext(ctx, exs, opts)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	// Models without TrainContext train uninterruptibly by design;
	// ctx is checked immediately above, and the registry bounds the
	// whole onboarding with WaitCtx at shutdown.
	m.Train(exs) //lint:allow ctxdrop legacy Translator.Train has no context variant; ctx checked just above and shutdown is bounded by Registry.WaitCtx
	return nil
}

// Assemble wires a trained model to its database: the runtime
// translator with execution-guided decoding, per-tier deadline, and
// the optional nearest-neighbor degradation tier trained on the same
// corpus.
func Assemble(sp Spec, s *schema.Schema, db *engine.Database, m models.Translator, exs []models.Example, pairs int) *Unit {
	sp = sp.WithDefaults()
	tr := runtime.NewTranslator(db, m)
	tr.ExecutionGuided = sp.ExecGuided
	tr.Deadline = sp.Deadline
	if sp.Critic {
		tr.Critic = critic.New(db, critic.Config{
			RowBudget: sp.CriticRowBudget,
			Timeout:   sp.CriticTimeout,
			Seed:      sp.Seed,
		})
	}
	if sp.Fallback && sp.Model != "nn" {
		nn := models.NewNearestNeighbor()
		nn.Train(exs)
		tr.Fallbacks = []models.Translator{nn}
	}
	return &Unit{Spec: sp, Schema: s, DB: db, Model: m, Translator: tr, Pairs: pairs}
}

// Build runs the whole construction path in one call: resolve, corpus,
// model, train, assemble. Callers needing per-stage progress (the
// registry's onboarding status) run the same steps individually.
func Build(ctx context.Context, sp Spec) (*Unit, error) {
	sp = sp.WithDefaults()
	s, db, err := ResolveSchema(sp.Schema, sp.Rows, sp.Seed)
	if err != nil {
		return nil, err
	}
	var exs []models.Example
	pairs := 0
	if sp.NeedsCorpus() {
		ps, err := Pairs(ctx, s, sp.ParamsOrDefault(), sp.Seed, sp.PipelineWorkers)
		if err != nil {
			return nil, err
		}
		sp.logf("pipeline synthesized %d NL-SQL pairs", len(ps))
		exs = models.PairExamples(ps, s)
		pairs = len(ps)
	}
	m, err := ModelFor(sp)
	if err != nil {
		return nil, err
	}
	if sp.LoadPath != "" && sp.Model != "nn" && sp.Factory == nil {
		sp.logf("loaded %s model from %s", sp.Model, sp.LoadPath)
	} else {
		sp.logf("bootstrapping DBPal for schema %q (%s model)...", s.Name, sp.Model)
		if err := Train(ctx, m, exs, sp.Train); err != nil {
			return nil, err
		}
	}
	return Assemble(sp, s, db, m, exs, pairs), nil
}
