// Package augment implements DBPal's data-augmentation step, which
// expands the instantiated training set with linguistic variations:
//
//   - Automatic paraphrasing using the PPDB stand-in: random
//     subclauses of up to sizePara tokens are replaced by up to
//     numPara paraphrases each (paper §3.2.1). Higher settings pull in
//     lower-quality paraphrases, trading training-set size against
//     noise.
//   - Missing information: duplicates with randomly dropped words
//     (numMissing duplicates per query, applied with probability
//     randDropP), making the model robust to implicit attribute
//     references (paper §3.2.2).
//   - Domain-aware comparatives: generic comparison phrases become
//     domain-specific ones ("greater than" -> "older than" on an age
//     column, paper §3.2.3).
package augment

import (
	"math/rand"
	"strings"

	"repro/internal/generator"
	"repro/internal/lexicon"
	"repro/internal/postag"
	"repro/internal/ppdb"
	"repro/internal/schema"
	"repro/internal/sqlast"
	"repro/internal/tokens"
)

// Params are the augmentation knobs from the paper's Table 1.
type Params struct {
	// SizePara is the maximum token length of subclauses replaced by a
	// paraphrase (1 = unigrams only, 2 = unigrams and bigrams, ...).
	SizePara int
	// NumPara is the maximum number of paraphrases generated per
	// subclause occurrence.
	NumPara int
	// NumMissing is the maximum number of word-dropped duplicates
	// produced for one input NL query.
	NumMissing int
	// RandDropP is the probability that word dropping is applied to a
	// given NL query at all.
	RandDropP float64
	// PosGuidedDrop restricts word dropout to droppable part-of-speech
	// classes (function words, auxiliaries) instead of uniform random
	// words - the refinement the paper sketches as future work
	// (section 3.2.3). Off by default to match the published pipeline.
	PosGuidedDrop bool
}

// DefaultParams are the shipped defaults (pre-tuning).
func DefaultParams() Params {
	return Params{
		SizePara:   2,
		NumPara:    3,
		NumMissing: 2,
		RandDropP:  0.35,
	}
}

// Provenance values stamped on augmenter-created variants (the
// Pair.Stage / Pair.Origin fields); pass-through originals keep the
// generator's provenance.
const (
	StageAugment      = "augment"
	OriginParaphrase  = "paraphrase"
	OriginDropout     = "dropout"
	OriginComparative = "comparative"
)

// Augmenter expands training pairs for one schema. It is a stateful
// stream transform: one RNG and one dedup map span the augmenter's
// lifetime, so feeding pairs one at a time through Step produces
// exactly the corpus the batch Augment call produces. An Augmenter is
// single-use — build a fresh one per pipeline run.
type Augmenter struct {
	Schema *schema.Schema
	Params Params
	rng    *rand.Rand
	seen   map[string]bool
	counts map[string]int64
}

// New returns an augmenter.
func New(s *schema.Schema, p Params, seed int64) *Augmenter {
	return &Augmenter{
		Schema: s, Params: p,
		rng:    rand.New(rand.NewSource(seed)),
		seen:   map[string]bool{},
		counts: map[string]int64{},
	}
}

// Step augments one pair: it emits the pair itself followed by its
// variants (comparatives, paraphrases, word drops — in that order, the
// order the RNG stream is consumed in), deduplicated against
// everything the augmenter has emitted so far.
func (a *Augmenter) Step(p generator.Pair, emit func(generator.Pair)) {
	a.add(p, emit, "")
	for _, v := range a.comparatives(p) {
		a.add(v, emit, OriginComparative)
	}
	for _, v := range a.paraphrases(p) {
		a.add(v, emit, OriginParaphrase)
	}
	for _, v := range a.dropWords(p) {
		a.add(v, emit, OriginDropout)
	}
}

// add emits p unless its (NL, SQL) text was already emitted, counting
// per-origin emissions and dedup hits.
func (a *Augmenter) add(p generator.Pair, emit func(generator.Pair), origin string) {
	if a.seen[p.Key()] {
		a.counts["dedup_hits"]++
		return
	}
	a.seen[p.Key()] = true
	if origin != "" {
		a.counts[origin]++
	}
	emit(p)
}

// Counters reports per-origin variant counts and internal dedup hits
// (the pipeline surfaces them in the augment stage's Stats snapshot).
func (a *Augmenter) Counters() map[string]int64 {
	out := make(map[string]int64, len(a.counts))
	for k, v := range a.counts {
		out[k] = v
	}
	return out
}

// Augment returns the input pairs followed by all generated duplicate
// variations, deduplicated — the batch form of Step.
func (a *Augmenter) Augment(pairs []generator.Pair) []generator.Pair {
	out := make([]generator.Pair, 0, len(pairs)*2)
	for _, p := range pairs {
		a.Step(p, func(q generator.Pair) { out = append(out, q) })
	}
	return out
}

// paraphrases implements the automatic-paraphrasing step: each
// eligible subclause (up to SizePara tokens) that has PPDB entries
// yields up to NumPara duplicated pairs with the subclause replaced.
// To keep the expansion bounded the augmenter picks, per pair, a
// random subset of the replaceable subclauses rather than all of them.
func (a *Augmenter) paraphrases(p generator.Pair) []generator.Pair {
	if a.Params.SizePara < 1 || a.Params.NumPara < 1 {
		return nil
	}
	toks := strings.Fields(p.NL)
	type site struct {
		start, n int
		cands    []string
	}
	var sites []site
	for n := 1; n <= a.Params.SizePara; n++ {
		for i := 0; i+n <= len(toks); i++ {
			if containsPlaceholder(toks[i : i+n]) {
				continue
			}
			phrase := strings.Join(toks[i:i+n], " ")
			cands := ppdb.Paraphrases(phrase, a.Params.NumPara, 0)
			if len(cands) > 0 {
				sites = append(sites, site{start: i, n: n, cands: cands})
			}
		}
	}
	if len(sites) == 0 {
		return nil
	}
	// Random subset of sites: about half, at least one.
	a.rng.Shuffle(len(sites), func(i, j int) { sites[i], sites[j] = sites[j], sites[i] })
	keep := (len(sites) + 1) / 2
	var out []generator.Pair
	for _, s := range sites[:keep] {
		for _, cand := range s.cands {
			var nt []string
			nt = append(nt, toks[:s.start]...)
			nt = append(nt, strings.Fields(cand)...)
			nt = append(nt, toks[s.start+s.n:]...)
			out = append(out, generator.Pair{
				NL: strings.Join(nt, " "), SQL: p.SQL,
				TemplateID: p.TemplateID, Class: p.Class,
				Stage: StageAugment, Origin: OriginParaphrase,
			})
		}
	}
	return out
}

// dropWords implements the missing-information step: with probability
// RandDropP, up to NumMissing duplicates are produced, each with one
// or two random droppable words removed.
func (a *Augmenter) dropWords(p generator.Pair) []generator.Pair {
	if a.Params.NumMissing < 1 || a.rng.Float64() >= a.Params.RandDropP {
		return nil
	}
	toks := strings.Fields(p.NL)
	var droppable []int
	for i, t := range toks {
		if tokens.IsPlaceholder(t) {
			continue
		}
		if a.Params.PosGuidedDrop && !postag.Droppable(t, postag.TagWord(t)) {
			continue
		}
		droppable = append(droppable, i)
	}
	if len(droppable) < 3 {
		return nil
	}
	var out []generator.Pair
	for d := 0; d < a.Params.NumMissing; d++ {
		nDrop := 1
		if len(droppable) > 5 && a.rng.Float64() < 0.4 {
			nDrop = 2
		}
		drop := map[int]bool{}
		for len(drop) < nDrop {
			drop[droppable[a.rng.Intn(len(droppable))]] = true
		}
		var nt []string
		for i, t := range toks {
			if !drop[i] {
				nt = append(nt, t)
			}
		}
		out = append(out, generator.Pair{
			NL: strings.Join(nt, " "), SQL: p.SQL,
			TemplateID: p.TemplateID, Class: p.Class,
			Stage: StageAugment, Origin: OriginDropout,
		})
	}
	return out
}

// genericGreater and genericLess are the generic comparison phrasings
// that domain-aware comparatives can replace, longest first so that
// multi-word phrases match before their prefixes.
var genericGreater = []string{"greater than", "higher than", "more than", "bigger than", "above", "over", "exceeding"}
var genericLess = []string{"smaller than", "less than", "lower than", "fewer than", "below", "under"}

// comparatives implements the "other augmentations" step: when the SQL
// side compares a column annotated with a domain, generic comparison
// phrases in the NL are replaced by the domain's comparative ("older
// than" for age).
func (a *Augmenter) comparatives(p generator.Pair) []generator.Pair {
	q, err := sqlast.Parse(p.SQL)
	if err != nil {
		return nil
	}
	var out []generator.Pair
	for _, c := range comparisonsWithDomain(q, a.Schema) {
		comp, ok := lexicon.ComparativeFor(c.domain)
		if !ok {
			continue
		}
		var generics []string
		var repls []string
		switch c.op {
		case sqlast.OpGt, sqlast.OpGe:
			generics, repls = genericGreater, comp.Greater
		case sqlast.OpLt, sqlast.OpLe:
			generics, repls = genericLess, comp.Less
		default:
			continue
		}
		if len(repls) == 0 {
			continue
		}
		for _, gph := range generics {
			if !strings.Contains(" "+p.NL+" ", " "+gph+" ") {
				continue
			}
			repl := repls[a.rng.Intn(len(repls))]
			nl := strings.Replace(" "+p.NL+" ", " "+gph+" ", " "+repl+" ", 1)
			out = append(out, generator.Pair{
				NL: strings.TrimSpace(nl), SQL: p.SQL,
				TemplateID: p.TemplateID, Class: p.Class,
				Stage: StageAugment, Origin: OriginComparative,
			})
			break
		}
	}
	return out
}

type domainCmp struct {
	op     sqlast.CmpOp
	domain schema.Domain
}

// comparisonsWithDomain finds comparisons over domain-annotated
// columns anywhere in the query.
func comparisonsWithDomain(q *sqlast.Query, s *schema.Schema) []domainCmp {
	var out []domainCmp
	sqlast.WalkQueries(q, func(sub *sqlast.Query) {
		for _, e := range sqlast.Conjuncts(sub.Where) {
			cmp, ok := e.(sqlast.Comparison)
			if !ok {
				continue
			}
			col := resolveColumn(cmp.Left, sub, s)
			if col == nil || col.Domain == schema.DomainNone {
				continue
			}
			out = append(out, domainCmp{op: cmp.Op, domain: col.Domain})
		}
	})
	return out
}

// resolveColumn finds the schema column for a reference given the
// query's FROM tables.
func resolveColumn(ref sqlast.ColumnRef, q *sqlast.Query, s *schema.Schema) *schema.Column {
	if ref.Table != "" {
		return s.Column(ref.Table, ref.Column)
	}
	for _, tn := range q.From.Tables {
		if c := s.Column(tn, ref.Column); c != nil {
			return c
		}
	}
	// @JOIN FROM: search all tables.
	if q.From.JoinPlaceholder {
		for _, t := range s.Tables {
			if c := t.Column(ref.Column); c != nil {
				return c
			}
		}
	}
	return nil
}

func containsPlaceholder(toks []string) bool {
	for _, t := range toks {
		if tokens.IsPlaceholder(t) {
			return true
		}
	}
	return false
}
