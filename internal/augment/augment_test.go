package augment

import (
	"strings"
	"testing"

	"repro/internal/generator"
	"repro/internal/schema"
	"repro/internal/tokens"
)

func ageSchema() *schema.Schema {
	return &schema.Schema{
		Name: "hospital",
		Tables: []*schema.Table{
			{Name: "patients", Readable: "patient", Columns: []*schema.Column{
				{Name: "id", Type: schema.Number, PrimaryKey: true},
				{Name: "name", Type: schema.Text},
				{Name: "age", Type: schema.Number, Domain: schema.DomainAge},
			}},
		},
	}
}

func pairGT() generator.Pair {
	return generator.Pair{
		NL:         "show the name of patients with age greater than @PATIENTS.AGE",
		SQL:        "SELECT name FROM patients WHERE age > @PATIENTS.AGE",
		TemplateID: "filter-gt",
	}
}

func TestAugmentKeepsOriginals(t *testing.T) {
	a := New(ageSchema(), DefaultParams(), 1)
	in := []generator.Pair{pairGT()}
	out := a.Augment(in)
	if len(out) < len(in) {
		t.Fatal("augmentation lost pairs")
	}
	if out[0] != in[0] {
		t.Fatal("original pair must come first")
	}
	if len(out) == len(in) {
		t.Fatal("augmentation should add variations for a paraphrasable pair")
	}
}

func TestAugmentSQLUnchanged(t *testing.T) {
	a := New(ageSchema(), DefaultParams(), 1)
	for _, p := range a.Augment([]generator.Pair{pairGT()}) {
		if p.SQL != pairGT().SQL {
			t.Fatalf("augmentation must never change the SQL side: %q", p.SQL)
		}
	}
}

func TestParaphraseUsesPPDB(t *testing.T) {
	p := Params{SizePara: 1, NumPara: 3}
	a := New(ageSchema(), p, 1)
	out := a.Augment([]generator.Pair{{
		NL:  "show the name of patients",
		SQL: "SELECT name FROM patients",
	}})
	// "show" has high-quality PPDB paraphrases (display, list, ...).
	found := false
	for _, pr := range out[1:] {
		first := strings.Fields(pr.NL)[0]
		if first != "show" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no paraphrased variant produced: %v", out)
	}
}

func TestParaphraseDisabled(t *testing.T) {
	p := Params{SizePara: 0, NumPara: 0, NumMissing: 0, RandDropP: 0}
	a := New(ageSchema(), p, 1)
	out := a.Augment([]generator.Pair{pairGT()})
	// Only the comparative substitution may add pairs when
	// paraphrasing and dropout are off.
	for _, pr := range out[1:] {
		if !strings.Contains(pr.NL, "older") && !strings.Contains(pr.NL, "age of") && !strings.Contains(pr.NL, "aged over") {
			t.Fatalf("unexpected augmentation with paraphrase/dropout off: %q", pr.NL)
		}
	}
}

func TestDropoutPreservesPlaceholders(t *testing.T) {
	p := Params{NumMissing: 3, RandDropP: 1.0}
	a := New(ageSchema(), p, 7)
	out := a.Augment([]generator.Pair{pairGT()})
	if len(out) < 2 {
		t.Fatal("dropout produced nothing at randDropP=1")
	}
	for _, pr := range out[1:] {
		if !strings.Contains(pr.NL, "@PATIENTS.AGE") {
			t.Fatalf("dropout removed a placeholder: %q", pr.NL)
		}
		if len(strings.Fields(pr.NL)) >= len(strings.Fields(pairGT().NL)) && pr.NL != pairGT().NL &&
			!strings.Contains(pr.NL, "older") && !strings.Contains(pr.NL, "age of") && !strings.Contains(pr.NL, "aged") {
			t.Fatalf("dropout variant not shorter: %q", pr.NL)
		}
	}
}

func TestDropoutProbabilityZero(t *testing.T) {
	p := Params{NumMissing: 3, RandDropP: 0}
	a := New(ageSchema(), p, 7)
	out := a.Augment([]generator.Pair{pairGT()})
	for _, pr := range out[1:] {
		if len(strings.Fields(pr.NL)) < len(strings.Fields(pairGT().NL)) {
			// a shorter NL implies a dropout variant leaked through
			t.Fatalf("dropout applied despite randDropP=0: %q", pr.NL)
		}
	}
}

func TestComparativeSubstitution(t *testing.T) {
	p := Params{} // isolate the comparative step
	a := New(ageSchema(), p, 3)
	out := a.Augment([]generator.Pair{pairGT()})
	found := false
	for _, pr := range out {
		if strings.Contains(pr.NL, "older than") || strings.Contains(pr.NL, "above the age of") || strings.Contains(pr.NL, "aged over") {
			found = true
		}
	}
	if !found {
		t.Fatalf("age-domain comparison should gain an 'older than' variant: %v", out)
	}
}

func TestComparativeNeedsDomain(t *testing.T) {
	s := ageSchema()
	s.Tables[0].Columns[2].Domain = schema.DomainNone
	a := New(s, Params{}, 3)
	out := a.Augment([]generator.Pair{pairGT()})
	if len(out) != 1 {
		t.Fatalf("no augmentation expected without a domain annotation: %v", out)
	}
}

func TestAugmentDeterminism(t *testing.T) {
	in := []generator.Pair{pairGT(), {
		NL:  "show the name of patients",
		SQL: "SELECT name FROM patients",
	}}
	a := New(ageSchema(), DefaultParams(), 11).Augment(in)
	b := New(ageSchema(), DefaultParams(), 11).Augment(in)
	if len(a) != len(b) {
		t.Fatalf("nondeterministic sizes %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pair %d differs", i)
		}
	}
}

func TestAugmentDedup(t *testing.T) {
	in := []generator.Pair{pairGT(), pairGT()}
	out := New(ageSchema(), DefaultParams(), 11).Augment(in)
	seen := map[string]bool{}
	for _, pr := range out {
		key := pr.NL + "|" + pr.SQL
		if seen[key] {
			t.Fatalf("duplicate pair survived: %q", key)
		}
		seen[key] = true
	}
}

func TestNumParaBoundsVariants(t *testing.T) {
	count := func(numPara int) int {
		p := Params{SizePara: 2, NumPara: numPara}
		return len(New(ageSchema(), p, 5).Augment([]generator.Pair{pairGT()}))
	}
	if count(1) > count(6) {
		t.Fatalf("larger numPara should not shrink the corpus: %d vs %d", count(1), count(6))
	}
}

func TestPlaceholderSubphrasesNeverParaphrased(t *testing.T) {
	p := Params{SizePara: 3, NumPara: 6}
	out := New(ageSchema(), p, 5).Augment([]generator.Pair{pairGT()})
	for _, pr := range out {
		n := 0
		for _, tok := range strings.Fields(pr.NL) {
			if tokens.IsPlaceholder(tok) {
				n++
			}
		}
		if n != 1 {
			t.Fatalf("placeholder count changed in %q", pr.NL)
		}
	}
}
