// Package par is the repository's shared concurrency substrate: a
// bounded worker pool sized by runtime.NumCPU, an ordered fan-out /
// fan-in Map, and deterministic seed splitting.
//
// Determinism contract. Every parallel construct in this repository is
// required to produce bit-identical results regardless of the worker
// count (DESIGN.md, "Parallel substrate"). par supports that in two
// ways:
//
//   - Map(workers, n, fn) assigns work by item index, not by worker:
//     fn(i) writes its result into slot i of a caller-owned slice, so
//     the assembled output is in item order no matter which goroutine
//     ran which item, and the worker count only changes wall-clock
//     time, never results.
//   - SplitSeed(base, i) derives the i-th child seed from a base seed
//     with a SplitMix64 mix, so each item (a training example, a
//     hyperopt candidate) owns an RNG stream that depends only on its
//     index — never on scheduling order or pool size.
//
// Floating-point reductions stay deterministic as long as the merge
// happens in item order on the caller's side after Map returns (see
// neural.ParamSet.MergeGradsFrom and the minibatch loop in
// internal/models).
package par

import (
	"fmt"
	"runtime"
	"sync"
)

// Count resolves a worker-count knob: values <= 0 select
// runtime.NumCPU(), anything else is returned as given. Every -workers
// flag and Workers config field in the repository funnels through this
// so "0 = all cores" means the same thing everywhere.
func Count(n int) int {
	if n <= 0 {
		return runtime.NumCPU()
	}
	return n
}

// Map runs fn(i) for every i in [0, n) on a bounded pool of at most
// workers goroutines and returns once all calls finished. Items are
// handed out in index order. fn must write any result it produces into
// a caller-owned, index-addressed slot (never append to a shared
// slice), which keeps the assembled output ordered and race-free.
//
// workers <= 1 (or n <= 1) runs inline on the calling goroutine — the
// zero-overhead path that also guarantees the sequential trajectory is
// literally the same code the parallel path runs per item.
//
// A panic inside fn is captured and re-raised on the calling goroutine
// after the pool drains, so callers observe the same crash semantics
// as a sequential loop instead of a process abort from a worker.
func Map(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Count(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicked any
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicOnce.Do(func() { panicked = r })
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	if panicked != nil {
		panic(fmt.Sprintf("par: worker panic: %v", panicked))
	}
}

// SplitSeed derives the i-th child seed from base using a SplitMix64
// finalizer over base and index. Child streams are decorrelated from
// each other and from the base stream, and the derivation depends only
// on (base, i) — not on worker count or scheduling — so seeded
// parallel stages reproduce bit-identically at any pool size.
func SplitSeed(base int64, i int) int64 {
	z := uint64(base) + 0x9e3779b97f4a7c15*(uint64(i)+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}
