// Package par is the repository's shared concurrency substrate: a
// bounded worker pool sized by runtime.NumCPU, an ordered fan-out /
// fan-in Map, and deterministic seed splitting.
//
// Determinism contract. Every parallel construct in this repository is
// required to produce bit-identical results regardless of the worker
// count (DESIGN.md, "Parallel substrate"). par supports that in two
// ways:
//
//   - Map(workers, n, fn) assigns work by item index, not by worker:
//     fn(i) writes its result into slot i of a caller-owned slice, so
//     the assembled output is in item order no matter which goroutine
//     ran which item, and the worker count only changes wall-clock
//     time, never results.
//   - SplitSeed(base, i) derives the i-th child seed from a base seed
//     with a SplitMix64 mix, so each item (a training example, a
//     hyperopt candidate) owns an RNG stream that depends only on its
//     index — never on scheduling order or pool size.
//
// Floating-point reductions stay deterministic as long as the merge
// happens in item order on the caller's side after Map returns (see
// neural.ParamSet.MergeGradsFrom and the minibatch loop in
// internal/models).
package par

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Count resolves a worker-count knob: values <= 0 select
// runtime.NumCPU(), anything else is returned as given. Every -workers
// flag and Workers config field in the repository funnels through this
// so "0 = all cores" means the same thing everywhere.
func Count(n int) int {
	if n <= 0 {
		return runtime.NumCPU()
	}
	return n
}

// Map runs fn(i) for every i in [0, n) on a bounded pool of at most
// workers goroutines and returns once all calls finished. Items are
// handed out in index order. fn must write any result it produces into
// a caller-owned, index-addressed slot (never append to a shared
// slice), which keeps the assembled output ordered and race-free.
//
// workers <= 1 (or n <= 1) runs inline on the calling goroutine — the
// zero-overhead path that also guarantees the sequential trajectory is
// literally the same code the parallel path runs per item.
//
// A panic inside fn is captured and re-raised on the calling goroutine
// after the pool drains, so callers observe the same crash semantics
// as a sequential loop instead of a process abort from a worker.
func Map(workers, n int, fn func(i int)) {
	// context.Background is never done, so the error is always nil.
	_ = MapCtx(context.Background(), workers, n, fn)
}

// MapCtx is Map with cooperative cancellation: once ctx is done, no
// further indices are dispatched; calls already in flight run to
// completion, and the context's error is returned. Because indices are
// handed out strictly in order and every dispatched call completes,
// the set of executed indices is always a prefix [0, k) of [0, n) —
// cancellation can shorten the prefix but never punch holes in it, at
// any worker count. A nil return means all n calls ran.
//
// Panic semantics match Map: a panic inside fn is captured and
// re-raised on the calling goroutine after the pool drains.
func MapCtx(ctx context.Context, workers, n int, fn func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Count(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return nil
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicked any
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicOnce.Do(func() { panicked = r })
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	done := ctx.Done()
	var stopped error
feed:
	for i := 0; i < n; i++ {
		// Checked before the select so a done context always wins over
		// a ready worker (select chooses randomly among ready cases).
		if err := ctx.Err(); err != nil {
			stopped = err
			break
		}
		select {
		case <-done:
			stopped = ctx.Err()
			break feed
		case idx <- i:
		}
	}
	close(idx)
	// Bounded: close(idx) above ends every worker's range loop, and a
	// cancelled ctx stops feeding first, so this join finishes as soon
	// as in-flight items do.
	wg.Wait() //lint:allow ctxdrop workers exit once idx is closed (closed on every path above); the join is bounded by in-flight work
	if panicked != nil {
		panic(fmt.Sprintf("par: worker panic: %v", panicked))
	}
	return stopped
}

// ErrDeadline is returned by Await and Deadline when fn is still
// running at expiry.
var ErrDeadline = fmt.Errorf("par: deadline exceeded")

// Await runs fn on its own goroutine and waits for it to finish or for
// ctx to be done, whichever comes first. It returns nil when fn
// completed, ErrDeadline when ctx expired first. A panic in fn is
// re-raised on the caller when the caller is still waiting.
//
// When ctx wins, fn keeps running on its abandoned goroutine until it
// returns on its own (there is no way to preempt it); its eventual
// panic, if any, is swallowed. Callers use this to put a hard bound on
// an uncooperative plug-in — a misbehaving model must cost at most one
// leaked goroutine, never a hung process.
func Await(ctx context.Context, fn func()) error {
	done := make(chan any, 1)
	go func() {
		defer func() { done <- recover() }()
		fn()
	}()
	select {
	case r := <-done:
		if r != nil {
			panic(r)
		}
		return nil
	case <-ctx.Done():
		return ErrDeadline
	}
}

// Deadline is Await with a duration bound; d <= 0 means no bound (fn
// runs inline).
func Deadline(d time.Duration, fn func()) error {
	if d <= 0 {
		fn()
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	return Await(ctx, fn)
}

// SplitSeed derives the i-th child seed from base using a SplitMix64
// finalizer over base and index. Child streams are decorrelated from
// each other and from the base stream, and the derivation depends only
// on (base, i) — not on worker count or scheduling — so seeded
// parallel stages reproduce bit-identically at any pool size.
func SplitSeed(base int64, i int) int64 {
	z := uint64(base) + 0x9e3779b97f4a7c15*(uint64(i)+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}
