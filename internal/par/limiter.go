package par

import "context"

// Limiter is a counting semaphore: a fixed number of slots that
// callers acquire before entering a bounded section and release on the
// way out. It is the admission-control primitive beneath the serving
// layer — the worker pool bounds *batch* parallelism by index
// assignment, the Limiter bounds *request* parallelism by slot
// ownership.
//
// The implementation is a buffered channel, so it composes with
// context cancellation without spawning any goroutines, and a slot
// released by one goroutine is immediately acquirable by another.
type Limiter struct {
	slots chan struct{}
}

// NewLimiter returns a limiter with n slots; n <= 0 selects
// runtime.NumCPU via Count, matching every other worker knob in the
// repository.
func NewLimiter(n int) *Limiter {
	return &Limiter{slots: make(chan struct{}, Count(n))}
}

// Cap returns the total slot count.
func (l *Limiter) Cap() int { return cap(l.slots) }

// InUse returns the number of currently held slots. The value is a
// snapshot: it can be stale by the time the caller looks at it, which
// is fine for load reporting and never used for admission decisions.
func (l *Limiter) InUse() int { return len(l.slots) }

// TryAcquire takes a slot if one is free, without blocking.
func (l *Limiter) TryAcquire() bool {
	select {
	case l.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

// Acquire blocks until a slot is free or ctx is done, returning ctx's
// error in the latter case. A nil return means the caller holds a slot
// and must Release it.
func (l *Limiter) Acquire(ctx context.Context) error {
	// Checked first so a done context never wins a free slot (select
	// chooses randomly among ready cases).
	if err := ctx.Err(); err != nil {
		return err
	}
	select {
	case l.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release returns a slot. Releasing more than was acquired is a
// programming error and panics rather than silently widening the
// limit.
func (l *Limiter) Release() {
	select {
	case <-l.slots:
	default:
		panic("par: Limiter.Release without a matching Acquire")
	}
}
