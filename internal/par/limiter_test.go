package par

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestLimiterTryAcquireRelease(t *testing.T) {
	l := NewLimiter(2)
	if l.Cap() != 2 {
		t.Fatalf("Cap = %d, want 2", l.Cap())
	}
	if !l.TryAcquire() || !l.TryAcquire() {
		t.Fatal("two acquires within capacity must succeed")
	}
	if l.InUse() != 2 {
		t.Fatalf("InUse = %d, want 2", l.InUse())
	}
	if l.TryAcquire() {
		t.Fatal("third acquire must fail")
	}
	l.Release()
	if !l.TryAcquire() {
		t.Fatal("released slot must be acquirable")
	}
}

func TestLimiterAcquireBlocksUntilRelease(t *testing.T) {
	l := NewLimiter(1)
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	acquired := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		acquired <- l.Acquire(context.Background())
	}()
	select {
	case err := <-acquired:
		t.Fatalf("Acquire returned %v before the slot was released", err)
	case <-time.After(20 * time.Millisecond):
	}
	l.Release()
	if err := <-acquired; err != nil {
		t.Fatalf("Acquire after release = %v", err)
	}
	wg.Wait()
	l.Release()
}

func TestLimiterAcquireHonorsContext(t *testing.T) {
	l := NewLimiter(1)
	if !l.TryAcquire() {
		t.Fatal("first acquire must succeed")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := l.Acquire(ctx); err == nil {
		t.Fatal("Acquire on a full limiter must fail when ctx expires")
	}
	// A pre-cancelled context never steals a free slot.
	l.Release()
	done, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	if err := l.Acquire(done); err == nil {
		t.Fatal("Acquire with a done context must fail")
	}
	if l.InUse() != 0 {
		t.Fatalf("InUse = %d after failed acquires, want 0", l.InUse())
	}
}

func TestLimiterReleaseWithoutAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unbalanced Release must panic")
		}
	}()
	NewLimiter(1).Release()
}

func TestLimiterDefaultCapacity(t *testing.T) {
	if got := NewLimiter(0).Cap(); got != Count(0) {
		t.Fatalf("NewLimiter(0).Cap() = %d, want Count(0) = %d", got, Count(0))
	}
}
