package par

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCount(t *testing.T) {
	if Count(0) != runtime.NumCPU() || Count(-3) != runtime.NumCPU() {
		t.Fatal("non-positive counts should resolve to NumCPU")
	}
	if Count(5) != 5 {
		t.Fatal("positive counts pass through")
	}
}

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		out := make([]int, 100)
		Map(workers, len(out), func(i int) { out[i] = i * i })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapZeroAndOneItems(t *testing.T) {
	Map(4, 0, func(int) { t.Fatal("fn called for n=0") })
	calls := 0
	Map(4, 1, func(i int) { calls++ })
	if calls != 1 {
		t.Fatalf("n=1 calls = %d", calls)
	}
}

func TestMapBoundedConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak int64
	var mu sync.Mutex
	Map(workers, 50, func(i int) {
		n := atomic.AddInt64(&cur, 1)
		mu.Lock()
		if n > peak {
			peak = n
		}
		mu.Unlock()
		atomic.AddInt64(&cur, -1)
	})
	if peak > workers {
		t.Fatalf("peak concurrency %d exceeds pool size %d", peak, workers)
	}
}

func TestMapPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic not propagated")
		}
		if !strings.Contains(r.(string), "boom") {
			t.Fatalf("panic value %v lost the cause", r)
		}
	}()
	Map(4, 10, func(i int) {
		if i == 5 {
			panic("boom")
		}
	})
}

func TestSplitSeedDeterministicAndDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		s := SplitSeed(42, i)
		if s != SplitSeed(42, i) {
			t.Fatal("SplitSeed not deterministic")
		}
		if seen[s] {
			t.Fatalf("seed collision at index %d", i)
		}
		seen[s] = true
	}
	if SplitSeed(1, 0) == SplitSeed(2, 0) {
		t.Fatal("different bases should split differently")
	}
	// Child streams should not be trivially correlated with the base.
	a := rand.New(rand.NewSource(SplitSeed(7, 0))).Float64()
	b := rand.New(rand.NewSource(SplitSeed(7, 1))).Float64()
	if a == b {
		t.Fatal("adjacent child streams coincide")
	}
}

func TestMapCtxCancelledPrefix(t *testing.T) {
	// Cancel partway through: the executed indices must form a prefix
	// [0, k) at every worker count — cancellation can shorten the
	// stream but never punch holes in it.
	for _, workers := range []int{1, 4, 16} {
		const n = 200
		ctx, cancel := context.WithCancel(context.Background())
		var ran [n]atomic.Bool
		err := MapCtx(ctx, workers, n, func(i int) {
			if i == 40 {
				cancel()
			}
			ran[i].Store(true)
		})
		if err == nil {
			t.Fatalf("workers=%d: cancelled run returned nil", workers)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		seenGap := false
		for i := 0; i < n; i++ {
			if !ran[i].Load() {
				seenGap = true
				continue
			}
			if seenGap {
				t.Fatalf("workers=%d: executed set has a hole before index %d", workers, i)
			}
		}
		if !ran[40].Load() || ran[n-1].Load() {
			t.Fatalf("workers=%d: prefix bounds wrong", workers)
		}
	}
}

func TestMapCtxNilErrorRunsAll(t *testing.T) {
	var calls atomic.Int64
	if err := MapCtx(context.Background(), 4, 50, func(i int) { calls.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 50 {
		t.Fatalf("calls = %d", calls.Load())
	}
}

func TestMapCtxPreCancelledRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := MapCtx(ctx, 4, 10, func(int) { t.Error("fn ran under a done context") })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

func TestAwaitCompletesAndTimesOut(t *testing.T) {
	if err := Await(context.Background(), func() {}); err != nil {
		t.Fatalf("completed fn returned %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	block := make(chan struct{})
	defer close(block)
	if err := Await(ctx, func() { <-block }); !errors.Is(err, ErrDeadline) {
		t.Fatalf("expired Await returned %v", err)
	}
}

func TestAwaitRepanicsWhileWaiting(t *testing.T) {
	defer func() {
		if r := recover(); r == nil || !strings.Contains(r.(string), "kaboom") {
			t.Fatalf("panic not re-raised: %v", r)
		}
	}()
	_ = Await(context.Background(), func() { panic("kaboom") })
}

func TestDeadlineUnboundedRunsInline(t *testing.T) {
	ran := false
	if err := Deadline(0, func() { ran = true }); err != nil || !ran {
		t.Fatalf("unbounded Deadline: ran=%v err=%v", ran, err)
	}
	if err := Deadline(time.Millisecond, func() { time.Sleep(200 * time.Millisecond) }); !errors.Is(err, ErrDeadline) {
		t.Fatalf("slow fn under Deadline returned %v", err)
	}
}
