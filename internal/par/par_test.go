package par

import (
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCount(t *testing.T) {
	if Count(0) != runtime.NumCPU() || Count(-3) != runtime.NumCPU() {
		t.Fatal("non-positive counts should resolve to NumCPU")
	}
	if Count(5) != 5 {
		t.Fatal("positive counts pass through")
	}
}

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		out := make([]int, 100)
		Map(workers, len(out), func(i int) { out[i] = i * i })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapZeroAndOneItems(t *testing.T) {
	Map(4, 0, func(int) { t.Fatal("fn called for n=0") })
	calls := 0
	Map(4, 1, func(i int) { calls++ })
	if calls != 1 {
		t.Fatalf("n=1 calls = %d", calls)
	}
}

func TestMapBoundedConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak int64
	var mu sync.Mutex
	Map(workers, 50, func(i int) {
		n := atomic.AddInt64(&cur, 1)
		mu.Lock()
		if n > peak {
			peak = n
		}
		mu.Unlock()
		atomic.AddInt64(&cur, -1)
	})
	if peak > workers {
		t.Fatalf("peak concurrency %d exceeds pool size %d", peak, workers)
	}
}

func TestMapPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic not propagated")
		}
		if !strings.Contains(r.(string), "boom") {
			t.Fatalf("panic value %v lost the cause", r)
		}
	}()
	Map(4, 10, func(i int) {
		if i == 5 {
			panic("boom")
		}
	})
}

func TestSplitSeedDeterministicAndDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		s := SplitSeed(42, i)
		if s != SplitSeed(42, i) {
			t.Fatal("SplitSeed not deterministic")
		}
		if seen[s] {
			t.Fatalf("seed collision at index %d", i)
		}
		seen[s] = true
	}
	if SplitSeed(1, 0) == SplitSeed(2, 0) {
		t.Fatal("different bases should split differently")
	}
	// Child streams should not be trivially correlated with the base.
	a := rand.New(rand.NewSource(SplitSeed(7, 0))).Float64()
	b := rand.New(rand.NewSource(SplitSeed(7, 1))).Float64()
	if a == b {
		t.Fatal("adjacent child streams coincide")
	}
}
