package models

import (
	"context"
	"math/rand"

	"repro/internal/neural"
	"repro/internal/par"
)

// batchSizeOf normalizes a BatchSize knob (0 means the classic
// per-example regime).
func batchSizeOf(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

// trainSchedule is the epoch/batch/step driver shared by both
// translators' TrainContext: it owns the shuffle-cap-batch loop,
// cooperative cancellation, the checkpoint cadence, and the resume
// offsets, while the model supplies a single accum callback that
// backpropagates one example.
//
// Determinism. A lane is a batch position, not a worker: lane i always
// holds exactly the gradients of the batch's i-th example, computed by
// the same sequential backprop code the single-core path runs, and
// lanes are merged in index order on the calling goroutine — so the
// floating-point result is bit-identical for every worker count, and
// batchSize==1 (lanes nil, accum targeting the main parameter set)
// reproduces the classic sequential SGD trajectory exactly.
//
// Resume. The checkpoint records (epoch, step): the snapshot was taken
// after `step` optimizer steps of `epoch`. A resumed schedule replays
// every earlier epoch's Shuffle call without training (the updates are
// already in the restored weights, but the RNG must advance past the
// same draws), then skips the first startStep batches of startEpoch —
// continuing the exact example order, and therefore the exact weight
// trajectory, of the interrupted run.
type trainSchedule struct {
	epochs    int
	sampleCap int
	batchSize int
	workers   int
	gradClip  float64
	rng       *rand.Rand
	main      *neural.ParamSet
	lanes     []*neural.ParamSet // nil when batchSize == 1
	opt       *neural.Adam

	startEpoch int // first epoch that actually trains
	startStep  int // optimizer steps to skip within startEpoch

	// checkpoint, when non-nil, snapshots the model after `step`
	// optimizer steps of `epoch`. It runs every checkpointEvery steps
	// (0 = never periodically) and once more when the context is
	// cancelled mid-run, so an interrupted run can resume from the
	// exact step it reached.
	checkpointEvery int
	checkpoint      func(epoch, step int) error

	// accum(lane, exIdx) backpropagates example exIdx: into shadow
	// lane `lane` when batching, or straight into main when
	// batchSize == 1 (lane is then always 0).
	accum func(lane, exIdx int)
}

// run drives the schedule over n examples. It returns nil when every
// epoch completed, the context's error when cancelled (after writing a
// final checkpoint if one is configured), or a checkpoint write error.
func (s *trainSchedule) run(ctx context.Context, n int) error {
	bs := batchSizeOf(s.batchSize)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	steps := 0 // optimizer steps taken by this run, for the cadence
	for epoch := 0; epoch < s.epochs; epoch++ {
		s.rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		if epoch < s.startEpoch {
			continue // replayed for RNG position only
		}
		limit := len(order)
		if s.sampleCap > 0 && limit > s.sampleCap {
			limit = s.sampleCap
		}
		step, start := 0, 0
		if epoch == s.startEpoch && s.startStep > 0 {
			step = s.startStep
			start = s.startStep * bs
			if start > limit {
				start = limit
			}
		}
		for ; start < limit; start += bs {
			if err := ctx.Err(); err != nil {
				return s.interrupted(err, epoch, step)
			}
			end := start + bs
			if end > limit {
				end = limit
			}
			batch := order[start:end]
			if bs == 1 {
				s.accum(0, batch[0])
			} else {
				if err := par.MapCtx(ctx, s.workers, len(batch), func(i int) { s.accum(i, batch[i]) }); err != nil {
					// The partial batch's lane gradients are simply
					// abandoned: nothing was merged, so the weights
					// still reflect exactly `step` optimizer steps.
					return s.interrupted(err, epoch, step)
				}
				for i := range batch {
					s.main.MergeGradsFrom(s.lanes[i])
				}
			}
			s.main.ClipGrad(s.gradClip)
			s.opt.Step()
			step++
			steps++
			if s.checkpoint != nil && s.checkpointEvery > 0 && steps%s.checkpointEvery == 0 {
				if err := s.checkpoint(epoch, step); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// interrupted writes a final checkpoint (when configured) before
// surfacing the cancellation error, so a SIGINT-style interruption
// never loses completed steps.
func (s *trainSchedule) interrupted(err error, epoch, step int) error {
	if s.checkpoint != nil {
		if cerr := s.checkpoint(epoch, step); cerr != nil {
			return cerr
		}
	}
	return err
}
