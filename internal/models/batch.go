package models

import (
	"repro/internal/neural"
	"repro/internal/par"
)

// batchSizeOf normalizes a BatchSize knob (0 means the classic
// per-example regime).
func batchSizeOf(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

// trainEpochBatched runs one epoch of minibatch gradient accumulation:
// the epoch order is cut into consecutive batches of size batchSize,
// each batch's examples are backpropagated concurrently into
// per-example shadow gradient lanes (shared read-only weights, private
// gradient buffers), the lane gradients are merged into the main
// parameter set in example order, and one clipped Adam step is taken
// per batch.
//
// Determinism: a lane is a batch position, not a worker. Lane i always
// holds exactly the gradients of the batch's i-th example, computed by
// the same sequential backprop code the single-core path runs, and
// lanes are merged in index order on the calling goroutine — so the
// floating-point result is bit-identical for every worker count, and
// batchSize==1 reproduces the classic sequential SGD trajectory
// exactly (one lane, merged into zeroed main gradients, then the same
// clip + step).
//
// accum(lane, exIdx) must backprop example exIdx into lane's shadow
// parameter set; it runs on worker goroutines and must only read the
// shared weights.
func trainEpochBatched(order []int, batchSize, workers int, main *neural.ParamSet,
	lanes []*neural.ParamSet, gradClip float64, opt *neural.Adam, accum func(lane, exIdx int)) {
	for start := 0; start < len(order); start += batchSize {
		end := start + batchSize
		if end > len(order) {
			end = len(order)
		}
		batch := order[start:end]
		par.Map(workers, len(batch), func(i int) { accum(i, batch[i]) })
		for i := range batch {
			main.MergeGradsFrom(lanes[i])
		}
		main.ClipGrad(gradClip)
		opt.Step()
	}
}
