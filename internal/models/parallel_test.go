package models

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/neural"
)

// seq2seqTrained trains a fresh model with the given batch size and
// worker count and returns the summed post-training loss over the
// examples plus every Translate output — the full observable state the
// determinism contract covers.
func seq2seqTrained(t *testing.T, batch, workers int) (*Seq2Seq, float64, [][]string) {
	t.Helper()
	cfg := DefaultSeq2SeqConfig()
	cfg.EmbDim = 10
	cfg.HidDim = 12
	cfg.Epochs = 3
	cfg.BatchSize = batch
	cfg.Workers = workers
	cfg.Seed = 11
	m := NewSeq2Seq(cfg)
	exs := trainingExamples()
	m.Train(exs)
	loss := 0.0
	var outs [][]string
	for _, ex := range exs {
		loss += m.Loss(ex)
		outs = append(outs, m.Translate(ex.NL, ex.Schema))
	}
	return m, loss, outs
}

func sketchTrained(t *testing.T, batch, workers int) (*Sketch, float64, [][]string) {
	t.Helper()
	cfg := DefaultSketchConfig()
	cfg.EmbDim = 10
	cfg.HidDim = 12
	cfg.Epochs = 3
	cfg.BatchSize = batch
	cfg.Workers = workers
	cfg.Seed = 11
	m := NewSketch(cfg)
	exs := trainingExamples()
	m.Train(exs)
	loss := 0.0
	var outs [][]string
	for _, ex := range exs {
		loss += m.Loss(ex)
		outs = append(outs, m.Translate(ex.NL, ex.Schema))
	}
	return m, loss, outs
}

// TestSeq2SeqWorkerCountInvariance is the tentpole determinism
// contract: minibatch training from the same seed must produce
// bit-identical models whether the batch backprop ran on one worker or
// four.
func TestSeq2SeqWorkerCountInvariance(t *testing.T) {
	m1, loss1, out1 := seq2seqTrained(t, 3, 1)
	m4, loss4, out4 := seq2seqTrained(t, 3, 4)
	if loss1 != loss4 {
		t.Fatalf("final loss differs across worker counts: %v vs %v", loss1, loss4)
	}
	if !reflect.DeepEqual(out1, out4) {
		t.Fatalf("Translate outputs differ across worker counts:\n%v\n%v", out1, out4)
	}
	assertSameWeights(t, m1.ps, m4.ps)
}

func TestSketchWorkerCountInvariance(t *testing.T) {
	m1, loss1, out1 := sketchTrained(t, 4, 1)
	m4, loss4, out4 := sketchTrained(t, 4, 4)
	if loss1 != loss4 {
		t.Fatalf("final loss differs across worker counts: %v vs %v", loss1, loss4)
	}
	if !reflect.DeepEqual(out1, out4) {
		t.Fatalf("Translate outputs differ across worker counts:\n%v\n%v", out1, out4)
	}
	assertSameWeights(t, m1.ps, m4.ps)
}

// TestBatchSizeOneMatchesManyWorkers pins the compatibility guarantee
// of the default configuration: BatchSize 1 takes the classic
// sequential path regardless of the worker knob, so the trajectory is
// the seed's per-example SGD bit-for-bit.
func TestBatchSizeOneMatchesManyWorkers(t *testing.T) {
	m1, loss1, _ := seq2seqTrained(t, 1, 1)
	m4, loss4, _ := seq2seqTrained(t, 1, 8)
	if loss1 != loss4 {
		t.Fatalf("BatchSize=1 must ignore workers: %v vs %v", loss1, loss4)
	}
	assertSameWeights(t, m1.ps, m4.ps)
}

// TestShadowMergeEqualsSequentialAccumulation validates the shadow-
// gradient machinery directly: backprop of a batch into per-lane
// shadow buffers merged in lane order must equal backprop of the same
// examples accumulated sequentially into the main gradients. The two
// differ only in float summation order (per-lane partial sums vs a
// single interleaved accumulator), so the comparison is a tight
// relative tolerance rather than bit equality — bit-for-bit
// reproducibility is claimed across worker counts at a fixed batch
// size (the invariance tests above), not across batching strategies.
func TestShadowMergeEqualsSequentialAccumulation(t *testing.T) {
	cfg := DefaultSeq2SeqConfig()
	cfg.EmbDim = 8
	cfg.HidDim = 9
	cfg.Seed = 5
	exs := trainingExamples()

	build := func() *Seq2Seq {
		m := NewSeq2Seq(cfg)
		m.vocab = BuildVocabs(exs, 1)
		m.build(m.vocab.Size())
		return m
	}

	seq := build()
	for _, ex := range exs[:3] {
		seq.backprop(ex)
	}

	batched := build()
	lanes := make([]*Seq2Seq, 3)
	for i := range lanes {
		lanes[i] = batched.workerClone()
		lanes[i].backprop(exs[i])
	}
	for _, lane := range lanes {
		batched.ps.MergeGradsFrom(lane.ps)
	}

	for k, mat := range seq.ps.Mats() {
		got := batched.ps.Mats()[k]
		for i := range mat.G {
			diff := math.Abs(mat.G[i] - got.G[i])
			scale := math.Max(math.Abs(mat.G[i]), 1)
			if diff > 1e-12*scale {
				t.Fatalf("grad mismatch in %s[%d]: sequential %v vs merged %v",
					seq.ps.Names()[k], i, mat.G[i], got.G[i])
			}
		}
	}
}

// TestWorkerCloneSharesWeights guards the read-only-weights invariant:
// a clone's forward pass must see main-model weight updates instantly
// (shared buffers), while its gradients stay private.
func TestWorkerCloneSharesWeights(t *testing.T) {
	cfg := DefaultSeq2SeqConfig()
	cfg.EmbDim = 6
	cfg.HidDim = 7
	exs := trainingExamples()
	m := NewSeq2Seq(cfg)
	m.vocab = BuildVocabs(exs, 1)
	m.build(m.vocab.Size())

	c := m.workerClone()
	mainMats := m.ps.Mats()
	cloneMats := c.ps.Mats()
	if len(mainMats) != len(cloneMats) {
		t.Fatalf("clone registered %d mats, main has %d", len(cloneMats), len(mainMats))
	}
	for k := range mainMats {
		if &mainMats[k].W[0] != &cloneMats[k].W[0] {
			t.Fatalf("mat %d: clone does not share weights", k)
		}
		if &mainMats[k].G[0] == &cloneMats[k].G[0] {
			t.Fatalf("mat %d: clone shares gradients", k)
		}
	}
	c.backprop(exs[0])
	for k := range mainMats {
		for _, g := range mainMats[k].G {
			if g != 0 {
				t.Fatal("clone backprop leaked gradients into the main model")
			}
		}
	}
}

func assertSameWeights(t *testing.T, a, b *neural.ParamSet) {
	t.Helper()
	am, bm := a.Mats(), b.Mats()
	if len(am) != len(bm) {
		t.Fatalf("param set sizes differ: %d vs %d", len(am), len(bm))
	}
	for k := range am {
		for i := range am[k].W {
			if am[k].W[i] != bm[k].W[i] {
				t.Fatalf("weight mismatch in %s[%d]: %v vs %v", a.Names()[k], i, am[k].W[i], bm[k].W[i])
			}
		}
	}
}
