package models

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/schema"
	"repro/internal/tokens"
)

func patientsSchema() *schema.Schema {
	return &schema.Schema{
		Name: "hospital",
		Tables: []*schema.Table{
			{Name: "patients", Readable: "patient", Columns: []*schema.Column{
				{Name: "id", Type: schema.Number, PrimaryKey: true},
				{Name: "name", Type: schema.Text},
				{Name: "age", Type: schema.Number, Domain: schema.DomainAge},
				{Name: "diagnosis", Type: schema.Text},
			}},
		},
	}
}

func TestSchemaTokens(t *testing.T) {
	toks := SchemaTokens(patientsSchema())
	want := []string{"patients", "name", "patients.name", "@PATIENTS.NAME", "@JOIN"}
	for _, w := range want {
		found := false
		for _, tok := range toks {
			if tok == w {
				found = true
			}
		}
		if !found {
			t.Errorf("SchemaTokens missing %q: %v", w, toks)
		}
	}
	// No duplicates.
	seen := map[string]bool{}
	for _, tok := range toks {
		if seen[tok] {
			t.Fatalf("duplicate schema token %q", tok)
		}
		seen[tok] = true
	}
}

func TestNormalizeSQLTokens(t *testing.T) {
	in := []string{"select", "Name", "FROM", "Patients", "WHERE", "AGE", "=", "@patients.age"}
	got := NormalizeSQLTokens(in)
	want := []string{"SELECT", "name", "FROM", "patients", "WHERE", "age", "=", "@PATIENTS.AGE"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("normalize = %v", got)
	}
}

func TestPairExamples(t *testing.T) {
	s := patientsSchema()
	pairs := []core.Pair{
		{NL: "show the name of patient with age @PATIENTS.AGE", SQL: "SELECT name FROM patients WHERE age = @PATIENTS.AGE"},
		{NL: "broken sql", SQL: "NOT VALID SQL"},
	}
	exs := PairExamples(pairs, s)
	if len(exs) != 1 {
		t.Fatalf("invalid SQL should be skipped, got %d examples", len(exs))
	}
	ex := exs[0]
	if ex.NL[len(ex.NL)-1] != "@PATIENTS.AGE" {
		t.Fatalf("NL tokens = %v", ex.NL)
	}
	if ex.SQL[0] != "SELECT" || ex.SQL[len(ex.SQL)-1] != "@PATIENTS.AGE" {
		t.Fatalf("SQL tokens = %v", ex.SQL)
	}
	if len(ex.Schema) == 0 {
		t.Fatal("schema context missing")
	}
}

func TestInputSequence(t *testing.T) {
	seq := InputSequence([]string{"a", "b"}, []string{"t", "c"})
	want := []string{"a", "b", tokens.SepToken, "t", "c"}
	if !reflect.DeepEqual(seq, want) {
		t.Fatalf("InputSequence = %v", seq)
	}
}

func trainingExamples() []Example {
	st := []string{"patients", "name", "age", "diagnosis", "patients.name", "patients.age",
		"patients.diagnosis", "@PATIENTS.AGE", "@PATIENTS.DIAGNOSIS", "@JOIN"}
	return []Example{
		{NL: strings.Fields("show the name of patient with age @PATIENTS.AGE"), SQL: strings.Fields("SELECT name FROM patients WHERE age = @PATIENTS.AGE"), Schema: st},
		{NL: strings.Fields("show the diagnosis of patient with age @PATIENTS.AGE"), SQL: strings.Fields("SELECT diagnosis FROM patients WHERE age = @PATIENTS.AGE"), Schema: st},
		{NL: strings.Fields("how many patient be there"), SQL: strings.Fields("SELECT COUNT ( * ) FROM patients"), Schema: st},
		{NL: strings.Fields("what be the average age of patient"), SQL: strings.Fields("SELECT AVG ( age ) FROM patients"), Schema: st},
		{NL: strings.Fields("list patient with diagnosis @PATIENTS.DIAGNOSIS"), SQL: strings.Fields("SELECT * FROM patients WHERE diagnosis = @PATIENTS.DIAGNOSIS"), Schema: st},
	}
}

func TestSeq2SeqOverfitSmall(t *testing.T) {
	cfg := DefaultSeq2SeqConfig()
	cfg.Epochs = 150
	cfg.EmbDim = 24
	cfg.HidDim = 48
	m := NewSeq2Seq(cfg)
	exs := trainingExamples()
	m.Train(exs)
	for _, ex := range exs {
		got := strings.Join(m.Translate(ex.NL, ex.Schema), " ")
		want := strings.Join(ex.SQL, " ")
		if got != want {
			t.Fatalf("seq2seq failed to overfit %v: got %q want %q", ex.NL, got, want)
		}
	}
	if m.NumParams() == 0 {
		t.Fatal("NumParams should be positive after training")
	}
}

func TestSeq2SeqCopiesUnseenSchemaTokens(t *testing.T) {
	cfg := DefaultSeq2SeqConfig()
	cfg.Epochs = 200
	cfg.EmbDim = 24
	cfg.HidDim = 48
	m := NewSeq2Seq(cfg)
	m.Train(trainingExamples())
	// A schema never seen in training: the copy mechanism must emit
	// its tokens.
	st := []string{"ships", "label", "tonnage", "ships.label", "ships.tonnage", "@SHIPS.TONNAGE", "@JOIN"}
	out := m.Translate(strings.Fields("show the label of ship with tonnage @SHIPS.TONNAGE"), st)
	joined := strings.Join(out, " ")
	// "tonnage" and "@SHIPS.TONNAGE" are out-of-vocabulary: only the
	// copy mechanism can emit them. (Five training examples are not
	// enough for reliable table selection, so we assert copying, not
	// full correctness — the experiments cover the latter at scale.)
	if !strings.Contains(joined, "tonnage") {
		t.Fatalf("expected copied OOV token in %q", joined)
	}
}

func TestSeq2SeqUntrained(t *testing.T) {
	m := NewSeq2Seq(DefaultSeq2SeqConfig())
	if out := m.Translate([]string{"x"}, []string{"t"}); out != nil {
		t.Fatalf("untrained model should return nil, got %v", out)
	}
}

func TestSeq2SeqPersistence(t *testing.T) {
	cfg := DefaultSeq2SeqConfig()
	cfg.Epochs = 60
	cfg.EmbDim = 16
	cfg.HidDim = 24
	m := NewSeq2Seq(cfg)
	exs := trainingExamples()
	m.Train(exs)

	var buf bytes.Buffer
	if err := m.SaveFull(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadSeq2Seq(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, ex := range exs {
		a := strings.Join(m.Translate(ex.NL, ex.Schema), " ")
		b := strings.Join(m2.Translate(ex.NL, ex.Schema), " ")
		if a != b {
			t.Fatalf("restored model differs: %q vs %q", a, b)
		}
	}
}

func TestSketchPersistence(t *testing.T) {
	cfg := DefaultSketchConfig()
	cfg.Epochs = 40
	m := NewSketch(cfg)
	exs := trainingExamples()
	m.Train(exs)

	var buf bytes.Buffer
	if err := m.SaveFull(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadSketch(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.NumSketches() != m.NumSketches() {
		t.Fatalf("sketch inventory differs: %d vs %d", m2.NumSketches(), m.NumSketches())
	}
	for _, ex := range exs {
		a := strings.Join(m.Translate(ex.NL, ex.Schema), " ")
		b := strings.Join(m2.Translate(ex.NL, ex.Schema), " ")
		if a != b {
			t.Fatalf("restored sketch model differs: %q vs %q", a, b)
		}
	}
}

func TestSaveUntrainedFails(t *testing.T) {
	var buf bytes.Buffer
	if err := NewSeq2Seq(DefaultSeq2SeqConfig()).SaveFull(&buf); err == nil {
		t.Fatal("saving an untrained seq2seq should fail")
	}
	if err := NewSketch(DefaultSketchConfig()).SaveFull(&buf); err == nil {
		t.Fatal("saving an untrained sketch should fail")
	}
}

func TestSketchUnseenSchemaUsesLinking(t *testing.T) {
	cfg := DefaultSketchConfig()
	cfg.Epochs = 60
	m := NewSketch(cfg)
	m.Train(trainingExamples())
	// Unseen schema; the linking features should pick the mentioned
	// column.
	st := []string{"ships", "label", "tonnage", "ships.label", "ships.tonnage", "@SHIPS.TONNAGE", "@JOIN"}
	out := strings.Join(m.Translate(strings.Fields("show the label of ship with tonnage @SHIPS.TONNAGE"), st), " ")
	if !strings.Contains(out, "label") || !strings.Contains(out, "ships") {
		t.Fatalf("linking failed on unseen schema: %q", out)
	}
}

func TestTranslatorInterfaceCompliance(t *testing.T) {
	var _ Translator = (*Seq2Seq)(nil)
	var _ Translator = (*Sketch)(nil)
	if NewSeq2Seq(DefaultSeq2SeqConfig()).Name() != "seq2seq" {
		t.Fatal("seq2seq name")
	}
	if NewSketch(DefaultSketchConfig()).Name() != "sketch" {
		t.Fatal("sketch name")
	}
}

func TestTrainEmptyCorpus(t *testing.T) {
	m := NewSeq2Seq(DefaultSeq2SeqConfig())
	m.Train(nil) // must not panic
	m2 := NewSketch(DefaultSketchConfig())
	m2.Train(nil)
}

func TestSeq2SeqLossDecreases(t *testing.T) {
	cfg := DefaultSeq2SeqConfig()
	cfg.Epochs = 0 // build-only via Train of empty? Train(nil) returns; instead train in two stages
	cfg.EmbDim = 16
	cfg.HidDim = 24
	exs := trainingExamples()

	before := NewSeq2Seq(cfg)
	before.Train(exs) // epochs=0: builds vocab+params without updates

	lossAt := func(m *Seq2Seq) float64 {
		total := 0.0
		for _, ex := range exs {
			total += m.Loss(ex)
		}
		return total
	}
	l0 := lossAt(before)

	cfg.Epochs = 40
	after := NewSeq2Seq(cfg)
	after.Train(exs)
	l1 := lossAt(after)
	if l1 >= l0 {
		t.Fatalf("training did not reduce loss: %.2f -> %.2f", l0, l1)
	}
	if l1 > l0/2 {
		t.Fatalf("loss reduction too small: %.2f -> %.2f", l0, l1)
	}
}
