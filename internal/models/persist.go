package models

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/neural"
	"repro/internal/tokens"
)

// savedSeq2Seq is the full serialized form of a trained Seq2Seq model:
// configuration, vocabulary, and weights.
type savedSeq2Seq struct {
	Config Seq2SeqConfig
	Vocab  []string
	Mats   []savedParam
}

type savedParam struct {
	Name string
	R, C int
	W    []float64
}

// SaveFull writes the complete trained model (config + vocabulary +
// weights) so it can be restored without retraining.
func (m *Seq2Seq) SaveFull(w io.Writer) error {
	if m.vocab == nil || m.ps == nil {
		return fmt.Errorf("models: cannot save untrained seq2seq model")
	}
	out := savedSeq2Seq{Config: m.cfg, Vocab: m.vocab.Words()}
	for i, mat := range m.ps.Mats() {
		out.Mats = append(out.Mats, savedParam{
			Name: m.ps.Names()[i], R: mat.R, C: mat.C, W: mat.W,
		})
	}
	return gob.NewEncoder(w).Encode(out)
}

// LoadSeq2Seq restores a model saved with SaveFull.
func LoadSeq2Seq(r io.Reader) (*Seq2Seq, error) {
	var in savedSeq2Seq
	if err := gob.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("models: load seq2seq: %w", err)
	}
	m := NewSeq2Seq(in.Config)
	m.vocab = vocabFromWords(in.Vocab)
	m.build(m.vocab.Size())
	if err := restoreParams(m.ps.Mats(), m.ps.Names(), in.Mats); err != nil {
		return nil, err
	}
	return m, nil
}

// savedSketch is the full serialized form of a trained Sketch model.
type savedSketch struct {
	Config   SketchConfig
	Vocab    []string
	Sketches []savedSketchEntry
	Mats     []savedParam
}

type savedSketchEntry struct {
	Tokens  []string
	Kinds   []int
	Clauses []int
	Key     string
}

// SaveFull writes the complete trained sketch model.
func (m *Sketch) SaveFull(w io.Writer) error {
	if m.vocab == nil || m.ps == nil {
		return fmt.Errorf("models: cannot save untrained sketch model")
	}
	out := savedSketch{Config: m.cfg, Vocab: m.vocab.Words()}
	for _, sk := range m.sketches {
		kinds := make([]int, len(sk.kinds))
		for i, k := range sk.kinds {
			kinds[i] = int(k)
		}
		clauses := make([]int, len(sk.clauses))
		for i, c := range sk.clauses {
			clauses[i] = int(c)
		}
		out.Sketches = append(out.Sketches, savedSketchEntry{Tokens: sk.tokens, Kinds: kinds, Clauses: clauses, Key: sk.key})
	}
	for i, mat := range m.ps.Mats() {
		out.Mats = append(out.Mats, savedParam{Name: m.ps.Names()[i], R: mat.R, C: mat.C, W: mat.W})
	}
	return gob.NewEncoder(w).Encode(out)
}

// LoadSketch restores a model saved with SaveFull.
func LoadSketch(r io.Reader) (*Sketch, error) {
	var in savedSketch
	if err := gob.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("models: load sketch: %w", err)
	}
	m := NewSketch(in.Config)
	m.vocab = vocabFromWords(in.Vocab)
	for _, se := range in.Sketches {
		kinds := make([]slotKind, len(se.Kinds))
		for i, k := range se.Kinds {
			kinds[i] = slotKind(k)
		}
		clauses := make([]clause, len(se.Clauses))
		for i, c := range se.Clauses {
			clauses[i] = clause(c)
		}
		m.byKey[se.Key] = len(m.sketches)
		m.sketches = append(m.sketches, sketch{tokens: se.Tokens, kinds: kinds, clauses: clauses, key: se.Key})
	}
	// Rebuild parameters with the right shapes, then restore weights.
	m.buildParams()
	if err := restoreParams(m.ps.Mats(), m.ps.Names(), in.Mats); err != nil {
		return nil, err
	}
	return m, nil
}

func vocabFromWords(words []string) *tokens.Vocab {
	v := tokens.NewVocab()
	for _, w := range words {
		v.Add(w)
	}
	return v
}

func restoreParams(mats []*neural.Mat, names []string, saved []savedParam) error {
	byName := map[string]savedParam{}
	for _, s := range saved {
		byName[s.Name] = s
	}
	for i, m := range mats {
		s, ok := byName[names[i]]
		if !ok {
			return fmt.Errorf("models: restore: missing parameter %q", names[i])
		}
		if s.R != m.R || s.C != m.C {
			return fmt.Errorf("models: restore: shape mismatch for %q: have %dx%d, saved %dx%d",
				names[i], m.R, m.C, s.R, s.C)
		}
		copy(m.W, s.W)
	}
	return nil
}
