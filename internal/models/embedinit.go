package models

import (
	"math/rand"

	"repro/internal/lexicon"
	"repro/internal/neural"
	"repro/internal/tokens"
)

// applySynonymClusters re-initializes the embedding rows of known
// synonym groups so that synonyms start near each other: every word of
// a group gets the group's base vector plus small per-word jitter.
// This is the GloVe substitution of DESIGN.md — pretrained embeddings'
// role in the paper ("handle variations of individual words") is to
// make synonyms look similar to the model before any task training;
// synonym-clustered initialization provides the same prior from the
// lexicon instead of a 6B-token corpus.
func applySynonymClusters(emb *neural.Embedding, vocab *tokens.Vocab, rng *rand.Rand) {
	dim := emb.Dim
	for _, head := range sortedKeys(lexicon.GeneralSynonyms) {
		group := append([]string{head}, lexicon.GeneralSynonyms[head]...)
		// Only cluster words that are single tokens in the vocabulary.
		var ids []int
		for _, w := range group {
			if vocab.Has(w) {
				ids = append(ids, vocab.ID(w))
			}
		}
		if len(ids) < 2 {
			continue
		}
		base := make([]float64, dim)
		for i := range base {
			base[i] = (rng.Float64()*2 - 1) * 0.35
		}
		for _, id := range ids {
			row := emb.E.Row(id)
			for i := range row {
				row[i] = base[i] + (rng.Float64()*2-1)*0.08
			}
		}
	}
}
