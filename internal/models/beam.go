package models

import (
	"math"
	"sort"

	"repro/internal/tokens"
)

// TranslateBeam decodes with beam search of the given width, returning
// up to width candidate token sequences ordered by length-normalized
// log-likelihood (best first). Width 1 degenerates to greedy decoding.
// The runtime's execution-guided mode uses the alternatives to recover
// from candidates that fail to execute.
func (m *Seq2Seq) TranslateBeam(nl, schemaToks []string, width int) [][]string {
	if m.vocab == nil {
		return nil
	}
	if width < 1 {
		width = 1
	}
	input := InputSequence(nl, schemaToks)
	es := m.encode(input)

	type beam struct {
		toks   []string
		logp   float64
		h      []float64
		prevID int
		done   bool
	}
	beams := []beam{{h: es.final, prevID: tokens.BosID}}
	var finished []beam

	for step := 0; step < m.cfg.MaxOutLen && len(beams) > 0; step++ {
		var expanded []beam
		for _, bm := range beams {
			st, hNew := m.forwardStep(bm.prevID, bm.h, es)
			for _, cand := range m.topTokens(st, es, width+1) {
				nb := beam{
					logp:   bm.logp + math.Log(math.Max(cand.p, 1e-12)),
					h:      hNew,
					prevID: m.vocab.ID(cand.tok),
				}
				if cand.tok == tokens.EosToken {
					nb.toks = bm.toks
					nb.done = true
					finished = append(finished, nb)
					continue
				}
				nb.toks = append(append([]string{}, bm.toks...), cand.tok)
				expanded = append(expanded, nb)
			}
		}
		sort.SliceStable(expanded, func(i, j int) bool { return expanded[i].logp > expanded[j].logp })
		if len(expanded) > width {
			expanded = expanded[:width]
		}
		beams = expanded
	}
	// Unfinished beams still count (length cap reached).
	finished = append(finished, beams...)
	sort.SliceStable(finished, func(i, j int) bool {
		return normLogp(finished[i].logp, len(finished[i].toks)) > normLogp(finished[j].logp, len(finished[j].toks))
	})
	var out [][]string
	seen := map[string]bool{}
	for _, bm := range finished {
		key := joinKey(bm.toks)
		if seen[key] || len(bm.toks) == 0 {
			continue
		}
		seen[key] = true
		out = append(out, bm.toks)
		if len(out) >= width {
			break
		}
	}
	return out
}

// TranslateK implements the execution-guided alternatives contract.
func (m *Seq2Seq) TranslateK(nl, schemaToks []string, k int) [][]string {
	return m.TranslateBeam(nl, schemaToks, k)
}

func normLogp(logp float64, length int) float64 {
	if length == 0 {
		return math.Inf(-1)
	}
	return logp / float64(length)
}

func joinKey(toks []string) string {
	out := ""
	for _, t := range toks {
		out += t + "\x1f"
	}
	return out
}

// scored token candidate.
type tokCand struct {
	tok string
	p   float64
}

// topTokens returns the k most probable next tokens of the mixture
// distribution (vocabulary + copy), excluding structural specials
// other than EOS.
func (m *Seq2Seq) topTokens(st *decStep, es *encState, k int) []tokCand {
	copyMass := map[string]float64{}
	for i, tok := range es.toks {
		copyMass[tok] += st.alpha[i]
	}
	var cands []tokCand
	for id, pv := range st.pv {
		if id == tokens.PadID || id == tokens.BosID || id == tokens.UnkID {
			continue
		}
		w := m.vocab.Word(id)
		if w == tokens.SepToken {
			continue
		}
		p := st.pgen * pv
		if cm, ok := copyMass[w]; ok {
			p += (1 - st.pgen) * cm
		}
		cands = append(cands, tokCand{tok: w, p: p})
	}
	for _, tok := range sortedKeys(copyMass) {
		if m.vocab.Has(tok) || tok == tokens.SepToken {
			continue
		}
		cands = append(cands, tokCand{tok: tok, p: (1 - st.pgen) * copyMass[tok]})
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].p > cands[j].p })
	if len(cands) > k {
		cands = cands[:k]
	}
	return cands
}

// TranslateK for the sketch model: the top-k sketches by classifier
// score, each filled with its best slot candidates.
func (m *Sketch) TranslateK(nl, schemaToks []string, k int) [][]string {
	if m.vocab == nil || len(m.sketches) == 0 {
		return nil
	}
	ss := newSchemaSet(schemaToks)
	ec := m.encodeNL(nl)
	enc := ec.final
	nlc := newNLContext(nl)

	logits := m.clsW.Forward(enc)
	order := argsortDesc(logits)
	if k > len(order) {
		k = len(order)
	}
	var out [][]string
	for _, skID := range order[:k] {
		out = append(out, m.fillSketch(m.sketches[skID], ss, enc, nlc))
	}
	return out
}

// fillSketch fills one sketch's slots (shared by Translate and
// TranslateK).
func (m *Sketch) fillSketch(sk sketch, ss *schemaSet, enc []float64, nlc *nlContext) []string {
	out := make([]string, 0, len(sk.tokens))
	si := 0
	usedInSelect := map[string]bool{}
	rolePos := map[int]int{}
	for _, t := range sk.tokens {
		if t != slotMarker {
			out = append(out, t)
			continue
		}
		kind := sk.kinds[si]
		cl := sk.clauses[si]
		si++
		role := int(cl)*int(numKinds) + int(kind)
		kIdx := scorerIndex(cl, kind, rolePos[role])
		rolePos[role]++
		cands := ss.byKind[kind]
		if len(cands) == 0 {
			cands = ss.toks
		}
		if len(cands) == 0 {
			out = append(out, "<unk>")
			continue
		}
		scores, _, _, _ := m.slotScores(kIdx, enc, cands, nlc)
		if cl == clauseSelect {
			for i, c := range cands {
				if usedInSelect[c] {
					scores[i] -= 1.0
				}
			}
		}
		best := cands[argmaxIdx(scores)]
		if cl == clauseSelect {
			usedInSelect[best] = true
		}
		out = append(out, best)
	}
	return out
}

func argsortDesc(v []float64) []int {
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool { return v[idx[i]] > v[idx[j]] })
	return idx
}

func argmaxIdx(v []float64) int {
	best, bi := math.Inf(-1), 0
	for i, x := range v {
		if x > best {
			best, bi = x, i
		}
	}
	return bi
}
