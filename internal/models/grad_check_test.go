package models

import (
	"math"
	"testing"
)

// TestSeq2SeqGradientCheck validates the hand-rolled backward pass of
// the full pointer-generator seq2seq against finite differences on a
// tiny model and example.
func TestSeq2SeqGradientCheck(t *testing.T) {
	cfg := DefaultSeq2SeqConfig()
	cfg.EmbDim = 6
	cfg.HidDim = 8
	cfg.Seed = 3
	m := NewSeq2Seq(cfg)
	exs := []Example{
		{
			NL:     []string{"show", "name", "of", "patient", "with", "age", "@PATIENTS.AGE"},
			SQL:    []string{"SELECT", "name", "FROM", "patients", "WHERE", "age", "=", "@PATIENTS.AGE"},
			Schema: []string{"patients", "name", "age", "patients.name", "@PATIENTS.AGE", "zebra"},
		},
		{
			// includes an OOV-ish copy target once vocab built from both
			NL:     []string{"count", "zebra"},
			SQL:    []string{"SELECT", "zebra", "FROM", "patients"},
			Schema: []string{"patients", "name", "age", "zebra"},
		},
	}
	m.vocab = BuildVocabs(exs[:1], 1) // second example's "count"/"zebra": zebra in schema of ex1 so in vocab; count OOV
	m.build(m.vocab.Size())

	ex := exs[0]
	m.ps.ZeroGrad()
	loss := m.backprop(ex)
	if math.IsNaN(loss) || loss <= 0 {
		t.Fatalf("bad loss %v", loss)
	}

	const eps = 1e-5
	checked, failures := 0, 0
	for mi, mat := range m.ps.Mats() {
		stride := len(mat.W)/7 + 1
		for i := 0; i < len(mat.W); i += stride {
			orig := mat.W[i]
			mat.W[i] = orig + eps
			lp := m.Loss(ex)
			mat.W[i] = orig - eps
			lm := m.Loss(ex)
			mat.W[i] = orig
			num := (lp - lm) / (2 * eps)
			ana := mat.G[i]
			diff := math.Abs(num - ana)
			scale := math.Max(1, math.Max(math.Abs(num), math.Abs(ana)))
			if diff/scale > 1e-4 {
				failures++
				t.Errorf("param %s[%d] (%d): analytic %.8f vs numeric %.8f", m.ps.Names()[mi], i, mi, ana, num)
				if failures > 10 {
					t.Fatal("too many gradient failures")
				}
			}
			checked++
		}
	}
	t.Logf("gradient check passed on %d sampled parameters (loss=%.4f)", checked, loss)
	// also OOV-target example must not NaN
	m.ps.ZeroGrad()
	l2 := m.backprop(exs[1])
	if math.IsNaN(l2) {
		t.Fatalf("NaN loss on OOV example")
	}
}
