package models

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"math/rand"

	"repro/internal/neural"
	"repro/internal/tokens"
)

// Seq2SeqConfig sizes and schedules the seq2seq translator. The
// defaults are deliberately small: the repository targets single-core
// CPU training (see DESIGN.md).
type Seq2SeqConfig struct {
	EmbDim    int     // embedding dimension
	HidDim    int     // GRU hidden dimension
	LR        float64 // Adam learning rate
	Epochs    int     // training epochs
	SampleCap int     // max examples used per epoch (0 = all)
	MaxOutLen int     // decoding length cap
	GradClip  float64 // global gradient-norm clip
	MinCount  int     // vocabulary min token count
	// BatchSize selects the optimizer-step granularity: examples per
	// minibatch whose gradients are accumulated before one Adam step.
	// 0 or 1 reproduces the original per-example SGD trajectory
	// bit-for-bit; larger batches change the trajectory (fewer, larger
	// steps) but are independent of Workers.
	BatchSize int
	// Workers bounds the goroutines that backprop a minibatch in
	// parallel (0 = runtime.NumCPU). Results are identical for every
	// worker count; see trainBatches.
	Workers int
	Seed    int64
}

// DefaultSeq2SeqConfig returns the standard small configuration.
func DefaultSeq2SeqConfig() Seq2SeqConfig {
	return Seq2SeqConfig{
		EmbDim:    48,
		HidDim:    96,
		LR:        0.002,
		Epochs:    6,
		SampleCap: 4000,
		MaxOutLen: 48,
		GradClip:  5,
		MinCount:  1,
		BatchSize: 1,
		Seed:      1,
	}
}

// Seq2Seq is an attention + copy (pointer-generator) encoder-decoder:
// a GRU encoder over [NL tokens, <sep>, schema tokens], a GRU decoder
// with Luong dot attention over encoder states, and an output mixture
// of a vocabulary softmax and a copy distribution over input
// positions. The copy path lets the model emit schema tokens of
// databases never seen in training — the mechanism that makes the
// translator usable in the Spider-style cross-schema evaluation.
type Seq2Seq struct {
	cfg   Seq2SeqConfig
	vocab *tokens.Vocab
	ps    *neural.ParamSet
	emb   *neural.Embedding
	enc   *neural.GRU
	dec   *neural.GRU
	wc    *neural.Linear // comb = tanh(Wc [h_dec; ctx])
	wo    *neural.Linear // vocabulary logits
	wg    *neural.Linear // p_gen scalar
	rng   *rand.Rand
}

// NewSeq2Seq returns an untrained model; parameters are allocated at
// Train time once the vocabulary is known.
func NewSeq2Seq(cfg Seq2SeqConfig) *Seq2Seq {
	return &Seq2Seq{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Name implements Translator.
func (m *Seq2Seq) Name() string { return "seq2seq" }

// Vocab exposes the trained vocabulary (nil before Train).
func (m *Seq2Seq) Vocab() *tokens.Vocab { return m.vocab }

// NumParams returns the number of trainable parameters (0 before
// Train).
func (m *Seq2Seq) NumParams() int {
	if m.ps == nil {
		return 0
	}
	return m.ps.NumParams()
}

func (m *Seq2Seq) build(vocabSize int) {
	m.ps = &neural.ParamSet{}
	m.emb = neural.NewEmbedding(m.ps, "emb", vocabSize, m.cfg.EmbDim, m.rng)
	applySynonymClusters(m.emb, m.vocab, m.rng)
	m.enc = neural.NewGRU(m.ps, "enc", m.cfg.EmbDim, m.cfg.HidDim, m.rng)
	m.dec = neural.NewGRU(m.ps, "dec", m.cfg.EmbDim, m.cfg.HidDim, m.rng)
	m.wc = neural.NewLinear(m.ps, "wc", 2*m.cfg.HidDim, m.cfg.HidDim, m.rng)
	m.wo = neural.NewLinear(m.ps, "wo", m.cfg.HidDim, vocabSize, m.rng)
	m.wg = neural.NewLinear(m.ps, "wg", m.cfg.HidDim, 1, m.rng)
}

// Train implements Translator: teacher-forced training with minibatch
// gradient accumulation. BatchSize 1 (the default) takes one Adam step
// per example, exactly the original sequential SGD trajectory; larger
// batches accumulate per-example gradients — computed concurrently by
// up to Workers goroutines into shadow gradient lanes — before each
// step. Results are bit-identical for every worker count.
func (m *Seq2Seq) Train(examples []Example) {
	// Background is never done and no checkpointing is configured, so
	// the error is always nil.
	_ = m.TrainContext(context.Background(), examples, TrainOptions{})
}

// TrainContext is Train with cooperative cancellation and optional
// checkpoint/resume. Cancellation is observed between optimizer steps
// (and between the per-example backprops of a batch); when a
// checkpoint destination is configured, a final snapshot is written
// before the context's error is returned, so an interrupted run never
// loses completed steps. Resuming from a checkpoint written over the
// same examples and configuration continues the exact weight
// trajectory of the uninterrupted run (see trainSchedule).
func (m *Seq2Seq) TrainContext(ctx context.Context, examples []Example, opts TrainOptions) error {
	if len(examples) == 0 {
		return nil
	}
	m.vocab = BuildVocabs(examples, m.cfg.MinCount)
	// build draws the same RNG sequence on fresh and resumed runs —
	// that replay, not serialized RNG internals, is what puts the
	// generator back in position after a resume.
	m.build(m.vocab.Size())
	opt := neural.NewAdam(m.ps, m.cfg.LR)

	sched := &trainSchedule{
		epochs:    m.cfg.Epochs,
		sampleCap: m.cfg.SampleCap,
		batchSize: m.cfg.BatchSize,
		workers:   m.cfg.Workers,
		gradClip:  m.cfg.GradClip,
		rng:       m.rng,
		main:      m.ps,
		opt:       opt,
	}
	bs := batchSizeOf(m.cfg.BatchSize)
	if bs > 1 {
		lanes := make([]*Seq2Seq, bs)
		sched.lanes = make([]*neural.ParamSet, bs)
		for i := range lanes {
			lanes[i] = m.workerClone()
			sched.lanes[i] = lanes[i].ps
		}
		sched.accum = func(lane, exIdx int) { lanes[lane].backprop(examples[exIdx]) }
	} else {
		sched.accum = func(_, exIdx int) { m.backprop(examples[exIdx]) }
	}

	if r := opts.Resume; r != nil {
		if err := m.restoreCheckpoint(r); err != nil {
			return err
		}
		if err := opt.Restore(r.Adam); err != nil {
			return err
		}
	}
	scheduleCheckpointing(sched, opts, func(epoch, step int) (*Checkpoint, error) {
		return snapshot(m.Name(), epoch, step, m.SaveFull, opt)
	})
	return sched.run(ctx, len(examples))
}

// restoreCheckpoint copies a checkpoint's weights into the
// freshly-built parameter set, validating that the checkpoint matches
// this model and vocabulary.
func (m *Seq2Seq) restoreCheckpoint(ck *Checkpoint) error {
	if err := resumeKindErr(ck, m.Name()); err != nil {
		return err
	}
	var in savedSeq2Seq
	if err := gob.NewDecoder(bytes.NewReader(ck.Model)).Decode(&in); err != nil {
		return fmt.Errorf("models: resume: decode checkpoint model: %w", err)
	}
	if len(in.Vocab) != m.vocab.Size() {
		return fmt.Errorf("models: resume: vocabulary size %d does not match checkpoint's %d (resume requires the original examples and config)",
			m.vocab.Size(), len(in.Vocab))
	}
	return restoreParams(m.ps.Mats(), m.ps.Names(), in.Mats)
}

// workerClone returns a model that shares this model's weights and
// vocabulary but backprops into its own shadow gradient buffers — the
// per-lane worker of the minibatch loop. The clone's modules are
// registered in the same order as build, keeping its ParamSet
// merge-compatible with the original.
func (m *Seq2Seq) workerClone() *Seq2Seq {
	c := &Seq2Seq{cfg: m.cfg, vocab: m.vocab, ps: &neural.ParamSet{}}
	c.emb = m.emb.Shadow(c.ps, "emb")
	c.enc = m.enc.Shadow(c.ps, "enc")
	c.dec = m.dec.Shadow(c.ps, "dec")
	c.wc = m.wc.Shadow(c.ps, "wc")
	c.wo = m.wo.Shadow(c.ps, "wo")
	c.wg = m.wg.Shadow(c.ps, "wg")
	return c
}

// encState holds the encoder pass over one input.
type encState struct {
	ids    []int
	toks   []string
	states [][]float64
	caches []*neural.GRUCache
	final  []float64
}

func (m *Seq2Seq) encode(input []string) *encState {
	es := &encState{toks: input, ids: m.vocab.Encode(input)}
	h := neural.NewVec(m.cfg.HidDim)
	for _, id := range es.ids {
		x := m.emb.Lookup(id)
		hn, cache := m.enc.Forward(x, h)
		es.states = append(es.states, hn)
		es.caches = append(es.caches, cache)
		h = hn
	}
	es.final = h
	return es
}

// decStep holds one decoder step's intermediates for backprop.
type decStep struct {
	prevID   int
	cache    *neural.GRUCache
	hDec     []float64
	alpha    []float64
	ctx      []float64
	concat   []float64
	combPre  []float64 // wc output before tanh? stored as comb (post-tanh)
	comb     []float64
	logits   []float64
	pv       []float64
	pgen     float64
	target   string
	targetID int
	prob     float64
}

// forwardStep runs one decoder step.
func (m *Seq2Seq) forwardStep(prevID int, h []float64, es *encState) (*decStep, []float64) {
	st := &decStep{prevID: prevID}
	x := m.emb.Lookup(prevID)
	hNew, cache := m.dec.Forward(x, h)
	st.cache = cache
	st.hDec = hNew

	// Luong dot attention over encoder states.
	T := len(es.states)
	scores := neural.NewVec(T)
	for i, eh := range es.states {
		scores[i] = neural.Dot(hNew, eh)
	}
	st.alpha = neural.Softmax(scores, neural.NewVec(T))
	st.ctx = neural.NewVec(m.cfg.HidDim)
	for i, a := range st.alpha {
		neural.Axpy(a, es.states[i], st.ctx)
	}

	st.concat = make([]float64, 0, 2*m.cfg.HidDim)
	st.concat = append(st.concat, hNew...)
	st.concat = append(st.concat, st.ctx...)
	pre := m.wc.Forward(st.concat)
	st.comb = neural.NewVec(m.cfg.HidDim)
	neural.Tanh(pre, st.comb)

	st.logits = m.wo.Forward(st.comb)
	st.pv = neural.Softmax(st.logits, neural.NewVec(len(st.logits)))
	g := m.wg.Forward(st.comb)[0]
	st.pgen = 1.0 / (1.0 + math.Exp(-g))
	return st, hNew
}

// prob computes the mixture probability of emitting token t.
func (st *decStep) probOf(t string, vocab *tokens.Vocab, es *encState) (p, copySum float64, inVocab bool) {
	inVocab = vocab.Has(t)
	if inVocab {
		p = st.pgen * st.pv[vocab.ID(t)]
	}
	for i, tok := range es.toks {
		if tok == t {
			copySum += st.alpha[i]
		}
	}
	p += (1 - st.pgen) * copySum
	return p, copySum, inVocab
}

// rollout runs the teacher-forced forward pass and returns the
// encoder state, the decoder steps, and the summed negative
// log-likelihood.
func (m *Seq2Seq) rollout(ex Example) (*encState, []*decStep, float64) {
	input := InputSequence(ex.NL, ex.Schema)
	es := m.encode(input)

	target := append(append([]string{}, ex.SQL...), tokens.EosToken)
	h := es.final
	prevID := tokens.BosID
	steps := make([]*decStep, 0, len(target))
	loss := 0.0
	for _, t := range target {
		st, hNew := m.forwardStep(prevID, h, es)
		st.target = t
		st.targetID = m.vocab.ID(t)
		p, _, _ := st.probOf(t, m.vocab, es)
		st.prob = p
		pc := p
		if pc < 1e-12 {
			pc = 1e-12
		}
		loss += -math.Log(pc)
		steps = append(steps, st)
		h = hNew
		prevID = st.targetID // teacher forcing (OOV -> UNK embedding)
	}
	return es, steps, loss
}

// Loss returns the teacher-forced NLL of one example without touching
// gradients (used by gradient checks and validation).
func (m *Seq2Seq) Loss(ex Example) float64 {
	_, _, loss := m.rollout(ex)
	return loss
}

// step runs one training example: forward, loss, backward, update.
func (m *Seq2Seq) step(ex Example, opt *neural.Adam) {
	m.backprop(ex)
	m.ps.ClipGrad(m.cfg.GradClip)
	opt.Step()
}

// backprop accumulates gradients for one example and returns its loss.
func (m *Seq2Seq) backprop(ex Example) float64 {
	es, steps, loss := m.rollout(ex)

	// Backward.
	hid := m.cfg.HidDim
	dEnc := make([][]float64, len(es.states))
	for i := range dEnc {
		dEnc[i] = neural.NewVec(hid)
	}
	dh := neural.NewVec(hid) // recurrent grad into decoder step t
	for k := len(steps) - 1; k >= 0; k-- {
		st := steps[k]
		p := st.prob
		if p < 1e-12 {
			p = 1e-12
		}
		dP := -1.0 / p

		inVocab := m.vocab.Has(st.target)
		copySum := 0.0
		for i, tok := range es.toks {
			if tok == st.target {
				copySum += st.alpha[i]
			}
		}
		// d p_gen and the two mixture branches.
		var dPvT float64
		if inVocab {
			dPvT = dP * st.pgen
		}
		dpgen := 0.0
		if inVocab {
			dpgen += dP * st.pv[st.targetID]
		}
		dpgen -= dP * copySum

		dAlpha := neural.NewVec(len(st.alpha))
		for i, tok := range es.toks {
			if tok == st.target {
				dAlpha[i] += dP * (1 - st.pgen)
			}
		}

		dComb := neural.NewVec(hid)

		// Vocabulary softmax backward (single nonzero dPv row).
		if dPvT != 0 {
			pvT := st.pv[st.targetID]
			dLogits := neural.NewVec(len(st.pv))
			for j := range dLogits {
				d := -pvT * st.pv[j]
				if j == st.targetID {
					d += pvT
				}
				dLogits[j] = dPvT * d
			}
			dc := m.wo.Backward(st.comb, dLogits)
			for i := range dComb {
				dComb[i] += dc[i]
			}
		}

		// p_gen sigmoid backward.
		if dpgen != 0 {
			dg := dpgen * st.pgen * (1 - st.pgen)
			dc := m.wg.Backward(st.comb, []float64{dg})
			for i := range dComb {
				dComb[i] += dc[i]
			}
		}

		// comb = tanh(wc [h;ctx]) backward.
		dPre := neural.NewVec(hid)
		for i := range dPre {
			dPre[i] = dComb[i] * (1 - st.comb[i]*st.comb[i])
		}
		dConcat := m.wc.Backward(st.concat, dPre)
		dHdec := neural.NewVec(hid)
		copy(dHdec, dConcat[:hid])
		dCtx := dConcat[hid:]

		// ctx = Σ α_i enc_i backward.
		for i, a := range st.alpha {
			neural.Axpy(a, dCtx, dEnc[i])
			dAlpha[i] += neural.Dot(dCtx, es.states[i])
		}
		// Attention softmax backward.
		sumAD := 0.0
		for i, a := range st.alpha {
			sumAD += a * dAlpha[i]
		}
		for i, a := range st.alpha {
			ds := a * (dAlpha[i] - sumAD)
			if ds == 0 {
				continue
			}
			neural.Axpy(ds, es.states[i], dHdec)
			neural.Axpy(ds, st.hDec, dEnc[i])
		}

		// Recurrent grad from the next step.
		for i := range dHdec {
			dHdec[i] += dh[i]
		}
		dx, dhPrev := m.dec.Backward(st.cache, dHdec)
		m.emb.AccumGrad(st.prevID, dx)
		dh = dhPrev
	}

	// Encoder backward: decoder initial state was the encoder final
	// state, so dh chains straight in.
	for i := len(es.caches) - 1; i >= 0; i-- {
		for j := range dh {
			dh[j] += dEnc[i][j]
		}
		dx, dhPrev := m.enc.Backward(es.caches[i], dh)
		m.emb.AccumGrad(es.ids[i], dx)
		dh = dhPrev
	}
	return loss
}

// Translate implements Translator: greedy decoding with the
// generate/copy mixture.
func (m *Seq2Seq) Translate(nl, schemaToks []string) []string {
	if m.vocab == nil {
		return nil
	}
	input := InputSequence(nl, schemaToks)
	es := m.encode(input)
	h := es.final
	prevID := tokens.BosID
	var out []string
	for step := 0; step < m.cfg.MaxOutLen; step++ {
		st, hNew := m.forwardStep(prevID, h, es)
		tok := m.bestToken(st, es)
		if tok == tokens.EosToken {
			break
		}
		out = append(out, tok)
		h = hNew
		prevID = m.vocab.ID(tok)
	}
	return out
}

// bestToken picks the argmax token of the mixture distribution over
// the vocabulary plus copyable input tokens.
func (m *Seq2Seq) bestToken(st *decStep, es *encState) string {
	return m.pickToken(st.pv, st.pgen, st.alpha, es.toks)
}

// pickToken is the decoding argmax shared by the sequential and the
// batched greedy decoders: pv is the vocabulary softmax, pgen the
// generate-vs-copy mixture weight, alpha the attention over inputToks.
func (m *Seq2Seq) pickToken(pv []float64, pgen float64, alpha []float64, inputToks []string) string {
	// Copy mass per distinct input token.
	copyMass := map[string]float64{}
	for i, tok := range inputToks {
		copyMass[tok] += alpha[i]
	}
	bestTok := tokens.EosToken
	bestP := math.Inf(-1)
	for id, pvID := range pv {
		p := pgen * pvID
		w := m.vocab.Word(id)
		if cm, ok := copyMass[w]; ok {
			p += (1 - pgen) * cm
		}
		if id == tokens.PadID || id == tokens.BosID || id == tokens.UnkID || w == tokens.SepToken {
			continue
		}
		if p > bestP {
			bestP, bestTok = p, w
		}
	}
	for _, tok := range sortedKeys(copyMass) {
		if m.vocab.Has(tok) || tok == tokens.SepToken {
			continue // already counted through the vocabulary loop
		}
		p := (1 - pgen) * copyMass[tok]
		if p > bestP {
			bestP, bestTok = p, tok
		}
	}
	return bestTok
}

// Save writes the model weights (vocabulary must be rebuilt by
// retraining or supplied externally; cmd/dbpal-train persists both).
func (m *Seq2Seq) Save(w io.Writer) error { return m.ps.Save(w) }

// LoadInto restores weights into a model already built with the same
// vocabulary and configuration.
func (m *Seq2Seq) LoadInto(r io.Reader) error { return m.ps.Load(r) }
