package models

import (
	"context"
	"math"
	"sort"

	"repro/internal/neural"
	"repro/internal/tokens"
)

// BatchTranslator is the optional contract for translators that can
// decode many prepared questions in one batched forward pass. The
// serving layer's microbatcher (internal/serve) gathers concurrent
// cache-missing requests and flushes them through TranslateBatch, so
// k concurrent users pay one sweep over the model weights instead of
// k. The contract is strict: row r of the result must be bit-identical
// to Translate(nls[r], schemaToks) — batching is a throughput
// optimization, never a semantic one (golden tests in
// batch_translate_test.go).
type BatchTranslator interface {
	Translator
	// TranslateBatch decodes every input in one batched pass and
	// returns one token sequence per input, index-aligned.
	TranslateBatch(nls [][]string, schemaToks []string) [][]string
}

// ContextTranslator is the optional contract for translators whose
// decode observes cancellation: the runtime's tier chain prefers
// TranslateContext over Translate when a model offers it, passing the
// per-tier deadline context. The serving layer's batching adapter
// implements it so a cancelled request can leave a pending microbatch
// cleanly instead of blocking until the flush.
type ContextTranslator interface {
	// TranslateContext is Translate bounded by ctx; a cancelled decode
	// returns nil.
	TranslateContext(ctx context.Context, nl, schemaToks []string) []string
}

// TranslateEach is the generic per-item fallback for translators
// without a native batched path: it preserves the batch call shape by
// looping Translate.
func TranslateEach(t Translator, nls [][]string, schemaToks []string) [][]string {
	out := make([][]string, len(nls))
	for i, nl := range nls {
		out[i] = t.Translate(nl, schemaToks)
	}
	return out
}

var _ BatchTranslator = (*Seq2Seq)(nil)

// TranslateBatch implements BatchTranslator with batched greedy
// decoding: the k inputs advance in lockstep through arena-backed
// GEMM kernels (neural.StepBatch / ForwardBatch), so each weight row
// is swept once per step for the whole batch. The encoder sorts rows
// by input length (longest first) so the rows still consuming tokens
// at timestep t always form a batch prefix; the decoder keeps a
// shrinking active set, with rows leaving the batch at their EOS.
//
// Per-row output is bit-identical to Translate: every batched kernel
// replays the sequential path's operation order row by row, and the
// argmax (pickToken) is literally the same code.
func (m *Seq2Seq) TranslateBatch(nls [][]string, schemaToks []string) [][]string {
	k := len(nls)
	out := make([][]string, k)
	if m.vocab == nil || k == 0 {
		return out
	}
	hid := m.cfg.HidDim
	arena := neural.NewArena()

	// Prepare per-row inputs.
	inputs := make([][]string, k)
	idSeqs := make([][]int, k)
	maxT, total := 0, 0
	for r, nl := range nls {
		inputs[r] = InputSequence(nl, schemaToks)
		idSeqs[r] = m.vocab.Encode(inputs[r])
		if len(idSeqs[r]) > maxT {
			maxT = len(idSeqs[r])
		}
		total += len(idSeqs[r])
	}
	// Longest-first row order (stable on index): the rows with a token
	// left at timestep t are then always a prefix of the sorted batch.
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return len(idSeqs[order[a]]) > len(idSeqs[order[b]])
	})

	// Encoder. The per-position hidden states feed attention at every
	// decode step, so they persist for the whole call in one slab.
	slab := make([]float64, total*hid)
	states := make([][][]float64, k) // states[row][t] is a hid-view into slab
	off := 0
	for r, ids := range idSeqs {
		states[r] = make([][]float64, len(ids))
		for t := range ids {
			states[r][t] = slab[off : off+hid]
			off += hid
		}
	}
	h := neural.NewBatch(k, hid) // encoder hidden, sorted-row order
	prev := make([]int, k)
	for t := 0; t < maxT; t++ {
		active := 0
		for active < k && len(idSeqs[order[active]]) > t {
			active++
		}
		if active == 0 {
			break
		}
		for s := 0; s < active; s++ {
			prev[s] = idSeqs[order[s]][t]
		}
		xb := m.emb.LookupBatch(prev[:active], arena)
		hn := m.enc.StepBatch(xb, h.Prefix(active), arena)
		for s := 0; s < active; s++ {
			copy(states[order[s]][t], hn.Row(s))
			copy(h.Row(s), hn.Row(s))
		}
		arena.Reset()
	}

	// Decoder: greedy over the active set, seeded with each row's
	// final encoder state.
	type rowState struct {
		r    int       // original row index
		prev int       // previous token id
		h    []float64 // persistent decoder hidden
	}
	hslab := make([]float64, k*hid)
	active := make([]*rowState, 0, k)
	for r := 0; r < k; r++ {
		hr := hslab[r*hid : (r+1)*hid]
		if T := len(idSeqs[r]); T > 0 {
			copy(hr, states[r][T-1])
		}
		active = append(active, &rowState{r: r, prev: tokens.BosID, h: hr})
	}
	alphas := make([][]float64, k)
	for step := 0; step < m.cfg.MaxOutLen && len(active) > 0; step++ {
		na := len(active)
		for s, rs := range active {
			prev[s] = rs.prev
		}
		xb := m.emb.LookupBatch(prev[:na], arena)
		hb := arena.Batch(na, hid)
		for s, rs := range active {
			copy(hb.Row(s), rs.h)
		}
		hn := m.dec.StepBatch(xb, hb, arena)

		// Luong dot attention and [h;ctx] assembly, per row (ragged
		// encoder lengths keep this part sequential; it is O(T·hid),
		// dwarfed by the vocabulary projection below).
		cb := arena.Batch(na, 2*hid)
		for s, rs := range active {
			es := states[rs.r]
			hrow := hn.Row(s)
			scores := arena.Vec(len(es))
			for i, eh := range es {
				scores[i] = neural.Dot(hrow, eh)
			}
			alpha := neural.Softmax(scores, arena.Vec(len(es)))
			alphas[s] = alpha
			ctx := arena.Vec(hid)
			for i, a := range alpha {
				neural.Axpy(a, es[i], ctx)
			}
			crow := cb.Row(s)
			copy(crow[:hid], hrow)
			copy(crow[hid:], ctx)
		}

		// The batched hot path: wc, the vocabulary projection wo (the
		// dominant GEMM), its softmax, and the p_gen head.
		pre := m.wc.ForwardBatch(cb, arena)
		comb := arena.Batch(na, hid)
		neural.TanhBatch(pre, comb)
		logits := m.wo.ForwardBatch(comb, arena)
		pv := neural.SoftmaxRows(logits, arena.Batch(na, logits.N))
		gb := m.wg.ForwardBatch(comb, arena)

		next := active[:0]
		for s, rs := range active {
			pgen := 1.0 / (1.0 + math.Exp(-gb.Row(s)[0]))
			tok := m.pickToken(pv.Row(s), pgen, alphas[s], inputs[rs.r])
			if tok == tokens.EosToken {
				continue // row finished; it leaves the batch
			}
			out[rs.r] = append(out[rs.r], tok)
			copy(rs.h, hn.Row(s))
			rs.prev = m.vocab.ID(tok)
			next = append(next, rs)
		}
		active = next
		arena.Reset()
	}
	return out
}
