package models

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/lemma"
	"repro/internal/neural"
	"repro/internal/tokens"
)

// SketchConfig sizes the sketch-guided translator.
type SketchConfig struct {
	EmbDim    int
	HidDim    int
	LR        float64
	Epochs    int
	SampleCap int
	MaxSlots  int // slot positions with dedicated scorers
	GradClip  float64
	MinCount  int
	// BatchSize and Workers mirror Seq2SeqConfig: examples per
	// accumulated minibatch (0/1 = the original per-example SGD,
	// bit-for-bit) and the worker-pool bound for the batch backprop
	// (0 = runtime.NumCPU; never affects results).
	BatchSize int
	Workers   int
	Seed      int64
}

// DefaultSketchConfig returns the standard small configuration.
func DefaultSketchConfig() SketchConfig {
	return SketchConfig{
		EmbDim:    40,
		HidDim:    80,
		LR:        0.004,
		Epochs:    6,
		SampleCap: 4000,
		MaxSlots:  10,
		GradClip:  5,
		MinCount:  1,
		BatchSize: 1,
		Seed:      1,
	}
}

// slotKind types the schema elements a sketch slot can hold.
type slotKind int

const (
	kindTable slotKind = iota
	kindColumn
	kindQualified
	kindPlaceholder
	numKinds
)

// sketch is one SQL skeleton: tokens with schema-dependent tokens
// replaced by slot markers, plus the slot kinds in order.
type sketch struct {
	tokens  []string // slot positions hold the marker
	kinds   []slotKind
	clauses []clause // SQL clause each slot sits in
	key     string
}

// clause identifies the SQL clause a slot belongs to. Slot scorers are
// indexed by (clause, kind) — a role, not a position — so "the column
// being projected" and "the column being filtered" have distinct
// scorers shared across all sketches.
type clause int

const (
	clauseSelect clause = iota
	clauseFrom
	clauseWhere
	clauseGroup
	clauseHaving
	clauseOrder
	numClauses
)

// clauseOf tracks the current clause while scanning sketch tokens.
func clauseOf(cur clause, tok string) clause {
	switch strings.ToUpper(tok) {
	case "SELECT":
		return clauseSelect
	case "FROM":
		return clauseFrom
	case "WHERE":
		return clauseWhere
	case "GROUP":
		return clauseGroup
	case "HAVING":
		return clauseHaving
	case "ORDER":
		return clauseOrder
	}
	return cur
}

// scorerIndex flattens (clause, kind, position-within-clause) into a
// slot-scorer index. Position is capped at 1: the first slot of a kind
// in a clause gets its own scorer, later ones share a second (so "the
// first projected column" and "the second projected column", or an
// outer and an inner WHERE column, are scored by different roles).
func scorerIndex(c clause, k slotKind, pos int) int {
	if pos > 1 {
		pos = 1
	}
	return (int(c)*int(numKinds)+int(k))*2 + pos
}

// numScorers is the total number of (clause, kind, position) scorers.
const numScorers = int(numClauses) * int(numKinds) * 2

const slotMarker = "\x00slot"

// numSlotFeatures is the length of the hand-crafted schema-linking
// feature vector attached to every (slot, candidate) score:
//
//	0: lexical overlap — fraction of the candidate's lemmatized
//	   subtokens found among the NL tokens;
//	1: match position — how early the candidate is mentioned in the
//	   question (1 at the start, 0 when unmentioned), which lets the
//	   otherwise order-blind slot scorer tell projection columns
//	   ("show the population of ...") from filter columns ("... whose
//	   name is X");
//	2: placeholder overlap — overlap with the anonymized-constant
//	   tokens (@CITIES.NAME names its column), the strongest cue for
//	   filter-column slots.
const numSlotFeatures = 3

// Sketch is a syntax-guided translator in the spirit of SyntaxSQLNet:
// instead of decoding SQL token by token, it (1) encodes the question
// with a GRU, (2) classifies it into one of the SQL sketches observed
// in training, and (3) fills each sketch slot by scoring the schema
// candidates of the slot's kind with a bilinear match against the
// encoding plus learned schema-linking features. The modular
// decomposition mirrors SyntaxSQLNet's per-clause modules at a scale
// trainable on a CPU, and the linking features let it operate on
// schemas never seen in training.
type Sketch struct {
	cfg      SketchConfig
	vocab    *tokens.Vocab
	sketches []sketch
	byKey    map[string]int
	ps       *neural.ParamSet
	emb      *neural.Embedding
	enc      *neural.GRU
	clsW     *neural.Linear // sketch logits from the final GRU state
	slotW    []*neural.Mat  // per-slot bilinear (EmbDim x HidDim)
	slotF    *neural.Mat    // per-slot feature weights (MaxSlots x numSlotFeatures)
	rng      *rand.Rand
}

// NewSketch returns an untrained sketch model.
func NewSketch(cfg SketchConfig) *Sketch {
	return &Sketch{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), byKey: map[string]int{}}
}

// Name implements Translator.
func (m *Sketch) Name() string { return "sketch" }

// NumSketches returns the size of the learned sketch inventory.
func (m *Sketch) NumSketches() int { return len(m.sketches) }

// schemaSet indexes the schema tokens and derives each bare token's
// kind: a bare token is a table iff some qualified token has it as the
// table part, a column iff some qualified token has it as the column
// part.
type schemaSet struct {
	toks   []string
	kind   map[string]slotKind
	byKind map[slotKind][]string
}

func newSchemaSet(schemaToks []string) *schemaSet {
	s := &schemaSet{toks: schemaToks, kind: map[string]slotKind{}, byKind: map[slotKind][]string{}}
	tableNames := map[string]bool{}
	columnNames := map[string]bool{}
	for _, t := range schemaToks {
		if strings.HasPrefix(t, "@") {
			continue
		}
		if i := strings.IndexByte(t, '.'); i > 0 {
			tableNames[t[:i]] = true
			columnNames[t[i+1:]] = true
		}
	}
	for _, t := range schemaToks {
		var k slotKind
		switch {
		case strings.EqualFold(t, "@JOIN"):
			// @JOIN is structural (the unresolved-join marker), not a
			// schema element: it stays literal in sketches.
			continue
		case strings.HasPrefix(t, "@"):
			k = kindPlaceholder
		case strings.Contains(t, "."):
			k = kindQualified
		case tableNames[t]:
			k = kindTable
		case columnNames[t]:
			k = kindColumn
		default:
			k = kindColumn
		}
		if _, dup := s.kind[t]; dup {
			continue
		}
		s.kind[t] = k
		s.byKind[k] = append(s.byKind[k], t)
	}
	return s
}

// sketchOf extracts the sketch of a SQL token sequence given the
// example's schema, returning the gold slot fillers in order.
func sketchOf(sql []string, ss *schemaSet) (sketch, []string) {
	var sk sketch
	var gold []string
	cur := clauseSelect
	for _, t := range sql {
		if k, ok := ss.kind[t]; ok {
			sk.tokens = append(sk.tokens, slotMarker)
			sk.kinds = append(sk.kinds, k)
			sk.clauses = append(sk.clauses, cur)
			gold = append(gold, t)
		} else {
			cur = clauseOf(cur, t)
			sk.tokens = append(sk.tokens, t)
		}
	}
	var b strings.Builder
	si := 0
	for _, t := range sk.tokens {
		if t == slotMarker {
			b.WriteString("⟨")
			b.WriteString(kindName(sk.kinds[si]))
			b.WriteString("⟩")
			si++
		} else {
			b.WriteString(t)
		}
		b.WriteByte(' ')
	}
	sk.key = b.String()
	return sk, gold
}

func kindName(k slotKind) string {
	switch k {
	case kindTable:
		return "T"
	case kindColumn:
		return "C"
	case kindQualified:
		return "Q"
	default:
		return "P"
	}
}

// Train implements Translator.
func (m *Sketch) Train(examples []Example) {
	// Background is never done and no checkpointing is configured, so
	// the error is always nil.
	_ = m.TrainContext(context.Background(), examples, TrainOptions{})
}

// TrainContext is Train with cooperative cancellation and optional
// checkpoint/resume; the contract matches Seq2Seq.TrainContext.
func (m *Sketch) TrainContext(ctx context.Context, examples []Example, opts TrainOptions) error {
	if len(examples) == 0 {
		return nil
	}
	m.vocab = BuildVocabs(examples, m.cfg.MinCount)

	// Pass 1: build the sketch inventory. Deterministic in the example
	// list, so a resumed run reconstructs the same inventory.
	m.sketches = nil
	m.byKey = map[string]int{}
	for _, ex := range examples {
		ss := newSchemaSet(ex.Schema)
		sk, _ := sketchOf(ex.SQL, ss)
		if _, ok := m.byKey[sk.key]; !ok {
			m.byKey[sk.key] = len(m.sketches)
			m.sketches = append(m.sketches, sk)
		}
	}

	// buildParams draws the same RNG sequence on fresh and resumed
	// runs, putting the generator back in position without serializing
	// its internals.
	m.buildParams()
	opt := neural.NewAdam(m.ps, m.cfg.LR)

	sched := &trainSchedule{
		epochs:    m.cfg.Epochs,
		sampleCap: m.cfg.SampleCap,
		batchSize: m.cfg.BatchSize,
		workers:   m.cfg.Workers,
		gradClip:  m.cfg.GradClip,
		rng:       m.rng,
		main:      m.ps,
		opt:       opt,
	}
	bs := batchSizeOf(m.cfg.BatchSize)
	if bs > 1 {
		lanes := make([]*Sketch, bs)
		sched.lanes = make([]*neural.ParamSet, bs)
		for i := range lanes {
			lanes[i] = m.workerClone()
			sched.lanes[i] = lanes[i].ps
		}
		sched.accum = func(lane, exIdx int) { lanes[lane].step(examples[exIdx]) }
	} else {
		sched.accum = func(_, exIdx int) { m.step(examples[exIdx]) }
	}

	if r := opts.Resume; r != nil {
		if err := m.restoreCheckpoint(r); err != nil {
			return err
		}
		if err := opt.Restore(r.Adam); err != nil {
			return err
		}
	}
	scheduleCheckpointing(sched, opts, func(epoch, step int) (*Checkpoint, error) {
		return snapshot(m.Name(), epoch, step, m.SaveFull, opt)
	})
	return sched.run(ctx, len(examples))
}

// restoreCheckpoint copies a checkpoint's weights into the
// freshly-built parameter set, validating that the checkpoint matches
// this model, vocabulary, and sketch inventory.
func (m *Sketch) restoreCheckpoint(ck *Checkpoint) error {
	if err := resumeKindErr(ck, m.Name()); err != nil {
		return err
	}
	var in savedSketch
	if err := gob.NewDecoder(bytes.NewReader(ck.Model)).Decode(&in); err != nil {
		return fmt.Errorf("models: resume: decode checkpoint model: %w", err)
	}
	if len(in.Vocab) != m.vocab.Size() || len(in.Sketches) != len(m.sketches) {
		return fmt.Errorf("models: resume: vocabulary/inventory (%d/%d) does not match checkpoint's (%d/%d) (resume requires the original examples and config)",
			m.vocab.Size(), len(m.sketches), len(in.Vocab), len(in.Sketches))
	}
	return restoreParams(m.ps.Mats(), m.ps.Names(), in.Mats)
}

// workerClone returns a model sharing this model's weights, vocabulary
// and sketch inventory, with private shadow gradient buffers — one
// lane of the minibatch loop. Module registration order matches
// buildParams so the clone's ParamSet merges back cleanly.
func (m *Sketch) workerClone() *Sketch {
	c := &Sketch{
		cfg:      m.cfg,
		vocab:    m.vocab,
		sketches: m.sketches,
		byKey:    m.byKey,
		ps:       &neural.ParamSet{},
	}
	c.emb = m.emb.Shadow(c.ps, "emb")
	c.enc = m.enc.Shadow(c.ps, "enc")
	c.clsW = m.clsW.Shadow(c.ps, "cls")
	c.slotW = make([]*neural.Mat, len(m.slotW))
	for k := range m.slotW {
		c.slotW[k] = c.ps.Register(fmt.Sprintf("slotW%02d", k), m.slotW[k].Shadow())
	}
	c.slotF = c.ps.Register("slotF", m.slotF.Shadow())
	return c
}

// buildParams allocates the model parameters for the current
// vocabulary and sketch inventory.
func (m *Sketch) buildParams() {
	m.ps = &neural.ParamSet{}
	m.emb = neural.NewEmbedding(m.ps, "emb", m.vocab.Size(), m.cfg.EmbDim, m.rng)
	applySynonymClusters(m.emb, m.vocab, m.rng)
	m.enc = neural.NewGRU(m.ps, "enc", m.cfg.EmbDim, m.cfg.HidDim, m.rng)
	m.clsW = neural.NewLinear(m.ps, "cls", m.cfg.HidDim, len(m.sketches), m.rng)
	m.slotW = make([]*neural.Mat, numScorers)
	for k := range m.slotW {
		m.slotW[k] = m.ps.Register(fmt.Sprintf("slotW%02d", k), neural.NewMatRand(m.cfg.EmbDim, m.cfg.HidDim, m.rng))
	}
	m.slotF = m.ps.Register("slotF", neural.NewMat(numScorers, numSlotFeatures))
	for k := 0; k < numScorers; k++ {
		m.slotF.Set(k, 0, 2.0) // positive overlap prior
	}
}

// encCache holds the GRU pass for backprop.
type encCache struct {
	ids    []int
	caches []*neural.GRUCache
	final  []float64
}

// encodeNL runs the GRU encoder over the NL tokens.
func (m *Sketch) encodeNL(nl []string) *encCache {
	ec := &encCache{ids: m.vocab.Encode(nl)}
	h := neural.NewVec(m.cfg.HidDim)
	for _, id := range ec.ids {
		hn, cache := m.enc.Forward(m.emb.Lookup(id), h)
		ec.caches = append(ec.caches, cache)
		h = hn
	}
	ec.final = h
	return ec
}

// encBackward backpropagates a gradient on the final state through the
// GRU and embeddings.
func (m *Sketch) encBackward(ec *encCache, dFinal []float64) {
	dh := dFinal
	for i := len(ec.caches) - 1; i >= 0; i-- {
		dx, dhPrev := m.enc.Backward(ec.caches[i], dh)
		m.emb.AccumGrad(ec.ids[i], dx)
		dh = dhPrev
	}
}

// candEmb returns the candidate's embedding: the mean of its own
// vocabulary embedding and its subtoken embeddings.
func (m *Sketch) candEmb(c string) []float64 {
	out := neural.NewVec(m.cfg.EmbDim)
	parts := candSubtokens(c)
	n := float64(len(parts)) + 1
	neural.Axpy(1/n, m.emb.Lookup(m.vocab.ID(c)), out)
	for _, p := range parts {
		neural.Axpy(1/n, m.emb.Lookup(m.vocab.ID(p)), out)
	}
	return out
}

// candEmbGrad backpropagates a gradient into the candidate's
// constituent embeddings.
func (m *Sketch) candEmbGrad(c string, g []float64) {
	parts := candSubtokens(c)
	n := float64(len(parts)) + 1
	scaled := neural.NewVec(len(g))
	for i := range g {
		scaled[i] = g[i] / n
	}
	m.emb.AccumGrad(m.vocab.ID(c), scaled)
	for _, p := range parts {
		m.emb.AccumGrad(m.vocab.ID(p), scaled)
	}
}

// candSubtokens splits a schema token into lemmatized word parts for
// linking features and embedding pooling. Lemmatization aligns the
// parts with the lemmatized NL tokens ("cities" -> "city"), which is
// what makes the linking features fire on unseen schemas.
func candSubtokens(c string) []string {
	c = strings.TrimPrefix(c, "@")
	c = strings.ToLower(c)
	parts := strings.FieldsFunc(c, func(r rune) bool { return r == '.' || r == '_' })
	for i, p := range parts {
		parts[i] = lemma.Lemmatize(p)
	}
	return parts
}

// nlContext precomputes the linking-feature lookups for one question.
type nlContext struct {
	set    map[string]bool // lemmatized NL tokens
	phSet  map[string]bool // subtokens of placeholder tokens
	pos    map[string]int  // first position of each lemmatized token
	length int
}

func newNLContext(nl []string) *nlContext {
	c := &nlContext{set: map[string]bool{}, phSet: map[string]bool{}, pos: map[string]int{}, length: len(nl)}
	for i, t := range nl {
		lt := strings.ToLower(strings.TrimPrefix(t, "@"))
		ll := lemma.Lemmatize(lt)
		c.set[lt] = true
		c.set[ll] = true
		if _, ok := c.pos[ll]; !ok {
			c.pos[ll] = i
		}
		if strings.HasPrefix(t, "@") {
			for _, p := range candSubtokens(t) {
				c.phSet[p] = true
				c.set[p] = true
				if _, ok := c.pos[p]; !ok {
					c.pos[p] = i
				}
			}
		}
	}
	return c
}

// features computes the schema-linking feature vector for a candidate.
func (c *nlContext) features(cand string) [numSlotFeatures]float64 {
	parts := candSubtokens(cand)
	if len(parts) == 0 {
		return [numSlotFeatures]float64{}
	}
	hit, phHit := 0, 0
	first := -1
	for _, p := range parts {
		if c.set[p] {
			hit++
			if i, ok := c.pos[p]; ok && (first < 0 || i < first) {
				first = i
			}
		}
		if c.phSet[p] {
			phHit++
		}
	}
	var f [numSlotFeatures]float64
	f[0] = float64(hit) / float64(len(parts))
	if first >= 0 && c.length > 1 {
		f[1] = 1 - float64(first)/float64(c.length-1)
	}
	f[2] = float64(phHit) / float64(len(parts))
	return f
}

// slotScores scores every candidate for the (clause, kind) scorer k.
func (m *Sketch) slotScores(k int, enc []float64, cands []string, nlc *nlContext) (scores []float64, embs [][]float64, proj []float64, feats [][numSlotFeatures]float64) {
	proj = neural.NewVec(m.cfg.EmbDim)
	m.slotW[k].MulVec(enc, proj)
	scores = neural.NewVec(len(cands))
	embs = make([][]float64, len(cands))
	feats = make([][numSlotFeatures]float64, len(cands))
	fr := m.slotF.Row(k)
	for i, c := range cands {
		embs[i] = m.candEmb(c)
		feats[i] = nlc.features(c)
		s := neural.Dot(embs[i], proj)
		for j := 0; j < numSlotFeatures; j++ {
			s += fr[j] * feats[i][j]
		}
		scores[i] = s
	}
	return scores, embs, proj, feats
}

// step trains on one example: sketch classification + slot filling.
func (m *Sketch) step(ex Example) {
	ss := newSchemaSet(ex.Schema)
	sk, gold := sketchOf(ex.SQL, ss)
	skID, ok := m.byKey[sk.key]
	if !ok {
		return // sketch not in inventory (defensive)
	}
	ec := m.encodeNL(ex.NL)
	enc := ec.final
	nlc := newNLContext(ex.NL)

	dEnc := neural.NewVec(m.cfg.HidDim)

	// Sketch classification loss.
	logits := m.clsW.Forward(enc)
	probs := neural.Softmax(logits, neural.NewVec(len(logits)))
	dLogits := neural.NewVec(len(logits))
	copy(dLogits, probs)
	dLogits[skID] -= 1
	d := m.clsW.Backward(enc, dLogits)
	for i := range dEnc {
		dEnc[i] += d[i]
	}

	// Slot-filling losses.
	rolePos := map[int]int{}
	for si, kind := range sk.kinds {
		cands := ss.byKind[kind]
		goldIdx := indexOf(cands, gold[si])
		role := int(sk.clauses[si])*int(numKinds) + int(kind)
		k := scorerIndex(sk.clauses[si], kind, rolePos[role])
		rolePos[role]++
		if goldIdx < 0 || len(cands) < 2 {
			continue
		}
		scores, embs, proj, feats := m.slotScores(k, enc, cands, nlc)
		sp := neural.Softmax(scores, neural.NewVec(len(scores)))
		dProj := neural.NewVec(m.cfg.EmbDim)
		frG := m.slotF.GradRow(k)
		for i, c := range cands {
			ds := sp[i]
			if i == goldIdx {
				ds -= 1
			}
			if ds == 0 {
				continue
			}
			neural.Axpy(ds, embs[i], dProj)
			gEmb := neural.NewVec(m.cfg.EmbDim)
			neural.Axpy(ds, proj, gEmb)
			m.candEmbGrad(c, gEmb)
			for j := 0; j < numSlotFeatures; j++ {
				frG[j] += ds * feats[i][j]
			}
		}
		m.slotW[k].AddOuterGrad(dProj, enc)
		m.slotW[k].MulVecT(dProj, dEnc)
	}

	m.encBackward(ec, dEnc)
}

func indexOf(list []string, x string) int {
	for i, v := range list {
		if v == x {
			return i
		}
	}
	return -1
}

// Translate implements Translator: classify the sketch, then fill each
// slot with the best candidate of the slot's kind. Candidates already
// used inside the same SELECT list are penalized so projections do not
// degenerate to a repeated column.
func (m *Sketch) Translate(nl, schemaToks []string) []string {
	out := m.TranslateK(nl, schemaToks, 1)
	if len(out) == 0 {
		return nil
	}
	return out[0]
}

// Loss returns the example's combined loss without updating gradients
// (used by tests and gradient checks).
func (m *Sketch) Loss(ex Example) float64 {
	ss := newSchemaSet(ex.Schema)
	sk, gold := sketchOf(ex.SQL, ss)
	skID, ok := m.byKey[sk.key]
	if !ok {
		return 0
	}
	ec := m.encodeNL(ex.NL)
	enc := ec.final
	nlc := newNLContext(ex.NL)
	logits := m.clsW.Forward(enc)
	probs := neural.Softmax(logits, neural.NewVec(len(logits)))
	loss := -math.Log(math.Max(probs[skID], 1e-12))
	rolePos := map[int]int{}
	for si, kind := range sk.kinds {
		cands := ss.byKind[kind]
		goldIdx := indexOf(cands, gold[si])
		role := int(sk.clauses[si])*int(numKinds) + int(kind)
		k := scorerIndex(sk.clauses[si], kind, rolePos[role])
		rolePos[role]++
		if goldIdx < 0 || len(cands) < 2 {
			continue
		}
		scores, _, _, _ := m.slotScores(k, enc, cands, nlc)
		sp := neural.Softmax(scores, neural.NewVec(len(scores)))
		loss += -math.Log(math.Max(sp[goldIdx], 1e-12))
	}
	return loss
}
