// Package models provides the pluggable NL2SQL translation models that
// DBPal's pipeline trains. Two architectures are included:
//
//   - Seq2Seq: an attention + copy (pointer-generator) encoder-decoder,
//     the "generic seq2seq" family of the paper;
//   - Sketch: a syntax-guided model in the spirit of SyntaxSQLNet —
//     a query-pattern classifier plus per-slot schema pointers.
//
// Both implement Translator, the pluggability contract of the paper:
// anything that trains on (NL tokens, SQL tokens, schema tokens)
// triples can be slotted into the pipeline.
package models

import (
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/schema"
	"repro/internal/sqlast"
	"repro/internal/tokens"
)

// Example is one training or inference instance: lemmatized,
// anonymized NL tokens, target SQL tokens, and the schema-token
// context of the example's database.
type Example struct {
	NL     []string
	SQL    []string
	Schema []string
}

// Translator is the pluggable model contract.
type Translator interface {
	// Train fits the model to the examples. Deterministic given the
	// model's construction seed.
	Train(examples []Example)
	// Translate maps NL tokens plus schema context to SQL tokens.
	Translate(nl, schemaToks []string) []string
	// Name identifies the architecture for reports.
	Name() string
}

// SchemaTokens linearizes a schema into the token context fed to the
// models: for every table its name, then for every column the bare
// column name, the qualified table.column name, and the anonymized
// placeholder token. The model's copy mechanism can thus produce any
// schema element, even for schemas unseen in training.
func SchemaTokens(s *schema.Schema) []string {
	var out []string
	seen := map[string]bool{}
	add := func(t string) {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	for _, t := range s.Tables {
		add(strings.ToLower(t.Name))
		for _, c := range t.Columns {
			add(strings.ToLower(c.Name))
			add(strings.ToLower(t.Name) + "." + strings.ToLower(c.Name))
			add("@" + strings.ToUpper(t.Name) + "." + strings.ToUpper(c.Name))
		}
	}
	add("@JOIN")
	return out
}

// PairExamples converts pipeline pairs for one schema into model
// examples. Pairs whose SQL fails to parse are skipped (the pipeline
// validates SQL, so this is defensive).
func PairExamples(pairs []core.Pair, s *schema.Schema) []Example {
	st := SchemaTokens(s)
	out := make([]Example, 0, len(pairs))
	for _, p := range pairs {
		q, err := sqlast.Parse(p.SQL)
		if err != nil {
			continue
		}
		out = append(out, Example{
			NL:     tokens.Tokenize(p.NL),
			SQL:    NormalizeSQLTokens(q.Tokens()),
			Schema: st,
		})
	}
	return out
}

// NormalizeSQLTokens lower-cases identifiers, keeping keywords
// upper-case and placeholders in their canonical form, so that the
// output vocabulary is case-stable.
func NormalizeSQLTokens(toks []string) []string {
	out := make([]string, len(toks))
	for i, t := range toks {
		switch {
		case tokens.IsPlaceholder(t):
			out[i] = "@" + strings.ToUpper(t[1:])
		case isSQLKeyword(t):
			out[i] = strings.ToUpper(t)
		default:
			out[i] = strings.ToLower(t)
		}
	}
	return out
}

var sqlKeywords = map[string]bool{
	"select": true, "distinct": true, "from": true, "where": true,
	"group": true, "by": true, "having": true, "order": true,
	"limit": true, "and": true, "or": true, "not": true, "in": true,
	"exists": true, "between": true, "like": true, "asc": true,
	"desc": true, "count": true, "sum": true, "avg": true, "min": true,
	"max": true,
}

func isSQLKeyword(t string) bool { return sqlKeywords[strings.ToLower(t)] }

// InputSequence builds the full model input: NL tokens, a separator,
// then the schema tokens.
func InputSequence(nl, schemaToks []string) []string {
	out := make([]string, 0, len(nl)+1+len(schemaToks))
	out = append(out, nl...)
	out = append(out, tokens.SepToken)
	out = append(out, schemaToks...)
	return out
}

// BuildVocabs constructs the shared input/output vocabulary from
// training examples. One joint vocabulary keeps the copy mechanism
// simple: a copied input token and the same output token share an id
// when in vocabulary.
func BuildVocabs(examples []Example, minCount int) *tokens.Vocab {
	var seqs [][]string
	for _, e := range examples {
		seqs = append(seqs, e.NL, e.SQL, e.Schema)
	}
	return tokens.BuildVocab(seqs, minCount)
}

// sortedKeys is a small helper for deterministic map iteration.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
