package models

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/neural"
)

// TrainOptions configures fault tolerance for TrainContext. The zero
// value trains exactly like Train: no checkpoints, no resume.
type TrainOptions struct {
	// CheckpointEvery is the number of optimizer steps between
	// periodic checkpoints (0 disables the periodic cadence; a final
	// checkpoint is still written on cancellation when CheckpointPath
	// or OnCheckpoint is set).
	CheckpointEvery int
	// CheckpointPath is where checkpoints are written, atomically
	// (write-temp-then-rename): a crash mid-write can never leave a
	// torn file, the previous checkpoint survives intact.
	CheckpointPath string
	// Resume, when non-nil, continues training from a checkpoint
	// taken by an earlier run over the same examples and
	// configuration. The resumed run is bit-identical to the
	// uninterrupted one (see trainSchedule).
	Resume *Checkpoint
	// OnCheckpoint, when non-nil, observes every snapshot just after
	// it is (optionally) persisted — used for progress reporting and
	// by the chaos tests to kill training at an exact boundary.
	OnCheckpoint func(c *Checkpoint)
}

// Checkpoint is a resumable training snapshot: the full model (the
// SaveFull encoding, so config + vocabulary + weights), the Adam
// optimizer state, and the schedule position. The RNG position is not
// serialized — it is reconstructed on resume by replaying the same
// deterministic draws (parameter init + per-epoch shuffles) a fresh
// run would have made; see trainSchedule.
type Checkpoint struct {
	Kind  string // Translator.Name() of the model that wrote it
	Epoch int    // epoch the snapshot was taken in
	Step  int    // optimizer steps completed within that epoch
	Model []byte // the model's SaveFull encoding
	Adam  neural.AdamState
}

// Encode writes the checkpoint's gob encoding to w.
func (c *Checkpoint) Encode(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(c); err != nil {
		return fmt.Errorf("models: encode checkpoint: %w", err)
	}
	return nil
}

// WriteFile persists the checkpoint to path atomically.
func (c *Checkpoint) WriteFile(path string) error {
	return WriteFileAtomic(path, c.Encode)
}

// LoadCheckpoint reads a checkpoint written by WriteFile.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("models: load checkpoint: %w", err)
	}
	var c Checkpoint
	if err := gob.NewDecoder(f).Decode(&c); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("models: decode checkpoint %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return nil, fmt.Errorf("models: load checkpoint: %w", err)
	}
	return &c, nil
}

// WriteFileAtomic streams fill's output into a temporary file in
// path's directory and renames it over path only after the write
// completed and the file closed cleanly. Either the old content
// survives untouched (fill or close failed — the temp file is
// removed) or the new content replaces it completely; readers never
// observe a torn file.
func WriteFileAtomic(path string, fill func(io.Writer) error) error {
	f, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := fill(f); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	return nil
}

// snapshot builds a checkpoint from a model's SaveFull and the
// optimizer state.
func snapshot(kind string, epoch, step int, save func(io.Writer) error, opt *neural.Adam) (*Checkpoint, error) {
	var buf bytes.Buffer
	if err := save(&buf); err != nil {
		return nil, err
	}
	return &Checkpoint{Kind: kind, Epoch: epoch, Step: step, Model: buf.Bytes(), Adam: opt.State()}, nil
}

// scheduleCheckpointing wires TrainOptions into a schedule: resume
// offsets and the persist-then-observe checkpoint callback.
func scheduleCheckpointing(s *trainSchedule, opts TrainOptions, take func(epoch, step int) (*Checkpoint, error)) {
	if r := opts.Resume; r != nil {
		s.startEpoch, s.startStep = r.Epoch, r.Step
	}
	if opts.CheckpointPath == "" && opts.OnCheckpoint == nil {
		return
	}
	s.checkpointEvery = opts.CheckpointEvery
	s.checkpoint = func(epoch, step int) error {
		ck, err := take(epoch, step)
		if err != nil {
			return err
		}
		if opts.CheckpointPath != "" {
			if err := ck.WriteFile(opts.CheckpointPath); err != nil {
				return err
			}
		}
		if opts.OnCheckpoint != nil {
			opts.OnCheckpoint(ck)
		}
		return nil
	}
}

// resumeKindErr validates that a checkpoint belongs to this model
// kind.
func resumeKindErr(ck *Checkpoint, kind string) error {
	if ck.Kind != kind {
		return fmt.Errorf("models: resume: checkpoint was written by %q, model is %q", ck.Kind, kind)
	}
	return nil
}
