package models

// NearestNeighbor is the last tier of the runtime degradation chain: a
// non-parametric Translator that memorizes its training pairs and
// answers a question with the SQL of the stored example whose NL
// tokens are closest under Jaccard similarity over token sets. It has
// no parameters, cannot panic on any input, and trains in O(n) — the
// always-available floor beneath the neural tiers.
//
// Ties are broken by the lowest stored index, so the answer depends
// only on the training order, never on map iteration or scheduling.
type NearestNeighbor struct {
	examples []Example
	sets     []map[string]bool
}

// NewNearestNeighbor returns an untrained nearest-neighbor matcher.
func NewNearestNeighbor() *NearestNeighbor { return &NearestNeighbor{} }

// Name implements Translator.
func (m *NearestNeighbor) Name() string { return "template-nn" }

// Train implements Translator: it stores the examples and precomputes
// their NL token sets.
func (m *NearestNeighbor) Train(examples []Example) {
	m.examples = append([]Example(nil), examples...)
	m.sets = make([]map[string]bool, len(m.examples))
	for i, ex := range m.examples {
		m.sets[i] = tokenSet(ex.NL)
	}
}

// Translate implements Translator: the SQL of the nearest stored
// example by Jaccard similarity of NL token sets, or nil when nothing
// was stored or the question is empty.
func (m *NearestNeighbor) Translate(nl, _ []string) []string {
	q := tokenSet(nl)
	if len(q) == 0 || len(m.examples) == 0 {
		return nil
	}
	best, bestSim := -1, -1.0
	for i, s := range m.sets {
		sim := jaccard(q, s)
		if sim > bestSim {
			best, bestSim = i, sim
		}
	}
	if best < 0 || bestSim <= 0 {
		return nil
	}
	return append([]string(nil), m.examples[best].SQL...)
}

func tokenSet(toks []string) map[string]bool {
	s := make(map[string]bool, len(toks))
	for _, t := range toks {
		s[t] = true
	}
	return s
}

func jaccard(a, b map[string]bool) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter := 0
	for t := range a {
		if b[t] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}
