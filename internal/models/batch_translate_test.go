package models

import (
	"reflect"
	"strings"
	"testing"
)

// batchQuestions mixes trained phrasings, unseen phrasings, and
// different lengths, so the batch exercises ragged encoder lengths,
// rows reaching EOS at different steps, and OOV copy tokens.
func batchQuestions() [][]string {
	return [][]string{
		strings.Fields("show the name of patient with age @PATIENTS.AGE"),
		strings.Fields("how many patient be there"),
		strings.Fields("show the diagnosis of patient with age @PATIENTS.AGE"),
		strings.Fields("what be the average age of patient"),
		strings.Fields("list patient with diagnosis @PATIENTS.DIAGNOSIS"),
		strings.Fields("name of the oldest patient please"),
		strings.Fields("age"),
		strings.Fields("show name and diagnosis of every patient with age @PATIENTS.AGE and more words"),
	}
}

// TestTranslateBatchSingletonGolden: batched decoding of a single
// input must be bit-identical to the sequential Translate — the k=1
// equivalence that guarantees batching never changes single-request
// semantics.
func TestTranslateBatchSingletonGolden(t *testing.T) {
	m := trainedSeq2Seq(t)
	st := trainingExamples()[0].Schema
	for _, nl := range batchQuestions() {
		seq := m.Translate(nl, st)
		bat := m.TranslateBatch([][]string{nl}, st)
		if len(bat) != 1 || !reflect.DeepEqual(bat[0], seq) {
			t.Fatalf("TranslateBatch(k=1) diverged for %v:\n  batched:    %v\n  sequential: %v", nl, bat, seq)
		}
	}
}

// TestTranslateBatchRowGolden: at k=n, every row of the batched decode
// must equal the sequential translation of that row alone — batch
// composition must not leak between rows.
func TestTranslateBatchRowGolden(t *testing.T) {
	m := trainedSeq2Seq(t)
	st := trainingExamples()[0].Schema
	nls := batchQuestions()
	bat := m.TranslateBatch(nls, st)
	if len(bat) != len(nls) {
		t.Fatalf("TranslateBatch returned %d rows for %d inputs", len(bat), len(nls))
	}
	for r, nl := range nls {
		seq := m.Translate(nl, st)
		if !reflect.DeepEqual(bat[r], seq) {
			t.Fatalf("row %d diverged for %v:\n  batched:    %v\n  sequential: %v", r, nl, bat[r], seq)
		}
	}
	// Sub-batches in a different order must not change any row either.
	sub := [][]string{nls[3], nls[0], nls[6]}
	for r, got := range m.TranslateBatch(sub, st) {
		if want := m.Translate(sub[r], st); !reflect.DeepEqual(got, want) {
			t.Fatalf("sub-batch row %d = %v, want %v", r, got, want)
		}
	}
}

// TestTranslateBatchUnseenSchema: the copy path must survive batching
// — OOV schema tokens of a never-seen database still come out.
func TestTranslateBatchUnseenSchema(t *testing.T) {
	m := trainedSeq2Seq(t)
	st := []string{"ships", "label", "tonnage", "ships.label", "ships.tonnage", "@SHIPS.TONNAGE", "@JOIN"}
	nl := strings.Fields("show the label of ship with tonnage @SHIPS.TONNAGE")
	seq := m.Translate(nl, st)
	bat := m.TranslateBatch([][]string{nl, strings.Fields("how many ship be there")}, st)
	if !reflect.DeepEqual(bat[0], seq) {
		t.Fatalf("unseen-schema batched row diverged:\n  batched:    %v\n  sequential: %v", bat[0], seq)
	}
}

// TestTranslateBatchEdgeCases: untrained models and empty batches keep
// the sequential path's shape.
func TestTranslateBatchEdgeCases(t *testing.T) {
	untrained := NewSeq2Seq(DefaultSeq2SeqConfig())
	if out := untrained.TranslateBatch([][]string{{"x"}}, []string{"t"}); len(out) != 1 || out[0] != nil {
		t.Fatalf("untrained TranslateBatch = %v, want [nil]", out)
	}
	m := trainedSeq2Seq(t)
	if out := m.TranslateBatch(nil, trainingExamples()[0].Schema); len(out) != 0 {
		t.Fatalf("empty batch returned %v", out)
	}
}

// TestTranslateEach: the generic fallback preserves index alignment.
func TestTranslateEach(t *testing.T) {
	m := trainedSeq2Seq(t)
	st := trainingExamples()[0].Schema
	nls := batchQuestions()[:3]
	each := TranslateEach(m, nls, st)
	for r, nl := range nls {
		if want := m.Translate(nl, st); !reflect.DeepEqual(each[r], want) {
			t.Fatalf("TranslateEach row %d = %v, want %v", r, each[r], want)
		}
	}
}
