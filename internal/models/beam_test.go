package models

import (
	"strings"
	"testing"
)

func trainedSeq2Seq(t *testing.T) *Seq2Seq {
	t.Helper()
	cfg := DefaultSeq2SeqConfig()
	cfg.Epochs = 150
	cfg.EmbDim = 24
	cfg.HidDim = 48
	m := NewSeq2Seq(cfg)
	m.Train(trainingExamples())
	return m
}

func TestBeamWidthOneMatchesGreedy(t *testing.T) {
	m := trainedSeq2Seq(t)
	for _, ex := range trainingExamples() {
		greedy := strings.Join(m.Translate(ex.NL, ex.Schema), " ")
		beams := m.TranslateBeam(ex.NL, ex.Schema, 1)
		if len(beams) == 0 {
			t.Fatal("beam search returned nothing")
		}
		beam := strings.Join(beams[0], " ")
		if greedy != beam {
			t.Fatalf("beam=1 differs from greedy:\n%s\n%s", greedy, beam)
		}
	}
}

func TestBeamSearchTopCandidateCorrect(t *testing.T) {
	m := trainedSeq2Seq(t)
	for _, ex := range trainingExamples() {
		beams := m.TranslateBeam(ex.NL, ex.Schema, 3)
		if len(beams) == 0 {
			t.Fatal("no beams")
		}
		if got := strings.Join(beams[0], " "); got != strings.Join(ex.SQL, " ") {
			t.Fatalf("top beam wrong: %q", got)
		}
	}
}

func TestBeamSearchDistinctCandidates(t *testing.T) {
	m := trainedSeq2Seq(t)
	ex := trainingExamples()[0]
	beams := m.TranslateBeam(ex.NL, ex.Schema, 4)
	seen := map[string]bool{}
	for _, b := range beams {
		k := strings.Join(b, " ")
		if seen[k] {
			t.Fatalf("duplicate beam %q", k)
		}
		seen[k] = true
	}
	if len(beams) < 2 {
		t.Fatalf("expected multiple distinct candidates, got %d", len(beams))
	}
}

func TestSeq2SeqTranslateKContract(t *testing.T) {
	m := trainedSeq2Seq(t)
	ex := trainingExamples()[0]
	ks := m.TranslateK(ex.NL, ex.Schema, 3)
	if len(ks) == 0 || len(ks) > 3 {
		t.Fatalf("TranslateK returned %d candidates", len(ks))
	}
}

func TestSketchTranslateK(t *testing.T) {
	cfg := DefaultSketchConfig()
	cfg.Epochs = 60
	m := NewSketch(cfg)
	m.Train(trainingExamples())
	ex := trainingExamples()[0]
	ks := m.TranslateK(ex.NL, ex.Schema, 3)
	if len(ks) != 3 {
		t.Fatalf("TranslateK returned %d candidates (inventory has %d sketches)", len(ks), m.NumSketches())
	}
	// The top candidate matches plain Translate.
	if strings.Join(ks[0], " ") != strings.Join(m.Translate(ex.NL, ex.Schema), " ") {
		t.Fatal("TranslateK[0] differs from Translate")
	}
	// Candidates come from distinct sketches.
	if strings.Join(ks[0], " ") == strings.Join(ks[1], " ") {
		t.Fatal("top two sketch candidates identical")
	}
}

func TestUntrainedTranslateK(t *testing.T) {
	if out := NewSeq2Seq(DefaultSeq2SeqConfig()).TranslateK([]string{"x"}, []string{"t"}, 3); out != nil {
		t.Fatal("untrained seq2seq TranslateK should be nil")
	}
	if out := NewSketch(DefaultSketchConfig()).TranslateK([]string{"x"}, []string{"t"}, 3); out != nil {
		t.Fatal("untrained sketch TranslateK should be nil")
	}
}
