package models

import (
	"math"
	"strings"
	"testing"
)

func TestSketchOverfitAndGrad(t *testing.T) {
	schemaToks := []string{"patients", "name", "age", "diagnosis", "patients.name", "patients.age", "patients.diagnosis", "@PATIENTS.AGE", "@PATIENTS.DIAGNOSIS", "@JOIN"}
	exs := []Example{
		{NL: strings.Fields("show the name of patient with age @PATIENTS.AGE"), SQL: strings.Fields("SELECT name FROM patients WHERE age = @PATIENTS.AGE"), Schema: schemaToks},
		{NL: strings.Fields("show the diagnosis of patient with age @PATIENTS.AGE"), SQL: strings.Fields("SELECT diagnosis FROM patients WHERE age = @PATIENTS.AGE"), Schema: schemaToks},
		{NL: strings.Fields("how many patient be there"), SQL: strings.Fields("SELECT COUNT ( * ) FROM patients"), Schema: schemaToks},
		{NL: strings.Fields("what be the average age of patient"), SQL: strings.Fields("SELECT AVG ( age ) FROM patients"), Schema: schemaToks},
	}
	cfg := DefaultSketchConfig()
	cfg.Epochs = 120
	m := NewSketch(cfg)
	m.Train(exs)
	correct := 0
	for _, ex := range exs {
		got := strings.Join(m.Translate(ex.NL, ex.Schema), " ")
		want := strings.Join(ex.SQL, " ")
		if got == want {
			correct++
		} else {
			t.Logf("MISS got %q want %q", got, want)
		}
	}
	if correct < len(exs) {
		t.Fatalf("sketch failed to overfit: %d/%d", correct, len(exs))
	}

	// gradient check on slot + classifier params
	m2 := NewSketch(SketchConfig{EmbDim: 6, HidDim: 8, LR: 0.01, Epochs: 0, MaxSlots: 4, GradClip: 100, MinCount: 1, Seed: 5})
	m2.Train(exs) // epochs=0: builds vocab/params only
	ex := exs[0]
	m2.ps.ZeroGrad()
	m2.step(ex)
	const eps = 1e-5
	checked := 0
	for mi, mat := range m2.ps.Mats() {
		stride := len(mat.W)/5 + 1
		for i := 0; i < len(mat.W); i += stride {
			orig := mat.W[i]
			mat.W[i] = orig + eps
			lp := m2.Loss(ex)
			mat.W[i] = orig - eps
			lm := m2.Loss(ex)
			mat.W[i] = orig
			num := (lp - lm) / (2 * eps)
			ana := mat.G[i]
			scale := math.Max(1, math.Max(math.Abs(num), math.Abs(ana)))
			if math.Abs(num-ana)/scale > 1e-4 {
				t.Errorf("%s[%d]: analytic %.8f numeric %.8f", m2.ps.Names()[mi], i, ana, num)
			}
			checked++
		}
	}
	t.Logf("sketch grad check on %d params ok", checked)
}
