// Package patients is the paper's new benchmark (§6.2): a medical
// database of hospital patients plus 399 carefully crafted NL–SQL
// pairs that systematically test a translator's linguistic robustness.
// The pairs are grouped into seven categories — naive, syntactic,
// morphological, lexical, semantic, missing (information), and mixed —
// with 57 queries per category (one NL rendering per category for each
// of 57 base queries, mirroring the structure of the public
// ParaphraseBench).
//
// Unlike exact-match benchmarks, Patients scores semantic equivalence:
// a prediction is correct when it executes to the same result as the
// gold query on the benchmark database.
package patients

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/schema"
	"repro/internal/sqlast"
)

// Category names a linguistic-variation group.
type Category int

// The seven benchmark categories, in the paper's reporting order.
const (
	Naive Category = iota
	Syntactic
	Lexical
	Morphological
	Semantic
	Missing
	Mixed
	NumCategories
)

// String names the category as the paper spells it.
func (c Category) String() string {
	switch c {
	case Naive:
		return "Naive"
	case Syntactic:
		return "Syntactic"
	case Lexical:
		return "Lexical"
	case Morphological:
		return "Morphological"
	case Semantic:
		return "Semantic"
	case Missing:
		return "Missing"
	case Mixed:
		return "Mixed"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Categories lists the categories in reporting order.
var Categories = []Category{Naive, Syntactic, Lexical, Morphological, Semantic, Missing, Mixed}

// Case is one benchmark test case: an NL question with constants and
// the gold SQL to compare against by execution.
type Case struct {
	ID       string
	Category Category
	NL       string
	SQL      string
}

// Schema returns the annotated hospital schema of the benchmark.
func Schema() *schema.Schema {
	return &schema.Schema{
		Name: "patients",
		Tables: []*schema.Table{
			{
				Name:     "patients",
				Readable: "patient",
				Synonyms: []string{"case"},
				Columns: []*schema.Column{
					{Name: "id", Type: schema.Number, PrimaryKey: true},
					{Name: "name", Type: schema.Text},
					{Name: "age", Type: schema.Number, Domain: schema.DomainAge},
					{Name: "gender", Type: schema.Text, Synonyms: []string{"sex"}},
					{Name: "diagnosis", Type: schema.Text, Synonyms: []string{"disease", "illness", "condition"}},
					{Name: "length_of_stay", Type: schema.Number, Readable: "length of stay", Domain: schema.DomainDuration, Synonyms: []string{"stay"}},
				},
			},
		},
	}
}

// row is one curated patient record.
type row struct {
	id     int
	name   string
	age    float64
	gender string
	diag   string
	stay   float64
}

// data is the curated benchmark content. Every constant mentioned in
// the benchmark queries occurs in the data, and the filters are
// selective but non-empty, so execution-based equivalence
// discriminates between right and wrong translations.
var data = []row{
	{1, "alice johnson", 80, "female", "influenza", 12},
	{2, "bob smith", 80, "male", "diabetes", 5},
	{3, "carol davis", 34, "female", "influenza", 3},
	{4, "david miller", 45, "male", "asthma", 2},
	{5, "emma wilson", 67, "female", "pneumonia", 21},
	{6, "frank moore", 72, "male", "hypertension", 8},
	{7, "grace taylor", 29, "female", "migraine", 1},
	{8, "henry anderson", 55, "male", "diabetes", 9},
	{9, "irene thomas", 61, "female", "arthritis", 4},
	{10, "jack jackson", 80, "male", "pneumonia", 30},
	{11, "karen white", 18, "female", "asthma", 2},
	{12, "liam harris", 42, "male", "influenza", 6},
	{13, "mia martin", 90, "female", "pneumonia", 40},
	{14, "noah thompson", 25, "male", "migraine", 1},
	{15, "olivia garcia", 38, "female", "diabetes", 7},
	{16, "peter martinez", 51, "male", "hypertension", 10},
	{17, "quinn robinson", 47, "female", "arthritis", 5},
	{18, "rachel clark", 70, "female", "influenza", 14},
	{19, "sam rodriguez", 33, "male", "asthma", 3},
	{20, "tina lewis", 58, "female", "hypertension", 11},
	{21, "victor young", 64, "male", "diabetes", 13},
	{22, "wendy hall", 22, "female", "migraine", 2},
	{23, "xavier allen", 77, "male", "arthritis", 16},
	{24, "yara king", 49, "female", "pneumonia", 18},
	{25, "zane wright", 85, "male", "influenza", 25},
	{26, "amber scott", 31, "female", "asthma", 4},
	{27, "brian green", 68, "male", "hypertension", 9},
	{28, "chloe adams", 27, "female", "diabetes", 6},
	{29, "dylan baker", 59, "male", "migraine", 2},
	{30, "ella nelson", 73, "female", "arthritis", 12},
	{31, "felix carter", 36, "male", "influenza", 5},
	{32, "gina mitchell", 44, "female", "pneumonia", 15},
	{33, "hugo perez", 52, "male", "asthma", 3},
	{34, "ivy roberts", 65, "female", "hypertension", 10},
	{35, "jonas turner", 40, "male", "diabetes", 8},
	{36, "kira phillips", 19, "female", "migraine", 1},
	{37, "leo campbell", 81, "male", "arthritis", 20},
	{38, "mona parker", 57, "female", "influenza", 9},
	{39, "nick evans", 62, "male", "pneumonia", 22},
	{40, "opal edwards", 24, "female", "asthma", 2},
}

// Database builds the benchmark database with the curated content.
func Database() (*engine.Database, error) {
	s := Schema()
	db := engine.NewDatabase(s)
	for _, r := range data {
		err := db.Insert("patients", engine.Row{
			engine.Num(float64(r.id)), engine.Str(r.name), engine.Num(r.age),
			engine.Str(r.gender), engine.Str(r.diag), engine.Num(r.stay),
		})
		if err != nil {
			return nil, err
		}
	}
	return db, nil
}

// Cases returns all 399 benchmark cases (57 per category), validated:
// every gold SQL parses.
func Cases() []Case {
	var out []Case
	for _, q := range queries {
		if _, err := sqlast.Parse(q.SQL); err != nil {
			panic(fmt.Sprintf("patients: query %s gold SQL invalid: %v", q.ID, err))
		}
		for ci, nl := range q.NL {
			if nl == "" {
				panic(fmt.Sprintf("patients: query %s missing category %v", q.ID, Category(ci)))
			}
			out = append(out, Case{
				ID:       fmt.Sprintf("%s/%s", q.ID, Category(ci)),
				Category: Category(ci),
				NL:       nl,
				SQL:      q.SQL,
			})
		}
	}
	return out
}

// NumQueries returns the number of base queries (57).
func NumQueries() int { return len(queries) }
