package patients

import (
	"strings"
	"testing"

	"repro/internal/sqlast"
)

func TestBenchmarkStructure(t *testing.T) {
	cs := Cases()
	if len(cs) != 399 {
		t.Fatalf("benchmark must have 399 cases (57 per 7 categories), got %d", len(cs))
	}
	if NumQueries() != 57 {
		t.Fatalf("base queries = %d, want 57", NumQueries())
	}
	perCat := map[Category]int{}
	for _, c := range cs {
		perCat[c.Category]++
	}
	for _, cat := range Categories {
		if perCat[cat] != 57 {
			t.Errorf("category %s has %d cases, want 57", cat, perCat[cat])
		}
	}
}

func TestGoldSQLExecutes(t *testing.T) {
	db, err := Database()
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		res, err := db.Execute(sqlast.MustParse(q.SQL))
		if err != nil {
			t.Errorf("%s: gold SQL %q fails: %v", q.ID, q.SQL, err)
			continue
		}
		_ = res
	}
}

// Execution-based scoring only discriminates when gold results are
// non-empty for filtering queries; verify the curated data covers the
// constants used.
func TestGoldResultsNonEmpty(t *testing.T) {
	db, err := Database()
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		parsed := sqlast.MustParse(q.SQL)
		res, err := db.Execute(parsed)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) == 0 {
			t.Errorf("%s: gold result empty; benchmark data must cover %q", q.ID, q.SQL)
		}
	}
}

func TestCaseIDsUniqueAndComplete(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Cases() {
		if c.NL == "" {
			t.Fatalf("case %s has empty NL", c.ID)
		}
		if seen[c.ID] {
			t.Fatalf("duplicate case id %s", c.ID)
		}
		seen[c.ID] = true
	}
}

func TestSchemaValid(t *testing.T) {
	if err := Schema().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCategoryNLsDiffer(t *testing.T) {
	// Each base query's seven renderings must be distinct phrasings.
	for _, q := range queries {
		seen := map[string]bool{}
		for _, nl := range q.NL {
			if seen[nl] {
				t.Errorf("%s repeats NL %q across categories", q.ID, nl)
			}
			seen[nl] = true
		}
	}
}

func TestMissingCategoryIsShorterOrImplicit(t *testing.T) {
	// The missing-information rendering should not mention the
	// attribute more explicitly than the naive one; as a proxy, it
	// must not be longer than the naive rendering.
	for _, q := range queries {
		naive := len(strings.Fields(q.NL[Naive]))
		missing := len(strings.Fields(q.NL[Missing]))
		if missing > naive {
			t.Errorf("%s: missing rendering longer than naive (%d > %d words)", q.ID, missing, naive)
		}
	}
}

func TestNumericConstantsUnambiguous(t *testing.T) {
	// Numeric constants in gold SQL must be attributable to exactly
	// one column by the parameter handler's value index (age vs
	// length_of_stay). Collect the value sets.
	db, err := Database()
	if err != nil {
		t.Fatal(err)
	}
	ages := map[float64]bool{}
	for _, v := range db.DistinctValues("patients", "age") {
		ages[v.Num] = true
	}
	stays := map[float64]bool{}
	for _, v := range db.DistinctValues("patients", "length_of_stay") {
		stays[v.Num] = true
	}
	for _, q := range queries {
		parsed := sqlast.MustParse(q.SQL)
		sqlast.WalkQueries(parsed, func(sub *sqlast.Query) {
			for _, e := range sqlast.Conjuncts(sub.Where) {
				cmp, ok := e.(sqlast.Comparison)
				if !ok {
					continue
				}
				v, ok := cmp.Right.(sqlast.Value)
				if !ok || !v.IsNum {
					continue
				}
				col := strings.ToLower(cmp.Left.Column)
				if col == "age" && stays[v.Num] {
					t.Errorf("%s: age constant %v also occurs in length_of_stay", q.ID, v.Num)
				}
				if col == "length_of_stay" && ages[v.Num] {
					t.Errorf("%s: stay constant %v also occurs in age", q.ID, v.Num)
				}
			}
		})
	}
}
