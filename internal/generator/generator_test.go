package generator

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/schema"
	"repro/internal/sqlast"
	"repro/internal/templates"
)

func hospitalSchema() *schema.Schema {
	return &schema.Schema{
		Name: "hospital",
		Tables: []*schema.Table{
			{Name: "patients", Readable: "patient", Columns: []*schema.Column{
				{Name: "id", Type: schema.Number, PrimaryKey: true},
				{Name: "name", Type: schema.Text},
				{Name: "age", Type: schema.Number, Domain: schema.DomainAge},
				{Name: "diagnosis", Type: schema.Text},
				{Name: "length_of_stay", Type: schema.Number, Readable: "length of stay", Domain: schema.DomainDuration},
			}},
			{Name: "doctors", Readable: "doctor", Columns: []*schema.Column{
				{Name: "id", Type: schema.Number, PrimaryKey: true},
				{Name: "name", Type: schema.Text},
				{Name: "specialty", Type: schema.Text},
			}},
			{Name: "visits", Readable: "visit", Columns: []*schema.Column{
				{Name: "id", Type: schema.Number, PrimaryKey: true},
				{Name: "patient_id", Type: schema.Number},
				{Name: "doctor_id", Type: schema.Number},
				{Name: "cost", Type: schema.Number, Domain: schema.DomainMoney},
			}},
		},
		ForeignKeys: []schema.ForeignKey{
			{FromTable: "visits", FromColumn: "patient_id", ToTable: "patients", ToColumn: "id"},
			{FromTable: "visits", FromColumn: "doctor_id", ToTable: "doctors", ToColumn: "id"},
		},
	}
}

func TestGenerateAllSQLParses(t *testing.T) {
	g := New(hospitalSchema(), DefaultParams(), 42)
	pairs := g.Generate()
	if len(pairs) < 500 {
		t.Fatalf("too few pairs: %d", len(pairs))
	}
	for _, p := range pairs {
		if _, err := sqlast.Parse(p.SQL); err != nil {
			t.Fatalf("unparsable SQL %q from template %s: %v", p.SQL, p.TemplateID, err)
		}
		if strings.Contains(p.NL, "{") || strings.Contains(p.SQL, "{") {
			t.Fatalf("unresolved slot in pair %+v", p)
		}
		if strings.TrimSpace(p.NL) == "" {
			t.Fatalf("empty NL for template %s", p.TemplateID)
		}
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a := New(hospitalSchema(), DefaultParams(), 42).Generate()
	b := New(hospitalSchema(), DefaultParams(), 42).Generate()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pair %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := New(hospitalSchema(), DefaultParams(), 43).Generate()
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds should produce different corpora")
	}
}

func TestGenerateBalanced(t *testing.T) {
	p := DefaultParams()
	p.SizeSlotFills = 5
	g := New(hospitalSchema(), p, 1)
	pairs := g.Generate()
	perTemplate := map[string]int{}
	for _, pr := range pairs {
		perTemplate[pr.TemplateID]++
	}
	// Budget per template = sizeSlotFills * numNLVariants (boosts are
	// 1.0 by default); the GROUP BY promotion can add nothing beyond
	// that. No template may exceed its budget.
	for id, n := range perTemplate {
		tpl := templates.ByID(id)
		budget := p.SizeSlotFills * len(tpl.NL)
		if n > budget {
			t.Errorf("template %s produced %d instances, budget %d", id, n, budget)
		}
	}
}

func TestClassBoosts(t *testing.T) {
	low := DefaultParams()
	low.NestBoost = 0.25
	high := DefaultParams()
	high.NestBoost = 2.0
	count := func(p Params) int {
		n := 0
		for _, pr := range New(hospitalSchema(), p, 5).Generate() {
			if pr.Class == templates.CNested {
				n++
			}
		}
		return n
	}
	if count(low) >= count(high) {
		t.Fatalf("nestBoost should scale nested instances: low=%d high=%d", count(low), count(high))
	}
}

func TestGroupByPromotion(t *testing.T) {
	off := DefaultParams()
	off.GroupByP = 0
	on := DefaultParams()
	on.GroupByP = 1.0
	countPromoted := func(p Params) int {
		n := 0
		for _, pr := range New(hospitalSchema(), p, 5).Generate() {
			if pr.Class == templates.CAgg && strings.Contains(pr.SQL, "GROUP BY") {
				n++
			}
		}
		return n
	}
	if countPromoted(off) != 0 {
		t.Fatal("groupByP=0 must not promote")
	}
	if countPromoted(on) == 0 {
		t.Fatal("groupByP=1 should promote aggregate instances")
	}
}

func TestSizeTablesLimitsJoins(t *testing.T) {
	// With sizeTables=2 only directly connected pairs join; the
	// hospital graph connects patients-doctors only through visits, so
	// pairs between patients and doctors need sizeTables>=3.
	narrow := DefaultParams()
	narrow.SizeTables = 2
	joins := map[string]bool{}
	for _, pr := range New(hospitalSchema(), narrow, 3).Generate() {
		if pr.Class == templates.CJoin {
			q := sqlast.MustParse(pr.SQL)
			for _, c := range q.Columns() {
				if c.Table != "" {
					joins[strings.ToLower(c.Table)] = true
				}
			}
		}
	}
	// patients+doctors two-hop pairs are excluded at sizeTables=2 only
	// if every join instance touches visits.
	if joins["patients"] && joins["doctors"] {
		// Verify no single pair has patients and doctors without
		// visits: regenerate and inspect pairwise.
		for _, pr := range New(hospitalSchema(), narrow, 3).Generate() {
			if pr.Class != templates.CJoin {
				continue
			}
			q := sqlast.MustParse(pr.SQL)
			tables := map[string]bool{}
			for _, c := range q.Columns() {
				if c.Table != "" {
					tables[strings.ToLower(c.Table)] = true
				}
			}
			if tables["patients"] && tables["doctors"] {
				t.Fatalf("two-hop join generated at sizeTables=2: %s", pr.SQL)
			}
		}
	}
}

func TestPlaceholdersWellFormed(t *testing.T) {
	s := hospitalSchema()
	for _, pr := range New(s, DefaultParams(), 8).Generate() {
		q := sqlast.MustParse(pr.SQL)
		sqlast.WalkQueries(q, func(sub *sqlast.Query) {
			for _, e := range sqlast.Conjuncts(sub.Where) {
				cmp, ok := e.(sqlast.Comparison)
				if !ok {
					continue
				}
				ph, ok := cmp.Right.(sqlast.Placeholder)
				if !ok {
					continue
				}
				parts := strings.SplitN(ph.Name, ".", 2)
				if len(parts) != 2 {
					t.Fatalf("placeholder %q not TABLE.COL", ph.Name)
				}
				if s.Column(parts[0], parts[1]) == nil {
					t.Fatalf("placeholder %q references unknown column", ph.Name)
				}
			}
		})
		// NL side must mention the same placeholder tokens.
		for _, tok := range strings.Fields(pr.SQL) {
			if strings.HasPrefix(tok, "@") && !strings.EqualFold(tok, "@JOIN") {
				if !strings.Contains(pr.NL, strings.TrimRight(tok, ")")) {
					t.Fatalf("SQL placeholder %s missing from NL %q", tok, pr.NL)
				}
			}
		}
	}
}

func TestPluralize(t *testing.T) {
	cases := map[string]string{
		"patient": "patients", "city": "cities", "boy": "boys",
		"class": "classes", "box": "boxes", "dish": "dishes",
		"match": "matches", "": "", "person": "people",
	}
	for in, want := range cases {
		if got := Pluralize(in); got != want {
			t.Errorf("Pluralize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPlaceholderHelper(t *testing.T) {
	if got := Placeholder("patients", "age"); got != "@PATIENTS.AGE" {
		t.Fatalf("Placeholder = %q", got)
	}
}

func TestSingleTableSchema(t *testing.T) {
	s := &schema.Schema{
		Name: "solo",
		Tables: []*schema.Table{
			{Name: "items", Readable: "item", Columns: []*schema.Column{
				{Name: "id", Type: schema.Number, PrimaryKey: true},
				{Name: "name", Type: schema.Text},
				{Name: "price", Type: schema.Number},
				{Name: "weight", Type: schema.Number},
			}},
		},
	}
	pairs := New(s, DefaultParams(), 2).Generate()
	if len(pairs) == 0 {
		t.Fatal("single-table schema should still generate pairs")
	}
	for _, pr := range pairs {
		if pr.Class == templates.CJoin {
			t.Fatalf("join pair generated for single-table schema: %s", pr.SQL)
		}
	}
}

// Property: generation is schema-closed — every table mentioned in the
// SQL exists in the schema.
func TestGenerateSchemaClosedQuick(t *testing.T) {
	s := hospitalSchema()
	pairs := New(s, DefaultParams(), 10).Generate()
	f := func(i uint16) bool {
		pr := pairs[int(i)%len(pairs)]
		q, err := sqlast.Parse(pr.SQL)
		if err != nil {
			return false
		}
		ok := true
		sqlast.WalkQueries(q, func(sub *sqlast.Query) {
			for _, tn := range sub.From.Tables {
				if s.Table(tn) == nil {
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
