// Package generator implements DBPal's data-instantiation step: it
// fills the seed templates' slots with schema elements and slot-fill
// lexicon phrases to produce an initial training set of NL–SQL pairs.
//
// Instantiation is balanced: instead of exhaustively expanding every
// slot combination (which would let slot-heavy templates dominate the
// training set and bias the model, as the paper warns), the generator
// randomly samples up to a per-template budget of instances. The
// Table-1 parameters sizeSlotFills, sizeTables, groupByP, joinBoost,
// aggBoost, and nestBoost control the budget and the class balance.
package generator

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/lexicon"
	"repro/internal/schema"
	"repro/internal/sqlast"
	"repro/internal/templates"
)

// Pair is one NL–SQL training example. NL is a space-separated token
// string (pre-lemmatization); SQL is the placeholder-bearing SQL text.
// Stage and Origin are provenance, stamped by the pipeline stage that
// first created the pair and carried unchanged through every later
// stage: Stage names the creator ("generate", "augment"), Origin the
// mechanism within it ("template", "paraphrase", "dropout",
// "comparative").
type Pair struct {
	NL         string
	SQL        string
	TemplateID string
	Class      templates.Class
	Stage      string
	Origin     string
}

// Key is the identity of a pair for deduplication: the (NL, SQL) text
// alone, ignoring template and provenance. Used by the generator's and
// augmenter's internal dedup and by the pipeline's Dedup stage.
func (p Pair) Key() string { return p.NL + "\x1f" + p.SQL }

// Provenance values stamped by the generator.
const (
	StageGenerate  = "generate"
	OriginTemplate = "template"
)

// Params are the data-instantiation knobs from the paper's Table 1.
type Params struct {
	// SizeSlotFills is the maximum number of instances created for a
	// NL–SQL template pair using slot-filling dictionaries.
	SizeSlotFills int
	// SizeTables is the maximum number of tables supported in join
	// queries (the longest join path spans SizeTables tables).
	SizeTables int
	// GroupByP is the probability of generating a GROUP BY version of
	// an eligible aggregate query pair.
	GroupByP float64
	// JoinBoost, AggBoost, and NestBoost scale the instance budget of
	// join, aggregate (incl. group-by), and nested templates relative
	// to the base classes.
	JoinBoost float64
	AggBoost  float64
	NestBoost float64
}

// DefaultParams are the empirically determined defaults the paper
// ships (before per-schema hyperparameter tuning).
func DefaultParams() Params {
	return Params{
		SizeSlotFills: 12,
		SizeTables:    3,
		GroupByP:      0.25,
		JoinBoost:     1.0,
		AggBoost:      1.0,
		NestBoost:     1.0,
	}
}

// Generator instantiates seed templates against one schema.
type Generator struct {
	Schema    *schema.Schema
	Params    Params
	Templates []templates.Template
	rng       *rand.Rand
	lastNum   int // @NUM constant chosen while rendering the SQL side
}

// New returns a generator over the full seed template library.
func New(s *schema.Schema, p Params, seed int64) *Generator {
	return &Generator{
		Schema:    s,
		Params:    p,
		Templates: templates.All(),
		rng:       rand.New(rand.NewSource(seed)),
	}
}

// NewWithTemplates returns a generator restricted to the given
// templates (used by the seed-template-fraction experiment, Figure 3).
func NewWithTemplates(s *schema.Schema, p Params, seed int64, tpls []templates.Template) *Generator {
	g := New(s, p, seed)
	g.Templates = tpls
	return g
}

// Generate instantiates every template and returns the deduplicated
// initial training set.
func (g *Generator) Generate() []Pair {
	var out []Pair
	g.Stream(func(p Pair) { out = append(out, p) })
	return out
}

// Stream instantiates every template in order, emitting each
// deduplicated pair as it is produced — the streaming form Generate
// collects and the pipeline's generate stage feeds downstream without
// materializing the corpus. One Stream call consumes the generator's
// RNG; use a fresh Generator per run.
func (g *Generator) Stream(emit func(Pair)) {
	seen := map[string]bool{}
	for _, t := range g.Templates {
		budget := g.budget(t.Class)
		for _, nlv := range t.NL {
			attempts := budget * 4 // sampling may repeat bindings
			produced := 0
			for i := 0; i < attempts && produced < budget; i++ {
				p, ok := g.instantiate(&t, nlv)
				if !ok {
					break // no valid binding exists for this schema
				}
				if seen[p.Key()] {
					continue
				}
				seen[p.Key()] = true
				emit(p)
				produced++
			}
		}
	}
}

// budget is the per-(template, NL variant) instance budget after class
// boosts.
func (g *Generator) budget(c templates.Class) int {
	b := float64(g.Params.SizeSlotFills)
	switch c {
	case templates.CJoin:
		b *= g.Params.JoinBoost
	case templates.CAgg, templates.CGroupBy:
		b *= g.Params.AggBoost
	case templates.CNested:
		b *= g.Params.NestBoost
	}
	n := int(b + 0.5)
	if n < 1 && b > 0 {
		n = 1
	}
	return n
}

// binding holds the chosen schema elements for one instantiation.
type binding struct {
	t, u  *schema.Table
	attrs map[string]*schema.Column // slot name -> column
}

// instantiate samples a binding and renders one NL–SQL pair. It
// returns ok=false when the schema cannot satisfy the template at all.
func (g *Generator) instantiate(t *templates.Template, nlv templates.NL) (Pair, bool) {
	b, ok := g.sampleBinding(t)
	if !ok {
		return Pair{}, false
	}
	sqlText, ok := g.renderSQL(t, b)
	if !ok {
		return Pair{}, false
	}
	nlText, ok := g.renderNL(nlv.Text, b)
	if !ok {
		return Pair{}, false
	}

	// GROUP BY promotion (groupByP): eligible aggregate instances
	// gain a grouping attribute.
	if t.Class == templates.CAgg && g.rng.Float64() < g.Params.GroupByP {
		if s2, n2, ok := g.promoteGroupBy(sqlText, nlText, b); ok {
			sqlText, nlText = s2, n2
		}
	}
	return Pair{
		NL: nlText, SQL: sqlText, TemplateID: t.ID, Class: t.Class,
		Stage: StageGenerate, Origin: OriginTemplate,
	}, true
}

// sampleBinding picks tables and attributes satisfying the template's
// slot requirements.
func (g *Generator) sampleBinding(t *templates.Template) (*binding, bool) {
	req := t.RequiredSlots()
	two := t.UsesTwoTables()
	b := &binding{attrs: map[string]*schema.Column{}}

	if two {
		pairs := g.joinablePairs(needsDirectFK(req))
		if len(pairs) == 0 {
			return nil, false
		}
		pick := pairs[g.rng.Intn(len(pairs))]
		b.t, b.u = pick[0], pick[1]
	} else {
		if len(g.Schema.Tables) == 0 {
			return nil, false
		}
		b.t = g.Schema.Tables[g.rng.Intn(len(g.Schema.Tables))]
	}

	used := map[string]map[string]bool{} // table name -> column name used
	markUsed := func(tab *schema.Table, c *schema.Column) {
		if used[tab.Name] == nil {
			used[tab.Name] = map[string]bool{}
		}
		used[tab.Name][c.Name] = true
	}
	for _, slot := range req {
		tab := b.t
		if slot.Table == 2 {
			tab = b.u
		}
		if tab == nil {
			return nil, false
		}
		var col *schema.Column
		switch slot.Kind {
		case templates.KeyAttr:
			k, fk, ok := g.fkPair(b.t, b.u)
			if !ok {
				return nil, false
			}
			if slot.Name == "k" {
				col = k
			} else {
				col = fk
			}
		default:
			col = g.sampleColumn(tab, slot.Kind, used[tab.Name])
			if col == nil {
				return nil, false
			}
		}
		b.attrs[slot.Name] = col
		markUsed(tab, col)
	}
	return b, true
}

// needsDirectFK reports whether the slot set includes the {k}/{fk}
// join-pair slots, which require a direct foreign key edge.
func needsDirectFK(req []templates.AttrSlot) bool {
	for _, s := range req {
		if s.Kind == templates.KeyAttr {
			return true
		}
	}
	return false
}

// joinablePairs enumerates ordered table pairs connected within the
// sizeTables budget (or by a direct FK when required).
func (g *Generator) joinablePairs(direct bool) [][2]*schema.Table {
	var out [][2]*schema.Table
	maxHops := g.Params.SizeTables - 1
	if maxHops < 1 {
		maxHops = 1
	}
	for _, t := range g.Schema.Tables {
		for _, u := range g.Schema.Tables {
			if t == u {
				continue
			}
			if direct {
				if _, _, ok := g.fkPair(t, u); ok {
					out = append(out, [2]*schema.Table{t, u})
				}
				continue
			}
			p := g.Schema.JoinPath(t.Name, u.Name)
			if p != nil && len(p) >= 1 && len(p) <= maxHops {
				out = append(out, [2]*schema.Table{t, u})
			}
		}
	}
	return out
}

// fkPair returns the (t-side, u-side) columns of a direct foreign key
// between t and u, in either direction.
func (g *Generator) fkPair(t, u *schema.Table) (*schema.Column, *schema.Column, bool) {
	if t == nil || u == nil {
		return nil, nil, false
	}
	for _, fk := range g.Schema.ForeignKeys {
		if strings.EqualFold(fk.FromTable, u.Name) && strings.EqualFold(fk.ToTable, t.Name) {
			return t.Column(fk.ToColumn), u.Column(fk.FromColumn), true
		}
		if strings.EqualFold(fk.FromTable, t.Name) && strings.EqualFold(fk.ToTable, u.Name) {
			return t.Column(fk.FromColumn), u.Column(fk.ToColumn), true
		}
	}
	return nil, nil, false
}

// sampleColumn picks a random column of the requested kind not already
// used in this binding. Primary-key id columns are deprioritized for
// non-key slots (they rarely appear in natural questions).
func (g *Generator) sampleColumn(t *schema.Table, kind templates.AttrKind, used map[string]bool) *schema.Column {
	var candidates []*schema.Column
	for _, c := range t.Columns {
		if used[c.Name] {
			continue
		}
		switch kind {
		case templates.NumAttr:
			if c.Type != schema.Number {
				continue
			}
		case templates.TextAttr:
			if c.Type != schema.Text {
				continue
			}
		}
		candidates = append(candidates, c)
	}
	if len(candidates) == 0 {
		return nil
	}
	// Prefer non-PK columns when any exist.
	var nonPK []*schema.Column
	for _, c := range candidates {
		if !c.PrimaryKey && !strings.HasSuffix(strings.ToLower(c.Name), "_id") && strings.ToLower(c.Name) != "id" {
			nonPK = append(nonPK, c)
		}
	}
	if len(nonPK) > 0 && g.rng.Float64() < 0.9 {
		return nonPK[g.rng.Intn(len(nonPK))]
	}
	return candidates[g.rng.Intn(len(candidates))]
}

// renderSQL substitutes schema slots into the SQL skeleton and
// validates the result parses. @NUM literals become small constants.
func (g *Generator) renderSQL(t *templates.Template, b *binding) (string, bool) {
	out := t.SQL
	out = strings.ReplaceAll(out, "{t}", b.t.Name)
	if b.u != nil {
		out = strings.ReplaceAll(out, "{u}", b.u.Name)
	}
	for slot, col := range b.attrs {
		tab := g.tableOf(slot, b)
		out = strings.ReplaceAll(out, "{t."+slot+"}", tab.Name+"."+col.Name)
		out = strings.ReplaceAll(out, "{u."+slot+"}", tab.Name+"."+col.Name)
		out = strings.ReplaceAll(out, "{@"+slot+"}", placeholderFor(tab, col))
		out = strings.ReplaceAll(out, "{"+slot+"}", col.Name)
	}
	if strings.Contains(out, "@NUM") {
		n := g.rng.Intn(9) + 2
		out = strings.ReplaceAll(out, "@NUM", fmt.Sprintf("%d", n))
		// NL side replaces @NUM with the same constant via binding; we
		// stash it in attrs-free channel below by returning both parts.
		// (Handled by renderPairNum in callers; see instantiate.)
		g.lastNum = n
	} else {
		g.lastNum = 0
	}
	if strings.Contains(out, "{") {
		return "", false // unresolved slot: template/schema mismatch
	}
	if _, err := sqlast.Parse(out); err != nil {
		return "", false
	}
	return out, true
}

// tableOf returns the table a slot binds to.
func (g *Generator) tableOf(slot string, b *binding) *schema.Table {
	if as, ok := templates.AttrSlotByName(slot); ok && as.Table == 2 {
		return b.u
	}
	return b.t
}

// placeholderFor renders the anonymized-constant token for a column.
func placeholderFor(t *schema.Table, c *schema.Column) string {
	return "@" + strings.ToUpper(t.Name) + "." + strings.ToUpper(c.Name)
}

// Placeholder is the exported form of the anonymized-constant token
// convention, shared with the runtime parameter handler.
func Placeholder(table, column string) string {
	return "@" + strings.ToUpper(table) + "." + strings.ToUpper(column)
}

// renderNL substitutes phrase and schema slots into the NL skeleton.
func (g *Generator) renderNL(text string, b *binding) (string, bool) {
	out := text
	// Phrase slots (iterated in sorted order so rng use is
	// deterministic).
	for _, slot := range sortedSlotNames() {
		fills := lexicon.SlotFills[slot]
		marker := "{" + strings.TrimSuffix(slot, "Phrase") + "}"
		for strings.Contains(out, marker) {
			out = strings.Replace(out, marker, fills[g.rng.Intn(len(fills))], 1)
		}
	}
	// Table nouns.
	out = strings.ReplaceAll(out, "{t+}", g.pluralNoun(b.t))
	out = strings.ReplaceAll(out, "{t}", g.singularNoun(b.t))
	if b.u != nil {
		out = strings.ReplaceAll(out, "{u+}", g.pluralNoun(b.u))
		out = strings.ReplaceAll(out, "{u}", g.singularNoun(b.u))
	}
	// Attribute nouns and placeholders (sorted for determinism; the
	// noun synonym draw only happens when the marker is present).
	for _, slot := range sortedAttrSlots(b) {
		col := b.attrs[slot]
		tab := g.tableOf(slot, b)
		out = strings.ReplaceAll(out, "{@"+slot+"}", placeholderFor(tab, col))
		marker := "{" + slot + "}"
		if strings.Contains(out, marker) {
			out = strings.ReplaceAll(out, marker, g.attrNoun(col))
		}
	}
	if g.lastNum > 0 {
		out = strings.ReplaceAll(out, "@NUM", fmt.Sprintf("%d", g.lastNum))
	}
	if strings.Contains(out, "{") {
		return "", false
	}
	// Normalize whitespace.
	return strings.Join(strings.Fields(out), " "), true
}

// sortedSlotNames returns the lexicon slot names in sorted order.
func sortedSlotNames() []string {
	names := make([]string, 0, len(lexicon.SlotFills))
	for k := range lexicon.SlotFills {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// sortedAttrSlots returns the binding's attribute slot names sorted.
func sortedAttrSlots(b *binding) []string {
	names := make([]string, 0, len(b.attrs))
	for k := range b.attrs {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// attrNoun chooses a surface form for a column: the readable name or,
// occasionally, an annotated/general synonym.
func (g *Generator) attrNoun(c *schema.Column) string {
	forms := c.SurfaceForms()
	if syns := lexicon.Synonyms(forms[0]); len(syns) > 0 {
		forms = append(forms, syns...)
	}
	if len(forms) > 1 && g.rng.Float64() < 0.35 {
		return forms[1+g.rng.Intn(len(forms)-1)]
	}
	return forms[0]
}

// singularNoun chooses a surface form for a table.
func (g *Generator) singularNoun(t *schema.Table) string {
	forms := t.SurfaceForms()
	if syns := lexicon.Synonyms(forms[0]); len(syns) > 0 {
		forms = append(forms, syns...)
	}
	if len(forms) > 1 && g.rng.Float64() < 0.35 {
		return forms[1+g.rng.Intn(len(forms)-1)]
	}
	return forms[0]
}

// pluralNoun naively pluralizes the chosen table noun.
func (g *Generator) pluralNoun(t *schema.Table) string {
	return Pluralize(g.singularNoun(t))
}

// Pluralize applies naive English pluralization.
func Pluralize(noun string) string {
	switch {
	case noun == "":
		return noun
	case strings.HasSuffix(noun, "s") || strings.HasSuffix(noun, "x") ||
		strings.HasSuffix(noun, "ch") || strings.HasSuffix(noun, "sh"):
		return noun + "es"
	case strings.HasSuffix(noun, "y") && len(noun) > 1 && !isVowelByte(noun[len(noun)-2]):
		return noun[:len(noun)-1] + "ies"
	case strings.HasSuffix(noun, "person"):
		return strings.TrimSuffix(noun, "person") + "people"
	default:
		return noun + "s"
	}
}

func isVowelByte(c byte) bool {
	switch c {
	case 'a', 'e', 'i', 'o', 'u':
		return true
	}
	return false
}

// promoteGroupBy turns an aggregate instance into its GROUP BY version
// (paper parameter groupByP): a grouping attribute is added to the
// SELECT list and the GROUP BY clause, and a grouping phrase to the NL.
func (g *Generator) promoteGroupBy(sqlText, nlText string, b *binding) (string, string, bool) {
	q, err := sqlast.Parse(sqlText)
	if err != nil || len(q.GroupBy) > 0 || q.From.JoinPlaceholder {
		return "", "", false
	}
	used := map[string]bool{}
	for _, c := range b.attrs {
		used[c.Name] = true
	}
	grp := g.sampleColumn(b.t, templates.AnyAttr, used)
	if grp == nil {
		return "", "", false
	}
	q.Select = append([]sqlast.SelectItem{{Col: sqlast.ColumnRef{Column: grp.Name}}}, q.Select...)
	q.GroupBy = append(q.GroupBy, sqlast.ColumnRef{Column: grp.Name})
	fills := lexicon.SlotFills[lexicon.SlotGroup]
	phrase := fills[g.rng.Intn(len(fills))]
	return q.String(), nlText + " " + phrase + " " + g.attrNoun(grp), true
}
