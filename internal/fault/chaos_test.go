package fault_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	goruntime "runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/models"
	"repro/internal/patients"
	"repro/internal/pipeline"
	"repro/internal/runtime"
)

// waitForGoroutines retries until the goroutine count drops to the
// baseline (transient watchers and pool workers need a moment to
// exit), failing with a full stack dump if it never does — the
// stdlib-only goleak check.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	for i := 0; i < 100; i++ {
		if goruntime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := goruntime.Stack(buf, true)
	t.Fatalf("goroutines leaked: %d > baseline %d\n%s", goruntime.NumGoroutine(), baseline, buf[:n])
}

func makePairs(n int) []pipeline.Pair {
	out := make([]pipeline.Pair, n)
	for i := range out {
		out[i] = pipeline.Pair{
			NL:     fmt.Sprintf("question %d", i),
			SQL:    fmt.Sprintf("SELECT c%d FROM t", i),
			Stage:  "generate",
			Origin: "template",
		}
	}
	return out
}

// Tier 1+4: an injected stage panic surfaces as a typed *StageError
// (never a crash), the delivered pairs are the exact prefix before the
// fault at every worker count, and no goroutines are left behind.
func TestInjectedStagePanicBecomesStageError(t *testing.T) {
	const n = 60
	inj := fault.NewInjector(7, 10)
	k := inj.FirstFire(n)
	if k < 0 || k >= n-1 {
		t.Fatalf("injector never fires usefully in [0,%d): k=%d", n, k)
	}
	baseline := goruntime.NumGoroutine()

	run := func(workers int) ([]pipeline.Pair, error) {
		g := pipeline.New(workers,
			pipeline.FromSlice("src", makePairs(n)),
			fault.Stage(pipeline.Map("xform", func(p pipeline.Pair) pipeline.Pair { return p }),
				fault.NewInjector(7, 10), fault.Panic, 0),
		)
		return g.CollectContext(context.Background())
	}

	got1, err1 := run(1)
	got8, err8 := run(8)
	for _, tc := range []struct {
		workers int
		got     []pipeline.Pair
		err     error
	}{{1, got1, err1}, {8, got8, err8}} {
		var se *pipeline.StageError
		if !errors.As(tc.err, &se) {
			t.Fatalf("workers=%d: error = %v, want *pipeline.StageError", tc.workers, tc.err)
		}
		if se.Stage != "xform+fault" {
			t.Errorf("workers=%d: StageError.Stage = %q", tc.workers, se.Stage)
		}
		if se.Index != int64(k) {
			t.Errorf("workers=%d: StageError.Index = %d, want %d", tc.workers, se.Index, k)
		}
		if !strings.Contains(fmt.Sprint(se.Recovered), "injected panic") {
			t.Errorf("workers=%d: Recovered = %v", tc.workers, se.Recovered)
		}
		if len(tc.got) != k {
			t.Errorf("workers=%d: delivered %d pairs before the fault, want %d", tc.workers, len(tc.got), k)
		}
		if k > 0 && (se.Last == nil || se.Last.NL != tc.got[k-1].NL) {
			t.Errorf("workers=%d: StageError.Last = %+v", tc.workers, se.Last)
		}
	}
	if len(got1) != len(got8) {
		t.Fatalf("prefix length differs by worker count: %d vs %d", len(got1), len(got8))
	}
	for i := range got1 {
		if got1[i] != got8[i] {
			t.Fatalf("prefix diverges at %d: %+v vs %+v", i, got1[i], got8[i])
		}
	}
	waitForGoroutines(t, baseline)
}

func tinyExamples() []models.Example {
	schemaToks := []string{
		"patients", "name", "age", "diagnosis",
		"patients.name", "patients.age", "patients.diagnosis",
		"@PATIENTS.NAME", "@PATIENTS.AGE", "@PATIENTS.DIAGNOSIS", "@JOIN",
	}
	mk := func(nl, sql string) models.Example {
		return models.Example{NL: strings.Fields(nl), SQL: strings.Fields(sql), Schema: schemaToks}
	}
	return []models.Example{
		mk("show the name of all patient", "SELECT name FROM patients"),
		mk("count all patient", "SELECT COUNT ( * ) FROM patients"),
		mk("show the age of all patient", "SELECT age FROM patients"),
		mk("show patient with age @PATIENTS.AGE", "SELECT name FROM patients WHERE age = @PATIENTS.AGE"),
		mk("show patient with diagnosis @PATIENTS.DIAGNOSIS", "SELECT name FROM patients WHERE diagnosis = @PATIENTS.DIAGNOSIS"),
		mk("what be the average age of patient", "SELECT AVG ( age ) FROM patients"),
		mk("list the diagnosis of all patient", "SELECT diagnosis FROM patients"),
		mk("how many patient have diagnosis @PATIENTS.DIAGNOSIS", "SELECT COUNT ( * ) FROM patients WHERE diagnosis = @PATIENTS.DIAGNOSIS"),
	}
}

// Tier 2: kill seq2seq training at a periodic checkpoint boundary
// (mid-epoch), resume from the checkpoint after a disk round-trip,
// and require the final model to be byte-identical to an
// uninterrupted run.
func TestKillAndResumeSeq2SeqByteIdentical(t *testing.T) {
	cfg := models.Seq2SeqConfig{
		EmbDim: 6, HidDim: 8, LR: 0.01, Epochs: 4, MaxOutLen: 8,
		GradClip: 5, MinCount: 1, BatchSize: 1, Seed: 3,
	}
	exs := tinyExamples()

	uninterrupted := models.NewSeq2Seq(cfg)
	uninterrupted.Train(exs)
	var want bytes.Buffer
	if err := uninterrupted.SaveFull(&want); err != nil {
		t.Fatal(err)
	}

	// Kill at the first periodic checkpoint: 5 steps into epoch 0 (8
	// steps per epoch at batch size 1), i.e. mid-epoch.
	ckPath := filepath.Join(t.TempDir(), "train.ck")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fired := false
	interrupted := models.NewSeq2Seq(cfg)
	err := interrupted.TrainContext(ctx, exs, models.TrainOptions{
		CheckpointEvery: 5,
		CheckpointPath:  ckPath,
		OnCheckpoint: func(c *models.Checkpoint) {
			if !fired {
				fired = true
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted training returned %v, want context.Canceled", err)
	}

	ck, err := models.LoadCheckpoint(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Kind != "seq2seq" || ck.Epoch != 0 || ck.Step != 5 {
		t.Fatalf("checkpoint position = %q epoch %d step %d, want seq2seq 0/5", ck.Kind, ck.Epoch, ck.Step)
	}

	resumed := models.NewSeq2Seq(cfg)
	if err := resumed.TrainContext(context.Background(), exs, models.TrainOptions{Resume: ck}); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := resumed.SaveFull(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatal("resumed model differs from uninterrupted model")
	}
}

// Tier 2, batched path: the sketch model with minibatch lanes and a
// parallel batch pool resumes bit-identically too.
func TestKillAndResumeSketchBatchedByteIdentical(t *testing.T) {
	cfg := models.SketchConfig{
		EmbDim: 6, HidDim: 8, LR: 0.01, Epochs: 4, MaxSlots: 6,
		GradClip: 5, MinCount: 1, BatchSize: 2, Workers: 3, Seed: 5,
	}
	exs := tinyExamples()

	uninterrupted := models.NewSketch(cfg)
	uninterrupted.Train(exs)
	var want bytes.Buffer
	if err := uninterrupted.SaveFull(&want); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var last *models.Checkpoint
	interrupted := models.NewSketch(cfg)
	err := interrupted.TrainContext(ctx, exs, models.TrainOptions{
		CheckpointEvery: 3, // 4 steps per epoch at batch size 2: lands mid-epoch
		OnCheckpoint: func(c *models.Checkpoint) {
			if last == nil {
				cancel()
			}
			last = c
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted training returned %v, want context.Canceled", err)
	}
	if last == nil {
		t.Fatal("no checkpoint observed")
	}

	resumed := models.NewSketch(cfg)
	if err := resumed.TrainContext(context.Background(), exs, models.TrainOptions{Resume: last}); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := resumed.SaveFull(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatal("resumed batched model differs from uninterrupted model")
	}
}

// Tier 2, write path: a failed (truncated) checkpoint write must leave
// the previous checkpoint intact and no temp debris behind.
func TestAtomicCheckpointWriteSurvivesTornWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.ck")
	if err := models.WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("good checkpoint"))
		return err
	}); err != nil {
		t.Fatal(err)
	}

	inj := fault.NewInjector(1, 1) // fires on every write call
	err := models.WriteFileAtomic(path, func(w io.Writer) error {
		_, werr := fault.NewWriter(w, inj, fault.Truncate).Write([]byte("replacement that tears"))
		return werr
	})
	if err == nil || !strings.Contains(err.Error(), "truncated write") {
		t.Fatalf("torn write not surfaced: %v", err)
	}

	got, rerr := os.ReadFile(path)
	if rerr != nil || string(got) != "good checkpoint" {
		t.Fatalf("previous checkpoint damaged: %q, %v", got, rerr)
	}
	entries, rerr := os.ReadDir(dir)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if len(entries) != 1 {
		t.Fatalf("temp debris left behind: %v", entries)
	}
}

// trainedNN returns a nearest-neighbor tier trained on runtime-shaped
// examples (lemmatized NL, parsable SQL tokens).
func trainedNN() *models.NearestNeighbor {
	nn := models.NewNearestNeighbor()
	nn.Train([]models.Example{
		{NL: strings.Fields("show the name of all patient"), SQL: strings.Fields("SELECT name FROM patients")},
		{NL: strings.Fields("count all patient"), SQL: strings.Fields("SELECT COUNT ( * ) FROM patients")},
	})
	return nn
}

// Tier 3: an injected always-failing primary model is answered by the
// fallback tier, and the trace records both the tier that answered
// and why the primary failed.
func TestInjectedPrimaryFailureFallsThrough(t *testing.T) {
	db, err := patients.Database()
	if err != nil {
		t.Fatal(err)
	}
	nn := trainedNN()
	primary := fault.NewTranslator(trainedNN(), fault.NewInjector(1, 1), fault.Error, 0)

	tr := runtime.NewTranslator(db, primary)
	tr.Fallbacks = []models.Translator{nn}

	q, trace, err := tr.TranslateTrace("show the names of all patients")
	if err != nil {
		t.Fatalf("fallback chain failed: %v\n%s", err, trace)
	}
	if trace.Tier != nn.Name() {
		t.Fatalf("Trace.Tier = %q, want %q", trace.Tier, nn.Name())
	}
	if len(trace.TierErrors) != 1 || !strings.Contains(trace.TierErrors[0], primary.Name()) {
		t.Fatalf("Trace.TierErrors = %v", trace.TierErrors)
	}
	if q == nil || !strings.Contains(q.String(), "SELECT") {
		t.Fatalf("fallback produced %v", q)
	}
	if _, eerr := db.Execute(q); eerr != nil {
		t.Fatalf("fallback SQL does not execute: %v", eerr)
	}
}

// Tier 3: a panicking primary is contained the same way.
func TestInjectedPrimaryPanicIsContained(t *testing.T) {
	db, err := patients.Database()
	if err != nil {
		t.Fatal(err)
	}
	primary := fault.NewTranslator(trainedNN(), fault.NewInjector(1, 1), fault.Panic, 0)
	tr := runtime.NewTranslator(db, primary)
	tr.Fallbacks = []models.Translator{trainedNN()}

	_, trace, err := tr.TranslateTrace("show the names of all patients")
	if err != nil {
		t.Fatalf("panicking primary took the chain down: %v", err)
	}
	if len(trace.TierErrors) != 1 || !strings.Contains(trace.TierErrors[0], "panicked") {
		t.Fatalf("Trace.TierErrors = %v", trace.TierErrors)
	}
}

// Tier 3: a primary slower than the per-question deadline is
// abandoned and the fallback answers.
func TestDeadlineAbandonsSlowPrimary(t *testing.T) {
	db, err := patients.Database()
	if err != nil {
		t.Fatal(err)
	}
	primary := fault.NewTranslator(trainedNN(), fault.NewInjector(1, 1), fault.Delay, 300*time.Millisecond)
	tr := runtime.NewTranslator(db, primary)
	tr.Deadline = 20 * time.Millisecond
	tr.Fallbacks = []models.Translator{trainedNN()}

	_, trace, err := tr.TranslateTrace("show the names of all patients")
	if err != nil {
		t.Fatalf("slow primary took the chain down: %v", err)
	}
	if trace.Tier != "template-nn" {
		t.Fatalf("Trace.Tier = %q", trace.Tier)
	}
	if len(trace.TierErrors) != 1 || !strings.Contains(trace.TierErrors[0], "deadline") {
		t.Fatalf("Trace.TierErrors = %v", trace.TierErrors)
	}
}

// The injector itself: firing is a pure function of (seed, index).
func TestInjectorDeterminism(t *testing.T) {
	a, b := fault.NewInjector(42, 7), fault.NewInjector(42, 7)
	fires := 0
	for i := 0; i < 1000; i++ {
		if a.Fires(i) != b.Fires(i) {
			t.Fatalf("injector not deterministic at %d", i)
		}
		if a.Fires(i) {
			fires++
		}
	}
	if fires == 0 || fires == 1000 {
		t.Fatalf("oneIn=7 fired %d/1000 times", fires)
	}
	var disarmed *fault.Injector
	if disarmed.Fires(0) || fault.NewInjector(1, 0).Fires(0) {
		t.Fatal("disarmed injectors must never fire")
	}
}
