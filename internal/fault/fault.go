// Package fault is the repository's deterministic fault-injection
// harness: a seed-driven Injector decides, purely from an item index,
// whether a fault fires, and thin wrappers thread that decision into
// the three plug-in seams of the system — a pipeline Stage, an
// io.Writer, and a models.Translator. Because firing depends only on
// (seed, index) — the same SplitMix64 derivation the rest of the
// repository uses for RNG streams — an injected fault lands on the
// same item at any worker count, which is what lets the chaos tests
// assert exact prefixes and byte-identical resume behaviour instead
// of "it eventually failed somewhere".
package fault

import (
	"fmt"
	"hash/fnv"
	"io"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/models"
	"repro/internal/par"
	"repro/internal/pipeline"
)

// Kind selects what an armed injection site does when it fires.
type Kind int

// Injection kinds.
const (
	// Panic panics with an "injected panic" value.
	Panic Kind = iota
	// Error returns an injected error (writers) or a nil/empty result
	// (translators, whose contract has no error return).
	Error
	// Delay sleeps for the configured duration, then proceeds
	// normally — the shape of a slow, not broken, dependency.
	Delay
	// Truncate writes only half of the buffer and then fails — the
	// torn-write shape that atomic checkpointing must survive.
	Truncate
)

// String names the kind for error messages.
func (k Kind) String() string {
	switch k {
	case Panic:
		return "panic"
	case Error:
		return "error"
	case Delay:
		return "delay"
	case Truncate:
		return "truncate"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Injector decides deterministically whether the fault fires at an
// item index: it fires when SplitMix64(seed, index) mod oneIn == 0.
// oneIn <= 0 never fires (a disarmed injector, including nil, is a
// no-op), oneIn == 1 fires on every index. The decision depends only
// on (seed, index) — never on scheduling, worker count, or wall
// clock.
type Injector struct {
	seed  int64
	oneIn int
}

// NewInjector returns an injector firing on roughly one in oneIn
// indices, selected by seed.
func NewInjector(seed int64, oneIn int) *Injector {
	return &Injector{seed: seed, oneIn: oneIn}
}

// Fires reports whether the fault fires at index i.
func (inj *Injector) Fires(i int) bool {
	if inj == nil || inj.oneIn <= 0 {
		return false
	}
	return uint64(par.SplitSeed(inj.seed, i))%uint64(inj.oneIn) == 0
}

// FirstFire returns the first index in [0, n) at which the injector
// fires, or -1. Chaos tests use it to know where the fault will land
// before running anything.
func (inj *Injector) FirstFire(n int) int {
	for i := 0; i < n; i++ {
		if inj.Fires(i) {
			return i
		}
	}
	return -1
}

// ---------------------------------------------------------------------
// Pipeline stage wrapper.
// ---------------------------------------------------------------------

type faultStage struct {
	inner pipeline.Stage
	inj   *Injector
	kind  Kind
	delay time.Duration
}

// Stage wraps a pipeline stage so the configured fault fires just
// before the inner stage's i-th emitted pair leaves it, for every i
// the injector selects (kinds: Panic, Delay). Stages emit serially
// and in a worker-count-invariant order, so the fault position in the
// stream is deterministic.
func Stage(inner pipeline.Stage, inj *Injector, kind Kind, delay time.Duration) pipeline.Stage {
	return &faultStage{inner: inner, inj: inj, kind: kind, delay: delay}
}

// Name implements pipeline.Stage.
func (s *faultStage) Name() string { return s.inner.Name() + "+fault" }

// Run implements pipeline.Stage.
func (s *faultStage) Run(in <-chan pipeline.Pair, emit func(pipeline.Pair), workers int) {
	i := 0
	s.inner.Run(in, func(p pipeline.Pair) {
		if s.inj.Fires(i) {
			switch s.kind {
			case Delay:
				time.Sleep(s.delay)
			default:
				panic(fmt.Sprintf("fault: injected panic at pair %d of stage %q", i, s.inner.Name()))
			}
		}
		i++
		emit(p)
	}, workers)
}

// ---------------------------------------------------------------------
// io.Writer wrapper.
// ---------------------------------------------------------------------

// Writer wraps an io.Writer so the configured fault fires on the
// write calls the injector selects, by call index (kinds: Error,
// Truncate). A truncated write forwards half the buffer first — the
// torn-file shape checkpointing must tolerate.
type Writer struct {
	w     io.Writer
	inj   *Injector
	kind  Kind
	calls int
}

// NewWriter wraps w.
func NewWriter(w io.Writer, inj *Injector, kind Kind) *Writer {
	return &Writer{w: w, inj: inj, kind: kind}
}

// Write implements io.Writer.
func (fw *Writer) Write(p []byte) (int, error) {
	i := fw.calls
	fw.calls++
	if !fw.inj.Fires(i) {
		return fw.w.Write(p)
	}
	if fw.kind == Truncate && len(p) > 0 {
		n, err := fw.w.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("fault: injected truncated write at call %d", i)
	}
	return 0, fmt.Errorf("fault: injected write error at call %d", i)
}

// ---------------------------------------------------------------------
// models.Translator wrapper.
// ---------------------------------------------------------------------

// Translator wraps a models.Translator so the configured fault fires
// on the Translate calls the injector selects, by call index (kinds:
// Panic, Error — which returns no output, the only failure shape the
// Translator contract can express — and Delay). The call counter is
// atomic: eval calls Translate concurrently.
type Translator struct {
	inner models.Translator
	inj   *Injector
	kind  Kind
	delay time.Duration
	calls atomic.Int64
}

// NewTranslator wraps inner.
func NewTranslator(inner models.Translator, inj *Injector, kind Kind, delay time.Duration) *Translator {
	return &Translator{inner: inner, inj: inj, kind: kind, delay: delay}
}

// Name implements models.Translator.
func (ft *Translator) Name() string { return ft.inner.Name() + "+fault" }

// Train implements models.Translator (passes through unfaulted).
func (ft *Translator) Train(examples []models.Example) { ft.inner.Train(examples) }

// Translate implements models.Translator.
func (ft *Translator) Translate(nl, schemaToks []string) []string {
	i := int(ft.calls.Add(1)) - 1
	if ft.inj.Fires(i) {
		switch ft.kind {
		case Panic:
			panic(fmt.Sprintf("fault: injected panic at translate call %d", i))
		case Delay:
			time.Sleep(ft.delay)
		default:
			return nil
		}
	}
	return ft.inner.Translate(nl, schemaToks)
}

// ---------------------------------------------------------------------
// Identifier-typo wrapper.
// ---------------------------------------------------------------------

// Typos wraps a models.Translator and mangles the column identifiers
// in its output — the repairable-mistake generator that dbpal-eval's
// -corrupt mode and the critic's strict-improvement tests drive.
// Unlike the call-indexed Translator wrapper, the injector here keys
// on a content hash of the question, so which questions get corrupted
// is a pure function of the workload — invariant under eval worker
// count and call order.
type Typos struct {
	inner models.Translator
	inj   *Injector
	cols  map[string]bool
}

// NewTypos wraps inner; columns is the lexicon of column names whose
// occurrences in the decoded tokens get mangled.
func NewTypos(inner models.Translator, inj *Injector, columns []string) *Typos {
	cols := make(map[string]bool, len(columns))
	for _, c := range columns {
		cols[strings.ToLower(c)] = true
	}
	return &Typos{inner: inner, inj: inj, cols: cols}
}

// Name implements models.Translator.
func (tt *Typos) Name() string { return tt.inner.Name() + "+typos" }

// Train implements models.Translator (passes through uncorrupted).
func (tt *Typos) Train(examples []models.Example) { tt.inner.Train(examples) }

// Translate implements models.Translator.
func (tt *Typos) Translate(nl, schemaToks []string) []string {
	out := tt.inner.Translate(nl, schemaToks)
	if tt.inj.Fires(contentIndex(nl)) {
		return tt.mangle(out)
	}
	return out
}

// TranslateK surfaces the inner model's beam when it has one,
// corrupting every candidate of a selected question alike.
func (tt *Typos) TranslateK(nl, schemaToks []string, k int) [][]string {
	type kTranslator interface {
		TranslateK(nl, schemaToks []string, k int) [][]string
	}
	var beam [][]string
	if inner, ok := tt.inner.(kTranslator); ok {
		beam = inner.TranslateK(nl, schemaToks, k)
	} else if out := tt.inner.Translate(nl, schemaToks); len(out) > 0 {
		beam = [][]string{out}
	}
	if !tt.inj.Fires(contentIndex(nl)) {
		return beam
	}
	res := make([][]string, len(beam))
	for i, cand := range beam {
		res[i] = tt.mangle(cand)
	}
	return res
}

// mangle drops the last character of every token that names a known
// column ("price" -> "pric", "fleet_size" -> "fleet_siz"): an
// unknown-column typo that fails execution but sits near its origin in
// a repair lexicon. Short names are left alone so the typo stays
// recognisably close to the original, and placeholders (@TABLE.COL)
// are never touched.
func (tt *Typos) mangle(toks []string) []string {
	out := make([]string, len(toks))
	for i, tok := range toks {
		out[i] = tok
		if len(tok) < 4 || strings.HasPrefix(tok, "@") || !tt.cols[strings.ToLower(tok)] {
			continue
		}
		out[i] = tok[:len(tok)-1]
	}
	return out
}

// contentIndex hashes question tokens into an injector index, so the
// corruption decision depends only on the question itself.
func contentIndex(nl []string) int {
	h := fnv.New32a()
	for _, tok := range nl {
		_, _ = h.Write([]byte(tok)) // fnv Write cannot fail
		_, _ = h.Write([]byte{0})
	}
	return int(h.Sum32() & 0x7fffffff)
}
