package fault

import (
	"fmt"
	"net/http"
	"sync/atomic"
	"time"
)

// ---------------------------------------------------------------------
// http.Handler wrapper.
// ---------------------------------------------------------------------

// Handler wraps an http.Handler so the configured fault fires on the
// request indices the injector selects (kinds: Panic, Error — a 500
// response — and Delay). The request counter is atomic: the server
// serves concurrently. Like every wrapper in this package, firing
// depends only on (seed, index), so the serve chaos suite can place a
// fault on an exact request in a concurrent stream.
type Handler struct {
	inner http.Handler
	inj   *Injector
	kind  Kind
	delay time.Duration
	calls atomic.Int64
}

// NewHandler wraps inner.
func NewHandler(inner http.Handler, inj *Injector, kind Kind, delay time.Duration) *Handler {
	return &Handler{inner: inner, inj: inj, kind: kind, delay: delay}
}

// Calls returns how many requests the wrapper has seen.
func (h *Handler) Calls() int64 { return h.calls.Load() }

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	i := int(h.calls.Add(1)) - 1
	if h.inj.Fires(i) {
		switch h.kind {
		case Panic:
			panic(fmt.Sprintf("fault: injected panic at request %d", i))
		case Delay:
			time.Sleep(h.delay)
		default:
			http.Error(w, fmt.Sprintf("fault: injected error at request %d", i), http.StatusInternalServerError)
			return
		}
	}
	h.inner.ServeHTTP(w, r)
}

// ---------------------------------------------------------------------
// http.RoundTripper wrapper.
// ---------------------------------------------------------------------

// RoundTripper wraps an http.RoundTripper so the configured fault
// fires on the round-trip indices the injector selects (kinds: Error —
// a transport error, the shape retry layers must absorb — Delay, and
// Panic). A nil inner transport uses http.DefaultTransport.
type RoundTripper struct {
	inner http.RoundTripper
	inj   *Injector
	kind  Kind
	delay time.Duration
	calls atomic.Int64
}

// NewRoundTripper wraps inner.
func NewRoundTripper(inner http.RoundTripper, inj *Injector, kind Kind, delay time.Duration) *RoundTripper {
	return &RoundTripper{inner: inner, inj: inj, kind: kind, delay: delay}
}

// Calls returns how many round trips the wrapper has seen.
func (rt *RoundTripper) Calls() int64 { return rt.calls.Load() }

// RoundTrip implements http.RoundTripper.
func (rt *RoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	i := int(rt.calls.Add(1)) - 1
	if rt.inj.Fires(i) {
		switch rt.kind {
		case Panic:
			panic(fmt.Sprintf("fault: injected panic at round trip %d", i))
		case Delay:
			time.Sleep(rt.delay)
		default:
			return nil, fmt.Errorf("fault: injected transport error at round trip %d", i)
		}
	}
	inner := rt.inner
	if inner == nil {
		inner = http.DefaultTransport
	}
	return inner.RoundTrip(req)
}
