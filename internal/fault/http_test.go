package fault_test

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
)

// okHandler answers every request with its body "ok".
var okHandler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
	fmt.Fprint(w, "ok")
})

// TestFaultHandlerInjectsAtExactIndices: the wrapped handler fails
// exactly on the injector-selected request indices — deterministic at
// any request interleaving, because the decision hashes (seed, index).
func TestFaultHandlerInjectsAtExactIndices(t *testing.T) {
	const n = 40
	inj := fault.NewInjector(11, 5)
	h := fault.NewHandler(okHandler, inj, fault.Error, 0)
	for i := 0; i < n; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
		wantFail := inj.Fires(i)
		if gotFail := rec.Code == http.StatusInternalServerError; gotFail != wantFail {
			t.Fatalf("request %d: status %d, fires=%v", i, rec.Code, wantFail)
		}
		if !wantFail && rec.Body.String() != "ok" {
			t.Fatalf("request %d: body %q", i, rec.Body.String())
		}
	}
	if h.Calls() != n {
		t.Fatalf("Calls = %d, want %d", h.Calls(), n)
	}
}

// TestFaultHandlerPanicKind: the Panic kind panics out of ServeHTTP
// (net/http's per-connection recover is what a real server would hit).
func TestFaultHandlerPanicKind(t *testing.T) {
	h := fault.NewHandler(okHandler, fault.NewInjector(1, 1), fault.Panic, 0)
	defer func() {
		if r := recover(); r == nil || !strings.Contains(fmt.Sprint(r), "injected panic") {
			t.Fatalf("recovered %v, want injected panic", r)
		}
	}()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
}

// TestFaultHandlerDelayKind: Delay holds the request, then serves it
// normally — the slow-but-healthy dependency shape.
func TestFaultHandlerDelayKind(t *testing.T) {
	h := fault.NewHandler(okHandler, fault.NewInjector(1, 1), fault.Delay, 30*time.Millisecond)
	start := time.Now() //lint:allow determinism timing a test-local delay
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if time.Since(start) < 30*time.Millisecond {
		t.Fatal("delay fault did not delay")
	}
	if rec.Code != http.StatusOK || rec.Body.String() != "ok" {
		t.Fatalf("delayed request not served: %d %q", rec.Code, rec.Body.String())
	}
}

// TestFaultRoundTripperInjectsTransportErrors: the client-side wrapper
// turns selected round trips into transport errors while letting the
// others through to the real server.
func TestFaultRoundTripperInjectsTransportErrors(t *testing.T) {
	srv := httptest.NewServer(okHandler)
	defer srv.Close()

	const n = 30
	inj := fault.NewInjector(3, 4)
	rt := fault.NewRoundTripper(nil, inj, fault.Error, 0)
	client := &http.Client{Transport: rt}
	defer client.CloseIdleConnections()

	for i := 0; i < n; i++ {
		resp, err := client.Get(srv.URL)
		if inj.Fires(i) {
			if err == nil || !strings.Contains(err.Error(), "injected transport error") {
				t.Fatalf("round trip %d: err = %v, want injected transport error", i, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("round trip %d: %v", i, err)
		}
		body, rerr := io.ReadAll(resp.Body)
		if cerr := resp.Body.Close(); rerr != nil || cerr != nil || string(body) != "ok" {
			t.Fatalf("round trip %d: body %q (%v, %v)", i, body, rerr, cerr)
		}
	}
	if rt.Calls() != n {
		t.Fatalf("Calls = %d, want %d", rt.Calls(), n)
	}
}

// TestFaultRoundTripperNilInnerUsesDefault: a nil inner transport is
// the default transport, so the wrapper drops into clients verbatim.
func TestFaultRoundTripperNilInnerUsesDefault(t *testing.T) {
	srv := httptest.NewServer(okHandler)
	defer srv.Close()
	rt := fault.NewRoundTripper(nil, fault.NewInjector(1, 0), fault.Error, 0) // disarmed
	client := &http.Client{Transport: rt}
	defer client.CloseIdleConnections()
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if cerr := resp.Body.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}
