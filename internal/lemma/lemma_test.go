package lemma

import (
	"testing"
	"testing/quick"
)

func TestLemmatizeTable(t *testing.T) {
	cases := map[string]string{
		// be and auxiliaries (the paper's example).
		"is": "be", "are": "be", "am": "be", "was": "be", "were": "be",
		// possessives and plurals (the paper's "cars"/"car's" example).
		"cars": "car", "car's": "car", "car": "car",
		"cities": "city", "diagnoses": "diagnosis", "people": "person",
		"patients": "patient", "doctors": "doctor", "diseases": "disease",
		"names": "name", "nurses": "nurse", "classes": "class",
		"boxes": "box",
		// verbs.
		"stayed": "stay", "diagnosed": "diagnose", "treated": "treat",
		"stopped": "stop", "showed": "show", "equaled": "equal",
		"staying": "stay", "having": "have", "sorting": "sort",
		// comparatives/superlatives.
		"older": "old", "oldest": "old", "longest": "long",
		"highest": "high", "better": "good", "most": "many",
		// protected words.
		"this": "this", "his": "his", "always": "always", "during": "during",
		"something": "something", "status": "status", "series": "series",
		"hundred": "hundred", "need": "need",
		// short words unaffected.
		"age": "age", "name": "name", "stay": "stay", "be": "be",
	}
	for in, want := range cases {
		if got := Lemmatize(in); got != want {
			t.Errorf("Lemmatize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestLemmatizePassThrough(t *testing.T) {
	for _, tok := range []string{"@PATIENTS.AGE", "@JOIN", "80", "12.5", ""} {
		if got := Lemmatize(tok); got != tok {
			t.Errorf("Lemmatize(%q) = %q, should pass through", tok, got)
		}
	}
}

func TestLemmatizeAll(t *testing.T) {
	got := LemmatizeAll([]string{"patients", "are", "staying"})
	want := []string{"patient", "be", "stay"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LemmatizeAll = %v", got)
		}
	}
}

func TestLemmatizeText(t *testing.T) {
	if got := LemmatizeText("the cars were stopped"); got != "the car be stop" {
		t.Fatalf("LemmatizeText = %q", got)
	}
}

// Property: lemmatization is idempotent for the domain vocabulary.
func TestLemmatizeIdempotentQuick(t *testing.T) {
	words := []string{
		"patients", "cities", "doctors", "staying", "diagnosed", "older",
		"highest", "was", "names", "showed", "people", "treated", "cars",
		"lengths", "averaged", "sorted", "grouped", "counting",
	}
	f := func(i uint8) bool {
		w := words[int(i)%len(words)]
		once := Lemmatize(w)
		twice := Lemmatize(once)
		return once == twice
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: lemmas are never longer than input plus one restored 'e'.
func TestLemmatizeLengthQuick(t *testing.T) {
	words := []string{"patients", "diagnosed", "cities", "was", "better", "showing"}
	f := func(i uint8) bool {
		w := words[int(i)%len(words)]
		return len(Lemmatize(w)) <= len(w)+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
