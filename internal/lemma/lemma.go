// Package lemma implements the rule-based English lemmatizer used in
// both the training pipeline (last step of data generation) and the
// runtime pre-processor. Different surface forms of a word are mapped
// to a single root ("is"/"are"/"am" -> "be", "cars"/"car's" -> "car",
// "stayed" -> "stay") so that the model sees a normalized token stream
// on both sides.
//
// The paper uses an off-the-shelf lemmatizer; this package substitutes
// a deterministic irregular-form table plus conservative suffix rules,
// which provides the same normalization contract for the pipeline's
// vocabulary.
package lemma

import "strings"

// irregular maps irregular inflected forms to their lemma.
var irregular = map[string]string{
	// be / auxiliaries
	"am": "be", "is": "be", "are": "be", "was": "be", "were": "be",
	"been": "be", "being": "be", "'s": "be", "'re": "be", "'m": "be",
	"has": "have", "had": "have", "having": "have",
	"does": "do", "did": "do", "doing": "do", "done": "do",
	"goes": "go", "went": "go", "gone": "go",
	"says": "say", "said": "say",
	"makes": "make", "made": "make",
	"gets": "get", "got": "get", "gotten": "get",
	"gives": "give", "gave": "give", "given": "give",
	"shows": "show", "showed": "show", "shown": "show",
	"finds": "find", "found": "find",
	"tells": "tell", "told": "tell",
	"keeps": "keep", "kept": "keep",
	"holds": "hold", "held": "hold",
	"stands": "stand", "stood": "stand",
	"lies": "lie", "lay": "lie", "lain": "lie",
	"leaves": "leave", "left": "leave",
	"pays": "pay", "paid": "pay",
	"sees": "see", "saw": "see", "seen": "see",
	"takes": "take", "took": "take", "taken": "take",
	"comes": "come", "came": "come",
	"knows": "know", "knew": "know", "known": "know",
	"treats": "treat", "treated": "treat", "treating": "treat",
	// irregular noun plurals
	"people": "person", "children": "child", "men": "man", "women": "woman",
	"feet": "foot", "teeth": "tooth", "mice": "mouse", "geese": "goose",
	"data": "datum", "criteria": "criterion", "diagnoses": "diagnosis",
	"analyses": "analysis", "cities": "city", "countries": "country",
	"counties": "county", "facilities": "facility", "studies": "study",
	"bodies": "body", "parties": "party", "families": "family",
	"injuries": "injury", "surgeries": "surgery", "salaries": "salary",
	"stays": "stay",
	// comparative/superlative irregulars
	"better": "good", "best": "good", "worse": "bad", "worst": "bad",
	"more": "many", "most": "many", "less": "little", "least": "little",
	"older": "old", "oldest": "old", "younger": "young", "youngest": "young",
	"longer": "long", "longest": "long", "shorter": "short", "shortest": "short",
	"larger": "large", "largest": "large", "smaller": "small", "smallest": "small",
	"higher": "high", "highest": "high", "lower": "low", "lowest": "low",
	"bigger": "big", "biggest": "big", "cheaper": "cheap", "cheapest": "cheap",
	"heavier": "heavy", "heaviest": "heavy", "earlier": "early", "earliest": "early",
	"fewer": "few", "fewest": "few", "greater": "great", "greatest": "great",
}

// noStrip lists words whose apparent suffix must not be stripped.
var noStrip = map[string]bool{
	"this": true, "his": true, "its": true, "is": true, "as": true,
	"was": true, "has": true, "does": true, "yes": true, "us": true,
	"thus": true, "plus": true, "gas": true, "bus": true, "status": true,
	"always": true, "perhaps": true, "besides": true, "whereas": true,
	"series": true, "species": true, "news": true, "lens": true,
	"during": true, "thing": true, "king": true, "sing": true,
	"ring": true, "spring": true, "string": true, "nothing": true,
	"something": true, "anything": true, "everything": true, "morning": true,
	"evening": true, "being": true, "building": true, "wedding": true,
	"need": true, "deed": true, "feed": true, "speed": true, "seed": true,
	"breed": true, "exceed": true, "indeed": true, "bed": true, "red": true,
	"wed": true, "ted": true, "used": true, "led": true, "shed": true,
	"hundred": true, "united": true,
}

// keepES lists stems for which the -es suffix belongs to an e-final
// stem ("diseases" -> "disease"), tried before plain -es stripping.
var esToE = map[string]bool{
	"diseas": true, "nam": true, "nurs": true, "stat": true, "cas": true,
	"plac": true, "rat": true, "dat": true, "scor": true, "tim": true,
	"typ": true, "valu": true, "averag": true, "rang": true, "sourc": true,
	"servic": true, "procedur": true, "employe": true, "degre": true,
	"lin": true, "zon": true, "mil": true, "sit": true, "rol": true,
	"titl": true, "vehicl": true, "articl": true, "peopl": true,
	"languag": true, "colleg": true, "hous": true, "cours": true,
	"not": true, "offic": true, "practic": true, "charg": true,
	"wag": true, "prize": true, "siz": true, "ag": true,
}

// Lemmatize returns the lemma of a single lower-case word token.
// Placeholders (leading '@') and numbers pass through unchanged.
func Lemmatize(word string) string {
	if word == "" || word[0] == '@' || (word[0] >= '0' && word[0] <= '9') {
		return word
	}
	w := strings.ToLower(word)
	// Possessives: car's -> car.
	w = strings.TrimSuffix(w, "'s")
	w = strings.TrimSuffix(w, "'")
	if lemma, ok := irregular[w]; ok {
		return lemma
	}
	if noStrip[w] {
		return w
	}
	if len(w) >= 4 {
		switch {
		case strings.HasSuffix(w, "ies"):
			return w[:len(w)-3] + "y"
		case strings.HasSuffix(w, "sses"), strings.HasSuffix(w, "ches"), strings.HasSuffix(w, "shes"), strings.HasSuffix(w, "xes"), strings.HasSuffix(w, "zes"):
			return w[:len(w)-2]
		case strings.HasSuffix(w, "es"):
			stem := w[:len(w)-2]
			if esToE[stem] {
				return stem + "e"
			}
			return stem + "e" // default: names->name, stores->store
		case strings.HasSuffix(w, "s") && !strings.HasSuffix(w, "ss") && !strings.HasSuffix(w, "us") && !strings.HasSuffix(w, "is"):
			return w[:len(w)-1]
		}
	}
	if len(w) >= 5 {
		switch {
		case strings.HasSuffix(w, "ied"):
			return w[:len(w)-3] + "y"
		case strings.HasSuffix(w, "ed"):
			stem := w[:len(w)-2]
			// doubled consonant: "stopped" -> "stop"
			if len(stem) >= 3 && stem[len(stem)-1] == stem[len(stem)-2] && !isVowel(stem[len(stem)-1]) {
				return stem[:len(stem)-1]
			}
			// e-final stems: "diagnosed" -> "diagnose"
			if needsE(stem) {
				return stem + "e"
			}
			return stem
		case strings.HasSuffix(w, "ing"):
			stem := w[:len(w)-3]
			if len(stem) < 2 {
				return w
			}
			if len(stem) >= 3 && stem[len(stem)-1] == stem[len(stem)-2] && !isVowel(stem[len(stem)-1]) {
				return stem[:len(stem)-1]
			}
			if needsE(stem) {
				return stem + "e"
			}
			return stem
		}
	}
	return w
}

// needsE guesses whether a stripped stem needs a restored final 'e'
// ("diagnos" -> "diagnose", "stor" -> "store"). Heuristic: consonant +
// single vowel + consonant(s) ending in s/v/z/c/g/r after a long-ish
// stem, plus an exception table.
var eFinalStems = map[string]bool{
	"diagnos": true, "stor": true, "liv": true, "mov": true, "lov": true,
	"us": true, "caus": true, "clos": true, "rais": true, "increas": true,
	"decreas": true, "releas": true, "pleas": true, "chang": true,
	"charg": true, "manag": true, "arrang": true, "describ": true,
	"provid": true, "includ": true, "combin": true, "examin": true,
	"determin": true, "imagin": true, "requir": true, "compar": true,
	"declar": true, "prepar": true, "shar": true, "car": true,
	"receiv": true, "believ": true, "achiev": true, "serv": true,
	"observ": true, "reserv": true, "sav": true, "giv": true, "hav": true,
	"tak": true, "mak": true, "nam": true, "com": true, "becom": true,
	"produc": true, "reduc": true, "introduc": true, "plac": true,
	"not": true, "creat": true, "stat": true, "relat": true, "operat": true,
	"generat": true, "calculat": true, "aggregat": true, "updat": true,
	"locat": true, "rat": true, "dat": true, "indicat": true, "estimat": true,
	"enumerat": true, "schedul": true, "measur": true, "figur": true,
	"structur": true, "pictur": true, "captur": true, "featur": true,
	"compil": true, "fil": true, "smil": true, "styl": true, "valu": true,
	"argu": true, "continu": true, "issu": true, "pursu": true,
	"retriev": true, "admitt": false,
}

func needsE(stem string) bool {
	if v, ok := eFinalStems[stem]; ok {
		return v
	}
	return false
}

func isVowel(c byte) bool {
	switch c {
	case 'a', 'e', 'i', 'o', 'u':
		return true
	}
	return false
}

// LemmatizeAll lemmatizes each token in the slice, returning a new
// slice.
func LemmatizeAll(toks []string) []string {
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = Lemmatize(t)
	}
	return out
}

// LemmatizeText token-splits on spaces and lemmatizes; convenience for
// already-tokenized strings.
func LemmatizeText(text string) string {
	parts := strings.Fields(text)
	for i, p := range parts {
		parts[i] = Lemmatize(p)
	}
	return strings.Join(parts, " ")
}
