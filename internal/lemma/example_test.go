package lemma_test

import (
	"fmt"

	"repro/internal/lemma"
)

func ExampleLemmatize() {
	for _, w := range []string{"are", "cars", "car's", "stayed", "oldest"} {
		fmt.Println(lemma.Lemmatize(w))
	}
	// Output:
	// be
	// car
	// car
	// stay
	// old
}

func ExampleLemmatizeText() {
	fmt.Println(lemma.LemmatizeText("the patients were diagnosed"))
	// Output: the patient be diagnose
}
