// Package critic is the execution-guided validation-and-repair layer
// that every decoded candidate passes through before it can become an
// answer. For each candidate query it runs three stages:
//
//  1. static schema-semantic checks (unknown tables/columns, ambiguous
//     references, type-incompatible predicates, subquery arity,
//     grouping misuse) against the tenant's schema,
//  2. a deterministic rule-based repair pass when the checks fail
//     (nearest-lexicon identifier repair with seeded tie-breaking,
//     literal type coercion, missing-GROUP-BY injection, and — after a
//     row-budget abort — LIMIT injection), and
//  3. a sandboxed dry-run against the tenant's engine instance:
//     panic-recovered into a typed ExecError, deadline-bounded via
//     par.Await (a hung engine costs one goroutine, never a request
//     slot), and row-budget-capped so runaway scans abort
//     deterministically.
//
// The verdicts form a small lattice — valid ≻ repaired ≻ {exec_failed,
// invalid} ≻ sandbox_error — and the runtime reranks a candidate beam
// validity-first over it: an earlier candidate wins within a class,
// but any valid candidate beats any repaired one, and both beat
// everything else. Every decision depends only on the query, the
// schema, the database contents, and the configured seed — never on
// scheduling or wall clock — so repair is bit-identical at any worker
// count.
package critic

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/par"
	"repro/internal/schema"
	"repro/internal/sqlast"
)

// Verdict is the critic's ruling on one candidate.
type Verdict int

// The verdict lattice, best first.
const (
	// VerdictValid: the candidate passed the static checks and the
	// dry-run as decoded.
	VerdictValid Verdict = iota
	// VerdictRepaired: the candidate was invalid as decoded but a
	// deterministic repair made it pass checks and dry-run.
	VerdictRepaired
	// VerdictExecFailed: the static checks passed (possibly after
	// repair) but the sandboxed dry-run failed on an engine error.
	VerdictExecFailed
	// VerdictInvalid: the static checks failed and repair did not
	// recover the candidate.
	VerdictInvalid
	// VerdictError: the sandbox itself misbehaved — the engine
	// panicked or the dry-run exceeded its deadline. This indicts the
	// engine, not the candidate; the serving layer's critic breaker
	// counts exactly these.
	VerdictError
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictValid:
		return "valid"
	case VerdictRepaired:
		return "repaired"
	case VerdictExecFailed:
		return "exec_failed"
	case VerdictInvalid:
		return "invalid"
	case VerdictError:
		return "sandbox_error"
	}
	return fmt.Sprintf("verdict(%d)", int(v))
}

// ExecError is the typed dry-run failure: what went wrong inside the
// sandbox. Exactly one of Panicked, TimedOut, or Err is meaningful.
type ExecError struct {
	// Panicked: the engine panicked; the panic value is in Detail.
	Panicked bool
	// TimedOut: the dry-run exceeded the sandbox deadline and was
	// abandoned (costing one goroutine, never a request slot).
	TimedOut bool
	// Detail carries the recovered panic value.
	Detail string
	// Err is the engine's execution error (nil for panic/timeout);
	// engine.ErrKindOf classifies it.
	Err error
}

// Error implements error.
func (e *ExecError) Error() string {
	switch {
	case e.Panicked:
		return "critic: engine panicked in sandbox: " + e.Detail
	case e.TimedOut:
		return "critic: dry-run exceeded sandbox deadline"
	default:
		return "critic: dry-run failed: " + e.Err.Error()
	}
}

// Unwrap exposes the engine error for errors.As/Is.
func (e *ExecError) Unwrap() error { return e.Err }

// Infra reports whether the failure indicts the engine (panic, hang)
// rather than the candidate. The serving layer's critic breaker trips
// on these only — a flood of bad candidates must not open it.
func (e *ExecError) Infra() bool { return e.Panicked || e.TimedOut }

// CheckError is a static schema-semantic check failure, classified
// with the engine's error taxonomy so repair can branch on kind.
type CheckError struct {
	Kind engine.ErrKind
	Msg  string
}

// Error implements error.
func (e *CheckError) Error() string { return "critic: " + e.Msg }

// Config sizes the critic's sandbox and seeds its repair pass.
type Config struct {
	// RowBudget caps how many environment rows one dry-run may
	// materialize across the query and its subqueries (0 = default).
	RowBudget int
	// Timeout bounds one dry-run (0 = default). A dry-run still
	// running at expiry is abandoned via par.Await.
	Timeout time.Duration
	// Seed drives the deterministic tie-breaking of the
	// nearest-lexicon identifier repair.
	Seed int64
	// Exec overrides the sandbox executor — the fault-injection seam
	// the chaos suite drives hostile engines through (nil = the
	// tenant engine's budgeted execution). Everything the sandbox
	// promises (panic recovery, deadline, abandonment) wraps this.
	Exec func(q *sqlast.Query, budget int) error
}

// Defaults for zero Config fields.
const (
	DefaultRowBudget = 200000
	DefaultTimeout   = 250 * time.Millisecond
	// injectedLimit is the LIMIT added when a dry-run aborts on the
	// row budget and the query has none: large enough to keep any
	// plausible answer intact, small enough that the engine's
	// early-exit scan finishes within budget.
	injectedLimit = 1000
)

// Stats is a point-in-time snapshot of the critic's counters.
type Stats struct {
	Reviewed uint64 `json:"reviewed"`
	Valid    uint64 `json:"valid"`
	Repaired uint64 `json:"repaired"`
	Rejected uint64 `json:"rejected"` // invalid + exec_failed
	Sandbox  uint64 `json:"sandbox_failures"`
}

// Critic validates and repairs candidate queries for one tenant.
// Methods are safe for concurrent use: the lexicon is immutable after
// New and the counters are atomic.
type Critic struct {
	db  *engine.Database
	s   *schema.Schema
	cfg Config

	tables []string // physical table names, declaration order
	exec   func(q *sqlast.Query, budget int) error

	reviewed atomic.Uint64
	valid    atomic.Uint64
	repaired atomic.Uint64
	rejected atomic.Uint64
	sandbox  atomic.Uint64

	// now is injectable for tests; the default wall clock feeds only
	// the dry-run latency telemetry, never a decision.
	now func() time.Time
}

// New builds a critic over the tenant's database.
func New(db *engine.Database, cfg Config) *Critic {
	if cfg.RowBudget <= 0 {
		cfg.RowBudget = DefaultRowBudget
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultTimeout
	}
	c := &Critic{
		db:  db,
		s:   db.Schema,
		cfg: cfg,
		now: time.Now, //lint:allow determinism wall clock feeds only the dry-run latency telemetry, never a verdict or repair decision
	}
	c.exec = cfg.Exec
	if c.exec == nil {
		c.exec = func(q *sqlast.Query, budget int) error {
			_, err := db.ExecuteBudget(q, budget)
			return err
		}
	}
	for _, t := range db.Schema.Tables {
		c.tables = append(c.tables, t.Name)
	}
	return c
}

// Snapshot returns the current counters.
func (c *Critic) Snapshot() Stats {
	return Stats{
		Reviewed: c.reviewed.Load(),
		Valid:    c.valid.Load(),
		Repaired: c.repaired.Load(),
		Rejected: c.rejected.Load(),
		Sandbox:  c.sandbox.Load(),
	}
}

// Outcome reports one candidate's full pass through the critic.
type Outcome struct {
	Verdict Verdict
	// Repairs names the repair rules applied, in application order
	// ("identifier", "coerce", "groupby", "limit").
	Repairs []string
	// Detail explains a non-valid verdict.
	Detail string
	// Err is the sandbox failure for VerdictExecFailed/VerdictError.
	Err *ExecError
	// DryRunNS is the total sandbox time this review spent, summed
	// over every dry-run it ran (telemetry only).
	DryRunNS int64

	// repairedQ carries the repaired query from review to Review.
	repairedQ *sqlast.Query
}

// String renders the outcome as a compact trace verdict.
func (o Outcome) String() string {
	switch o.Verdict {
	case VerdictValid:
		if o.Detail != "" {
			return "valid (" + o.Detail + ")"
		}
		return "valid"
	case VerdictRepaired:
		s := "repaired(" + strings.Join(o.Repairs, ",") + ")"
		if o.Detail != "" {
			s += " (" + o.Detail + ")"
		}
		return s
	default:
		if o.Detail == "" && o.Err != nil {
			return o.Verdict.String() + ": " + o.Err.Error()
		}
		return o.Verdict.String() + ": " + o.Detail
	}
}

// Review is the full pass for one candidate: static checks, repair if
// needed, then the sandboxed dry-run. On a usable verdict (valid or
// repaired) the returned query is the one to answer with — the input
// is never mutated; repairs work on a clone.
func (c *Critic) Review(ctx context.Context, q *sqlast.Query) (*sqlast.Query, Outcome) {
	c.reviewed.Add(1)
	out := c.review(ctx, q)
	switch out.Verdict {
	case VerdictValid:
		c.valid.Add(1)
	case VerdictRepaired:
		c.repaired.Add(1)
	case VerdictError:
		c.sandbox.Add(1)
	default:
		c.rejected.Add(1)
	}
	if out.Verdict == VerdictValid {
		return q, out
	}
	if out.Verdict == VerdictRepaired {
		return out.repairedQ, out
	}
	return nil, out
}

func (c *Critic) review(ctx context.Context, q *sqlast.Query) Outcome {
	if cerr := c.Check(q); cerr != nil {
		// Static checks failed: repair, re-check, dry-run.
		rq, rules, changed := c.Repair(q)
		if !changed {
			return Outcome{Verdict: VerdictInvalid, Detail: cerr.Msg}
		}
		if rerr := c.Check(rq); rerr != nil {
			return Outcome{Verdict: VerdictInvalid, Detail: cerr.Msg + " (repair left: " + rerr.Msg + ")"}
		}
		return c.dryRunOutcome(ctx, rq, rules)
	}
	return c.dryRunOutcome(ctx, q, nil)
}

// dryRunOutcome sandbox-runs q; rules is the repair trail so far (nil
// when q is the candidate as decoded). A row-budget abort on a query
// without a LIMIT gets one more chance with an injected LIMIT.
func (c *Critic) dryRunOutcome(ctx context.Context, q *sqlast.Query, rules []string) Outcome {
	out := Outcome{}
	xe := c.dryRun(ctx, q, &out)
	if xe == nil {
		return c.usable(q, rules, out)
	}
	if xe.Infra() {
		out.Verdict, out.Err = VerdictError, xe
		return out
	}
	if engine.ErrKindOf(xe.Err) == engine.ErrRowBudget {
		if q.Limit < 0 {
			lq := q.Clone()
			lq.Limit = injectedLimit
			if xe2 := c.dryRun(ctx, lq, &out); xe2 == nil {
				return c.usable(lq, append(append([]string(nil), rules...), "limit"), out)
			} else if xe2.Infra() {
				out.Verdict, out.Err = VerdictError, xe2
				return out
			}
		}
		// The budget bounds the sandbox, not the query: the unbudgeted
		// engine may well complete it, so a budget abort proves nothing
		// about validity. Pass the candidate through unverified rather
		// than reject an answer the engine would have given.
		out.Detail = "row budget exhausted; passed unverified"
		return c.usable(q, rules, out)
	}
	out.Verdict, out.Err = VerdictExecFailed, xe
	return out
}

// usable finishes an outcome whose query passed the dry-run.
func (c *Critic) usable(q *sqlast.Query, rules []string, out Outcome) Outcome {
	if len(rules) == 0 {
		out.Verdict = VerdictValid
		return out
	}
	out.Verdict, out.Repairs, out.repairedQ = VerdictRepaired, rules, q
	return out
}

// DryRun executes q in the sandbox and reports the typed failure, nil
// on success. Exported for tests and tooling; Review is the normal
// entry point.
func (c *Critic) DryRun(ctx context.Context, q *sqlast.Query) error {
	var out Outcome
	if xe := c.dryRun(ctx, q, &out); xe != nil {
		return xe
	}
	return nil
}

// dryRun is the sandbox: budgeted execution, bounded by the critic
// deadline through par.Await, with panics recovered into ExecError.
// It accumulates its latency into out.DryRunNS.
func (c *Critic) dryRun(ctx context.Context, q *sqlast.Query, out *Outcome) (xe *ExecError) {
	start := c.now()
	defer func() {
		out.DryRunNS += c.now().Sub(start).Nanoseconds()
		if r := recover(); r != nil {
			xe = &ExecError{Panicked: true, Detail: fmt.Sprint(r)}
		}
	}()
	if ctx == nil {
		ctx = context.Background()
	}
	tctx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
	defer cancel()
	var eerr error
	if derr := par.Await(tctx, func() { eerr = c.exec(q, c.cfg.RowBudget) }); derr != nil {
		return &ExecError{TimedOut: true}
	}
	if eerr != nil {
		return &ExecError{Err: eerr}
	}
	return nil
}

// ---------------------------------------------------------------------
// Static schema-semantic checks.
// ---------------------------------------------------------------------

// Check validates q against the schema without executing it: table and
// column resolution per subquery scope, literal types against column
// types, subquery arity, and grouping shape. It returns the first
// problem found, nil when the query is statically sound.
func (c *Critic) Check(q *sqlast.Query) *CheckError {
	if q == nil {
		return &CheckError{Kind: engine.ErrGeneric, Msg: "nil query"}
	}
	return c.checkScope(q, true)
}

// checkScope validates one query scope (the outer query or one
// subquery) against its own FROM tables, recursing into subqueries.
func (c *Critic) checkScope(q *sqlast.Query, outer bool) *CheckError {
	if q.From.JoinPlaceholder {
		return &CheckError{Kind: engine.ErrPlaceholder, Msg: "unresolved @JOIN placeholder"}
	}
	if len(q.From.Tables) == 0 {
		return &CheckError{Kind: engine.ErrGeneric, Msg: "empty FROM clause"}
	}
	var froms []*schema.Table
	for _, tn := range q.From.Tables {
		t := c.s.Table(tn)
		if t == nil {
			return &CheckError{Kind: engine.ErrUnknownTable, Msg: fmt.Sprintf("unknown table %q", tn)}
		}
		froms = append(froms, t)
	}
	// Grouping shape: bare columns beside aggregates need a GROUP BY
	// covering them.
	if cerr := checkGrouping(q); cerr != nil {
		return cerr
	}
	for _, sel := range q.Select {
		if sel.Star && sel.Agg == sqlast.AggNone && sel.Col.Table != "" && c.s.Table(sel.Col.Table) == nil {
			return &CheckError{Kind: engine.ErrUnknownTable, Msg: fmt.Sprintf("unknown table %q in select", sel.Col.Table)}
		}
		if cerr := c.checkItem(sel, froms); cerr != nil {
			return cerr
		}
	}
	for _, g := range q.GroupBy {
		if _, cerr := c.resolveCol(g, froms); cerr != nil {
			return cerr
		}
	}
	for _, oi := range q.OrderBy {
		if cerr := c.checkItem(oi.Item, froms); cerr != nil {
			return cerr
		}
	}
	if cerr := c.checkExpr(q.Where, froms, false); cerr != nil {
		return cerr
	}
	return c.checkExpr(q.Having, froms, true)
}

// checkItem validates one select/order item in its scope.
func (c *Critic) checkItem(sel sqlast.SelectItem, froms []*schema.Table) *CheckError {
	if sel.Star {
		return nil
	}
	col, cerr := c.resolveCol(sel.Col, froms)
	if cerr != nil {
		return cerr
	}
	if (sel.Agg == sqlast.AggSum || sel.Agg == sqlast.AggAvg) && col.Type != schema.Number {
		return &CheckError{Kind: engine.ErrTypeMismatch, Msg: fmt.Sprintf("%s over non-numeric column %q", sel.Agg, sel.Col)}
	}
	return nil
}

// checkExpr validates a condition tree in its scope.
func (c *Critic) checkExpr(e sqlast.Expr, froms []*schema.Table, having bool) *CheckError {
	switch v := e.(type) {
	case nil:
		return nil
	case sqlast.Logic:
		if cerr := c.checkExpr(v.Left, froms, having); cerr != nil {
			return cerr
		}
		return c.checkExpr(v.Right, froms, having)
	case sqlast.Not:
		return c.checkExpr(v.Inner, froms, having)
	case sqlast.Comparison:
		col, cerr := c.resolveCol(v.Left, froms)
		if cerr != nil {
			return cerr
		}
		return c.checkOperand(v.Right, col, v.Op, froms)
	case sqlast.Between:
		col, cerr := c.resolveCol(v.Col, froms)
		if cerr != nil {
			return cerr
		}
		if cerr := c.checkOperand(v.Lo, col, sqlast.OpGe, froms); cerr != nil {
			return cerr
		}
		return c.checkOperand(v.Hi, col, sqlast.OpLe, froms)
	case sqlast.InSubquery:
		if _, cerr := c.resolveCol(v.Col, froms); cerr != nil {
			return cerr
		}
		if n := c.subqueryWidth(v.Query); n != 1 {
			return &CheckError{Kind: engine.ErrArity, Msg: fmt.Sprintf("IN subquery must produce exactly one column, got %d", n)}
		}
		return c.checkScope(v.Query, false)
	case sqlast.Exists:
		return c.checkScope(v.Query, false)
	case sqlast.HavingCond:
		if !having {
			return &CheckError{Kind: engine.ErrGrouping, Msg: fmt.Sprintf("aggregate condition %q outside HAVING", v.String())}
		}
		if cerr := c.checkItem(v.Item, froms); cerr != nil {
			return cerr
		}
		return c.checkOperand(v.Right, nil, v.Op, froms)
	default:
		return nil
	}
}

// checkOperand validates a comparison RHS; col is the LHS column when
// known (nil under HAVING, whose LHS is an aggregate).
func (c *Critic) checkOperand(o sqlast.Operand, col *schema.Column, op sqlast.CmpOp, froms []*schema.Table) *CheckError {
	switch v := o.(type) {
	case sqlast.Value:
		// A number column compared against a numeric-looking string
		// literal: the engine would fall back to string comparison,
		// which orders digits lexicographically ("9" > "10") — flag it
		// so repair coerces the quotes away. A string that is not a
		// number at all is left to the dry-run: the engine tolerates
		// it, and rejecting an executable candidate would cost
		// validity without a repair to offer.
		if col != nil && col.Type == schema.Number && !v.IsNum && op != sqlast.OpLike {
			if _, perr := strconv.ParseFloat(strings.TrimSpace(v.Str), 64); perr == nil {
				return &CheckError{Kind: engine.ErrTypeMismatch, Msg: fmt.Sprintf("number column %q compared to quoted numeric literal %s", col.Name, v)}
			}
		}
		return nil
	case sqlast.ColOperand:
		_, cerr := c.resolveCol(v.Col, froms)
		return cerr
	case sqlast.ScalarSubquery:
		if n := c.subqueryWidth(v.Query); n != 1 {
			return &CheckError{Kind: engine.ErrArity, Msg: fmt.Sprintf("scalar subquery must produce exactly one column, got %d", n)}
		}
		return c.checkScope(v.Query, false)
	default:
		return nil
	}
}

// subqueryWidth counts a subquery's output columns as the engine
// would: a bare star expands to every column of the FROM tables.
func (c *Critic) subqueryWidth(q *sqlast.Query) int {
	if q == nil {
		return 0
	}
	n := 0
	for _, sel := range q.Select {
		if sel.Star && sel.Agg == sqlast.AggNone {
			for _, tn := range q.From.Tables {
				if t := c.s.Table(tn); t != nil {
					n += len(t.Columns)
				}
			}
		} else {
			n++
		}
	}
	return n
}

// checkGrouping flags bare select columns beside aggregates without a
// covering GROUP BY (the missing-GROUP-BY shape repair injects).
func checkGrouping(q *sqlast.Query) *CheckError {
	hasAgg := false
	for _, sel := range q.Select {
		if sel.Agg != sqlast.AggNone {
			hasAgg = true
		}
	}
	if !hasAgg && q.Having == nil {
		return nil
	}
	grouped := map[sqlast.ColumnRef]bool{}
	for _, g := range q.GroupBy {
		grouped[g] = true
	}
	for _, sel := range q.Select {
		if sel.Agg != sqlast.AggNone {
			continue
		}
		if sel.Star {
			return &CheckError{Kind: engine.ErrGrouping, Msg: "bare * is not valid in a grouped query"}
		}
		if !grouped[sel.Col] {
			return &CheckError{Kind: engine.ErrGrouping, Msg: fmt.Sprintf("column %q must appear in GROUP BY or inside an aggregate", sel.Col)}
		}
	}
	return nil
}

// resolveCol resolves a column reference against the scope's FROM
// tables: qualified against its named table, unqualified against all
// of them (ambiguous when more than one matches).
func (c *Critic) resolveCol(ref sqlast.ColumnRef, froms []*schema.Table) (*schema.Column, *CheckError) {
	if ref.Table != "" {
		t := c.s.Table(ref.Table)
		if t == nil {
			return nil, &CheckError{Kind: engine.ErrUnknownTable, Msg: fmt.Sprintf("unknown table %q", ref.Table)}
		}
		inFrom := false
		for _, f := range froms {
			if strings.EqualFold(f.Name, t.Name) {
				inFrom = true
				break
			}
		}
		if !inFrom {
			return nil, &CheckError{Kind: engine.ErrUnknownColumn, Msg: fmt.Sprintf("table %q referenced by %q is not in FROM", ref.Table, ref)}
		}
		col := t.Column(ref.Column)
		if col == nil {
			return nil, &CheckError{Kind: engine.ErrUnknownColumn, Msg: fmt.Sprintf("unknown column %q", ref)}
		}
		return col, nil
	}
	var found *schema.Column
	matches := 0
	for _, f := range froms {
		if col := f.Column(ref.Column); col != nil {
			found = col
			matches++
		}
	}
	switch {
	case matches == 0:
		return nil, &CheckError{Kind: engine.ErrUnknownColumn, Msg: fmt.Sprintf("unknown column %q", ref)}
	case matches > 1:
		return nil, &CheckError{Kind: engine.ErrAmbiguousColumn, Msg: fmt.Sprintf("ambiguous column %q", ref)}
	}
	return found, nil
}

// ---------------------------------------------------------------------
// Deterministic rule-based repair.
// ---------------------------------------------------------------------

// Repair applies the rule passes to a clone of q and reports which
// rules changed anything ("identifier", "coerce", "groupby", in that
// order; the "limit" rule is execution-triggered and applied by
// Review). The input is never mutated. For a fixed seed the output is
// a pure function of the input query and the schema.
func (c *Critic) Repair(q *sqlast.Query) (*sqlast.Query, []string, bool) {
	rq := q.Clone()
	var rules []string
	if c.repairIdentifiers(rq) {
		rules = append(rules, "identifier")
	}
	if c.coerceLiterals(rq) {
		rules = append(rules, "coerce")
	}
	if injectGroupBy(rq) {
		rules = append(rules, "groupby")
	}
	return rq, rules, len(rules) > 0
}

// repairIdentifiers replaces unknown table and column names with their
// nearest lexicon entry (character-bigram Jaccard, seeded tie-break),
// scope by scope so each column repairs against its own FROM tables.
func (c *Critic) repairIdentifiers(q *sqlast.Query) bool {
	changed := false
	var scope func(q *sqlast.Query)
	scope = func(q *sqlast.Query) {
		if q == nil || q.From.JoinPlaceholder {
			return
		}
		// Tables first: columns repair against the repaired FROM.
		for i, tn := range q.From.Tables {
			if c.s.Table(tn) == nil {
				if best, ok := c.nearest(tn, c.tables); ok {
					q.From.Tables[i] = best
					changed = true
				}
			}
		}
		var froms []*schema.Table
		var colLex []string
		for _, tn := range q.From.Tables {
			if t := c.s.Table(tn); t != nil {
				froms = append(froms, t)
				for _, col := range t.Columns {
					colLex = append(colLex, col.Name)
				}
			}
		}
		fixRef := func(ref *sqlast.ColumnRef) {
			if ref.Column == "" {
				return
			}
			if ref.Table != "" && c.s.Table(ref.Table) == nil {
				if best, ok := c.nearest(ref.Table, c.tables); ok {
					ref.Table = best
					changed = true
				}
			}
			if _, cerr := c.resolveCol(*ref, froms); cerr == nil || cerr.Kind == engine.ErrAmbiguousColumn {
				return
			}
			if ref.Table != "" {
				if t := c.s.Table(ref.Table); t != nil && t.Column(ref.Column) == nil {
					var lex []string
					for _, col := range t.Columns {
						lex = append(lex, col.Name)
					}
					if best, ok := c.nearest(ref.Column, lex); ok {
						ref.Column = best
						changed = true
					}
				}
				return
			}
			if best, ok := c.nearest(ref.Column, colLex); ok {
				ref.Column = best
				changed = true
			}
		}
		fixItem := func(sel *sqlast.SelectItem) {
			if !sel.Star {
				fixRef(&sel.Col)
			}
		}
		for i := range q.Select {
			fixItem(&q.Select[i])
		}
		for i := range q.GroupBy {
			fixRef(&q.GroupBy[i])
		}
		for i := range q.OrderBy {
			fixItem(&q.OrderBy[i].Item)
		}
		var fixExpr func(e sqlast.Expr) sqlast.Expr
		fixExpr = func(e sqlast.Expr) sqlast.Expr {
			switch v := e.(type) {
			case sqlast.Logic:
				v.Left, v.Right = fixExpr(v.Left), fixExpr(v.Right)
				return v
			case sqlast.Not:
				v.Inner = fixExpr(v.Inner)
				return v
			case sqlast.Comparison:
				fixRef(&v.Left)
				if co, ok := v.Right.(sqlast.ColOperand); ok {
					fixRef(&co.Col)
					v.Right = co
				}
				if ss, ok := v.Right.(sqlast.ScalarSubquery); ok {
					scope(ss.Query)
				}
				return v
			case sqlast.Between:
				fixRef(&v.Col)
				return v
			case sqlast.InSubquery:
				fixRef(&v.Col)
				scope(v.Query)
				return v
			case sqlast.Exists:
				scope(v.Query)
				return v
			case sqlast.HavingCond:
				fixItem(&v.Item)
				if ss, ok := v.Right.(sqlast.ScalarSubquery); ok {
					scope(ss.Query)
				}
				return v
			default:
				return e
			}
		}
		if q.Where != nil {
			q.Where = fixExpr(q.Where)
		}
		if q.Having != nil {
			q.Having = fixExpr(q.Having)
		}
	}
	scope(q)
	return changed
}

// minRepairSimilarity is the floor under which an identifier is left
// alone: repairing "xyzzy" to an arbitrary column would manufacture
// answers out of noise.
const minRepairSimilarity = 0.25

// nearest picks the lexicon entry most similar to got. Ties are broken
// by the SplitMix64 hash of (seed, entry) — deterministic for a fixed
// seed, uncorrelated with lexicon order.
func (c *Critic) nearest(got string, lexicon []string) (string, bool) {
	best, bestScore, bestTie := "", -1.0, uint64(0)
	for _, cand := range lexicon {
		score := bigramJaccard(strings.ToLower(got), strings.ToLower(cand))
		tie := c.tieKey(cand)
		if score > bestScore || (score == bestScore && tie < bestTie) {
			best, bestScore, bestTie = cand, score, tie
		}
	}
	if bestScore < minRepairSimilarity {
		return "", false
	}
	return best, true
}

// tieKey hashes a lexicon entry under the repair seed.
func (c *Critic) tieKey(name string) uint64 {
	h := fnv.New32a()
	_, _ = h.Write([]byte(name)) // fnv Write cannot fail
	return uint64(par.SplitSeed(c.cfg.Seed, int(h.Sum32())))
}

// bigramJaccard is the Jaccard index of the two strings' character
// bigram sets (whole string for single-rune inputs).
func bigramJaccard(a, b string) float64 {
	if a == b {
		return 1
	}
	sa, sb := bigrams(a), bigrams(b)
	if len(sa) == 0 || len(sb) == 0 {
		return 0
	}
	inter, i, j := 0, 0, 0
	for i < len(sa) && j < len(sb) {
		switch {
		case sa[i] == sb[j]:
			inter++
			i++
			j++
		case sa[i] < sb[j]:
			i++
		default:
			j++
		}
	}
	return float64(inter) / float64(len(sa)+len(sb)-inter)
}

func bigrams(s string) []string {
	r := []rune(s)
	if len(r) <= 1 {
		return []string{s}
	}
	out := make([]string, 0, len(r))
	for i := 0; i+1 < len(r); i++ {
		out = append(out, string(r[i:i+2]))
	}
	sort.Strings(out)
	w := 0
	for i, g := range out {
		if i == 0 || g != out[w-1] {
			out[w] = g
			w++
		}
	}
	return out[:w]
}

// coerceLiterals fixes literal/column type mismatches: a number column
// compared to a numeric-looking string becomes a numeric literal
// (quote coercion), and a number column compared to a numeric literal
// wrapped in stray quotes likewise.
func (c *Critic) coerceLiterals(q *sqlast.Query) bool {
	changed := false
	var scope func(q *sqlast.Query)
	scope = func(q *sqlast.Query) {
		if q == nil || q.From.JoinPlaceholder {
			return
		}
		var froms []*schema.Table
		for _, tn := range q.From.Tables {
			if t := c.s.Table(tn); t != nil {
				froms = append(froms, t)
			}
		}
		coerce := func(col *schema.Column, o sqlast.Operand) sqlast.Operand {
			v, ok := o.(sqlast.Value)
			if !ok || col == nil {
				if ss, isSub := o.(sqlast.ScalarSubquery); isSub {
					scope(ss.Query)
				}
				return o
			}
			if col.Type == schema.Number && !v.IsNum {
				if n, err := strconv.ParseFloat(strings.TrimSpace(v.Str), 64); err == nil {
					changed = true
					return sqlast.NumValue(n)
				}
			}
			return o
		}
		var walk func(e sqlast.Expr) sqlast.Expr
		walk = func(e sqlast.Expr) sqlast.Expr {
			switch v := e.(type) {
			case sqlast.Logic:
				v.Left, v.Right = walk(v.Left), walk(v.Right)
				return v
			case sqlast.Not:
				v.Inner = walk(v.Inner)
				return v
			case sqlast.Comparison:
				col, _ := c.resolveCol(v.Left, froms)
				v.Right = coerce(col, v.Right)
				return v
			case sqlast.Between:
				col, _ := c.resolveCol(v.Col, froms)
				v.Lo, v.Hi = coerce(col, v.Lo), coerce(col, v.Hi)
				return v
			case sqlast.InSubquery:
				scope(v.Query)
				return v
			case sqlast.Exists:
				scope(v.Query)
				return v
			case sqlast.HavingCond:
				if ss, ok := v.Right.(sqlast.ScalarSubquery); ok {
					scope(ss.Query)
				}
				return v
			default:
				return e
			}
		}
		if q.Where != nil {
			q.Where = walk(q.Where)
		}
		if q.Having != nil {
			q.Having = walk(q.Having)
		}
	}
	scope(q)
	return changed
}

// injectGroupBy adds the missing GROUP BY when a select list mixes
// bare columns with aggregates: the bare columns become the grouping
// key, in select-list order.
func injectGroupBy(q *sqlast.Query) bool {
	if len(q.GroupBy) > 0 {
		return false
	}
	hasAgg, hasBare := false, false
	var bare []sqlast.ColumnRef
	for _, sel := range q.Select {
		if sel.Agg != sqlast.AggNone {
			hasAgg = true
			continue
		}
		if sel.Star {
			return false // SELECT *, COUNT(*) has no sensible grouping key
		}
		hasBare = true
		bare = append(bare, sel.Col)
	}
	if !hasAgg || !hasBare {
		return false
	}
	q.GroupBy = bare
	return true
}
