package critic

import (
	"testing"

	"repro/internal/sqlast"
)

// FuzzCriticRepair holds the repair pass to its contract on arbitrary
// parseable SQL: it never mutates its input, its output always
// re-parses and renders stably, it is idempotent (repairing a repaired
// query changes nothing), and it is byte-deterministic for a fixed
// seed. The seed corpus is spider-workload-shaped SQL with the typo,
// quoting, and grouping mistakes the rules target.
func FuzzCriticRepair(f *testing.F) {
	corpus := []string{
		"SELECT name FROM patients",
		"SELECT nme FROM patiens",
		"SELECT patients.nam FROM patients WHERE ag > '50'",
		"SELECT diagnosis, COUNT(*) FROM patients",
		"SELECT diagnos, COUNT(*) FROM patiens GROUP BY diagnos",
		"SELECT name FROM patients WHERE id IN (SELECT patient_idd FROM visits)",
		"SELECT AVG(cost) FROM visits WHERE patient_id = '3'",
		"SELECT name FROM patients WHERE age BETWEEN '20' AND '60'",
		"SELECT name FROM patients WHERE age > (SELECT AVG(agee) FROM patients)",
		"SELECT diagnosis FROM patients GROUP BY diagnosis HAVING COUNT(*) > '1'",
		"SELECT xqzw FROM patients ORDER BY age2 DESC LIMIT 5",
		"SELECT * FROM visits WHERE NOT cost = '100' AND patient_id = 1",
	}
	for _, sql := range corpus {
		f.Add(sql)
	}

	a := New(testDB(f), Config{Seed: 42})
	b := New(testDB(f), Config{Seed: 42})

	f.Fuzz(func(t *testing.T, sql string) {
		q, err := sqlast.Parse(sql)
		if err != nil {
			t.Skip()
		}
		orig := q.String()

		rq, _, changed := a.Repair(q)
		if q.String() != orig {
			t.Fatalf("Repair mutated its input: %q -> %q", orig, q)
		}
		out := rq.String()

		// The repaired output must re-parse, and render stably.
		rq2, err := sqlast.Parse(out)
		if err != nil {
			t.Fatalf("repaired output %q does not re-parse: %v", out, err)
		}
		if rq2.String() != out {
			t.Fatalf("repaired output renders unstably: %q -> %q", out, rq2)
		}

		// Idempotence: a repaired query has nothing left to repair.
		if again, _, c2 := a.Repair(rq2); c2 {
			t.Fatalf("Repair not idempotent: %q -> %q -> %q", orig, out, again)
		}

		// Byte-determinism: an independent same-seed critic agrees.
		rb, _, cb := b.Repair(sqlast.MustParse(sql))
		if cb != changed || rb.String() != out {
			t.Fatalf("Repair diverged across same-seed critics: %q vs %q", out, rb)
		}
	})
}
