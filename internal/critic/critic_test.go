package critic

import (
	"context"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/schema"
	"repro/internal/sqlast"
)

// testDB builds a small, hand-checkable hospital database.
func testDB(t testing.TB) *engine.Database {
	t.Helper()
	s := &schema.Schema{
		Name: "hospital",
		Tables: []*schema.Table{
			{Name: "patients", Columns: []*schema.Column{
				{Name: "id", Type: schema.Number, PrimaryKey: true},
				{Name: "name", Type: schema.Text},
				{Name: "age", Type: schema.Number},
				{Name: "diagnosis", Type: schema.Text},
			}},
			{Name: "visits", Columns: []*schema.Column{
				{Name: "id", Type: schema.Number, PrimaryKey: true},
				{Name: "patient_id", Type: schema.Number},
				{Name: "cost", Type: schema.Number},
			}},
		},
		ForeignKeys: []schema.ForeignKey{
			{FromTable: "visits", FromColumn: "patient_id", ToTable: "patients", ToColumn: "id"},
		},
	}
	db := engine.NewDatabase(s)
	rows := []engine.Row{
		{engine.Num(1), engine.Str("alice"), engine.Num(80), engine.Str("influenza")},
		{engine.Num(2), engine.Str("bob"), engine.Num(40), engine.Str("diabetes")},
		{engine.Num(3), engine.Str("carol"), engine.Num(60), engine.Str("influenza")},
		{engine.Num(4), engine.Str("dave"), engine.Num(20), engine.Str("asthma")},
	}
	for _, r := range rows {
		if err := db.Insert("patients", r); err != nil {
			t.Fatal(err)
		}
	}
	visits := []engine.Row{
		{engine.Num(1), engine.Num(1), engine.Num(100)},
		{engine.Num(2), engine.Num(1), engine.Num(300)},
		{engine.Num(3), engine.Num(2), engine.Num(50)},
	}
	for _, r := range visits {
		if err := db.Insert("visits", r); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func newCritic(t testing.TB, cfg Config) *Critic {
	t.Helper()
	return New(testDB(t), cfg)
}

// --- static checks ---------------------------------------------------

func TestCheckValid(t *testing.T) {
	c := newCritic(t, Config{})
	for _, sql := range []string{
		"SELECT name FROM patients",
		"SELECT * FROM patients WHERE age > 50",
		"SELECT diagnosis, COUNT(*) FROM patients GROUP BY diagnosis",
		"SELECT name FROM patients WHERE id IN (SELECT patient_id FROM visits)",
		"SELECT diagnosis FROM patients GROUP BY diagnosis HAVING COUNT(*) > 1",
		"SELECT name FROM patients WHERE age > (SELECT AVG(age) FROM patients)",
	} {
		if cerr := c.Check(sqlast.MustParse(sql)); cerr != nil {
			t.Errorf("Check(%q) = %v, want nil", sql, cerr)
		}
	}
}

func TestCheckFailures(t *testing.T) {
	c := newCritic(t, Config{})
	cases := []struct {
		sql  string
		kind engine.ErrKind
	}{
		{"SELECT name FROM people", engine.ErrUnknownTable},
		{"SELECT salary FROM patients", engine.ErrUnknownColumn},
		{"SELECT patients.salary FROM patients", engine.ErrUnknownColumn},
		{"SELECT visits.cost FROM patients", engine.ErrUnknownColumn},
		{"SELECT id FROM patients, visits", engine.ErrAmbiguousColumn},
		{"SELECT SUM(name) FROM patients", engine.ErrTypeMismatch},
		{"SELECT age FROM patients WHERE age > '50'", engine.ErrTypeMismatch},
		{"SELECT name, COUNT(*) FROM patients", engine.ErrGrouping},
		{"SELECT *, COUNT(*) FROM patients", engine.ErrGrouping},
		{"SELECT name FROM patients WHERE age IN (SELECT * FROM visits)", engine.ErrArity},
		{"SELECT name FROM patients WHERE age > (SELECT * FROM visits)", engine.ErrArity},
	}
	for _, tc := range cases {
		cerr := c.Check(sqlast.MustParse(tc.sql))
		if cerr == nil {
			t.Errorf("Check(%q) = nil, want kind %v", tc.sql, tc.kind)
			continue
		}
		if cerr.Kind != tc.kind {
			t.Errorf("Check(%q) kind = %v (%s), want %v", tc.sql, cerr.Kind, cerr.Msg, tc.kind)
		}
	}
}

// A number column compared against a string literal that is not a
// number at all is left to the dry-run: the engine tolerates it and
// there is no repair to offer.
func TestCheckUnparseableStringPasses(t *testing.T) {
	c := newCritic(t, Config{})
	if cerr := c.Check(sqlast.MustParse("SELECT name FROM patients WHERE age = 'old'")); cerr != nil {
		t.Fatalf("Check = %v, want nil (unparseable literal is dry-run's problem)", cerr)
	}
}

// --- repair ----------------------------------------------------------

func TestRepairIdentifiers(t *testing.T) {
	c := newCritic(t, Config{Seed: 1})
	cases := []struct {
		in, want string
	}{
		{"SELECT name FROM patiens", "SELECT name FROM patients"},
		{"SELECT nme FROM patients", "SELECT name FROM patients"},
		{"SELECT patients.nme FROM patients", "SELECT patients.name FROM patients"},
		{"SELECT name FROM patients WHERE diagnosi = 'asthma'", "SELECT name FROM patients WHERE diagnosis = 'asthma'"},
		{"SELECT diagnosis, COUNT(*) FROM patients GROUP BY diagnosi", "SELECT diagnosis, COUNT(*) FROM patients GROUP BY diagnosis"},
		{"SELECT name FROM patients ORDER BY age2", "SELECT name FROM patients ORDER BY age ASC"},
	}
	for _, tc := range cases {
		q := sqlast.MustParse(tc.in)
		rq, rules, changed := c.Repair(q)
		if !changed {
			t.Errorf("Repair(%q): no change", tc.in)
			continue
		}
		if got := rq.String(); got != tc.want {
			t.Errorf("Repair(%q) = %q (rules %v), want %q", tc.in, got, rules, tc.want)
		}
		if q.String() != sqlast.MustParse(tc.in).String() {
			t.Errorf("Repair(%q) mutated its input", tc.in)
		}
	}
}

func TestRepairLeavesNoiseAlone(t *testing.T) {
	c := newCritic(t, Config{Seed: 1})
	// Nothing in the lexicon is plausibly "xqzw": below the similarity
	// floor the identifier must be left as-is, not invented.
	q := sqlast.MustParse("SELECT xqzw FROM patients")
	rq, _, changed := c.Repair(q)
	if changed {
		t.Fatalf("Repair invented %q out of noise", rq)
	}
}

func TestRepairCoerce(t *testing.T) {
	c := newCritic(t, Config{Seed: 1})
	rq, rules, changed := c.Repair(sqlast.MustParse("SELECT name FROM patients WHERE age > '50'"))
	if !changed || len(rules) != 1 || rules[0] != "coerce" {
		t.Fatalf("rules = %v changed=%v, want [coerce]", rules, changed)
	}
	if got, want := rq.String(), "SELECT name FROM patients WHERE age > 50"; got != want {
		t.Fatalf("repaired = %q, want %q", got, want)
	}
}

func TestRepairGroupBy(t *testing.T) {
	c := newCritic(t, Config{Seed: 1})
	rq, rules, changed := c.Repair(sqlast.MustParse("SELECT diagnosis, COUNT(*) FROM patients"))
	if !changed {
		t.Fatal("no change")
	}
	found := false
	for _, r := range rules {
		if r == "groupby" {
			found = true
		}
	}
	if !found {
		t.Fatalf("rules = %v, want groupby", rules)
	}
	if got, want := rq.String(), "SELECT diagnosis, COUNT(*) FROM patients GROUP BY diagnosis"; got != want {
		t.Fatalf("repaired = %q, want %q", got, want)
	}
}

// Repair is a pure function of (query, schema, seed): two critics with
// the same seed agree byte-for-byte; repeated repair is idempotent on
// the rendered SQL.
func TestRepairDeterministic(t *testing.T) {
	a := newCritic(t, Config{Seed: 42})
	b := newCritic(t, Config{Seed: 42})
	inputs := []string{
		"SELECT nme FROM patiens WHERE ag > '9'",
		"SELECT diagnos, COUNT(*) FROM patients",
		"SELECT patients.nam FROM patients ORDER BY agee",
	}
	for _, sql := range inputs {
		ra, _, _ := a.Repair(sqlast.MustParse(sql))
		rb, _, _ := b.Repair(sqlast.MustParse(sql))
		if ra.String() != rb.String() {
			t.Errorf("Repair(%q) diverged across same-seed critics: %q vs %q", sql, ra, rb)
		}
		again, _, _ := a.Repair(sqlast.MustParse(sql))
		if ra.String() != again.String() {
			t.Errorf("Repair(%q) not stable across calls: %q vs %q", sql, ra, again)
		}
	}
}

// --- review ----------------------------------------------------------

func TestReviewValid(t *testing.T) {
	c := newCritic(t, Config{})
	q := sqlast.MustParse("SELECT name FROM patients WHERE age > 50")
	got, out := c.Review(context.Background(), q)
	if out.Verdict != VerdictValid || got != q {
		t.Fatalf("verdict = %v (q %v), want valid with input returned", out, got)
	}
}

func TestReviewRepaired(t *testing.T) {
	c := newCritic(t, Config{Seed: 1})
	got, out := c.Review(context.Background(), sqlast.MustParse("SELECT nme FROM patiens"))
	if out.Verdict != VerdictRepaired {
		t.Fatalf("verdict = %v, want repaired", out)
	}
	if got == nil || got.String() != "SELECT name FROM patients" {
		t.Fatalf("repaired query = %v", got)
	}
}

func TestReviewInvalid(t *testing.T) {
	c := newCritic(t, Config{Seed: 1})
	got, out := c.Review(context.Background(), sqlast.MustParse("SELECT xqzw FROM patients"))
	if out.Verdict != VerdictInvalid || got != nil {
		t.Fatalf("verdict = %v (q %v), want invalid and nil", out, got)
	}
}

func TestReviewExecFailed(t *testing.T) {
	c := newCritic(t, Config{Seed: 1})
	// Statically sound, but the engine rejects the unresolved constant
	// placeholder at execution time.
	got, out := c.Review(context.Background(), sqlast.MustParse("SELECT name FROM patients WHERE age > @PATIENTS.AGE"))
	if out.Verdict != VerdictExecFailed || got != nil {
		t.Fatalf("verdict = %v (q %v), want exec_failed and nil", out, got)
	}
	if out.Err == nil || out.Err.Infra() {
		t.Fatalf("Err = %v, want a non-infra engine error", out.Err)
	}
	if engine.ErrKindOf(out.Err.Err) != engine.ErrPlaceholder {
		t.Fatalf("engine kind = %v, want placeholder", engine.ErrKindOf(out.Err.Err))
	}
}

// A row-budget abort on a LIMIT-less query gets an injected LIMIT; when
// that brings the scan inside the budget the candidate survives as
// repaired("limit").
func TestReviewLimitInjection(t *testing.T) {
	s := &schema.Schema{
		Name: "wide",
		Tables: []*schema.Table{
			{Name: "events", Columns: []*schema.Column{
				{Name: "id", Type: schema.Number, PrimaryKey: true},
			}},
		},
	}
	db := engine.NewDatabase(s)
	for i := 0; i < 1500; i++ {
		if err := db.Insert("events", engine.Row{engine.Num(float64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	c := New(db, Config{RowBudget: 1200})
	got, out := c.Review(context.Background(), sqlast.MustParse("SELECT id FROM events"))
	if out.Verdict != VerdictRepaired || len(out.Repairs) != 1 || out.Repairs[0] != "limit" {
		t.Fatalf("outcome = %v, want repaired(limit)", out)
	}
	if got == nil || got.Limit != 1000 {
		t.Fatalf("repaired query = %v, want LIMIT 1000", got)
	}
}

// When even the injected LIMIT cannot fit the budget, the budget abort
// proves nothing about the candidate: it passes through unverified
// rather than being rejected.
func TestReviewRowBudgetPassesUnverified(t *testing.T) {
	c := newCritic(t, Config{RowBudget: 2})
	q := sqlast.MustParse("SELECT name FROM patients")
	got, out := c.Review(context.Background(), q)
	if out.Verdict != VerdictValid || got != q {
		t.Fatalf("outcome = %v (q %v), want valid pass-through", out, got)
	}
	if !strings.Contains(out.Detail, "unverified") {
		t.Fatalf("Detail = %q, want an unverified note", out.Detail)
	}
	if !strings.Contains(out.String(), "unverified") {
		t.Fatalf("String() = %q, want the unverified note rendered", out.String())
	}
}

func TestSnapshotCounters(t *testing.T) {
	c := newCritic(t, Config{Seed: 1})
	ctx := context.Background()
	c.Review(ctx, sqlast.MustParse("SELECT name FROM patients"))                           // valid
	c.Review(ctx, sqlast.MustParse("SELECT nme FROM patiens"))                             // repaired
	c.Review(ctx, sqlast.MustParse("SELECT xqzw FROM patients"))                           // invalid -> rejected
	c.Review(ctx, sqlast.MustParse("SELECT name FROM patients WHERE age > @PATIENTS.AGE")) // exec_failed -> rejected
	got := c.Snapshot()
	want := Stats{Reviewed: 4, Valid: 1, Repaired: 1, Rejected: 2}
	if got != want {
		t.Fatalf("Snapshot = %+v, want %+v", got, want)
	}
}
