package critic

import (
	"context"
	"fmt"
	gorun "runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/sqlast"
)

// chaosExec is a hostile engine for the sandbox: an Injector decides
// per call whether it panics, hangs, or errors; otherwise it succeeds.
// Hung calls block on release until the test lets them go, so leak
// checks can count abandoned goroutines deterministically.
type chaosExec struct {
	inj     *fault.Injector
	kind    fault.Kind
	calls   atomic.Uint64
	release chan struct{}
}

func newChaosExec(seed int64, oneIn int, kind fault.Kind) *chaosExec {
	return &chaosExec{
		inj:     fault.NewInjector(seed, oneIn),
		kind:    kind,
		release: make(chan struct{}),
	}
}

func (ce *chaosExec) exec(q *sqlast.Query, budget int) error {
	i := int(ce.calls.Add(1)) - 1
	if !ce.inj.Fires(i) {
		return nil
	}
	switch ce.kind {
	case fault.Panic:
		panic(fmt.Sprintf("injected engine panic at call %d", i))
	case fault.Delay:
		<-ce.release // hang until the test releases it
		return nil
	default:
		return fmt.Errorf("injected engine error at call %d", i)
	}
}

// A panicking engine never escapes the sandbox: the review completes
// with a typed sandbox_error carrying the panic value.
func TestChaosPanicRecovered(t *testing.T) {
	ce := newChaosExec(7, 1, fault.Panic)
	c := newCritic(t, Config{Exec: ce.exec})
	got, out := c.Review(context.Background(), sqlast.MustParse("SELECT name FROM patients"))
	if out.Verdict != VerdictError || got != nil {
		t.Fatalf("verdict = %v (q %v), want sandbox_error and nil", out, got)
	}
	if out.Err == nil || !out.Err.Panicked || !out.Err.Infra() {
		t.Fatalf("Err = %+v, want Panicked infra failure", out.Err)
	}
	if s := c.Snapshot(); s.Sandbox != 1 {
		t.Fatalf("Snapshot = %+v, want 1 sandbox failure", s)
	}
}

// A hung engine is abandoned at the deadline: the review completes with
// a typed timeout, each hang costs exactly one goroutine while it lasts,
// and every abandoned goroutine exits once the engine unblocks — none
// leak past the hang itself.
func TestChaosHangAbandonedNoLeak(t *testing.T) {
	ce := newChaosExec(7, 1, fault.Delay)
	c := newCritic(t, Config{Exec: ce.exec, Timeout: 5 * time.Millisecond})
	before := gorun.NumGoroutine()

	const hangs = 8
	for i := 0; i < hangs; i++ {
		got, out := c.Review(context.Background(), sqlast.MustParse("SELECT name FROM patients"))
		if out.Verdict != VerdictError || got != nil {
			t.Fatalf("hang %d: verdict = %v, want sandbox_error", i, out)
		}
		if out.Err == nil || !out.Err.TimedOut || !out.Err.Infra() {
			t.Fatalf("hang %d: Err = %+v, want TimedOut infra failure", i, out.Err)
		}
	}
	if s := c.Snapshot(); s.Sandbox != hangs {
		t.Fatalf("Snapshot = %+v, want %d sandbox failures", s, hangs)
	}

	// Each abandoned dry-run holds one goroutine while the engine hangs.
	if n := gorun.NumGoroutine(); n < before+hangs {
		t.Fatalf("expected >= %d goroutines parked in hung engine calls, have %d (baseline %d)", hangs, n-before, n)
	}
	close(ce.release)
	deadline := time.Now().Add(5 * time.Second)
	for gorun.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := gorun.NumGoroutine(); n > before {
		t.Fatalf("%d goroutines leaked after the hung engine unblocked (baseline %d, now %d)", n-before, before, n)
	}
}

// A wrong-result engine (executes "successfully", returns garbage) is
// beyond the critic's oracle: the candidate passes and the answer still
// flows — the sandbox guards crashes and hangs, not semantics.
func TestChaosWrongResultStillAnswers(t *testing.T) {
	wrong := func(q *sqlast.Query, budget int) error { return nil }
	c := newCritic(t, Config{Exec: wrong})
	q := sqlast.MustParse("SELECT name FROM people_that_do_not_exist")
	// Statically invalid -> repair can't save it; but a statically sound
	// query sails through the lying engine.
	if _, out := c.Review(context.Background(), q); out.Verdict != VerdictInvalid {
		t.Fatalf("verdict = %v, want invalid (static checks still guard)", out)
	}
	ok := sqlast.MustParse("SELECT name FROM patients")
	if got, out := c.Review(context.Background(), ok); out.Verdict != VerdictValid || got != ok {
		t.Fatalf("verdict = %v, want valid pass-through", out)
	}
}

// A sustained storm of injected faults yields a verdict sequence that
// is a pure function of the injector seed: two identical runs agree
// verdict-for-verdict, and every review completes with a typed outcome.
func TestChaosStormDeterministic(t *testing.T) {
	run := func() []string {
		ce := newChaosExec(99, 3, fault.Panic)
		c := newCritic(t, Config{Exec: ce.exec})
		var verdicts []string
		for i := 0; i < 64; i++ {
			_, out := c.Review(context.Background(), sqlast.MustParse("SELECT name FROM patients"))
			verdicts = append(verdicts, out.Verdict.String())
		}
		return verdicts
	}
	a, b := run(), run()
	sawError, sawValid := false, false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("verdict %d diverged across identical runs: %q vs %q", i, a[i], b[i])
		}
		switch a[i] {
		case "sandbox_error":
			sawError = true
		case "valid":
			sawValid = true
		default:
			t.Fatalf("verdict %d = %q, want valid or sandbox_error only", i, a[i])
		}
	}
	if !sawError || !sawValid {
		t.Fatalf("storm not mixed: sawError=%v sawValid=%v", sawError, sawValid)
	}
}
