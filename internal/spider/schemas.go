package spider

import "repro/internal/schema"

// col is a compact column constructor.
func col(name string, t schema.ColumnType, opts ...func(*schema.Column)) *schema.Column {
	c := &schema.Column{Name: name, Type: t}
	for _, o := range opts {
		o(c)
	}
	return c
}

func pk() func(*schema.Column)                 { return func(c *schema.Column) { c.PrimaryKey = true } }
func dom(d schema.Domain) func(*schema.Column) { return func(c *schema.Column) { c.Domain = d } }
func read(r string) func(*schema.Column)       { return func(c *schema.Column) { c.Readable = r } }

// zoo is the cross-domain schema collection standing in for Spider's
// 200 databases over 138 domains. The first TrainSchemaCount schemas
// form the training split; the rest (including geo, the GeoQuery
// stand-in) are the test split. Train and test schemas are disjoint,
// matching Spider's defining property.
var zoo = []*schema.Schema{
	{
		Name: "flights",
		Tables: []*schema.Table{
			{Name: "airlines", Readable: "airline", Columns: []*schema.Column{
				col("id", schema.Number, pk()), col("name", schema.Text),
				col("country", schema.Text), col("fleet_size", schema.Number),
			}},
			{Name: "airports", Readable: "airport", Columns: []*schema.Column{
				col("id", schema.Number, pk()), col("name", schema.Text),
				col("city", schema.Text), col("elevation", schema.Number, dom(schema.DomainHeight)),
			}},
			{Name: "flights", Readable: "flight", Columns: []*schema.Column{
				col("id", schema.Number, pk()), col("airline_id", schema.Number),
				col("origin_id", schema.Number), col("distance", schema.Number, dom(schema.DomainLength)),
				col("price", schema.Number, dom(schema.DomainMoney)),
			}},
		},
		ForeignKeys: []schema.ForeignKey{
			{FromTable: "flights", FromColumn: "airline_id", ToTable: "airlines", ToColumn: "id"},
			{FromTable: "flights", FromColumn: "origin_id", ToTable: "airports", ToColumn: "id"},
		},
	},
	{
		Name: "college",
		Tables: []*schema.Table{
			{Name: "departments", Readable: "department", Columns: []*schema.Column{
				col("id", schema.Number, pk()), col("name", schema.Text),
				col("budget", schema.Number, dom(schema.DomainMoney)),
			}},
			{Name: "students", Readable: "student", Columns: []*schema.Column{
				col("id", schema.Number, pk()), col("name", schema.Text),
				col("age", schema.Number, dom(schema.DomainAge)),
				col("gpa", schema.Number), col("department_id", schema.Number),
			}},
			{Name: "courses", Readable: "course", Columns: []*schema.Column{
				col("id", schema.Number, pk()), col("title", schema.Text),
				col("credits", schema.Number), col("department_id", schema.Number),
			}},
		},
		ForeignKeys: []schema.ForeignKey{
			{FromTable: "students", FromColumn: "department_id", ToTable: "departments", ToColumn: "id"},
			{FromTable: "courses", FromColumn: "department_id", ToTable: "departments", ToColumn: "id"},
		},
	},
	{
		Name: "concerts",
		Tables: []*schema.Table{
			{Name: "singers", Readable: "singer", Columns: []*schema.Column{
				col("id", schema.Number, pk()), col("name", schema.Text),
				col("age", schema.Number, dom(schema.DomainAge)), col("country", schema.Text),
			}},
			{Name: "stadiums", Readable: "stadium", Columns: []*schema.Column{
				col("id", schema.Number, pk()), col("name", schema.Text),
				col("capacity", schema.Number, dom(schema.DomainCount)), col("city", schema.Text),
			}},
			{Name: "concerts", Readable: "concert", Columns: []*schema.Column{
				col("id", schema.Number, pk()), col("singer_id", schema.Number),
				col("stadium_id", schema.Number), col("attendance", schema.Number, dom(schema.DomainCount)),
				col("year", schema.Number),
			}},
		},
		ForeignKeys: []schema.ForeignKey{
			{FromTable: "concerts", FromColumn: "singer_id", ToTable: "singers", ToColumn: "id"},
			{FromTable: "concerts", FromColumn: "stadium_id", ToTable: "stadiums", ToColumn: "id"},
		},
	},
	{
		Name: "employees",
		Tables: []*schema.Table{
			{Name: "companies", Readable: "company", Columns: []*schema.Column{
				col("id", schema.Number, pk()), col("name", schema.Text),
				col("industry", schema.Text), col("revenue", schema.Number, dom(schema.DomainMoney)),
			}},
			{Name: "employees", Readable: "employee", Columns: []*schema.Column{
				col("id", schema.Number, pk()), col("name", schema.Text),
				col("age", schema.Number, dom(schema.DomainAge)),
				col("salary", schema.Number, dom(schema.DomainMoney)),
				col("company_id", schema.Number),
			}},
		},
		ForeignKeys: []schema.ForeignKey{
			{FromTable: "employees", FromColumn: "company_id", ToTable: "companies", ToColumn: "id"},
		},
	},
	{
		Name: "cars",
		Tables: []*schema.Table{
			{Name: "makers", Readable: "maker", Columns: []*schema.Column{
				col("id", schema.Number, pk()), col("name", schema.Text), col("country", schema.Text),
			}},
			{Name: "cars", Readable: "car", Columns: []*schema.Column{
				col("id", schema.Number, pk()), col("model", schema.Text),
				col("horsepower", schema.Number), col("weight", schema.Number, dom(schema.DomainWeight)),
				col("price", schema.Number, dom(schema.DomainMoney)), col("maker_id", schema.Number),
			}},
		},
		ForeignKeys: []schema.ForeignKey{
			{FromTable: "cars", FromColumn: "maker_id", ToTable: "makers", ToColumn: "id"},
		},
	},
	{
		Name: "shops",
		Tables: []*schema.Table{
			{Name: "shops", Readable: "shop", Columns: []*schema.Column{
				col("id", schema.Number, pk()), col("name", schema.Text),
				col("city", schema.Text), col("score", schema.Number),
			}},
			{Name: "products", Readable: "product", Columns: []*schema.Column{
				col("id", schema.Number, pk()), col("name", schema.Text),
				col("price", schema.Number, dom(schema.DomainMoney)), col("shop_id", schema.Number),
			}},
		},
		ForeignKeys: []schema.ForeignKey{
			{FromTable: "products", FromColumn: "shop_id", ToTable: "shops", ToColumn: "id"},
		},
	},
	{
		Name: "music",
		Tables: []*schema.Table{
			{Name: "artists", Readable: "artist", Columns: []*schema.Column{
				col("id", schema.Number, pk()), col("name", schema.Text), col("genre", schema.Text),
			}},
			{Name: "albums", Readable: "album", Columns: []*schema.Column{
				col("id", schema.Number, pk()), col("title", schema.Text),
				col("year", schema.Number), col("artist_id", schema.Number),
			}},
			{Name: "songs", Readable: "song", Columns: []*schema.Column{
				col("id", schema.Number, pk()), col("title", schema.Text),
				col("duration", schema.Number, dom(schema.DomainDuration)), col("album_id", schema.Number),
			}},
		},
		ForeignKeys: []schema.ForeignKey{
			{FromTable: "albums", FromColumn: "artist_id", ToTable: "artists", ToColumn: "id"},
			{FromTable: "songs", FromColumn: "album_id", ToTable: "albums", ToColumn: "id"},
		},
	},
	{
		Name: "library",
		Tables: []*schema.Table{
			{Name: "authors", Readable: "author", Columns: []*schema.Column{
				col("id", schema.Number, pk()), col("name", schema.Text), col("nationality", schema.Text),
			}},
			{Name: "books", Readable: "book", Columns: []*schema.Column{
				col("id", schema.Number, pk()), col("title", schema.Text),
				col("pages", schema.Number, dom(schema.DomainCount)),
				col("year", schema.Number), col("author_id", schema.Number),
			}},
		},
		ForeignKeys: []schema.ForeignKey{
			{FromTable: "books", FromColumn: "author_id", ToTable: "authors", ToColumn: "id"},
		},
	},
	{
		Name: "restaurants",
		Tables: []*schema.Table{
			{Name: "restaurants", Readable: "restaurant", Columns: []*schema.Column{
				col("id", schema.Number, pk()), col("name", schema.Text),
				col("city", schema.Text), col("rating", schema.Number),
			}},
			{Name: "dishes", Readable: "dish", Columns: []*schema.Column{
				col("id", schema.Number, pk()), col("name", schema.Text),
				col("price", schema.Number, dom(schema.DomainMoney)), col("restaurant_id", schema.Number),
			}},
		},
		ForeignKeys: []schema.ForeignKey{
			{FromTable: "dishes", FromColumn: "restaurant_id", ToTable: "restaurants", ToColumn: "id"},
		},
	},
	{
		Name: "movies",
		Tables: []*schema.Table{
			{Name: "directors", Readable: "director", Columns: []*schema.Column{
				col("id", schema.Number, pk()), col("name", schema.Text), col("country", schema.Text),
			}},
			{Name: "movies", Readable: "movie", Columns: []*schema.Column{
				col("id", schema.Number, pk()), col("title", schema.Text),
				col("year", schema.Number), col("gross", schema.Number, dom(schema.DomainMoney)),
				col("director_id", schema.Number),
			}},
		},
		ForeignKeys: []schema.ForeignKey{
			{FromTable: "movies", FromColumn: "director_id", ToTable: "directors", ToColumn: "id"},
		},
	},
	{
		Name: "sports",
		Tables: []*schema.Table{
			{Name: "teams", Readable: "team", Columns: []*schema.Column{
				col("id", schema.Number, pk()), col("name", schema.Text), col("city", schema.Text),
			}},
			{Name: "players", Readable: "player", Columns: []*schema.Column{
				col("id", schema.Number, pk()), col("name", schema.Text),
				col("age", schema.Number, dom(schema.DomainAge)),
				col("salary", schema.Number, dom(schema.DomainMoney)),
				col("team_id", schema.Number),
			}},
		},
		ForeignKeys: []schema.ForeignKey{
			{FromTable: "players", FromColumn: "team_id", ToTable: "teams", ToColumn: "id"},
		},
	},
	{
		Name: "farming",
		Tables: []*schema.Table{
			{Name: "farms", Readable: "farm", Columns: []*schema.Column{
				col("id", schema.Number, pk()), col("name", schema.Text),
				col("area", schema.Number, dom(schema.DomainArea)), col("region", schema.Text),
			}},
			{Name: "crops", Readable: "crop", Columns: []*schema.Column{
				col("id", schema.Number, pk()), col("name", schema.Text),
				col("yield", schema.Number), col("farm_id", schema.Number),
			}},
		},
		ForeignKeys: []schema.ForeignKey{
			{FromTable: "crops", FromColumn: "farm_id", ToTable: "farms", ToColumn: "id"},
		},
	},
	// ------------------------- test split -------------------------
	{
		Name: "geo",
		Tables: []*schema.Table{
			{Name: "states", Readable: "state", Columns: []*schema.Column{
				col("id", schema.Number, pk()), col("name", schema.Text),
				col("population", schema.Number, dom(schema.DomainCount)),
				col("area", schema.Number, dom(schema.DomainArea)),
				col("capital", schema.Text),
			}},
			{Name: "cities", Readable: "city", Columns: []*schema.Column{
				col("id", schema.Number, pk()), col("name", schema.Text),
				col("population", schema.Number, dom(schema.DomainCount)),
				col("state_id", schema.Number),
			}},
			{Name: "mountains", Readable: "mountain", Columns: []*schema.Column{
				col("id", schema.Number, pk()), col("name", schema.Text),
				col("height", schema.Number, dom(schema.DomainHeight)),
				col("state_id", schema.Number),
			}},
			{Name: "rivers", Readable: "river", Columns: []*schema.Column{
				col("id", schema.Number, pk()), col("name", schema.Text),
				col("length", schema.Number, dom(schema.DomainLength)),
				col("state_id", schema.Number),
			}},
		},
		ForeignKeys: []schema.ForeignKey{
			{FromTable: "cities", FromColumn: "state_id", ToTable: "states", ToColumn: "id"},
			{FromTable: "mountains", FromColumn: "state_id", ToTable: "states", ToColumn: "id"},
			{FromTable: "rivers", FromColumn: "state_id", ToTable: "states", ToColumn: "id"},
		},
	},
	{
		Name: "hotels",
		Tables: []*schema.Table{
			{Name: "hotels", Readable: "hotel", Columns: []*schema.Column{
				col("id", schema.Number, pk()), col("name", schema.Text),
				col("city", schema.Text), col("stars", schema.Number),
			}},
			{Name: "bookings", Readable: "booking", Columns: []*schema.Column{
				col("id", schema.Number, pk()), col("guest_name", schema.Text, read("guest name")),
				col("nights", schema.Number, dom(schema.DomainDuration)),
				col("price", schema.Number, dom(schema.DomainMoney)),
				col("hotel_id", schema.Number),
			}},
		},
		ForeignKeys: []schema.ForeignKey{
			{FromTable: "bookings", FromColumn: "hotel_id", ToTable: "hotels", ToColumn: "id"},
		},
	},
	{
		Name: "elections",
		Tables: []*schema.Table{
			{Name: "parties", Readable: "party", Columns: []*schema.Column{
				col("id", schema.Number, pk()), col("name", schema.Text), col("ideology", schema.Text),
			}},
			{Name: "candidates", Readable: "candidate", Columns: []*schema.Column{
				col("id", schema.Number, pk()), col("name", schema.Text),
				col("age", schema.Number, dom(schema.DomainAge)),
				col("votes", schema.Number, dom(schema.DomainCount)),
				col("party_id", schema.Number),
			}},
		},
		ForeignKeys: []schema.ForeignKey{
			{FromTable: "candidates", FromColumn: "party_id", ToTable: "parties", ToColumn: "id"},
		},
	},
	{
		Name: "pets",
		Tables: []*schema.Table{
			{Name: "owners", Readable: "owner", Columns: []*schema.Column{
				col("id", schema.Number, pk()), col("name", schema.Text),
				col("age", schema.Number, dom(schema.DomainAge)), col("city", schema.Text),
			}},
			{Name: "pets", Readable: "pet", Columns: []*schema.Column{
				col("id", schema.Number, pk()), col("name", schema.Text),
				col("species", schema.Text), col("weight", schema.Number, dom(schema.DomainWeight)),
				col("owner_id", schema.Number),
			}},
		},
		ForeignKeys: []schema.ForeignKey{
			{FromTable: "pets", FromColumn: "owner_id", ToTable: "owners", ToColumn: "id"},
		},
	},
	{
		Name: "museums",
		Tables: []*schema.Table{
			{Name: "museums", Readable: "museum", Columns: []*schema.Column{
				col("id", schema.Number, pk()), col("name", schema.Text),
				col("city", schema.Text), col("visitors", schema.Number, dom(schema.DomainCount)),
			}},
			{Name: "exhibits", Readable: "exhibit", Columns: []*schema.Column{
				col("id", schema.Number, pk()), col("title", schema.Text),
				col("year", schema.Number), col("museum_id", schema.Number),
			}},
		},
		ForeignKeys: []schema.ForeignKey{
			{FromTable: "exhibits", FromColumn: "museum_id", ToTable: "museums", ToColumn: "id"},
		},
	},
}

// TrainSchemaCount is the number of leading zoo schemas forming the
// training split.
const TrainSchemaCount = 12

// TrainSchemas returns the training-split schemas.
func TrainSchemas() []*schema.Schema { return zoo[:TrainSchemaCount] }

// TestSchemas returns the test-split schemas (disjoint from training,
// including the geo domain used as the hyperopt tuning workload).
func TestSchemas() []*schema.Schema { return zoo[TrainSchemaCount:] }

// AllSchemas returns the full zoo.
func AllSchemas() []*schema.Schema { return zoo }

// SchemaByName finds a zoo schema.
func SchemaByName(name string) *schema.Schema {
	for _, s := range zoo {
		if s.Name == name {
			return s
		}
	}
	return nil
}
