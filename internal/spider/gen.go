package spider

import (
	"fmt"
	"math/rand"

	"repro/internal/schema"
)

// Cross-domain schema generator: a seeded composer that assembles
// connected, annotated schemas from entity/column pools, standing in
// for the long tail of tenant databases an NLIDB service would host.
// Every generated schema satisfies schema.Validate and is Connected —
// table 0 is the root and every later table carries a foreign key to
// an earlier one — so the full DBPal pipeline (generate→augment→
// lemmatize→dedup→train) runs on it unmodified. The registry's chaos
// suite onboards fleets of these under live traffic.

// genEntity is one table archetype in the generator pool. Singulars
// double as FK column stems (<singular>_id), so they must be distinct
// from every column-pool name.
type genEntity struct {
	plural, singular string
	synonym          string
}

var genEntities = []genEntity{
	{"vendors", "vendor", "supplier"},
	{"clients", "client", "customer"},
	{"projects", "project", "initiative"},
	{"tickets", "ticket", "issue"},
	{"devices", "device", "gadget"},
	{"warehouses", "warehouse", "depot"},
	{"couriers", "courier", "carrier"},
	{"branches", "branch", "office"},
	{"shipments", "shipment", "delivery"},
	{"members", "member", "subscriber"},
	{"machines", "machine", "unit"},
	{"stations", "station", "stop"},
	{"parcels", "parcel", "package"},
	{"venues", "venue", "hall"},
	{"crews", "crew", "team"},
	{"routes", "route", "path"},
}

// genNumCol pool: numeric columns with domain tags so the augmenter
// picks domain-specific comparatives and engine.GenerateData draws
// plausible value ranges.
type genNumCol struct {
	name string
	dom  schema.Domain
}

var genNumCols = []genNumCol{
	{"age", schema.DomainAge},
	{"price", schema.DomainMoney},
	{"budget", schema.DomainMoney},
	{"salary", schema.DomainMoney},
	{"capacity", schema.DomainCount},
	{"weight", schema.DomainWeight},
	{"height", schema.DomainHeight},
	{"length", schema.DomainLength},
	{"area", schema.DomainArea},
	{"duration", schema.DomainDuration},
	{"rating", schema.DomainNone},
	{"score", schema.DomainNone},
	{"year", schema.DomainNone},
}

// genTextCols: categorical text columns; "city"/"state" deliberately
// hit engine.GenerateData's named value pools.
var genTextCols = []string{"city", "state", "category", "region", "grade", "color", "level"}

// GenerateSchema deterministically synthesizes one connected
// cross-domain schema from seed: 2–4 tables drawn from the entity
// pool, each with an id primary key, a name column, 1–2 domain-tagged
// numeric columns, an optional categorical text column, and (for every
// table after the first) a foreign key to a uniformly chosen earlier
// table. The same seed always yields the identical schema; distinct
// seeds yield distinct schema names (synth<seed>).
func GenerateSchema(seed int64) *schema.Schema {
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(3)
	order := rng.Perm(len(genEntities))[:n]
	s := &schema.Schema{Name: fmt.Sprintf("synth%d", seed)}
	for i, ei := range order {
		e := genEntities[ei]
		t := &schema.Table{
			Name:     e.plural,
			Readable: e.singular,
			Synonyms: []string{e.synonym},
		}
		t.Columns = append(t.Columns,
			col("id", schema.Number, pk()),
			col("name", schema.Text),
		)
		if rng.Intn(2) == 0 {
			t.Columns = append(t.Columns, col(genTextCols[rng.Intn(len(genTextCols))], schema.Text))
		}
		for _, j := range rng.Perm(len(genNumCols))[:1+rng.Intn(2)] {
			nc := genNumCols[j]
			t.Columns = append(t.Columns, col(nc.name, schema.Number, dom(nc.dom)))
		}
		if i > 0 {
			parent := s.Tables[rng.Intn(i)]
			fkCol := parent.Readable + "_id"
			t.Columns = append(t.Columns, col(fkCol, schema.Number))
			s.ForeignKeys = append(s.ForeignKeys, schema.ForeignKey{
				FromTable: t.Name, FromColumn: fkCol,
				ToTable: parent.Name, ToColumn: "id",
			})
		}
		s.Tables = append(s.Tables, t)
	}
	return s
}

// Fleet generates n schemas from consecutive seeds starting at seed —
// the synthetic tenant fleet for multi-tenant chaos tests.
func Fleet(n int, seed int64) []*schema.Schema {
	out := make([]*schema.Schema, n)
	for i := range out {
		out[i] = GenerateSchema(seed + int64(i))
	}
	return out
}

// Workload samples n pre-anonymized benchmark questions over an
// arbitrary schema (generated or zoo) using the train-split kinds —
// the onboarding eval gate scores candidate models against it.
func Workload(s *schema.Schema, n int, seed int64) []Question {
	g := newSampler(s, rand.New(rand.NewSource(seed)), false)
	return g.sample(n)
}
