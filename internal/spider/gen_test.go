package spider_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/engine"
	"repro/internal/spider"
)

// TestGenerateSchemaSweep sweeps the seed space: every generated
// schema must pass full structural validation, be FK-connected (the
// augmenter's join templates and the data generator both assume it),
// populate a database, and yield a non-empty eval workload. The bands
// cover small seeds, a mid range, and large/negative seeds so a
// pool-indexing bug anywhere in the composer shows up.
func TestGenerateSchemaSweep(t *testing.T) {
	bands := []struct {
		name       string
		from, to   int64 // inclusive range
		checkEvery int64 // run the expensive data/workload checks every k-th seed
	}{
		{"small", 1, 64, 8},
		{"mid", 1000, 1063, 16},
		{"large", 1 << 40, 1<<40 + 31, 16},
		{"negative", -32, -1, 8},
	}
	for _, band := range bands {
		band := band
		t.Run(band.name, func(t *testing.T) {
			t.Parallel()
			for seed := band.from; seed <= band.to; seed++ {
				s := spider.GenerateSchema(seed)
				if err := s.Validate(); err != nil {
					t.Fatalf("seed %d: Validate: %v", seed, err)
				}
				if !s.Connected() {
					t.Fatalf("seed %d: schema %s not FK-connected", seed, s.Name)
				}
				if want := fmt.Sprintf("synth%d", seed); s.Name != want {
					t.Fatalf("seed %d: name = %q, want %q", seed, s.Name, want)
				}
				if n := len(s.Tables); n < 2 || n > 4 {
					t.Fatalf("seed %d: %d tables, want 2..4", seed, n)
				}
				if len(s.ForeignKeys) != len(s.Tables)-1 {
					t.Fatalf("seed %d: %d FKs for %d tables, want a spanning chain",
						seed, len(s.ForeignKeys), len(s.Tables))
				}
				if (seed-band.from)%band.checkEvery != 0 {
					continue
				}
				db, err := engine.GenerateData(s, 5, seed)
				if err != nil {
					t.Fatalf("seed %d: GenerateData: %v", seed, err)
				}
				if db == nil {
					t.Fatalf("seed %d: nil database", seed)
				}
				qs := spider.Workload(s, 8, seed+1)
				if len(qs) == 0 {
					t.Fatalf("seed %d: empty workload", seed)
				}
				for _, q := range qs {
					if q.NL == "" || q.SQL == "" {
						t.Fatalf("seed %d: workload question %+v incomplete", seed, q)
					}
				}
			}
		})
	}
}

// TestGenerateSchemaDeterministic: the generator is a pure function of
// its seed — the chaos suite's resume proof depends on re-onboarding
// reproducing the identical schema.
func TestGenerateSchemaDeterministic(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 99991} {
		a, b := spider.GenerateSchema(seed), spider.GenerateSchema(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two generations differ", seed)
		}
	}
}

// TestFleet: consecutive seeds give distinct tenants.
func TestFleet(t *testing.T) {
	fleet := spider.Fleet(12, 100)
	seen := map[string]bool{}
	for _, s := range fleet {
		if seen[s.Name] {
			t.Fatalf("duplicate fleet schema %s", s.Name)
		}
		seen[s.Name] = true
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
	}
	if len(fleet) != 12 {
		t.Fatalf("fleet size %d", len(fleet))
	}
}
