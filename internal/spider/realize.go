package spider

import (
	"strconv"
	"strings"

	"repro/internal/generator"
	"repro/internal/schema"
	"repro/internal/sqlast"
)

// Spider's own phrase tables. They overlap DBPal's slot-fill lexicon
// only partially, the way independently collected human questions
// would: some wordings coincide ("show", "how many"), many do not
// ("fetch", "i need", "report").
var (
	askPhrases = []string{
		"what is", "what are", "give", "find", "which are", "tell me",
		"report", "fetch", "i need", "could you list", "show", "name",
	}
	countPhrases = []string{
		"how many", "count how many", "what is the count of",
		"tell me the number of", "find the total number of",
	}
	eqPhrases = []string{
		"is", "equals", "being", "that is", "matching",
	}
	gtPhrases = []string{
		"greater than", "over", "beyond", "more than", "upwards of",
	}
	ltPhrases = []string{
		"less than", "under", "beneath", "lower than", "not reaching",
	}
	eachPhrases = []string{
		"for each", "per", "for every", "across", "broken out by",
	}
	fillers = []string{
		"please", "hey ,", "could you", "i would like to know ,", "so ,",
	}
	aggWords = map[sqlast.AggFunc][]string{
		sqlast.AggAvg: {"average", "mean", "typical"},
		sqlast.AggSum: {"total", "combined", "overall"},
		sqlast.AggMin: {"minimum", "smallest", "lowest"},
		sqlast.AggMax: {"maximum", "largest", "highest"},
	}
)

// Test-split phrase extensions. Real Spider's test questions come from
// different annotators than its training questions, so the test split
// here draws from larger phrase tables whose extra wordings never
// occur in the training split. Many of the extras coincide with
// DBPal's slot-fill lexicon and PPDB paraphrases — the way human
// paraphrases land inside a broad paraphrase database — which is what
// lets the augmented configurations recover accuracy the baseline
// loses on unseen phrasings.
var (
	askPhrasesTest = append([]string{
		"display", "enumerate", "present", "let me see", "identify",
		"retrieve", "i want to see",
	}, askPhrases...)
	countPhrasesTest = append([]string{
		"what is the total number of", "give me the number of", "count the",
	}, countPhrases...)
	eqPhrasesTest = append([]string{
		"equal to", "is exactly", "of",
	}, eqPhrases...)
	gtPhrasesTest = append([]string{
		"exceeding", "bigger than", "in excess of",
	}, gtPhrases...)
	ltPhrasesTest = append([]string{
		"fewer than", "not more than", "smaller than",
	}, ltPhrases...)
	eachPhrasesTest = append([]string{
		"grouped by", "by each", "for each of the",
	}, eachPhrases...)
)

func (sm *sampler) pick(list []string) string {
	return list[sm.rng.Intn(len(list))]
}

// phrase tables resolved per split.
func (sm *sampler) ask() string {
	if sm.test {
		return sm.pick(askPhrasesTest)
	}
	return sm.pick(askPhrases)
}

func (sm *sampler) count() string {
	if sm.test {
		return sm.pick(countPhrasesTest)
	}
	return sm.pick(countPhrases)
}

func (sm *sampler) eq() string {
	if sm.test {
		return sm.pick(eqPhrasesTest)
	}
	return sm.pick(eqPhrases)
}

func (sm *sampler) gt() string {
	if sm.test {
		return sm.pick(gtPhrasesTest)
	}
	return sm.pick(gtPhrases)
}

func (sm *sampler) lt() string {
	if sm.test {
		return sm.pick(ltPhrasesTest)
	}
	return sm.pick(ltPhrases)
}

func (sm *sampler) each() string {
	if sm.test {
		return sm.pick(eachPhrasesTest)
	}
	return sm.pick(eachPhrases)
}

// finish applies the noise channel and normalizes to a token string.
func (sm *sampler) finish(parts ...string) string {
	s := strings.Join(parts, " ")
	if sm.rng.Float64() < 0.18 {
		s = sm.pick(fillers) + " " + s
	}
	toks := strings.Fields(s)
	// Random article drop.
	if sm.rng.Float64() < 0.25 {
		for i, t := range toks {
			if t == "the" || t == "a" || t == "an" {
				toks = append(toks[:i], toks[i+1:]...)
				break
			}
		}
	}
	return strings.ToLower(strings.Join(toks, " "))
}

// noun surfaces a table noun (singular) and its plural.
func noun(t *schema.Table) string { return t.ReadableName() }

func nounPl(t *schema.Table) string { return generator.Pluralize(t.ReadableName()) }

func attr(c *schema.Column) string { return c.ReadableName() }

func (sm *sampler) realizeSelectAll(t *schema.Table) string {
	switch sm.rng.Intn(3) {
	case 0:
		return sm.finish(sm.ask(), "all", nounPl(t))
	case 1:
		return sm.finish("list every", noun(t), "we have")
	default:
		return sm.finish("all", nounPl(t), "in the database")
	}
}

func (sm *sampler) realizeProjFilter(t *schema.Table, a, f *schema.Column, dir, phTok string) string {
	var rel string
	switch dir {
	case "eq":
		rel = sm.eq()
	case "gt":
		rel = sm.gt()
	default:
		rel = sm.lt()
	}
	switch sm.rng.Intn(3) {
	case 0:
		return sm.finish(sm.ask(), "the", attr(a), "of", nounPl(t), "whose", attr(f), rel, phTok)
	case 1:
		return sm.finish("for", nounPl(t), "with", attr(f), rel, phTok, ",", sm.ask(), "the", attr(a))
	default:
		return sm.finish(sm.ask(), "the", attr(a), "for any", noun(t), "having", attr(f), rel, phTok)
	}
}

func (sm *sampler) realizeMultiProj(t *schema.Table, a, b *schema.Column) string {
	if sm.rng.Intn(2) == 0 {
		return sm.finish(sm.ask(), "the", attr(a), "and", attr(b), "of all", nounPl(t))
	}
	return sm.finish("for every", noun(t), ",", sm.ask(), "its", attr(a), "plus its", attr(b))
}

func (sm *sampler) realizeCount(t *schema.Table, f *schema.Column, dir, phTok string) string {
	if f == nil {
		if sm.rng.Intn(2) == 0 {
			return sm.finish(sm.count(), nounPl(t), "exist")
		}
		return sm.finish(sm.count(), nounPl(t), "are recorded")
	}
	return sm.finish(sm.count(), nounPl(t), "have", attr(f), sm.eq(), phTok)
}

func (sm *sampler) realizeAgg(t *schema.Table, ag sqlast.AggFunc, n, f *schema.Column) string {
	w := sm.pick(aggWords[ag])
	if f == nil {
		if sm.rng.Intn(2) == 0 {
			return sm.finish(sm.ask(), "the", w, attr(n), "of", nounPl(t))
		}
		return sm.finish("compute the", w, attr(n), "over all", nounPl(t))
	}
	phTok := ph(t, f).String()
	return sm.finish(sm.ask(), "the", w, attr(n), "of", nounPl(t), "whose", attr(f), sm.eq(), phTok)
}

func (sm *sampler) realizeGroup(t *schema.Table, g *schema.Column, ag sqlast.AggFunc, n *schema.Column) string {
	each := sm.each()
	if ag == sqlast.AggCount {
		return sm.finish(sm.count(), nounPl(t), "are there", each, attr(g))
	}
	w := sm.pick(aggWords[ag])
	return sm.finish(sm.ask(), "the", w, attr(n), "of", nounPl(t), each, attr(g))
}

func (sm *sampler) realizeArg(t *schema.Table, a, n *schema.Column, desc bool) string {
	extreme := "largest"
	if !desc {
		extreme = "smallest"
	}
	if sm.rng.Intn(2) == 0 {
		return sm.finish(sm.ask(), "the", attr(a), "of the", noun(t), "with the", extreme, attr(n))
	}
	return sm.finish("which", noun(t), "has the", extreme, attr(n), "?", sm.ask(), "its", attr(a))
}

func (sm *sampler) realizeOrder(t *schema.Table, a, n *schema.Column, desc bool) string {
	dir := "from largest to smallest"
	if !desc {
		dir = "in increasing order"
	}
	return sm.finish(sm.ask(), "the", attr(a), "of", nounPl(t), "arranged by", attr(n), dir)
}

func (sm *sampler) realizeJoinProj(child, parent *schema.Table, a, f *schema.Column) string {
	phTok := ph(parent, f).String()
	if sm.rng.Intn(2) == 0 {
		return sm.finish(sm.ask(), "the", attr(a), "of", nounPl(child), "belonging to the", noun(parent), "with", attr(f), phTok)
	}
	return sm.finish("for the", noun(parent), "whose", attr(f), sm.eq(), phTok, ",", sm.ask(), "the", attr(a), "of its", nounPl(child))
}

func (sm *sampler) realizeJoinAgg(child, parent *schema.Table, ag sqlast.AggFunc, n, f *schema.Column) string {
	w := sm.pick(aggWords[ag])
	phTok := ph(parent, f).String()
	return sm.finish(sm.ask(), "the", w, attr(n), "of", nounPl(child), "under the", noun(parent), "with", attr(f), phTok)
}

func (sm *sampler) realizeJoinGroup(child, parent *schema.Table, g *schema.Column) string {
	return sm.finish(sm.count(), nounPl(child), "are there", sm.each(), noun(parent), attr(g))
}

func (sm *sampler) realizeNestedExtreme(t *schema.Table, a, n *schema.Column, ag sqlast.AggFunc) string {
	w := sm.pick(aggWords[ag])
	if sm.rng.Intn(2) == 0 {
		return sm.finish(sm.ask(), "the", attr(a), "of the", noun(t), "whose", attr(n), "is the", w, "one")
	}
	return sm.finish("among all", nounPl(t), ",", sm.ask(), "the", attr(a), "of the one with the", w, attr(n))
}

func (sm *sampler) realizeNestedExtremeFiltered(t *schema.Table, a, n, f *schema.Column, ag sqlast.AggFunc) string {
	w := sm.pick(aggWords[ag])
	p := ph(t, f).String()
	if sm.rng.Intn(2) == 0 {
		return sm.finish(sm.ask(), "the", attr(a), "of the", noun(t), "with the", w, attr(n), "among those with", attr(f), p)
	}
	return sm.finish("among", nounPl(t), "whose", attr(f), sm.eq(), p, ",", sm.ask(), "the", attr(a), "of the one with the", w, attr(n))
}

func (sm *sampler) realizeNestedAvg(t *schema.Table, a, n *schema.Column, op sqlast.CmpOp) string {
	rel := "above"
	if op == sqlast.OpLt {
		rel = "below"
	}
	return sm.finish(sm.ask(), "the", attr(a), "of", nounPl(t), "whose", attr(n), "is", rel, "the average")
}

func (sm *sampler) realizeIn(parent, child *schema.Table, a, f *schema.Column, negated bool, phTok string) string {
	have := "that have a"
	if negated {
		have = "without any"
	}
	return sm.finish(sm.ask(), "the", attr(a), "of", nounPl(parent), have, noun(child), "whose", attr(f), sm.eq(), phTok)
}

func (sm *sampler) realizeAnd(t *schema.Table, a, f1, f2 *schema.Column) string {
	p1 := ph(t, f1).String()
	p2 := ph(t, f2).String()
	return sm.finish(sm.ask(), "the", attr(a), "of", nounPl(t), "whose", attr(f1), sm.eq(), p1, "and whose", attr(f2), "is", sm.gt(), p2)
}

func (sm *sampler) realizeOr(t *schema.Table, a, f *schema.Column) string {
	p := ph(t, f).String()
	return sm.finish(sm.ask(), "the", attr(a), "of", nounPl(t), "whose", attr(f), sm.eq(), p, "or", p)
}

func (sm *sampler) realizeDistinctPair(t *schema.Table, a, b *schema.Column) string {
	return sm.finish(sm.ask(), "the distinct combinations of", attr(a), "and", attr(b), "among", nounPl(t))
}

func (sm *sampler) realizeStarOrder(t *schema.Table, n *schema.Column) string {
	return sm.finish(sm.ask(), "all", nounPl(t), "ranked by", attr(n), "from largest to smallest")
}

func (sm *sampler) realizeNestedCount(t *schema.Table, n, f *schema.Column) string {
	p := ph(t, f).String()
	return sm.finish(sm.count(), nounPl(t), "have", attr(n), "above the average of those with", attr(f), p)
}

func (sm *sampler) realizeHaving(t *schema.Table, g *schema.Column, k int) string {
	return sm.finish(sm.ask(), "the", attr(g), "values with", sm.gt(), itoa(k), nounPl(t))
}

func (sm *sampler) realizeTripleAnd(t *schema.Table, a, f1, f2, f3 *schema.Column) string {
	p1 := ph(t, f1).String()
	p2 := ph(t, f2).String()
	p3 := ph(t, f3).String()
	return sm.finish(sm.ask(), "the", attr(a), "of", nounPl(t), "with", attr(f1), p1, ",", attr(f2), sm.gt(), p2, "and", attr(f3), sm.lt(), p3)
}

func (sm *sampler) realizeGroupOrder(t *schema.Table, g *schema.Column) string {
	return sm.finish(sm.count(), nounPl(t), "are there", sm.each(), attr(g), ", most frequent first")
}

func itoa(n int) string { return strconv.Itoa(n) }
