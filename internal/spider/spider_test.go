package spider

import (
	"strings"
	"testing"

	"repro/internal/sqlast"
	"repro/internal/tokens"
)

func TestZooValid(t *testing.T) {
	if len(AllSchemas()) < 14 {
		t.Fatalf("schema zoo too small: %d", len(AllSchemas()))
	}
	names := map[string]bool{}
	for _, s := range AllSchemas() {
		if err := s.Validate(); err != nil {
			t.Errorf("schema %s invalid: %v", s.Name, err)
		}
		if names[s.Name] {
			t.Errorf("duplicate schema name %s", s.Name)
		}
		names[s.Name] = true
		if !s.Connected() {
			t.Errorf("schema %s is not join-connected", s.Name)
		}
	}
}

func TestSplitsDisjoint(t *testing.T) {
	train := map[string]bool{}
	for _, s := range TrainSchemas() {
		train[s.Name] = true
	}
	for _, s := range TestSchemas() {
		if train[s.Name] {
			t.Fatalf("schema %s appears in both splits", s.Name)
		}
	}
	if SchemaByName("geo") == nil {
		t.Fatal("geo schema missing")
	}
	geoInTest := false
	for _, s := range TestSchemas() {
		if s.Name == "geo" {
			geoInTest = true
		}
	}
	if !geoInTest {
		t.Fatal("geo must be a test-split schema (hyperopt tuning workload)")
	}
}

func TestBuildShape(t *testing.T) {
	d := Build(DefaultConfig())
	if len(d.Train) < 900 || len(d.Test) < 250 {
		t.Fatalf("dataset too small: train=%d test=%d", len(d.Train), len(d.Test))
	}
	for _, q := range append(append([]Question{}, d.Train...), d.Test...) {
		if _, err := sqlast.Parse(q.SQL); err != nil {
			t.Fatalf("unparsable gold SQL %q: %v", q.SQL, err)
		}
		if strings.TrimSpace(q.NL) == "" {
			t.Fatalf("empty NL for %q", q.SQL)
		}
	}
}

func TestBuildDeterminism(t *testing.T) {
	a := Build(DefaultConfig())
	b := Build(DefaultConfig())
	if len(a.Train) != len(b.Train) || len(a.Test) != len(b.Test) {
		t.Fatal("nondeterministic sizes")
	}
	for i := range a.Train {
		if a.Train[i] != b.Train[i] {
			t.Fatalf("train question %d differs", i)
		}
	}
}

func TestDifficultyCoverage(t *testing.T) {
	d := Build(DefaultConfig())
	for _, split := range [][]Question{d.Train, d.Test} {
		st := Stats(split)
		for _, diff := range sqlast.Difficulties {
			if st[diff] == 0 {
				t.Errorf("difficulty %s missing from a split", diff)
			}
		}
	}
}

func TestTestOnlyKindsAbsentFromTrain(t *testing.T) {
	d := Build(DefaultConfig())
	testOnly := map[string]bool{}
	for _, k := range testOnlyKinds {
		testOnly[k] = true
	}
	for _, q := range d.Train {
		if testOnly[q.Kind] {
			t.Fatalf("test-only kind %s leaked into training split", q.Kind)
		}
	}
	found := map[string]bool{}
	for _, q := range d.Test {
		found[q.Kind] = true
	}
	for _, k := range testOnlyKinds {
		if !found[k] {
			t.Errorf("test-only kind %s never sampled", k)
		}
	}
}

func TestPlaceholdersConsistent(t *testing.T) {
	// Every placeholder in the SQL must appear in the NL (the paper's
	// pre-anonymized evaluation setup).
	d := Build(Config{TrainPerSchema: 40, TestPerSchema: 40, Seed: 5})
	check := func(qs []Question) {
		for _, q := range qs {
			nlPH := map[string]bool{}
			for _, tok := range tokens.Tokenize(q.NL) {
				if tokens.IsPlaceholder(tok) {
					nlPH[tok] = true
				}
			}
			parsed := sqlast.MustParse(q.SQL)
			sqlast.WalkQueries(parsed, func(sub *sqlast.Query) {
				for _, e := range sqlast.Conjuncts(sub.Where) {
					if cmp, ok := e.(sqlast.Comparison); ok {
						if ph, ok := cmp.Right.(sqlast.Placeholder); ok {
							if !nlPH["@"+strings.ToUpper(ph.Name)] {
								t.Errorf("placeholder @%s in SQL but not NL: %s", ph.Name, q)
							}
						}
					}
				}
			})
		}
	}
	check(d.Train)
	check(d.Test)
}

func TestPhrasingSplitDivergence(t *testing.T) {
	// The test split must use phrasings the training split never does
	// (modeling annotator variance); "enumerate" is test-only.
	d := Build(DefaultConfig())
	for _, q := range d.Train {
		if strings.Contains(" "+q.NL+" ", " enumerate ") {
			t.Fatalf("test-only phrasing leaked into train: %q", q.NL)
		}
	}
	found := false
	for _, q := range d.Test {
		if strings.Contains(" "+q.NL+" ", " enumerate ") {
			found = true
		}
	}
	if !found {
		t.Error("test split never used its extended phrasings")
	}
}

func TestGeoWorkload(t *testing.T) {
	geo := GeoWorkload(100, 9)
	if len(geo) < 80 {
		t.Fatalf("geo workload too small: %d", len(geo))
	}
	for _, q := range geo {
		if q.Schema != "geo" {
			t.Fatalf("geo workload contains schema %s", q.Schema)
		}
	}
}

func TestQueryPatternSet(t *testing.T) {
	d := Build(Config{TrainPerSchema: 50, TestPerSchema: 30, Seed: 3})
	ps := QueryPatternSet(d.Train)
	if len(ps) < 10 {
		t.Fatalf("pattern set too small: %d", len(ps))
	}
	for p := range ps {
		if strings.Contains(p, "patients") {
			t.Fatalf("pattern leaked schema tokens: %q", p)
		}
	}
}
