// Package ppdb is the Paraphrase Database stand-in used by the
// automatic-paraphrasing augmentation step. The paper uses PPDB's
// English corpus (73M phrasal + 8M lexical paraphrases); this package
// substitutes an embedded synthetic paraphrase table covering the
// query-domain vocabulary, with per-entry quality scores.
//
// Crucially for reproducing the paper's trade-off ("PPDB also includes
// some paraphrases that are of low quality"), the table deliberately
// contains noisy, meaning-distorting entries at low quality scores:
// turning the paraphrasing knobs up (larger sizePara/numPara) pulls in
// these entries, injecting noise into the training data exactly as the
// paper describes.
package ppdb

import (
	"sort"
	"strings"

	"repro/internal/lexicon"
)

// Entry is one paraphrase candidate with a quality score in (0, 1].
// Quality above 0.5 is meaning-preserving; entries at or below 0.5 are
// the noisy tail.
type Entry struct {
	Paraphrase string
	Quality    float64
}

// head is the curated table: unigram and bigram keys mapped to
// paraphrase candidates. Keys and paraphrases are lower-case,
// space-separated token sequences.
var head = map[string][]Entry{
	// --- verbs of showing (the paper's running example) ---
	"show": {
		{"display", 0.95}, {"list", 0.9}, {"present", 0.85},
		{"demonstrate", 0.6}, {"showcase", 0.55}, {"indicate", 0.5},
		{"lay", 0.2},
	},
	"show me": {
		{"give me", 0.95}, {"display", 0.9}, {"let me see", 0.85},
		{"i would like to see", 0.8}, {"point me to", 0.4},
	},
	"list": {
		{"enumerate", 0.9}, {"show", 0.9}, {"display", 0.85},
		{"itemize", 0.7}, {"identify", 0.6}, {"lean", 0.1},
	},
	"enumerate": {
		{"list", 0.95}, {"identify", 0.7}, {"count off", 0.5},
	},
	"display": {
		{"show", 0.95}, {"present", 0.85}, {"exhibit", 0.6}, {"screen", 0.2},
	},
	"find": {
		{"locate", 0.9}, {"get", 0.85}, {"retrieve", 0.85}, {"discover", 0.6},
		{"search", 0.55}, {"fund", 0.05},
	},
	"get": {
		{"retrieve", 0.9}, {"fetch", 0.85}, {"obtain", 0.8}, {"acquire", 0.6},
		{"receive", 0.4},
	},
	"give": {
		{"provide", 0.9}, {"supply", 0.7}, {"hand", 0.3},
	},
	"give me": {
		{"show me", 0.9}, {"provide me with", 0.8}, {"hand me", 0.4},
	},
	"tell me": {
		{"show me", 0.85}, {"let me know", 0.8}, {"inform me of", 0.7},
	},
	"return": {
		{"give back", 0.5}, {"output", 0.8}, {"produce", 0.6}, {"go back", 0.1},
	},
	"output": {
		{"return", 0.8}, {"print", 0.7}, {"produce", 0.7},
	},
	"count": {
		{"tally", 0.8}, {"number", 0.7}, {"total", 0.7}, {"count up", 0.75},
		{"matter", 0.1},
	},

	// --- wh-phrases ---
	"what is": {
		{"what's", 0.95}, {"tell me", 0.8}, {"which is", 0.6}, {"how is", 0.2},
	},
	"what are": {
		{"which are", 0.7}, {"tell me", 0.7}, {"what're", 0.8},
	},
	"how many": {
		{"what is the number of", 0.9}, {"what number of", 0.8},
		{"count of", 0.7}, {"how much", 0.4},
	},
	"how much": {
		{"what amount of", 0.8}, {"how many", 0.4},
	},
	"who": {
		{"which person", 0.7}, {"whom", 0.6},
	},

	// --- quantifiers / determiners ---
	"all": {
		{"every", 0.85}, {"each", 0.7}, {"the entire set of", 0.6},
		{"any", 0.4},
	},
	"every": {
		{"all", 0.85}, {"each", 0.85}, {"any", 0.4},
	},
	"each": {
		{"every", 0.9}, {"all", 0.7}, {"apiece", 0.3},
	},
	"number of": {
		{"count of", 0.9}, {"amount of", 0.7}, {"quantity of", 0.7},
		{"figure of", 0.2},
	},

	// --- comparison phrases ---
	"greater than": {
		{"more than", 0.95}, {"larger than", 0.9}, {"above", 0.85},
		{"over", 0.85}, {"exceeding", 0.8}, {"in excess of", 0.7},
		{"greater", 0.4},
	},
	"more than": {
		{"greater than", 0.95}, {"over", 0.9}, {"above", 0.85},
		{"upwards of", 0.6}, {"more", 0.3},
	},
	"less than": {
		{"smaller than", 0.9}, {"under", 0.9}, {"below", 0.9},
		{"fewer than", 0.85}, {"not more than", 0.5}, {"less", 0.3},
	},
	"at least": {
		{"no less than", 0.85}, {"a minimum of", 0.8}, {"at the least", 0.7},
		{"at most", 0.05},
	},
	"at most": {
		{"no more than", 0.85}, {"a maximum of", 0.8}, {"at least", 0.05},
	},
	"equal to": {
		{"the same as", 0.85}, {"exactly", 0.8}, {"identical to", 0.7},
		{"equal", 0.4},
	},
	"older than": {
		{"above the age of", 0.9}, {"aged over", 0.85}, {"elder than", 0.4},
	},
	"younger than": {
		{"below the age of", 0.9}, {"aged under", 0.85},
	},

	// --- aggregates ---
	"average": {
		{"mean", 0.95}, {"typical", 0.6}, {"expected", 0.4}, {"medium", 0.2},
	},
	"mean": {
		{"average", 0.95}, {"imply", 0.05}, {"unkind", 0.02},
	},
	"maximum": {
		{"highest", 0.9}, {"largest", 0.9}, {"greatest", 0.85}, {"top", 0.7},
		{"utmost", 0.4},
	},
	"minimum": {
		{"lowest", 0.9}, {"smallest", 0.9}, {"least", 0.8}, {"bottom", 0.6},
	},
	"highest": {
		{"maximum", 0.9}, {"largest", 0.8}, {"top", 0.7}, {"tallest", 0.5},
	},
	"lowest": {
		{"minimum", 0.9}, {"smallest", 0.8}, {"bottom", 0.6},
	},
	"total": {
		{"sum", 0.9}, {"overall", 0.8}, {"combined", 0.75}, {"entire", 0.5},
		{"complete", 0.3},
	},
	"sum": {
		{"total", 0.9}, {"sum total", 0.8}, {"summation", 0.6}, {"amount", 0.5},
	},

	// --- clause connectors ---
	"with": {
		{"having", 0.85}, {"that have", 0.8}, {"possessing", 0.5},
		{"alongside", 0.2},
	},
	"whose": {
		{"with a", 0.6}, {"that have a", 0.6}, {"of whom the", 0.4},
	},
	"where": {
		{"in which", 0.8}, {"for which", 0.75}, {"wherever", 0.3},
	},
	"for each": {
		{"per", 0.9}, {"for every", 0.9}, {"by each", 0.7},
		{"grouped by", 0.7},
	},
	"per": {
		{"for each", 0.9}, {"for every", 0.85}, {"a", 0.2},
	},
	"sorted by": {
		{"ordered by", 0.95}, {"ranked by", 0.8}, {"arranged by", 0.8},
		{"classified by", 0.4},
	},
	"ordered by": {
		{"sorted by", 0.95}, {"arranged by", 0.8}, {"commanded by", 0.05},
	},
	"and": {
		{"as well as", 0.85}, {"along with", 0.7}, {"plus", 0.5},
	},
	"or": {
		{"or else", 0.7}, {"alternatively", 0.5},
	},
	"not": {
		{"other than", 0.6}, {"excluding", 0.6}, {"no", 0.3},
	},
	"between": {
		{"in the range of", 0.85}, {"ranging between", 0.8}, {"among", 0.3},
	},
	"in": {
		{"within", 0.8}, {"inside", 0.6}, {"into", 0.2},
	},
	"of": {
		{"belonging to", 0.6}, {"from", 0.5}, {"regarding", 0.3},
	},

	// --- domain nouns (lexical paraphrases) ---
	"patient":    {{"inpatient", 0.8}, {"case", 0.6}, {"sufferer", 0.4}},
	"patients":   {{"inpatients", 0.8}, {"cases", 0.6}, {"the sick", 0.3}},
	"doctor":     {{"physician", 0.95}, {"clinician", 0.85}, {"medic", 0.6}, {"doc", 0.5}},
	"doctors":    {{"physicians", 0.95}, {"clinicians", 0.85}, {"medics", 0.6}},
	"disease":    {{"illness", 0.9}, {"condition", 0.8}, {"ailment", 0.75}, {"sickness", 0.7}},
	"diseases":   {{"illnesses", 0.9}, {"conditions", 0.8}, {"ailments", 0.75}},
	"diagnosis":  {{"finding", 0.6}, {"assessment", 0.5}},
	"hospital":   {{"clinic", 0.8}, {"medical center", 0.8}, {"infirmary", 0.6}},
	"stay":       {{"visit", 0.6}, {"stint", 0.5}, {"remain", 0.2}},
	"age":        {{"years", 0.6}, {"age in years", 0.7}, {"era", 0.05}},
	"name":       {{"title", 0.6}, {"designation", 0.5}, {"appoint", 0.05}},
	"names":      {{"titles", 0.6}, {"designations", 0.5}},
	"city":       {{"town", 0.85}, {"municipality", 0.8}, {"urban area", 0.6}},
	"cities":     {{"towns", 0.85}, {"municipalities", 0.8}, {"urban areas", 0.6}},
	"state":      {{"province", 0.7}, {"region", 0.6}, {"condition", 0.1}},
	"states":     {{"provinces", 0.7}, {"regions", 0.6}},
	"country":    {{"nation", 0.9}, {"land", 0.5}, {"countryside", 0.1}},
	"population": {{"number of residents", 0.85}, {"number of inhabitants", 0.85}, {"headcount", 0.5}},
	"area":       {{"size", 0.7}, {"surface area", 0.85}, {"zone", 0.3}, {"region", 0.3}},
	"river":      {{"stream", 0.7}, {"waterway", 0.7}},
	"mountain":   {{"peak", 0.85}, {"summit", 0.7}, {"mount", 0.8}},
	"mountains":  {{"peaks", 0.85}, {"summits", 0.7}},
	"height":     {{"elevation", 0.85}, {"altitude", 0.8}, {"tallness", 0.4}},
	"length":     {{"duration", 0.6}, {"extent", 0.6}, {"span", 0.5}},
	"salary":     {{"pay", 0.9}, {"wage", 0.85}, {"compensation", 0.75}, {"earnings", 0.7}},
	"employee":   {{"worker", 0.9}, {"staff member", 0.85}},
	"employees":  {{"workers", 0.9}, {"staff members", 0.85}, {"staff", 0.8}},
	"department": {{"division", 0.8}, {"unit", 0.6}, {"section", 0.5}},
	"student":    {{"pupil", 0.85}, {"learner", 0.6}},
	"students":   {{"pupils", 0.85}, {"learners", 0.6}},
	"teacher":    {{"instructor", 0.85}, {"educator", 0.75}},
	"course":     {{"class", 0.8}, {"module", 0.5}, {"direction", 0.1}},
	"flight":     {{"trip", 0.6}, {"journey", 0.5}, {"escape", 0.05}},
	"flights":    {{"trips", 0.6}, {"journeys", 0.5}},
	"airline":    {{"carrier", 0.85}, {"airway", 0.5}},
	"car":        {{"vehicle", 0.9}, {"automobile", 0.9}, {"auto", 0.8}},
	"cars":       {{"vehicles", 0.9}, {"automobiles", 0.9}, {"autos", 0.8}},
	"price":      {{"cost", 0.9}, {"value", 0.5}, {"prize", 0.05}},
	"customer":   {{"client", 0.85}, {"buyer", 0.75}, {"patron", 0.6}},
	"customers":  {{"clients", 0.85}, {"buyers", 0.75}, {"patrons", 0.6}},
	"order":      {{"purchase", 0.7}, {"command", 0.1}, {"sequence", 0.1}},
	"product":    {{"item", 0.8}, {"good", 0.7}, {"merchandise", 0.6}},
	"products":   {{"items", 0.8}, {"goods", 0.7}},
	"song":       {{"track", 0.85}, {"tune", 0.7}, {"number", 0.2}},
	"songs":      {{"tracks", 0.85}, {"tunes", 0.7}},
	"album":      {{"record", 0.7}, {"LP", 0.5}},
	"team":       {{"club", 0.8}, {"squad", 0.8}, {"side", 0.4}},
	"teams":      {{"clubs", 0.8}, {"squads", 0.8}},
	"player":     {{"athlete", 0.7}, {"competitor", 0.5}, {"gambler", 0.05}},
	"players":    {{"athletes", 0.7}, {"competitors", 0.5}},
	"stadium":    {{"arena", 0.8}, {"venue", 0.7}, {"ground", 0.5}},
	"budget":     {{"funds", 0.7}, {"allocation", 0.6}},
	"year":       {{"calendar year", 0.7}, {"twelve months", 0.5}},
	"capital":    {{"capital city", 0.85}, {"funds", 0.1}},
}

// table is the full lookup table: head entries plus entries derived
// from the lexicon's general synonym dictionary (both directions, at a
// fixed mid-high quality).
var table = buildTable()

func buildTable() map[string][]Entry {
	t := make(map[string][]Entry, len(head)*2)
	for k, es := range head {
		t[k] = append(t[k], es...)
	}
	for w, syns := range lexicon.GeneralSynonyms {
		for _, s := range syns {
			t[w] = addIfAbsent(t[w], Entry{Paraphrase: s, Quality: 0.8})
			t[s] = addIfAbsent(t[s], Entry{Paraphrase: w, Quality: 0.8})
		}
	}
	// Deterministic order: sort each candidate list by quality desc,
	// then alphabetically.
	for k := range t {
		es := t[k]
		sort.Slice(es, func(i, j int) bool {
			if es[i].Quality != es[j].Quality {
				return es[i].Quality > es[j].Quality
			}
			return es[i].Paraphrase < es[j].Paraphrase
		})
		t[k] = es
	}
	return t
}

func addIfAbsent(es []Entry, e Entry) []Entry {
	for _, x := range es {
		if x.Paraphrase == e.Paraphrase {
			return es
		}
	}
	return append(es, e)
}

// Lookup returns all paraphrase entries for a word or phrase (space-
// separated tokens, lower case), best first. The returned slice must
// not be modified.
func Lookup(phrase string) []Entry {
	return table[strings.ToLower(phrase)]
}

// Paraphrases returns up to max paraphrases for the phrase with
// quality strictly above minQuality, best first.
func Paraphrases(phrase string, max int, minQuality float64) []string {
	var out []string
	for _, e := range Lookup(phrase) {
		if e.Quality <= minQuality {
			continue
		}
		out = append(out, e.Paraphrase)
		if len(out) >= max {
			break
		}
	}
	return out
}

// Size returns the number of keys in the paraphrase table.
func Size() int { return len(table) }

// MaxKeyLen returns the longest key length in tokens (the largest
// subclause size worth looking up).
func MaxKeyLen() int {
	max := 1
	for k := range table {
		if n := strings.Count(k, " ") + 1; n > max {
			max = n
		}
	}
	return max
}
