package ppdb

import (
	"testing"
	"testing/quick"
)

func TestLookupQualityOrder(t *testing.T) {
	es := Lookup("show")
	if len(es) < 3 {
		t.Fatalf("show should have several paraphrases, got %d", len(es))
	}
	for i := 1; i < len(es); i++ {
		if es[i].Quality > es[i-1].Quality {
			t.Fatalf("entries not sorted by quality: %v", es)
		}
	}
}

func TestLookupCaseInsensitive(t *testing.T) {
	if len(Lookup("SHOW")) == 0 {
		t.Fatal("lookup should be case-insensitive")
	}
	if Lookup("zzzz-not-in-db") != nil {
		t.Fatal("unknown phrase should return nil")
	}
}

func TestBigramKeys(t *testing.T) {
	if len(Lookup("greater than")) == 0 {
		t.Fatal("bigram keys must be supported")
	}
	if MaxKeyLen() < 2 {
		t.Fatalf("MaxKeyLen = %d", MaxKeyLen())
	}
}

func TestParaphrasesLimits(t *testing.T) {
	all := Paraphrases("show", 100, 0)
	if len(all) < 3 {
		t.Fatalf("show paraphrases = %v", all)
	}
	two := Paraphrases("show", 2, 0)
	if len(two) != 2 || two[0] != all[0] || two[1] != all[1] {
		t.Fatalf("max limit broken: %v", two)
	}
	// High quality threshold filters the noisy tail.
	clean := Paraphrases("show", 100, 0.5)
	for _, p := range clean {
		found := false
		for _, e := range Lookup("show") {
			if e.Paraphrase == p && e.Quality > 0.5 {
				found = true
			}
		}
		if !found {
			t.Fatalf("paraphrase %q leaked through the quality filter", p)
		}
	}
	if len(clean) >= len(all) {
		t.Fatal("quality filter should remove the noisy entries of 'show'")
	}
}

// The paper's trade-off requires the database to contain deliberately
// noisy entries: aggressive settings must be able to pull in
// meaning-distorting paraphrases.
func TestNoisyTailExists(t *testing.T) {
	noisy := 0
	for _, key := range []string{"mean", "player", "price", "order", "show", "find"} {
		for _, e := range Lookup(key) {
			if e.Quality <= 0.5 {
				noisy++
			}
		}
	}
	if noisy < 5 {
		t.Fatalf("expected a noisy tail across common words, found %d entries", noisy)
	}
}

func TestSynonymDerivedEntries(t *testing.T) {
	// Entries derived from the lexicon's synonym dictionary must exist
	// in both directions.
	found := func(key, para string) bool {
		for _, e := range Lookup(key) {
			if e.Paraphrase == para {
				return true
			}
		}
		return false
	}
	if !found("doctor", "physician") || !found("physician", "doctor") {
		t.Fatal("synonym-derived entries missing")
	}
}

func TestSizeReasonable(t *testing.T) {
	if Size() < 100 {
		t.Fatalf("paraphrase table too small: %d keys", Size())
	}
}

// Property: Paraphrases never returns more than max and never includes
// the query phrase itself.
func TestParaphrasesQuick(t *testing.T) {
	keys := []string{"show", "list", "average", "greater than", "patient", "city"}
	f := func(i, m uint8) bool {
		key := keys[int(i)%len(keys)]
		max := int(m)%5 + 1
		out := Paraphrases(key, max, 0)
		if len(out) > max {
			return false
		}
		for _, p := range out {
			if p == key {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
