package serve

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/models"
)

// batchOracle answers like the oracle and counts which decode path
// was used, so tests can prove the batcher really batches.
type batchOracle struct {
	single, batched atomic.Int64
}

func (*batchOracle) Name() string           { return "oracle" }
func (*batchOracle) Train([]models.Example) {}
func (m *batchOracle) Translate(nl, st []string) []string {
	m.single.Add(1)
	return strings.Fields("SELECT name FROM patients WHERE age = @PATIENTS.AGE")
}
func (m *batchOracle) TranslateBatch(nls [][]string, st []string) [][]string {
	m.batched.Add(1)
	out := make([][]string, len(nls))
	for i := range nls {
		out[i] = strings.Fields("SELECT name FROM patients WHERE age = @PATIENTS.AGE")
	}
	return out
}

// TestCacheServesConstantVariations: the tentpole property end to
// end — after one decode, every constant variation of the question
// shape is a cache hit that still carries its own constant in the
// final SQL, and the model is never consulted again.
func TestCacheServesConstantVariations(t *testing.T) {
	model := &batchOracle{}
	s, ts := newTestServer(t, model, Config{CacheSize: 64})

	var first askResponse
	if code := getJSON(t, ts.URL+"/ask?q="+urlQuery(goodQuestion), &first); code != http.StatusOK {
		t.Fatalf("cold ask = %d", code)
	}
	if !strings.Contains(first.SQL, "80") {
		t.Fatalf("cold SQL = %q", first.SQL)
	}
	decodes := model.single.Load() + model.batched.Load()

	// Same shape, different constant: must hit, must restore 45.
	var warm askResponse
	if code := getJSON(t, ts.URL+"/ask?q="+urlQuery("show the names of all patients with age 45"), &warm); code != http.StatusOK {
		t.Fatalf("warm ask = %d", code)
	}
	if !strings.Contains(warm.SQL, "45") {
		t.Fatalf("warm SQL must carry the new constant: %q", warm.SQL)
	}
	if got := model.single.Load() + model.batched.Load(); got != decodes {
		t.Fatalf("cache hit still decoded: %d → %d model calls", decodes, got)
	}
	st := s.Snapshot()
	if st.Cache == nil || st.Cache.Hits < 1 || st.Cache.Misses != 1 {
		t.Fatalf("cache stats = %+v, want 1 miss then hits", st.Cache)
	}
}

// TestCacheCoalescesConcurrentMisses: N concurrent requests for one
// cold key pay exactly one model call (singleflight through the full
// HTTP stack).
func TestCacheCoalescesConcurrentMisses(t *testing.T) {
	model := newBlockModel()
	s, ts := newTestServer(t, model, Config{CacheSize: 64, Workers: 8, Queue: 16})

	const n = 6
	var wg sync.WaitGroup
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i] = getJSON(t, ts.URL+"/ask?q="+urlQuery(goodQuestion), nil)
		}(i)
	}
	// Wait until the leader is inside the model, then let it finish.
	deadline := time.Now().Add(2 * time.Second)
	for model.calls.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	model.release()
	wg.Wait()

	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("request %d = %d", i, code)
		}
	}
	if got := model.calls.Load(); got != 1 {
		t.Fatalf("model decoded %d times for %d concurrent identical questions, want 1", got, n)
	}
	st := s.Snapshot()
	if st.Cache.Misses != 1 || st.Cache.Coalesced+st.Cache.Hits != n-1 {
		t.Fatalf("cache stats = %+v, want 1 miss and %d shared", st.Cache, n-1)
	}
}

// TestBatcherFlushFull: the request that fills the batch flushes it,
// every waiter gets its row, and stats record one full flush.
func TestBatcherFlushFull(t *testing.T) {
	model := &batchOracle{}
	b := NewBatcher(model, []string{"patients"}, BatcherConfig{MaxBatch: 4, MaxWait: time.Hour})
	// Neutralize the timer: this test must flush on size alone.
	b.after = func(d time.Duration, f func()) *time.Timer { return time.NewTimer(time.Hour) }

	var wg sync.WaitGroup
	outs := make([][]string, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], _ = b.Do(context.Background(), []string{"q", fmt.Sprint(i)})
		}(i)
	}
	wg.Wait()
	for i, out := range outs {
		if len(out) == 0 {
			t.Fatalf("row %d got no decode", i)
		}
	}
	if model.batched.Load() != 1 || model.single.Load() != 0 {
		t.Fatalf("decodes: batched=%d single=%d, want one batched pass", model.batched.Load(), model.single.Load())
	}
	st := b.Snapshot()
	if st.Batches != 1 || st.Items != 4 || st.FlushFull != 1 || st.FlushWait != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MeanBatch != 4 {
		t.Fatalf("mean batch = %v, want 4", st.MeanBatch)
	}
}

// TestBatcherFlushWait: a partial batch flushes when the injected
// timer fires, not before.
func TestBatcherFlushWait(t *testing.T) {
	model := &batchOracle{}
	b := NewBatcher(model, []string{"patients"}, BatcherConfig{MaxBatch: 8, MaxWait: time.Hour})
	fire := make(chan func(), 1)
	b.after = func(d time.Duration, f func()) *time.Timer {
		fire <- f
		return time.NewTimer(time.Hour)
	}

	done := make(chan []string, 1)
	go func() {
		out, _ := b.Do(context.Background(), []string{"q"})
		done <- out
	}()
	flush := <-fire
	select {
	case <-done:
		t.Fatal("partial batch decoded before its timer fired")
	case <-time.After(10 * time.Millisecond):
	}
	flush()
	if out := <-done; len(out) == 0 {
		t.Fatal("timer flush produced no decode")
	}
	st := b.Snapshot()
	if st.FlushWait != 1 || st.FlushFull != 0 || st.Items != 1 {
		t.Fatalf("stats = %+v, want one timer flush", st)
	}
}

// TestBatcherCancellation: a request cancelled while queued leaves
// immediately and the flush decodes only the live slots.
func TestBatcherCancellation(t *testing.T) {
	model := &batchOracle{}
	b := NewBatcher(model, []string{"patients"}, BatcherConfig{MaxBatch: 8, MaxWait: time.Hour})
	fire := make(chan func(), 1)
	b.after = func(d time.Duration, f func()) *time.Timer {
		fire <- f
		return time.NewTimer(time.Hour)
	}

	ctx, cancel := context.WithCancel(context.Background())
	gone := make(chan error, 1)
	go func() {
		_, err := b.Do(ctx, []string{"dead"})
		gone <- err
	}()
	flush := <-fire
	live := make(chan []string, 1)
	go func() {
		out, _ := b.Do(context.Background(), []string{"alive"})
		live <- out
	}()
	// Wait until the live request has actually joined the batch:
	// flushing before then would strand it in a new batch whose
	// neutralized timer never fires.
	deadline := time.Now().Add(2 * time.Second)
	for {
		b.mu.Lock()
		joined := b.cur != nil && len(b.cur.items) == 2
		b.mu.Unlock()
		if joined {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("live request never joined the batch")
		}
		time.Sleep(time.Millisecond)
	}

	cancel()
	if err := <-gone; err != context.Canceled {
		t.Fatalf("cancelled Do = %v, want context.Canceled", err)
	}
	flush()
	if out := <-live; len(out) == 0 {
		t.Fatal("live batchmate lost its decode")
	}
	st := b.Snapshot()
	if st.Cancelled != 1 || st.Items != 1 {
		t.Fatalf("stats = %+v, want 1 cancelled + 1 live item", st)
	}
	// A pre-cancelled context never joins a batch at all.
	if _, err := b.Do(ctx, []string{"x"}); err != context.Canceled {
		t.Fatalf("pre-cancelled Do = %v", err)
	}
}

// TestBatcherPanicContained: a panicking model fails every batchmate
// with an error instead of killing their goroutines.
func TestBatcherPanicContained(t *testing.T) {
	b := NewBatcher(panicTranslator{}, []string{"patients"}, BatcherConfig{MaxBatch: 2, MaxWait: time.Hour})
	b.after = func(d time.Duration, f func()) *time.Timer { return time.NewTimer(time.Hour) }
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = b.Do(context.Background(), []string{"q"})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil || !strings.Contains(err.Error(), "panicked") {
			t.Fatalf("batchmate %d err = %v, want contained panic", i, err)
		}
	}
}

// panicTranslator panics on every decode path.
type panicTranslator struct{}

func (panicTranslator) Name() string           { return "panic" }
func (panicTranslator) Train([]models.Example) {}
func (panicTranslator) Translate(nl, st []string) []string {
	panic("poisoned decode")
}
func (panicTranslator) TranslateBatch(nls [][]string, st []string) [][]string {
	panic("poisoned batch decode")
}

// TestServerBatchesDistinctQuestions: with the cache deduplicating
// identical questions, distinct concurrent questions share one
// batched forward pass through the full server stack.
func TestServerBatchesDistinctQuestions(t *testing.T) {
	model := &batchOracle{}
	s, ts := newTestServer(t, model, Config{
		CacheSize: 64,
		BatchMax:  3,
		BatchWait: 200 * time.Millisecond,
		Workers:   8,
		Queue:     16,
	})
	// Distinct question *shapes*: constant variations alone would share
	// an anonymized cache key and coalesce instead of batching.
	questions := []string{
		"show the names of all patients with age 80",
		"show the diagnosis of all patients with age 80",
		"show the gender of all patients with age 80",
	}
	var wg sync.WaitGroup
	for _, q := range questions {
		wg.Add(1)
		go func(q string) {
			defer wg.Done()
			var resp askResponse
			if code := getJSON(t, ts.URL+"/ask?q="+urlQuery(q), &resp); code != http.StatusOK {
				t.Errorf("ask(%q) = %d", q, code)
			}
		}(q)
	}
	wg.Wait()
	st := s.Snapshot()
	if st.Batcher == nil || st.Batcher.Items == 0 {
		t.Fatalf("batcher stats = %+v, want recorded items", st.Batcher)
	}
	if model.batched.Load() == 0 && st.Batcher.Batches == st.Batcher.Items {
		t.Logf("note: requests never overlapped; batching degenerated to singletons (stats %+v)", st.Batcher)
	}
	if total := st.Batcher.Items; total != 3 {
		t.Fatalf("batcher carried %d items, want 3 (distinct questions are not coalesced by the cache)", total)
	}
	if st.Cache.Misses != 3 {
		t.Fatalf("cache misses = %d, want 3 distinct keys", st.Cache.Misses)
	}
}

// TestTranslateTraceCacheField: /translate reports the cache outcome
// in its trace-backed response... the Trace.Cache field feeds the
// tier trace; verify via a direct translate call.
func TestTranslateTraceCacheField(t *testing.T) {
	model := &batchOracle{}
	s, _ := newTestServer(t, model, Config{CacheSize: 64})
	_, trace, err := s.translate(context.Background(), s.defaultVersion(), goodQuestion)
	if err != nil {
		t.Fatal(err)
	}
	if trace.Cache != cache.Miss.String() {
		t.Fatalf("cold trace.Cache = %q, want miss", trace.Cache)
	}
	_, trace, err = s.translate(context.Background(), s.defaultVersion(), goodQuestion)
	if err != nil || trace.Cache != cache.Hit.String() {
		t.Fatalf("warm trace.Cache = %q (err %v), want hit", trace.Cache, err)
	}
	if !strings.Contains(trace.String(), "cache:      hit") {
		t.Fatalf("trace rendering missing cache line:\n%s", trace.String())
	}
}
