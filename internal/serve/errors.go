package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/runtime"
)

// ErrorKind is the serving layer's error taxonomy. Every failed
// request maps to exactly one kind, carried in the JSON error body,
// so callers can tell a request they must fix (validation) from one
// they should retry elsewhere (shed) from one that aged out (timeout)
// from one the backend could not answer (tier_exhausted).
type ErrorKind string

// The error taxonomy (DESIGN.md, "Serving layer").
const (
	// KindValidation: the question itself is malformed; retrying the
	// identical request can never succeed.
	KindValidation ErrorKind = "validation"
	// KindShed: the waiting room was full and admission control turned
	// the request away; retry after the hinted delay.
	KindShed ErrorKind = "shed"
	// KindTimeout: the per-request deadline expired before a tier
	// answered.
	KindTimeout ErrorKind = "timeout"
	// KindTierExhausted: every translator tier failed or was skipped
	// by an open breaker.
	KindTierExhausted ErrorKind = "tier_exhausted"
	// KindDraining: the server is shutting down and no longer admits
	// work.
	KindDraining ErrorKind = "draining"
	// KindInternal: everything else (execution failure on translated
	// SQL, encoding problems).
	KindInternal ErrorKind = "internal"
	// KindNotFound: the request names a schema no tenant serves (or a
	// route that does not exist under /v1/).
	KindNotFound ErrorKind = "unknown_schema"
	// KindOnboarding: the tenant exists but its first model is still
	// building; retry once GET /schemas/{name} reports ready.
	KindOnboarding ErrorKind = "onboarding"
)

// HTTPStatus maps the kind to its response status code.
func (k ErrorKind) HTTPStatus() int {
	switch k {
	case KindValidation:
		return http.StatusBadRequest
	case KindShed:
		return http.StatusTooManyRequests
	case KindTimeout:
		return http.StatusGatewayTimeout
	case KindTierExhausted:
		return http.StatusBadGateway
	case KindDraining, KindOnboarding:
		return http.StatusServiceUnavailable
	case KindNotFound:
		return http.StatusNotFound
	}
	return http.StatusInternalServerError
}

// apiError is the JSON error body: {"error":{"kind":...,"message":...}}.
type apiError struct {
	Kind    ErrorKind `json:"kind"`
	Message string    `json:"message"`
	// RetryAfterSec mirrors the Retry-After header on shed responses.
	RetryAfterSec int `json:"retry_after_sec,omitempty"`
}

type errorEnvelope struct {
	Error apiError `json:"error"`
}

// writeError renders one taxonomy error as JSON. retryAfterSec > 0
// additionally sets the Retry-After header (shed responses).
func writeError(w http.ResponseWriter, kind ErrorKind, retryAfterSec int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	if retryAfterSec > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSec))
	}
	w.WriteHeader(kind.HTTPStatus())
	writeJSON(w, errorEnvelope{Error: apiError{
		Kind:          kind,
		Message:       fmt.Sprintf(format, args...),
		RetryAfterSec: retryAfterSec,
	}})
}

// writeJSON encodes v to w. An encode failure means the client hung
// up mid-response; there is nobody left to tell, so the error is
// deliberately dropped.
func writeJSON(w http.ResponseWriter, v any) {
	_ = json.NewEncoder(w).Encode(v)
}

// classify maps a translation failure onto the taxonomy. Validation
// and deadline failures are recognized by type; a critic rejection of
// every candidate is tier exhaustion carrying the per-candidate
// verdict summary in its message (never a generic internal error);
// everything else that came out of the tier chain is tier exhaustion
// too.
func classify(err error) ErrorKind {
	var verr *runtime.ValidationError
	var rerr *runtime.RejectedError
	switch {
	case errors.As(err, &verr):
		return KindValidation
	case errors.As(err, &rerr):
		return KindTierExhausted
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return KindTimeout
	default:
		return KindTierExhausted
	}
}

// retryable reports whether a failed translation is worth retrying on
// the same server: transient tier failures are; malformed input,
// expired deadlines, and critic rejections (the decode is
// deterministic, so resubmission reproduces the same rejected beam)
// are not.
func retryable(err error) bool {
	var rerr *runtime.RejectedError
	if errors.As(err, &rerr) {
		return false
	}
	switch classify(err) {
	case KindValidation, KindTimeout:
		return false
	}
	return true
}
