package serve

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/par"
)

// fakeClock is a manually advanced clock; breaker transitions under it
// are fully deterministic.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func testBreaker(clk *fakeClock) *Breaker {
	return NewBreaker(BreakerConfig{
		Window:      8,
		MinSamples:  4,
		FailureRate: 0.5,
		Cooldown:    10 * time.Second,
		Now:         clk.Now,
	})
}

var errTier = errors.New("tier failed")

// TestBreakerTripsAtFailureRate: closed until the window shows the
// configured failure rate over at least MinSamples, then open.
func TestBreakerTripsAtFailureRate(t *testing.T) {
	b := testBreaker(newFakeClock())
	// Three straight failures: below MinSamples, still closed.
	for i := 0; i < 3; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed breaker rejected request %d: %v", i, err)
		}
		b.Record(errTier)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after 3 failures = %v, want closed (MinSamples not reached)", got)
	}
	// The fourth failure reaches MinSamples at 100% failure rate.
	b.Record(errTier)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after 4 failures = %v, want open", got)
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker allowed a request: %v", err)
	}
	if b.Trips() != 1 {
		t.Fatalf("Trips = %d, want 1", b.Trips())
	}
}

// TestBreakerStaysClosedBelowRate: a minority of failures never trips.
func TestBreakerStaysClosedBelowRate(t *testing.T) {
	b := testBreaker(newFakeClock())
	for i := 0; i < 40; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("request %d rejected: %v", i, err)
		}
		if i%4 == 0 { // 1/4 failure rate: below 0.5 in every window prefix
			b.Record(errTier)
		} else {
			b.Record(nil)
		}
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state = %v, want closed at 1/4 failure rate", got)
	}
}

// TestBreakerHalfOpenProbeSuccessCloses: after the cooldown, exactly
// one probe is admitted; its success closes the circuit with a clean
// window.
func TestBreakerHalfOpenProbeSuccessCloses(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk)
	for i := 0; i < 4; i++ {
		b.Record(errTier)
	}
	if b.State() != BreakerOpen {
		t.Fatal("breaker not open")
	}
	// Mid-cooldown: still rejecting.
	clk.Advance(9 * time.Second)
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("mid-cooldown Allow = %v, want open", err)
	}
	// Cooldown over: the first Allow is the probe, the second is not.
	clk.Advance(2 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe not admitted: %v", err)
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("second caller admitted during probe: %v", err)
	}
	b.Record(nil)
	if b.State() != BreakerClosed {
		t.Fatalf("state after probe success = %v, want closed", b.State())
	}
	// The window restarted: one failure does not immediately re-trip.
	b.Record(errTier)
	if b.State() != BreakerClosed {
		t.Fatal("stale window survived the reset")
	}
}

// TestBreakerHalfOpenProbeFailureReopens: a failed probe re-opens and
// restarts the cooldown.
func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk)
	for i := 0; i < 4; i++ {
		b.Record(errTier)
	}
	clk.Advance(11 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe not admitted: %v", err)
	}
	b.Record(errTier)
	if b.State() != BreakerOpen {
		t.Fatalf("state after probe failure = %v, want open", b.State())
	}
	if b.Trips() != 2 {
		t.Fatalf("Trips = %d, want 2", b.Trips())
	}
	// The cooldown restarted at the probe failure.
	clk.Advance(9 * time.Second)
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("cooldown did not restart: %v", err)
	}
	clk.Advance(2 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("second probe not admitted: %v", err)
	}
}

// TestBreakerLateResultWhileOpenIgnored: an outcome arriving after the
// trip (a request admitted before it) does not perturb the machine.
func TestBreakerLateResultWhileOpenIgnored(t *testing.T) {
	b := testBreaker(newFakeClock())
	for i := 0; i < 4; i++ {
		b.Record(errTier)
	}
	b.Record(nil) // late success from a pre-trip request
	if b.State() != BreakerOpen {
		t.Fatalf("late result changed state to %v", b.State())
	}
}

// TestBreakerConcurrentDeterministic: hammer Allow/Record from many
// goroutines under -race; with a constant failure outcome the machine
// must end open, exactly one probe wins after cooldown, and counters
// stay consistent at any interleaving.
func TestBreakerConcurrentDeterministic(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk)
	const workers = 8
	results := make([]int, workers) // 1 = admitted
	par.Map(workers, workers, func(i int) {
		for j := 0; j < 50; j++ {
			if b.Allow() == nil {
				b.Record(errTier)
			}
		}
	})
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open after saturation with failures", b.State())
	}
	clk.Advance(11 * time.Second)
	par.Map(workers, workers, func(i int) {
		if b.Allow() == nil {
			results[i] = 1
		}
	})
	admitted := 0
	for _, r := range results {
		admitted += r
	}
	if admitted != 1 {
		t.Fatalf("half-open admitted %d probes, want exactly 1", admitted)
	}
	b.Record(nil)
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v, want closed after probe success", b.State())
	}
}

// TestTierBreakersIsolatePerTier: one tier tripping does not gate
// another, and States names every tier seen.
func TestTierBreakersIsolatePerTier(t *testing.T) {
	tb := NewTierBreakers(BreakerConfig{Window: 4, MinSamples: 2, FailureRate: 0.5, Cooldown: time.Hour, Now: newFakeClock().Now})
	for i := 0; i < 2; i++ {
		tb.Record("primary", errTier)
	}
	tb.Record("fallback", nil)
	if err := tb.Allow("primary"); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("tripped tier admitted: %v", err)
	}
	if err := tb.Allow("fallback"); err != nil {
		t.Fatalf("healthy tier rejected: %v", err)
	}
	states := tb.States()
	if states["primary"] != "open" || states["fallback"] != "closed" {
		t.Fatalf("States = %v", states)
	}
}

// TestBreakerStateStrings pins the /statsz state names.
func TestBreakerStateStrings(t *testing.T) {
	for want, s := range map[string]BreakerState{
		"closed": BreakerClosed, "open": BreakerOpen, "half-open": BreakerHalfOpen,
	} {
		if got := s.String(); got != want {
			t.Fatalf("String(%d) = %q, want %q", int(s), got, want)
		}
	}
	if got := BreakerState(9).String(); got != fmt.Sprintf("state(%d)", 9) {
		t.Fatalf("unknown state renders %q", got)
	}
}
