package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/models"
	"repro/internal/patients"
	"repro/internal/runtime"
)

// ---------------------------------------------------------------------
// Fixture: a tiny trained seq2seq over the patients schema. Training
// uses the real serving-time schema serialization so decode inputs at
// bench time match training exactly.
// ---------------------------------------------------------------------

func benchExamples() []models.Example {
	st := models.SchemaTokens(patients.Schema())
	mk := func(nl, sql string) models.Example {
		return models.Example{NL: strings.Fields(nl), SQL: strings.Fields(sql), Schema: st}
	}
	return []models.Example{
		mk("show the name of patient with age @PATIENTS.AGE", "SELECT name FROM patients WHERE age = @PATIENTS.AGE"),
		mk("show the diagnosis of patient with age @PATIENTS.AGE", "SELECT diagnosis FROM patients WHERE age = @PATIENTS.AGE"),
		mk("how many patient be there", "SELECT COUNT ( * ) FROM patients"),
		mk("what be the average age of patient", "SELECT AVG ( age ) FROM patients"),
		mk("list patient with diagnosis @PATIENTS.DIAGNOSIS", "SELECT * FROM patients WHERE diagnosis = @PATIENTS.DIAGNOSIS"),
	}
}

var (
	benchModelOnce sync.Once
	benchModelVal  *models.Seq2Seq
)

// benchSeq2Seq trains the fixture model once per test binary.
func benchSeq2Seq() *models.Seq2Seq {
	benchModelOnce.Do(func() {
		cfg := models.DefaultSeq2SeqConfig()
		cfg.Epochs = 150
		cfg.EmbDim = 24
		cfg.HidDim = 48
		m := models.NewSeq2Seq(cfg)
		m.Train(benchExamples())
		benchModelVal = m
	})
	return benchModelVal
}

// benchWorkload mixes the trained shapes with many constant
// variations: with the cache on, each shape decodes once and every
// variation after that is a hit.
func benchWorkload() []string {
	ages := []int{80, 34, 45, 67, 72, 29, 55, 61}
	var qs []string
	for _, a := range ages {
		qs = append(qs,
			fmt.Sprintf("show the name of patient with age %d", a),
			fmt.Sprintf("show the diagnosis of patient with age %d", a))
	}
	qs = append(qs, "how many patient be there", "what be the average age of patient")
	return qs
}

// ---------------------------------------------------------------------
// Measurement core: drive the handler in-process (no sockets), record
// per-request latency, summarize.
// ---------------------------------------------------------------------

type hotMetrics struct {
	P50NS  float64 `json:"p50_ns"`
	P99NS  float64 `json:"p99_ns"`
	QPS    float64 `json:"qps"`
	Failed int     `json:"-"`
}

// measureServe issues total /translate requests from `clients`
// concurrent goroutines against a fresh server over the fixture DB
// and returns the latency/throughput summary. Each variant gets its
// own runtime.Translator because New wires hooks into it.
func measureServe(tb testing.TB, model models.Translator, cfg Config, questions []string, total, clients int) hotMetrics {
	tb.Helper()
	db, err := patients.Database()
	if err != nil {
		tb.Fatal(err)
	}
	tr := runtime.NewTranslator(db, model)
	s := New(tr, cfg)
	h := s.Handler()

	do := func(q string) (time.Duration, int) {
		req := httptest.NewRequest(http.MethodGet, "/translate?q="+urlQuery(q), nil)
		w := httptest.NewRecorder()
		t0 := time.Now()
		h.ServeHTTP(w, req)
		return time.Since(t0), w.Code
	}
	// Warm: one request per distinct question, so a cache-on run
	// measures the steady state and a cache-off run is unaffected
	// (every request decodes regardless).
	for _, q := range questions {
		if _, code := do(q); code != http.StatusOK {
			tb.Fatalf("warmup %q = %d", q, code)
		}
	}

	durations := make([]time.Duration, total)
	var failed atomic.Int64
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(total) {
					return
				}
				d, code := do(questions[i%int64(len(questions))])
				durations[i] = d
				if code != http.StatusOK {
					failed.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(durations, func(a, b int) bool { return durations[a] < durations[b] })
	pct := func(p float64) float64 {
		i := int(p * float64(total-1))
		return float64(durations[i].Nanoseconds())
	}
	return hotMetrics{
		P50NS:  pct(0.50),
		P99NS:  pct(0.99),
		QPS:    float64(total) / elapsed.Seconds(),
		Failed: int(failed.Load()),
	}
}

// benchVariants is the cache × batch sweep shared by the benchmark
// and the regression gate.
func benchVariants() []struct {
	Name string
	Cfg  Config
} {
	base := func() Config { return Config{Workers: 8, Queue: 1 << 16} }
	withCache := func(c Config) Config { c.CacheSize = 1024; return c }
	withBatch := func(c Config, n int) Config { c.BatchMax = n; c.BatchWait = time.Millisecond; return c }
	withCritic := func(c Config) Config { c.Critic = true; return c }
	return []struct {
		Name string
		Cfg  Config
	}{
		{"cache=off/batch=off", base()},
		{"cache=off/batch=8", withBatch(base(), 8)},
		{"cache=on/batch=off", withCache(base())},
		{"cache=on/batch=8", withBatch(withCache(base()), 8)},
		{"cache=off/critic=on", withCritic(base())},
		{"cache=on/critic=on", withCritic(withCache(base()))},
	}
}

// BenchmarkServe sweeps the inference hot path: cache on/off × batch
// size × client concurrency, reporting QPS and latency percentiles.
// This is the source of BENCH_serve.json:
//
//	go test -bench BenchmarkServe -benchtime 300x -run '^$' ./internal/serve/
func BenchmarkServe(b *testing.B) {
	model := benchSeq2Seq()
	questions := benchWorkload()
	for _, v := range benchVariants() {
		for _, clients := range []int{1, 8} {
			b.Run(fmt.Sprintf("%s/clients=%d", v.Name, clients), func(b *testing.B) {
				m := measureServe(b, model, v.Cfg, questions, b.N, clients)
				if m.Failed > 0 {
					b.Fatalf("%d/%d requests failed", m.Failed, b.N)
				}
				b.ReportMetric(m.QPS, "qps")
				b.ReportMetric(m.P50NS, "p50-ns")
				b.ReportMetric(m.P99NS, "p99-ns")
			})
		}
	}
}

// ---------------------------------------------------------------------
// Regression gate.
// ---------------------------------------------------------------------

// benchBaseline mirrors BENCH_serve.json.
type benchBaseline struct {
	Gates struct {
		// CacheHitSpeedupMin is the floor on cold-p50 / warm-hit-p50.
		CacheHitSpeedupMin float64 `json:"cache_hit_speedup_min"`
		// BatchMeanMin is the floor on the mean decode batch size under
		// 8 concurrent clients of distinct shapes with batching on.
		BatchMeanMin float64 `json:"batch_mean_min"`
		// CriticP50OverheadMax is the ceiling on critic-on cold p50 /
		// critic-off cold p50: how much latency the execution-guided
		// validation layer may add to an uncached decode.
		CriticP50OverheadMax float64 `json:"critic_p50_overhead_max"`
		// ToleranceFrac is the +-fraction applied to the floors, per
		// the serving bench contract.
		ToleranceFrac float64 `json:"tolerance_frac"`
	} `json:"gates"`
}

// TestServeBenchGate is the CI serve-bench gate: a short-form
// measurement of the hot path compared against the floors checked in
// to BENCH_serve.json (with its tolerance). Machine-independent
// ratios, not wall-clock, are gated. Opt in with DBPAL_BENCH_GATE=1 —
// it measures latency distributions and would be noise under -race or
// a loaded laptop.
func TestServeBenchGate(t *testing.T) {
	if os.Getenv("DBPAL_BENCH_GATE") != "1" {
		t.Skip("set DBPAL_BENCH_GATE=1 to run the serve bench gate")
	}
	raw, err := os.ReadFile("../../BENCH_serve.json")
	if err != nil {
		t.Fatalf("baseline missing: %v", err)
	}
	var base benchBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatalf("baseline unreadable: %v", err)
	}
	tol := base.Gates.ToleranceFrac
	if tol <= 0 || tol >= 1 {
		t.Fatalf("baseline tolerance_frac = %v, want (0,1)", tol)
	}
	model := benchSeq2Seq()
	questions := benchWorkload()

	// Cold decode p50: no cache, serial clients.
	cold := measureServe(t, model, Config{Workers: 8, Queue: 1 << 16}, questions, 120, 1)
	// Warm hit p50: cache on (measureServe pre-warms every key).
	warm := measureServe(t, model, Config{Workers: 8, Queue: 1 << 16, CacheSize: 1024}, questions, 2000, 1)
	if cold.Failed+warm.Failed > 0 {
		t.Fatalf("failed requests: cold=%d warm=%d", cold.Failed, warm.Failed)
	}
	speedup := cold.P50NS / warm.P50NS
	if floor := base.Gates.CacheHitSpeedupMin * (1 - tol); speedup < floor {
		t.Errorf("cache-hit speedup = %.1fx (cold p50 %.0fns / hit p50 %.0fns), below gate %.1fx",
			speedup, cold.P50NS, warm.P50NS, floor)
	}

	// Critic overhead: every cold decode additionally pays the static
	// checks and a sandboxed dry-run. The ratio over the critic-off
	// cold p50 is gated so the validation layer cannot quietly eat
	// the hot path.
	criticCold := measureServe(t, model, Config{Workers: 8, Queue: 1 << 16, Critic: true}, questions, 120, 1)
	if criticCold.Failed > 0 {
		t.Fatalf("failed requests with critic on: %d", criticCold.Failed)
	}
	overhead := criticCold.P50NS / cold.P50NS
	if ceil := base.Gates.CriticP50OverheadMax * (1 + tol); overhead > ceil {
		t.Errorf("critic p50 overhead = %.2fx (on %.0fns / off %.0fns), above gate %.2fx",
			overhead, criticCold.P50NS, cold.P50NS, ceil)
	}

	// Batching efficacy: 8 clients, distinct shapes per request, no
	// cache so every request decodes; the mean batch must clear the
	// floor.
	db, err := patients.Database()
	if err != nil {
		t.Fatal(err)
	}
	tr := runtime.NewTranslator(db, model)
	s := New(tr, Config{Workers: 8, Queue: 1 << 16, BatchMax: 8, BatchWait: 2 * time.Millisecond})
	h := s.Handler()
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				q := questions[(c+2*i)%len(questions)]
				req := httptest.NewRequest(http.MethodGet, "/translate?q="+urlQuery(q), nil)
				w := httptest.NewRecorder()
				h.ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					t.Errorf("ask(%q) = %d", q, w.Code)
				}
			}
		}(c)
	}
	wg.Wait()
	bst := s.Snapshot().Batcher
	if bst == nil || bst.Items != 200 {
		t.Fatalf("batcher stats = %+v, want all 200 decodes through the batcher", bst)
	}
	if floor := base.Gates.BatchMeanMin * (1 - tol); bst.MeanBatch < floor {
		t.Errorf("mean batch = %.2f, below gate %.2f (stats %+v)", bst.MeanBatch, floor, bst)
	}
	t.Logf("cache-hit speedup %.1fx (cold p50 %.0fns, hit p50 %.0fns); critic p50 overhead %.2fx; mean batch %.2f",
		speedup, cold.P50NS, warm.P50NS, overhead, bst.MeanBatch)
}
