// Package serve is the hardened concurrent serving layer over the
// runtime phase: it exposes runtime.Translator as a long-lived
// net/http service that stays correct and responsive under overload,
// slow models, and injected faults. The robustness stack, outside-in:
//
//   - Admission control: a concurrency limiter (par.Limiter) sized to
//     the worker count plus a bounded waiting room. When both are
//     full, the request is shed with 429 + Retry-After instead of
//     queueing unboundedly — under overload, latency stays bounded
//     and the queue never grows past its cap.
//   - Per-request deadlines: every admitted request runs under a
//     context deadline that propagates into the translator's
//     Deadline/Fallbacks chain; expiry is a typed timeout response,
//     and the abandoned tier costs at most a goroutine, never a slot.
//   - Circuit breakers: one Breaker per translator tier, plugged into
//     the chain as a runtime.TierHook. A persistently failing or slow
//     primary trips open and is skipped without paying its deadline;
//     after a cooldown a half-open probe decides recovery.
//   - Retry: transient chain failures are retried with capped
//     exponential backoff and seeded jitter — never validation
//     errors, which cannot succeed on resubmission.
//   - Graceful drain: Drain flips /readyz to 503 so load balancers
//     stop routing; Shutdown then stops accepting and lets in-flight
//     requests finish under the caller's drain deadline.
//
// Endpoints: POST/GET /ask (translate + execute), /translate
// (translate only, with the lifecycle trace), /healthz (liveness),
// /readyz (readiness, drain-aware), /statsz (JSON Stats snapshot).
// Failures use the ErrorKind taxonomy in errors.go.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/par"
	"repro/internal/runtime"
	"repro/internal/sqlast"
)

// Config sizes the robustness stack. The zero value gets defaults
// suitable for tests and small deployments.
type Config struct {
	// Workers bounds concurrent translations (0 = NumCPU).
	Workers int
	// Queue is the waiting-room size: requests beyond Workers that
	// may wait for a slot before shedding starts (0 = 2×Workers,
	// negative = no waiting room).
	Queue int
	// Timeout is the default per-request deadline (0 = 10s). Clients
	// may lower it per request with timeout_ms, never raise it.
	Timeout time.Duration
	// Retry is the transient-failure retry policy (zero = no retry).
	Retry RetryPolicy
	// Breaker parameterizes the per-tier circuit breakers; set
	// DisableBreakers to run without them.
	Breaker         BreakerConfig
	DisableBreakers bool
	// CacheSize enables the anonymization-keyed result cache with this
	// many entries (0 = no cache). Keys are the lemmatized anonymized
	// question, so every constant variation of a query shape shares
	// one cached decode; CacheShards optionally overrides the shard
	// count (0 = the cache package default).
	CacheSize   int
	CacheShards int
	// BatchMax enables cross-request microbatching when >= 2: up to
	// BatchMax concurrent cache-missing decodes share one batched
	// forward pass, with partial batches flushed after BatchWait
	// (0 = the batcher default, 2ms). 0 or 1 disables batching.
	BatchMax  int
	BatchWait time.Duration
}

func (c Config) withDefaults() Config {
	c.Workers = par.Count(c.Workers)
	if c.Queue == 0 {
		c.Queue = 2 * c.Workers
	}
	if c.Queue < 0 {
		c.Queue = 0
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	return c
}

// Server wraps one runtime.Translator behind the robustness stack.
// Create it with New, mount Handler (or Start/Shutdown for a managed
// listener), and it is safe for any number of concurrent requests.
type Server struct {
	tr       *runtime.Translator
	cfg      Config
	limiter  *par.Limiter
	breakers *TierBreakers
	cache    *cache.Cache[*runtime.DecodeResult]
	batcher  *Batcher
	stats    *counters
	mux      *http.ServeMux
	http     *http.Server

	waiting  atomic.Int64
	draining atomic.Bool
	reqSeq   atomic.Int64
}

// New wires the stack around tr. Unless cfg.DisableBreakers is set,
// tr.Hook is replaced with the server's per-tier breakers — the
// breaker hook point of the degradation chain.
func New(tr *runtime.Translator, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		tr:      tr,
		cfg:     cfg,
		limiter: par.NewLimiter(cfg.Workers),
		stats:   newCounters(),
		mux:     http.NewServeMux(),
	}
	if !cfg.DisableBreakers {
		s.breakers = NewTierBreakers(cfg.Breaker)
		tr.Hook = s.breakers
	}
	if cfg.CacheSize > 0 {
		s.cache = cache.New[*runtime.DecodeResult](cache.Config{
			Capacity: cfg.CacheSize,
			Shards:   cfg.CacheShards,
		})
	}
	if cfg.BatchMax >= 2 && tr.Model != nil {
		// The primary model decodes through the microbatcher; wrapping
		// it keeps the tier chain (breakers, deadlines, fallbacks)
		// oblivious to batching.
		s.batcher = NewBatcher(tr.Model, tr.SchemaTokens(), BatcherConfig{
			MaxBatch: cfg.BatchMax,
			MaxWait:  cfg.BatchWait,
		})
		tr.Model = batchingModel{inner: tr.Model, b: s.batcher}
	}
	s.mux.HandleFunc("/ask", func(w http.ResponseWriter, r *http.Request) { s.answer(w, r, true) })
	s.mux.HandleFunc("/translate", func(w http.ResponseWriter, r *http.Request) { s.answer(w, r, false) })
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/statsz", s.handleStatsz)
	s.http = &http.Server{Handler: s.mux}
	return s
}

// Handler returns the routed handler, for tests and custom listeners.
func (s *Server) Handler() http.Handler { return s.mux }

// Start serves on ln in the background and returns the channel that
// yields http.Server.Serve's error when the listener closes
// (http.ErrServerClosed after a clean Shutdown).
func (s *Server) Start(ln net.Listener) <-chan error {
	errc := make(chan error, 1)
	//lint:allow rawgo the accept loop must run beside the signal handler; net/http owns the per-connection concurrency
	go func() { errc <- s.http.Serve(ln) }()
	return errc
}

// Drain flips the server to draining: /readyz answers 503 and new
// work is rejected with the draining error, while requests already
// admitted keep running. Load balancers watch /readyz, so calling
// Drain before Shutdown gives them time to stop routing here.
func (s *Server) Drain() { s.draining.Store(true) }

// Draining reports whether Drain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Shutdown drains and then stops the listener started by Start,
// waiting for in-flight requests to finish until ctx expires.
func (s *Server) Shutdown(ctx context.Context) error {
	s.Drain()
	return s.http.Shutdown(ctx)
}

// Snapshot assembles the current Stats.
func (s *Server) Snapshot() Stats {
	st := Stats{
		Draining:   s.draining.Load(),
		Capacity:   s.cfg.Workers,
		QueueCap:   s.cfg.Queue,
		InFlight:   s.limiter.InUse(),
		QueueDepth: s.waiting.Load(),
		Accepted:   s.stats.accepted.Load(),
		Completed:  s.stats.completed.Load(),
		Failed:     s.stats.failed.Load(),
		Shed:       s.stats.shed.Load(),
		Timeouts:   s.stats.timeouts.Load(),
		Validation: s.stats.validation.Load(),
		Retries:    s.stats.retries.Load(),
		Tiers:      s.stats.tierCounts(),
		Breakers:   map[string]string{},
	}
	if s.breakers != nil {
		st.Breakers = s.breakers.States()
	}
	if s.cache != nil {
		cs := s.cache.Snapshot()
		st.Cache = &cs
	}
	if s.batcher != nil {
		bs := s.batcher.Snapshot()
		st.Batcher = &bs
	}
	return st
}

// ---------------------------------------------------------------------
// Request handling.
// ---------------------------------------------------------------------

// askRequest is the POST body of /ask and /translate; GET requests
// use ?q= and ?timeout_ms= instead.
type askRequest struct {
	Question  string `json:"question"`
	TimeoutMS int    `json:"timeout_ms"`
}

// askResponse is the success body.
type askResponse struct {
	Question string `json:"question"`
	SQL      string `json:"sql"`
	// Tier names the translator tier that answered.
	Tier string `json:"tier"`
	// TierErrors lists the failed tiers ahead of the answering one.
	TierErrors []string `json:"tier_errors,omitempty"`
	// Columns/Rows carry the execution result on /ask (absent on
	// /translate).
	Columns []string   `json:"columns,omitempty"`
	Rows    [][]string `json:"rows,omitempty"`
	Retries int        `json:"retries,omitempty"`
}

// answer is the shared /ask (execute=true) and /translate handler.
func (s *Server) answer(w http.ResponseWriter, r *http.Request, execute bool) {
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		w.Header().Set("Allow", "GET, POST")
		writeError(w, KindValidation, 0, "method %s not allowed; use GET or POST", r.Method)
		return
	}
	if s.draining.Load() {
		writeError(w, KindDraining, 0, "server is draining")
		return
	}
	req, err := parseAsk(r)
	if err != nil {
		s.stats.validation.Add(1)
		writeError(w, KindValidation, 0, "%v", err)
		return
	}

	// Admission control: take a slot immediately if one is free; else
	// join the bounded waiting room or shed.
	if !s.limiter.TryAcquire() {
		if s.waiting.Add(1) > int64(s.cfg.Queue) {
			s.waiting.Add(-1)
			s.stats.shed.Add(1)
			writeError(w, KindShed, 1, "server at capacity (%d in flight, %d queued); retry later",
				s.cfg.Workers, s.cfg.Queue)
			return
		}
		werr := s.limiter.Acquire(r.Context())
		s.waiting.Add(-1)
		if werr != nil {
			// The client went away while queued.
			s.stats.timeouts.Add(1)
			writeError(w, KindTimeout, 0, "request cancelled while queued: %v", werr)
			return
		}
	}
	defer s.limiter.Release()
	s.stats.accepted.Add(1)

	timeout := s.cfg.Timeout
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	var (
		q     *sqlast.Query
		trace *runtime.Trace
	)
	retries, terr := s.cfg.Retry.Do(ctx, s.reqSeq.Add(1), retryable, func() error {
		var ferr error
		q, trace, ferr = s.translate(ctx, req.Question)
		return ferr
	})
	s.stats.retries.Add(int64(retries))
	if terr != nil {
		kind := classify(terr)
		if ctx.Err() != nil {
			// Whatever the chain reported, the request deadline is the
			// root cause once it has expired.
			kind = KindTimeout
		}
		s.recordFailure(kind)
		writeError(w, kind, 0, "%v", terr)
		return
	}

	resp := askResponse{
		Question: req.Question,
		SQL:      q.String(),
		Tier:     trace.Tier,
		Retries:  retries,
	}
	resp.TierErrors = append(resp.TierErrors, trace.TierErrors...)
	if execute {
		res, xerr := s.tr.DB.Execute(q)
		if xerr != nil {
			s.recordFailure(KindInternal)
			writeError(w, KindInternal, 0, "executing %q: %v", q.String(), xerr)
			return
		}
		resp.Columns = res.Columns
		for _, row := range res.Rows {
			out := make([]string, len(row))
			for i, v := range row {
				out[i] = v.String()
			}
			resp.Rows = append(resp.Rows, out)
		}
	}
	s.stats.completed.Add(1)
	s.stats.answeredBy(trace.Tier)
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, resp)
}

// translate runs one question through the inference hot path. With no
// cache configured it is exactly the translator's one-shot entry
// point (batching, when on, already lives inside the primary model).
// With a cache, the pipeline splits: the deterministic pre-processing
// runs first, its lemmatized anonymized output keys the result cache,
// and only a leader that misses pays a decode — concurrent misses for
// the same key coalesce onto that one decode, and each request then
// finalizes the shared binding-independent candidates under its own
// constants. A cached decode that no longer finalizes for this
// request's bindings falls back to one fresh full-strength decode
// rather than failing the request.
func (s *Server) translate(ctx context.Context, question string) (*sqlast.Query, *runtime.Trace, error) {
	if s.cache == nil {
		return s.tr.TranslateTraceContext(ctx, question)
	}
	trace := &runtime.Trace{Question: question}
	anon, nl, err := s.tr.Preprocess(question)
	if err != nil {
		return nil, trace, err
	}
	trace.Anonymized = anon.Tokens
	trace.Bindings = anon.Bindings
	trace.Lemmatized = nl

	// The leader finalizes inside the loader (its decode and bindings
	// belong to the same request); leaderQ carries that answer past
	// the cache, which only stores the binding-independent decode.
	var leaderQ *sqlast.Query
	dec, outcome, err := s.cache.Do(ctx, strings.Join(nl, " "), func(lctx context.Context) (*runtime.DecodeResult, error) {
		q, d, lerr := s.tr.TranslatePrepared(lctx, nl, anon.Bindings, nil, trace)
		leaderQ = q
		return d, lerr
	})
	trace.Cache = outcome.String()
	if err != nil {
		return nil, trace, err
	}
	if outcome == cache.Miss && leaderQ != nil {
		return leaderQ, trace, nil
	}
	q, _, ferr := s.tr.TranslatePrepared(ctx, nl, anon.Bindings, dec, trace)
	if ferr == nil {
		return q, trace, nil
	}
	// Stale for these bindings: re-decode at full strength.
	q, _, err = s.tr.TranslatePrepared(ctx, nl, anon.Bindings, nil, trace)
	return q, trace, err
}

// recordFailure bumps the failure counter for the kind.
func (s *Server) recordFailure(kind ErrorKind) {
	switch kind {
	case KindTimeout:
		s.stats.timeouts.Add(1)
	case KindValidation:
		s.stats.validation.Add(1)
	}
	s.stats.failed.Add(1)
}

// parseAsk extracts the question and optional timeout from either
// request form.
func parseAsk(r *http.Request) (askRequest, error) {
	var req askRequest
	if r.Method == http.MethodGet {
		req.Question = r.URL.Query().Get("q")
		if ms := r.URL.Query().Get("timeout_ms"); ms != "" {
			n, err := strconv.Atoi(ms)
			if err != nil || n < 0 {
				return req, errors.New("timeout_ms must be a non-negative integer")
			}
			req.TimeoutMS = n
		}
		return req, nil
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		return req, errors.New("unreadable request body")
	}
	if err := json.Unmarshal(body, &req); err != nil {
		return req, errors.New("malformed JSON body; want {\"question\": \"...\"}")
	}
	if req.TimeoutMS < 0 {
		return req, errors.New("timeout_ms must be non-negative")
	}
	return req, nil
}

// ---------------------------------------------------------------------
// Probes.
// ---------------------------------------------------------------------

// handleHealthz is liveness: 200 as long as the process serves.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, map[string]string{"status": "ok"})
}

// handleReadyz is readiness: 200 while accepting, 503 once draining.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		writeJSON(w, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, map[string]string{"status": "ready"})
}

// handleStatsz renders the Stats snapshot.
func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, s.Snapshot())
}
