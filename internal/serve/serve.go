// Package serve is the hardened concurrent serving layer over the
// runtime phase: it exposes a registry of runtime.Translator tenants
// as a long-lived net/http service that stays correct and responsive
// under overload, slow models, and injected faults. The robustness
// stack, outside-in:
//
//   - Admission control: a per-tenant concurrency limiter
//     (par.Limiter) sized to the worker count plus a bounded waiting
//     room. When both are full, the request is shed with 429 +
//     Retry-After instead of queueing unboundedly — under overload,
//     latency stays bounded, the queue never grows past its cap, and
//     one tenant's stampede cannot starve another's slots.
//   - Per-request deadlines: every admitted request runs under a
//     context deadline that propagates into the translator's
//     Deadline/Fallbacks chain; expiry is a typed timeout response,
//     and the abandoned tier costs at most a goroutine, never a slot.
//   - Circuit breakers: one Breaker per translator tier per model
//     version, plugged into the chain as a runtime.TierHook. A
//     persistently failing or slow primary trips open and is skipped
//     without paying its deadline; after a cooldown a half-open probe
//     decides recovery. A version swap starts the new model with
//     fresh, closed breakers.
//   - Retry: transient chain failures are retried with capped
//     exponential backoff and seeded jitter (each tenant jitters on
//     its own derived seed) — never validation errors, which cannot
//     succeed on resubmission.
//   - Graceful drain: Drain flips /readyz to 503 so load balancers
//     stop routing; Shutdown then cancels background onboarding
//     (leaving resumable checkpoints), stops accepting, and lets
//     in-flight requests finish under the caller's drain deadline.
//
// Tenant endpoints: /v1/{schema}/ask (translate + execute) and
// /v1/{schema}/translate (translate only), plus the legacy /ask and
// /translate which accept ?schema= and default to the first installed
// tenant. Admin: POST /schemas onboards a new schema in the background
// (generate→train→eval→swap, with onboarding status), GET /schemas
// lists tenants, GET/DELETE /schemas/{name} inspects or removes one.
// Probes: /healthz (liveness), /readyz (readiness, drain-aware),
// /statsz (JSON Stats snapshot with a per-tenant section). Failures
// use the ErrorKind taxonomy in errors.go.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/boot"
	"repro/internal/cache"
	"repro/internal/critic"
	"repro/internal/par"
	"repro/internal/registry"
	"repro/internal/runtime"
	"repro/internal/sqlast"
)

// Config sizes the robustness stack. The zero value gets defaults
// suitable for tests and small deployments.
type Config struct {
	// Workers bounds concurrent translations per tenant (0 = NumCPU).
	Workers int
	// Queue is the per-tenant waiting-room size: requests beyond
	// Workers that may wait for a slot before shedding starts (0 =
	// 2×Workers, negative = no waiting room).
	Queue int
	// Timeout is the default per-request deadline (0 = 10s). Clients
	// may lower it per request with timeout_ms, never raise it.
	Timeout time.Duration
	// Retry is the transient-failure retry policy (zero = no retry).
	// The default tenant jitters on Retry.Seed itself; every other
	// tenant derives a disjoint jitter stream from its name.
	Retry RetryPolicy
	// Breaker parameterizes the per-tier circuit breakers; set
	// DisableBreakers to run without them.
	Breaker         BreakerConfig
	DisableBreakers bool
	// CacheSize enables the anonymization-keyed result cache with this
	// many entries per model version (0 = no cache). Keys are the
	// schema name plus the lemmatized anonymized question, so every
	// constant variation of a query shape shares one cached decode and
	// no two tenants can ever share an entry; CacheShards optionally
	// overrides the shard count (0 = the cache package default).
	CacheSize   int
	CacheShards int
	// BatchMax enables cross-request microbatching when >= 2: up to
	// BatchMax concurrent cache-missing decodes share one batched
	// forward pass, with partial batches flushed after BatchWait
	// (0 = the batcher default, 2ms). 0 or 1 disables batching.
	BatchMax  int
	BatchWait time.Duration
	// Critic enables the execution-guided validation-and-repair layer
	// for every tenant: candidates are schema-checked, sandboxed
	// dry-run against the tenant's engine, and deterministically
	// repaired before answering. A tenant whose Unit was assembled
	// without a critic gets one attached at equip time, and onboarded
	// tenants inherit these settings.
	Critic bool
	// CriticRowBudget caps environment rows per critic dry-run and
	// CriticTimeout bounds one dry-run (0 = critic defaults).
	CriticRowBudget int
	CriticTimeout   time.Duration
	// MinAccuracy is the onboarding eval gate: a candidate model
	// scoring below it on the per-schema workload is rejected and the
	// prior version keeps serving (0 disables the gate).
	MinAccuracy float64
	// EvalQuestions sizes the gate workload (0 = the registry default,
	// negative skips evaluation).
	EvalQuestions int
	// CheckpointDir makes onboarding restartable: training checkpoints
	// land in <dir>/<tenant>.ckpt every CheckpointEvery steps and a
	// re-onboard resumes from them.
	CheckpointDir   string
	CheckpointEvery int
	// Logf, when non-nil, receives onboarding progress lines.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	c.Workers = par.Count(c.Workers)
	if c.Queue == 0 {
		c.Queue = 2 * c.Workers
	}
	if c.Queue < 0 {
		c.Queue = 0
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	return c
}

// Server fronts a tenant registry with the robustness stack. Create it
// with New (single tenant) or NewMulti, mount Handler (or
// Start/Shutdown for a managed listener), and it is safe for any
// number of concurrent requests.
type Server struct {
	reg  *registry.Registry
	cfg  Config
	mux  *http.ServeMux
	http *http.Server

	// onboardCtx parents every background onboarding; Shutdown cancels
	// it so training checkpoints and the goroutines drain.
	onboardCtx    context.Context
	onboardCancel context.CancelFunc

	mu      sync.Mutex
	tenants map[string]*tenantState

	draining atomic.Bool
	reqSeq   atomic.Int64
}

// tenantState is the serving-side per-tenant state: admission
// telemetry and the tenant's derived retry-jitter stream. The model
// slot, cache, and breakers live on the registry's Version so they
// swap atomically with the model.
type tenantState struct {
	name    string
	tenant  *registry.Tenant
	retry   RetryPolicy
	stats   *counters
	waiting atomic.Int64
}

// equipment is what the server attaches to every registry version:
// breakers and batcher are per-version so a swapped-in model starts
// with closed breakers and a batcher wrapping its own weights.
type equipment struct {
	breakers *TierBreakers
	batcher  *Batcher
	// criticBreaker guards the critic's sandbox: it trips only on
	// sandbox infrastructure failures (engine panic or dry-run
	// deadline), and while open the tenant degrades to unvalidated
	// answering instead of failing requests.
	criticBreaker *Breaker
}

// criticHook adapts one Breaker to runtime.CriticHook.
type criticHook struct{ b *Breaker }

func (h criticHook) Allow() error     { return h.b.Allow() }
func (h criticHook) Record(err error) { h.b.Record(err) }

var _ runtime.CriticHook = criticHook{}

// New wires the stack around a single pre-built translator — the
// original single-tenant constructor, kept as the boot-time path for
// callers that assembled their own runtime.Translator. The tenant is
// named after the translator's schema.
func New(tr *runtime.Translator, cfg Config) *Server {
	u := &boot.Unit{Schema: tr.DB.Schema, DB: tr.DB, Model: tr.Model, Translator: tr}
	return NewMulti([]*boot.Unit{u}, cfg)
}

// NewMulti wires the stack around any number of pre-built tenants; the
// first is the default tenant for the legacy un-prefixed routes. More
// tenants onboard live through POST /schemas.
func NewMulti(units []*boot.Unit, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		tenants: map[string]*tenantState{},
		mux:     http.NewServeMux(),
	}
	s.onboardCtx, s.onboardCancel = context.WithCancel(context.Background())
	s.reg = registry.New(registry.Config{
		Workers:         cfg.Workers,
		CacheSize:       cfg.CacheSize,
		CacheShards:     cfg.CacheShards,
		MinAccuracy:     cfg.MinAccuracy,
		EvalQuestions:   cfg.EvalQuestions,
		CheckpointDir:   cfg.CheckpointDir,
		CheckpointEvery: cfg.CheckpointEvery,
		Equip:           s.equip,
		Logf:            cfg.Logf,
	})
	for _, u := range units {
		s.reg.Install(u.Schema.Name, u)
	}
	s.mux.HandleFunc("/ask", func(w http.ResponseWriter, r *http.Request) {
		s.answer(w, r, r.URL.Query().Get("schema"), true)
	})
	s.mux.HandleFunc("/translate", func(w http.ResponseWriter, r *http.Request) {
		s.answer(w, r, r.URL.Query().Get("schema"), false)
	})
	s.mux.HandleFunc("/v1/", s.handleV1)
	s.mux.HandleFunc("/schemas", s.handleSchemas)
	s.mux.HandleFunc("/schemas/", s.handleSchema)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/statsz", s.handleStatsz)
	s.http = &http.Server{Handler: s.mux}
	return s
}

// Registry exposes the tenant registry (admin tooling, tests).
func (s *Server) Registry() *registry.Registry { return s.reg }

// equip attaches per-version breakers and batcher before the registry
// makes the version visible.
func (s *Server) equip(_ string, v *registry.Version) {
	eq := &equipment{}
	tr := v.Unit.Translator
	if !s.cfg.DisableBreakers {
		eq.breakers = NewTierBreakers(s.cfg.Breaker)
		tr.Hook = eq.breakers
	}
	if s.cfg.BatchMax >= 2 && tr.Model != nil {
		// The primary model decodes through the microbatcher; wrapping
		// it keeps the tier chain (breakers, deadlines, fallbacks)
		// oblivious to batching.
		eq.batcher = NewBatcher(tr.Model, tr.SchemaTokens(), BatcherConfig{
			MaxBatch: s.cfg.BatchMax,
			MaxWait:  s.cfg.BatchWait,
		})
		tr.Model = batchingModel{inner: tr.Model, b: eq.batcher}
	}
	if s.cfg.Critic && tr.Critic == nil {
		tr.Critic = critic.New(v.Unit.DB, critic.Config{
			RowBudget: s.cfg.CriticRowBudget,
			Timeout:   s.cfg.CriticTimeout,
			Seed:      v.Unit.Spec.Seed,
		})
	}
	if tr.Critic != nil && !s.cfg.DisableBreakers {
		eq.criticBreaker = NewBreaker(s.cfg.Breaker)
		tr.CriticHook = criticHook{b: eq.criticBreaker}
	}
	v.Equipment = eq
}

// defaultVersion returns the default tenant's serving version, or nil
// for an empty registry (single-tenant helpers and tests).
func (s *Server) defaultVersion() *registry.Version {
	if t := s.reg.Default(); t != nil {
		return t.Current()
	}
	return nil
}

// versionEquipment unwraps what equip attached (nil-safe).
func versionEquipment(v *registry.Version) *equipment {
	if v == nil {
		return nil
	}
	eq, _ := v.Equipment.(*equipment)
	return eq
}

// state returns the serving-side state for a tenant, creating it on
// first use. The default tenant keeps the configured retry seed (the
// single-tenant behavior); every other tenant mixes its name in so the
// jitter streams are disjoint.
func (s *Server) state(t *registry.Tenant) *tenantState {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts := s.tenants[t.Name]
	if ts == nil {
		ts = &tenantState{name: t.Name, tenant: t, stats: newCounters(), retry: s.cfg.Retry}
		if def := s.reg.Default(); def != nil && def.Name != t.Name {
			ts.retry.Seed = s.cfg.Retry.Seed ^ int64(fnv64(t.Name))
		}
		s.tenants[t.Name] = ts
	}
	return ts
}

// fnv64 is the FNV-1a hash used to derive per-tenant seeds.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Handler returns the routed handler, for tests and custom listeners.
func (s *Server) Handler() http.Handler { return s.mux }

// Start serves on ln in the background and returns the channel that
// yields http.Server.Serve's error when the listener closes
// (http.ErrServerClosed after a clean Shutdown).
func (s *Server) Start(ln net.Listener) <-chan error {
	errc := make(chan error, 1)
	//lint:allow rawgo the accept loop must run beside the signal handler; net/http owns the per-connection concurrency
	go func() { errc <- s.http.Serve(ln) }()
	return errc
}

// Drain flips the server to draining: /readyz answers 503 and new
// work is rejected with the draining error, while requests already
// admitted keep running. Load balancers watch /readyz, so calling
// Drain before Shutdown gives them time to stop routing here.
func (s *Server) Drain() { s.draining.Store(true) }

// Draining reports whether Drain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Shutdown drains, cancels in-flight onboarding (its training writes a
// final checkpoint, so a later process resumes where it stopped), and
// then stops the listener started by Start, waiting for in-flight
// requests to finish until ctx expires. The onboarding join is
// bounded by the same ctx — a tenant whose model ignores
// cancellation costs at most a goroutine at exit, never a hung
// SIGTERM — and the HTTP listener is stopped regardless, so the
// drain deadline is honored end to end.
func (s *Server) Shutdown(ctx context.Context) error {
	s.Drain()
	s.onboardCancel()
	waitErr := s.reg.WaitCtx(ctx)
	if err := s.http.Shutdown(ctx); err != nil {
		return err
	}
	return waitErr
}

// ---------------------------------------------------------------------
// Request handling.
// ---------------------------------------------------------------------

// askRequest is the POST body of the ask/translate endpoints; GET
// requests use ?q= and ?timeout_ms= instead.
type askRequest struct {
	Question  string `json:"question"`
	TimeoutMS int    `json:"timeout_ms"`
}

// askResponse is the success body.
type askResponse struct {
	Question string `json:"question"`
	// Schema names the tenant that answered.
	Schema string `json:"schema"`
	SQL    string `json:"sql"`
	// Tier names the translator tier that answered.
	Tier string `json:"tier"`
	// TierErrors lists the failed tiers ahead of the answering one.
	TierErrors []string `json:"tier_errors,omitempty"`
	// Columns/Rows carry the execution result on ask (absent on
	// translate).
	Columns []string   `json:"columns,omitempty"`
	Rows    [][]string `json:"rows,omitempty"`
	Retries int        `json:"retries,omitempty"`
}

// handleV1 routes /v1/{schema}/ask and /v1/{schema}/translate.
func (s *Server) handleV1(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/")
	name, op, ok := strings.Cut(rest, "/")
	if !ok || name == "" || (op != "ask" && op != "translate") {
		writeError(w, KindNotFound, 0, "no route %s; want /v1/{schema}/ask or /v1/{schema}/translate", r.URL.Path)
		return
	}
	s.answer(w, r, name, op == "ask")
}

// resolveTenant maps a request's schema name ("" = default tenant) to
// the tenant and its serving version, writing the typed error itself
// when resolution fails.
func (s *Server) resolveTenant(w http.ResponseWriter, name string) (*tenantState, *registry.Version, bool) {
	var t *registry.Tenant
	if name == "" {
		t = s.reg.Default()
	} else {
		t = s.reg.Lookup(name)
	}
	if t == nil {
		writeError(w, KindNotFound, 0, "unknown schema %q; GET /schemas lists tenants", name)
		return nil, nil, false
	}
	v := t.Current()
	if v == nil {
		st := t.Status()
		msg := "schema %q has no serving model yet (state %s)"
		if st.Error != "" {
			msg += ": " + st.Error
		}
		writeError(w, KindOnboarding, 2, msg, t.Name, st.State)
		return nil, nil, false
	}
	return s.state(t), v, true
}

// answer is the shared ask (execute=true) and translate handler for
// both the /v1/{schema}/ and legacy routes.
func (s *Server) answer(w http.ResponseWriter, r *http.Request, schemaName string, execute bool) {
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		w.Header().Set("Allow", "GET, POST")
		writeError(w, KindValidation, 0, "method %s not allowed; use GET or POST", r.Method)
		return
	}
	if s.draining.Load() {
		writeError(w, KindDraining, 0, "server is draining")
		return
	}
	ts, v, ok := s.resolveTenant(w, schemaName)
	if !ok {
		return
	}
	req, err := parseAsk(r)
	if err != nil {
		ts.stats.validation.Add(1)
		writeError(w, KindValidation, 0, "%v", err)
		return
	}

	// Admission control: take a tenant slot immediately if one is
	// free; else join the tenant's bounded waiting room or shed.
	limiter := ts.tenant.Limiter
	if !limiter.TryAcquire() {
		if ts.waiting.Add(1) > int64(s.cfg.Queue) {
			ts.waiting.Add(-1)
			ts.stats.shed.Add(1)
			writeError(w, KindShed, 1, "schema %q at capacity (%d in flight, %d queued); retry later",
				ts.name, s.cfg.Workers, s.cfg.Queue)
			return
		}
		werr := limiter.Acquire(r.Context())
		ts.waiting.Add(-1)
		if werr != nil {
			// The client went away while queued.
			ts.stats.timeouts.Add(1)
			writeError(w, KindTimeout, 0, "request cancelled while queued: %v", werr)
			return
		}
	}
	defer limiter.Release()
	ts.stats.accepted.Add(1)

	timeout := s.cfg.Timeout
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	var (
		q     *sqlast.Query
		trace *runtime.Trace
	)
	retries, terr := ts.retry.Do(ctx, s.reqSeq.Add(1), retryable, func() error {
		var ferr error
		q, trace, ferr = s.translate(ctx, v, req.Question)
		return ferr
	})
	ts.stats.retries.Add(int64(retries))
	if terr != nil {
		kind := classify(terr)
		if ctx.Err() != nil {
			// Whatever the chain reported, the request deadline is the
			// root cause once it has expired.
			kind = KindTimeout
		}
		ts.recordFailure(kind)
		writeError(w, kind, 0, "%v", terr)
		return
	}

	resp := askResponse{
		Question: req.Question,
		Schema:   ts.name,
		SQL:      q.String(),
		Tier:     trace.Tier,
		Retries:  retries,
	}
	resp.TierErrors = append(resp.TierErrors, trace.TierErrors...)
	if execute {
		res, xerr := v.Unit.DB.Execute(q)
		if xerr != nil {
			ts.recordFailure(KindInternal)
			writeError(w, KindInternal, 0, "executing %q: %v", q.String(), xerr)
			return
		}
		resp.Columns = res.Columns
		for _, row := range res.Rows {
			out := make([]string, len(row))
			for i, val := range row {
				out[i] = val.String()
			}
			resp.Rows = append(resp.Rows, out)
		}
	}
	ts.stats.completed.Add(1)
	ts.stats.answeredBy(trace.Tier)
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, resp)
}

// translate runs one question through the version's inference hot
// path. With no cache configured it is exactly the translator's
// one-shot entry point (batching, when on, already lives inside the
// primary model). With a cache, the pipeline splits: the deterministic
// pre-processing runs first, its schema-qualified lemmatized output
// keys the version's result cache, and only a leader that misses pays
// a decode — concurrent misses for the same key coalesce onto that one
// decode, and each request then finalizes the shared
// binding-independent candidates under its own constants. A cached
// decode that no longer finalizes for this request's bindings falls
// back to one fresh full-strength decode rather than failing the
// request.
func (s *Server) translate(ctx context.Context, v *registry.Version, question string) (*sqlast.Query, *runtime.Trace, error) {
	tr := v.Unit.Translator
	if v.Cache == nil {
		return tr.TranslateTraceContext(ctx, question)
	}
	trace := &runtime.Trace{Question: question}
	anon, nl, err := tr.Preprocess(question)
	if err != nil {
		return nil, trace, err
	}
	trace.Anonymized = anon.Tokens
	trace.Bindings = anon.Bindings
	trace.Lemmatized = nl

	// The leader finalizes inside the loader (its decode and bindings
	// belong to the same request); leaderQ carries that answer past
	// the cache, which only stores the binding-independent decode.
	var leaderQ *sqlast.Query
	dec, outcome, err := v.Cache.Do(ctx, tr.CacheKey(nl), func(lctx context.Context) (*runtime.DecodeResult, error) {
		q, d, lerr := tr.TranslatePrepared(lctx, nl, anon.Bindings, nil, trace)
		leaderQ = q
		return d, lerr
	})
	trace.Cache = outcome.String()
	if err != nil {
		return nil, trace, err
	}
	if outcome == cache.Miss && leaderQ != nil {
		return leaderQ, trace, nil
	}
	q, _, ferr := tr.TranslatePrepared(ctx, nl, anon.Bindings, dec, trace)
	if ferr == nil {
		return q, trace, nil
	}
	// Stale for these bindings: re-decode at full strength.
	q, _, err = tr.TranslatePrepared(ctx, nl, anon.Bindings, nil, trace)
	return q, trace, err
}

// recordFailure bumps the failure counter for the kind.
func (ts *tenantState) recordFailure(kind ErrorKind) {
	switch kind {
	case KindTimeout:
		ts.stats.timeouts.Add(1)
	case KindValidation:
		ts.stats.validation.Add(1)
	}
	ts.stats.failed.Add(1)
}

// parseAsk extracts the question and optional timeout from either
// request form.
func parseAsk(r *http.Request) (askRequest, error) {
	var req askRequest
	if r.Method == http.MethodGet {
		req.Question = r.URL.Query().Get("q")
		if ms := r.URL.Query().Get("timeout_ms"); ms != "" {
			n, err := strconv.Atoi(ms)
			if err != nil || n < 0 {
				return req, errors.New("timeout_ms must be a non-negative integer")
			}
			req.TimeoutMS = n
		}
		return req, nil
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		return req, errors.New("unreadable request body")
	}
	if err := json.Unmarshal(body, &req); err != nil {
		return req, errors.New("malformed JSON body; want {\"question\": \"...\"}")
	}
	if req.TimeoutMS < 0 {
		return req, errors.New("timeout_ms must be non-negative")
	}
	return req, nil
}

// ---------------------------------------------------------------------
// Probes.
// ---------------------------------------------------------------------

// handleHealthz is liveness: 200 as long as the process serves.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, map[string]string{"status": "ok"})
}

// handleReadyz is readiness: 200 while accepting, 503 once draining.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		writeJSON(w, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, map[string]string{"status": "ready"})
}

// handleStatsz renders the Stats snapshot.
func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, s.Snapshot())
}
