package serve

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/cache"
)

// Stats is the /statsz snapshot: queue and concurrency occupancy,
// admission outcomes, retry volume, per-tier answer counts, and the
// state of every tier breaker. The shape is part of the serving
// contract (DESIGN.md, "Serving layer").
type Stats struct {
	Draining bool `json:"draining"`
	// Capacity is the concurrency limit, QueueCap the waiting room.
	Capacity int `json:"capacity"`
	QueueCap int `json:"queue_cap"`
	// InFlight and QueueDepth are instantaneous occupancy.
	InFlight   int   `json:"in_flight"`
	QueueDepth int64 `json:"queue_depth"`
	// Admission and completion counters (monotonic).
	Accepted   int64 `json:"accepted"`
	Completed  int64 `json:"completed"`
	Failed     int64 `json:"failed"`
	Shed       int64 `json:"shed"`
	Timeouts   int64 `json:"timeouts"`
	Validation int64 `json:"validation"`
	Retries    int64 `json:"retries"`
	// Tiers counts answered questions by the tier that answered
	// (Trace.Tier); Breakers names each tier breaker's state.
	Tiers    map[string]int64  `json:"tiers"`
	Breakers map[string]string `json:"breakers"`
	// Cache and Batcher describe the inference hot path; absent when
	// the corresponding feature is off.
	Cache   *cache.Stats  `json:"cache,omitempty"`
	Batcher *BatcherStats `json:"batcher,omitempty"`
}

// counters aggregates the server's mutable telemetry. Counter fields
// are atomics; the tier map has its own lock.
type counters struct {
	accepted   atomic.Int64
	completed  atomic.Int64
	failed     atomic.Int64
	shed       atomic.Int64
	timeouts   atomic.Int64
	validation atomic.Int64
	retries    atomic.Int64

	mu    sync.Mutex
	tiers map[string]int64
}

func newCounters() *counters {
	return &counters{tiers: map[string]int64{}}
}

// answeredBy bumps the per-tier answer count.
func (c *counters) answeredBy(tier string) {
	if tier == "" {
		return
	}
	c.mu.Lock()
	c.tiers[tier]++
	c.mu.Unlock()
}

// tierCounts snapshots the per-tier map in sorted-key order.
func (c *counters) tierCounts() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.tiers))
	for name := range c.tiers {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make(map[string]int64, len(names))
	for _, name := range names {
		out[name] = c.tiers[name]
	}
	return out
}
