package serve

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/critic"
	"repro/internal/registry"
)

// Stats is the /statsz snapshot: queue and concurrency occupancy,
// admission outcomes, retry volume, per-tier answer counts, and the
// state of every tier breaker. The shape is part of the serving
// contract (DESIGN.md, "Serving layer"). The top-level occupancy and
// counter fields aggregate across tenants (single-tenant servers see
// the original shape unchanged); Breakers/Cache/Batcher describe the
// default tenant's serving version, and Tenants breaks everything out
// per tenant.
type Stats struct {
	Draining bool `json:"draining"`
	// Capacity is the per-tenant concurrency limit, QueueCap the
	// per-tenant waiting room.
	Capacity int `json:"capacity"`
	QueueCap int `json:"queue_cap"`
	// InFlight and QueueDepth are instantaneous occupancy.
	InFlight   int   `json:"in_flight"`
	QueueDepth int64 `json:"queue_depth"`
	// Admission and completion counters (monotonic).
	Accepted   int64 `json:"accepted"`
	Completed  int64 `json:"completed"`
	Failed     int64 `json:"failed"`
	Shed       int64 `json:"shed"`
	Timeouts   int64 `json:"timeouts"`
	Validation int64 `json:"validation"`
	Retries    int64 `json:"retries"`
	// Tiers counts answered questions by the tier that answered
	// (Trace.Tier); Breakers names each tier breaker's state.
	Tiers    map[string]int64  `json:"tiers"`
	Breakers map[string]string `json:"breakers"`
	// Cache and Batcher describe the inference hot path; absent when
	// the corresponding feature is off.
	Cache   *cache.Stats  `json:"cache,omitempty"`
	Batcher *BatcherStats `json:"batcher,omitempty"`
	// Critic aggregates the default tenant's critic counters and
	// CriticBreaker names its sandbox breaker's state; absent when the
	// critic is off.
	Critic        *critic.Stats `json:"critic,omitempty"`
	CriticBreaker string        `json:"critic_breaker,omitempty"`
	// Tenants is the per-tenant breakdown, keyed by tenant name.
	Tenants map[string]TenantStats `json:"tenants"`
}

// TenantStats is one tenant's slice of the snapshot: registry
// lifecycle (state, serving version, onboarding progress) plus the
// serving-side occupancy, counters, and per-version equipment.
type TenantStats struct {
	State string `json:"state"`
	// Version is the serving model slot's sequence number (0 = none
	// installed yet).
	Version    int     `json:"version"`
	Accuracy   float64 `json:"accuracy"`
	Onboarding bool    `json:"onboarding,omitempty"`
	Resumed    bool    `json:"resumed,omitempty"`
	Error      string  `json:"error,omitempty"`
	Pairs      int     `json:"pairs,omitempty"`

	InFlight   int   `json:"in_flight"`
	QueueDepth int64 `json:"queue_depth"`
	Accepted   int64 `json:"accepted"`
	Completed  int64 `json:"completed"`
	Failed     int64 `json:"failed"`
	Shed       int64 `json:"shed"`
	Timeouts   int64 `json:"timeouts"`
	Validation int64 `json:"validation"`
	Retries    int64 `json:"retries"`

	Tiers         map[string]int64  `json:"tiers,omitempty"`
	Breakers      map[string]string `json:"breakers,omitempty"`
	Cache         *cache.Stats      `json:"cache,omitempty"`
	Batcher       *BatcherStats     `json:"batcher,omitempty"`
	Critic        *critic.Stats     `json:"critic,omitempty"`
	CriticBreaker string            `json:"critic_breaker,omitempty"`
}

// Snapshot assembles the Stats for /statsz: a row per tenant, with the
// legacy top-level fields aggregated across them and the default
// tenant's equipment surfaced top-level for single-tenant
// compatibility.
func (s *Server) Snapshot() Stats {
	st := Stats{
		Draining: s.draining.Load(),
		Capacity: s.cfg.Workers,
		QueueCap: s.cfg.Queue,
		Tiers:    map[string]int64{},
		Breakers: map[string]string{},
		Tenants:  map[string]TenantStats{},
	}
	def := s.reg.Default()
	for _, name := range s.reg.Names() {
		t := s.reg.Lookup(name)
		if t == nil {
			continue
		}
		row := s.tenantStats(t)
		st.Tenants[name] = row
		st.InFlight += row.InFlight
		st.QueueDepth += row.QueueDepth
		st.Accepted += row.Accepted
		st.Completed += row.Completed
		st.Failed += row.Failed
		st.Shed += row.Shed
		st.Timeouts += row.Timeouts
		st.Validation += row.Validation
		st.Retries += row.Retries
		for tier, n := range row.Tiers {
			st.Tiers[tier] += n
		}
		if def != nil && name == def.Name {
			if row.Breakers != nil {
				st.Breakers = row.Breakers
			}
			st.Cache = row.Cache
			st.Batcher = row.Batcher
			st.Critic = row.Critic
			st.CriticBreaker = row.CriticBreaker
		}
	}
	return st
}

// tenantStats snapshots one tenant's row.
func (s *Server) tenantStats(t *registry.Tenant) TenantStats {
	rst := t.Status()
	row := TenantStats{
		State:      string(rst.State),
		Version:    rst.Version,
		Accuracy:   rst.Accuracy,
		Onboarding: rst.Onboarding,
		Resumed:    rst.Resumed,
		Error:      rst.Error,
		Pairs:      rst.Pairs,
		InFlight:   t.Limiter.InUse(),
	}
	s.mu.Lock()
	ts := s.tenants[t.Name]
	s.mu.Unlock()
	if ts != nil {
		row.QueueDepth = ts.waiting.Load()
		row.Accepted = ts.stats.accepted.Load()
		row.Completed = ts.stats.completed.Load()
		row.Failed = ts.stats.failed.Load()
		row.Shed = ts.stats.shed.Load()
		row.Timeouts = ts.stats.timeouts.Load()
		row.Validation = ts.stats.validation.Load()
		row.Retries = ts.stats.retries.Load()
		row.Tiers = ts.stats.tierCounts()
	}
	if eq := versionEquipment(t.Current()); eq != nil {
		if eq.breakers != nil {
			row.Breakers = eq.breakers.States()
		}
		if eq.batcher != nil {
			bs := eq.batcher.Snapshot()
			row.Batcher = &bs
		}
		if eq.criticBreaker != nil {
			row.CriticBreaker = eq.criticBreaker.State().String()
		}
	}
	if v := t.Current(); v != nil {
		if v.Cache != nil {
			cs := v.Cache.Snapshot()
			row.Cache = &cs
		}
		if c := v.Unit.Translator.Critic; c != nil {
			cs := c.Snapshot()
			row.Critic = &cs
		}
	}
	return row
}

// counters aggregates the server's mutable telemetry. Counter fields
// are atomics; the tier map has its own lock.
type counters struct {
	accepted   atomic.Int64
	completed  atomic.Int64
	failed     atomic.Int64
	shed       atomic.Int64
	timeouts   atomic.Int64
	validation atomic.Int64
	retries    atomic.Int64

	mu    sync.Mutex
	tiers map[string]int64
}

func newCounters() *counters {
	return &counters{tiers: map[string]int64{}}
}

// answeredBy bumps the per-tier answer count.
func (c *counters) answeredBy(tier string) {
	if tier == "" {
		return
	}
	c.mu.Lock()
	c.tiers[tier]++
	c.mu.Unlock()
}

// tierCounts snapshots the per-tier map in sorted-key order.
func (c *counters) tierCounts() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.tiers))
	for name := range c.tiers {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make(map[string]int64, len(names))
	for _, name := range names {
		out[name] = c.tiers[name]
	}
	return out
}
