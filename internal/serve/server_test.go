package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/models"
	"repro/internal/patients"
	"repro/internal/runtime"
)

func testDB(t *testing.T) *engine.Database {
	t.Helper()
	db, err := patients.Database()
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// oracleModel always emits a correct anonymized query, isolating the
// serving stack from model quality.
type oracleModel struct{}

func (oracleModel) Name() string           { return "oracle" }
func (oracleModel) Train([]models.Example) {}
func (oracleModel) Translate(nl, st []string) []string {
	return strings.Fields("SELECT name FROM patients WHERE age = @PATIENTS.AGE")
}

// failModel fails every question fast (no output) and counts calls,
// so tests can prove a tripped breaker stops routing to it.
type failModel struct{ calls atomic.Int64 }

func (*failModel) Name() string           { return "fail" }
func (*failModel) Train([]models.Example) {}
func (m *failModel) Translate(nl, st []string) []string {
	m.calls.Add(1)
	return nil
}

// blockModel parks every Translate call on a gate until the test
// releases it, then answers like the oracle. Calls are counted.
type blockModel struct {
	gate  chan struct{}
	calls atomic.Int64
}

func newBlockModel() *blockModel { return &blockModel{gate: make(chan struct{})} }

func (*blockModel) Name() string           { return "block" }
func (*blockModel) Train([]models.Example) {}
func (m *blockModel) Translate(nl, st []string) []string {
	m.calls.Add(1)
	<-m.gate
	return strings.Fields("SELECT name FROM patients WHERE age = @PATIENTS.AGE")
}

// release opens the gate exactly once.
func (m *blockModel) release() { close(m.gate) }

// flakyModel fails the first n calls, then answers like the oracle.
type flakyModel struct {
	failFirst int64
	calls     atomic.Int64
}

func (*flakyModel) Name() string           { return "flaky" }
func (*flakyModel) Train([]models.Example) {}
func (m *flakyModel) Translate(nl, st []string) []string {
	if m.calls.Add(1) <= m.failFirst {
		return nil
	}
	return strings.Fields("SELECT name FROM patients WHERE age = @PATIENTS.AGE")
}

const goodQuestion = "show the names of all patients with age 80"

// urlQuery escapes a question for the ?q= form.
func urlQuery(q string) string { return url.QueryEscape(q) }

// newTestServer wires a Server over the patients fixture database.
func newTestServer(t *testing.T, model models.Translator, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	tr := runtime.NewTranslator(testDB(t), model)
	s := New(tr, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// getJSON GETs url and decodes the body into out, returning the status.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("decoding %s body %q: %v", url, body, err)
		}
	}
	return resp.StatusCode
}

func TestAskEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, oracleModel{}, Config{Workers: 2})
	var resp askResponse
	status := getJSON(t, ts.URL+"/ask?q="+urlQuery(goodQuestion), &resp)
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200", status)
	}
	if !strings.Contains(resp.SQL, "age = 80") {
		t.Fatalf("SQL = %q, want the bound constant", resp.SQL)
	}
	if resp.Tier != "oracle" {
		t.Fatalf("Tier = %q, want oracle", resp.Tier)
	}
	if len(resp.Rows) != 3 {
		t.Fatalf("rows = %v, want the 3 patients aged 80", resp.Rows)
	}
	if len(resp.Columns) != 1 || resp.Columns[0] != "name" {
		t.Fatalf("columns = %v, want [name]", resp.Columns)
	}
}

func TestTranslateDoesNotExecute(t *testing.T) {
	_, ts := newTestServer(t, oracleModel{}, Config{Workers: 2})
	var resp askResponse
	status := getJSON(t, ts.URL+"/translate?q="+urlQuery(goodQuestion), &resp)
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200", status)
	}
	if resp.SQL == "" {
		t.Fatal("missing SQL")
	}
	if len(resp.Rows) != 0 || len(resp.Columns) != 0 {
		t.Fatalf("translate must not execute; got columns %v rows %v", resp.Columns, resp.Rows)
	}
}

func TestPostAsk(t *testing.T) {
	_, ts := newTestServer(t, oracleModel{}, Config{Workers: 2})
	body := strings.NewReader(fmt.Sprintf(`{"question": %q}`, goodQuestion))
	resp, err := http.Post(ts.URL+"/ask", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var got askResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 3 {
		t.Fatalf("rows = %v, want 3", got.Rows)
	}
}

func TestValidationErrorsAreTyped(t *testing.T) {
	s, ts := newTestServer(t, oracleModel{}, Config{Workers: 2})
	cases := []struct {
		name string
		do   func() (int, errorEnvelope)
	}{
		{"empty question", func() (int, errorEnvelope) {
			var env errorEnvelope
			return getJSON(t, ts.URL+"/ask?q=", &env), env
		}},
		{"bad timeout_ms", func() (int, errorEnvelope) {
			var env errorEnvelope
			return getJSON(t, ts.URL+"/ask?q=hi&timeout_ms=nope", &env), env
		}},
		{"invalid utf-8", func() (int, errorEnvelope) {
			var env errorEnvelope
			return getJSON(t, ts.URL+"/ask?q=%ff%fe", &env), env
		}},
		{"malformed json body", func() (int, errorEnvelope) {
			resp, err := http.Post(ts.URL+"/ask", "application/json", strings.NewReader("{"))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var env errorEnvelope
			if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
				t.Fatal(err)
			}
			return resp.StatusCode, env
		}},
	}
	for _, tc := range cases {
		status, env := tc.do()
		if status != http.StatusBadRequest {
			t.Fatalf("%s: status = %d, want 400", tc.name, status)
		}
		if env.Error.Kind != KindValidation {
			t.Fatalf("%s: kind = %q, want validation", tc.name, env.Error.Kind)
		}
	}
	if got := s.Snapshot().Validation; got < int64(len(cases)) {
		t.Fatalf("validation counter = %d, want >= %d", got, len(cases))
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, oracleModel{}, Config{Workers: 1})
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/ask", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); !strings.Contains(allow, "GET") || !strings.Contains(allow, "POST") {
		t.Fatalf("Allow header = %q", allow)
	}
}

// TestClientTimeoutMapsToTimeoutKind: a tiny timeout_ms against a
// parked model must come back 504/timeout, not hang.
func TestClientTimeoutMapsToTimeoutKind(t *testing.T) {
	block := newBlockModel()
	t.Cleanup(block.release)
	s, ts := newTestServer(t, block, Config{Workers: 2, DisableBreakers: true})
	var env errorEnvelope
	status := getJSON(t, ts.URL+"/ask?timeout_ms=50&q="+urlQuery(goodQuestion), &env)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", status)
	}
	if env.Error.Kind != KindTimeout {
		t.Fatalf("kind = %q, want timeout", env.Error.Kind)
	}
	if !strings.Contains(env.Error.Message, "deadline") {
		t.Fatalf("message = %q, want the tier deadline cause", env.Error.Message)
	}
	if got := s.Snapshot().Timeouts; got != 1 {
		t.Fatalf("timeouts counter = %d, want 1", got)
	}
}

func TestHealthzReadyzStatsz(t *testing.T) {
	s, ts := newTestServer(t, oracleModel{}, Config{Workers: 3, Queue: 5})
	var health map[string]string
	if status := getJSON(t, ts.URL+"/healthz", &health); status != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("healthz = %d %v", status, health)
	}
	var ready map[string]string
	if status := getJSON(t, ts.URL+"/readyz", &ready); status != http.StatusOK || ready["status"] != "ready" {
		t.Fatalf("readyz = %d %v", status, ready)
	}
	if status := getJSON(t, ts.URL+"/ask?q="+urlQuery(goodQuestion), nil); status != http.StatusOK {
		t.Fatalf("ask status = %d", status)
	}
	var stats Stats
	if status := getJSON(t, ts.URL+"/statsz", &stats); status != http.StatusOK {
		t.Fatalf("statsz status = %d", status)
	}
	if stats.Capacity != 3 || stats.QueueCap != 5 {
		t.Fatalf("capacity/queue = %d/%d, want 3/5", stats.Capacity, stats.QueueCap)
	}
	if stats.Completed != 1 || stats.Accepted != 1 {
		t.Fatalf("completed/accepted = %d/%d, want 1/1", stats.Completed, stats.Accepted)
	}
	if stats.Tiers["oracle"] != 1 {
		t.Fatalf("tiers = %v, want oracle:1", stats.Tiers)
	}
	if stats.Breakers["oracle"] != "closed" {
		t.Fatalf("breakers = %v, want oracle closed", stats.Breakers)
	}
	if stats.Cache != nil || stats.Batcher != nil {
		t.Fatalf("cache/batcher sections must be absent when the features are off: %+v %+v", stats.Cache, stats.Batcher)
	}
	if s.Draining() {
		t.Fatal("fresh server must not be draining")
	}
	// The per-tenant section: a single-tenant server still carries a
	// row for its one tenant, mirroring the registry lifecycle.
	row, ok := stats.Tenants["patients"]
	if !ok || len(stats.Tenants) != 1 {
		t.Fatalf("tenants section = %+v, want exactly the patients row", stats.Tenants)
	}
	if row.State != "ready" || row.Version != 1 || row.Completed != 1 || row.Tiers["oracle"] != 1 {
		t.Fatalf("patients tenant row = %+v, want ready v1 with the one oracle completion", row)
	}
	if row.Breakers["oracle"] != "closed" {
		t.Fatalf("tenant breakers = %v, want oracle closed", row.Breakers)
	}

	// With the hot path on, /statsz grows cache and batcher sections of
	// the documented shape.
	_, ts2 := newTestServer(t, oracleModel{}, Config{CacheSize: 32, BatchMax: 4})
	for _, q := range []string{goodQuestion, goodQuestion} {
		if status := getJSON(t, ts2.URL+"/ask?q="+urlQuery(q), nil); status != http.StatusOK {
			t.Fatalf("ask status = %d", status)
		}
	}
	var hot Stats
	if status := getJSON(t, ts2.URL+"/statsz", &hot); status != http.StatusOK {
		t.Fatalf("statsz status = %d", status)
	}
	if hot.Cache == nil || hot.Batcher == nil {
		t.Fatalf("hot-path sections missing: cache=%+v batcher=%+v", hot.Cache, hot.Batcher)
	}
	if hot.Cache.Capacity != 32 || hot.Cache.Misses != 1 || hot.Cache.Hits != 1 || hot.Cache.Entries != 1 {
		t.Fatalf("cache section = %+v, want capacity 32 with 1 miss + 1 hit", hot.Cache)
	}
	if hot.Batcher.MaxBatch != 4 || hot.Batcher.Batches != 1 || hot.Batcher.Items != 1 || hot.Batcher.MeanBatch != 1 {
		t.Fatalf("batcher section = %+v, want one singleton flush", hot.Batcher)
	}
	if hotRow := hot.Tenants["patients"]; hotRow.Cache == nil || hotRow.Cache.Hits != 1 {
		t.Fatalf("tenant cache stats = %+v, want the hit mirrored per tenant", hot.Tenants["patients"])
	}
}

// TestServerRetriesTransientFailure: the first attempt fails (no
// output), the retry succeeds; the response and /statsz record one
// retry, and the backoff delay came from the seeded jitter stream.
func TestServerRetriesTransientFailure(t *testing.T) {
	var mu sync.Mutex
	var slept []time.Duration
	flaky := &flakyModel{failFirst: 1}
	tr := runtime.NewTranslator(testDB(t), flaky)
	s := New(tr, Config{Workers: 1, Retry: RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   10 * time.Millisecond,
		Seed:        42,
		Sleep: func(d time.Duration) {
			mu.Lock()
			slept = append(slept, d)
			mu.Unlock()
		},
	}})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	var resp askResponse
	if status := getJSON(t, ts.URL+"/ask?q="+urlQuery(goodQuestion), &resp); status != http.StatusOK {
		t.Fatalf("status = %d, want 200 after retry", status)
	}
	if resp.Retries != 1 {
		t.Fatalf("retries = %d, want 1", resp.Retries)
	}
	if flaky.calls.Load() != 2 {
		t.Fatalf("model calls = %d, want 2", flaky.calls.Load())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(slept) != 1 || slept[0] < 5*time.Millisecond || slept[0] >= 10*time.Millisecond {
		t.Fatalf("backoff = %v, want one delay in [5ms, 10ms)", slept)
	}
	if got := s.Snapshot().Retries; got != 1 {
		t.Fatalf("statsz retries = %d, want 1", got)
	}
}

// ---------------------------------------------------------------------
// RetryPolicy unit tests.
// ---------------------------------------------------------------------

func TestRetryDelayDeterministicAndBounded(t *testing.T) {
	p := RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond, Seed: 7}.withDefaults()
	for a := 0; a < 12; a++ {
		d1, d2 := p.delay(3, a), p.delay(3, a)
		if d1 != d2 {
			t.Fatalf("attempt %d: delay not deterministic (%v vs %v)", a, d1, d2)
		}
		// Exponential base capped at MaxDelay, jittered into [cap/2, cap).
		want := p.BaseDelay << uint(a)
		if want <= 0 || want > p.MaxDelay {
			want = p.MaxDelay
		}
		if d1 < want/2 || d1 >= want {
			t.Fatalf("attempt %d: delay %v outside [%v, %v)", a, d1, want/2, want)
		}
	}
	if p.delay(3, 0) == p.delay(4, 0) && p.delay(3, 1) == p.delay(4, 1) && p.delay(3, 2) == p.delay(4, 2) {
		t.Fatal("different request ids share an identical jitter schedule")
	}
}

func TestRetryDoStopsOnNonRetryable(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, Sleep: func(time.Duration) {}}
	calls := 0
	permanent := errors.New("permanent")
	retries, err := p.Do(context.Background(), 1, func(error) bool { return false }, func() error {
		calls++
		return permanent
	})
	if calls != 1 || retries != 0 || !errors.Is(err, permanent) {
		t.Fatalf("calls=%d retries=%d err=%v, want a single attempt", calls, retries, err)
	}
}

func TestRetryDoExhaustsAttempts(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 3, Sleep: func(time.Duration) {}}
	calls := 0
	transient := errors.New("transient")
	retries, err := p.Do(context.Background(), 1, func(error) bool { return true }, func() error {
		calls++
		return transient
	})
	if calls != 3 || retries != 2 || !errors.Is(err, transient) {
		t.Fatalf("calls=%d retries=%d err=%v, want 3 attempts", calls, retries, err)
	}
}

func TestRetryDoHonorsContextDuringBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := RetryPolicy{MaxAttempts: 5, Sleep: func(time.Duration) { cancel() }}
	calls := 0
	retries, err := p.Do(ctx, 1, func(error) bool { return true }, func() error {
		calls++
		return errors.New("transient")
	})
	if calls != 1 || retries != 0 || !errors.Is(err, context.Canceled) {
		t.Fatalf("calls=%d retries=%d err=%v, want cancellation mid-backoff", calls, retries, err)
	}
}
