package serve

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/runtime"
)

// ErrBreakerOpen is the sentinel inside every open-circuit rejection,
// so callers can errors.Is for it through the runtime's wrapping.
var ErrBreakerOpen = errors.New("serve: circuit open")

// BreakerState is the classic three-state circuit-breaker machine.
type BreakerState int

// Breaker states.
const (
	// BreakerClosed: requests flow; outcomes feed the failure window.
	BreakerClosed BreakerState = iota
	// BreakerOpen: requests are rejected until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: one probe request is in flight; its outcome
	// decides between Closed and Open.
	BreakerHalfOpen
)

// String names the state for /statsz and error messages.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// BreakerConfig parameterizes one breaker. The zero value is filled
// with the defaults below.
type BreakerConfig struct {
	// Window is the size of the rolling outcome window (default 16).
	Window int
	// MinSamples is the minimum number of recorded outcomes before
	// the failure rate is considered meaningful (default 4).
	MinSamples int
	// FailureRate in [0,1] trips the breaker when reached over the
	// window with at least MinSamples outcomes (default 0.5).
	FailureRate float64
	// Cooldown is how long an open breaker rejects before admitting a
	// half-open probe (default 5s).
	Cooldown time.Duration
	// Now is the clock; the tests inject a fake one, production uses
	// the wall clock.
	Now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 16
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 4
	}
	if c.FailureRate <= 0 {
		c.FailureRate = 0.5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now //lint:allow determinism the breaker cooldown is wall-clock by nature; tests inject a fake clock
	}
	return c
}

// Breaker is a thread-safe circuit breaker over a rolling outcome
// window. Closed, it counts failures; at FailureRate over the window
// it opens and rejects immediately — a persistently failing or slow
// tier stops costing its deadline on every request. After Cooldown it
// admits exactly one probe (half-open); the probe's outcome closes or
// re-opens the circuit. All transitions are driven by the injected
// clock, never by background goroutines, so a fake clock makes every
// transition deterministic in tests.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	outcomes []bool // ring buffer of recent results, true = failure
	next     int    // ring write position
	filled   int    // occupied ring slots
	openedAt time.Time
	trips    int64
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg = cfg.withDefaults()
	return &Breaker{cfg: cfg, outcomes: make([]bool, cfg.Window)}
}

// Allow reports whether a request may proceed. It returns nil when the
// circuit is closed or the caller won the half-open probe slot, and an
// error wrapping ErrBreakerOpen otherwise.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return nil
	case BreakerHalfOpen:
		// A probe is already in flight; everyone else keeps waiting.
		return fmt.Errorf("%w (probe in flight)", ErrBreakerOpen)
	default:
		if b.cfg.Now().Sub(b.openedAt) < b.cfg.Cooldown {
			return fmt.Errorf("%w (cooling down)", ErrBreakerOpen)
		}
		// Cooldown over: this caller becomes the half-open probe.
		b.state = BreakerHalfOpen
		return nil
	}
}

// Record feeds one outcome (err != nil = failure) into the machine.
func (b *Breaker) Record(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	failed := err != nil
	if b.state == BreakerHalfOpen {
		if failed {
			b.open()
		} else {
			b.reset()
		}
		return
	}
	if b.state == BreakerOpen {
		// A request admitted before the trip finishing late; its
		// outcome no longer matters.
		return
	}
	b.outcomes[b.next] = failed
	b.next = (b.next + 1) % len(b.outcomes)
	if b.filled < len(b.outcomes) {
		b.filled++
	}
	if b.filled < b.cfg.MinSamples {
		return
	}
	failures := 0
	for i := 0; i < b.filled; i++ {
		if b.outcomes[i] {
			failures++
		}
	}
	if float64(failures)/float64(b.filled) >= b.cfg.FailureRate {
		b.open()
	}
}

// open transitions to Open and starts the cooldown (caller holds mu).
func (b *Breaker) open() {
	b.state = BreakerOpen
	b.openedAt = b.cfg.Now()
	b.trips++
	b.clearWindow()
}

// reset transitions to Closed with an empty window (caller holds mu).
func (b *Breaker) reset() {
	b.state = BreakerClosed
	b.clearWindow()
}

func (b *Breaker) clearWindow() {
	for i := range b.outcomes {
		b.outcomes[i] = false
	}
	b.next, b.filled = 0, 0
}

// State returns the current state without advancing it.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips returns how many times the breaker has opened.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// ---------------------------------------------------------------------
// Per-tier breaker set, pluggable as a runtime.TierHook.
// ---------------------------------------------------------------------

// TierBreakers lazily maintains one Breaker per translator tier and
// implements runtime.TierHook: a tier whose breaker is open is skipped
// by the degradation chain without paying its deadline, and every
// tier outcome feeds that tier's window.
type TierBreakers struct {
	cfg BreakerConfig

	mu sync.Mutex
	m  map[string]*Breaker
}

// NewTierBreakers returns an empty set; breakers are created on first
// contact with a tier name.
func NewTierBreakers(cfg BreakerConfig) *TierBreakers {
	return &TierBreakers{cfg: cfg.withDefaults(), m: map[string]*Breaker{}}
}

var _ runtime.TierHook = (*TierBreakers)(nil)

func (tb *TierBreakers) breaker(tier string) *Breaker {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	b, ok := tb.m[tier]
	if !ok {
		b = NewBreaker(tb.cfg)
		tb.m[tier] = b
	}
	return b
}

// Allow implements runtime.TierHook.
func (tb *TierBreakers) Allow(tier string) error { return tb.breaker(tier).Allow() }

// Record implements runtime.TierHook.
func (tb *TierBreakers) Record(tier string, err error) { tb.breaker(tier).Record(err) }

// States snapshots every known tier's state name, sorted by tier for
// a deterministic /statsz rendering.
func (tb *TierBreakers) States() map[string]string {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	names := make([]string, 0, len(tb.m))
	for name := range tb.m {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make(map[string]string, len(names))
	for _, name := range names {
		out[name] = tb.m[name].State().String()
	}
	return out
}
