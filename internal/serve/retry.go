package serve

import (
	"context"
	"time"

	"repro/internal/par"
)

// RetryPolicy is capped exponential backoff with seeded jitter.
// Delays are a pure function of (Seed, request id, attempt) through
// the same SplitMix64 derivation the rest of the repository uses for
// RNG streams, so a retry schedule is reproducible from the request
// id alone — no global RNG, no scheduling dependence.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (default 1 = no retry).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 10ms);
	// it doubles per retry up to MaxDelay (default 250ms).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Seed selects the jitter stream.
	Seed int64
	// Sleep is injected by tests to observe delays without waiting;
	// nil sleeps for real, but never past ctx.
	Sleep func(time.Duration)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 1
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 10 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 250 * time.Millisecond
	}
	return p
}

// delay computes the backoff before retry attempt a (0-based) of
// request id: exponential growth capped at MaxDelay, then jittered
// into [d/2, d) so synchronized clients decorrelate.
func (p RetryPolicy) delay(id int64, a int) time.Duration {
	d := p.BaseDelay << uint(a)
	if d <= 0 || d > p.MaxDelay { // <= 0 catches shift overflow
		d = p.MaxDelay
	}
	half := int64(d / 2)
	if half <= 0 {
		return d
	}
	jitter := uint64(par.SplitSeed(p.Seed^id, a)) % uint64(half)
	return time.Duration(half + int64(jitter))
}

// Do runs fn up to MaxAttempts times, backing off between attempts.
// retryable decides which errors are worth another try; a
// non-retryable error (validation, an expired deadline) returns
// immediately. It reports how many retries ran and the final error
// (nil on success). A context that expires during backoff ends the
// loop with the context's error.
func (p RetryPolicy) Do(ctx context.Context, id int64, retryable func(error) bool, fn func() error) (retries int, err error) {
	p = p.withDefaults()
	for attempt := 0; ; attempt++ {
		err = fn()
		if err == nil || attempt >= p.MaxAttempts-1 || !retryable(err) {
			return retries, err
		}
		if serr := p.sleep(ctx, p.delay(id, attempt)); serr != nil {
			return retries, serr
		}
		retries++
	}
}

// sleep waits d or until ctx is done, whichever is first.
func (p RetryPolicy) sleep(ctx context.Context, d time.Duration) error {
	if p.Sleep != nil {
		p.Sleep(d)
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
