package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/boot"
	"repro/internal/engine"
	"repro/internal/models"
	"repro/internal/runtime"
	"repro/internal/schema"
)

// shipsSchema is a second tenant domain sharing the patients schema's
// column vocabulary (name, age) so the very same question is valid —
// and must answer differently — on both tenants.
func shipsSchema(t *testing.T) *schema.Schema {
	t.Helper()
	s := &schema.Schema{
		Name: "ships",
		Tables: []*schema.Table{{
			Name: "ships", Readable: "ship",
			Columns: []*schema.Column{
				{Name: "id", Type: schema.Number, PrimaryKey: true},
				{Name: "name", Type: schema.Text},
				{Name: "age", Type: schema.Number, Domain: schema.DomainAge},
			},
		}},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

// shipOracle answers every question with the ships-schema query
// (constant-free, so it binds on any input).
type shipOracle struct{}

func (shipOracle) Name() string           { return "ship-oracle" }
func (shipOracle) Train([]models.Example) {}
func (shipOracle) Translate(nl, st []string) []string {
	return strings.Fields("SELECT name FROM ships")
}

// shipsUnit assembles the ships tenant.
func shipsUnit(t *testing.T) *boot.Unit {
	t.Helper()
	s := shipsSchema(t)
	db, err := engine.GenerateData(s, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	m := shipOracle{}
	return &boot.Unit{Schema: s, DB: db, Model: m, Translator: runtime.NewTranslator(db, m)}
}

// patientsUnit assembles the patients tenant around the given model.
func patientsUnit(t *testing.T, m models.Translator) *boot.Unit {
	t.Helper()
	db := testDB(t)
	return &boot.Unit{Schema: db.Schema, DB: db, Model: m, Translator: runtime.NewTranslator(db, m)}
}

// newMultiServer boots a two-tenant server: patients (default) and
// ships.
func newMultiServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := NewMulti([]*boot.Unit{patientsUnit(t, oracleModel{}), shipsUnit(t)}, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// TestMultiTenantRouting: one server, two schemas, four routes — the
// /v1/{schema}/ prefix and the legacy ?schema= parameter both reach
// the named tenant, and the bare legacy route reaches the default
// (first-installed) tenant.
func TestMultiTenantRouting(t *testing.T) {
	_, ts := newMultiServer(t, Config{Workers: 2})
	cases := []struct {
		path     string
		wantFrom string
		schema   string
	}{
		{"/v1/patients/ask?q=", "FROM patients", "patients"},
		{"/v1/ships/ask?q=", "FROM ships", "ships"},
		{"/ask?q=", "FROM patients", "patients"}, // default tenant
		{"/ask?schema=ships&q=", "FROM ships", "ships"},
		{"/v1/ships/translate?q=", "FROM ships", "ships"},
	}
	for _, tc := range cases {
		var resp askResponse
		if status := getJSON(t, ts.URL+tc.path+urlQuery(goodQuestion), &resp); status != http.StatusOK {
			t.Fatalf("%s: status %d", tc.path, status)
		}
		if !strings.Contains(resp.SQL, tc.wantFrom) {
			t.Fatalf("%s: SQL %q, want it to contain %q", tc.path, resp.SQL, tc.wantFrom)
		}
		if resp.Schema != tc.schema {
			t.Fatalf("%s: schema %q, want %q", tc.path, resp.Schema, tc.schema)
		}
	}
}

// TestCacheKeySeparatesTenants is the cross-tenant cache-poisoning
// regression test: with result caching on, the identical question
// asked on two tenants must produce each tenant's own SQL — the second
// tenant must not be served the first tenant's cached decode. Both
// layers of defense are asserted: runtime.CacheKey qualifies the key
// by schema name, and each tenant's version carries its own cache (so
// the second ask is a per-tenant miss, not a hit).
func TestCacheKeySeparatesTenants(t *testing.T) {
	s, ts := newMultiServer(t, Config{Workers: 2, CacheSize: 32})

	var fromPatients, fromShips askResponse
	if status := getJSON(t, ts.URL+"/v1/patients/translate?q="+urlQuery(goodQuestion), &fromPatients); status != http.StatusOK {
		t.Fatalf("patients translate status %d", status)
	}
	if status := getJSON(t, ts.URL+"/v1/ships/translate?q="+urlQuery(goodQuestion), &fromShips); status != http.StatusOK {
		t.Fatalf("ships translate status %d", status)
	}
	if !strings.Contains(fromPatients.SQL, "FROM patients") {
		t.Fatalf("patients SQL = %q", fromPatients.SQL)
	}
	if !strings.Contains(fromShips.SQL, "FROM ships") {
		t.Fatalf("ships answered %q — the other tenant's cached decode leaked across", fromShips.SQL)
	}

	st := s.Snapshot()
	for _, name := range []string{"patients", "ships"} {
		row, ok := st.Tenants[name]
		if !ok || row.Cache == nil {
			t.Fatalf("tenant %s missing cache stats: %+v", name, row)
		}
		if row.Cache.Misses != 1 || row.Cache.Hits != 0 {
			t.Fatalf("tenant %s cache = %+v, want exactly its own cold miss", name, row.Cache)
		}
	}

	// And the runtime-level invariant directly: identical NL, distinct
	// schemas, distinct keys.
	nl := strings.Fields("show me name")
	kp := s.reg.Lookup("patients").Current().Unit.Translator.CacheKey(nl)
	ks := s.reg.Lookup("ships").Current().Unit.Translator.CacheKey(nl)
	if kp == ks {
		t.Fatalf("CacheKey collision across tenants: %q", kp)
	}
}

// TestUnknownSchemaIs404: requests naming a schema nobody serves get
// the unknown_schema kind, on both route forms, as does a malformed
// /v1/ path.
func TestUnknownSchemaIs404(t *testing.T) {
	_, ts := newMultiServer(t, Config{Workers: 1})
	for _, path := range []string{
		"/v1/nosuch/ask?q=x",
		"/ask?schema=nosuch&q=x",
		"/v1/patients/frobnicate?q=x",
		"/v1/patients",
	} {
		var env errorEnvelope
		if status := getJSON(t, ts.URL+path, &env); status != http.StatusNotFound {
			t.Fatalf("%s: status %d, want 404", path, status)
		}
		if env.Error.Kind != KindNotFound {
			t.Fatalf("%s: kind %q, want %q", path, env.Error.Kind, KindNotFound)
		}
	}
}

// TestOnboardingTenantIs503: a tenant that exists but has no serving
// version yet answers 503 with the onboarding kind (clients poll GET
// /schemas/{name} and retry), without disturbing the ready tenants.
func TestOnboardingTenantIs503(t *testing.T) {
	s, ts := newMultiServer(t, Config{Workers: 1})
	bt := &blockingTrainer{started: make(chan struct{})}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if _, err := s.Registry().Onboard(ctx, boot.Spec{
		Schema: "synth:77", Seed: 77, Rows: 3,
		Factory: func(int64) models.Translator { return bt },
	}); err != nil {
		t.Fatal(err)
	}
	<-bt.started

	var env errorEnvelope
	if status := getJSON(t, ts.URL+"/v1/synth77/ask?q="+urlQuery(goodQuestion), &env); status != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", status)
	}
	if env.Error.Kind != KindOnboarding {
		t.Fatalf("kind %q, want %q", env.Error.Kind, KindOnboarding)
	}
	var resp askResponse
	if status := getJSON(t, ts.URL+"/v1/patients/ask?q="+urlQuery(goodQuestion), &resp); status != http.StatusOK {
		t.Fatalf("ready tenant disturbed: status %d", status)
	}
	cancel()
	s.Registry().Wait()
}

// blockingTrainer blocks in TrainContext until cancelled, parking an
// onboarding mid-build.
type blockingTrainer struct{ started chan struct{} }

func (b *blockingTrainer) Name() string                     { return "blocking" }
func (b *blockingTrainer) Train([]models.Example)           {}
func (b *blockingTrainer) Translate(_, _ []string) []string { return nil }
func (b *blockingTrainer) TrainContext(ctx context.Context, _ []models.Example, _ models.TrainOptions) error {
	close(b.started)
	<-ctx.Done()
	return ctx.Err()
}

// postJSON POSTs a JSON body and decodes the response.
func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decoding: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestAdminOnboardLifecycle drives the admin API end to end: POST
// /schemas starts a background build (202 + status), GET /schemas and
// GET /schemas/{name} expose its progress through to ready, /statsz
// grows a per-tenant row, the new tenant answers /v1/ requests without
// any restart, and DELETE retires it.
func TestAdminOnboardLifecycle(t *testing.T) {
	s, ts := newMultiServer(t, Config{Workers: 2})

	var accepted map[string]any
	if status := postJSON(t, ts.URL+"/schemas",
		map[string]any{"schema": "synth:21", "model": "nn", "rows": 3, "seed": 21},
		&accepted); status != http.StatusAccepted {
		t.Fatalf("POST /schemas status %d (%v)", status, accepted)
	}
	if accepted["name"] != "synth21" {
		t.Fatalf("accepted status = %v, want tenant synth21", accepted)
	}

	// Poll the per-tenant admin endpoint until the build lands.
	var st map[string]any
	deadline := time.Now().Add(30 * time.Second)
	for {
		if status := getJSON(t, ts.URL+"/schemas/synth21", &st); status != http.StatusOK {
			t.Fatalf("GET /schemas/synth21 status %d", status)
		}
		if st["state"] == "ready" {
			break
		}
		if st["state"] == "failed" || st["state"] == "rolled_back" {
			t.Fatalf("onboarding failed: %v", st)
		}
		if time.Now().After(deadline) {
			t.Fatalf("onboarding never became ready: %v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st["version"] != float64(1) {
		t.Fatalf("ready status = %v, want version 1", st)
	}

	var list struct {
		Schemas []map[string]any `json:"schemas"`
	}
	if status := getJSON(t, ts.URL+"/schemas", &list); status != http.StatusOK || len(list.Schemas) != 3 {
		t.Fatalf("GET /schemas = %d with %d tenants, want 3", status, len(list.Schemas))
	}

	row, ok := s.Snapshot().Tenants["synth21"]
	if !ok || row.State != "ready" || row.Version != 1 {
		t.Fatalf("statsz tenant row = %+v, want ready v1", row)
	}

	// The onboarded tenant serves immediately — the request must route
	// and be admitted (any taxonomy outcome but unknown_schema /
	// onboarding / shed proves the tenant is live).
	resp, err := http.Get(ts.URL + "/v1/synth21/ask?q=" + urlQuery("show the name of all entries"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNotFound, http.StatusServiceUnavailable, http.StatusTooManyRequests:
		t.Fatalf("onboarded tenant not serving: status %d", resp.StatusCode)
	}

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/schemas/synth21", nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE status %d, want 204", dresp.StatusCode)
	}
	var env errorEnvelope
	if status := getJSON(t, ts.URL+"/v1/synth21/ask?q=x", &env); status != http.StatusNotFound {
		t.Fatalf("deleted tenant still routable: status %d", status)
	}
	s.Registry().Wait()
}

// TestAdminValidation: the admin API rejects bad input with the
// validation kind.
func TestAdminValidation(t *testing.T) {
	s, ts := newMultiServer(t, Config{Workers: 1})
	var env errorEnvelope
	if status := postJSON(t, ts.URL+"/schemas", map[string]any{}, &env); status != http.StatusBadRequest {
		t.Fatalf("empty schema: status %d", status)
	}
	if status := postJSON(t, ts.URL+"/schemas", map[string]any{"schema": "nosuch"}, &env); status != http.StatusBadRequest {
		t.Fatalf("unknown schema: status %d, body %+v", status, env)
	}
	s.Drain()
	if status := postJSON(t, ts.URL+"/schemas", map[string]any{"schema": "synth:1"}, &env); status != http.StatusServiceUnavailable {
		t.Fatalf("draining onboard: status %d", status)
	}
	if env.Error.Kind != KindDraining {
		t.Fatalf("draining kind = %q", env.Error.Kind)
	}
}
