package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/models"
)

// BatcherConfig sizes the cross-request microbatcher.
type BatcherConfig struct {
	// MaxBatch flushes a batch as soon as it holds this many requests
	// (default 8). Values below 2 disable batching.
	MaxBatch int
	// MaxWait flushes a partial batch this long after its first
	// request arrived (default 2ms) — the latency bound a lone request
	// pays for the chance of sharing a decode.
	MaxWait time.Duration
}

func (c BatcherConfig) withDefaults() BatcherConfig {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	return c
}

// Batcher gathers concurrent decode requests into one batched forward
// pass over the model. Requests accumulate in the current batch until
// it is full (MaxBatch, flushed by the request that filled it) or the
// oldest request has waited MaxWait (flushed by the timer); either
// way, one goroutine decodes the whole batch — through the model's
// TranslateBatch when it implements models.BatchTranslator, per item
// otherwise — and every waiter receives its own row. A request whose
// context is cancelled while queued leaves immediately, and the flush
// skips it, so a dead client never occupies a batch slot into the
// decode.
//
// The batched decode is bit-identical per row to a sequential decode
// (the BatchTranslator contract), so batching changes throughput,
// never answers.
type Batcher struct {
	model  models.Translator
	schema []string
	cfg    BatcherConfig

	// after schedules the MaxWait flush; a test may replace it to
	// drive flushes by hand instead of by wall clock.
	after func(d time.Duration, f func()) *time.Timer

	mu  sync.Mutex
	cur *batch

	batches   atomic.Int64
	items     atomic.Int64
	flushFull atomic.Int64
	flushWait atomic.Int64
	cancelled atomic.Int64
}

// batch is one in-progress gather.
type batch struct {
	items []*batchItem
	timer *time.Timer
}

// batchItem is one request's slot in a batch.
type batchItem struct {
	nl   []string
	ctx  context.Context
	done chan struct{}
	out  []string
	err  error
}

// NewBatcher builds a batcher decoding with model over schemaToks.
func NewBatcher(model models.Translator, schemaToks []string, cfg BatcherConfig) *Batcher {
	return &Batcher{
		model:  model,
		schema: schemaToks,
		cfg:    cfg.withDefaults(),
		after:  time.AfterFunc,
	}
}

// BatcherStats is the /statsz batcher section.
type BatcherStats struct {
	MaxBatch  int     `json:"max_batch"`
	MaxWaitMS float64 `json:"max_wait_ms"`
	// Batches and Items are decode flushes and the requests they
	// carried; MeanBatch is Items/Batches.
	Batches   int64   `json:"batches"`
	Items     int64   `json:"items"`
	MeanBatch float64 `json:"mean_batch"`
	// FlushFull counts batches flushed at MaxBatch, FlushWait batches
	// flushed by the MaxWait timer.
	FlushFull int64 `json:"flush_full"`
	FlushWait int64 `json:"flush_wait"`
	// Cancelled counts requests that left a batch before its decode.
	Cancelled int64 `json:"cancelled"`
}

// Snapshot returns the current BatcherStats.
func (b *Batcher) Snapshot() BatcherStats {
	st := BatcherStats{
		MaxBatch:  b.cfg.MaxBatch,
		MaxWaitMS: float64(b.cfg.MaxWait) / float64(time.Millisecond),
		Batches:   b.batches.Load(),
		Items:     b.items.Load(),
		FlushFull: b.flushFull.Load(),
		FlushWait: b.flushWait.Load(),
		Cancelled: b.cancelled.Load(),
	}
	if st.Batches > 0 {
		st.MeanBatch = float64(st.Items) / float64(st.Batches)
	}
	return st
}

// Do submits one prepared question and blocks until its batch is
// decoded or ctx is done. The returned tokens are exactly what a
// sequential model.Translate(nl, schemaToks) would produce.
func (b *Batcher) Do(ctx context.Context, nl []string) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	it := &batchItem{nl: nl, ctx: ctx, done: make(chan struct{})}

	b.mu.Lock()
	if b.cur == nil {
		cur := &batch{}
		b.cur = cur
		// The timer flush races the full flush; flush() resolves the
		// race under b.mu by detaching cur exactly once.
		cur.timer = b.after(b.cfg.MaxWait, func() { b.flush(cur, &b.flushWait) })
	}
	cur := b.cur
	cur.items = append(cur.items, it)
	full := len(cur.items) >= b.cfg.MaxBatch
	if full {
		// Detach while still holding the lock so the next arrival
		// starts a fresh batch; this request becomes the flusher.
		b.cur = nil
	}
	b.mu.Unlock()

	if full {
		cur.timer.Stop()
		b.flushFull.Add(1)
		// The request that fills the batch donates its goroutine to
		// decode for everyone; its own ctx still exits early through
		// the select below, and dead-ctx items are dropped by decode.
		b.decode(cur) //lint:allow ctxdrop the flusher decodes the whole batch by design; per-item cancellation is honored via it.done/ctx.Done below
	}
	select {
	case <-it.done:
		return it.out, it.err
	case <-ctx.Done():
		// Leave the batch: the flush will see the dead context and
		// skip this slot.
		return nil, ctx.Err()
	}
}

// flush is the timer path: detach cur if it is still the current
// batch (a full flush may have beaten the timer) and decode it.
func (b *Batcher) flush(cur *batch, reason *atomic.Int64) {
	b.mu.Lock()
	if b.cur != cur {
		b.mu.Unlock()
		return
	}
	b.cur = nil
	b.mu.Unlock()
	reason.Add(1)
	b.decode(cur)
}

// decode runs the batched forward pass and distributes rows. A panic
// anywhere in the model is recovered into a per-item error — one
// poisoned question must not take down its batchmates' goroutines.
func (b *Batcher) decode(cur *batch) {
	b.batches.Add(1)
	live := cur.items[:0]
	for _, it := range cur.items {
		if err := it.ctx.Err(); err != nil {
			it.err = err
			b.cancelled.Add(1)
			close(it.done)
			continue
		}
		live = append(live, it)
	}
	b.items.Add(int64(len(live)))
	if len(live) == 0 {
		return
	}
	nls := make([][]string, len(live))
	for i, it := range live {
		nls[i] = it.nl
	}
	outs, err := func() (o [][]string, err error) {
		defer func() {
			if r := recover(); r != nil {
				o, err = nil, fmt.Errorf("serve: batched decode panicked: %v", r)
			}
		}()
		if bt, ok := b.model.(models.BatchTranslator); ok && len(live) > 1 {
			return bt.TranslateBatch(nls, b.schema), nil
		}
		return models.TranslateEach(b.model, nls, b.schema), nil
	}()
	for i, it := range live {
		if err != nil {
			it.err = err
		} else {
			it.out = outs[i]
		}
		close(it.done)
	}
}

// batchingModel routes a translator's single-question decodes through
// a Batcher while forwarding everything else, so the runtime's tier
// chain (breakers, deadlines, fallbacks) is oblivious to batching.
// It deliberately does not forward KTranslator: ranked-candidate
// (execution-guided) decoding bypasses the batcher.
type batchingModel struct {
	inner models.Translator
	b     *Batcher
}

// Name forwards to the wrapped model so tier accounting and breakers
// see the real tier name.
func (m batchingModel) Name() string { return m.inner.Name() }

// Train forwards to the wrapped model.
func (m batchingModel) Train(exs []models.Example) { m.inner.Train(exs) }

// Translate decodes through the batcher without a caller context.
func (m batchingModel) Translate(nl, schemaToks []string) []string {
	return m.TranslateContext(context.Background(), nl, schemaToks)
}

// TranslateContext implements models.ContextTranslator: the decode
// joins the current microbatch and leaves it cleanly if ctx dies.
func (m batchingModel) TranslateContext(ctx context.Context, nl, _ []string) []string {
	out, err := m.b.Do(ctx, nl)
	if err != nil {
		return nil
	}
	return out
}
