package serve

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/critic"
	"repro/internal/models"
	"repro/internal/runtime"
	"repro/internal/sqlast"
)

// newHTTPServer exposes an assembled Server over a test listener.
func newHTTPServer(t *testing.T, s *Server) string {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

// criticServer wires a test server whose translator finalizes through
// a critic with the given sandbox executor (nil = the real engine).
func criticServer(t *testing.T, model models.Translator, cfg Config, exec func(*sqlast.Query, int) error) (*Server, string) {
	t.Helper()
	db := testDB(t)
	tr := runtime.NewTranslator(db, model)
	tr.Critic = critic.New(db, critic.Config{Seed: 1, Exec: exec})
	s := New(tr, cfg)
	ts := newHTTPServer(t, s)
	return s, ts
}

// countingModel wraps a model and counts decodes.
type countingModel struct {
	inner models.Translator
	calls atomic.Int64
}

func (m *countingModel) Name() string           { return m.inner.Name() }
func (m *countingModel) Train([]models.Example) {}
func (m *countingModel) Translate(nl, st []string) []string {
	m.calls.Add(1)
	return m.inner.Translate(nl, st)
}

// A beam the critic rejects end to end must surface as the typed
// tier_exhausted 502 carrying the verdicts — not a generic 500 — and
// candidate rejections must not move the critic breaker.
func TestCriticRejectionIsTierExhausted(t *testing.T) {
	execFail := func(q *sqlast.Query, budget int) error {
		return errors.New("synthetic execution failure")
	}
	s, ts := criticServer(t, oracleModel{}, Config{Workers: 2}, execFail)

	var env errorEnvelope
	status := getJSON(t, ts+"/ask?q="+urlQuery(goodQuestion), &env)
	if status != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502", status)
	}
	if env.Error.Kind != KindTierExhausted {
		t.Fatalf("kind = %q, want %q", env.Error.Kind, KindTierExhausted)
	}
	if !strings.Contains(env.Error.Message, "exec_failed") {
		t.Fatalf("message = %q, want the critic verdict summary", env.Error.Message)
	}
	if got := s.Snapshot().CriticBreaker; got != "closed" {
		t.Fatalf("critic breaker = %q after candidate rejections, want closed", got)
	}
}

// An engine meltdown under the critic never takes the tenant down:
// every request still answers (unvalidated) while sandbox failures
// accumulate, and once MinSamples failures fill the window the critic
// breaker opens so later requests skip the sandbox entirely.
func TestCriticBreakerMeltdownDegrades(t *testing.T) {
	execPanic := func(q *sqlast.Query, budget int) error {
		panic("injected engine meltdown")
	}
	s, ts := criticServer(t, oracleModel{}, Config{Workers: 1}, execPanic)

	for i := 0; i < 4; i++ {
		var resp map[string]any
		if status := getJSON(t, ts+"/ask?q="+urlQuery(goodQuestion), &resp); status != http.StatusOK {
			t.Fatalf("request %d: status = %d, want 200 via degradation (resp %v)", i, status, resp)
		}
	}
	snap := s.Snapshot()
	if snap.CriticBreaker != "open" {
		t.Fatalf("critic breaker = %q after sustained sandbox failure, want open", snap.CriticBreaker)
	}
	if snap.Critic == nil || snap.Critic.Sandbox < 4 {
		t.Fatalf("critic stats = %+v, want >= 4 sandbox failures", snap.Critic)
	}
	// Breaker open: the sandbox is no longer consulted, answers keep
	// flowing, and the sandbox-failure count stops climbing.
	var resp map[string]any
	if status := getJSON(t, ts+"/ask?q="+urlQuery(goodQuestion), &resp); status != http.StatusOK {
		t.Fatalf("post-trip status = %d, want 200 (resp %v)", status, resp)
	}
	after := s.Snapshot()
	if after.Critic.Sandbox != snap.Critic.Sandbox {
		t.Fatalf("sandbox failures grew %d -> %d with the breaker open; critic was not skipped",
			snap.Critic.Sandbox, after.Critic.Sandbox)
	}
}

// A cache hit whose re-bound constants fail validation falls back to
// exactly one fresh decode instead of failing the request.
func TestCriticCacheStaleFallsBackToFreshDecode(t *testing.T) {
	db := testDB(t)
	model := &countingModel{inner: oracleModel{}}
	tr := runtime.NewTranslator(db, model)
	var failedOnce atomic.Bool
	tr.Critic = critic.New(db, critic.Config{
		Seed: 1,
		Exec: func(q *sqlast.Query, budget int) error {
			// The replayed candidates bind 45; reject them exactly once.
			if strings.Contains(q.String(), "= 45") && failedOnce.CompareAndSwap(false, true) {
				return errors.New("re-bound constants fail validation")
			}
			_, err := db.ExecuteBudget(q, budget)
			return err
		},
	})
	s := New(tr, Config{Workers: 2, CacheSize: 32})
	ts := newHTTPServer(t, s)

	// Leader: decodes, validates with constant 80, populates the cache.
	var first map[string]any
	if status := getJSON(t, ts+"/ask?q="+urlQuery(goodQuestion), &first); status != http.StatusOK {
		t.Fatalf("leader status = %d (resp %v)", status, first)
	}
	if model.calls.Load() != 1 {
		t.Fatalf("leader decodes = %d, want 1", model.calls.Load())
	}

	// Same shape, different constant: cache hit, replay fails critic
	// validation, one fresh decode answers.
	var second map[string]any
	status := getJSON(t, ts+"/ask?q="+urlQuery("show the names of all patients with age 45"), &second)
	if status != http.StatusOK {
		t.Fatalf("stale-replay status = %d, want 200 via fresh decode (resp %v)", status, second)
	}
	sql, _ := second["sql"].(string)
	if !strings.Contains(sql, "45") {
		t.Fatalf("answer sql = %q, want the re-bound constant", sql)
	}
	if model.calls.Load() != 2 {
		t.Fatalf("decodes = %d, want exactly one fresh decode after the stale replay", model.calls.Load())
	}
	if !failedOnce.Load() {
		t.Fatal("the injected validation failure never fired; test proved nothing")
	}
}
