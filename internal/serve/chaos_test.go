package serve

// Chaos tests for the serving layer: the three deterministic
// demonstrations the robustness contract requires.
//
//	(a) overload sheds with 429 + Retry-After while admitted requests
//	    complete;
//	(b) a failing primary tier trips its breaker and later requests are
//	    answered by the fallback tier without the primary running (and
//	    so without paying its deadline);
//	(c) drain + shutdown finishes in-flight requests and leaks zero
//	    goroutines.
//
// Determinism comes from gates (channels), call counters, and fake
// clocks — never from sleeping and hoping.

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	goruntime "runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/models"
	"repro/internal/runtime"
)

// decodeBody reads, closes, and unmarshals an http.Response body.
func decodeBody(resp *http.Response, out any) error {
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	return json.Unmarshal(body, out)
}

// waitForGoroutines retries until the goroutine count drops to the
// baseline, failing with a full stack dump if it never does — the
// stdlib-only goleak check (same pattern as internal/fault).
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	for i := 0; i < 100; i++ {
		if goruntime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := goruntime.Stack(buf, true)
	t.Fatalf("goroutines leaked: %d > baseline %d\n%s", goruntime.NumGoroutine(), baseline, buf[:n])
}

// waitForSnapshot polls the stats snapshot until cond holds.
func waitForSnapshot(t *testing.T, s *Server, what string, cond func(Stats) bool) {
	t.Helper()
	for i := 0; i < 250; i++ {
		if cond(s.Snapshot()) {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("server never reached state %q; stats: %+v", what, s.Snapshot())
}

// TestOverloadShedsWhileInFlightCompletes: with 2 workers and a
// 1-slot waiting room, requests 1-3 occupy every slot; request 4 is
// shed with 429 + Retry-After while the first three, once the model
// gate opens, all complete with 200.
func TestOverloadShedsWhileInFlightCompletes(t *testing.T) {
	block := newBlockModel()
	s, ts := newTestServer(t, block, Config{Workers: 2, Queue: 1, DisableBreakers: true})

	type result struct {
		status int
		rows   int
	}
	results := make(chan result, 3)
	for i := 0; i < 3; i++ {
		go func() {
			var resp askResponse
			status := getJSON(t, ts.URL+"/ask?q="+urlQuery(goodQuestion), &resp)
			results <- result{status, len(resp.Rows)}
		}()
	}

	// Deterministic overload: wait until both slots are taken and the
	// waiting room holds the third request.
	waitForSnapshot(t, s, "2 in flight + 1 queued", func(st Stats) bool {
		return st.InFlight == 2 && st.QueueDepth == 1
	})

	// The fourth request finds no slot and a full waiting room: shed.
	resp, err := http.Get(ts.URL + "/ask?q=" + urlQuery(goodQuestion))
	if err != nil {
		t.Fatal(err)
	}
	var env errorEnvelope
	if derr := decodeBody(resp, &env); derr != nil {
		t.Fatal(derr)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if env.Error.Kind != KindShed {
		t.Fatalf("kind = %q, want shed", env.Error.Kind)
	}

	// Open the gate: every admitted request must still complete.
	block.release()
	for i := 0; i < 3; i++ {
		r := <-results
		if r.status != http.StatusOK || r.rows != 3 {
			t.Fatalf("admitted request %d finished %d with %d rows, want 200 with 3", i, r.status, r.rows)
		}
	}
	st := s.Snapshot()
	if st.Shed != 1 || st.Completed != 3 || st.InFlight != 0 || st.QueueDepth != 0 {
		t.Fatalf("final stats %+v, want shed=1 completed=3 and empty occupancy", st)
	}
}

// TestBreakerTripsAndFallbackKeepsAnswering: a fast-failing primary
// feeds its breaker until it opens; from then on the chain skips the
// primary entirely — its call counter freezes — while every request
// keeps getting answered by the fallback tier.
func TestBreakerTripsAndFallbackKeepsAnswering(t *testing.T) {
	fail := &failModel{}
	clk := newFakeClock()
	tr := runtime.NewTranslator(testDB(t), fail)
	tr.Fallbacks = []models.Translator{oracleModel{}}
	s := New(tr, Config{Workers: 2, Breaker: BreakerConfig{
		Window: 4, MinSamples: 2, FailureRate: 0.5, Cooldown: time.Hour, Now: clk.Now,
	}})

	ask := func() askResponse {
		t.Helper()
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodGet, "/ask?q="+urlQuery(goodQuestion), nil)
		s.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("status = %d body %s", rec.Code, rec.Body.String())
		}
		var resp askResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Two failures reach MinSamples at 100% failure rate: trip.
	for i := 0; i < 2; i++ {
		if resp := ask(); resp.Tier != "oracle" {
			t.Fatalf("request %d answered by %q, want the oracle fallback", i, resp.Tier)
		}
	}
	if calls := fail.calls.Load(); calls != 2 {
		t.Fatalf("primary calls = %d, want 2 before the trip", calls)
	}
	if st := s.Snapshot().Breakers["fail"]; st != "open" {
		t.Fatalf("primary breaker = %q, want open", st)
	}

	// Post-trip: the primary is skipped, not re-run.
	for i := 0; i < 5; i++ {
		resp := ask()
		if resp.Tier != "oracle" {
			t.Fatalf("post-trip request answered by %q", resp.Tier)
		}
		if !containsSkip(resp.TierErrors) {
			t.Fatalf("post-trip trace lacks the skip note: %v", resp.TierErrors)
		}
	}
	if calls := fail.calls.Load(); calls != 2 {
		t.Fatalf("primary calls grew to %d after the trip", calls)
	}
	if st := s.Snapshot(); st.Tiers["oracle"] != 7 || st.Completed != 7 {
		t.Fatalf("stats %+v, want all 7 answered by oracle", st)
	}

	// After the cooldown the breaker half-opens and the probe request
	// reaches the primary again.
	clk.Advance(2 * time.Hour)
	_ = ask()
	if calls := fail.calls.Load(); calls != 3 {
		t.Fatalf("primary calls = %d after cooldown, want the half-open probe", calls)
	}
	if st := s.Snapshot().Breakers["fail"]; st != "open" {
		t.Fatalf("breaker after failed probe = %q, want open again", st)
	}
}

// TestOpenBreakerSkipsSlowTierWithoutPayingDeadline: the primary tier
// hangs and the translator's per-tier deadline is far beyond the test
// timeout. With the primary's breaker pre-tripped, a request must be
// answered by the fallback without the primary ever running — the
// open circuit saves the whole deadline, not just part of it.
func TestOpenBreakerSkipsSlowTierWithoutPayingDeadline(t *testing.T) {
	block := newBlockModel()
	t.Cleanup(block.release)
	clk := newFakeClock()
	tr := runtime.NewTranslator(testDB(t), block)
	tr.Fallbacks = []models.Translator{oracleModel{}}
	tr.Deadline = time.Hour // hanging tier would eat this without the breaker
	s := New(tr, Config{Workers: 1, Breaker: BreakerConfig{
		Window: 4, MinSamples: 2, FailureRate: 0.5, Cooldown: time.Hour, Now: clk.Now,
	}})

	// Trip the primary's breaker directly (deterministic setup: no
	// request ever has to wait out the hanging tier). Breakers live on
	// the serving version now, so reach them through its equipment.
	brk := versionEquipment(s.defaultVersion()).breakers
	brk.Record("block", errTier)
	brk.Record("block", errTier)
	if st := brk.States()["block"]; st != "open" {
		t.Fatalf("setup: breaker = %q, want open", st)
	}

	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/ask?q="+urlQuery(goodQuestion), nil)
	s.Handler().ServeHTTP(rec, req) // would block ~1h if the tier ran
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d body %s", rec.Code, rec.Body.String())
	}
	var resp askResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Tier != "oracle" {
		t.Fatalf("tier = %q, want the fallback", resp.Tier)
	}
	if block.calls.Load() != 0 {
		t.Fatal("hanging primary was invoked despite the open breaker")
	}
	if !containsSkip(resp.TierErrors) {
		t.Fatalf("trace lacks the skip note: %v", resp.TierErrors)
	}
}

// TestDrainFinishesInFlightAndLeaksNothing: with a request parked
// mid-translation, Drain flips /readyz to 503 and rejects new work;
// Shutdown then completes once the in-flight request finishes with
// 200, the Serve loop exits with ErrServerClosed, and the goroutine
// count returns to its pre-server baseline.
func TestDrainFinishesInFlightAndLeaksNothing(t *testing.T) {
	baseline := goruntime.NumGoroutine()

	block := newBlockModel()
	tr := runtime.NewTranslator(testDB(t), block)
	s := New(tr, Config{Workers: 2, DisableBreakers: true})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := s.Start(ln)
	base := "http://" + ln.Addr().String()
	client := &http.Client{Transport: &http.Transport{}}

	// Park one request inside the translator.
	inFlight := make(chan result1, 1)
	go func() {
		resp, err := client.Get(base + "/ask?q=" + urlQuery(goodQuestion))
		if err != nil {
			inFlight <- result1{err: err}
			return
		}
		var body askResponse
		derr := decodeBody(resp, &body)
		inFlight <- result1{status: resp.StatusCode, rows: len(body.Rows), err: derr}
	}()
	waitForSnapshot(t, s, "1 in flight", func(st Stats) bool { return st.InFlight == 1 })

	// Drain: readiness flips, new work is refused, liveness stays up.
	s.Drain()
	if resp, err := client.Get(base + "/readyz"); err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz after drain: %v %v", resp, err)
	} else {
		resp.Body.Close()
	}
	if resp, err := client.Get(base + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after drain: %v %v", resp, err)
	} else {
		resp.Body.Close()
	}
	resp, err := client.Get(base + "/ask?q=" + urlQuery(goodQuestion))
	if err != nil {
		t.Fatal(err)
	}
	var env errorEnvelope
	if derr := decodeBody(resp, &env); derr != nil {
		t.Fatal(derr)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || env.Error.Kind != KindDraining {
		t.Fatalf("new work during drain: %d %q, want 503 draining", resp.StatusCode, env.Error.Kind)
	}

	// Release the parked request and shut down; both must finish clean.
	block.release()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	r := <-inFlight
	if r.err != nil || r.status != http.StatusOK || r.rows != 3 {
		t.Fatalf("in-flight request after drain: %+v, want 200 with 3 rows", r)
	}
	if serr := <-serveErr; serr != http.ErrServerClosed {
		t.Fatalf("Serve returned %v, want ErrServerClosed", serr)
	}

	client.CloseIdleConnections()
	waitForGoroutines(t, baseline)

	st := s.Snapshot()
	if !st.Draining || st.Completed != 1 || st.InFlight != 0 {
		t.Fatalf("final stats %+v, want draining with the one completion", st)
	}
}

// result1 carries one drained request's outcome.
type result1 struct {
	status int
	rows   int
	err    error
}

// containsSkip reports whether a trace's tier errors include a
// breaker skip note.
func containsSkip(tierErrors []string) bool {
	for _, e := range tierErrors {
		if strings.Contains(e, "skipped") && strings.Contains(e, "circuit open") {
			return true
		}
	}
	return false
}
