package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"

	"repro/internal/boot"
	"repro/internal/registry"
)

// onboardRequest is the POST /schemas body. Schema is required; the
// rest defaults like the CLI flags do (sketch model, seed 1, 40 rows).
type onboardRequest struct {
	// Schema names what to onboard: "patients", a spider-zoo schema, or
	// "synth:<seed>" for a generated cross-domain one.
	Schema string `json:"schema"`
	Model  string `json:"model,omitempty"`
	Seed   int64  `json:"seed,omitempty"`
	Rows   int    `json:"rows,omitempty"`
	// Fallback adds the nearest-neighbor degradation tier; ExecGuided
	// enables execution-guided decoding over N candidates.
	Fallback   bool `json:"fallback,omitempty"`
	ExecGuided int  `json:"execguided,omitempty"`
	// Critic overrides the server's critic setting for this tenant
	// (absent = inherit the server configuration).
	Critic *bool `json:"critic,omitempty"`
}

// schemasResponse is the GET /schemas body.
type schemasResponse struct {
	Schemas []registry.Status `json:"schemas"`
}

// handleSchemas routes the /schemas collection: GET lists every
// tenant's status, POST onboards a new schema in the background and
// answers 202 with its initial status.
func (s *Server) handleSchemas(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, schemasResponse{Schemas: s.reg.Statuses()})
	case http.MethodPost:
		s.handleOnboard(w, r)
	default:
		w.Header().Set("Allow", "GET, POST")
		writeError(w, KindValidation, 0, "method %s not allowed; use GET or POST", r.Method)
	}
}

// handleOnboard starts a background onboarding. The response is
// immediate; progress is polled via GET /schemas/{name} until the
// state reaches ready (or failed / rolled_back).
func (s *Server) handleOnboard(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		// A draining process is about to exit; accepting a build that
		// cannot finish would only leave a surprised poller.
		writeError(w, KindDraining, 0, "server is draining; not accepting onboarding")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeError(w, KindValidation, 0, "unreadable request body")
		return
	}
	var req onboardRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, KindValidation, 0, "malformed JSON body; want {\"schema\": \"...\"}")
		return
	}
	if req.Schema == "" {
		writeError(w, KindValidation, 0, "schema is required")
		return
	}
	criticOn := s.cfg.Critic
	if req.Critic != nil {
		criticOn = *req.Critic
	}
	spec := boot.Spec{
		Schema:          req.Schema,
		Model:           req.Model,
		Seed:            req.Seed,
		Rows:            req.Rows,
		Fallback:        req.Fallback,
		ExecGuided:      req.ExecGuided,
		Critic:          criticOn,
		CriticRowBudget: s.cfg.CriticRowBudget,
		CriticTimeout:   s.cfg.CriticTimeout,
	}
	if _, _, rerr := boot.ResolveSchema(req.Schema, 1, 1); rerr != nil {
		writeError(w, KindValidation, 0, "%v", rerr)
		return
	}
	t, err := s.reg.Onboard(s.onboardCtx, spec)
	if err != nil {
		writeError(w, KindValidation, 0, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, t.Status())
}

// handleSchema routes one tenant: GET /schemas/{name} answers its
// status, DELETE removes it (cancelling any in-flight onboarding;
// requests already holding its version finish normally).
func (s *Server) handleSchema(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/schemas/")
	if name == "" || strings.Contains(name, "/") {
		writeError(w, KindNotFound, 0, "no route %s; want /schemas/{name}", r.URL.Path)
		return
	}
	switch r.Method {
	case http.MethodGet:
		t := s.reg.Lookup(name)
		if t == nil {
			writeError(w, KindNotFound, 0, "unknown schema %q; GET /schemas lists tenants", name)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, t.Status())
	case http.MethodDelete:
		if !s.reg.Remove(name) {
			writeError(w, KindNotFound, 0, "unknown schema %q; GET /schemas lists tenants", name)
			return
		}
		s.mu.Lock()
		delete(s.tenants, name)
		s.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	default:
		w.Header().Set("Allow", "GET, DELETE")
		writeError(w, KindValidation, 0, "method %s not allowed; use GET or DELETE", r.Method)
	}
}
