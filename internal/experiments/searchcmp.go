package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/hyperopt"
	"repro/internal/models"
	"repro/internal/spider"
)

// SearchComparison holds the random-vs-model-based hyperparameter
// search comparison (the paper's §3.3 remark: Bayesian-style
// optimization "did not find to improve the accuracy over the random
// search strategy").
type SearchComparison struct {
	Scale         Scale
	Trials        int
	RandomBest    float64
	RandomMean    float64
	SurrogateBest float64
	SurrogateMean float64
	RandomConv    int
	SurrogateConv int
}

// RunSearchComparison runs both search strategies with the same trial
// budget against the real Generate(D, T, φ) objective (geo workload).
func RunSearchComparison(s Scale) *SearchComparison {
	d := spider.Build(s.Spider)
	base := spiderExamples(d.Train)
	geo := spider.GeoWorkload(280, s.Seed+4242)
	trainSchemas := spider.TrainSchemas()

	trialScale := s
	trialScale.Sketch.Epochs = max(2, s.Sketch.Epochs/2)
	trialScale.Seq2Seq.Epochs = max(2, s.Seq2Seq.Epochs/2)

	// Both strategies revisit instantiation settings (the surrogate
	// refines around promising candidates): a shared GenCache replays
	// those generations byte-identically instead of recomputing them.
	cache := core.NewGenCache(8)
	obj := func(p core.Params) (float64, bool) {
		var exs []models.Example
		exs = append(exs, base...)
		total := 0
		for i, sch := range trainSchemas {
			pipe := core.New(sch, p, s.Seed+int64(i)*31)
			pipe.Workers = 1
			pipe.Cache = cache
			pairs := pipe.Run()
			total += len(pairs)
			if total > s.HyperoptBudget {
				return 0, false
			}
			pairs = subsamplePairs(pairs, s.PipelinePerSchema, s.Seed+17)
			exs = append(exs, models.PairExamples(pairs, sch)...)
		}
		m := trialScale.newModel(s.Seed)
		m.Train(exs)
		return eval.EvalSpider(m, geo).Overall.Acc(), true
	}

	n := s.HyperoptTrials
	rnd := hyperopt.RandomSearch(hyperopt.DefaultSpace(), n, s.Seed+606, obj)
	sur := hyperopt.SurrogateSearch(hyperopt.DefaultSpace(), n, max(2, n/4), s.Seed+606, obj)

	out := &SearchComparison{Scale: s, Trials: n}
	out.RandomConv, _, out.RandomBest, out.RandomMean, _ = statsOf(rnd)
	out.SurrogateConv, _, out.SurrogateBest, out.SurrogateMean, _ = statsOf(sur)
	return out
}

func statsOf(trials []hyperopt.Trial) (n int, min, max, mean, std float64) {
	n, min, max, mean, std = hyperopt.Stats(trials)
	return
}

// Format renders the comparison.
func (r *SearchComparison) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Search-strategy comparison (%d trials each, %s model, geo workload)\n", r.Trials, r.Scale.ModelKind)
	fmt.Fprintf(&b, "%-12s %10s %10s %10s\n", "Strategy", "Best", "Mean", "Converged")
	fmt.Fprintf(&b, "%-12s %10.3f %10.3f %10d\n", "random", r.RandomBest, r.RandomMean, r.RandomConv)
	fmt.Fprintf(&b, "%-12s %10.3f %10.3f %10d\n", "surrogate", r.SurrogateBest, r.SurrogateMean, r.SurrogateConv)
	return b.String()
}
