package experiments

import (
	"strings"
	"testing"

	"repro/internal/models"
	"repro/internal/patients"
	"repro/internal/spider"
	"repro/internal/sqlast"
)

// The experiment tests run at QuickScale (roughly 15-20 seconds per
// experiment on one core) and are skipped entirely in -short mode.

func TestRunSpiderQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test skipped in -short mode")
	}
	e := RunSpider(QuickScale())
	t.Logf("\n%s\n%s", e.Table2(), e.Table4())

	base := e.Reports[Baseline].Overall.Acc()
	full := e.Reports[DBPalFull].Overall.Acc()
	if full <= base {
		t.Errorf("DBPal (Full) [%.3f] must beat the baseline [%.3f] (the paper's headline result)", full, base)
	}
	for _, cfg := range Configs {
		rep := e.Reports[cfg]
		if rep.Overall.Total != len(e.Dataset.Test) {
			t.Fatalf("config %s evaluated %d of %d questions", cfg, rep.Overall.Total, len(e.Dataset.Test))
		}
	}
	// Table rendering sanity.
	if !strings.Contains(e.Table2(), "DBPal (Full)") || !strings.Contains(e.Table4(), "Unseen") {
		t.Fatal("table rendering incomplete")
	}
}

func TestRunPatientsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test skipped in -short mode")
	}
	e := RunPatients(QuickScale())
	t.Logf("\n%s", e.Table3())

	base := e.Reports[Baseline].Overall.Acc()
	train := e.Reports[DBPalTrain].Overall.Acc()
	full := e.Reports[DBPalFull].Overall.Acc()
	if !(base < train && train < full) {
		t.Errorf("expected baseline < DBPal(Train) < DBPal(Full), got %.3f / %.3f / %.3f", base, train, full)
	}
	// The naive category should be the easiest for DBPal (Full), as in
	// the paper (0.947 naive vs 0.531 overall).
	fullRep := e.Reports[DBPalFull]
	if fullRep.ByCategory[patients.Naive].Acc() < fullRep.Overall.Acc() {
		t.Errorf("naive category [%.3f] should be above overall [%.3f]",
			fullRep.ByCategory[patients.Naive].Acc(), fullRep.Overall.Acc())
	}
}

func TestRunFigure3Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test skipped in -short mode")
	}
	r := RunFigure3(QuickScale())
	t.Logf("\n%s", r.Format())
	if len(r.Accuracy) != len(Figure3Fractions) {
		t.Fatalf("series length = %d", len(r.Accuracy))
	}
	// 0% of templates must be the worst point; 100% is normalized 1.0.
	if r.Accuracy[0] >= r.Accuracy[len(r.Accuracy)-1] {
		t.Errorf("0%% templates [%.3f] should underperform 100%% [%.3f]", r.Accuracy[0], r.Accuracy[len(r.Accuracy)-1])
	}
	if r.Normalized[len(r.Normalized)-1] != 1.0 {
		t.Fatalf("normalization anchor broken: %v", r.Normalized)
	}
}

func TestBalanceMixing(t *testing.T) {
	if len(balance(nil, nil)) != 0 {
		t.Fatal("empty inputs")
	}
	a := make([]models.Example, 10)
	mixed := balance(a, make([]models.Example, 35))
	// 10*4 (capped at x4) + 35
	if len(mixed) != 75 {
		t.Fatalf("balanced size = %d", len(mixed))
	}
	mixed2 := balance(a, make([]models.Example, 12))
	if len(mixed2) != 10*2+12 {
		t.Fatalf("balanced size2 = %d", len(mixed2))
	}
}

func TestScaleDefaults(t *testing.T) {
	d := DefaultScale()
	q := QuickScale()
	if q.Spider.TrainPerSchema >= d.Spider.TrainPerSchema {
		t.Fatal("quick scale should be smaller")
	}
	if d.ModelKind != "sketch" {
		t.Fatal("default model is the SyntaxSQLNet stand-in")
	}
	if d.HyperoptTrials != 68 {
		t.Fatalf("default hyperopt trials = %d, want the paper's 68", d.HyperoptTrials)
	}
}

func TestSpiderExamplesConversion(t *testing.T) {
	d := spider.Build(spider.Config{TrainPerSchema: 15, TestPerSchema: 5, Seed: 2}).Train
	exs := spiderExamples(d)
	if len(exs) != len(d) {
		t.Fatalf("converted %d of %d", len(exs), len(d))
	}
	for _, ex := range exs {
		if len(ex.NL) == 0 || len(ex.SQL) == 0 || len(ex.Schema) == 0 {
			t.Fatalf("incomplete example %+v", ex)
		}
		if ex.SQL[0] != "SELECT" {
			t.Fatalf("SQL tokens not normalized: %v", ex.SQL)
		}
		joined := strings.Join(ex.NL, " ")
		if strings.Contains(joined, "patients ") { // lemmatized
			t.Fatalf("NL not lemmatized: %q", joined)
		}
	}
	_ = sqlast.Easy
}
