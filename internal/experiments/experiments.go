// Package experiments contains the drivers that regenerate every table
// and figure of the paper's evaluation (§6): Table 2 (Spider by
// difficulty), Table 3 (Patients by linguistic category), Table 4
// (pattern-coverage breakdown), Figure 3 (seed-template fractions),
// and Figure 4 (hyperparameter random-search histogram), plus the
// ablation benches DESIGN.md calls out. cmd/dbpal-bench and the
// repository's bench_test.go are thin wrappers over this package.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/lemma"
	"repro/internal/models"
	"repro/internal/par"
	"repro/internal/patients"
	"repro/internal/pipeline"
	"repro/internal/schema"
	"repro/internal/spider"
	"repro/internal/sqlast"
	"repro/internal/tokens"
)

// Config names the three training-data configurations of the paper's
// evaluation.
type Config int

// The evaluation configurations: the baseline model trained on Spider
// data only, DBPal (Train) adding synthetic data for the training
// schemas, and DBPal (Full) adding synthetic data for the test schemas
// as well (never their NL–SQL pairs, only their schemas — §6.1.2).
const (
	Baseline Config = iota
	DBPalTrain
	DBPalFull
)

// String names the configuration as the paper's tables do.
func (c Config) String() string {
	switch c {
	case Baseline:
		return "SyntaxSQLNet"
	case DBPalTrain:
		return "DBPal (Train)"
	case DBPalFull:
		return "DBPal (Full)"
	default:
		return fmt.Sprintf("Config(%d)", int(c))
	}
}

// Configs lists the three configurations in reporting order.
var Configs = []Config{Baseline, DBPalTrain, DBPalFull}

// Scale sizes an experiment run. Everything is deterministic given
// Seed.
type Scale struct {
	Spider            spider.Config
	Pipeline          core.Params
	PipelinePerSchema int    // cap on synthetic pairs kept per schema
	ModelKind         string // "sketch" (SyntaxSQLNet stand-in) or "seq2seq"
	Sketch            models.SketchConfig
	Seq2Seq           models.Seq2SeqConfig
	HyperoptTrials    int
	// HyperoptBudget is the per-trial corpus-size budget standing in
	// for the paper's 6-hour training time limit: trials whose
	// generated corpus exceeds it are reported as not converged.
	HyperoptBudget int
	// HyperoptTrialCap bounds the synthetic pairs kept per schema per
	// hyperopt trial (each trial trains a full model, so trials run on
	// a reduced corpus — the time-boxed regime of the paper's §6.3.3).
	HyperoptTrialCap int
	// Workers bounds the worker pool of every parallel stage (config
	// training fan-out, evaluation, hyperopt trials, minibatch
	// backprop); 0 = runtime.NumCPU, 1 = fully sequential. Results are
	// identical for every value — the knob trades wall-clock for cores
	// only.
	Workers int
	Seed    int64
}

// DefaultScale is the full-size run used for EXPERIMENTS.md.
func DefaultScale() Scale {
	p := core.DefaultParams()
	p.Instantiation.SizeSlotFills = 6
	sk := models.DefaultSketchConfig()
	sk.SampleCap = 0 // every example each epoch: synthetic data supplements, never displaces
	s2 := models.DefaultSeq2SeqConfig()
	s2.SampleCap = 0
	return Scale{
		Spider:            spider.DefaultConfig(),
		Pipeline:          p,
		PipelinePerSchema: 600,
		ModelKind:         "sketch",
		Sketch:            sk,
		Seq2Seq:           s2,
		HyperoptTrials:    68,
		HyperoptBudget:    150000,
		HyperoptTrialCap:  150,
		Seed:              7,
	}
}

// QuickScale is a reduced run for -short tests and smoke benches.
func QuickScale() Scale {
	s := DefaultScale()
	s.Spider.TrainPerSchema = 60
	s.Spider.TestPerSchema = 25
	s.PipelinePerSchema = 200
	s.Sketch.Epochs = 3
	s.Seq2Seq.Epochs = 2
	s.Seq2Seq.SampleCap = 2000
	s.HyperoptTrials = 10
	s.HyperoptBudget = 120000
	s.HyperoptTrialCap = 100
	return s
}

// newModel builds a fresh translator per the scale, threading the
// scale's worker bound into the model's minibatch backprop pool.
func (s Scale) newModel(seed int64) models.Translator {
	switch s.ModelKind {
	case "seq2seq":
		cfg := s.Seq2Seq
		cfg.Seed = seed
		cfg.Workers = s.Workers
		return models.NewSeq2Seq(cfg)
	default:
		cfg := s.Sketch
		cfg.Seed = seed
		cfg.Workers = s.Workers
		return models.NewSketch(cfg)
	}
}

// spiderExamples converts benchmark questions into training examples
// (lemmatized NL, normalized SQL tokens, per-schema context).
func spiderExamples(qs []spider.Question) []models.Example {
	toks := map[string][]string{}
	out := make([]models.Example, 0, len(qs))
	for _, q := range qs {
		st, ok := toks[q.Schema]
		if !ok {
			st = models.SchemaTokens(spider.SchemaByName(q.Schema))
			toks[q.Schema] = st
		}
		sq, err := sqlast.Parse(q.SQL)
		if err != nil {
			continue
		}
		out = append(out, models.Example{
			NL:     lemma.LemmatizeAll(tokens.Tokenize(q.NL)),
			SQL:    sqlTokensNormalized(sq),
			Schema: st,
		})
	}
	return out
}

func sqlTokensNormalized(q *sqlast.Query) []string {
	return models.NormalizeSQLTokens(q.Tokens())
}

// pipelineData runs the stage-composed DBPal pipeline on one schema
// and returns up to cap examples (deterministically subsampled) plus
// the SQL strings of the kept pairs (for pattern-coverage analysis).
// cache may be nil; when shared across calls it memoizes the generate
// stage for repeated (schema, instantiation, seed) keys.
func pipelineData(s *schema.Schema, params core.Params, cap int, seed int64, workers int, cache *core.GenCache) ([]models.Example, []string) {
	pairs := pipelinePairs(s, params, seed, workers, cache, nil)
	pairs = subsamplePairs(pairs, cap, seed+17)
	exs := models.PairExamples(pairs, s)
	sqls := make([]string, len(pairs))
	for i, pr := range pairs {
		sqls[i] = pr.SQL
	}
	return exs, sqls
}

// pipelinePairs runs one pipeline with an optional stage-list edit
// (stages receives the configured pipeline and returns the stage list
// to run; nil selects the default generate→augment→lemmatize→dedup
// composition). This is how the ablations drop whole steps instead of
// zeroing their parameters.
func pipelinePairs(s *schema.Schema, params core.Params, seed int64, workers int, cache *core.GenCache, stages stageEdit) []core.Pair {
	p := core.New(s, params, seed)
	p.Workers = workers
	p.Cache = cache
	if stages == nil {
		return p.Run()
	}
	return p.Graph(stages(p)...).Collect()
}

// stageEdit rewrites a pipeline's stage list (an ablation expressed
// structurally); nil means the default composition.
type stageEdit func(p *core.Pipeline) []pipeline.Stage

func subsamplePairs(pairs []core.Pair, cap int, seed int64) []core.Pair {
	if cap <= 0 || len(pairs) <= cap {
		return pairs
	}
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(len(pairs))[:cap]
	out := make([]core.Pair, cap)
	for i, j := range idx {
		out[i] = pairs[j]
	}
	return out
}

// SpiderExperiment holds everything Tables 2 and 4 need from one
// (expensive) run: per-config evaluation reports plus the training
// pattern sets.
type SpiderExperiment struct {
	Scale          Scale
	Dataset        *spider.Dataset
	Reports        map[Config]*eval.SpiderReport
	SpiderPatterns map[string]bool
	DBPalPatterns  map[string]bool
	TrainSizes     map[Config]int
}

// RunSpider trains the three configurations and evaluates them on the
// synthetic Spider test split.
func RunSpider(s Scale) *SpiderExperiment {
	d := spider.Build(s.Spider)
	base := spiderExamples(d.Train)

	var dbpalTrain []models.Example
	var dbpalSQLs []string
	for i, sch := range spider.TrainSchemas() {
		exs, sqls := pipelineData(sch, s.Pipeline, s.PipelinePerSchema, s.Seed+int64(i)*31, s.Workers, nil)
		dbpalTrain = append(dbpalTrain, exs...)
		dbpalSQLs = append(dbpalSQLs, sqls...)
	}
	var dbpalTest []models.Example
	for i, sch := range spider.TestSchemas() {
		exs, sqls := pipelineData(sch, s.Pipeline, s.PipelinePerSchema, s.Seed+5000+int64(i)*31, s.Workers, nil)
		dbpalTest = append(dbpalTest, exs...)
		dbpalSQLs = append(dbpalSQLs, sqls...)
	}

	datasets := map[Config][]models.Example{
		Baseline:   base,
		DBPalTrain: balance(base, dbpalTrain),
		DBPalFull:  balance(base, concat(dbpalTrain, dbpalTest)),
	}

	exp := &SpiderExperiment{
		Scale:          s,
		Dataset:        d,
		Reports:        map[Config]*eval.SpiderReport{},
		SpiderPatterns: spider.QueryPatternSet(d.Train),
		DBPalPatterns:  eval.PatternsOfPairs(dbpalSQLs),
		TrainSizes:     map[Config]int{},
	}
	// The three configurations are independent train+eval pipelines:
	// fan them out on the worker pool, collecting per-config reports
	// into index-addressed slots so the assembled maps are identical
	// at any worker count.
	reports := make([]*eval.SpiderReport, len(Configs))
	par.Map(s.Workers, len(Configs), func(i int) {
		m := s.newModel(s.Seed)
		m.Train(datasets[Configs[i]])
		reports[i] = eval.EvalSpiderWorkers(m, d.Test, s.Workers)
	})
	for i, cfg := range Configs {
		exp.Reports[cfg] = reports[i]
		exp.TrainSizes[cfg] = len(datasets[cfg])
	}
	return exp
}

// Table2 renders the Spider-by-difficulty table.
func (e *SpiderExperiment) Table2() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: Spider Benchmark Results (%s model, exact match)\n", e.Scale.ModelKind)
	fmt.Fprintf(&b, "%-14s %8s %8s %8s %10s %8s\n", "Algorithm", "Easy", "Medium", "Hard", "VeryHard", "Overall")
	for _, cfg := range Configs {
		r := e.Reports[cfg]
		fmt.Fprintf(&b, "%-14s %8.3f %8.3f %8.3f %10.3f %8.3f\n", cfg,
			r.ByDifficulty[sqlast.Easy].Acc(),
			r.ByDifficulty[sqlast.Medium].Acc(),
			r.ByDifficulty[sqlast.Hard].Acc(),
			r.ByDifficulty[sqlast.VeryHard].Acc(),
			r.Overall.Acc())
	}
	return b.String()
}

// Table4 renders the pattern-coverage breakdown.
func (e *SpiderExperiment) Table4() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4: Pattern Coverage Breakdown for Spider (%s model)\n", e.Scale.ModelKind)
	fmt.Fprintf(&b, "%-14s %8s %8s %8s %8s\n", "Algorithm", "Both", "DBPal", "Spider", "Unseen")
	for _, cfg := range Configs {
		cov := eval.CoverageReport(e.Reports[cfg], e.SpiderPatterns, e.DBPalPatterns)
		fmt.Fprintf(&b, "%-14s %8.3f %8.3f %8.3f %8.3f\n", cfg,
			cov[eval.CoverBoth].Acc(), cov[eval.CoverDBPal].Acc(),
			cov[eval.CoverSpider].Acc(), cov[eval.CoverUnseen].Acc())
	}
	// Bucket sizes for context.
	cov := eval.CoverageReport(e.Reports[Baseline], e.SpiderPatterns, e.DBPalPatterns)
	fmt.Fprintf(&b, "%-14s", "(n)")
	for _, bk := range eval.CoverageBuckets {
		fmt.Fprintf(&b, " %8d", cov[bk].Total)
	}
	b.WriteString("\n")
	return b.String()
}

// PatientsExperiment holds the Table-3 run.
type PatientsExperiment struct {
	Scale   Scale
	Reports map[Config]*eval.PatientsReport
}

// RunPatients trains the three configurations (DBPal (Full) adds
// synthetic data for the Patients schema itself) and evaluates the
// 399-case benchmark end-to-end through the runtime.
func RunPatients(s Scale) *PatientsExperiment {
	d := spider.Build(s.Spider)
	base := spiderExamples(d.Train)

	var dbpalTrain []models.Example
	for i, sch := range spider.TrainSchemas() {
		exs, _ := pipelineData(sch, s.Pipeline, s.PipelinePerSchema, s.Seed+int64(i)*31, s.Workers, nil)
		dbpalTrain = append(dbpalTrain, exs...)
	}
	patientsExs, _ := pipelineData(patients.Schema(), s.Pipeline, 2*s.PipelinePerSchema, s.Seed+777, s.Workers, nil)

	datasets := map[Config][]models.Example{
		Baseline:   base,
		DBPalTrain: balance(base, dbpalTrain),
		DBPalFull:  balance(base, concat(dbpalTrain, patientsExs)),
	}

	db, err := patients.Database()
	if err != nil {
		panic(err)
	}
	cases := patients.Cases()
	exp := &PatientsExperiment{Scale: s, Reports: map[Config]*eval.PatientsReport{}}
	reports := make([]*eval.PatientsReport, len(Configs))
	par.Map(s.Workers, len(Configs), func(i int) {
		m := s.newModel(s.Seed)
		m.Train(datasets[Configs[i]])
		reports[i] = eval.EvalPatientsWorkers(m, db, cases, 1, s.Workers)
	})
	for i, cfg := range Configs {
		exp.Reports[cfg] = reports[i]
	}
	return exp
}

// Table3 renders the Patients-by-category table.
func (e *PatientsExperiment) Table3() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: Patients Benchmark Results (%s model, semantic equivalence)\n", e.Scale.ModelKind)
	fmt.Fprintf(&b, "%-14s", "Algorithm")
	for _, c := range patients.Categories {
		fmt.Fprintf(&b, " %13s", c)
	}
	fmt.Fprintf(&b, " %8s\n", "Overall")
	for _, cfg := range Configs {
		r := e.Reports[cfg]
		fmt.Fprintf(&b, "%-14s", cfg)
		for _, c := range patients.Categories {
			fmt.Fprintf(&b, " %13.3f", r.ByCategory[c].Acc())
		}
		fmt.Fprintf(&b, " %8.3f\n", r.Overall.Acc())
	}
	return b.String()
}

// balance mixes curated and synthetic examples, repeating the curated
// set so that it keeps rough parity with the synthetic supplement (the
// paper's setup trains on both; without reweighting, a large synthetic
// corpus would displace the curated distribution).
func balance(curated, synthetic []models.Example) []models.Example {
	reps := 1
	if len(curated) > 0 {
		reps = (len(synthetic) + len(curated) - 1) / len(curated)
	}
	if reps < 1 {
		reps = 1
	}
	if reps > 4 {
		reps = 4
	}
	var out []models.Example
	for i := 0; i < reps; i++ {
		out = append(out, curated...)
	}
	return append(out, synthetic...)
}

func concat(lists ...[]models.Example) []models.Example {
	var out []models.Example
	for _, l := range lists {
		out = append(out, l...)
	}
	return out
}
