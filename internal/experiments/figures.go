package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/eval"
	"repro/internal/hyperopt"
	"repro/internal/models"
	"repro/internal/par"
	"repro/internal/patients"
	"repro/internal/pipeline"
	"repro/internal/spider"
	"repro/internal/sqlast"
)

// Figure3Result holds the seed-template-fraction experiment.
type Figure3Result struct {
	Scale      Scale
	Fractions  []float64
	Accuracy   []float64 // absolute Patients overall accuracy
	Normalized []float64 // relative to the 100% run
}

// Figure3Fractions are the paper's x-axis points.
var Figure3Fractions = []float64{0, 0.10, 0.50, 1.00}

// RunFigure3 trains one model per template fraction: the Spider
// training data plus Patients-schema synthetic data instantiated from
// a random subset of the seed templates (selected before
// instantiation, §6.3.2), evaluated on the Patients benchmark.
func RunFigure3(s Scale) *Figure3Result {
	d := spider.Build(s.Spider)
	base := spiderExamples(d.Train)
	db, err := patients.Database()
	if err != nil {
		panic(err)
	}
	cases := patients.Cases()

	res := &Figure3Result{Scale: s, Fractions: Figure3Fractions}
	res.Accuracy = make([]float64, len(Figure3Fractions))
	par.Map(s.Workers, len(Figure3Fractions), func(i int) {
		frac := Figure3Fractions[i]
		exs := base
		if frac > 0 {
			p := core.New(patients.Schema(), s.Pipeline, s.Seed+777)
			p.Templates = core.TemplateFraction(frac, s.Seed+99)
			p.Workers = s.Workers
			pairs := subsamplePairs(p.Run(), 2*s.PipelinePerSchema, s.Seed+17)
			exs = balance(base, models.PairExamples(pairs, patients.Schema()))
		}
		m := s.newModel(s.Seed)
		m.Train(exs)
		rep := eval.EvalPatientsWorkers(m, db, cases, 1, s.Workers)
		res.Accuracy[i] = rep.Overall.Acc()
	})
	full := res.Accuracy[len(res.Accuracy)-1]
	for _, a := range res.Accuracy {
		if full > 0 {
			res.Normalized = append(res.Normalized, a/full)
		} else {
			res.Normalized = append(res.Normalized, 0)
		}
	}
	return res
}

// Format renders the Figure-3 series.
func (r *Figure3Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3: Normalized Accuracy for Fractions of Seed Templates (%s model, Patients)\n", r.Scale.ModelKind)
	fmt.Fprintf(&b, "%-12s %10s %12s\n", "% Templates", "Accuracy", "Normalized")
	for i, f := range r.Fractions {
		fmt.Fprintf(&b, "%-12.0f %10.3f %12.3f\n", f*100, r.Accuracy[i], r.Normalized[i])
	}
	return b.String()
}

// Figure4Result holds the hyperparameter-search experiment.
type Figure4Result struct {
	Scale  Scale
	Trials []hyperopt.Trial
	Bins   []hyperopt.HistogramBin
	Best   core.Params
}

// RunFigure4 reproduces the paper's §6.3.3 experiment: random search
// over the Table-1 parameter space, where each trial runs the full
// Generate(D, T, φ) pipeline — synthetic data generation for the
// training schemas, model training on Spider + synthetic data, and
// evaluation on the held-out geo workload (the GeoQuery stand-in).
// Trials whose generated corpus exceeds the size budget are reported
// as not converged, the analog of the paper's 6-hour training limit
// (59 of 68 trials converged there).
func RunFigure4(s Scale) *Figure4Result {
	d := spider.Build(s.Spider)
	base := spiderExamples(d.Train)
	geo := spider.GeoWorkload(280, s.Seed+4242)

	trainSchemas := spider.TrainSchemas()
	// Per-trial training runs at half the usual epoch budget — the
	// analog of the paper's fixed 6-hour per-trial training limit.
	trialScale := s
	trialScale.Sketch.Epochs = max(2, s.Sketch.Epochs/3)
	trialScale.Seq2Seq.Epochs = max(2, s.Seq2Seq.Epochs/3)
	trialCap := s.HyperoptTrialCap
	if trialCap <= 0 {
		trialCap = s.PipelinePerSchema
	}
	// Trials run concurrently (they are the black-box Acc =
	// Generate(D, T, φ) calls the paper's optimizer repeats); each
	// receives a derived seed that depends only on its index, so the
	// histogram is identical at any worker count. A cache shared across
	// trials memoizes the generate stage: candidates that agree on the
	// instantiation parameters (and they all agree on schema and seed)
	// replay the recorded corpus instead of re-instantiating templates —
	// replay is byte-identical, so the histogram is unchanged.
	cache := core.NewGenCache(8)
	obj := func(p core.Params, trialSeed int64) (float64, bool) {
		var exs []models.Example
		exs = append(exs, base...)
		total := 0
		for i, sch := range trainSchemas {
			pipe := core.New(sch, p, s.Seed+int64(i)*31)
			pipe.Workers = 1 // trials, not stages, are the parallel unit here
			pipe.Cache = cache
			pairs := pipe.Run()
			total += len(pairs)
			if total > s.HyperoptBudget {
				return 0, false // over budget: "did not converge"
			}
			pairs = subsamplePairs(pairs, trialCap, s.Seed+17)
			exs = append(exs, models.PairExamples(pairs, sch)...)
		}
		m := trialScale.newModel(trialSeed)
		m.Train(exs)
		rep := eval.EvalSpiderWorkers(m, geo, s.Workers)
		return rep.Overall.Acc(), true
	}

	trials := hyperopt.RandomSearchWorkers(hyperopt.DefaultSpace(), s.HyperoptTrials, s.Seed+606, s.Workers, obj)
	res := &Figure4Result{Scale: s, Trials: trials, Bins: hyperopt.Histogram(trials, 10)}
	for _, t := range trials {
		if t.Converged {
			res.Best = t.Params
			break
		}
	}
	return res
}

// Format renders the Figure-4 histogram and summary statistics.
func (r *Figure4Result) Format() string {
	n, min, max, mean, std := hyperopt.Stats(r.Trials)
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: Histogram of Test Accuracy for Enumerated Parameter Configurations (%s model, geo workload)\n", r.Scale.ModelKind)
	fmt.Fprintf(&b, "trials=%d converged=%d min=%.3f max=%.3f mean=%.3f std=%.3f\n",
		len(r.Trials), n, min, max, mean, std)
	b.WriteString(hyperopt.FormatHistogram(r.Bins))
	return b.String()
}

// AblationResult holds the design-choice ablations on the Patients
// benchmark (one trained model per variant).
type AblationResult struct {
	Scale    Scale
	Names    []string
	Accuracy []float64
}

// RunAblations evaluates the pipeline design choices DESIGN.md calls
// out, each as a one-change variant of the DBPal (Full) Patients
// configuration.
func RunAblations(s Scale) *AblationResult {
	d := spider.Build(s.Spider)
	base := spiderExamples(d.Train)
	db, err := patients.Database()
	if err != nil {
		panic(err)
	}
	cases := patients.Cases()

	// Parameter ablations tweak Table-1 knobs; structural ablations are
	// stage-list edits — "no-augmentation" drops the augment stage
	// entirely (including domain-aware comparatives, which zeroed knobs
	// could never switch off) and "no-lemmatize" drops the lemma stage.
	variants := []struct {
		name   string
		params core.Params
		stages stageEdit
	}{
		{"defaults", s.Pipeline, nil},
		{"no-augmentation", s.Pipeline, func(p *core.Pipeline) []pipeline.Stage {
			return []pipeline.Stage{p.GenerateStage(), core.LemmaStage(), core.DedupStage()}
		}},
		{"no-paraphrase", func() core.Params {
			p := s.Pipeline
			p.Augmentation.SizePara = 0
			p.Augmentation.NumPara = 0
			return p
		}(), nil},
		{"no-dropout", func() core.Params {
			p := s.Pipeline
			p.Augmentation.NumMissing = 0
			p.Augmentation.RandDropP = 0
			return p
		}(), nil},
		{"no-lemmatize", s.Pipeline, func(p *core.Pipeline) []pipeline.Stage {
			return []pipeline.Stage{p.GenerateStage(), p.AugmentStage(), core.DedupStage()}
		}},
		{"biased-agg", func() core.Params {
			p := s.Pipeline
			p.Instantiation.AggBoost = 6
			return p
		}(), nil},
		{"pos-guided-dropout", func() core.Params {
			p := s.Pipeline
			p.Augmentation.PosGuidedDrop = true
			return p
		}(), nil},
	}

	// All variants instantiate the Patients schema at the same seed, and
	// every one except biased-agg shares the default instantiation
	// parameters — a GenCache shared across the loop replays that single
	// generation for all of them (and for the exec-guided and
	// literal-constants runs below) instead of re-instantiating.
	cache := core.NewGenCache(4)
	res := &AblationResult{Scale: s}
	for _, v := range variants {
		pairs := pipelinePairs(patients.Schema(), v.params, s.Seed+777, s.Workers, cache, v.stages)
		pairs = subsamplePairs(pairs, 2*s.PipelinePerSchema, s.Seed+777+17)
		m := s.newModel(s.Seed)
		m.Train(balance(base, models.PairExamples(pairs, patients.Schema())))
		rep := eval.EvalPatients(m, db, cases)
		res.Names = append(res.Names, v.name)
		res.Accuracy = append(res.Accuracy, rep.Overall.Acc())
	}

	// Execution-guided decoding (a runtime-side ablation: same model
	// as "defaults", up to 3 ranked candidates per question).
	exs, _ := pipelineData(patients.Schema(), s.Pipeline, 2*s.PipelinePerSchema, s.Seed+777, s.Workers, cache)
	m := s.newModel(s.Seed)
	m.Train(balance(base, exs))
	rep := eval.EvalPatientsGuided(m, db, cases, 3)
	res.Names = append(res.Names, "exec-guided(3)")
	res.Accuracy = append(res.Accuracy, rep.Overall.Acc())

	// Literal constants instead of anonymization (DESIGN.md ablation 2,
	// paper §4.1): the training pairs carry concrete values, so at
	// runtime — where the Parameter Handler anonymizes the question —
	// the model faces placeholder tokens it never trained on.
	litPairs := literalizePairs(subsamplePairs(pipelinePairs(patients.Schema(), s.Pipeline, s.Seed+777, s.Workers, cache, nil), 2*s.PipelinePerSchema, s.Seed+17), db, s.Seed+5)
	mLit := s.newModel(s.Seed)
	mLit.Train(balance(base, models.PairExamples(litPairs, patients.Schema())))
	repLit := eval.EvalPatients(mLit, db, cases)
	res.Names = append(res.Names, "literal-constants")
	res.Accuracy = append(res.Accuracy, repLit.Overall.Acc())
	return res
}

// literalizePairs replaces every anonymized-constant token with a
// concrete value drawn from the database, on both the NL and SQL sides
// — the "no anonymization" training regime of the paper's §4.1
// discussion.
func literalizePairs(pairs []core.Pair, db *engine.Database, seed int64) []core.Pair {
	rng := rand.New(rand.NewSource(seed))
	out := make([]core.Pair, 0, len(pairs))
	for _, p := range pairs {
		nl := strings.Fields(p.NL)
		lit := map[string]string{} // placeholder -> rendered literal (consistent per pair)
		changed := false
		for i, tok := range nl {
			if !strings.HasPrefix(tok, "@") || strings.EqualFold(tok, "@JOIN") {
				continue
			}
			v, ok := literalFor(tok, db, rng, lit)
			if !ok {
				continue
			}
			nl[i] = v.nl
			changed = true
		}
		sqlText := p.SQL
		for ph, _ := range lit {
			_ = ph
		}
		for ph, v := range litSQL(lit) {
			sqlText = strings.ReplaceAll(sqlText, ph, v)
		}
		if !changed {
			out = append(out, p)
			continue
		}
		if _, err := sqlast.Parse(sqlText); err != nil {
			continue // defensive: skip unparsable literalizations
		}
		out = append(out, core.Pair{NL: strings.Join(nl, " "), SQL: sqlText, TemplateID: p.TemplateID, Class: p.Class, Stage: p.Stage, Origin: p.Origin})
	}
	return out
}

type literalValue struct {
	nl  string
	sql string
}

var litCacheSep = "\x1f"

// literalFor draws (once per pair) a concrete value for a placeholder.
func literalFor(tok string, db *engine.Database, rng *rand.Rand, lit map[string]string) (literalValue, bool) {
	if v, ok := lit[tok]; ok {
		parts := strings.SplitN(v, litCacheSep, 2)
		return literalValue{nl: parts[0], sql: parts[1]}, true
	}
	name := strings.TrimPrefix(tok, "@")
	parts := strings.SplitN(name, ".", 2)
	if len(parts) != 2 {
		return literalValue{}, false
	}
	vals := db.DistinctValues(parts[0], parts[1])
	if len(vals) == 0 {
		return literalValue{}, false
	}
	v := vals[rng.Intn(len(vals))]
	var lv literalValue
	if v.IsNum {
		lv = literalValue{nl: v.String(), sql: v.String()}
	} else {
		lv = literalValue{nl: v.Str, sql: "'" + strings.ReplaceAll(v.Str, "'", "''") + "'"}
	}
	lit[tok] = lv.nl + litCacheSep + lv.sql
	return lv, true
}

// litSQL converts the per-pair literal cache into SQL-side
// replacements.
func litSQL(lit map[string]string) map[string]string {
	out := map[string]string{}
	for ph, v := range lit {
		parts := strings.SplitN(v, litCacheSep, 2)
		out[ph] = parts[1]
	}
	return out
}

// Format renders the ablation table.
func (r *AblationResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablations: Patients overall accuracy by pipeline variant (%s model)\n", r.Scale.ModelKind)
	for i, n := range r.Names {
		fmt.Fprintf(&b, "%-18s %8.3f\n", n, r.Accuracy[i])
	}
	return b.String()
}
