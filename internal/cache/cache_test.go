package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestLRUEvictionDeterministic: a single-shard cache evicts its strict
// LRU entry, recency is refreshed by Get, and replaying the same
// operation sequence reproduces the same contents and counters.
func TestLRUEvictionDeterministic(t *testing.T) {
	run := func() (*Cache[int], []string) {
		c := New[int](Config{Capacity: 3, Shards: 1})
		for i := 1; i <= 4; i++ {
			c.Put(fmt.Sprintf("k%d", i), i)
		}
		// k1 is the LRU victim of inserting k4.
		if _, ok := c.Get("k1"); ok {
			t.Fatal("k1 should have been evicted")
		}
		// Refresh k2; inserting k5 must now evict k3.
		if v, ok := c.Get("k2"); !ok || v != 2 {
			t.Fatalf("k2 = %v %v", v, ok)
		}
		c.Put("k5", 5)
		var alive []string
		for i := 1; i <= 5; i++ {
			k := fmt.Sprintf("k%d", i)
			if _, ok := c.shard(k).get(k); ok {
				alive = append(alive, k)
			}
		}
		return c, alive
	}
	c1, alive1 := run()
	c2, alive2 := run()
	want := []string{"k2", "k4", "k5"}
	if fmt.Sprint(alive1) != fmt.Sprint(want) || fmt.Sprint(alive2) != fmt.Sprint(want) {
		t.Fatalf("surviving keys = %v / %v, want %v", alive1, alive2, want)
	}
	s1, s2 := c1.Snapshot(), c2.Snapshot()
	if s1 != s2 {
		t.Fatalf("replayed snapshots differ: %+v vs %+v", s1, s2)
	}
	if s1.Evictions != 2 || s1.Entries != 3 {
		t.Fatalf("snapshot = %+v, want 2 evictions over 3 entries", s1)
	}
}

// TestConfigDefaults: zero config and shard rounding behave as
// documented, and sharding never inflates a small capacity.
func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Capacity != 1024 || cfg.Shards != 16 {
		t.Fatalf("defaults = %+v", cfg)
	}
	if got := (Config{Capacity: 100, Shards: 5}).withDefaults().Shards; got != 8 {
		t.Fatalf("shards rounded to %d, want 8", got)
	}
	small := Config{Capacity: 3, Shards: 16}.withDefaults()
	if small.Shards != 2 {
		t.Fatalf("small cache shards = %d, want 2", small.Shards)
	}
	c := New[int](Config{Capacity: 2, Shards: 64})
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	if got := c.Len(); got > 2 {
		t.Fatalf("capacity 2 cache holds %d entries", got)
	}
}

// TestShardStability: a key always lands on the same shard.
func TestShardStability(t *testing.T) {
	c := New[int](Config{Capacity: 64, Shards: 8})
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("question %d", i)
		if c.shard(k) != c.shard(k) {
			t.Fatalf("key %q changed shards", k)
		}
	}
}

// TestDoHitMissCoalesce: the three outcomes and their counters. N
// concurrent misses on one key run the loader exactly once.
func TestDoHitMissCoalesce(t *testing.T) {
	c := New[string](Config{Capacity: 8, Shards: 1})
	var calls atomic.Int64
	gate := make(chan struct{})
	started := make(chan struct{})
	loader := func(context.Context) (string, error) {
		calls.Add(1)
		close(started)
		<-gate
		return "sql", nil
	}

	const waiters = 8
	type res struct {
		v   string
		o   Outcome
		err error
	}
	results := make(chan res, waiters+1)
	go func() {
		v, o, err := c.Do(context.Background(), "q", loader)
		results <- res{v, o, err}
	}()
	<-started // the leader is inside the loader; everyone else coalesces
	for i := 0; i < waiters; i++ {
		go func() {
			v, o, err := c.Do(context.Background(), "q", loader)
			results <- res{v, o, err}
		}()
	}
	// Waiters can only block on the flight now; open the gate.
	close(gate)

	var miss, coalesced int
	for i := 0; i < waiters+1; i++ {
		r := <-results
		if r.err != nil || r.v != "sql" {
			t.Fatalf("Do = (%q, %v, %v)", r.v, r.o, r.err)
		}
		switch r.o {
		case Miss:
			miss++
		case Coalesced:
			coalesced++
		case Hit: // a waiter that arrived after the flight published
		}
	}
	if calls.Load() != 1 {
		t.Fatalf("loader ran %d times, want exactly 1", calls.Load())
	}
	if miss != 1 {
		t.Fatalf("misses = %d, want 1 (the leader)", miss)
	}
	// And now it is cached for everyone.
	v, o, err := c.Do(context.Background(), "q", loader)
	if err != nil || v != "sql" || o != Hit {
		t.Fatalf("post-flight Do = (%q, %v, %v), want hit", v, o, err)
	}
	st := c.Snapshot()
	if st.Misses != 1 || st.Hits < 1 || st.Coalesced != int64(coalesced) {
		t.Fatalf("stats = %+v", st)
	}
}

// TestDoSharedFailure: a loader error propagates to the leader and all
// coalesced waiters, and nothing is cached (the next Do retries).
func TestDoSharedFailure(t *testing.T) {
	c := New[string](Config{Capacity: 8, Shards: 1})
	boom := errors.New("model failure")
	var calls atomic.Int64
	gate := make(chan struct{})
	started := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	var leadErr error
	go func() {
		defer wg.Done()
		_, _, leadErr = c.Do(context.Background(), "q", func(context.Context) (string, error) {
			calls.Add(1)
			close(started)
			<-gate
			return "", boom
		})
	}()
	<-started
	wg.Add(1)
	var waitErr error
	go func() {
		defer wg.Done()
		_, _, waitErr = c.Do(context.Background(), "q", func(context.Context) (string, error) {
			// Reached only if this goroutine arrived after the flight
			// died and was promoted to a leader of its own (failures
			// are not cached, so late arrivals re-load); fail the same
			// way so the shared-failure invariants hold on either path.
			calls.Add(1)
			return "", boom
		})
	}()
	// Nudge the waiter onto the coalescing path before releasing the
	// leader (joining under a held flight is proven deterministically
	// in TestDoHitMissCoalesce; here either path must end in boom).
	time.Sleep(10 * time.Millisecond)
	close(gate)
	wg.Wait()
	if !errors.Is(leadErr, boom) {
		t.Fatalf("leader err = %v", leadErr)
	}
	// Coalesced onto the failing flight or promoted and failed itself:
	// the waiter sees the loader's error either way, never a cached
	// failure.
	if !errors.Is(waitErr, boom) {
		t.Fatalf("waiter err = %v", waitErr)
	}
	if _, ok := c.Get("q"); ok {
		t.Fatal("failed load must not be cached")
	}
	v, o, err := c.Do(context.Background(), "q", func(context.Context) (string, error) { return "ok", nil })
	if err != nil || v != "ok" || o != Miss {
		t.Fatalf("retry after failure = (%q, %v, %v)", v, o, err)
	}
}

// TestWaiterDeadlineLeavesFlight: a waiter whose own context expires
// abandons the flight with ctx.Err() without disturbing the leader.
func TestWaiterDeadlineLeavesFlight(t *testing.T) {
	c := New[string](Config{Capacity: 8, Shards: 1})
	gate := make(chan struct{})
	started := make(chan struct{})
	go func() {
		_, _, _ = c.Do(context.Background(), "q", func(context.Context) (string, error) {
			close(started)
			<-gate
			return "late", nil
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.Do(ctx, "q", func(context.Context) (string, error) { return "", nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("expired waiter err = %v", err)
	}
	close(gate)
	// The leader's flight still lands.
	v, _, err := c.Do(context.Background(), "q", func(context.Context) (string, error) { return "", errors.New("no") })
	if err != nil || v != "late" {
		t.Fatalf("after leader landed: (%q, %v)", v, err)
	}
}
