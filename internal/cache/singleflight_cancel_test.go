package cache

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitForGoroutines polls until the goroutine count returns to the
// baseline, failing the test if leaked goroutines remain (same
// discipline as the serve chaos suite).
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutine leak: %d running, baseline %d\n%s",
		runtime.NumGoroutine(), baseline, buf[:n])
}

// TestSingleflightLeaderCancelled is the core cancellation contract:
// the leader's request is cancelled mid-decode, and a waiter must be
// promoted to a fresh leader (the miss retried) rather than inheriting
// the cancellation — and the key must never end up stuck. Run with
// -race.
func TestSingleflightLeaderCancelled(t *testing.T) {
	baseline := runtime.NumGoroutine()
	c := New[string](Config{Capacity: 8, Shards: 1})

	var cancelledLoads, goodLoads atomic.Int64
	inLoad := make(chan struct{}) // leader entered the loader
	leaderCtx, cancel := context.WithCancel(context.Background())
	loader := func(ctx context.Context) (string, error) {
		select {
		case inLoad <- struct{}{}:
		default:
		}
		select {
		case <-ctx.Done():
			// Mid-decode cancellation: the model call aborts.
			cancelledLoads.Add(1)
			return "", ctx.Err()
		case <-time.After(50 * time.Millisecond):
			goodLoads.Add(1)
			return "sql", nil
		}
	}

	var wg sync.WaitGroup
	wg.Add(1)
	var leadOut Outcome
	var leadErr error
	go func() {
		defer wg.Done()
		_, leadOut, leadErr = c.Do(leaderCtx, "q", loader)
	}()
	<-inLoad // the flight exists and its leader is inside the loader

	const waiters = 6
	wg.Add(waiters)
	errs := make([]error, waiters)
	vals := make([]string, waiters)
	for i := 0; i < waiters; i++ {
		go func(i int) {
			defer wg.Done()
			vals[i], _, errs[i] = c.Do(context.Background(), "q", loader)
		}(i)
	}

	// Kill the leader mid-decode.
	cancel()
	wg.Wait()

	if leadOut != Miss || !errors.Is(leadErr, context.Canceled) {
		t.Fatalf("cancelled leader = (%v, %v), want miss + context.Canceled", leadOut, leadErr)
	}
	for i := 0; i < waiters; i++ {
		if errs[i] != nil || vals[i] != "sql" {
			t.Fatalf("waiter %d = (%q, %v), want promoted to the real answer", i, vals[i], errs[i])
		}
	}
	if cancelledLoads.Load() != 1 {
		t.Fatalf("cancelled loads = %d, want exactly 1 (the dead leader)", cancelledLoads.Load())
	}
	if goodLoads.Load() != 1 {
		t.Fatalf("successful loads = %d, want exactly 1 (the promoted waiter)", goodLoads.Load())
	}

	// Never a stuck key: a fresh Do with a tight deadline must resolve
	// from cache immediately.
	ctx, cancel2 := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel2()
	v, o, err := c.Do(ctx, "q", func(context.Context) (string, error) {
		return "", errors.New("must not run: value is cached")
	})
	if err != nil || v != "sql" || o != Hit {
		t.Fatalf("post-promotion Do = (%q, %v, %v), want immediate hit", v, o, err)
	}
	waitForGoroutines(t, baseline)
}

// TestSingleflightAllCancelled: even when the leader and every waiter
// are cancelled, the key is released — the next caller becomes a clean
// leader and succeeds.
func TestSingleflightAllCancelled(t *testing.T) {
	baseline := runtime.NumGoroutine()
	c := New[string](Config{Capacity: 8, Shards: 1})
	ctx, cancel := context.WithCancel(context.Background())
	inLoad := make(chan struct{})

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, _ = c.Do(ctx, "q", func(ctx context.Context) (string, error) {
				select {
				case inLoad <- struct{}{}:
				default:
				}
				<-ctx.Done()
				return "", ctx.Err()
			})
		}()
	}
	<-inLoad
	cancel()
	wg.Wait()

	v, o, err := c.Do(context.Background(), "q", func(context.Context) (string, error) {
		return "fresh", nil
	})
	if err != nil || v != "fresh" || o != Miss {
		t.Fatalf("post-wipeout Do = (%q, %v, %v), want clean miss", v, o, err)
	}
	waitForGoroutines(t, baseline)
}

// TestSingleflightCancellationStorm hammers the leader-cancellation
// path: many rounds of a cancelled leader racing live waiters across
// several keys. Under -race this shakes out flight lifecycle bugs; the
// invariant is that every live caller always lands on a value.
func TestSingleflightCancellationStorm(t *testing.T) {
	baseline := runtime.NumGoroutine()
	c := New[string](Config{Capacity: 32, Shards: 4})
	const rounds, callers = 20, 8

	for round := 0; round < rounds; round++ {
		key := fmt.Sprintf("q%d", round%5)
		want := "sql-" + key
		ctx, cancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		for i := 0; i < callers; i++ {
			wg.Add(1)
			cctx := context.Background()
			if i == 0 {
				cctx = ctx // one caller per round gets cancelled
			}
			go func(cctx context.Context) {
				defer wg.Done()
				v, _, err := c.Do(cctx, key, func(lctx context.Context) (string, error) {
					select {
					case <-lctx.Done():
						return "", lctx.Err()
					case <-time.After(time.Millisecond):
						return want, nil
					}
				})
				if err == nil && v != want {
					t.Errorf("round %d: got %q, want %q", round, v, want)
				}
				if err != nil && !errors.Is(err, context.Canceled) {
					t.Errorf("round %d: unexpected error %v", round, err)
				}
			}(cctx)
		}
		cancel()
		wg.Wait()
		// The key must be reachable regardless of who won the races.
		v, _, err := c.Do(context.Background(), key, func(context.Context) (string, error) {
			return want, nil
		})
		if err != nil || v != want {
			t.Fatalf("round %d: key stuck: (%q, %v)", round, v, err)
		}
	}
	waitForGoroutines(t, baseline)
}
