// Package cache is the serving layer's result cache: a sharded LRU
// with integrated singleflight coalescing, keyed on the anonymized +
// lemmatized question the Parameter Handler produces. DBPal's
// anonymization makes this key unusually powerful — "patients older
// than 30" and "patients older than 50" canonicalize to the same
// placeholder question, so one cached decode answers every constant
// variation of a query shape; only the cheap per-request
// post-processing (constant restoration) differs.
//
// Concurrency contract:
//
//   - A hit returns the cached value without running the loader.
//   - N concurrent misses for one key pay exactly one loader call: the
//     first caller becomes the flight leader, the rest coalesce onto
//     its result (success or failure alike, so a failing key cannot
//     thundering-herd the model).
//   - A leader cancelled mid-load never strands its waiters: the dead
//     flight is published as retryable, every waiter re-enters the
//     miss path, and one of them becomes the new leader. A key can
//     therefore never be stuck behind a cancelled request.
//
// Eviction is deterministic: each shard evicts its strict LRU entry,
// and a key always maps to the same shard (FNV-1a), so a given
// operation sequence produces the same cache contents on every run.
package cache

import (
	"context"
	"sync"
	"sync/atomic"
)

// Outcome classifies how a Do call was satisfied, for telemetry and
// the request trace.
type Outcome int

// Do outcomes.
const (
	// Hit: the value was already cached.
	Hit Outcome = iota
	// Miss: this caller ran the loader (it was the flight leader).
	Miss
	// Coalesced: another caller's in-flight load supplied the result.
	Coalesced
)

// String names the outcome for traces and /statsz.
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Miss:
		return "miss"
	case Coalesced:
		return "coalesced"
	}
	return "unknown"
}

// Config sizes a Cache. The zero value gets the defaults below.
type Config struct {
	// Capacity is the total entry budget across shards (default 1024).
	Capacity int
	// Shards is the number of independent LRU shards (default 16,
	// rounded up to a power of two so the hash can mask).
	Shards int
}

func (c Config) withDefaults() Config {
	if c.Capacity <= 0 {
		c.Capacity = 1024
	}
	if c.Shards <= 0 {
		c.Shards = 16
	}
	n := 1
	for n < c.Shards {
		n <<= 1
	}
	c.Shards = n
	if c.Shards > c.Capacity {
		// Never let sharding inflate the budget: small caches collapse
		// to fewer shards instead of rounding every shard up to one.
		c.Shards = 1
		for c.Shards*2 <= c.Capacity {
			c.Shards <<= 1
		}
	}
	return c
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	Capacity  int   `json:"capacity"`
	Shards    int   `json:"shards"`
	Entries   int   `json:"entries"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
	Evictions int64 `json:"evictions"`
}

// Cache is the sharded LRU + singleflight store. It is safe for any
// number of concurrent callers.
type Cache[V any] struct {
	cfg    Config
	shards []*shard[V]
	mask   uint32

	hits      atomic.Int64
	misses    atomic.Int64
	coalesced atomic.Int64
	evictions atomic.Int64
}

// New builds a cache from cfg.
func New[V any](cfg Config) *Cache[V] {
	cfg = cfg.withDefaults()
	c := &Cache[V]{cfg: cfg, mask: uint32(cfg.Shards - 1)}
	per := cfg.Capacity / cfg.Shards
	if per < 1 {
		per = 1
	}
	for i := 0; i < cfg.Shards; i++ {
		c.shards = append(c.shards, newShard[V](per))
	}
	return c
}

// fnv1a is the shard hash: deterministic across processes, cheap, and
// good enough to spread question keys.
func fnv1a(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h
}

func (c *Cache[V]) shard(key string) *shard[V] {
	return c.shards[fnv1a(key)&c.mask]
}

// Get returns the cached value for key, bumping its recency.
func (c *Cache[V]) Get(key string) (V, bool) {
	v, ok := c.shard(key).get(key)
	if ok {
		c.hits.Add(1)
	}
	return v, ok
}

// Put stores key→v, evicting the shard's LRU entry when full.
func (c *Cache[V]) Put(key string, v V) {
	if c.shard(key).put(key, v) {
		c.evictions.Add(1)
	}
}

// Do returns the value for key, loading it at most once across all
// concurrent callers. The loader runs with the leader's ctx; see the
// package comment for the coalescing and leader-cancellation
// contract. A loader error is returned to the leader and every
// coalesced waiter, and nothing is cached. A waiter whose own ctx
// expires gives up with ctx.Err() without disturbing the flight.
func (c *Cache[V]) Do(ctx context.Context, key string, load func(ctx context.Context) (V, error)) (V, Outcome, error) {
	sh := c.shard(key)
	for {
		sh.mu.Lock()
		if v, ok := sh.getLocked(key); ok {
			sh.mu.Unlock()
			c.hits.Add(1)
			return v, Hit, nil
		}
		if f, ok := sh.flights[key]; ok {
			sh.mu.Unlock()
			select {
			case <-f.done:
				if f.retry {
					// The leader was cancelled mid-load; re-enter the
					// miss path and race to become the new leader.
					continue
				}
				c.coalesced.Add(1)
				return f.val, Coalesced, f.err
			case <-ctx.Done():
				var zero V
				return zero, Coalesced, ctx.Err()
			}
		}
		// No value, no flight: this caller is the leader.
		f := &flight[V]{done: make(chan struct{})}
		sh.flights[key] = f
		sh.mu.Unlock()

		v, err := load(ctx)

		sh.mu.Lock()
		delete(sh.flights, key)
		f.val, f.err = v, err
		// A loader killed by its own caller's cancellation produced no
		// answer anyone can share; hand the key to a live waiter
		// instead of broadcasting the leader's death.
		f.retry = err != nil && ctx.Err() != nil
		if err == nil {
			if sh.putLocked(key, v) {
				c.evictions.Add(1)
			}
		}
		close(f.done)
		sh.mu.Unlock()
		c.misses.Add(1)
		return v, Miss, err
	}
}

// Len returns the number of cached entries.
func (c *Cache[V]) Len() int {
	n := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// Snapshot returns the current Stats.
func (c *Cache[V]) Snapshot() Stats {
	return Stats{
		Capacity:  c.cfg.Capacity,
		Shards:    c.cfg.Shards,
		Entries:   c.Len(),
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
		Evictions: c.evictions.Load(),
	}
}

// flight is one in-progress load.
type flight[V any] struct {
	done  chan struct{}
	val   V
	err   error
	retry bool // leader cancelled: waiters must re-enter the miss path
}

// shard is one LRU partition: a map into an intrusive doubly-linked
// recency list (most recent at head).
type shard[V any] struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*entry[V]
	flights map[string]*flight[V]
	head    *entry[V] // most recently used
	tail    *entry[V] // least recently used
}

type entry[V any] struct {
	key        string
	val        V
	prev, next *entry[V]
}

func newShard[V any](capacity int) *shard[V] {
	return &shard[V]{
		cap:     capacity,
		entries: map[string]*entry[V]{},
		flights: map[string]*flight[V]{},
	}
}

func (s *shard[V]) get(key string) (V, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.getLocked(key)
}

func (s *shard[V]) getLocked(key string) (V, bool) {
	e, ok := s.entries[key]
	if !ok {
		var zero V
		return zero, false
	}
	s.moveToFront(e)
	return e.val, true
}

func (s *shard[V]) put(key string, v V) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.putLocked(key, v)
}

// putLocked inserts or refreshes key and reports whether an entry was
// evicted to make room.
func (s *shard[V]) putLocked(key string, v V) bool {
	if e, ok := s.entries[key]; ok {
		e.val = v
		s.moveToFront(e)
		return false
	}
	e := &entry[V]{key: key, val: v}
	s.entries[key] = e
	s.pushFront(e)
	if len(s.entries) <= s.cap {
		return false
	}
	lru := s.tail
	s.unlink(lru)
	delete(s.entries, lru.key)
	return true
}

func (s *shard[V]) pushFront(e *entry[V]) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *shard[V]) unlink(e *entry[V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *shard[V]) moveToFront(e *entry[V]) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}
