package engine

import (
	"strings"
	"testing"

	"repro/internal/schema"
	"repro/internal/sqlast"
)

// testDB builds a small, hand-checkable hospital database.
func testDB(t *testing.T) *Database {
	t.Helper()
	s := &schema.Schema{
		Name: "hospital",
		Tables: []*schema.Table{
			{Name: "patients", Columns: []*schema.Column{
				{Name: "id", Type: schema.Number, PrimaryKey: true},
				{Name: "name", Type: schema.Text},
				{Name: "age", Type: schema.Number},
				{Name: "diagnosis", Type: schema.Text},
			}},
			{Name: "visits", Columns: []*schema.Column{
				{Name: "id", Type: schema.Number, PrimaryKey: true},
				{Name: "patient_id", Type: schema.Number},
				{Name: "cost", Type: schema.Number},
			}},
		},
		ForeignKeys: []schema.ForeignKey{
			{FromTable: "visits", FromColumn: "patient_id", ToTable: "patients", ToColumn: "id"},
		},
	}
	db := NewDatabase(s)
	rows := []Row{
		{Num(1), Str("alice"), Num(80), Str("influenza")},
		{Num(2), Str("bob"), Num(40), Str("diabetes")},
		{Num(3), Str("carol"), Num(60), Str("influenza")},
		{Num(4), Str("dave"), Num(20), Str("asthma")},
	}
	for _, r := range rows {
		if err := db.Insert("patients", r); err != nil {
			t.Fatal(err)
		}
	}
	visits := []Row{
		{Num(1), Num(1), Num(100)},
		{Num(2), Num(1), Num(300)},
		{Num(3), Num(2), Num(50)},
	}
	for _, r := range visits {
		if err := db.Insert("visits", r); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func exec(t *testing.T, db *Database, sql string) *Result {
	t.Helper()
	res, err := db.Execute(sqlast.MustParse(sql))
	if err != nil {
		t.Fatalf("Execute(%q): %v", sql, err)
	}
	return res
}

func execErr(t *testing.T, db *Database, sql string) error {
	t.Helper()
	_, err := db.Execute(sqlast.MustParse(sql))
	if err == nil {
		t.Fatalf("Execute(%q) should fail", sql)
	}
	return err
}

func oneNum(t *testing.T, res *Result) float64 {
	t.Helper()
	if len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
		t.Fatalf("expected 1x1 result, got %v", res.Rows)
	}
	return res.Rows[0][0].Num
}

func TestSelectStar(t *testing.T) {
	res := exec(t, testDB(t), "SELECT * FROM patients")
	if len(res.Rows) != 4 || len(res.Columns) != 4 {
		t.Fatalf("rows=%d cols=%v", len(res.Rows), res.Columns)
	}
}

func TestFilterComparisons(t *testing.T) {
	db := testDB(t)
	cases := map[string]int{
		"SELECT name FROM patients WHERE age = 80":                             1,
		"SELECT name FROM patients WHERE age != 80":                            3,
		"SELECT name FROM patients WHERE age > 40":                             2,
		"SELECT name FROM patients WHERE age >= 40":                            3,
		"SELECT name FROM patients WHERE age < 40":                             1,
		"SELECT name FROM patients WHERE age <= 40":                            2,
		"SELECT name FROM patients WHERE diagnosis = 'influenza'":              2,
		"SELECT name FROM patients WHERE diagnosis = 'INFLUENZA'":              2, // case-insensitive text
		"SELECT name FROM patients WHERE age BETWEEN 30 AND 70":                2,
		"SELECT name FROM patients WHERE name LIKE '%a%'":                      3, // alice carol dave
		"SELECT name FROM patients WHERE name LIKE 'a%'":                       1,
		"SELECT name FROM patients WHERE name LIKE '_ob'":                      1,
		"SELECT name FROM patients WHERE NOT (age > 40)":                       2,
		"SELECT name FROM patients WHERE age > 40 AND diagnosis = 'influenza'": 2,
		"SELECT name FROM patients WHERE age = 20 OR age = 40":                 2,
	}
	for sql, want := range cases {
		if got := len(exec(t, db, sql).Rows); got != want {
			t.Errorf("%q -> %d rows, want %d", sql, got, want)
		}
	}
}

func TestAggregates(t *testing.T) {
	db := testDB(t)
	cases := map[string]float64{
		"SELECT COUNT(*) FROM patients":                               4,
		"SELECT COUNT(*) FROM patients WHERE age > 100":               0,
		"SELECT COUNT(DISTINCT diagnosis) FROM patients":              3,
		"SELECT AVG(age) FROM patients":                               50,
		"SELECT SUM(age) FROM patients":                               200,
		"SELECT MIN(age) FROM patients":                               20,
		"SELECT MAX(age) FROM patients":                               80,
		"SELECT AVG(age) FROM patients WHERE diagnosis = 'influenza'": 70,
	}
	for sql, want := range cases {
		if got := oneNum(t, exec(t, db, sql)); got != want {
			t.Errorf("%q = %v, want %v", sql, got, want)
		}
	}
}

func TestAggregateEmptyGroup(t *testing.T) {
	db := testDB(t)
	res := exec(t, db, "SELECT MAX(age) FROM patients WHERE age > 100")
	if len(res.Rows) != 1 || !res.Rows[0][0].Null {
		t.Fatalf("MAX over empty set should be NULL, got %v", res.Rows)
	}
	res2 := exec(t, db, "SELECT SUM(age) FROM patients WHERE age > 100")
	if oneNum(t, res2) != 0 {
		t.Fatalf("SUM over empty set should be 0")
	}
}

func TestGroupBy(t *testing.T) {
	db := testDB(t)
	res := exec(t, db, "SELECT diagnosis, COUNT(*) FROM patients GROUP BY diagnosis")
	if len(res.Rows) != 3 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	counts := map[string]float64{}
	for _, r := range res.Rows {
		counts[r[0].Str] = r[1].Num
	}
	if counts["influenza"] != 2 || counts["diabetes"] != 1 || counts["asthma"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestHaving(t *testing.T) {
	db := testDB(t)
	res := exec(t, db, "SELECT diagnosis FROM patients GROUP BY diagnosis HAVING COUNT(*) > 1")
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "influenza" {
		t.Fatalf("having result = %v", res.Rows)
	}
	res2 := exec(t, db, "SELECT diagnosis FROM patients GROUP BY diagnosis HAVING AVG(age) >= 70")
	if len(res2.Rows) != 1 || res2.Rows[0][0].Str != "influenza" {
		t.Fatalf("having avg result = %v", res2.Rows)
	}
}

func TestOrderLimit(t *testing.T) {
	db := testDB(t)
	res := exec(t, db, "SELECT name FROM patients ORDER BY age DESC")
	got := []string{}
	for _, r := range res.Rows {
		got = append(got, r[0].Str)
	}
	want := "alice,carol,bob,dave"
	if strings.Join(got, ",") != want {
		t.Fatalf("order = %v", got)
	}
	res2 := exec(t, db, "SELECT name FROM patients ORDER BY age ASC LIMIT 2")
	if len(res2.Rows) != 2 || res2.Rows[0][0].Str != "dave" || res2.Rows[1][0].Str != "bob" {
		t.Fatalf("limit result = %v", res2.Rows)
	}
}

func TestOrderByAggregateInGroup(t *testing.T) {
	db := testDB(t)
	res := exec(t, db, "SELECT diagnosis, COUNT(*) FROM patients GROUP BY diagnosis ORDER BY COUNT(*) DESC LIMIT 1")
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "influenza" {
		t.Fatalf("top group = %v", res.Rows)
	}
}

func TestDistinct(t *testing.T) {
	db := testDB(t)
	res := exec(t, db, "SELECT DISTINCT diagnosis FROM patients")
	if len(res.Rows) != 3 {
		t.Fatalf("distinct = %v", res.Rows)
	}
}

func TestJoinImplicit(t *testing.T) {
	db := testDB(t)
	res := exec(t, db, "SELECT patients.name, visits.cost FROM patients, visits WHERE patients.id = visits.patient_id")
	if len(res.Rows) != 3 {
		t.Fatalf("join rows = %d", len(res.Rows))
	}
	res2 := exec(t, db, "SELECT SUM(visits.cost) FROM patients, visits WHERE patients.id = visits.patient_id AND patients.name = 'alice'")
	if oneNum(t, res2) != 400 {
		t.Fatalf("alice cost sum wrong")
	}
}

func TestSubqueries(t *testing.T) {
	db := testDB(t)
	res := exec(t, db, "SELECT name FROM patients WHERE age = (SELECT MAX(age) FROM patients)")
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "alice" {
		t.Fatalf("scalar subquery = %v", res.Rows)
	}
	res2 := exec(t, db, "SELECT name FROM patients WHERE age > (SELECT AVG(age) FROM patients)")
	if len(res2.Rows) != 2 {
		t.Fatalf("above-average = %v", res2.Rows)
	}
	res3 := exec(t, db, "SELECT name FROM patients WHERE id IN (SELECT patient_id FROM visits WHERE cost > 60)")
	if len(res3.Rows) != 1 || res3.Rows[0][0].Str != "alice" {
		t.Fatalf("IN subquery = %v", res3.Rows)
	}
	res4 := exec(t, db, "SELECT name FROM patients WHERE id NOT IN (SELECT patient_id FROM visits WHERE cost > 60)")
	if len(res4.Rows) != 3 {
		t.Fatalf("NOT IN subquery = %v", res4.Rows)
	}
	res5 := exec(t, db, "SELECT name FROM patients WHERE EXISTS (SELECT * FROM visits WHERE cost > 250)")
	if len(res5.Rows) != 4 {
		t.Fatalf("EXISTS true should keep all rows, got %v", res5.Rows)
	}
	res6 := exec(t, db, "SELECT name FROM patients WHERE NOT EXISTS (SELECT * FROM visits WHERE cost > 1000)")
	if len(res6.Rows) != 4 {
		t.Fatalf("NOT EXISTS false predicate, got %v", res6.Rows)
	}
}

func TestExecErrors(t *testing.T) {
	db := testDB(t)
	// Unknown table / column.
	execErr(t, db, "SELECT a FROM nope")
	execErr(t, db, "SELECT nope FROM patients")
	// Ambiguous column across join.
	execErr(t, db, "SELECT id FROM patients, visits WHERE patients.id = visits.patient_id")
	// Unresolved placeholders and @JOIN.
	execErr(t, db, "SELECT name FROM patients WHERE age = @PATIENTS.AGE")
	execErr(t, db, "SELECT patients.name FROM @JOIN WHERE visits.cost > 1")
	// Correlated subquery (outer column inside inner query).
	execErr(t, db, "SELECT name FROM patients WHERE id IN (SELECT patient_id FROM visits WHERE visits.cost > patients.age)")
	// Non-grouped column in aggregate query.
	execErr(t, db, "SELECT name, COUNT(*) FROM patients")
	// SUM over text.
	execErr(t, db, "SELECT SUM(name) FROM patients")
	// Multi-column IN subquery.
	execErr(t, db, "SELECT name FROM patients WHERE id IN (SELECT id, cost FROM visits)")
}

func TestInsertErrors(t *testing.T) {
	db := testDB(t)
	if err := db.Insert("nope", Row{Num(1)}); err == nil {
		t.Fatal("insert into unknown table should fail")
	}
	if err := db.Insert("patients", Row{Num(1)}); err == nil {
		t.Fatal("short row should fail")
	}
}

func TestEqualResults(t *testing.T) {
	a := &Result{Columns: []string{"x"}, Rows: []Row{{Num(1)}, {Num(2)}}}
	b := &Result{Columns: []string{"x"}, Rows: []Row{{Num(2)}, {Num(1)}}}
	if !EqualResults(a, b) {
		t.Fatal("row order should not matter")
	}
	c := &Result{Columns: []string{"x"}, Rows: []Row{{Num(1)}, {Num(3)}}}
	if EqualResults(a, c) {
		t.Fatal("different multisets must differ")
	}
	d := &Result{Columns: []string{"x"}, Rows: []Row{{Num(1)}}}
	if EqualResults(a, d) {
		t.Fatal("different cardinalities must differ")
	}
	e := &Result{Columns: []string{"x"}, Rows: []Row{{Num(1.0000000001)}, {Num(2)}}}
	if !EqualResults(a, e) {
		t.Fatal("tiny float jitter should be tolerated")
	}
}

func TestResultString(t *testing.T) {
	res := exec(t, testDB(t), "SELECT name, age FROM patients WHERE age = 80")
	out := res.String()
	for _, want := range []string{"name", "age", "alice", "80"} {
		if !strings.Contains(out, want) {
			t.Fatalf("result table missing %q:\n%s", want, out)
		}
	}
}

func TestValueSemantics(t *testing.T) {
	if !Num(3).Equal(Num(3)) || Num(3).Equal(Num(4)) {
		t.Fatal("numeric equality broken")
	}
	if !Str("a").Less(Str("b")) || Str("b").Less(Str("a")) {
		t.Fatal("string ordering broken")
	}
	if !Null.Equal(Null) || Null.Equal(Num(0)) {
		t.Fatal("null semantics broken")
	}
	if !Null.Less(Num(-1e18)) {
		t.Fatal("null sorts first")
	}
	if Num(2.5).String() != "2.5" || Num(3).String() != "3" || Str("x").String() != "x" || Null.String() != "NULL" {
		t.Fatal("value rendering broken")
	}
}
