package engine

import (
	"sort"

	"repro/internal/sqlast"
)

// group collects the source rows sharing one GROUP BY key.
type group struct {
	key  Row
	rows []Row
}

// aggregate evaluates a grouped (or globally aggregated) query over the
// filtered rows: grouping, aggregate computation, HAVING, projection,
// and ORDER BY over group outputs.
func (ex *executor) aggregate(q *sqlast.Query, b *binding, rows []Row) (*Result, error) {
	keyPos := make([]int, len(q.GroupBy))
	for i, c := range q.GroupBy {
		p, err := b.resolve(c)
		if err != nil {
			return nil, err
		}
		keyPos[i] = p
	}

	// Build groups preserving first-appearance order.
	var groups []*group
	index := map[string]*group{}
	for _, row := range rows {
		key := make(Row, len(keyPos))
		for i, p := range keyPos {
			key[i] = row[p]
		}
		k := sortedRowKeys([]Row{key})[0]
		g, ok := index[k]
		if !ok {
			g = &group{key: key}
			index[k] = g
			groups = append(groups, g)
		}
		g.rows = append(g.rows, row)
	}
	// A global aggregate (no GROUP BY) over zero rows still produces
	// one group so COUNT(*) yields 0.
	if len(q.GroupBy) == 0 && len(groups) == 0 {
		groups = append(groups, &group{})
	}

	// HAVING filter.
	var kept []*group
	for _, g := range groups {
		ok, err := ex.evalHaving(q.Having, b, g)
		if err != nil {
			return nil, err
		}
		if ok {
			kept = append(kept, g)
		}
	}

	// Project.
	var cols []string
	for _, sel := range q.Select {
		cols = append(cols, sel.String())
	}
	res := &Result{Columns: cols}
	type outPair struct {
		out  Row
		keys Row
	}
	var pairs []outPair
	for _, g := range kept {
		outRow := make(Row, 0, len(q.Select))
		for _, sel := range q.Select {
			v, err := ex.evalAggItem(sel, b, g, keyPos, q)
			if err != nil {
				return nil, err
			}
			outRow = append(outRow, v)
		}
		var keys Row
		for _, oi := range q.OrderBy {
			v, err := ex.evalAggItem(oi.Item, b, g, keyPos, q)
			if err != nil {
				return nil, err
			}
			keys = append(keys, v)
		}
		pairs = append(pairs, outPair{out: outRow, keys: keys})
	}
	if len(q.OrderBy) > 0 {
		sort.SliceStable(pairs, func(i, j int) bool {
			for k, oi := range q.OrderBy {
				a, bb := pairs[i].keys[k], pairs[j].keys[k]
				if a.Equal(bb) {
					continue
				}
				if oi.Desc {
					return bb.Less(a)
				}
				return a.Less(bb)
			}
			return false
		})
	}
	for _, p := range pairs {
		res.Rows = append(res.Rows, p.out)
	}
	return res, nil
}

// evalAggItem evaluates one select/order item in grouped context: an
// aggregate over the group's rows, or a GROUP BY key column.
func (ex *executor) evalAggItem(sel sqlast.SelectItem, b *binding, g *group, keyPos []int, q *sqlast.Query) (Value, error) {
	if sel.Agg != sqlast.AggNone {
		return ex.computeAgg(sel, b, g.rows)
	}
	if sel.Star {
		return Value{}, execError(ErrGrouping, "bare * is not valid in a grouped query")
	}
	p, err := b.resolve(sel.Col)
	if err != nil {
		return Value{}, err
	}
	for i, kp := range keyPos {
		if kp == p {
			return g.key[i], nil
		}
	}
	return Value{}, execError(ErrGrouping, "column %q must appear in GROUP BY or inside an aggregate", sel.Col)
}

// computeAgg computes one aggregate over the rows of a group.
func (ex *executor) computeAgg(sel sqlast.SelectItem, b *binding, rows []Row) (Value, error) {
	if sel.Agg == sqlast.AggCount && sel.Star {
		return Num(float64(len(rows))), nil
	}
	p := -1
	if !sel.Star {
		var err error
		p, err = b.resolve(sel.Col)
		if err != nil {
			return Value{}, err
		}
	}
	var vals []Value
	for _, r := range rows {
		v := r[p]
		if v.Null {
			continue
		}
		vals = append(vals, v)
	}
	if sel.Distinct {
		seen := map[string]bool{}
		var dd []Value
		for _, v := range vals {
			k := sortedRowKeys([]Row{{v}})[0]
			if !seen[k] {
				seen[k] = true
				dd = append(dd, v)
			}
		}
		vals = dd
	}
	switch sel.Agg {
	case sqlast.AggCount:
		return Num(float64(len(vals))), nil
	case sqlast.AggSum, sqlast.AggAvg:
		sum := 0.0
		for _, v := range vals {
			if !v.IsNum {
				return Value{}, execError(ErrTypeMismatch, "%s over non-numeric column %q", sel.Agg, sel.Col)
			}
			sum += v.Num
		}
		if sel.Agg == sqlast.AggSum {
			return Num(sum), nil
		}
		if len(vals) == 0 {
			return Null, nil
		}
		return Num(sum / float64(len(vals))), nil
	case sqlast.AggMin, sqlast.AggMax:
		if len(vals) == 0 {
			return Null, nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			if sel.Agg == sqlast.AggMin && v.Less(best) {
				best = v
			}
			if sel.Agg == sqlast.AggMax && best.Less(v) {
				best = v
			}
		}
		return best, nil
	default:
		return Value{}, execErrorf("unsupported aggregate %v", sel.Agg)
	}
}

// evalHaving evaluates a HAVING condition for one group.
func (ex *executor) evalHaving(e sqlast.Expr, b *binding, g *group) (bool, error) {
	switch v := e.(type) {
	case nil:
		return true, nil
	case sqlast.Logic:
		left, err := ex.evalHaving(v.Left, b, g)
		if err != nil {
			return false, err
		}
		right, err := ex.evalHaving(v.Right, b, g)
		if err != nil {
			return false, err
		}
		if v.Op == sqlast.OpAnd {
			return left && right, nil
		}
		return left || right, nil
	case sqlast.Not:
		inner, err := ex.evalHaving(v.Inner, b, g)
		if err != nil {
			return false, err
		}
		return !inner, nil
	case sqlast.HavingCond:
		left, err := ex.computeAgg(v.Item, b, g.rows)
		if err != nil {
			return false, err
		}
		// The RHS of a HAVING comparison is a constant or scalar
		// subquery; it never references group rows.
		rhs, err := ex.evalOperand(v.Right, b, nil)
		if err != nil {
			return false, err
		}
		return compare(left, v.Op, rhs)
	default:
		return false, execErrorf("unsupported HAVING condition %T", e)
	}
}
