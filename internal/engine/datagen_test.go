package engine

import (
	"strings"
	"testing"

	"repro/internal/schema"
)

func zooSchema() *schema.Schema {
	return &schema.Schema{
		Name: "zoo",
		Tables: []*schema.Table{
			{Name: "keepers", Columns: []*schema.Column{
				{Name: "id", Type: schema.Number, PrimaryKey: true},
				{Name: "name", Type: schema.Text},
				{Name: "salary", Type: schema.Number, Domain: schema.DomainMoney},
			}},
			{Name: "animals", Columns: []*schema.Column{
				{Name: "id", Type: schema.Number, PrimaryKey: true},
				{Name: "species", Type: schema.Text},
				{Name: "age", Type: schema.Number, Domain: schema.DomainAge},
				{Name: "keeper_id", Type: schema.Number},
			}},
		},
		ForeignKeys: []schema.ForeignKey{
			{FromTable: "animals", FromColumn: "keeper_id", ToTable: "keepers", ToColumn: "id"},
		},
	}
}

func TestGenerateDataShape(t *testing.T) {
	db, err := GenerateData(zooSchema(), 25, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"keepers", "animals"} {
		tbl := db.Tables[name]
		if tbl == nil || len(tbl.Rows) != 25 {
			t.Fatalf("table %s rows = %v", name, tbl)
		}
	}
}

func TestGenerateDataForeignKeys(t *testing.T) {
	db, err := GenerateData(zooSchema(), 30, 9)
	if err != nil {
		t.Fatal(err)
	}
	keepers := map[string]bool{}
	for _, v := range db.DistinctValues("keepers", "id") {
		keepers[v.String()] = true
	}
	for _, r := range db.Tables["animals"].Rows {
		fk := r[3]
		if !keepers[fk.String()] {
			t.Fatalf("animal references missing keeper %v", fk)
		}
	}
}

func TestGenerateDataPrimaryKeysUnique(t *testing.T) {
	db, err := GenerateData(zooSchema(), 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, r := range db.Tables["keepers"].Rows {
		k := r[0].String()
		if seen[k] {
			t.Fatalf("duplicate primary key %s", k)
		}
		seen[k] = true
	}
}

func TestGenerateDataDomainRanges(t *testing.T) {
	db, err := GenerateData(zooSchema(), 50, 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range db.Tables["animals"].Rows {
		age := r[2].Num
		if age < 1 || age > 99 {
			t.Fatalf("age %v out of domain range", age)
		}
	}
	for _, r := range db.Tables["keepers"].Rows {
		sal := r[2].Num
		if sal < 100 || sal > 100000 {
			t.Fatalf("salary %v out of money range", sal)
		}
	}
}

func TestGenerateDataDeterminism(t *testing.T) {
	a, err := GenerateData(zooSchema(), 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateData(zooSchema(), 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	for name, ta := range a.Tables {
		tb := b.Tables[name]
		for i := range ta.Rows {
			for j := range ta.Rows[i] {
				if !ta.Rows[i][j].Equal(tb.Rows[i][j]) {
					t.Fatalf("nondeterministic cell %s[%d][%d]", name, i, j)
				}
			}
		}
	}
}

func TestGenerateDataPlausibleText(t *testing.T) {
	s := &schema.Schema{
		Name: "places",
		Tables: []*schema.Table{
			{Name: "cities", Columns: []*schema.Column{
				{Name: "id", Type: schema.Number, PrimaryKey: true},
				{Name: "state_name", Type: schema.Text},
			}},
		},
	}
	db, err := GenerateData(s, 30, 4)
	if err != nil {
		t.Fatal(err)
	}
	vals := db.DistinctValues("cities", "state_name")
	if len(vals) == 0 {
		t.Fatal("no distinct state values")
	}
	for _, v := range vals {
		if strings.Contains(v.Str, "_") {
			t.Fatalf("state value %q looks synthetic, expected a state pool value", v.Str)
		}
	}
}

func TestGenerateDataInvalidSchema(t *testing.T) {
	bad := zooSchema()
	bad.Tables[0].Columns = nil
	if _, err := GenerateData(bad, 5, 1); err == nil {
		t.Fatal("invalid schema should be rejected")
	}
}

func TestDistinctValues(t *testing.T) {
	db := testDB(t)
	vals := db.DistinctValues("patients", "diagnosis")
	if len(vals) != 3 {
		t.Fatalf("distinct diagnoses = %v", vals)
	}
	if db.DistinctValues("nope", "x") != nil {
		t.Fatal("unknown table should yield nil")
	}
	if db.DistinctValues("patients", "nope") != nil {
		t.Fatal("unknown column should yield nil")
	}
}
