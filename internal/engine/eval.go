package engine

import (
	"strings"

	"repro/internal/sqlast"
)

// validateExpr resolves every column reference in a condition tree
// eagerly (including inside subqueries, against their own bindings) so
// that invalid queries fail even when no rows reach evaluation.
func (ex *executor) validateExpr(e sqlast.Expr, b *binding) error {
	switch v := e.(type) {
	case nil:
		return nil
	case sqlast.Logic:
		if err := ex.validateExpr(v.Left, b); err != nil {
			return err
		}
		return ex.validateExpr(v.Right, b)
	case sqlast.Not:
		return ex.validateExpr(v.Inner, b)
	case sqlast.Comparison:
		if _, err := b.resolve(v.Left); err != nil {
			return err
		}
		if c, ok := v.Right.(sqlast.ColOperand); ok {
			if _, err := b.resolve(c.Col); err != nil {
				return err
			}
		}
		if s, ok := v.Right.(sqlast.ScalarSubquery); ok {
			return ex.validateSub(s.Query)
		}
		return nil
	case sqlast.Between:
		_, err := b.resolve(v.Col)
		return err
	case sqlast.InSubquery:
		if _, err := b.resolve(v.Col); err != nil {
			return err
		}
		return ex.validateSub(v.Query)
	case sqlast.Exists:
		return ex.validateSub(v.Query)
	case sqlast.HavingCond:
		return execError(ErrGrouping, "aggregate condition %q outside HAVING", v.String())
	default:
		return nil
	}
}

// validateSub validates a subquery's own column references.
func (ex *executor) validateSub(q *sqlast.Query) error {
	if q.From.JoinPlaceholder {
		return execError(ErrPlaceholder, "cannot execute query with unresolved @JOIN placeholder")
	}
	sb, err := ex.bind(q.From.Tables)
	if err != nil {
		return err
	}
	for _, sel := range q.Select {
		if sel.Star {
			continue
		}
		if _, err := sb.resolve(sel.Col); err != nil {
			return err
		}
	}
	return ex.validateExpr(q.Where, sb)
}

// evalBool evaluates a condition against one environment row. nil
// conditions are true.
func (ex *executor) evalBool(e sqlast.Expr, b *binding, row Row) (bool, error) {
	switch v := e.(type) {
	case nil:
		return true, nil
	case sqlast.Logic:
		left, err := ex.evalBool(v.Left, b, row)
		if err != nil {
			return false, err
		}
		// No short-circuit on errors: both sides must be well-formed.
		right, err := ex.evalBool(v.Right, b, row)
		if err != nil {
			return false, err
		}
		if v.Op == sqlast.OpAnd {
			return left && right, nil
		}
		return left || right, nil
	case sqlast.Not:
		inner, err := ex.evalBool(v.Inner, b, row)
		if err != nil {
			return false, err
		}
		return !inner, nil
	case sqlast.Comparison:
		p, err := b.resolve(v.Left)
		if err != nil {
			return false, err
		}
		rhs, err := ex.evalOperand(v.Right, b, row)
		if err != nil {
			return false, err
		}
		return compare(row[p], v.Op, rhs)
	case sqlast.Between:
		p, err := b.resolve(v.Col)
		if err != nil {
			return false, err
		}
		lo, err := ex.evalOperand(v.Lo, b, row)
		if err != nil {
			return false, err
		}
		hi, err := ex.evalOperand(v.Hi, b, row)
		if err != nil {
			return false, err
		}
		ge, err := compare(row[p], sqlast.OpGe, lo)
		if err != nil {
			return false, err
		}
		le, err := compare(row[p], sqlast.OpLe, hi)
		if err != nil {
			return false, err
		}
		return ge && le, nil
	case sqlast.InSubquery:
		p, err := b.resolve(v.Col)
		if err != nil {
			return false, err
		}
		set, err := ex.subquerySet(v.Query)
		if err != nil {
			return false, err
		}
		found := false
		for _, sv := range set {
			if sv.Equal(row[p]) {
				found = true
				break
			}
		}
		if v.Negated {
			return !found, nil
		}
		return found, nil
	case sqlast.Exists:
		res, err := ex.subqueryResult(v.Query)
		if err != nil {
			return false, err
		}
		exists := len(res.Rows) > 0
		if v.Negated {
			return !exists, nil
		}
		return exists, nil
	case sqlast.HavingCond:
		return false, execError(ErrGrouping, "aggregate condition %q outside HAVING", v.String())
	default:
		return false, execErrorf("unsupported condition %T", e)
	}
}

// evalOperand evaluates the right-hand side of a comparison.
func (ex *executor) evalOperand(o sqlast.Operand, b *binding, row Row) (Value, error) {
	switch v := o.(type) {
	case sqlast.Value:
		if v.IsNum {
			return Num(v.Num), nil
		}
		return Str(v.Str), nil
	case sqlast.Placeholder:
		return Value{}, execError(ErrPlaceholder, "unresolved placeholder @%s (post-processing must substitute constants before execution)", v.Name)
	case sqlast.ColOperand:
		p, err := b.resolve(v.Col)
		if err != nil {
			return Value{}, err
		}
		return row[p], nil
	case sqlast.ScalarSubquery:
		return ex.subqueryScalar(v.Query)
	default:
		return Value{}, execErrorf("unsupported operand %T", o)
	}
}

// subqueryResult executes an uncorrelated subquery. Correlated column
// references surface as "unknown column" errors from the inner binding,
// which matches the paper's "uncorrelated nestings only" scope.
func (ex *executor) subqueryResult(q *sqlast.Query) (*Result, error) {
	return ex.query(q)
}

// subquerySet returns the first-column values of the subquery result.
func (ex *executor) subquerySet(q *sqlast.Query) ([]Value, error) {
	res, err := ex.subqueryResult(q)
	if err != nil {
		return nil, err
	}
	if len(res.Columns) != 1 {
		return nil, execError(ErrArity, "IN subquery must produce exactly one column, got %d", len(res.Columns))
	}
	out := make([]Value, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = r[0]
	}
	return out, nil
}

// subqueryScalar returns the single value of a scalar subquery. An
// empty result yields NULL (which compares false to everything except
// NULL).
func (ex *executor) subqueryScalar(q *sqlast.Query) (Value, error) {
	res, err := ex.subqueryResult(q)
	if err != nil {
		return Value{}, err
	}
	if len(res.Columns) != 1 {
		return Value{}, execError(ErrArity, "scalar subquery must produce exactly one column, got %d", len(res.Columns))
	}
	if len(res.Rows) == 0 {
		return Null, nil
	}
	if len(res.Rows) > 1 {
		return Value{}, execError(ErrArity, "scalar subquery produced %d rows", len(res.Rows))
	}
	return res.Rows[0][0], nil
}

// compare applies a comparison operator. Comparisons involving NULL
// are false (SQL three-valued logic collapsed to false, sufficient for
// the subset). Numeric/string mismatches compare by string rendering,
// which tolerates text columns holding digit strings.
func compare(left Value, op sqlast.CmpOp, right Value) (bool, error) {
	if left.Null || right.Null {
		return false, nil
	}
	if op == sqlast.OpLike {
		return matchLike(left.String(), right.String()), nil
	}
	var cmp int
	if left.IsNum && right.IsNum {
		switch {
		case left.Equal(right):
			cmp = 0
		case left.Num < right.Num:
			cmp = -1
		default:
			cmp = 1
		}
	} else {
		ls, rs := strings.ToLower(left.String()), strings.ToLower(right.String())
		cmp = strings.Compare(ls, rs)
	}
	switch op {
	case sqlast.OpEq:
		return cmp == 0, nil
	case sqlast.OpNe:
		return cmp != 0, nil
	case sqlast.OpLt:
		return cmp < 0, nil
	case sqlast.OpLe:
		return cmp <= 0, nil
	case sqlast.OpGt:
		return cmp > 0, nil
	case sqlast.OpGe:
		return cmp >= 0, nil
	default:
		return false, execErrorf("unsupported comparison operator %v", op)
	}
}

// matchLike implements SQL LIKE with % (any run) and _ (any single
// character), case-insensitively.
func matchLike(s, pattern string) bool {
	s = strings.ToLower(s)
	pattern = strings.ToLower(pattern)
	return likeMatch([]rune(s), []rune(pattern))
}

func likeMatch(s, p []rune) bool {
	if len(p) == 0 {
		return len(s) == 0
	}
	switch p[0] {
	case '%':
		for i := 0; i <= len(s); i++ {
			if likeMatch(s[i:], p[1:]) {
				return true
			}
		}
		return false
	case '_':
		return len(s) > 0 && likeMatch(s[1:], p[1:])
	default:
		return len(s) > 0 && s[0] == p[0] && likeMatch(s[1:], p[1:])
	}
}
