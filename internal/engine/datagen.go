package engine

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/schema"
)

// Value pools for recognizable column names so that generated databases
// contain plausible constants for the Parameter Handler's value index.
var (
	personNames = []string{
		"alice johnson", "bob smith", "carol davis", "david miller", "emma wilson",
		"frank moore", "grace taylor", "henry anderson", "irene thomas", "jack jackson",
		"karen white", "liam harris", "mia martin", "noah thompson", "olivia garcia",
		"peter martinez", "quinn robinson", "rachel clark", "sam rodriguez", "tina lewis",
	}
	cityNames = []string{
		"springfield", "riverton", "lakeside", "fairview", "greenville",
		"bristol", "clinton", "georgetown", "salem", "madison",
		"franklin", "arlington", "ashland", "burlington", "clayton",
	}
	stateNames = []string{
		"massachusetts", "california", "texas", "alaska", "vermont",
		"oregon", "nevada", "ohio", "georgia", "maine", "utah", "iowa",
	}
	diseaseNames = []string{
		"influenza", "diabetes", "asthma", "pneumonia", "bronchitis",
		"hypertension", "arthritis", "migraine", "anemia", "eczema",
	}
	genericAdjectives = []string{
		"red", "blue", "green", "silver", "golden", "rapid", "quiet",
		"northern", "southern", "eastern", "western", "central",
	}
)

// poolFor picks a plausible string pool for a text column by name.
func poolFor(col string) []string {
	c := strings.ToLower(col)
	switch {
	case strings.Contains(c, "state"):
		return stateNames
	case strings.Contains(c, "city"):
		return cityNames
	case strings.Contains(c, "disease") || strings.Contains(c, "diagnos"):
		return diseaseNames
	case strings.Contains(c, "name"):
		return personNames
	default:
		return nil
	}
}

// numberRange picks a plausible numeric range for a column by domain
// and name.
func numberRange(col *schema.Column) (lo, hi float64, integral bool) {
	name := strings.ToLower(col.Name)
	switch {
	case col.Domain == schema.DomainAge || strings.Contains(name, "age"):
		return 1, 99, true
	case col.Domain == schema.DomainHeight || strings.Contains(name, "height"):
		return 100, 9000, true
	case col.Domain == schema.DomainLength || strings.Contains(name, "length") || strings.Contains(name, "stay"):
		return 1, 60, true
	case col.Domain == schema.DomainArea || strings.Contains(name, "area"):
		return 10, 700000, true
	case col.Domain == schema.DomainMoney || strings.Contains(name, "salary") || strings.Contains(name, "price") || strings.Contains(name, "cost") || strings.Contains(name, "budget"):
		return 100, 100000, true
	case strings.Contains(name, "population"):
		return 500, 5000000, true
	case strings.Contains(name, "year"):
		return 1950, 2020, true
	default:
		return 1, 1000, true
	}
}

// GenerateData fills a new database for the schema with rowsPerTable
// synthetic rows per table, deterministically from seed. Primary keys
// get unique sequential values; foreign keys reference existing keys of
// the target table (tables are filled in dependency order). Text
// columns draw from plausible value pools keyed by column name;
// numeric columns draw from domain-appropriate ranges.
func GenerateData(s *schema.Schema, rowsPerTable int, seed int64) (*Database, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	db := NewDatabase(s)

	// Order tables so that FK targets are filled first.
	order := dependencyOrder(s)

	// Remember generated key pools: table -> column -> values.
	keyPools := map[string]map[string][]Value{}

	for _, t := range order {
		pool := map[string][]Value{}
		keyPools[strings.ToLower(t.Name)] = pool
		fkFor := map[string]schema.ForeignKey{}
		for _, fk := range s.ForeignKeys {
			if strings.EqualFold(fk.FromTable, t.Name) {
				fkFor[strings.ToLower(fk.FromColumn)] = fk
			}
		}
		for i := 0; i < rowsPerTable; i++ {
			row := make(Row, len(t.Columns))
			for ci, col := range t.Columns {
				if fk, ok := fkFor[strings.ToLower(col.Name)]; ok {
					targets := keyPools[strings.ToLower(fk.ToTable)][strings.ToLower(fk.ToColumn)]
					if len(targets) > 0 {
						row[ci] = targets[rng.Intn(len(targets))]
						continue
					}
				}
				if col.PrimaryKey && col.Type == schema.Number {
					row[ci] = Num(float64(i + 1))
				} else if col.PrimaryKey {
					row[ci] = Str(fmt.Sprintf("%s_%d", strings.ToLower(col.Name), i+1))
				} else if col.Type == schema.Text {
					row[ci] = genText(col, i, rng)
				} else {
					lo, hi, integral := numberRange(col)
					v := lo + rng.Float64()*(hi-lo)
					if integral {
						v = float64(int64(v))
					}
					row[ci] = Num(v)
				}
				pool[strings.ToLower(col.Name)] = append(pool[strings.ToLower(col.Name)], row[ci])
			}
			if err := db.Insert(t.Name, row); err != nil {
				return nil, err
			}
		}
		// Record key pools for PK columns even if also recorded above.
		tbl := db.Tables[strings.ToLower(t.Name)]
		for ci, col := range t.Columns {
			if col.PrimaryKey {
				var vals []Value
				for _, r := range tbl.Rows {
					vals = append(vals, r[ci])
				}
				pool[strings.ToLower(col.Name)] = vals
			}
		}
	}
	return db, nil
}

// genText produces a plausible text value for the column.
func genText(col *schema.Column, i int, rng *rand.Rand) Value {
	if pool := poolFor(col.Name); pool != nil {
		return Str(pool[rng.Intn(len(pool))])
	}
	adj := genericAdjectives[rng.Intn(len(genericAdjectives))]
	return Str(fmt.Sprintf("%s %s %d", adj, strings.ToLower(strings.ReplaceAll(col.Name, "_", " ")), i%7+1))
}

// dependencyOrder returns tables sorted so FK targets precede sources
// (cycles broken by declaration order).
func dependencyOrder(s *schema.Schema) []*schema.Table {
	deps := map[string]map[string]bool{}
	for _, fk := range s.ForeignKeys {
		from := strings.ToLower(fk.FromTable)
		to := strings.ToLower(fk.ToTable)
		if from == to {
			continue
		}
		if deps[from] == nil {
			deps[from] = map[string]bool{}
		}
		deps[from][to] = true
	}
	var order []*schema.Table
	placed := map[string]bool{}
	for len(order) < len(s.Tables) {
		progressed := false
		for _, t := range s.Tables {
			lt := strings.ToLower(t.Name)
			if placed[lt] {
				continue
			}
			ready := true
			for dep := range deps[lt] {
				if !placed[dep] {
					ready = false
					break
				}
			}
			if ready {
				order = append(order, t)
				placed[lt] = true
				progressed = true
			}
		}
		if !progressed {
			// Cycle: place remaining in declaration order.
			for _, t := range s.Tables {
				if !placed[strings.ToLower(t.Name)] {
					order = append(order, t)
					placed[strings.ToLower(t.Name)] = true
				}
			}
		}
	}
	return order
}

// DistinctValues returns the distinct values of a column in the
// database, for the Parameter Handler's value index.
func (db *Database) DistinctValues(table, column string) []Value {
	t, ok := db.Tables[strings.ToLower(table)]
	if !ok {
		return nil
	}
	ci := t.colIndex(column)
	if ci < 0 {
		return nil
	}
	seen := map[string]bool{}
	var out []Value
	for _, r := range t.Rows {
		k := r[ci].String()
		if !seen[k] {
			seen[k] = true
			out = append(out, r[ci])
		}
	}
	return out
}
