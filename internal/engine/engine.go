// Package engine is an in-memory SQL execution engine for the query
// subset emitted by the DBPal templates. The paper's prototype executes
// translated queries against a DBMS and returns tabular results
// (Figure 1); this engine plays that role, and additionally powers the
// semantic-equivalence accuracy metric of the Patients benchmark (two
// queries are equivalent if they produce the same result on the
// database).
//
// Supported: multi-table implicit joins, AND/OR/NOT predicates,
// comparison/LIKE/BETWEEN, GROUP BY with COUNT/SUM/AVG/MIN/MAX,
// HAVING, ORDER BY, LIMIT, DISTINCT, and uncorrelated subqueries
// (IN/NOT IN, EXISTS/NOT EXISTS, scalar aggregates). Correlated
// subqueries are rejected, matching the paper's stated scope.
package engine

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/schema"
	"repro/internal/sqlast"
)

// Value is a runtime cell value.
type Value struct {
	Null  bool
	IsNum bool
	Num   float64
	Str   string
}

// Num returns a numeric value.
func Num(n float64) Value { return Value{IsNum: true, Num: n} }

// Str returns a string value.
func Str(s string) Value { return Value{Str: s} }

// Null is the SQL NULL value.
var Null = Value{Null: true}

// String renders the value for display.
func (v Value) String() string {
	switch {
	case v.Null:
		return "NULL"
	case v.IsNum:
		if v.Num == math.Trunc(v.Num) && math.Abs(v.Num) < 1e15 {
			return fmt.Sprintf("%d", int64(v.Num))
		}
		return fmt.Sprintf("%g", v.Num)
	default:
		return v.Str
	}
}

// Equal compares two values with numeric tolerance.
func (v Value) Equal(o Value) bool {
	if v.Null || o.Null {
		return v.Null && o.Null
	}
	if v.IsNum != o.IsNum {
		return false
	}
	if v.IsNum {
		return math.Abs(v.Num-o.Num) <= 1e-9*math.Max(1, math.Max(math.Abs(v.Num), math.Abs(o.Num)))
	}
	return v.Str == o.Str
}

// Less orders values: NULL first, numbers before strings, then by value.
func (v Value) Less(o Value) bool {
	switch {
	case v.Null != o.Null:
		return v.Null
	case v.Null:
		return false
	case v.IsNum != o.IsNum:
		return v.IsNum
	case v.IsNum:
		return v.Num < o.Num
	default:
		return v.Str < o.Str
	}
}

// Row is one tuple.
type Row []Value

// Table holds the data of one relation.
type Table struct {
	Name    string
	Columns []string
	Rows    []Row
}

// colIndex returns the index of a column (case-insensitive), or -1.
func (t *Table) colIndex(name string) int {
	for i, c := range t.Columns {
		if strings.EqualFold(c, name) {
			return i
		}
	}
	return -1
}

// Database binds a schema to table data.
type Database struct {
	Schema *schema.Schema
	Tables map[string]*Table // keyed by lower-case table name
}

// NewDatabase creates an empty database for the schema, with one empty
// table per schema table.
func NewDatabase(s *schema.Schema) *Database {
	db := &Database{Schema: s, Tables: map[string]*Table{}}
	for _, t := range s.Tables {
		cols := make([]string, len(t.Columns))
		for i, c := range t.Columns {
			cols[i] = c.Name
		}
		db.Tables[strings.ToLower(t.Name)] = &Table{Name: t.Name, Columns: cols}
	}
	return db
}

// Insert appends a row to the named table. The row length must match
// the table's column count.
func (db *Database) Insert(table string, row Row) error {
	t, ok := db.Tables[strings.ToLower(table)]
	if !ok {
		return fmt.Errorf("engine: unknown table %q", table)
	}
	if len(row) != len(t.Columns) {
		return fmt.Errorf("engine: table %q expects %d values, got %d", table, len(t.Columns), len(row))
	}
	t.Rows = append(t.Rows, row)
	return nil
}

// Result is the output of a query.
type Result struct {
	Columns []string
	Rows    []Row
}

// String renders the result as an aligned text table (the "tabular
// visualization" of the paper's Figure 1).
func (r *Result) String() string {
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := v.String()
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var b strings.Builder
	for i, c := range r.Columns {
		if i > 0 {
			b.WriteString(" | ")
		}
		fmt.Fprintf(&b, "%-*s", widths[i], c)
	}
	b.WriteString("\n")
	for i, w := range widths {
		if i > 0 {
			b.WriteString("-+-")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	for _, row := range cells {
		b.WriteString("\n")
		for i, s := range row {
			if i > 0 {
				b.WriteString(" | ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], s)
		}
	}
	return b.String()
}

// EqualResults compares two results as ordered-column, unordered-row
// multisets (order-sensitive only when both queries ordered their
// output is a concern for callers; the benchmark treats results as
// multisets, which is what semantic equivalence needs for the subset).
func EqualResults(a, b *Result) bool {
	if a == nil || b == nil {
		return a == b
	}
	if len(a.Rows) != len(b.Rows) {
		return false
	}
	if len(a.Columns) != len(b.Columns) {
		return false
	}
	ka := sortedRowKeys(a.Rows)
	kb := sortedRowKeys(b.Rows)
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

func sortedRowKeys(rows []Row) []string {
	keys := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, v := range r {
			if v.IsNum {
				// Round so that float jitter does not break equality.
				parts[j] = fmt.Sprintf("n:%.6f", v.Num)
			} else if v.Null {
				parts[j] = "null"
			} else {
				parts[j] = "s:" + v.Str
			}
		}
		keys[i] = strings.Join(parts, "\x1f")
	}
	sort.Strings(keys)
	return keys
}

// ErrKind classifies an execution failure so callers (the critic, the
// serving layer's breakers) can branch on what went wrong instead of
// substring-matching the message.
type ErrKind int

// The failure taxonomy.
const (
	// ErrGeneric is any failure without a more specific kind.
	ErrGeneric ErrKind = iota
	// ErrUnknownTable: a FROM or select list names a table the
	// database does not have.
	ErrUnknownTable
	// ErrUnknownColumn: a column reference resolves to no column of
	// the FROM tables (including correlated subquery references,
	// which are out of scope).
	ErrUnknownColumn
	// ErrAmbiguousColumn: an unqualified column name matches more
	// than one FROM column.
	ErrAmbiguousColumn
	// ErrTypeMismatch: an operation requires a numeric column but got
	// text (SUM/AVG over a text column).
	ErrTypeMismatch
	// ErrPlaceholder: the query still carries an unresolved @JOIN or
	// value placeholder; it is a template, not an executable query.
	ErrPlaceholder
	// ErrArity: a subquery produced the wrong shape (column count or
	// row count) for its position.
	ErrArity
	// ErrGrouping: aggregate/grouping misuse — a bare column outside
	// GROUP BY, an aggregate where none is allowed, or vice versa.
	ErrGrouping
	// ErrRowBudget: execution was abandoned because it materialized
	// more environment rows than the caller's budget allows.
	ErrRowBudget
)

// String names the kind for messages and verdicts.
func (k ErrKind) String() string {
	switch k {
	case ErrUnknownTable:
		return "unknown_table"
	case ErrUnknownColumn:
		return "unknown_column"
	case ErrAmbiguousColumn:
		return "ambiguous_column"
	case ErrTypeMismatch:
		return "type_mismatch"
	case ErrPlaceholder:
		return "placeholder"
	case ErrArity:
		return "arity"
	case ErrGrouping:
		return "grouping"
	case ErrRowBudget:
		return "row_budget"
	}
	return "generic"
}

// ExecError reports an execution failure.
type ExecError struct {
	Kind ErrKind
	Msg  string
}

func (e *ExecError) Error() string { return "engine: " + e.Msg }

func execErrorf(format string, args ...any) error {
	return &ExecError{Msg: fmt.Sprintf(format, args...)}
}

func execError(kind ErrKind, format string, args ...any) error {
	return &ExecError{Kind: kind, Msg: fmt.Sprintf(format, args...)}
}

// ErrKindOf returns the taxonomy kind of err: the ExecError kind if
// err wraps one, ErrGeneric otherwise (including nil).
func ErrKindOf(err error) ErrKind {
	var ee *ExecError
	if errors.As(err, &ee) {
		return ee.Kind
	}
	return ErrGeneric
}

// Execute runs the query against the database. The query must be fully
// concrete: no @JOIN placeholder in FROM and no value placeholders
// (the runtime post-processor resolves those first).
func (db *Database) Execute(q *sqlast.Query) (*Result, error) {
	ex := &executor{db: db}
	return ex.query(q)
}

// ExecuteBudget runs the query with a row budget: execution aborts
// with an ErrRowBudget failure once the cross product of the FROM
// tables (across the query and its subqueries) materializes more than
// budget environment rows. budget <= 0 means unbounded. Plain scans
// with a LIMIT and no ordering/grouping/dedup stop enumerating as soon
// as the limit is met, so a tight LIMIT keeps a huge scan within
// budget.
func (db *Database) ExecuteBudget(q *sqlast.Query, budget int) (*Result, error) {
	ex := &executor{db: db, budget: budget}
	return ex.query(q)
}

type executor struct {
	db      *Database
	budget  int // max env rows to materialize; <= 0 unbounded
	visited int // env rows materialized so far, all (sub)queries
}

// binding maps qualified column names to value positions in the
// environment row built from the FROM tables.
type binding struct {
	tables []string         // lower-cased, in FROM order
	cols   map[string][]int // lower "table.col" and "col" -> positions
	width  int
}

func (ex *executor) bind(tables []string) (*binding, error) {
	b := &binding{cols: map[string][]int{}}
	pos := 0
	for _, tn := range tables {
		t, ok := ex.db.Tables[strings.ToLower(tn)]
		if !ok {
			return nil, execError(ErrUnknownTable, "unknown table %q", tn)
		}
		b.tables = append(b.tables, strings.ToLower(tn))
		for _, c := range t.Columns {
			lc := strings.ToLower(c)
			qual := strings.ToLower(tn) + "." + lc
			b.cols[qual] = append(b.cols[qual], pos)
			b.cols[lc] = append(b.cols[lc], pos)
			pos++
		}
	}
	b.width = pos
	return b, nil
}

// resolve finds the environment position of a column reference.
func (b *binding) resolve(c sqlast.ColumnRef) (int, error) {
	var key string
	if c.Table != "" {
		key = strings.ToLower(c.Table) + "." + strings.ToLower(c.Column)
	} else {
		key = strings.ToLower(c.Column)
	}
	positions, ok := b.cols[key]
	if !ok || len(positions) == 0 {
		return 0, execError(ErrUnknownColumn, "unknown column %q", c)
	}
	if len(positions) > 1 {
		return 0, execError(ErrAmbiguousColumn, "ambiguous column %q", c)
	}
	return positions[0], nil
}

// forEachEnv streams the cross product of the FROM tables' rows (the
// concatenation of one row per table, in row-major order), charging
// each materialized row against the executor's budget. The row passed
// to fn is only valid for the duration of the call — fn must copy
// rows it keeps. fn returning false stops the walk early, which is
// what lets a plain LIMIT scan finish within budget.
func (ex *executor) forEachEnv(tables []string, fn func(Row) (bool, error)) error {
	tabs := make([]*Table, len(tables))
	width := 0
	for i, tn := range tables {
		t := ex.db.Tables[strings.ToLower(tn)]
		if t == nil {
			return execError(ErrUnknownTable, "unknown table %q", tn)
		}
		tabs[i] = t
		width += len(t.Columns)
	}
	env := make(Row, 0, width)
	var walk func(i int) (bool, error)
	walk = func(i int) (bool, error) {
		if i == len(tabs) {
			ex.visited++
			if ex.budget > 0 && ex.visited > ex.budget {
				return false, execError(ErrRowBudget, "row budget exceeded: %d environment rows materialized (budget %d)", ex.visited, ex.budget)
			}
			return fn(env)
		}
		mark := len(env)
		for _, r := range tabs[i].Rows {
			env = append(env[:mark], r...)
			cont, err := walk(i + 1)
			if err != nil || !cont {
				return cont, err
			}
		}
		return true, nil
	}
	_, err := walk(0)
	return err
}

func (ex *executor) query(q *sqlast.Query) (*Result, error) {
	if q == nil {
		return nil, execErrorf("nil query")
	}
	if q.From.JoinPlaceholder {
		return nil, execError(ErrPlaceholder, "cannot execute query with unresolved @JOIN placeholder")
	}
	if len(q.From.Tables) == 0 {
		return nil, execErrorf("empty FROM clause")
	}
	b, err := ex.bind(q.From.Tables)
	if err != nil {
		return nil, err
	}
	if err := ex.validateExpr(q.Where, b); err != nil {
		return nil, err
	}
	grouped := len(q.GroupBy) > 0 || q.HasAggregate()
	// A plain scan with a LIMIT and no ordering/grouping/dedup can stop
	// as soon as the limit is satisfied: no later row changes the
	// output, so early exit is observationally equivalent and keeps a
	// huge cross product within the row budget.
	earlyLimit := -1
	if !grouped && len(q.OrderBy) == 0 && !q.Distinct && q.Limit >= 0 {
		earlyLimit = q.Limit
	}
	var filtered []Row
	err = ex.forEachEnv(q.From.Tables, func(row Row) (bool, error) {
		if earlyLimit >= 0 && len(filtered) >= earlyLimit {
			return false, nil
		}
		ok, err := ex.evalBool(q.Where, b, row)
		if err != nil {
			return false, err
		}
		if ok {
			kept := make(Row, len(row))
			copy(kept, row)
			filtered = append(filtered, kept)
		}
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	var out *Result
	if grouped {
		out, err = ex.aggregate(q, b, filtered)
	} else {
		out, err = ex.project(q, b, filtered)
	}
	if err != nil {
		return nil, err
	}
	if q.Distinct {
		out.Rows = dedupRows(out.Rows)
	}
	if len(q.OrderBy) > 0 && !grouped {
		if err := ex.orderPlain(q, b, filtered, out); err != nil {
			return nil, err
		}
	}
	if q.Limit >= 0 && len(out.Rows) > q.Limit {
		out.Rows = out.Rows[:q.Limit]
	}
	return out, nil
}

// project evaluates a non-aggregate SELECT list over filtered rows and
// applies ORDER BY lazily via orderPlain (which needs the source rows).
// Column references are resolved eagerly so that invalid queries fail
// even over empty tables.
func (ex *executor) project(q *sqlast.Query, b *binding, rows []Row) (*Result, error) {
	cols, starIdx, err := ex.selectColumns(q, b)
	if err != nil {
		return nil, err
	}
	positions := make([]int, len(q.Select))
	for i, sel := range q.Select {
		if sel.Star {
			positions[i] = -1
			continue
		}
		p, err := b.resolve(sel.Col)
		if err != nil {
			return nil, err
		}
		positions[i] = p
	}
	for _, oi := range q.OrderBy {
		if oi.Item.Agg == sqlast.AggNone && !oi.Item.Star {
			if _, err := b.resolve(oi.Item.Col); err != nil {
				return nil, err
			}
		}
	}
	res := &Result{Columns: cols}
	for _, row := range rows {
		outRow := make(Row, 0, len(cols))
		for i, sel := range q.Select {
			if sel.Star {
				outRow = append(outRow, starValues(sel, b, row, starIdx)...)
				continue
			}
			outRow = append(outRow, row[positions[i]])
		}
		res.Rows = append(res.Rows, outRow)
	}
	return res, nil
}

// selectColumns computes output column names; starIdx maps table name
// to its position span for * expansion.
func (ex *executor) selectColumns(q *sqlast.Query, b *binding) ([]string, map[string][2]int, error) {
	starIdx := map[string][2]int{}
	pos := 0
	for _, tn := range q.From.Tables {
		t := ex.db.Tables[strings.ToLower(tn)]
		starIdx[strings.ToLower(tn)] = [2]int{pos, pos + len(t.Columns)}
		pos += len(t.Columns)
	}
	var cols []string
	for _, sel := range q.Select {
		if sel.Star && sel.Agg == sqlast.AggNone {
			// * or table.*
			if sel.Col.Table != "" {
				t := ex.db.Tables[strings.ToLower(sel.Col.Table)]
				if t == nil {
					return nil, nil, execError(ErrUnknownTable, "unknown table %q in select", sel.Col.Table)
				}
				cols = append(cols, t.Columns...)
			} else {
				for _, tn := range q.From.Tables {
					t := ex.db.Tables[strings.ToLower(tn)]
					cols = append(cols, t.Columns...)
				}
			}
			continue
		}
		cols = append(cols, sel.String())
	}
	return cols, starIdx, nil
}

func starValues(sel sqlast.SelectItem, b *binding, row Row, starIdx map[string][2]int) Row {
	if sel.Col.Table != "" {
		span := starIdx[strings.ToLower(sel.Col.Table)]
		return row[span[0]:span[1]]
	}
	return row
}

// orderPlain sorts the projected rows by the ORDER BY items evaluated
// on the source rows (the two slices are parallel).
func (ex *executor) orderPlain(q *sqlast.Query, b *binding, src []Row, res *Result) error {
	type pair struct {
		keys Row
		out  Row
	}
	pairs := make([]pair, len(res.Rows))
	for i := range res.Rows {
		var keys Row
		for _, oi := range q.OrderBy {
			if oi.Item.Agg != sqlast.AggNone {
				return execError(ErrGrouping, "aggregate in ORDER BY requires GROUP BY context")
			}
			p, err := b.resolve(oi.Item.Col)
			if err != nil {
				return err
			}
			keys = append(keys, src[i][p])
		}
		pairs[i] = pair{keys: keys, out: res.Rows[i]}
	}
	sort.SliceStable(pairs, func(i, j int) bool {
		for k, oi := range q.OrderBy {
			a, bb := pairs[i].keys[k], pairs[j].keys[k]
			if a.Equal(bb) {
				continue
			}
			if oi.Desc {
				return bb.Less(a)
			}
			return a.Less(bb)
		}
		return false
	})
	for i := range pairs {
		res.Rows[i] = pairs[i].out
	}
	return nil
}

func dedupRows(rows []Row) []Row {
	seen := map[string]bool{}
	var out []Row
	for _, r := range rows {
		k := sortedRowKeys([]Row{r})[0]
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return out
}
