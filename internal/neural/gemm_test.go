package neural

import (
	"fmt"
	"math/rand"
	"testing"
)

// randVec fills a length-n vector from rng.
func randVec(n int, rng *rand.Rand) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// randBatch stacks k rng-filled rows.
func randBatch(k, n int, rng *rand.Rand) *Batch {
	b := NewBatch(k, n)
	for i := range b.W {
		b.W[i] = rng.NormFloat64()
	}
	return b
}

// requireRowsEqual asserts that batch row b is bit-identical to want.
func requireRowsEqual(t *testing.T, what string, got *Batch, b int, want []float64) {
	t.Helper()
	row := got.Row(b)
	for i := range want {
		if row[i] != want[i] {
			t.Fatalf("%s: row %d differs at %d: batched %v, sequential %v", what, b, i, row[i], want[i])
		}
	}
}

// TestMulBatchMatchesMulVec: every row of a batched multiply must be
// bit-identical to MulVec on that row alone, at k=1 and k=n.
func TestMulBatchMatchesMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewMatRand(13, 9, rng)
	for _, k := range []int{1, 2, 8, 17} {
		x := randBatch(k, 9, rng)
		y := NewBatch(k, 13)
		m.MulBatch(x, y)
		for b := 0; b < k; b++ {
			want := NewVec(13)
			m.MulVec(x.Row(b), want)
			requireRowsEqual(t, fmt.Sprintf("MulBatch k=%d", k), y, b, want)
		}

		// The accumulate form against MulVecAdd over the same initial y.
		y2 := randBatch(k, 13, rng)
		want2 := make([][]float64, k)
		for b := 0; b < k; b++ {
			want2[b] = append([]float64(nil), y2.Row(b)...)
			m.MulVecAdd(x.Row(b), want2[b])
		}
		m.MulBatchAdd(x, y2)
		for b := 0; b < k; b++ {
			requireRowsEqual(t, fmt.Sprintf("MulBatchAdd k=%d", k), y2, b, want2[b])
		}
	}
}

// TestGRUStepBatchMatchesForward: batched GRU steps are bit-identical
// per row to the sequential Forward, including after chained steps.
func TestGRUStepBatchMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ps := &ParamSet{}
	g := NewGRU(ps, "g", 6, 10, rng)
	arena := NewArena()
	for _, k := range []int{1, 3, 8} {
		x := randBatch(k, 6, rng)
		h := randBatch(k, 10, rng)
		// Two chained steps through the arena (with a Reset between, as
		// the decode loop does) to prove recycled buffers stay correct.
		seqH := make([][]float64, k)
		for b := 0; b < k; b++ {
			h1, _ := g.Forward(x.Row(b), h.Row(b))
			h2, _ := g.Forward(x.Row(b), h1)
			seqH[b] = h2
		}
		hn := g.StepBatch(x, h, arena)
		// Persist hn before Reset: the next step's input must survive
		// recycling, exactly as TranslateBatch copies states out.
		carry := NewBatch(k, 10)
		copy(carry.W, hn.W)
		arena.Reset()
		hn2 := g.StepBatch(x, carry, arena)
		for b := 0; b < k; b++ {
			requireRowsEqual(t, fmt.Sprintf("StepBatch k=%d", k), hn2, b, seqH[b])
		}
		arena.Reset()
	}
}

// TestLinearEmbeddingSoftmaxBatch covers the remaining batched
// modules: Linear.ForwardBatch, Embedding.LookupBatch, SoftmaxRows.
func TestLinearEmbeddingSoftmaxBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ps := &ParamSet{}
	l := NewLinear(ps, "l", 7, 12, rng)
	e := NewEmbedding(ps, "e", 20, 7, rng)
	arena := NewArena()

	ids := []int{0, 5, 19, -2, 25, 5} // includes clamped out-of-range ids
	xb := e.LookupBatch(ids, arena)
	for b, id := range ids {
		requireRowsEqual(t, "LookupBatch", xb, b, e.Lookup(id))
	}

	yb := l.ForwardBatch(xb, arena)
	for b := range ids {
		requireRowsEqual(t, "Linear.ForwardBatch", yb, b, l.Forward(xb.Row(b)))
	}

	sm := arena.Batch(yb.K, yb.N)
	SoftmaxRows(yb, sm)
	for b := range ids {
		want := Softmax(append([]float64(nil), yb.Row(b)...), NewVec(yb.N))
		requireRowsEqual(t, "SoftmaxRows", sm, b, want)
	}
}

// TestArenaSteadyStateAllocs: after the first step warms the arena, a
// repeated decode-step-shaped workload must allocate nothing.
func TestArenaSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ps := &ParamSet{}
	g := NewGRU(ps, "g", 8, 16, rng)
	l := NewLinear(ps, "l", 16, 32, rng)
	arena := NewArena()
	x := randBatch(8, 8, rng)
	h := randBatch(8, 16, rng)
	step := func() {
		hn := g.StepBatch(x, h, arena)
		logits := l.ForwardBatch(hn, arena)
		SoftmaxRows(logits, arena.Batch(logits.K, logits.N))
		arena.Reset()
	}
	step() // warm the arena
	if allocs := testing.AllocsPerRun(50, step); allocs > 0 {
		t.Fatalf("steady-state batched step allocates %.1f times per run, want 0", allocs)
	}
}

// ---------------------------------------------------------------------
// Micro-benchmarks: the per-example matvec inference path against the
// batched GEMM path, at the decode-step granularity the serving layer
// batches. ns/op and allocs/op are per batch (k examples); divide by k
// for per-example cost. The CI gate (internal/serve) holds the
// batched:sequential allocs and ns ratios to the checked-in baseline.
// ---------------------------------------------------------------------

// benchModules builds a decode-step-sized GRU + output projection
// (hidden 96, vocab 512 — the Seq2Seq defaults' shape class).
func benchModules(rng *rand.Rand) (*GRU, *Linear) {
	ps := &ParamSet{}
	g := NewGRU(ps, "g", 48, 96, rng)
	l := NewLinear(ps, "l", 96, 512, rng)
	return g, l
}

// BenchmarkDecodeStepMatVec is the sequential baseline: k independent
// per-example forward steps (GRU + vocab projection + softmax), the
// shape of today's one-request-at-a-time decode.
func BenchmarkDecodeStepMatVec(b *testing.B) {
	for _, k := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			g, l := benchModules(rng)
			xs := make([][]float64, k)
			hs := make([][]float64, k)
			for i := range xs {
				xs[i] = randVec(48, rng)
				hs[i] = randVec(96, rng)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				for i := 0; i < k; i++ {
					hn, _ := g.Forward(xs[i], hs[i])
					logits := l.Forward(hn)
					Softmax(logits, NewVec(len(logits)))
				}
			}
		})
	}
}

// BenchmarkDecodeStepGEMM is the batched path: the same k examples
// advanced by one arena-backed batched step.
func BenchmarkDecodeStepGEMM(b *testing.B) {
	for _, k := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			g, l := benchModules(rng)
			x := randBatch(k, 48, rng)
			h := randBatch(k, 96, rng)
			arena := NewArena()
			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				hn := g.StepBatch(x, h, arena)
				logits := l.ForwardBatch(hn, arena)
				SoftmaxRows(logits, arena.Batch(logits.K, logits.N))
				arena.Reset()
			}
		})
	}
}
