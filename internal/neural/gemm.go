package neural

// Batched inference substrate. The per-example training path in this
// package works one vector at a time (MulVec and friends), which is
// the right shape for backprop but wastes the weight matrices' cache
// locality at serving time: decoding k concurrent questions pays k
// full passes over every weight row. The types here give the serving
// path a batch dimension — a Batch is k activation vectors stacked
// row-major, MulBatch sweeps each weight row across all k examples
// while it is hot, and an Arena recycles the step-scratch buffers so a
// steady-state decode step allocates nothing.
//
// Equivalence invariant (tested in gemm_test.go and the models golden
// tests): every batched kernel performs, per row, exactly the same
// floating-point operations in exactly the same order as its
// per-example counterpart. Batched results are therefore bit-identical
// to the sequential path at every batch size — batching is a layout
// change, never a numeric one.

// Batch is a dense row-major K×N activation matrix: row b holds
// example b's vector. It is the unit of the batched inference path.
type Batch struct {
	K, N int
	W    []float64
}

// NewBatch allocates a zero batch of k rows of width n.
func NewBatch(k, n int) *Batch {
	return &Batch{K: k, N: n, W: make([]float64, k*n)}
}

// Row returns a view of row b.
func (b *Batch) Row(i int) []float64 { return b.W[i*b.N : (i+1)*b.N] }

// Prefix returns a view batch over the first k rows (no copy). Rows
// sorted so that active examples form a prefix can be stepped as one
// contiguous sub-batch.
func (b *Batch) Prefix(k int) *Batch {
	return &Batch{K: k, N: b.N, W: b.W[:k*b.N]}
}

// MulBatch computes Y = X Mᵀ for a batch X (K×C) into Y (K×R):
// Y[b][i] = Σ_j M[i][j]·X[b][j]. The weight row is the outer loop so
// it stays cache-hot across all K examples, and the inner j loop
// accumulates in the same ascending order as MulVec — each output row
// is bit-identical to MulVec on that row alone.
func (m *Mat) MulBatch(x, y *Batch) {
	for i := 0; i < m.R; i++ {
		row := m.W[i*m.C : (i+1)*m.C]
		for b := 0; b < x.K; b++ {
			xr := x.W[b*x.N : (b+1)*x.N]
			s := 0.0
			for j, rv := range row {
				s += rv * xr[j]
			}
			y.W[b*y.N+i] = s
		}
	}
}

// MulBatchAdd computes Y += X Mᵀ with the same ordering guarantees as
// MulBatch (the batched MulVecAdd).
func (m *Mat) MulBatchAdd(x, y *Batch) {
	for i := 0; i < m.R; i++ {
		row := m.W[i*m.C : (i+1)*m.C]
		for b := 0; b < x.K; b++ {
			xr := x.W[b*x.N : (b+1)*x.N]
			s := 0.0
			for j, rv := range row {
				s += rv * xr[j]
			}
			y.W[b*y.N+i] += s
		}
	}
}

// AddBias adds a column bias (R×1 Mat) to every row of the batch.
func (b *Batch) AddBias(bias *Mat) {
	for r := 0; r < b.K; r++ {
		row := b.Row(r)
		for i := range row {
			row[i] += bias.W[i]
		}
	}
}

// SigmoidBatch applies the logistic function elementwise (same per-
// element computation as Sigmoid).
func SigmoidBatch(src, dst *Batch) {
	Sigmoid(src.W, dst.W)
}

// TanhBatch applies tanh elementwise.
func TanhBatch(src, dst *Batch) {
	Tanh(src.W, dst.W)
}

// SoftmaxRows applies Softmax independently to every row, reusing the
// sequential kernel per row so each row's normalization is
// bit-identical to the per-example path.
func SoftmaxRows(src, dst *Batch) *Batch {
	for b := 0; b < src.K; b++ {
		Softmax(src.Row(b), dst.Row(b))
	}
	return dst
}

// Arena is a recycling allocator for inference scratch: Vec and Batch
// hand out zeroed buffers drawn from an internal free list, and Reset
// returns every outstanding buffer to the list. A decode loop that
// Resets once per step reaches a steady state where no step allocates
// — the buffer sequence repeats, so every request is served from the
// same recycled slabs. An Arena is single-goroutine state; each
// batched decode owns its own.
type Arena struct {
	bufs [][]float64
	next int
	// Batch headers are recycled alongside their buffers — a scratch
	// *Batch escaping to the heap per kernel call would otherwise undo
	// the zero-alloc steady state.
	hdrs  []*Batch
	hnext int
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// take returns a zeroed buffer of length n, recycling a prior slab
// when one with sufficient capacity is next in line.
func (a *Arena) take(n int) []float64 {
	if a.next < len(a.bufs) && cap(a.bufs[a.next]) >= n {
		buf := a.bufs[a.next][:n]
		a.next++
		for i := range buf {
			buf[i] = 0
		}
		return buf
	}
	buf := make([]float64, n)
	if a.next < len(a.bufs) {
		// The slab in line is too small for this request; replace it so
		// the steady state converges instead of re-allocating forever.
		a.bufs[a.next] = buf
	} else {
		a.bufs = append(a.bufs, buf)
	}
	a.next++
	return buf
}

// Vec returns a zeroed scratch vector of length n valid until Reset.
func (a *Arena) Vec(n int) []float64 { return a.take(n) }

// Batch returns a zeroed k×n scratch batch valid until Reset.
func (a *Arena) Batch(k, n int) *Batch {
	var h *Batch
	if a.hnext < len(a.hdrs) {
		h = a.hdrs[a.hnext]
	} else {
		h = &Batch{}
		a.hdrs = append(a.hdrs, h)
	}
	a.hnext++
	h.K, h.N, h.W = k, n, a.take(k*n)
	return h
}

// Reset recycles every buffer and header handed out since the last
// Reset.
func (a *Arena) Reset() { a.next, a.hnext = 0, 0 }

// StepBatch computes one GRU step for a batch of examples: given
// inputs X (K×In) and hidden states H (K×Hid) it returns H' (K×Hid)
// drawn from the arena. Row b of the result is bit-identical to
// Forward(X.Row(b), H.Row(b)) — the kernels below replay the exact
// per-gate accumulation order of the sequential step (W-term, then
// U-term, then bias, then the activation). No backprop cache is built;
// this is the inference-only path.
func (g *GRU) StepBatch(x, h *Batch, a *Arena) *Batch {
	hid := g.Hid
	k := x.K

	az := a.Batch(k, hid)
	g.Wz.MulBatch(x, az)
	g.Uz.MulBatchAdd(h, az)
	az.AddBias(g.Bz)
	z := a.Batch(k, hid)
	SigmoidBatch(az, z)

	ar := a.Batch(k, hid)
	g.Wr.MulBatch(x, ar)
	g.Ur.MulBatchAdd(h, ar)
	ar.AddBias(g.Br)
	r := a.Batch(k, hid)
	SigmoidBatch(ar, r)

	rh := a.Batch(k, hid)
	for i, rv := range r.W {
		rh.W[i] = rv * h.W[i]
	}
	ac := a.Batch(k, hid)
	g.Wh.MulBatch(x, ac)
	g.Uh.MulBatchAdd(rh, ac)
	ac.AddBias(g.Bh)
	c := a.Batch(k, hid)
	TanhBatch(ac, c)

	hn := a.Batch(k, hid)
	for i := range hn.W {
		hn.W[i] = (1-z.W[i])*h.W[i] + z.W[i]*c.W[i]
	}
	return hn
}

// LookupBatch copies the embedding rows for ids into an arena batch
// (ids are clamped exactly as Lookup clamps them). The copy is what
// lets the batch advance through the GEMM kernels contiguously; the
// values are the same rows Lookup returns as views.
func (e *Embedding) LookupBatch(ids []int, a *Arena) *Batch {
	out := a.Batch(len(ids), e.Dim)
	for b, id := range ids {
		copy(out.Row(b), e.Lookup(id))
	}
	return out
}

// ForwardBatch computes Y = X Wᵀ + b for a batch, row-equivalent to
// Forward (same MulVec ordering, then the bias add).
func (l *Linear) ForwardBatch(x *Batch, a *Arena) *Batch {
	y := a.Batch(x.K, l.Out)
	l.W.MulBatch(x, y)
	y.AddBias(l.B)
	return y
}
