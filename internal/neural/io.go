package neural

import (
	"encoding/gob"
	"fmt"
	"io"
)

// savedMat is the serialized form of one parameter matrix.
type savedMat struct {
	Name string
	R, C int
	W    []float64
}

// Save writes every registered parameter to w (weights only).
func (p *ParamSet) Save(w io.Writer) error {
	enc := gob.NewEncoder(w)
	var out []savedMat
	for i, m := range p.mats {
		out = append(out, savedMat{Name: p.names[i], R: m.R, C: m.C, W: m.W})
	}
	return enc.Encode(out)
}

// Load restores previously saved weights into the registered
// parameters, matching by name and shape.
func (p *ParamSet) Load(r io.Reader) error {
	dec := gob.NewDecoder(r)
	var in []savedMat
	if err := dec.Decode(&in); err != nil {
		return fmt.Errorf("neural: load: %w", err)
	}
	byName := map[string]savedMat{}
	for _, m := range in {
		byName[m.Name] = m
	}
	for i, m := range p.mats {
		s, ok := byName[p.names[i]]
		if !ok {
			return fmt.Errorf("neural: load: missing parameter %q", p.names[i])
		}
		if s.R != m.R || s.C != m.C {
			return fmt.Errorf("neural: load: shape mismatch for %q: have %dx%d, saved %dx%d",
				p.names[i], m.R, m.C, s.R, s.C)
		}
		copy(m.W, s.W)
	}
	return nil
}
