package neural

import (
	"math"
	"math/rand"
	"strconv"
	"testing"
)

func TestCopyVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMatRand(3, 4, rng)
	for i := range m.G {
		m.G[i] = float64(i) + 0.5
	}

	c := m.Copy()
	for i := range c.W {
		if c.W[i] != m.W[i] {
			t.Fatal("Copy lost weights")
		}
	}
	for _, g := range c.G {
		if g != 0 {
			t.Fatal("Copy must zero gradients")
		}
	}
	c.W[0] = 99
	if m.W[0] == 99 {
		t.Fatal("Copy must not share the weight buffer")
	}

	cg := m.CopyWithGrads()
	for i := range cg.G {
		if cg.G[i] != m.G[i] {
			t.Fatal("CopyWithGrads lost gradients")
		}
	}
	cg.G[0] = -1
	if m.G[0] == -1 {
		t.Fatal("CopyWithGrads must not share the gradient buffer")
	}
}

func TestShadowSharesWeightsOwnsGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewMatRand(2, 3, rng)
	s := m.Shadow()
	s.G[0] = 7
	if m.G[0] != 0 {
		t.Fatal("shadow gradient leaked into the original")
	}
	m.W[0] = 42
	if s.W[0] != 42 {
		t.Fatal("shadow must share the weight buffer")
	}
}

func TestAddGrad(t *testing.T) {
	a := NewMat(2, 2)
	b := NewMat(2, 2)
	for i := range b.G {
		a.G[i] = 1
		b.G[i] = float64(i)
	}
	a.AddGrad(b)
	for i := range a.G {
		if a.G[i] != 1+float64(i) {
			t.Fatalf("AddGrad[%d] = %v", i, a.G[i])
		}
	}

	defer func() {
		if recover() == nil {
			t.Fatal("AddGrad must panic on a shape mismatch")
		}
	}()
	a.AddGrad(NewMat(2, 3))
}

func TestParamSetShadowAndMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ps := &ParamSet{}
	ps.Register("a", NewMatRand(2, 2, rng))
	ps.Register("b", NewMatRand(3, 1, rng))

	sh := ps.Shadow()
	if len(sh.Mats()) != 2 || sh.Names()[0] != "a" || sh.Names()[1] != "b" {
		t.Fatal("shadow set registration order broken")
	}
	for k, m := range sh.Mats() {
		m.G[0] = float64(k) + 1
	}
	ps.MergeGradsFrom(sh)
	for k, m := range ps.Mats() {
		if m.G[0] != float64(k)+1 {
			t.Fatalf("merge lost grads of mat %d", k)
		}
	}
	for _, m := range sh.Mats() {
		for _, g := range m.G {
			if g != 0 {
				t.Fatal("merge must zero the shadow grads for reuse")
			}
		}
	}
}

// naiveSoftmax is the pre-optimization reference implementation.
func naiveSoftmax(src, dst []float64) []float64 {
	max := math.Inf(-1)
	for _, v := range src {
		if v > max {
			max = v
		}
	}
	sum := 0.0
	for i, v := range src {
		e := math.Exp(v - max)
		dst[i] = e
		sum += e
	}
	inv := 1.0 / sum
	for i := range dst {
		dst[i] *= inv
	}
	return dst
}

func TestSoftmaxMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 2, 3, 17, 256} {
		src := make([]float64, n)
		for i := range src {
			src[i] = rng.NormFloat64() * 10
		}
		got := Softmax(src, NewVec(n))
		want := naiveSoftmax(src, NewVec(n))
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d: Softmax[%d] = %v, want %v (must stay bit-identical)", n, i, got[i], want[i])
			}
		}
	}
	// Degenerate single-element input is exactly 1.
	if out := Softmax([]float64{-1e300}, NewVec(1)); out[0] != 1 {
		t.Fatalf("softmax of singleton = %v", out[0])
	}
}

// BenchmarkSoftmax covers the two hot shapes: attention scores over a
// short input and vocabulary logits over a few thousand entries.
func BenchmarkSoftmax(b *testing.B) {
	for _, n := range []int{32, 4096} {
		src := make([]float64, n)
		rng := rand.New(rand.NewSource(5))
		for i := range src {
			src[i] = rng.NormFloat64() * 4
		}
		dst := NewVec(n)
		b.Run("n"+strconv.Itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Softmax(src, dst)
			}
		})
	}
}
